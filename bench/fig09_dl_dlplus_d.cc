// Fig. 9: DL vs DL+ with varying dimensionality d (k = 10). Expected shape: the DL+/DL gap widens as d grows (about 3x fewer accesses at d = 5).

namespace {
constexpr const char* kFigureName = "fig09";
}  // namespace
#define kKinds \
  { "dl", "dl+" }
#define kSweepAxis SweepAxis::kD
#include "bench/sweep_main.inc"
