// Per-phase build wall-clock for DL+: the observability companion to
// the build-pipeline fast paths. Times a serial build (build_threads =
// 1, so the five phase timers sum to ≈ the total) per n x d cell and
// emits machine-readable JSON (BENCH_build.json in the working
// directory, or the path given as argv[1] / DRLI_BENCH_OUT), including
// the EDS and coarse-edge pruning counters.
//
// DRLI_BENCH_N overrides the n sweep with a single cardinality (the CI
// smoke uses 5000).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/dual_layer.h"
#include "data/generator.h"

namespace {

using namespace drli;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct Row {
  std::size_t n = 0;
  std::size_t d = 0;
  DualLayerBuildStats stats;
};

Row Measure(std::size_t n, std::size_t d) {
  Row row;
  row.n = n;
  row.d = d;
  const PointSet points = GenerateAnticorrelated(n, d, /*seed=*/20120401);
  DualLayerOptions options;
  options.build_zero_layer = true;
  options.build_threads = 1;
  const DualLayerIndex index = DualLayerIndex::Build(points, options);
  row.stats = index.build_stats();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> ns;
  if (std::getenv("DRLI_BENCH_N") != nullptr) {
    ns.push_back(EnvSize("DRLI_BENCH_N", 10000));
  } else {
    ns = {10000, 100000};
  }

  std::vector<Row> rows;
  for (std::size_t n : ns) {
    for (std::size_t d : {std::size_t{2}, std::size_t{4}}) {
      Row row = Measure(n, d);
      const DualLayerBuildStats& s = row.stats;
      std::printf(
          "n=%-7zu d=%zu build=%.3fs skyline=%.3fs fine_peel=%.3fs "
          "(eds=%.3fs) coarse_edge=%.3fs zero=%.3fs finalize=%.3fs\n",
          row.n, row.d, s.build_seconds, s.skyline_seconds,
          s.fine_peel_seconds, s.eds_seconds, s.coarse_edge_seconds,
          s.zero_layer_seconds, s.finalize_seconds);
      std::printf(
          "          eds: lp_calls=%zu bbox_rejects=%zu member_hits=%zu; "
          "coarse: pruned=%zu tested=%zu edges=%zu fine_edges=%zu\n",
          s.eds_lp_calls, s.eds_bbox_rejects, s.eds_member_hits,
          s.coarse_pairs_pruned, s.coarse_pairs_tested, s.num_coarse_edges,
          s.num_fine_edges);
      std::fflush(stdout);
      rows.push_back(row);
    }
  }

  const char* env_out = std::getenv("DRLI_BENCH_OUT");
  const std::string out_path = argc > 1            ? argv[1]
                               : env_out != nullptr ? env_out
                                                    : "BENCH_build.json";
  std::ofstream out(out_path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const DualLayerBuildStats& s = r.stats;
    char buffer[768];
    std::snprintf(
        buffer, sizeof(buffer),
        "  {\"n\": %zu, \"d\": %zu, \"build_seconds_serial\": %.6f, "
        "\"skyline_seconds\": %.6f, \"fine_peel_seconds\": %.6f, "
        "\"coarse_edge_seconds\": %.6f, \"zero_layer_seconds\": %.6f, "
        "\"finalize_seconds\": %.6f, \"eds_seconds\": %.6f, "
        "\"eds_lp_calls\": %zu, \"eds_bbox_rejects\": %zu, "
        "\"eds_member_hits\": %zu, \"coarse_pairs_pruned\": %zu, "
        "\"coarse_pairs_tested\": %zu, \"num_coarse_edges\": %zu, "
        "\"num_fine_edges\": %zu}%s\n",
        r.n, r.d, s.build_seconds, s.skyline_seconds, s.fine_peel_seconds,
        s.coarse_edge_seconds, s.zero_layer_seconds, s.finalize_seconds,
        s.eds_seconds, s.eds_lp_calls, s.eds_bbox_rejects,
        s.eds_member_hits, s.coarse_pairs_pruned, s.coarse_pairs_tested,
        s.num_coarse_edges, s.num_fine_edges,
        i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  DRLI_CHECK(bool(out)) << "failed to write " << out_path;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
