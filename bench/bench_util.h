// Shared plumbing for the benchmark harness that regenerates the
// paper's tables and figures (Section VI).
//
// Conventions:
//  * The cost metric is the paper's Definition 9 -- the number of
//    relation tuples evaluated by the scoring function -- exposed as
//    the "tuples" counter on every benchmark row. Wall-clock time is
//    reported too but is not the headline number.
//  * Dataset sizes scale with the DRLI_BENCH_N environment variable
//    (default 10000; the paper uses 200000 -- set DRLI_BENCH_N=200000
//    to run at paper scale). DRLI_BENCH_QUERIES (default 30) controls
//    how many random weight vectors are averaged.
//  * Indexes are built once per (kind, distribution, n, d) and shared
//    across benchmark registrations within a binary.

#ifndef DRLI_BENCH_BENCH_UTIL_H_
#define DRLI_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>

#include "core/index_registry.h"
#include "data/generator.h"
#include "topk/query.h"

namespace drli {
namespace bench_util {

// DRLI_BENCH_N (default 10000).
std::size_t DefaultN();

// DRLI_BENCH_QUERIES (default 30).
std::size_t NumQueries();

// Lazily built, cached index. `kind` as in IndexBuildConfig.
const TopKIndex& GetIndex(const std::string& kind, Distribution dist,
                          std::size_t n, std::size_t d);

struct CostSample {
  double avg_tuples = 0.0;    // Definition 9, averaged over queries
  double avg_virtual = 0.0;   // zero-layer pseudo-tuple evaluations
};

// Runs NumQueries() random top-k queries (deterministic from `seed`)
// and averages the access cost.
CostSample AverageCost(const TopKIndex& index, std::size_t d, std::size_t k,
                       std::uint64_t seed);

// The shared dataset the cached indexes are built on.
const PointSet& GetDataset(Distribution dist, std::size_t n, std::size_t d);

// Registers one benchmark row named `name` that reports the average
// access cost of index `kind` for top-k queries on (dist, n, d) as the
// "tuples" counter (and zero-layer pseudo-tuple accesses as
// "virtual"). The index is built outside the timed region.
void RegisterCostBenchmark(const std::string& name, const std::string& kind,
                           Distribution dist, std::size_t n, std::size_t d,
                           std::size_t k);

}  // namespace bench_util
}  // namespace drli

#endif  // DRLI_BENCH_BENCH_UTIL_H_
