#include "bench/bench_util.h"

#include <cstdlib>
#include <map>
#include <memory>

#include "benchmark/benchmark.h"

#include "common/check.h"
#include "common/random.h"

namespace drli {
namespace bench_util {

namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

constexpr std::uint64_t kDataSeed = 20120401;  // ICDE 2012

}  // namespace

std::size_t DefaultN() {
  static const std::size_t n = EnvSize("DRLI_BENCH_N", 10000);
  return n;
}

std::size_t NumQueries() {
  static const std::size_t q = EnvSize("DRLI_BENCH_QUERIES", 30);
  return q;
}

const PointSet& GetDataset(Distribution dist, std::size_t n, std::size_t d) {
  static std::map<std::string, std::unique_ptr<PointSet>>* cache =
      new std::map<std::string, std::unique_ptr<PointSet>>();
  const std::string key = std::string(DistributionName(dist)) + "/" +
                          std::to_string(n) + "/" + std::to_string(d);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, std::make_unique<PointSet>(
                                 Generate(dist, n, d, kDataSeed)))
             .first;
  }
  return *it->second;
}

const TopKIndex& GetIndex(const std::string& kind, Distribution dist,
                          std::size_t n, std::size_t d) {
  static std::map<std::string, std::unique_ptr<TopKIndex>>* cache =
      new std::map<std::string, std::unique_ptr<TopKIndex>>();
  const std::string key = kind + "/" + DistributionName(dist) + "/" +
                          std::to_string(n) + "/" + std::to_string(d);
  auto it = cache->find(key);
  if (it == cache->end()) {
    IndexBuildConfig config;
    config.kind = kind;
    auto built = BuildIndex(config, GetDataset(dist, n, d));
    DRLI_CHECK(built.ok()) << built.status().ToString();
    it = cache->emplace(key, std::move(built).value()).first;
  }
  return *it->second;
}

CostSample AverageCost(const TopKIndex& index, std::size_t d, std::size_t k,
                       std::uint64_t seed) {
  Rng rng(seed);
  CostSample sample;
  const std::size_t q = NumQueries();
  for (std::size_t i = 0; i < q; ++i) {
    TopKQuery query;
    query.weights = rng.SimplexWeight(d);
    query.k = k;
    const TopKResult result = index.Query(query);
    sample.avg_tuples += static_cast<double>(result.stats.tuples_evaluated);
    sample.avg_virtual +=
        static_cast<double>(result.stats.virtual_evaluated);
  }
  sample.avg_tuples /= static_cast<double>(q);
  sample.avg_virtual /= static_cast<double>(q);
  return sample;
}

void RegisterCostBenchmark(const std::string& name, const std::string& kind,
                           Distribution dist, std::size_t n, std::size_t d,
                           std::size_t k) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [kind, dist, n, d, k](benchmark::State& state) {
        const TopKIndex& index = GetIndex(kind, dist, n, d);
        CostSample sample;
        for (auto _ : state) {
          sample = AverageCost(index, d, k, /*seed=*/k * 7919 + d);
        }
        state.counters["tuples"] = sample.avg_tuples;
        state.counters["virtual"] = sample.avg_virtual;
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace bench_util
}  // namespace drli
