// Fig. 14: DG+ vs DL+ with varying dimensionality d (k = 10). Expected shape: as Fig. 13 with zero layers on both sides.

namespace {
constexpr const char* kFigureName = "fig14";
}  // namespace
#define kKinds \
  { "dg+", "dl+" }
#define kSweepAxis SweepAxis::kD
#include "bench/sweep_main.inc"
