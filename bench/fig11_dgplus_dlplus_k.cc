// Fig. 11: DG+ vs DL+ with varying retrieval size k (d = 4). Expected shape: DL+ consistently below DG+, mirroring Fig. 10 with zero layers on both sides.

namespace {
constexpr const char* kFigureName = "fig11";
}  // namespace
#define kKinds \
  { "dg+", "dl+" }
#define kSweepAxis SweepAxis::kK
#include "bench/sweep_main.inc"
