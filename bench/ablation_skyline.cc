// Ablation: skyline algorithm choice for layer construction. The paper
// builds its layers with BSkyTree; this bench shows why, comparing the
// naive O(n^2) scan, sort-filter-skyline and the SkyTree-style
// partitioning on both distributions.
//
// Expected shape: SkyTree < SFS << naive, with the gap largest on
// anti-correlated data (big skylines).

#include <numeric>
#include <string>

#include "benchmark/benchmark.h"

#include "bench/bench_util.h"
#include "skyline/skyline.h"

namespace {

using drli::Distribution;
using drli::SkylineAlgorithm;

void Register(SkylineAlgorithm algorithm, Distribution dist, std::size_t n,
              std::size_t d) {
  const std::string name = std::string("ablation_skyline/") +
                           drli::DistributionName(dist) + "/" +
                           drli::SkylineAlgorithmName(algorithm) +
                           "/n:" + std::to_string(n);
  benchmark::RegisterBenchmark(
      name.c_str(),
      [algorithm, dist, n, d](benchmark::State& state) {
        const drli::PointSet& points =
            drli::bench_util::GetDataset(dist, n, d);
        std::size_t skyline_size = 0;
        for (auto _ : state) {
          const auto sky = drli::ComputeSkyline(points, algorithm);
          benchmark::DoNotOptimize(sky);
          skyline_size = sky.size();
        }
        state.counters["skyline"] = static_cast<double>(skyline_size);
      })
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t base = drli::bench_util::DefaultN();
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated}) {
    for (std::size_t n : {base / 4, base / 2, base}) {
      for (SkylineAlgorithm algorithm :
           {SkylineAlgorithm::kNaive, SkylineAlgorithm::kBnl,
            SkylineAlgorithm::kSfs, SkylineAlgorithm::kDivideAndConquer,
            SkylineAlgorithm::kSkyTree}) {
        Register(algorithm, dist, n, /*d=*/4);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
