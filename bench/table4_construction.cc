// Table IV: index construction time of each algorithm (seconds) at the
// default setting (paper: k = 10, d = 4, n = 200K; here n scales with
// DRLI_BENCH_N).
//
// Expected shape: HL and HL+ share one build; DG+ and DL+ add a
// negligible zero-layer cost (< 1%) over DG and DL; DL costs more than
// DG because it computes convex skylines on top of the skylines.
// (Absolute ordering of HL vs DG depends on the hull / skyline
// implementations; see EXPERIMENTS.md.)

#include <string>

#include "benchmark/benchmark.h"

#include "bench/bench_util.h"
#include "core/index_registry.h"

namespace {

void RegisterBuild(const std::string& kind, drli::Distribution dist) {
  const std::size_t n = drli::bench_util::DefaultN();
  const std::string name = std::string("table4/") +
                           drli::DistributionName(dist) + "/" + kind;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [kind, dist, n](benchmark::State& state) {
        const drli::PointSet& points =
            drli::bench_util::GetDataset(dist, n, /*d=*/4);
        std::size_t size = 0;
        for (auto _ : state) {
          drli::IndexBuildConfig config;
          config.kind = kind;
          auto index = drli::BuildIndex(config, points);
          benchmark::DoNotOptimize(index);
          size = index.value()->size();
        }
        state.counters["n"] = static_cast<double>(size);
      })
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
}

}  // namespace

int main(int argc, char** argv) {
  for (drli::Distribution dist : {drli::Distribution::kIndependent,
                                  drli::Distribution::kAnticorrelated}) {
    for (const char* kind : {"hl", "hl+", "dg", "dg+", "dl", "dl+"}) {
      RegisterBuild(kind, dist);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
