// Sustained mixed read/write serving against the dynamic index:
// ~95% top-k queries / ~5% writes (inserts and deletes) over a stream
// of operations, comparing
//   * the tiered engine with incremental auto-compaction (default),
//   * the tiered engine with compaction disabled (runs accumulate),
//   * the legacy flat-rebuild policy (stop-the-world Compact).
//
// Reports query QPS and latency percentiles per configuration and
// writes machine-readable JSON (BENCH_dynamic.json, or argv[1] /
// DRLI_BENCH_OUT). The p99 ratio between compaction-on and
// compaction-off is the headline number: incremental compaction must
// not stall the read stream (target <= 2x), while the flat policy's
// p99 exposes the rebuild spikes the tiered design removes.
//
// DRLI_BENCH_N scales the preloaded relation (default 10000);
// DRLI_BENCH_OPS the operation stream (default 30000).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/dynamic_index.h"
#include "data/generator.h"
#include "topk/query.h"

namespace {

using namespace drli;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct Row {
  const char* label = "";
  std::size_t n = 0;
  std::size_t ops = 0;
  std::size_t queries = 0;
  std::size_t writes = 0;
  double query_qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double write_p99_us = 0;
  std::size_t seals = 0;
  std::size_t compactions = 0;
  std::size_t final_runs = 0;
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[i];
}

Row RunStream(const char* label, const DynamicIndexOptions& options,
              const PointSet& preload, std::size_t ops) {
  Row row;
  row.label = label;
  row.n = preload.size();
  row.ops = ops;

  DynamicDualLayerIndex index(preload.dim(), options);
  std::vector<TupleId> live;
  live.reserve(preload.size() + ops / 10);
  for (std::size_t i = 0; i < preload.size(); ++i) {
    live.push_back(index.Insert(preload[i]));
  }

  // One rng drives the identical op schedule for every configuration.
  Rng rng(7);
  std::vector<double> query_us;
  std::vector<double> write_us;
  query_us.reserve(ops);
  Stopwatch op_timer;
  Stopwatch wall;
  double query_seconds = 0.0;
  for (std::size_t op = 0; op < ops; ++op) {
    const bool write = rng.Index(100) < 5;
    if (write) {
      op_timer.Restart();
      if (rng.Index(5) == 0 && !live.empty()) {
        const std::size_t victim = rng.Index(live.size());
        index.Erase(live[victim]);
        live[victim] = live.back();
        live.pop_back();
      } else {
        Point tuple(preload.dim());
        for (double& x : tuple) x = rng.Uniform();
        live.push_back(index.Insert(PointView(tuple.data(), tuple.size())));
      }
      write_us.push_back(op_timer.ElapsedSeconds() * 1e6);
      ++row.writes;
    } else {
      TopKQuery query;
      query.weights = rng.SimplexWeight(preload.dim());
      query.k = 10;
      op_timer.Restart();
      const TopKResult result = index.Query(query);
      const double seconds = op_timer.ElapsedSeconds();
      DRLI_CHECK(result.complete()) << label << ": " << result.error;
      query_us.push_back(seconds * 1e6);
      query_seconds += seconds;
      ++row.queries;
    }
  }
  (void)wall;

  std::sort(query_us.begin(), query_us.end());
  std::sort(write_us.begin(), write_us.end());
  row.query_qps = static_cast<double>(row.queries) / query_seconds;
  row.p50_us = Percentile(query_us, 0.50);
  row.p99_us = Percentile(query_us, 0.99);
  row.max_us = query_us.empty() ? 0.0 : query_us.back();
  row.write_p99_us = Percentile(write_us, 0.99);
  row.seals = index.engine().seal_count();
  row.compactions = index.engine().compaction_count();
  row.final_runs = index.engine().num_runs();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = EnvSize("DRLI_BENCH_N", 10000);
  const std::size_t ops = EnvSize("DRLI_BENCH_OPS", 30000);
  const PointSet preload =
      Generate(Distribution::kAnticorrelated, n, 4, /*seed=*/20120401);

  DynamicIndexOptions tiered_on;
  tiered_on.policy = MaintenancePolicy::kTiered;
  tiered_on.memtable_capacity = 1024;
  tiered_on.auto_compact = true;

  DynamicIndexOptions tiered_off = tiered_on;
  tiered_off.auto_compact = false;

  DynamicIndexOptions flat;
  flat.policy = MaintenancePolicy::kFlatRebuild;

  std::vector<Row> rows;
  rows.push_back(RunStream("tiered_compact_on", tiered_on, preload, ops));
  rows.push_back(RunStream("tiered_compact_off", tiered_off, preload, ops));
  rows.push_back(RunStream("flat_rebuild", flat, preload, ops));

  for (const Row& row : rows) {
    std::printf(
        "%-18s n=%-7zu ops=%zu (%zuq/%zuw) qps=%.0f p50=%.1fus "
        "p99=%.1fus max=%.1fus write_p99=%.1fus seals=%zu compactions=%zu "
        "runs=%zu\n",
        row.label, row.n, row.ops, row.queries, row.writes, row.query_qps,
        row.p50_us, row.p99_us, row.max_us, row.write_p99_us, row.seals,
        row.compactions, row.final_runs);
  }
  const double p99_ratio = rows[1].p99_us > 0.0
                               ? rows[0].p99_us / rows[1].p99_us
                               : 0.0;
  std::printf("p99 compaction-on / compaction-off = %.2fx (target <= 2x)\n",
              p99_ratio);
  if (p99_ratio > 2.0) {
    std::printf("WARNING: incremental compaction is stalling the read "
                "stream beyond the 2x budget\n");
  }

  const char* env_out = std::getenv("DRLI_BENCH_OUT");
  const std::string out_path = argc > 1             ? argv[1]
                               : env_out != nullptr ? env_out
                                                    : "BENCH_dynamic.json";
  std::ofstream out(out_path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "  {\"config\": \"%s\", \"n\": %zu, \"ops\": %zu, "
        "\"queries\": %zu, \"writes\": %zu, \"query_qps\": %.1f, "
        "\"p50_us\": %.2f, \"p99_us\": %.2f, \"max_us\": %.2f, "
        "\"write_p99_us\": %.2f, \"seals\": %zu, \"compactions\": %zu, "
        "\"final_runs\": %zu}%s\n",
        r.label, r.n, r.ops, r.queries, r.writes, r.query_qps, r.p50_us,
        r.p99_us, r.max_us, r.write_p99_us, r.seals, r.compactions,
        r.final_runs, i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
