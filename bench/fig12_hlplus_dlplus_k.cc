// Fig. 12: HL+ vs DL+ with varying retrieval size k (d = 4). Expected shape: DL+ far below HL+, and the gap widens with k (about an order of magnitude at k = 50 on anti-correlated data).

namespace {
constexpr const char* kFigureName = "fig12";
}  // namespace
#define kKinds \
  { "hl+", "dl+" }
#define kSweepAxis SweepAxis::kK
#include "bench/sweep_main.inc"
