// Microbenchmarks for the substrates underneath the indexes: convex
// hull construction, convex-skyline extraction, the EDS feasibility LP,
// k-means, the Section V-A weight-table lookup, and the 2-d kinetic
// rank sweep. These are timing benchmarks proper (google-benchmark
// loops), unlike the figure harnesses whose headline is the access
// counter.

#include <algorithm>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"

#include "bench/bench_util.h"
#include "cluster/kmeans.h"
#include "common/kernels_batch.h"
#include "common/point.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/soa_points.h"
#include "core/eds.h"
#include "core/rank_sweep_2d.h"
#include "core/zero_layer.h"
#include "data/generator.h"
#include "geometry/convex_hull.h"
#include "geometry/convex_hull_2d.h"
#include "geometry/convex_skyline.h"

namespace {

using drli::Distribution;
using drli::PointSet;

void BM_ConvexHull(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const PointSet& pts =
      drli::bench_util::GetDataset(Distribution::kIndependent, n, d);
  std::size_t facets = 0;
  for (auto _ : state) {
    drli::ConvexHull hull;
    drli::ConvexHullOptions options;
    const auto status = drli::ComputeConvexHull(pts, options, &hull);
    benchmark::DoNotOptimize(status);
    facets = hull.facets.size();
  }
  state.counters["facets"] = static_cast<double>(facets);
}
BENCHMARK(BM_ConvexHull)
    ->Args({1000, 2})
    ->Args({1000, 3})
    ->Args({1000, 4})
    ->Args({1000, 5})
    ->Args({5000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_ConvexSkyline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const PointSet& pts =
      drli::bench_util::GetDataset(Distribution::kAnticorrelated, n, d);
  std::size_t members = 0;
  for (auto _ : state) {
    const drli::ConvexSkylineResult csky = drli::ComputeConvexSkyline(pts);
    benchmark::DoNotOptimize(csky.members.data());
    members = csky.members.size();
  }
  state.counters["members"] = static_cast<double>(members);
}
BENCHMARK(BM_ConvexSkyline)
    ->Args({2000, 2})
    ->Args({2000, 3})
    ->Args({2000, 4})
    ->Args({2000, 5})
    ->Unit(benchmark::kMillisecond);

void BM_LowerLeftChain2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const PointSet& pts =
      drli::bench_util::GetDataset(Distribution::kAnticorrelated, n, 2);
  for (auto _ : state) {
    const auto chain = drli::LowerLeftChain2D(pts);
    benchmark::DoNotOptimize(chain.data());
  }
}
BENCHMARK(BM_LowerLeftChain2D)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_EdsFacetTest(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const PointSet pts = drli::GenerateIndependent(256, d, 3);
  drli::Rng rng(4);
  // Pre-draw facet/target pairs.
  std::vector<std::vector<drli::TupleId>> facets;
  std::vector<drli::TupleId> targets;
  for (int i = 0; i < 64; ++i) {
    std::vector<drli::TupleId> facet;
    while (facet.size() < d) {
      const auto id = static_cast<drli::TupleId>(rng.Index(pts.size()));
      if (std::find(facet.begin(), facet.end(), id) == facet.end()) {
        facet.push_back(id);
      }
    }
    facets.push_back(facet);
    targets.push_back(static_cast<drli::TupleId>(rng.Index(pts.size())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const bool eds =
        drli::FacetIsEds(pts, facets[i & 63], pts[targets[i & 63]]);
    benchmark::DoNotOptimize(eds);
    ++i;
  }
}
BENCHMARK(BM_EdsFacetTest)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

// Dimension-specialized point kernels (common/point.h): d = 2/3/4 hit
// the unrolled fast paths, d = 5 exercises the generic fallback.
void BM_DominatesKernel(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const PointSet pts = drli::GenerateAnticorrelated(1024, d, 7);
  std::size_t i = 0;
  for (auto _ : state) {
    const bool dom = drli::Dominates(pts[i & 1023], pts[(i * 7 + 13) & 1023]);
    benchmark::DoNotOptimize(dom);
    ++i;
  }
}
BENCHMARK(BM_DominatesKernel)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_WeaklyDominatesKernel(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const PointSet pts = drli::GenerateAnticorrelated(1024, d, 8);
  std::size_t i = 0;
  for (auto _ : state) {
    const bool dom =
        drli::WeaklyDominates(pts[i & 1023], pts[(i * 5 + 11) & 1023]);
    benchmark::DoNotOptimize(dom);
    ++i;
  }
}
BENCHMARK(BM_WeaklyDominatesKernel)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_CompareKernel(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const PointSet pts = drli::GenerateAnticorrelated(1024, d, 9);
  std::size_t i = 0;
  for (auto _ : state) {
    const drli::DomRel rel =
        drli::Compare(pts[i & 1023], pts[(i * 3 + 17) & 1023]);
    benchmark::DoNotOptimize(rel);
    ++i;
  }
}
BENCHMARK(BM_CompareKernel)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_ScoreKernel(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const PointSet pts = drli::GenerateAnticorrelated(1024, d, 10);
  drli::Rng rng(11);
  const std::vector<double> w = rng.SimplexWeight(d);
  std::size_t i = 0;
  for (auto _ : state) {
    const double score = drli::Score(drli::PointView(w), pts[i & 1023]);
    benchmark::DoNotOptimize(score);
    ++i;
  }
}
BENCHMARK(BM_ScoreKernel)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

// Batched SoA kernels (common/kernels_batch.h). The label reports the
// dispatch target the run actually used; set DRLI_NO_SIMD=1 to measure
// the scalar fallback on the same machine.
void BM_ScoreBatchKernel(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const std::size_t count = static_cast<std::size_t>(state.range(1));
  const PointSet pts = drli::GenerateAnticorrelated(4096, d, 21);
  const drli::SoaPointSet soa = drli::SoaPointSet::FromPointSet(pts);
  drli::Rng rng(22);
  const std::vector<double> w = rng.SimplexWeight(d);
  std::vector<std::uint32_t> ids(count);
  for (std::uint32_t& id : ids) {
    id = static_cast<std::uint32_t>(rng.Index(pts.size()));
  }
  std::vector<double> out(count);
  for (auto _ : state) {
    drli::ScoreBatch(drli::PointView(w), soa, ids.data(), ids.size(),
                     out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * count));
  state.SetLabel(drli::SimdTargetName(drli::ActiveSimdTarget()));
}
BENCHMARK(BM_ScoreBatchKernel)
    ->Args({4, 8})
    ->Args({4, 64})
    ->Args({4, 1024})
    ->Args({2, 1024})
    ->Args({5, 1024});

void BM_ScoreRangeKernel(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const PointSet pts = drli::GenerateAnticorrelated(n, d, 23);
  const drli::SoaPointSet soa = drli::SoaPointSet::FromPointSet(pts);
  drli::Rng rng(24);
  const std::vector<double> w = rng.SimplexWeight(d);
  std::vector<double> out(n);
  for (auto _ : state) {
    drli::ScoreRange(drli::PointView(w), soa, 0, n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
  state.SetLabel(drli::SimdTargetName(drli::ActiveSimdTarget()));
}
BENCHMARK(BM_ScoreRangeKernel)->Args({4, 4096})->Args({2, 4096});

void BM_DominatesAnyBatchKernel(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const std::size_t count = static_cast<std::size_t>(state.range(1));
  const PointSet pts = drli::GenerateAnticorrelated(4096, d, 25);
  const drli::SoaPointSet soa = drli::SoaPointSet::FromPointSet(pts);
  drli::Rng rng(26);
  std::vector<std::uint32_t> ids(count);
  for (std::uint32_t& id : ids) {
    id = static_cast<std::uint32_t>(rng.Index(pts.size()));
  }
  // The origin is dominated by nothing, so every probe sweeps the whole
  // batch: worst-case cost, no data-dependent short-circuit.
  const drli::Point q(d, 0.0);
  for (auto _ : state) {
    const bool any =
        drli::DominatesAnyBatch(soa, ids.data(), ids.size(), drli::PointView(q));
    benchmark::DoNotOptimize(any);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * count));
  state.SetLabel(drli::SimdTargetName(drli::ActiveSimdTarget()));
}
BENCHMARK(BM_DominatesAnyBatchKernel)->Args({4, 256})->Args({3, 256});

void BM_KMeans(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const PointSet& pts =
      drli::bench_util::GetDataset(Distribution::kIndependent, n, 4);
  for (auto _ : state) {
    drli::KMeansOptions options;
    options.num_clusters = 64;
    const drli::KMeansResult result = drli::KMeans(pts, options);
    benchmark::DoNotOptimize(result.centroids.data());
  }
}
BENCHMARK(BM_KMeans)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_WeightTableLookup(benchmark::State& state) {
  const PointSet& pts =
      drli::bench_util::GetDataset(Distribution::kAnticorrelated, 100000, 2);
  const auto chain32 = drli::LowerLeftChain2D(pts);
  std::vector<drli::TupleId> chain(chain32.begin(), chain32.end());
  const drli::WeightRangeTable table =
      drli::WeightRangeTable::Build(pts, chain);
  drli::Rng rng(5);
  std::vector<double> w1s(1024);
  for (double& w : w1s) w = rng.Uniform(0.001, 0.999);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(w1s[i & 1023]));
    ++i;
  }
  state.counters["chain"] = static_cast<double>(table.size());
}
BENCHMARK(BM_WeightTableLookup);

void BM_RankSweep2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const PointSet& pts =
      drli::bench_util::GetDataset(Distribution::kAnticorrelated, n, 2);
  std::size_t intervals = 0;
  for (auto _ : state) {
    const drli::RankSweepResult sweep = drli::SweepTopKSets2D(pts, k);
    benchmark::DoNotOptimize(sweep.topk_sets.data());
    intervals = sweep.topk_sets.size();
  }
  state.counters["intervals"] = static_cast<double>(intervals);
}
BENCHMARK(BM_RankSweep2D)
    ->Args({500, 10})
    ->Args({2000, 10})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
