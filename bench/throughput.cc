// Query-engine throughput: build seconds (serial vs. parallel) and
// batch QPS (1 worker vs. DRLI_THREADS workers) for DL+ across
// n x d -- the wall-clock companion to the tuples-evaluated figures.
//
// Unlike the figure benches this one is not averaged through Google
// Benchmark: it times explicit batches so the 1-thread and N-thread
// numbers come from the identical workload, and it emits machine-
// readable JSON (BENCH_throughput.json in the working directory, or
// the path given as argv[1] / DRLI_BENCH_OUT).
//
// DRLI_BENCH_N overrides the n sweep with a single cardinality (the CI
// smoke uses 5000); DRLI_BENCH_QUERIES scales the batch (default 4000).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parallel_for.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "core/dual_layer.h"
#include "data/generator.h"

namespace {

using namespace drli;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct Row {
  std::size_t n = 0;
  std::size_t d = 0;
  std::size_t batch = 0;
  std::size_t threads = 0;          // workers used for the parallel runs
  double build_seconds_serial = 0;  // build_threads = 1
  double build_seconds_parallel = 0;
  double single_query_seconds = 0;  // serial loop, reused scratch
  // Same loop with an armed-but-never-firing ExecBudget (generous
  // max_evals + deadline + live cancel token): the serving-path cost of
  // metering every traversal step through BudgetGate.
  double single_query_budgeted_seconds = 0;
  double batch_qps_1t = 0;
  double batch_qps_nt = 0;
  // The two clocks of the parallel batch, straight from BatchStats:
  // wall is the single clock around the batch (the QPS denominator),
  // query_seconds is the SUM of per-query clocks -- over parallel
  // workers it exceeds wall by roughly the worker count, which is why
  // QPS must never be computed from it.
  double batch_wall_seconds_nt = 0;
  double batch_query_seconds_nt = 0;
  double avg_tuples = 0;  // Definition 9, for cross-checking
  const char* kernel = "";  // active score-kernel dispatch target
};

Row Measure(std::size_t n, std::size_t d, std::size_t num_queries,
            std::size_t threads) {
  Row row;
  row.n = n;
  row.d = d;
  row.batch = num_queries;
  row.threads = threads;

  const PointSet points = GenerateAnticorrelated(n, d, /*seed=*/20120401);
  DualLayerOptions options;
  options.build_zero_layer = true;

  options.build_threads = 1;
  Stopwatch timer;
  const DualLayerIndex index = DualLayerIndex::Build(points, options);
  row.build_seconds_serial = timer.ElapsedSeconds();

  options.build_threads = threads;
  timer.Restart();
  const DualLayerIndex parallel_index = DualLayerIndex::Build(points, options);
  row.build_seconds_parallel = timer.ElapsedSeconds();
  DRLI_CHECK(parallel_index.coarse_out() == index.coarse_out() &&
             parallel_index.fine_out() == index.fine_out())
      << "parallel build diverged from serial build";

  Rng rng(42);
  std::vector<TopKQuery> queries;
  queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    queries.push_back(TopKQuery{rng.SimplexWeight(d), /*k=*/10});
  }

  row.kernel = SimdTargetName(ActiveSimdTarget());

  // Warmup pass: faults in the index arrays, seeds the scratch, and
  // lets the frequency governor settle before anything is timed.
  QueryScratch scratch;
  for (const TopKQuery& query : queries) {
    (void)index.Query(query, &scratch);
  }

  // Single-thread per-query latency with an explicitly reused scratch.
  std::size_t tuples = 0;
  timer.Restart();
  for (const TopKQuery& query : queries) {
    tuples += index.Query(query, &scratch).stats.tuples_evaluated;
  }
  row.single_query_seconds =
      timer.ElapsedSeconds() / static_cast<double>(num_queries);
  row.avg_tuples =
      static_cast<double>(tuples) / static_cast<double>(num_queries);

  // Budget-gate overhead: identical queries, budgets armed wide enough
  // that no query ever trips (every result must stay complete).
  CancelToken cancel;
  std::vector<TopKQuery> budgeted = queries;
  for (TopKQuery& query : budgeted) {
    query.budget.deadline_seconds = 3600.0;
    query.budget.max_evals = n + 1;
    query.budget.cancel = &cancel;
  }
  std::size_t budgeted_tuples = 0;
  timer.Restart();
  for (const TopKQuery& query : budgeted) {
    const TopKResult result = index.Query(query, &scratch);
    DRLI_CHECK(result.complete()) << "armed budget tripped unexpectedly";
    budgeted_tuples += result.stats.tuples_evaluated;
  }
  row.single_query_budgeted_seconds =
      timer.ElapsedSeconds() / static_cast<double>(num_queries);
  DRLI_CHECK(budgeted_tuples == tuples)
      << "budgeted traversal changed the evaluation count";

  // Batch throughput: identical workload, 1 worker vs. `threads`. QPS
  // divides by BatchStats::wall_seconds -- the batch's single wall
  // clock -- never by the sum of per-query clocks, which over parallel
  // workers overstates elapsed time by ~the worker count.
  setenv("DRLI_THREADS", "1", 1);
  BatchStats serial_stats;
  const std::vector<TopKResult> serial_results =
      index.QueryBatch(queries, BatchOptions{}, &serial_stats);
  row.batch_qps_1t =
      static_cast<double>(num_queries) / serial_stats.wall_seconds;

  setenv("DRLI_THREADS", std::to_string(threads).c_str(), 1);
  BatchStats parallel_stats;
  const std::vector<TopKResult> parallel_results =
      index.QueryBatch(queries, BatchOptions{}, &parallel_stats);
  row.batch_qps_nt =
      static_cast<double>(num_queries) / parallel_stats.wall_seconds;
  row.batch_wall_seconds_nt = parallel_stats.wall_seconds;
  row.batch_query_seconds_nt = parallel_stats.merged.elapsed_seconds;

  for (std::size_t i = 0; i < num_queries; ++i) {
    DRLI_CHECK(serial_results[i].items.size() ==
               parallel_results[i].items.size());
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_queries = EnvSize("DRLI_BENCH_QUERIES", 4000);
  const std::size_t threads = EnvSize("DRLI_BENCH_THREADS", 4);

  std::vector<std::size_t> ns;
  if (std::getenv("DRLI_BENCH_N") != nullptr) {
    ns.push_back(EnvSize("DRLI_BENCH_N", 10000));
  } else {
    ns = {10000, 100000};
  }

  std::vector<Row> rows;
  for (std::size_t n : ns) {
    for (std::size_t d : {std::size_t{2}, std::size_t{4}}) {
      Row row = Measure(n, d, num_queries, threads);
      std::printf(
          "n=%-7zu d=%zu kernel=%s build_serial=%.3fs build_parallel=%.3fs "
          "query=%.2fus budgeted=%.2fus overhead=%+.1f%% "
          "qps_1t=%.0f qps_%zut=%.0f speedup=%.2fx tuples=%.1f\n",
          row.n, row.d, row.kernel, row.build_seconds_serial,
          row.build_seconds_parallel, row.single_query_seconds * 1e6,
          row.single_query_budgeted_seconds * 1e6,
          100.0 * (row.single_query_budgeted_seconds /
                       row.single_query_seconds -
                   1.0),
          row.batch_qps_1t, row.threads, row.batch_qps_nt,
          row.batch_qps_nt / row.batch_qps_1t, row.avg_tuples);
      std::fflush(stdout);
      rows.push_back(row);
    }
  }

  const char* env_out = std::getenv("DRLI_BENCH_OUT");
  const std::string out_path = argc > 1            ? argv[1]
                               : env_out != nullptr ? env_out
                                                    : "BENCH_throughput.json";
  std::ofstream out(out_path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buffer[640];
    std::snprintf(
        buffer, sizeof(buffer),
        "  {\"n\": %zu, \"d\": %zu, \"batch\": %zu, \"threads\": %zu, "
        "\"kernel\": \"%s\", "
        "\"build_seconds_serial\": %.6f, \"build_seconds_parallel\": %.6f, "
        "\"single_query_seconds\": %.9f, "
        "\"single_query_budgeted_seconds\": %.9f, \"batch_qps_1t\": %.1f, "
        "\"batch_qps_nt\": %.1f, \"batch_wall_seconds_nt\": %.6f, "
        "\"batch_query_seconds_nt\": %.6f, \"avg_tuples\": %.2f}%s\n",
        r.n, r.d, r.batch, r.threads, r.kernel, r.build_seconds_serial,
        r.build_seconds_parallel, r.single_query_seconds,
        r.single_query_budgeted_seconds, r.batch_qps_1t, r.batch_qps_nt,
        r.batch_wall_seconds_nt, r.batch_query_seconds_nt, r.avg_tuples,
        i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  DRLI_CHECK(bool(out)) << "failed to write " << out_path;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
