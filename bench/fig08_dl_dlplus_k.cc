// Fig. 8: DL vs DL+ with varying retrieval size k (d = 4). Expected shape: DL+ accesses ~2x fewer tuples than DL at every k; cost grows roughly linearly with k.

namespace {
constexpr const char* kFigureName = "fig08";
}  // namespace
#define kKinds \
  { "dl", "dl+" }
#define kSweepAxis SweepAxis::kK
#include "bench/sweep_main.inc"
