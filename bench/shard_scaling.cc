// Sharded serving scaling: build time and query throughput for
// ShardedDualLayerIndex at S in {1, 4, 16}, the wall-clock evidence
// for DESIGN.md §7. Three effects are measured per (n, d, S):
//
//   * build: partition seconds + the parallel shard-build loop's wall
//     and cpu seconds. Shard builds are the coarsest independent tasks
//     in the system, so on an m-core box wall ~ cpu / min(S, m); on a
//     single core the speedup comes only from the superlinear
//     per-shard build cost (S shards of n/S tuples cost ~S^(1-a) of
//     one n-tuple build for cost ~ n^a, a > 1).
//   * serving: single-thread QPS over a fixed simplex-weight batch at
//     k = 10 and k = 100, identical workload across S.
//   * pruning: mean shards touched per query -- the fraction of S the
//     hyperplane partition lets the coordinator skip via corner
//     bounds. Random partitions touch ~S; hyperplane stays near the
//     few slabs that hold every query's frontier.
//
// Every S > 1 answer is checked bit-identical to the S = 1 answer for
// the same query before it is counted -- the benchmark doubles as a
// full-scale differential test.
//
// DRLI_BENCH_N overrides the cardinality (default 1000000; the CI
// smoke uses a few thousand), DRLI_BENCH_QUERIES the batch size
// (default 2000). Output: BENCH_shard.json (or argv[1] /
// DRLI_BENCH_OUT).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "data/generator.h"
#include "shard/sharded_index.h"

namespace {

using namespace drli;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct KRow {
  std::size_t k = 0;
  double qps = 0;
  double mean_shards_touched = 0;
  double avg_tuples = 0;
};

struct Row {
  std::size_t n = 0;
  std::size_t d = 0;
  std::size_t shards = 0;
  unsigned hardware_threads = 0;
  double partition_seconds = 0;
  double build_wall_seconds = 0;
  double build_cpu_seconds = 0;
  double build_total_seconds = 0;
  KRow at_k[2];
  const char* kernel = "";
};

Row Measure(const PointSet& points, std::size_t num_shards,
            std::size_t num_queries,
            std::vector<std::vector<TopKResult>>* reference) {
  Row row;
  row.n = points.size();
  row.d = points.dim();
  row.shards = num_shards;
  row.hardware_threads = std::thread::hardware_concurrency();
  row.kernel = SimdTargetName(ActiveSimdTarget());

  ShardedBuildOptions options;
  options.num_shards = num_shards;
  options.partitioner = ShardPartitioner::kHyperplane;
  options.shard_options.build_zero_layer = true;
  const ShardedDualLayerIndex index =
      ShardedDualLayerIndex::Build(points, options);
  const ShardedBuildStats& bs = index.build_stats();
  row.partition_seconds = bs.partition_seconds;
  row.build_wall_seconds = bs.build_wall_seconds;
  row.build_cpu_seconds = bs.build_cpu_seconds;
  row.build_total_seconds = bs.total_seconds;

  const std::size_t ks[2] = {10, 100};
  for (std::size_t ki = 0; ki < 2; ++ki) {
    Rng rng(42);
    std::vector<TopKQuery> queries;
    queries.reserve(num_queries);
    for (std::size_t i = 0; i < num_queries; ++i) {
      queries.push_back(TopKQuery{rng.SimplexWeight(points.dim()), ks[ki]});
    }

    // Warmup pass faults in every shard the batch will touch.
    for (std::size_t i = 0; i < num_queries && i < 64; ++i) {
      (void)index.Query(queries[i]);
    }

    std::size_t touched = 0;
    std::size_t tuples = 0;
    std::vector<TopKResult> results;
    results.reserve(num_queries);
    Stopwatch timer;
    for (const TopKQuery& query : queries) {
      results.push_back(index.Query(query));
    }
    const double seconds = timer.ElapsedSeconds();
    for (const TopKResult& result : results) {
      DRLI_CHECK(result.complete()) << "unbudgeted query stopped early";
      touched += result.stats.shards_touched;
      tuples += result.stats.tuples_evaluated;
    }

    // Differential check against the S = 1 run of the same (d, k).
    std::vector<TopKResult>& baseline = (*reference)[ki];
    if (num_shards == 1) {
      baseline = std::move(results);
    } else {
      for (std::size_t i = 0; i < num_queries; ++i) {
        const TopKResult& got = results[i];
        const TopKResult& want = baseline[i];
        DRLI_CHECK(got.items.size() == want.items.size())
            << "S=" << num_shards << " answer size diverged on query " << i;
        for (std::size_t r = 0; r < got.items.size(); ++r) {
          DRLI_CHECK(got.items[r].id == want.items[r].id &&
                     got.items[r].score == want.items[r].score)
              << "S=" << num_shards << " answer diverged on query " << i
              << " rank " << r;
        }
      }
    }

    row.at_k[ki].k = ks[ki];
    row.at_k[ki].qps = static_cast<double>(num_queries) / seconds;
    row.at_k[ki].mean_shards_touched =
        static_cast<double>(touched) / static_cast<double>(num_queries);
    row.at_k[ki].avg_tuples =
        static_cast<double>(tuples) / static_cast<double>(num_queries);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = EnvSize("DRLI_BENCH_N", 1000000);
  const std::size_t num_queries = EnvSize("DRLI_BENCH_QUERIES", 2000);

  std::vector<Row> rows;
  for (std::size_t d : {std::size_t{2}, std::size_t{4}}) {
    const PointSet points = GenerateAnticorrelated(n, d, /*seed=*/20120401);
    std::vector<std::vector<TopKResult>> reference(2);
    double s1_build = 0.0;
    for (std::size_t shards : {std::size_t{1}, std::size_t{4},
                               std::size_t{16}}) {
      Row row = Measure(points, shards, num_queries, &reference);
      if (shards == 1) s1_build = row.build_total_seconds;
      std::printf(
          "n=%-8zu d=%zu S=%-3zu build=%.2fs (partition=%.3fs wall=%.2fs "
          "cpu=%.2fs, %.2fx vs S=1) qps_k10=%.0f touched_k10=%.2f "
          "qps_k100=%.0f touched_k100=%.2f kernel=%s\n",
          row.n, row.d, row.shards, row.build_total_seconds,
          row.partition_seconds, row.build_wall_seconds,
          row.build_cpu_seconds, s1_build / row.build_total_seconds,
          row.at_k[0].qps, row.at_k[0].mean_shards_touched, row.at_k[1].qps,
          row.at_k[1].mean_shards_touched, row.kernel);
      std::fflush(stdout);
      rows.push_back(row);
    }
  }

  const char* env_out = std::getenv("DRLI_BENCH_OUT");
  const std::string out_path = argc > 1            ? argv[1]
                               : env_out != nullptr ? env_out
                                                    : "BENCH_shard.json";
  std::ofstream out(out_path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buffer[640];
    std::snprintf(
        buffer, sizeof(buffer),
        "  {\"n\": %zu, \"d\": %zu, \"shards\": %zu, "
        "\"hardware_threads\": %u, \"kernel\": \"%s\", "
        "\"partition_seconds\": %.6f, \"build_wall_seconds\": %.6f, "
        "\"build_cpu_seconds\": %.6f, \"build_total_seconds\": %.6f, "
        "\"qps_k10\": %.1f, \"mean_shards_touched_k10\": %.3f, "
        "\"avg_tuples_k10\": %.2f, "
        "\"qps_k100\": %.1f, \"mean_shards_touched_k100\": %.3f, "
        "\"avg_tuples_k100\": %.2f}%s\n",
        r.n, r.d, r.shards, r.hardware_threads, r.kernel,
        r.partition_seconds, r.build_wall_seconds, r.build_cpu_seconds,
        r.build_total_seconds, r.at_k[0].qps,
        r.at_k[0].mean_shards_touched, r.at_k[0].avg_tuples, r.at_k[1].qps,
        r.at_k[1].mean_shards_touched, r.at_k[1].avg_tuples,
        i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  DRLI_CHECK(bool(out)) << "failed to write " << out_path;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
