// Ablation: the value of the ∃-dominance machinery and of the EDS edge
// policy (not in the paper; motivated by the design choices of Section
// III-B).
//
// Rows compare, at the default setting (d = 4, k = 10):
//   * no-fine     -- fine layers disabled: the structure degenerates to
//                    a Dominant Graph (coarse ∀-edges only);
//   * single-facet -- one qualifying EDS facet per tuple (the default:
//                    minimal in-edges, latest unlock);
//   * all-facets  -- edges from every qualifying facet (more in-edges
//                    unlock tuples earlier, so cost can only grow).
//
// Expected shape: no-fine >> single-facet, all-facets >= single-facet.

#include <map>
#include <memory>
#include <string>

#include "benchmark/benchmark.h"

#include "bench/bench_util.h"
#include "core/dual_layer.h"

namespace {

using drli::Distribution;
using drli::DualLayerIndex;
using drli::DualLayerOptions;

const DualLayerIndex& GetVariant(const std::string& variant,
                                 Distribution dist, std::size_t n,
                                 std::size_t d) {
  static auto* cache = new std::map<std::string, std::unique_ptr<DualLayerIndex>>();
  const std::string key =
      variant + "/" + drli::DistributionName(dist) + std::to_string(n);
  auto it = cache->find(key);
  if (it == cache->end()) {
    DualLayerOptions options;
    if (variant == "no-fine") {
      options.enable_fine_layers = false;
    } else if (variant == "all-facets") {
      options.eds_policy = drli::EdsPolicy::kAllFacets;
    }
    options.name = variant;
    it = cache->emplace(key,
                        std::make_unique<DualLayerIndex>(DualLayerIndex::Build(
                            drli::bench_util::GetDataset(dist, n, d),
                            options)))
             .first;
  }
  return *it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = drli::bench_util::DefaultN();
  const std::size_t d = 4;
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated}) {
    for (const char* variant : {"no-fine", "single-facet", "all-facets"}) {
      for (std::size_t k : {10u, 50u}) {
        const std::string name = std::string("ablation_eds/") +
                                 drli::DistributionName(dist) + "/" +
                                 variant + "/k:" + std::to_string(k);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [variant = std::string(variant), dist, n, d,
             k](benchmark::State& state) {
              const DualLayerIndex& index = GetVariant(variant, dist, n, d);
              drli::bench_util::CostSample sample;
              for (auto _ : state) {
                sample = drli::bench_util::AverageCost(index, d, k, 97 + k);
              }
              state.counters["tuples"] = sample.avg_tuples;
              state.counters["fine_edges"] = static_cast<double>(
                  index.build_stats().num_fine_edges);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
