// Extension: the related-work families of Section VII -- list-based
// (FA/TA/NRA) and view-based (PREFER/LPTA) -- against the layer-based
// indexes on the same workload. Not a paper figure, but it completes
// the taxonomy: list algorithms degrade on anti-correlated lists and
// view reuse depends on how close a materialized view is, while the
// dual-resolution layers stay selective.

#include <string>

#include "benchmark/benchmark.h"

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using drli::Distribution;
  const std::size_t n = drli::bench_util::DefaultN();
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated}) {
    for (std::size_t k : {10u, 50u}) {
      for (const char* kind :
           {"fa", "ta", "nra", "prefer", "lpta", "pli", "hl+", "dl+"}) {
        const std::string name = std::string("list_baselines/") +
                                 drli::DistributionName(dist) + "/" + kind +
                                 "/k:" + std::to_string(k);
        drli::bench_util::RegisterCostBenchmark(name, kind, dist, n, /*d=*/4,
                                                k);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
