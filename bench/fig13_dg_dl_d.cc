// Fig. 13: DG vs DL with varying dimensionality d (k = 10). Expected shape: the gap grows with d (about 2.5x at d = 5 on anti-correlated data).

namespace {
constexpr const char* kFigureName = "fig13";
}  // namespace
#define kKinds \
  { "dg", "dl" }
#define kSweepAxis SweepAxis::kD
#include "bench/sweep_main.inc"
