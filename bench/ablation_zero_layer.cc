// Ablation: zero-layer cluster count (Section V-B leaves the k-means
// cluster count to "the instructions in [5]"; the library defaults to
// ceil(sqrt(|L1|))). Sweeps explicit cluster counts and the flat
// (DG+-style, no fine split) variant at d = 4, k = 10.
//
// Expected shape: a broad sweet spot -- too few clusters make loose
// pseudo-tuple corners that unlock most of L1 anyway; too many approach
// one pseudo-tuple per tuple (virtual evaluations grow). The fine split
// of L0 (DL+ proper) should not lose to the flat variant.

#include <map>
#include <memory>
#include <string>

#include "benchmark/benchmark.h"

#include "bench/bench_util.h"
#include "core/dual_layer.h"

namespace {

using drli::Distribution;
using drli::DualLayerIndex;
using drli::DualLayerOptions;

const DualLayerIndex& GetVariant(std::size_t clusters, bool fine_split,
                                 Distribution dist, std::size_t n,
                                 std::size_t d) {
  static auto* cache =
      new std::map<std::string, std::unique_ptr<DualLayerIndex>>();
  const std::string key = std::to_string(clusters) +
                          (fine_split ? "s" : "f") +
                          drli::DistributionName(dist) + std::to_string(n);
  auto it = cache->find(key);
  if (it == cache->end()) {
    DualLayerOptions options;
    options.build_zero_layer = true;
    options.zero_layer_clusters = clusters;
    options.zero_layer_fine_split = fine_split;
    it = cache->emplace(key,
                        std::make_unique<DualLayerIndex>(DualLayerIndex::Build(
                            drli::bench_util::GetDataset(dist, n, d),
                            options)))
             .first;
  }
  return *it->second;
}

void Register(std::size_t clusters, bool fine_split, Distribution dist,
              std::size_t n, std::size_t d) {
  const std::string label =
      clusters == 0 ? std::string("sqrt") : std::to_string(clusters);
  const std::string name = std::string("ablation_zero/") +
                           drli::DistributionName(dist) + "/clusters:" +
                           label + (fine_split ? "/split" : "/flat");
  benchmark::RegisterBenchmark(
      name.c_str(),
      [clusters, fine_split, dist, n, d](benchmark::State& state) {
        const DualLayerIndex& index =
            GetVariant(clusters, fine_split, dist, n, d);
        drli::bench_util::CostSample sample;
        for (auto _ : state) {
          sample = drli::bench_util::AverageCost(index, d, /*k=*/10, 131);
        }
        state.counters["tuples"] = sample.avg_tuples;
        state.counters["virtual"] = sample.avg_virtual;
        state.counters["pseudo"] =
            static_cast<double>(index.build_stats().num_virtual);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = drli::bench_util::DefaultN();
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated}) {
    for (std::size_t clusters : {4u, 16u, 64u, 256u, 0u}) {
      Register(clusters, /*fine_split=*/true, dist, n, /*d=*/4);
    }
    // DG+-style flat zero layer at the default cluster count.
    Register(/*clusters=*/0, /*fine_split=*/false, dist, n, /*d=*/4);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
