// Ablation: disk I/O under the paper's layer-clustered storage
// discussion ("tuples in the same layer are stored in the same disk
// block"). For each index the query access trace is replayed against a
// page layout that packs its own layers into fixed-size pages, and
// against a scattered (shuffled heap file) layout.
//
// Counters: "pages" = distinct pages touched (cold reads), "lru" =
// fetches under a small LRU buffer pool, "scattered" = distinct pages
// under the shuffled layout. Expected shape: clustered layouts touch
// far fewer pages than scattered ones, and DL/DL+ touch the fewest,
// tracking their lower tuple-access cost.

#include <memory>
#include <numeric>
#include <string>

#include "benchmark/benchmark.h"

#include "bench/bench_util.h"
#include "baselines/dominant_graph.h"
#include "baselines/hybrid_layer.h"
#include "baselines/onion.h"
#include "common/random.h"
#include "core/dual_layer.h"
#include "storage/page_layout.h"

namespace {

using drli::Distribution;
using drli::PageLayout;
using drli::PointSet;
using drli::TupleId;

constexpr std::size_t kTuplesPerPage = 128;
constexpr std::size_t kBufferFrames = 8;

PageLayout ScatteredLayout(std::size_t n) {
  std::vector<TupleId> shuffled(n);
  std::iota(shuffled.begin(), shuffled.end(), 0);
  drli::Rng rng(5);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Index(i)]);
  }
  return PageLayout({shuffled}, kTuplesPerPage);
}

struct Subject {
  const drli::TopKIndex* index;
  std::unique_ptr<PageLayout> clustered;
};

Subject MakeSubject(const std::string& kind, Distribution dist,
                    std::size_t n, std::size_t d) {
  Subject subject;
  subject.index = &drli::bench_util::GetIndex(kind, dist, n, d);
  if (kind == "dl" || kind == "dl+") {
    const auto* dl =
        dynamic_cast<const drli::DualLayerIndex*>(subject.index);
    subject.clustered =
        std::make_unique<PageLayout>(dl->LayerGroups(), kTuplesPerPage);
  } else if (kind == "dg" || kind == "dg+") {
    const auto* dg =
        dynamic_cast<const drli::DominantGraphIndex*>(subject.index);
    subject.clustered =
        std::make_unique<PageLayout>(dg->layers(), kTuplesPerPage);
  } else if (kind == "onion") {
    const auto* onion = dynamic_cast<const drli::OnionIndex*>(subject.index);
    subject.clustered =
        std::make_unique<PageLayout>(onion->layers(), kTuplesPerPage);
  } else {
    const auto* hl =
        dynamic_cast<const drli::HybridLayerIndex*>(subject.index);
    subject.clustered =
        std::make_unique<PageLayout>(hl->layers(), kTuplesPerPage);
  }
  return subject;
}

void Register(const std::string& kind, Distribution dist, std::size_t n,
              std::size_t d) {
  const std::string name = std::string("ablation_io/") +
                           drli::DistributionName(dist) + "/" + kind;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [kind, dist, n, d](benchmark::State& state) {
        const Subject subject = MakeSubject(kind, dist, n, d);
        const PageLayout scattered = ScatteredLayout(n);
        double pages = 0, lru = 0, scattered_pages = 0, tuples = 0;
        drli::Rng rng(17);
        const std::size_t q = drli::bench_util::NumQueries();
        for (auto _ : state) {
          pages = lru = scattered_pages = tuples = 0;
          for (std::size_t i = 0; i < q; ++i) {
            drli::TopKQuery query;
            query.weights = rng.SimplexWeight(d);
            query.k = 10;
            const drli::TopKResult result = subject.index->Query(query);
            tuples += static_cast<double>(result.stats.tuples_evaluated);
            pages += static_cast<double>(
                subject.clustered->DistinctPages(result.accessed));
            lru += static_cast<double>(
                subject.clustered->LruFetches(result.accessed,
                                              kBufferFrames));
            scattered_pages += static_cast<double>(
                scattered.DistinctPages(result.accessed));
          }
        }
        const double dq = static_cast<double>(q);
        state.counters["tuples"] = tuples / dq;
        state.counters["pages"] = pages / dq;
        state.counters["lru"] = lru / dq;
        state.counters["scattered"] = scattered_pages / dq;
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = drli::bench_util::DefaultN();
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated}) {
    for (const char* kind : {"onion", "hl+", "dg", "dg+", "dl", "dl+"}) {
      Register(kind, dist, n, /*d=*/4);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
