// Ablation: disk I/O under the paper's layer-clustered storage
// discussion ("tuples in the same layer are stored in the same disk
// block"). For each index the query access trace is replayed against a
// page layout that packs its own layers into fixed-size pages, and
// against a scattered (shuffled heap file) layout.
//
// Counters: "pages" = distinct pages touched (cold reads), "lru" =
// fetches under a small LRU buffer pool, "scattered" = distinct pages
// under the shuffled layout. Expected shape: clustered layouts touch
// far fewer pages than scattered ones, and DL/DL+ touch the fewest,
// tracking their lower tuple-access cost.
//
// A second section measures snapshot load latency: the v1 stream
// reader, the v2 owning (copying) reader, and the v2 mmap-backed
// zero-copy path, each loading the same DL+ index from disk. Results
// go to stdout and to BENCH_io.json (or DRLI_BENCH_OUT).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>

#include "benchmark/benchmark.h"

#include "bench/bench_util.h"
#include "baselines/dominant_graph.h"
#include "baselines/hybrid_layer.h"
#include "baselines/onion.h"
#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/dual_layer.h"
#include "core/serialization.h"
#include "storage/page_layout.h"

namespace {

using drli::Distribution;
using drli::PageLayout;
using drli::PointSet;
using drli::TupleId;

constexpr std::size_t kTuplesPerPage = 128;
constexpr std::size_t kBufferFrames = 8;

PageLayout ScatteredLayout(std::size_t n) {
  std::vector<TupleId> shuffled(n);
  std::iota(shuffled.begin(), shuffled.end(), 0);
  drli::Rng rng(5);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Index(i)]);
  }
  return PageLayout({shuffled}, kTuplesPerPage);
}

struct Subject {
  const drli::TopKIndex* index;
  std::unique_ptr<PageLayout> clustered;
};

Subject MakeSubject(const std::string& kind, Distribution dist,
                    std::size_t n, std::size_t d) {
  Subject subject;
  subject.index = &drli::bench_util::GetIndex(kind, dist, n, d);
  if (kind == "dl" || kind == "dl+") {
    const auto* dl =
        dynamic_cast<const drli::DualLayerIndex*>(subject.index);
    subject.clustered =
        std::make_unique<PageLayout>(dl->LayerGroups(), kTuplesPerPage);
  } else if (kind == "dg" || kind == "dg+") {
    const auto* dg =
        dynamic_cast<const drli::DominantGraphIndex*>(subject.index);
    subject.clustered =
        std::make_unique<PageLayout>(dg->layers(), kTuplesPerPage);
  } else if (kind == "onion") {
    const auto* onion = dynamic_cast<const drli::OnionIndex*>(subject.index);
    subject.clustered =
        std::make_unique<PageLayout>(onion->layers(), kTuplesPerPage);
  } else {
    const auto* hl =
        dynamic_cast<const drli::HybridLayerIndex*>(subject.index);
    subject.clustered =
        std::make_unique<PageLayout>(hl->layers(), kTuplesPerPage);
  }
  return subject;
}

void Register(const std::string& kind, Distribution dist, std::size_t n,
              std::size_t d) {
  const std::string name = std::string("ablation_io/") +
                           drli::DistributionName(dist) + "/" + kind;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [kind, dist, n, d](benchmark::State& state) {
        const Subject subject = MakeSubject(kind, dist, n, d);
        const PageLayout scattered = ScatteredLayout(n);
        double pages = 0, lru = 0, scattered_pages = 0, tuples = 0;
        drli::Rng rng(17);
        const std::size_t q = drli::bench_util::NumQueries();
        for (auto _ : state) {
          pages = lru = scattered_pages = tuples = 0;
          for (std::size_t i = 0; i < q; ++i) {
            drli::TopKQuery query;
            query.weights = rng.SimplexWeight(d);
            query.k = 10;
            const drli::TopKResult result = subject.index->Query(query);
            tuples += static_cast<double>(result.stats.tuples_evaluated);
            pages += static_cast<double>(
                subject.clustered->DistinctPages(result.accessed));
            lru += static_cast<double>(
                subject.clustered->LruFetches(result.accessed,
                                              kBufferFrames));
            scattered_pages += static_cast<double>(
                scattered.DistinctPages(result.accessed));
          }
        }
        const double dq = static_cast<double>(q);
        state.counters["tuples"] = tuples / dq;
        state.counters["pages"] = pages / dq;
        state.counters["lru"] = lru / dq;
        state.counters["scattered"] = scattered_pages / dq;
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

struct LoadRow {
  const char* label;
  std::uint32_t format_version;
  bool prefer_mmap;
  double seconds = 0;
  std::uint64_t file_bytes = 0;
  bool zero_copy = false;
};

// Times LoadDualLayerIndex over `reps` repetitions and reports the
// best (the stable floor once the file is in page cache; relative
// ordering matches the cold case because the copy and parse work
// being measured is identical either way).
void MeasureSnapshotLoads(std::size_t n, std::size_t d) {
  const auto* index = dynamic_cast<const drli::DualLayerIndex*>(
      &drli::bench_util::GetIndex("dl+", Distribution::kAnticorrelated, n,
                                  d));
  DRLI_CHECK(index != nullptr);

  LoadRow rows[] = {
      {"v1_stream", drli::snapshot::kVersionV1, false},
      {"v2_copy", drli::snapshot::kVersionV2, false},
      {"v2_mmap", drli::snapshot::kVersionV2, true},
  };
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/";
  constexpr int kReps = 7;
  for (LoadRow& row : rows) {
    const std::string path =
        dir + "drli_bench_io_v" + std::to_string(row.format_version) +
        ".bin";
    drli::SnapshotSaveOptions save;
    save.format_version = row.format_version;
    DRLI_CHECK(drli::SaveDualLayerIndex(*index, path, save).ok());
    row.file_bytes = std::filesystem::file_size(path);
    drli::SnapshotLoadOptions load;
    load.prefer_mmap = row.prefer_mmap;
    double best = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
      drli::Stopwatch timer;
      auto loaded = drli::LoadDualLayerIndex(path, load);
      const double elapsed = timer.ElapsedSeconds();
      DRLI_CHECK(loaded.ok()) << loaded.status().ToString();
      best = std::min(best, elapsed);
      row.zero_copy = !loaded.value().points().owns_data() &&
                      !loaded.value().coarse_out().owns_data();
    }
    row.seconds = best;
    std::remove(path.c_str());
    std::printf("io_load/%-9s n=%zu d=%zu bytes=%llu load=%.3fms "
                "zero_copy=%d\n",
                row.label, n, d,
                static_cast<unsigned long long>(row.file_bytes),
                row.seconds * 1e3, row.zero_copy ? 1 : 0);
  }

  const char* env_out = std::getenv("DRLI_BENCH_OUT");
  const std::string out_path = env_out != nullptr ? env_out : "BENCH_io.json";
  std::ofstream out(out_path);
  out << "[\n";
  for (std::size_t i = 0; i < 3; ++i) {
    const LoadRow& r = rows[i];
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"bench\": \"io_load\", \"variant\": \"%s\", "
                  "\"n\": %zu, \"d\": %zu, \"file_bytes\": %llu, "
                  "\"load_seconds\": %.9f, \"zero_copy\": %s}%s\n",
                  r.label, n, d,
                  static_cast<unsigned long long>(r.file_bytes), r.seconds,
                  r.zero_copy ? "true" : "false", i + 1 < 3 ? "," : "");
    out << buffer;
  }
  out << "]\n";
  DRLI_CHECK(bool(out)) << "failed to write " << out_path;
  std::printf("wrote %s\n", out_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = drli::bench_util::DefaultN();
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated}) {
    for (const char* kind : {"onion", "hl+", "dg", "dg+", "dl", "dl+"}) {
      Register(kind, dist, n, /*d=*/4);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  MeasureSnapshotLoads(n, /*d=*/4);
  return 0;
}
