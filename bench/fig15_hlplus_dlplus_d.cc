// Fig. 15: HL+ vs DL+ with varying dimensionality d (k = 10). Expected shape: DL+ one to two orders of magnitude below HL+ at d = 5 on anti-correlated data.

namespace {
constexpr const char* kFigureName = "fig15";
}  // namespace
#define kKinds \
  { "hl+", "dl+" }
#define kSweepAxis SweepAxis::kD
#include "bench/sweep_main.inc"
