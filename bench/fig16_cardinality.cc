// Fig. 16: DG+ vs DL+ with varying cardinality n (k = 10, d = 4).
// The paper sweeps 100K..500K around the 200K default; this harness
// sweeps {0.5, 1.0, 1.5, 2.0, 2.5} x DRLI_BENCH_N.
//
// Expected shape: both algorithms are far less sensitive to n than to
// k or d (access cost is roughly flat as n grows), with DL+ always
// below DG+.

#include <string>

#include "benchmark/benchmark.h"

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using drli::Distribution;
  const std::size_t base = drli::bench_util::DefaultN();
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated}) {
    for (std::size_t factor : {1u, 2u, 3u, 4u, 5u}) {
      const std::size_t n = base * factor / 2;
      for (const char* kind : {"dg+", "dl+"}) {
        const std::string name = std::string("fig16/") +
                                 drli::DistributionName(dist) + "/" + kind +
                                 "/n:" + std::to_string(n);
        drli::bench_util::RegisterCostBenchmark(name, kind, dist, n, /*d=*/4,
                                                /*k=*/10);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
