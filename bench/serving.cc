// Serving front end under load: closed-loop capacity, then open-loop
// latency at 1x and 2x the measured capacity. The point of the 2x run
// is the robustness headline -- admission control sheds the excess
// with explicit kOverloaded replies while the latency of the answers
// it does serve stays bounded (shed, don't collapse).
//
// Closed loop: N synchronous connections issue queries back to back;
// capacity is their aggregate QPS. Open loop: paced senders push
// frames at the offered rate regardless of reply progress (requests
// pipeline on the connection), a reader per connection matches replies
// by request id, and every reply is either kOk (latency sample) or
// kOverloaded (shed sample).
//
// Emits BENCH_serving.json (or argv[1] / DRLI_BENCH_OUT). DRLI_BENCH_N
// scales the relation, DRLI_BENCH_SECONDS each timed window.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "common/check.h"
#include "core/dual_layer.h"
#include "core/serialization.h"
#include "data/generator.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/serving_engine.h"

namespace {

using namespace drli;
using Clock = std::chrono::steady_clock;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

struct LoadResult {
  double offered_qps = 0;   // 0 for the closed-loop run
  double achieved_qps = 0;  // kOk replies per second
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t unanswered = 0;  // sent but no reply within the grace window
  double p50_us = 0, p99_us = 0, p999_us = 0;
};

double Percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted_us.size())));
  return sorted_us[i];
}

wire::WireQuery MakeQuery(std::size_t variant) {
  wire::WireQuery query;
  const double w = 0.1 + 0.05 * static_cast<double>(variant % 8);
  query.weights = {w, 0.3, 0.7 - w};
  query.k = 5;
  return query;
}

// N synchronous connections, each issuing queries back to back for
// `seconds`: aggregate QPS is the serving capacity of this machine.
LoadResult RunClosedLoop(std::uint16_t port, std::size_t threads,
                         double seconds) {
  std::atomic<std::uint64_t> ok{0}, errors{0};
  std::mutex latencies_mu;
  std::vector<double> latencies_us;
  std::vector<std::thread> pool;
  const Clock::time_point start = Clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      server::DrliClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        errors.fetch_add(1);
        return;
      }
      std::vector<double> local_us;
      std::size_t i = t;
      while (Seconds(start, Clock::now()) < seconds) {
        const Clock::time_point sent_at = Clock::now();
        auto result = client.Query(MakeQuery(i++));
        if (result.ok() &&
            result.value().status == wire::ReplyStatus::kOk) {
          ok.fetch_add(1);
          local_us.push_back(Seconds(sent_at, Clock::now()) * 1e6);
        } else {
          errors.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(latencies_mu);
      latencies_us.insert(latencies_us.end(), local_us.begin(),
                          local_us.end());
    });
  }
  for (std::thread& thread : pool) thread.join();
  const double elapsed = Seconds(start, Clock::now());

  LoadResult result;
  result.sent = ok.load() + errors.load();
  result.ok = ok.load();
  result.errors = errors.load();
  result.achieved_qps = static_cast<double>(result.ok) / elapsed;
  std::sort(latencies_us.begin(), latencies_us.end());
  result.p50_us = Percentile(latencies_us, 0.50);
  result.p99_us = Percentile(latencies_us, 0.99);
  result.p999_us = Percentile(latencies_us, 0.999);
  return result;
}

// One open-loop connection: a sender pushes frames on the offered
// schedule whether or not replies have come back (burst pacing, so the
// rate holds even when the server queues), and a reader matches
// replies to send times by request id.
void RunOpenLoopConnection(std::uint16_t port, double rate, double seconds,
                           std::uint64_t id_base,
                           std::atomic<std::uint64_t>* sent,
                           std::atomic<std::uint64_t>* ok,
                           std::atomic<std::uint64_t>* shed,
                           std::atomic<std::uint64_t>* errors,
                           std::atomic<std::uint64_t>* unanswered,
                           std::mutex* latencies_mu,
                           std::vector<double>* latencies_us) {
  // Short socket timeout so the reader's recv() wakes often enough to
  // notice "sender finished and everything is drained"; the grace loop
  // below gives straggler replies ~1s before declaring them lost.
  server::DrliClient client;
  if (!client.Connect("127.0.0.1", port, /*timeout_seconds=*/0.25).ok()) {
    errors->fetch_add(1);
    return;
  }
  std::mutex inflight_mu;
  std::unordered_map<std::uint32_t, Clock::time_point> inflight;
  std::atomic<bool> sender_done{false};

  std::thread reader([&] {
    std::vector<double> local_us;
    int idle_after_done = 0;
    while (true) {
      auto frame = client.ReadFrame();
      if (!frame.ok()) {
        bool drained;
        {
          std::lock_guard<std::mutex> lock(inflight_mu);
          drained = inflight.empty();
        }
        const bool timeout =
            frame.status().message().find("timeout") != std::string::npos;
        if (!timeout) break;  // server closed or stream corrupt: give up
        if (!sender_done.load()) continue;  // mid-run lull, keep waiting
        if (drained) break;
        if (++idle_after_done >= 4) break;  // ~1s of grace, then lost
        continue;
      }
      idle_after_done = 0;
      Clock::time_point sent_at;
      {
        std::lock_guard<std::mutex> lock(inflight_mu);
        auto it = inflight.find(frame.value().request_id);
        if (it == inflight.end()) continue;
        sent_at = it->second;
        inflight.erase(it);
      }
      std::vector<wire::WireResult> results;
      if (!wire::DecodeResultReply(frame.value().payload, &results).ok() ||
          results.size() != 1) {
        errors->fetch_add(1);
      } else if (results[0].status == wire::ReplyStatus::kOk) {
        ok->fetch_add(1);
        local_us.push_back(Seconds(sent_at, Clock::now()) * 1e6);
      } else if (results[0].status == wire::ReplyStatus::kOverloaded) {
        shed->fetch_add(1);
      } else {
        errors->fetch_add(1);
      }
      bool drained;
      {
        std::lock_guard<std::mutex> lock(inflight_mu);
        drained = inflight.empty();
      }
      if (sender_done.load() && drained) break;
    }
    {
      std::lock_guard<std::mutex> lock(inflight_mu);
      unanswered->fetch_add(inflight.size());
    }
    std::lock_guard<std::mutex> lock(*latencies_mu);
    latencies_us->insert(latencies_us->end(), local_us.begin(),
                         local_us.end());
  });

  const Clock::time_point start = Clock::now();
  std::uint64_t dispatched = 0;
  std::uint32_t next_id = static_cast<std::uint32_t>(id_base);
  while (true) {
    const double elapsed = Seconds(start, Clock::now());
    if (elapsed >= seconds) break;
    // Burst pacing: send whatever the schedule says should already be
    // out the door (sleep granularity is far coarser than the gap).
    const auto due = static_cast<std::uint64_t>(rate * elapsed);
    while (dispatched < due) {
      wire::Request request;
      request.verb = wire::Verb::kQuery;
      request.queries.push_back(MakeQuery(dispatched));
      std::vector<std::uint8_t> frame;
      const std::uint32_t id = next_id++;
      if (next_id == 0) next_id = 1;
      {
        std::lock_guard<std::mutex> lock(inflight_mu);
        inflight.emplace(id, Clock::now());
      }
      (void)wire::AppendFrame(id, wire::EncodeRequest(request), &frame);
      if (!client.SendRaw(frame).ok()) {
        errors->fetch_add(1);
        std::lock_guard<std::mutex> lock(inflight_mu);
        inflight.erase(id);
      }
      ++dispatched;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  sent->fetch_add(dispatched);
  sender_done.store(true);
  reader.join();
}

LoadResult RunOpenLoop(std::uint16_t port, double offered_qps,
                       double seconds, std::size_t connections) {
  std::atomic<std::uint64_t> sent{0}, ok{0}, shed{0}, errors{0};
  std::atomic<std::uint64_t> unanswered{0};
  std::mutex latencies_mu;
  std::vector<double> latencies_us;
  std::vector<std::thread> pool;
  const Clock::time_point start = Clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    pool.emplace_back([&, c] {
      RunOpenLoopConnection(port,
                            offered_qps / static_cast<double>(connections),
                            seconds, (c + 1) * 40'000'000ull, &sent, &ok,
                            &shed, &errors, &unanswered, &latencies_mu,
                            &latencies_us);
    });
  }
  for (std::thread& thread : pool) thread.join();
  const double elapsed = Seconds(start, Clock::now());

  LoadResult result;
  result.offered_qps = offered_qps;
  result.sent = sent.load();
  result.ok = ok.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.unanswered = unanswered.load();
  result.achieved_qps = static_cast<double>(result.ok) / elapsed;
  std::sort(latencies_us.begin(), latencies_us.end());
  result.p50_us = Percentile(latencies_us, 0.50);
  result.p99_us = Percentile(latencies_us, 0.99);
  result.p999_us = Percentile(latencies_us, 0.999);
  return result;
}

void PrintRow(const char* mode, const LoadResult& r) {
  std::printf(
      "%-10s offered=%-9.0f achieved=%-9.0f ok=%-8llu shed=%-7llu "
      "err=%-3llu lost=%-3llu p50=%.0fus p99=%.0fus p999=%.0fus\n",
      mode, r.offered_qps, r.achieved_qps,
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.unanswered), r.p50_us, r.p99_us,
      r.p999_us);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = EnvSize("DRLI_BENCH_N", 10000);
  const double seconds =
      static_cast<double>(EnvSize("DRLI_BENCH_SECONDS", 2));
  const std::size_t closed_threads = 4;
  const std::size_t open_connections = 4;

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("drli_bench_serving_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  const DualLayerIndex index =
      DualLayerIndex::Build(GenerateAnticorrelated(n, 3, 77));
  DRLI_CHECK(SaveDualLayerIndex(index, dir + "/gen-1.v2").ok());
  DRLI_CHECK(server::PublishSnapshot(dir, "gen-1.v2").ok());

  server::TopKServer server;
  server::ServerOptions options;
  DRLI_CHECK(server.Start(dir, options).ok());
  std::printf("serving n=%zu d=3 on port %u, %.0fs per window\n", n,
              server.port(), seconds);

  // Closed loop first: its aggregate QPS calibrates the open loop.
  const LoadResult closed =
      RunClosedLoop(server.port(), closed_threads, seconds);
  PrintRow("closed", closed);

  const LoadResult open_1x =
      RunOpenLoop(server.port(), closed.achieved_qps, seconds,
                  open_connections);
  PrintRow("open-1x", open_1x);
  const LoadResult open_2x =
      RunOpenLoop(server.port(), 2.0 * closed.achieved_qps, seconds,
                  open_connections);
  PrintRow("open-2x", open_2x);

  server.Shutdown();
  std::filesystem::remove_all(dir);

  const char* env_out = std::getenv("DRLI_BENCH_OUT");
  const std::string out_path = argc > 1            ? argv[1]
                               : env_out != nullptr ? env_out
                                                    : "BENCH_serving.json";
  std::ofstream out(out_path);
  out << "[\n";
  const LoadResult* rows[] = {&closed, &open_1x, &open_2x};
  const char* modes[] = {"closed", "open-1x", "open-2x"};
  for (std::size_t i = 0; i < 3; ++i) {
    const LoadResult& r = *rows[i];
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "  {\"mode\": \"%s\", \"n\": %zu, \"connections\": %zu, "
        "\"offered_qps\": %.1f, \"achieved_qps\": %.1f, \"sent\": %llu, "
        "\"ok\": %llu, \"shed\": %llu, \"errors\": %llu, "
        "\"unanswered\": %llu, "
        "\"shed_fraction\": %.4f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"p999_us\": %.1f}%s\n",
        modes[i], n, i == 0 ? closed_threads : open_connections,
        r.offered_qps, r.achieved_qps,
        static_cast<unsigned long long>(r.sent),
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.errors),
        static_cast<unsigned long long>(r.unanswered),
        r.sent > 0 ? static_cast<double>(r.shed) /
                         static_cast<double>(r.sent)
                   : 0.0,
        r.p50_us, r.p99_us, r.p999_us, i + 1 < 3 ? "," : "");
    out << buffer;
  }
  out << "]\n";
  DRLI_CHECK(bool(out)) << "failed to write " << out_path;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
