// Query-scenario bench: constrained, diversified, and reverse top-k
// over the DL+ engines versus their brute-force references, with the
// pruning counters that justify the pushdown (DESIGN.md "Query
// scenarios"). Times explicit loops (no Google-Benchmark averaging)
// and emits machine-readable JSON (BENCH_scenarios.json in the working
// directory, or the path given as argv[1] / DRLI_BENCH_OUT).
//
// DRLI_BENCH_N scales the relation (default 20000); DRLI_BENCH_QUERIES
// scales each probe loop (default 200).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/dual_layer.h"
#include "core/tiered_index.h"
#include "data/generator.h"
#include "scenarios/constrained.h"
#include "scenarios/diversified.h"
#include "scenarios/reverse_topk.h"
#include "shard/sharded_index.h"

namespace {

using namespace drli;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct Row {
  std::string family;   // constrained | diversified | reverse
  std::string engine;   // DL+ | SDL+ | TDL+ | scan
  std::string detail;   // lambda / k knob, empty when not applicable
  std::size_t queries = 0;
  double avg_ms = 0;
  double avg_tuples = 0;
  double boxes_pruned = 0;   // constrained: avg pruned units per query
  double avg_pool = 0;       // diversified: avg certified pool size
};

// Boxes spanned by two random data rows: roughly quartile selectivity,
// enough misses for sublayer / shard / run pruning to show.
std::vector<ConstrainedQuery> MakeConstrainedQueries(const PointSet& points,
                                                     std::size_t count) {
  Rng rng(7);
  const std::size_t d = points.dim();
  std::vector<ConstrainedQuery> queries(count);
  for (ConstrainedQuery& query : queries) {
    query.weights = rng.SimplexWeight(d);
    query.k = 10;
    const std::size_t a = rng.Index(points.size());
    const std::size_t b = rng.Index(points.size());
    query.box.lo.resize(d);
    query.box.hi.resize(d);
    for (std::size_t attr = 0; attr < d; ++attr) {
      query.box.lo[attr] = std::min(points.At(a, attr), points.At(b, attr));
      query.box.hi[attr] = std::max(points.At(a, attr), points.At(b, attr));
    }
  }
  return queries;
}

template <typename Run>
Row MeasureConstrained(const char* engine,
                       const std::vector<ConstrainedQuery>& queries,
                       Run&& run) {
  Row row;
  row.family = "constrained";
  row.engine = engine;
  row.queries = queries.size();
  std::size_t tuples = 0, pruned = 0;
  Stopwatch timer;
  for (const ConstrainedQuery& query : queries) {
    const TopKResult result = run(query);
    DRLI_CHECK(result.complete()) << engine << " returned a partial";
    tuples += result.stats.tuples_evaluated;
    pruned += result.stats.boxes_pruned;
  }
  const double count = static_cast<double>(queries.size());
  row.avg_ms = timer.ElapsedSeconds() * 1000.0 / count;
  row.avg_tuples = static_cast<double>(tuples) / count;
  row.boxes_pruned = static_cast<double>(pruned) / count;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = EnvSize("DRLI_BENCH_N", 20000);
  const std::size_t num_queries = EnvSize("DRLI_BENCH_QUERIES", 200);
  const std::size_t d = 3;

  const PointSet points = GenerateAnticorrelated(n, d, /*seed=*/20120401);
  DualLayerOptions dl_options;
  dl_options.build_zero_layer = true;
  const DualLayerIndex dl = DualLayerIndex::Build(points, dl_options);
  ShardedBuildOptions sh_options;
  sh_options.num_shards = 8;
  sh_options.shard_options = dl_options;
  const ShardedDualLayerIndex sdl =
      ShardedDualLayerIndex::Build(points, sh_options);
  TieredIndexOptions t_options;
  t_options.memtable_capacity = 1024;
  TieredDualLayerIndex tdl(d, t_options);
  for (std::size_t i = 0; i < points.size(); ++i) tdl.Insert(points[i]);

  std::vector<Row> rows;

  // --- constrained: engines vs. the in-box scan ---
  const std::vector<ConstrainedQuery> constrained =
      MakeConstrainedQueries(points, num_queries);
  rows.push_back(MeasureConstrained("DL+", constrained, [&](const auto& q) {
    return ConstrainedTopK(dl, q);
  }));
  rows.push_back(MeasureConstrained("SDL+", constrained, [&](const auto& q) {
    return ConstrainedTopK(sdl, q);
  }));
  rows.push_back(MeasureConstrained("TDL+", constrained, [&](const auto& q) {
    return ConstrainedTopK(tdl, q);
  }));
  rows.push_back(MeasureConstrained("scan", constrained, [&](const auto& q) {
    return ConstrainedTopKScan(points, q);
  }));
  DRLI_CHECK(rows[0].boxes_pruned > 0.0)
      << "DL+ constrained traversal pruned nothing";

  // --- diversified: pool-certified greedy vs. whole-relation greedy ---
  Rng rng(11);
  for (const double lambda : {0.0, 0.5, 2.0}) {
    std::vector<DiversifiedQuery> queries(num_queries);
    Rng weights_rng(13);
    for (DiversifiedQuery& query : queries) {
      query.weights = weights_rng.SimplexWeight(d);
      query.k = 10;
      query.lambda = lambda;
    }
    Row engine_row;
    engine_row.family = "diversified";
    engine_row.engine = "DL+";
    engine_row.detail = "lambda=" + std::to_string(lambda);
    engine_row.queries = num_queries;
    std::size_t tuples = 0, pool = 0;
    Stopwatch timer;
    for (const DiversifiedQuery& query : queries) {
      const DiversifiedResult result = DiversifiedTopK(dl, points, query);
      DRLI_CHECK(result.complete()) << "diversified returned a partial";
      tuples += result.stats.tuples_evaluated;
      pool += result.pool_size;
    }
    engine_row.avg_ms =
        timer.ElapsedSeconds() * 1000.0 / static_cast<double>(num_queries);
    engine_row.avg_tuples =
        static_cast<double>(tuples) / static_cast<double>(num_queries);
    engine_row.avg_pool =
        static_cast<double>(pool) / static_cast<double>(num_queries);
    rows.push_back(engine_row);

    Row scan_row = engine_row;
    scan_row.engine = "scan";
    scan_row.avg_pool = static_cast<double>(n);
    tuples = 0;
    timer.Restart();
    for (const DiversifiedQuery& query : queries) {
      tuples += DiversifiedTopKScan(points, query).stats.tuples_evaluated;
    }
    scan_row.avg_ms =
        timer.ElapsedSeconds() * 1000.0 / static_cast<double>(num_queries);
    scan_row.avg_tuples =
        static_cast<double>(tuples) / static_cast<double>(num_queries);
    rows.push_back(scan_row);
  }

  // --- reverse (d = 2): layer-restricted sweep vs. full sweep ---
  const PointSet points2 = GenerateAnticorrelated(n, 2, /*seed=*/20120402);
  const DualLayerIndex dl2 = DualLayerIndex::Build(points2, dl_options);
  for (const std::size_t k : {std::size_t{1}, std::size_t{5}}) {
    std::vector<ReverseTopKQuery> queries(num_queries);
    for (ReverseTopKQuery& query : queries) {
      query.target = static_cast<TupleId>(rng.Index(points2.size()));
      query.k = k;
    }
    Row engine_row;
    engine_row.family = "reverse";
    engine_row.engine = "DL+";
    engine_row.detail = "k=" + std::to_string(k);
    engine_row.queries = num_queries;
    std::size_t tuples = 0;
    Stopwatch timer;
    for (const ReverseTopKQuery& query : queries) {
      const ReverseTopKResult result = ReverseTopK2D(dl2, query);
      DRLI_CHECK(result.complete()) << "reverse returned a partial";
      tuples += result.stats.tuples_evaluated;
    }
    engine_row.avg_ms =
        timer.ElapsedSeconds() * 1000.0 / static_cast<double>(num_queries);
    engine_row.avg_tuples =
        static_cast<double>(tuples) / static_cast<double>(num_queries);
    rows.push_back(engine_row);

    // The full sweep's cost is target-independent (it builds the whole
    // weight-space partition, ~quadratically many crossings in n), so
    // two timed queries characterize it; more would only slow the
    // bench at paper-scale n.
    Row scan_row = engine_row;
    scan_row.engine = "scan";
    const std::size_t slice = std::min<std::size_t>(num_queries, 2);
    scan_row.queries = slice;
    timer.Restart();
    for (std::size_t i = 0; i < slice; ++i) {
      (void)ReverseTopK2DScan(points2, queries[i]);
    }
    scan_row.avg_ms =
        timer.ElapsedSeconds() * 1000.0 / static_cast<double>(slice);
    scan_row.avg_tuples = static_cast<double>(n);
    rows.push_back(scan_row);
  }

  const char* env_out = std::getenv("DRLI_BENCH_OUT");
  const std::string out_path = argc > 1            ? argv[1]
                               : env_out != nullptr ? env_out
                                                    : "BENCH_scenarios.json";
  std::ofstream out(out_path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "  {\"family\": \"%s\", \"engine\": \"%s\", \"detail\": \"%s\", "
        "\"n\": %zu, \"queries\": %zu, \"avg_ms\": %.4f, "
        "\"avg_tuples\": %.1f, \"boxes_pruned\": %.2f, \"avg_pool\": %.1f}%s\n",
        r.family.c_str(), r.engine.c_str(), r.detail.c_str(), n, r.queries,
        r.avg_ms, r.avg_tuples, r.boxes_pruned, r.avg_pool,
        i + 1 < rows.size() ? "," : "");
    out << buffer;
    std::printf("%-12s %-5s %-12s avg_ms=%.4f tuples=%.1f pruned=%.2f "
                "pool=%.1f\n",
                r.family.c_str(), r.engine.c_str(), r.detail.c_str(),
                r.avg_ms, r.avg_tuples, r.boxes_pruned, r.avg_pool);
  }
  out << "]\n";
  DRLI_CHECK(bool(out)) << "failed to write " << out_path;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
