// Fig. 10: DG vs DL with varying retrieval size k (d = 4). Expected shape: DL consistently below DG (Theorem 5), around 3x fewer accesses on anti-correlated data.

namespace {
constexpr const char* kFigureName = "fig10";
}  // namespace
#define kKinds \
  { "dg", "dl" }
#define kSweepAxis SweepAxis::kK
#include "bench/sweep_main.inc"
