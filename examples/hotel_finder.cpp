// The paper's motivating scenario (Example 1): a hotel-finding service
// where users rank hotels by a weighted combination of price and
// distance to the airport.
//
//   SELECT * FROM Hotel WHERE city = 'Washington DC'
//   ORDER BY 0.5 * price + 0.5 * distance ASC
//   STOP AFTER 5;
//
// Demonstrates the CSV ingestion path, min-max normalization, DL+ with
// the exact 2-d weight-range zero layer (Section V-A), and per-user
// weight vectors (Alice vs Betty).
//
//   $ build/examples/hotel_finder

#include <cstdio>

#include "core/dual_layer.h"
#include "data/csv.h"
#include "topk/scan.h"

namespace {

// A small synthetic "Washington DC" hotel table: price in USD, distance
// to the airport in km. Loaded through the CSV parser to mirror a real
// ingestion pipeline.
constexpr const char* kHotelCsv = R"(price,distance
79,18.2
95,12.4
110,9.6
125,6.1
149,3.8
168,2.2
189,1.1
210,0.6
85,16.0
99,14.8
132,8.4
140,7.9
156,4.9
175,3.1
92,15.5
119,10.2
205,0.9
88,17.1
160,5.4
101,11.9
115,13.3
136,9.1
146,6.8
183,2.7
198,1.6
)";

constexpr const char* kHotelNames[] = {
    "Capitol Rest",    "Potomac Lodge",   "Union Stay",     "Dupont Inn",
    "Georgetown Gate", "Monument View",   "Airport Suites", "Runway Hotel",
    "Cherry Blossom",  "Federal Court",   "Embassy Nights", "Navy Yard Inn",
    "Metro Central",   "Skyline Tower",   "Rock Creek Inn", "Harbor Lights",
    "Terminal Plaza",  "Mall Side",       "Anacostia Arms", "Brookland B&B",
    "Logan Loft",      "Shaw Residence",  "Tidal Basin",    "Gate One",
    "Concourse Inn",
};

void RunUser(const char* user, double price_weight,
             const drli::DualLayerIndex& index, const drli::Dataset& raw) {
  drli::TopKQuery query;
  query.weights = {price_weight, 1.0 - price_weight};
  query.k = 5;
  const drli::TopKResult result = index.Query(query);
  std::printf("\n%s (price weight %.2f, distance weight %.2f): top-%zu\n",
              user, query.weights[0], query.weights[1], query.k);
  for (std::size_t r = 0; r < result.items.size(); ++r) {
    const drli::TupleId id = result.items[r].id;
    std::printf("  %zu. %-16s  $%-6.0f  %4.1f km   (score %.4f)\n", r + 1,
                kHotelNames[id], raw.points().At(id, 0),
                raw.points().At(id, 1), result.items[r].score);
  }
  std::printf("  hotels evaluated: %zu of %zu\n",
              result.stats.tuples_evaluated, index.size());
}

}  // namespace

int main() {
  using namespace drli;

  // Ingest and keep a raw copy for display.
  StatusOr<Dataset> parsed = ParseCsv(kHotelCsv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "CSV error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const Dataset raw = parsed.value();
  Dataset normalized = parsed.value();
  // Both attributes are "lower is better" already; normalize to [0,1]
  // as the index expects (Section II).
  normalized.NormalizeMinMax();

  // DL+ with the exact weight-range zero layer (d = 2): the top-1
  // candidate is found with a binary search and ONE tuple access.
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index =
      DualLayerIndex::Build(normalized.points(), options);
  std::printf("indexed %zu hotels: %zu skyline layers, %zu sublayers, "
              "weight-range table over %zu first-sublayer hotels\n",
              index.size(), index.build_stats().num_coarse_layers,
              index.build_stats().num_fine_layers,
              index.weight_table().size());

  RunUser("Alice", 0.50, index, raw);   // price and distance equally
  RunUser("Betty", 0.75, index, raw);   // price matters more
  RunUser("Carol", 0.10, index, raw);   // wants to be near the airport

  // Show the Section V-A effect explicitly: top-1 costs one access.
  TopKQuery top1;
  top1.weights = {0.5, 0.5};
  top1.k = 1;
  const TopKResult r = index.Query(top1);
  std::printf("\ntop-1 via the weight-range table: %s, %zu tuple access\n",
              kHotelNames[r.items[0].id], r.stats.tuples_evaluated);
  return 0;
}
