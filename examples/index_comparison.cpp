// Side-by-side comparison of every index in the library on one
// workload: construction time, index anatomy, and average access cost
// (the paper's Definition 9 metric), plus a save/load round trip of the
// dual-resolution index.
//
//   $ build/examples/index_comparison [n] [d]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/index_registry.h"
#include "core/serialization.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace drli;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  const std::size_t d = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const std::size_t k = 10;
  const std::size_t num_queries = 40;

  const PointSet points = GenerateAnticorrelated(n, d, 99);
  std::printf("workload: n=%zu d=%zu anti-correlated, k=%zu, %zu queries\n\n",
              n, d, k, num_queries);
  std::printf("%-8s %10s %14s %14s\n", "index", "build(s)", "avg tuples",
              "avg virtual");

  for (const std::string& kind : KnownIndexKinds()) {
    IndexBuildConfig config;
    config.kind = kind;
    Stopwatch sw;
    auto built = BuildIndex(config, points);
    if (!built.ok()) {
      std::fprintf(stderr, "%s: %s\n", kind.c_str(),
                   built.status().ToString().c_str());
      return 1;
    }
    const double build_seconds = sw.ElapsedSeconds();

    Rng rng(5);
    double tuples = 0, virtuals = 0;
    for (std::size_t q = 0; q < num_queries; ++q) {
      TopKQuery query;
      query.weights = rng.SimplexWeight(d);
      query.k = k;
      const TopKResult result = built.value()->Query(query);
      tuples += static_cast<double>(result.stats.tuples_evaluated);
      virtuals += static_cast<double>(result.stats.virtual_evaluated);
    }
    std::printf("%-8s %10.2f %14.1f %14.1f\n",
                built.value()->name().c_str(), build_seconds,
                tuples / num_queries, virtuals / num_queries);
  }

  // Amortize construction across sessions: save and reload DL+.
  const std::string path =
      (std::filesystem::temp_directory_path() / "drli_example_index.bin")
          .string();
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex dl_plus = DualLayerIndex::Build(points, options);
  if (Status s = SaveDualLayerIndex(dl_plus, path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  Stopwatch sw;
  auto loaded = LoadDualLayerIndex(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nserialization: %s reloaded from %s in %.3fs (%ju bytes); "
      "same structure, zero rebuild cost\n",
      loaded.value().name().c_str(), path.c_str(), sw.ElapsedSeconds(),
      static_cast<std::uintmax_t>(std::filesystem::file_size(path)));
  std::filesystem::remove(path);
  return 0;
}
