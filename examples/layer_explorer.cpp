// Layer anatomy across distributions and dimensionalities: how many
// coarse layers and fine sublayers the dual-resolution decomposition
// produces, how big the critical first layers are, and why
// anti-correlated high-dimensional data is the regime where the paper's
// fine split pays off (Section VI-E's "curse of dimensionality"
// discussion).
//
//   $ build/examples/layer_explorer [n]

#include <cstdio>
#include <cstdlib>

#include "core/dual_layer.h"
#include "data/generator.h"

namespace {

void Explore(drli::Distribution dist, std::size_t n, std::size_t d) {
  using namespace drli;
  PointSet points = Generate(dist, n, d, /*seed=*/77);
  const DualLayerIndex index = DualLayerIndex::Build(points);
  const DualLayerBuildStats& stats = index.build_stats();
  const auto groups = index.LayerGroups();

  // First coarse layer = skyline; first group = L^11 (convex skyline).
  std::size_t layer1 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (index.coarse_layer_of(static_cast<DualLayerIndex::NodeId>(i)) == 0) {
      ++layer1;
    }
  }
  const std::size_t l11 = groups.empty() ? 0 : groups[0].size();

  std::printf("%3s d=%zu | coarse %3zu  fine %4zu | |L1|=%5zu (%4.1f%%)  "
              "|L11|=%4zu | fine/coarse ratio %.1f\n",
              DistributionName(dist), d, stats.num_coarse_layers,
              stats.num_fine_layers, layer1,
              100.0 * static_cast<double>(layer1) / static_cast<double>(n),
              l11,
              static_cast<double>(stats.num_fine_layers) /
                  static_cast<double>(stats.num_coarse_layers));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  std::printf("layer anatomy at n = %zu\n", n);
  std::printf("the gap |L1| vs |L11| is exactly what the dual resolution "
              "exploits:\nDG must touch all of L1, DL only L11 plus "
              "unlocked tuples.\n\n");
  for (drli::Distribution dist :
       {drli::Distribution::kCorrelated, drli::Distribution::kIndependent,
        drli::Distribution::kAnticorrelated}) {
    for (std::size_t d = 2; d <= 5; ++d) {
      Explore(dist, n, d);
    }
    std::printf("\n");
  }
  return 0;
}
