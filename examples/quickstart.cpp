// Quickstart: build a dual-resolution layer index over a synthetic
// relation, run a few top-k queries, and inspect how few tuples the
// index touches compared to a full scan.
//
//   $ build/examples/quickstart

#include <cstdio>

#include "common/random.h"
#include "core/dual_layer.h"
#include "data/generator.h"
#include "topk/scan.h"

int main() {
  using namespace drli;

  // 1. A relation: 50K tuples, 4 attributes in (0,1), anti-correlated
  //    (the hard case for layer-based indexes).
  const std::size_t n = 50000, d = 4;
  PointSet points = GenerateAnticorrelated(n, d, /*seed=*/2012);
  std::printf("relation: n=%zu d=%zu (anti-correlated)\n", n, d);

  // 2. Build DL+ -- coarse skyline layers, fine convex-skyline
  //    sublayers, and the clustered zero layer of Section V-B.
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(points, options);
  const DualLayerBuildStats& stats = index.build_stats();
  std::printf(
      "built %s in %.2fs: %zu coarse layers, %zu fine sublayers, "
      "%zu ∀-edges, %zu ∃-edges, %zu pseudo-tuples\n",
      index.name().c_str(), stats.build_seconds, stats.num_coarse_layers,
      stats.num_fine_layers, stats.num_coarse_edges, stats.num_fine_edges,
      stats.num_virtual);

  // 3. Query it for several user preferences.
  Rng rng(7);
  for (int user = 0; user < 3; ++user) {
    TopKQuery query;
    query.weights = rng.SimplexWeight(d);
    query.k = 10;
    const TopKResult result = index.Query(query);
    const TopKResult oracle = Scan(points, query);

    std::printf("\nquery %d: w = (", user);
    for (std::size_t j = 0; j < d; ++j) {
      std::printf("%s%.3f", j ? ", " : "", query.weights[j]);
    }
    std::printf("), k = %zu\n", query.k);
    std::printf("  top-3: ");
    for (std::size_t r = 0; r < 3 && r < result.items.size(); ++r) {
      std::printf("#%u (%.4f)  ", result.items[r].id,
                  result.items[r].score);
    }
    std::printf(
        "\n  tuples evaluated: %zu of %zu (full scan: %zu); "
        "answers match scan: %s\n",
        result.stats.tuples_evaluated, n, oracle.stats.tuples_evaluated,
        result.items[0].score == oracle.items[0].score ? "yes" : "NO");
  }
  return 0;
}
