// Weight-sensitivity analysis with the Section V-A weight-range table:
// as the price/distance trade-off w1 sweeps from 0 to 1, which tuples
// can ever be the top-1 answer, and on which weight ranges?
//
// The weight-range table materializes exactly this partition of the
// weight space: each first-sublayer tuple owns one interval of w1
// bounded by the slopes of its adjacent hull facets
// (w1 = lambda / (lambda - 1), Section V-A).
//
//   $ build/examples/weight_sweep

#include <cstdio>
#include <set>

#include "core/dual_layer.h"
#include "core/rank_sweep_2d.h"
#include "data/generator.h"
#include "topk/scan.h"

int main() {
  using namespace drli;

  const std::size_t n = 20000;
  PointSet points = GenerateAnticorrelated(n, 2, /*seed=*/7);

  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(points, options);
  const WeightRangeTable& table = index.weight_table();

  std::printf("n = %zu tuples; only %zu can ever be a top-1 answer\n",
              n, table.size());
  std::printf("\n%-10s %-22s %-12s\n", "tuple", "optimal w1 range",
              "(x, y)");
  const auto& chain = table.chain();
  const auto& bp = table.breakpoints();
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const double hi = i == 0 ? 1.0 : bp[i - 1];
    const double lo = i < bp.size() ? bp[i] : 0.0;
    std::printf("#%-9u [%.4f, %.4f]      (%.3f, %.3f)\n", chain[i], lo, hi,
                points.At(chain[i], 0), points.At(chain[i], 1));
    if (i == 14 && chain.size() > 16) {
      std::printf("  ... (%zu more)\n", chain.size() - 15);
      break;
    }
  }

  // Cross-check the table against a full scan on a dense sweep.
  std::printf("\nsweeping w1 in [0.01, 0.99]:\n");
  std::size_t checked = 0, agreed = 0;
  for (double w1 = 0.01; w1 < 0.995; w1 += 0.01) {
    TopKQuery query;
    query.weights = {w1, 1.0 - w1};
    query.k = 1;
    const TopKResult via_index = index.Query(query);
    const TopKResult via_scan = Scan(points, query);
    ++checked;
    if (via_index.items[0].score == via_scan.items[0].score) ++agreed;
  }
  std::printf("  %zu/%zu sweep points: index top-1 matches full scan\n",
              agreed, checked);
  std::printf("  every top-1 lookup evaluated exactly 1 tuple "
              "(vs %zu for the scan)\n", n);

  // Beyond the paper: the exact top-k partition of the weight space
  // (kinetic sweep) and a reverse top-k query (reference [32]).
  const std::size_t k = 5;
  const RankSweepResult sweep = SweepTopKSets2D(points, k);
  std::set<TupleId> ever_in_topk;
  for (const auto& s : sweep.topk_sets) {
    ever_in_topk.insert(s.begin(), s.end());
  }
  std::printf("\nexact top-%zu weight-space partition: %zu intervals, "
              "%zu distinct tuples ever in the top-%zu\n",
              k, sweep.topk_sets.size(), ever_in_topk.size(), k);

  const TupleId probe = *ever_in_topk.begin();
  const auto intervals = ReverseTopKIntervals2D(sweep, probe);
  std::printf("reverse top-%zu of tuple #%u: in the answer for w1 in", k,
              probe);
  for (const auto& [lo, hi] : intervals) {
    std::printf(" [%.4f, %.4f]", lo, hi);
  }
  std::printf("\n");
  return 0;
}
