#include "gtest/gtest.h"

#include "baselines/list_index.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

using testing_util::ExpectMatchesScan;

class ListAlgorithmTest : public ::testing::TestWithParam<ListAlgorithm> {};

INSTANTIATE_TEST_SUITE_P(All, ListAlgorithmTest,
                         ::testing::Values(ListAlgorithm::kFa,
                                           ListAlgorithm::kTa,
                                           ListAlgorithm::kNra),
                         [](const auto& info) {
                           switch (info.param) {
                             case ListAlgorithm::kFa:
                               return "FA";
                             case ListAlgorithm::kTa:
                               return "TA";
                             case ListAlgorithm::kNra:
                               return "NRA";
                           }
                           return "Unknown";
                         });

TEST_P(ListAlgorithmTest, ToyDatasetTop5) {
  const PointSet pts = testing_util::MakeToyDataset();
  ListIndex index = ListIndex::Build(pts, GetParam());
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 5;
  const TopKResult result = index.Query(query);
  ASSERT_EQ(result.items.size(), 5u);
  EXPECT_EQ(result.items[0].id, testing_util::kA);
  EXPECT_DOUBLE_EQ(result.items[0].score, 3.5);
}

TEST_P(ListAlgorithmTest, MatchesScanAcrossSettings) {
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated}) {
    for (std::size_t d : {2u, 3u, 4u}) {
      const PointSet pts = Generate(dist, 400, d, 70 + d);
      ListIndex index = ListIndex::Build(pts, GetParam());
      ExpectMatchesScan(index, pts, 10, 8, d);
    }
  }
}

TEST_P(ListAlgorithmTest, KLargerThanRelation) {
  const PointSet pts = GenerateIndependent(20, 3, 1);
  ListIndex index = ListIndex::Build(pts, GetParam());
  TopKQuery query;
  query.weights = {0.3, 0.3, 0.4};
  query.k = 100;
  EXPECT_EQ(index.Query(query).items.size(), 20u);
}

TEST_P(ListAlgorithmTest, SelectiveOnRandomData) {
  const PointSet pts = GenerateIndependent(5000, 3, 2);
  ListIndex index = ListIndex::Build(pts, GetParam());
  TopKQuery query;
  query.weights = {0.2, 0.5, 0.3};
  query.k = 5;
  const TopKResult result = index.Query(query);
  EXPECT_LT(result.stats.tuples_evaluated, pts.size() / 2)
      << index.name() << " touched most of the relation";
}

TEST(ListIndexCostTest, TaNeverCostsMoreThanFa) {
  // TA's threshold stop dominates FA's all-lists-seen stop.
  const PointSet pts = GenerateIndependent(2000, 4, 3);
  ListIndex fa = ListIndex::Build(pts, ListAlgorithm::kFa);
  ListIndex ta = ListIndex::Build(pts, ListAlgorithm::kTa);
  for (const TopKQuery& query : testing_util::RandomQueries(4, 10, 15, 4)) {
    EXPECT_LE(ta.Query(query).stats.tuples_evaluated,
              fa.Query(query).stats.tuples_evaluated);
  }
}

TEST(ListIndexCostTest, NamesAreStable) {
  const PointSet pts = GenerateIndependent(10, 2, 5);
  EXPECT_EQ(ListIndex::Build(pts, ListAlgorithm::kFa).name(), "FA");
  EXPECT_EQ(ListIndex::Build(pts, ListAlgorithm::kTa).name(), "TA");
  EXPECT_EQ(ListIndex::Build(pts, ListAlgorithm::kNra).name(), "NRA");
}

TEST(ListIndexCostTest, CorrelatedDataIsEasy) {
  // On correlated data the lists agree, so TA stops almost instantly.
  const PointSet pts = GenerateCorrelated(5000, 3, 6);
  ListIndex ta = ListIndex::Build(pts, ListAlgorithm::kTa);
  TopKQuery query;
  query.weights = {0.4, 0.3, 0.3};
  query.k = 10;
  EXPECT_LT(ta.Query(query).stats.tuples_evaluated, 500u);
}

}  // namespace
}  // namespace drli
