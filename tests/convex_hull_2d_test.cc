#include <algorithm>
#include <set>

#include "gtest/gtest.h"

#include "common/random.h"
#include "data/generator.h"
#include "geometry/convex_hull_2d.h"
#include "test_util.h"

namespace drli {
namespace {

TEST(ConvexHull2DTest, Triangle) {
  PointSet pts(2);
  pts.Add({0, 0});
  pts.Add({1, 0});
  pts.Add({0, 1});
  pts.Add({0.25, 0.25});  // interior
  const auto hull = ConvexHull2D(pts);
  EXPECT_EQ(std::set<std::int32_t>(hull.begin(), hull.end()),
            (std::set<std::int32_t>{0, 1, 2}));
}

TEST(ConvexHull2DTest, CollinearPointsExcluded) {
  PointSet pts(2);
  pts.Add({0, 0});
  pts.Add({1, 1});
  pts.Add({2, 2});
  pts.Add({2, 0});
  const auto hull = ConvexHull2D(pts);
  EXPECT_EQ(std::set<std::int32_t>(hull.begin(), hull.end()),
            (std::set<std::int32_t>{0, 2, 3}));
}

TEST(ConvexHull2DTest, DuplicatesCollapsed) {
  PointSet pts(2);
  pts.Add({0, 0});
  pts.Add({0, 0});
  pts.Add({1, 0});
  pts.Add({0, 1});
  const auto hull = ConvexHull2D(pts);
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHull2DTest, SmallInputs) {
  PointSet one(2);
  one.Add({0.5, 0.5});
  EXPECT_EQ(ConvexHull2D(one).size(), 1u);

  PointSet two(2);
  two.Add({0.5, 0.5});
  two.Add({0.25, 0.75});
  EXPECT_EQ(ConvexHull2D(two).size(), 2u);

  PointSet dup(2);
  dup.Add({0.5, 0.5});
  dup.Add({0.5, 0.5});
  EXPECT_EQ(ConvexHull2D(dup).size(), 1u);
}

TEST(ConvexHull2DTest, HullContainsAllExtremePoints) {
  const PointSet pts = GenerateIndependent(500, 2, 99);
  const auto hull = ConvexHull2D(pts);
  const std::set<std::int32_t> hull_set(hull.begin(), hull.end());
  // Axis extremes must be hull vertices.
  for (int axis = 0; axis < 2; ++axis) {
    std::int32_t lo = 0, hi = 0;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (pts[i][axis] < pts[lo][axis]) lo = static_cast<std::int32_t>(i);
      if (pts[i][axis] > pts[hi][axis]) hi = static_cast<std::int32_t>(i);
    }
    EXPECT_TRUE(hull_set.count(lo));
    EXPECT_TRUE(hull_set.count(hi));
  }
}

TEST(ConvexHull2DTest, CcwOrientation) {
  const PointSet pts = GenerateIndependent(200, 2, 5);
  const auto hull = ConvexHull2D(pts);
  ASSERT_GE(hull.size(), 3u);
  // Signed area of the polygon must be positive (CCW).
  double area2 = 0.0;
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const PointView a = pts[hull[i]];
    const PointView b = pts[hull[(i + 1) % hull.size()]];
    area2 += a[0] * b[1] - b[0] * a[1];
  }
  EXPECT_GT(area2, 0.0);
}

TEST(LowerLeftChain2DTest, ToyDatasetLayerOne) {
  // L^11 of the toy dataset is {a, b, c} (Fig. 2(b), first convex
  // layer), in chain order a, b, c.
  const PointSet pts = testing_util::MakeToyDataset();
  const auto chain = LowerLeftChain2D(pts);
  EXPECT_EQ(chain,
            (std::vector<std::int32_t>{testing_util::kA, testing_util::kB,
                                       testing_util::kC}));
}

TEST(LowerLeftChain2DTest, ChainDescends) {
  const PointSet pts = GenerateAnticorrelated(1000, 2, 31);
  const auto chain = LowerLeftChain2D(pts);
  ASSERT_FALSE(chain.empty());
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    EXPECT_LT(pts[chain[i]][0], pts[chain[i + 1]][0]);
    EXPECT_GT(pts[chain[i]][1], pts[chain[i + 1]][1]);
  }
}

TEST(LowerLeftChain2DTest, EveryPositiveWeightMinimizerOnChain) {
  const PointSet pts = GenerateIndependent(400, 2, 17);
  const auto chain = LowerLeftChain2D(pts);
  const std::set<std::int32_t> chain_set(chain.begin(), chain.end());
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const Point w = rng.SimplexWeight(2);
    std::int32_t best = 0;
    double best_score = Score(w, pts[0]);
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const double s = Score(w, pts[i]);
      if (s < best_score) {
        best_score = s;
        best = static_cast<std::int32_t>(i);
      }
    }
    EXPECT_TRUE(chain_set.count(best))
        << "argmin " << best << " not on chain, w1=" << w[0];
  }
}

TEST(LowerLeftChain2DTest, SinglePointAndTies) {
  PointSet pts(2);
  pts.Add({0.5, 0.5});
  EXPECT_EQ(LowerLeftChain2D(pts).size(), 1u);

  // A point dominating everything is the whole chain.
  PointSet dom(2);
  dom.Add({0.1, 0.1});
  dom.Add({0.5, 0.5});
  dom.Add({0.9, 0.2});
  EXPECT_EQ(LowerLeftChain2D(dom), (std::vector<std::int32_t>{0}));
}

}  // namespace
}  // namespace drli
