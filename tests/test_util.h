// Shared helpers for the DRLI test suite: oracles, result comparison and
// random query generation.

#ifndef DRLI_TESTS_TEST_UTIL_H_
#define DRLI_TESTS_TEST_UTIL_H_

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

#include "common/point.h"
#include "common/random.h"
#include "topk/query.h"
#include "topk/scan.h"

namespace drli {
namespace testing_util {

// Tuple ids of the paper's Fig. 1 toy dataset in MakeToyDataset().
enum ToyId : TupleId {
  kA = 0,
  kB,
  kC,
  kD,
  kE,
  kF,
  kG,
  kH,
  kI,
  kJ,
  kK,
};

// Coordinates engineered to reproduce every structural fact the paper
// states about its toy dataset (Figs. 1-5, Examples 1-5):
//  * skyline layers {a,b,c,f,g} / {d,e,i,j} / {h,k};
//  * fine sublayers {a,b,c},{f,g} / {d,e,j},{i} / {h,k};
//  * EDS relations: {a,b} is the EDS of f; {b,c} is the EDS of g;
//  * ∀-dominators: d,e <- {a}; i <- {a,f}; j <- {b,g}; h,k <- {j};
//  * for w = (0.5, 0.5): F(a) = 3.5 is top-1, top-3 = {a,b,f},
//    top-5 = {a,b,f,d,e}.
inline PointSet MakeToyDataset() {
  PointSet pts(2);
  pts.Add({1.0, 6.0});   // a
  pts.Add({2.5, 4.7});   // b
  pts.Add({7.0, 1.5});   // c
  pts.Add({1.6, 6.3});   // d
  pts.Add({1.2, 6.8});   // e
  pts.Add({2.0, 5.4});   // f
  pts.Add({4.5, 3.6});   // g
  pts.Add({6.5, 5.3});   // h
  pts.Add({2.3, 6.1});   // i
  pts.Add({4.7, 5.0});   // j
  pts.Add({7.6, 5.2});   // k
  return pts;
}

// Two top-k results agree when their score sequences match within
// tolerance. Tuple identity may legitimately differ on exact score ties,
// so ids are only compared where the adjacent scores are distinct.
inline ::testing::AssertionResult ResultsEquivalent(
    const TopKResult& expected, const TopKResult& actual,
    double tol = 1e-9) {
  if (expected.items.size() != actual.items.size()) {
    return ::testing::AssertionFailure()
           << "result size " << actual.items.size() << " != expected "
           << expected.items.size();
  }
  for (std::size_t i = 0; i < expected.items.size(); ++i) {
    const double want = expected.items[i].score;
    const double got = actual.items[i].score;
    if (std::fabs(want - got) > tol) {
      return ::testing::AssertionFailure()
             << "rank " << i << ": score " << got << " != expected " << want
             << " (ids " << actual.items[i].id << " vs "
             << expected.items[i].id << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// Checks `index` against the full-scan oracle for `num_queries` random
// weight vectors.
inline void ExpectMatchesScan(const TopKIndex& index, const PointSet& points,
                              std::size_t k, std::size_t num_queries,
                              std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t q = 0; q < num_queries; ++q) {
    TopKQuery query;
    query.weights = rng.SimplexWeight(points.dim());
    query.k = k;
    const TopKResult expected = Scan(points, query);
    const TopKResult actual = index.Query(query);
    EXPECT_TRUE(ResultsEquivalent(expected, actual))
        << index.name() << " query " << q << " k=" << k
        << " d=" << points.dim() << " n=" << points.size();
  }
}

// A deterministic batch of random queries.
inline std::vector<TopKQuery> RandomQueries(std::size_t dim, std::size_t k,
                                            std::size_t count,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TopKQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries.push_back(TopKQuery{rng.SimplexWeight(dim), k});
  }
  return queries;
}

}  // namespace testing_util
}  // namespace drli

#endif  // DRLI_TESTS_TEST_UTIL_H_
