#include <algorithm>
#include <set>

#include "gtest/gtest.h"

#include "common/random.h"
#include "data/generator.h"
#include "geometry/convex_skyline.h"
#include "geometry/simplex_lp.h"
#include "test_util.h"

namespace drli {
namespace {

// Exact oracle for Definition 4: t is a convex-skyline tuple iff some
// strictly positive weight vector makes it a global minimizer. Scale
// freedom lets us demand w_i >= 1 instead of sum w = 1.
bool IsConvexSkylineByLp(const PointSet& points, std::size_t t) {
  const std::size_t d = points.dim();
  LinearProgram lp(d);
  std::vector<double> row(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    std::fill(row.begin(), row.end(), 0.0);
    row[j] = 1.0;
    lp.AddConstraint(row, LpRelation::kGreaterEq, 1.0);
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i == t) continue;
    for (std::size_t j = 0; j < d; ++j) {
      row[j] = points[i][j] - points[t][j];
    }
    lp.AddConstraint(row, LpRelation::kGreaterEq, 0.0);
  }
  return lp.IsFeasible();
}

TEST(ConvexSkylineTest, ToyDatasetFirstLayer) {
  const PointSet pts = testing_util::MakeToyDataset();
  const ConvexSkylineResult csky = ComputeConvexSkyline(pts);
  EXPECT_TRUE(csky.exact);
  EXPECT_EQ(csky.members,
            (std::vector<TupleId>{testing_util::kA, testing_util::kB,
                                  testing_util::kC}));
  // Facets {a,b} and {b,c} (Example 2).
  ASSERT_EQ(csky.facets.size(), 2u);
  EXPECT_EQ(csky.facets[0],
            (std::vector<TupleId>{testing_util::kA, testing_util::kB}));
  EXPECT_EQ(csky.facets[1],
            (std::vector<TupleId>{testing_util::kB, testing_util::kC}));
}

TEST(ConvexSkylineTest, MembersContainEveryPositiveMinimizer2D) {
  const PointSet pts = GenerateAnticorrelated(500, 2, 3);
  const ConvexSkylineResult csky = ComputeConvexSkyline(pts);
  const std::set<TupleId> members(csky.members.begin(), csky.members.end());
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const Point w = rng.SimplexWeight(2);
    TupleId best = 0;
    double best_score = Score(w, pts[0]);
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const double s = Score(w, pts[i]);
      if (s < best_score) {
        best_score = s;
        best = static_cast<TupleId>(i);
      }
    }
    EXPECT_TRUE(members.count(best));
  }
}

TEST(ConvexSkylineTest, MembersContainEveryPositiveMinimizerHighD) {
  for (std::size_t d = 3; d <= 5; ++d) {
    const PointSet pts = GenerateIndependent(400, d, 40 + d);
    const ConvexSkylineResult csky = ComputeConvexSkyline(pts);
    ASSERT_TRUE(csky.exact) << d;
    const std::set<TupleId> members(csky.members.begin(),
                                    csky.members.end());
    Rng rng(d);
    for (int trial = 0; trial < 100; ++trial) {
      const Point w = rng.SimplexWeight(d);
      TupleId best = 0;
      double best_score = Score(w, pts[0]);
      for (std::size_t i = 1; i < pts.size(); ++i) {
        const double s = Score(w, pts[i]);
        if (s < best_score) {
          best_score = s;
          best = static_cast<TupleId>(i);
        }
      }
      EXPECT_TRUE(members.count(best))
          << "d=" << d << " trial=" << trial << " argmin " << best;
    }
  }
}

TEST(ConvexSkylineTest, MembersSupersetOfLpOracle3D) {
  const PointSet pts = GenerateIndependent(60, 3, 77);
  const ConvexSkylineResult csky = ComputeConvexSkyline(pts);
  ASSERT_TRUE(csky.exact);
  const std::set<TupleId> members(csky.members.begin(), csky.members.end());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (IsConvexSkylineByLp(pts, i)) {
      EXPECT_TRUE(members.count(static_cast<TupleId>(i))) << "tuple " << i;
    }
  }
}

TEST(ConvexSkylineTest, FacetMembersAreLayerMembers) {
  for (std::size_t d = 2; d <= 5; ++d) {
    const PointSet pts = GenerateAnticorrelated(300, d, 60 + d);
    const ConvexSkylineResult csky = ComputeConvexSkyline(pts);
    const std::set<TupleId> members(csky.members.begin(),
                                    csky.members.end());
    for (const auto& facet : csky.facets) {
      for (TupleId id : facet) {
        EXPECT_TRUE(members.count(id)) << "d=" << d;
      }
    }
  }
}

TEST(ConvexSkylineTest, SmallInputsFallBackToAllMembers) {
  PointSet pts(3);
  pts.Add({0.1, 0.2, 0.3});
  pts.Add({0.3, 0.2, 0.1});
  const ConvexSkylineResult csky = ComputeConvexSkyline(pts);
  EXPECT_FALSE(csky.exact);
  EXPECT_EQ(csky.members.size(), 2u);
  ASSERT_EQ(csky.facets.size(), 1u);
  EXPECT_EQ(csky.facets[0].size(), 2u);
}

TEST(ConvexSkylineTest, DegenerateFlatInputFallsBack) {
  PointSet pts(3);
  for (int i = 0; i < 30; ++i) {
    pts.Add({i * 0.03, 0.9 - i * 0.03, 0.5});  // all on a plane
  }
  const ConvexSkylineResult csky = ComputeConvexSkyline(pts);
  EXPECT_FALSE(csky.exact);
  EXPECT_EQ(csky.members.size(), 30u);
}

TEST(ConvexSkylineTest, EmptyInput) {
  PointSet pts(4);
  const ConvexSkylineResult csky = ComputeConvexSkyline(pts);
  EXPECT_TRUE(csky.members.empty());
  EXPECT_TRUE(csky.facets.empty());
}

TEST(ConvexSkylineTest, MembersAreSubsetOfSkylineOnSkylineInput) {
  // When the input is already a skyline (mutually incomparable), the
  // convex skyline must be a strict subset in general; at minimum every
  // member must be a real input index.
  const PointSet pts = GenerateAnticorrelated(800, 3, 8);
  const ConvexSkylineResult csky = ComputeConvexSkyline(pts);
  for (TupleId id : csky.members) {
    EXPECT_LT(id, pts.size());
  }
  EXPECT_FALSE(csky.members.empty());
  EXPECT_LE(csky.members.size(), pts.size());
}

}  // namespace
}  // namespace drli
