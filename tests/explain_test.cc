#include <numeric>

#include "gtest/gtest.h"

#include "common/check.h"
#include "core/dual_layer.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

TEST(ExplainAccessTest, RowsCoverRelationAndMatchCost) {
  const PointSet pts = GenerateAnticorrelated(600, 3, 1);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 10, 2)) {
    const TopKResult result = index.Query(query);
    const auto rows = ExplainAccess(index, result);
    std::size_t total_size = 0, total_accessed = 0;
    for (const LayerAccessRow& row : rows) {
      EXPECT_LE(row.accessed, row.layer_size);
      total_size += row.layer_size;
      total_accessed += row.accessed;
    }
    EXPECT_EQ(total_size, pts.size());
    EXPECT_EQ(total_accessed, result.stats.tuples_evaluated);
  }
}

TEST(ExplainAccessTest, RowsInLayerOrder) {
  const PointSet pts = GenerateIndependent(400, 3, 3);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  TopKQuery query;
  query.weights = {0.3, 0.3, 0.4};
  query.k = 20;
  const auto rows = ExplainAccess(index, index.Query(query));
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const bool ordered =
        rows[i - 1].coarse < rows[i].coarse ||
        (rows[i - 1].coarse == rows[i].coarse &&
         rows[i - 1].fine < rows[i].fine);
    EXPECT_TRUE(ordered) << "row " << i;
  }
}

TEST(ExplainAccessTest, FirstSublayerFullyAccessedWithoutZeroLayer) {
  // Plain DL gives complete access to L^11 -- the motivation for the
  // zero layer (Section V). Explain must show it.
  const PointSet pts = GenerateAnticorrelated(500, 3, 4);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  TopKQuery query;
  query.weights = {0.2, 0.4, 0.4};
  query.k = 1;
  const auto rows = ExplainAccess(index, index.Query(query));
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].coarse, 0u);
  EXPECT_EQ(rows[0].fine, 0u);
  EXPECT_EQ(rows[0].accessed, rows[0].layer_size);
}

TEST(ExplainAccessTest, ZeroLayerNeverAccessesMoreOfFirstSublayer) {
  // With the zero layer, access to L^11 is selective: never more than
  // plain DL's complete access, and strictly less on average. (On a
  // single query every pseudo-tuple may pop before the top-1 and
  // unlock the whole sublayer, so the strict check is aggregate.)
  const PointSet pts = GenerateAnticorrelated(800, 4, 5);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex plus = DualLayerIndex::Build(pts, options);
  const DualLayerIndex plain = DualLayerIndex::Build(pts);
  std::size_t accessed_plus = 0, accessed_plain = 0;
  for (const TopKQuery& query : testing_util::RandomQueries(4, 1, 20, 6)) {
    const auto rows_plus = ExplainAccess(plus, plus.Query(query));
    const auto rows_plain = ExplainAccess(plain, plain.Query(query));
    ASSERT_FALSE(rows_plus.empty());
    ASSERT_FALSE(rows_plain.empty());
    EXPECT_LE(rows_plus[0].accessed, rows_plain[0].accessed);
    EXPECT_EQ(rows_plain[0].accessed, rows_plain[0].layer_size)
        << "plain DL gives complete access to L^11";
    accessed_plus += rows_plus[0].accessed;
    accessed_plain += rows_plain[0].accessed;
  }
  EXPECT_LT(accessed_plus, accessed_plain);
}

TEST(CheckMacroDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH(
      { DRLI_CHECK(1 == 2) << "custom detail " << 42; },
      "custom detail 42");
  EXPECT_DEATH({ DRLI_CHECK_EQ(3, 4); }, "CHECK FAILED");
  EXPECT_DEATH({ DRLI_CHECK_LT(5, 5); }, "CHECK FAILED");
}

TEST(CheckMacroDeathTest, PassingChecksAreSilent) {
  DRLI_CHECK(true) << "never evaluated";
  DRLI_CHECK_EQ(2 + 2, 4);
  DRLI_CHECK_GE(5, 5);
  SUCCEED();
}

}  // namespace
}  // namespace drli
