#include <cmath>
#include <limits>

#include "gtest/gtest.h"

#include "baselines/view_index.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

using testing_util::ExpectMatchesScan;

TEST(WatermarkBoundTest, ClosedFormCases) {
  // q = v: minimizing q.x with q.x >= s gives exactly s.
  const Point w = {0.5, 0.5};
  EXPECT_NEAR(MinQueryScoreGivenViewBound(w, w, 0.3), 0.3, 1e-12);
  // Threshold <= 0 is free.
  EXPECT_DOUBLE_EQ(MinQueryScoreGivenViewBound(w, w, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(MinQueryScoreGivenViewBound(w, w, -1.0), 0.0);
  // Unreachable inside the unit box.
  EXPECT_TRUE(std::isinf(MinQueryScoreGivenViewBound(w, w, 2.0)));
}

TEST(WatermarkBoundTest, PrefersCheapDimensions) {
  // View weight lives on axis 0, query weight on axis 1: meeting the
  // view constraint via x_0 costs almost nothing under the query.
  const Point q = {0.01, 0.99};
  const Point v = {0.99, 0.01};
  const double bound = MinQueryScoreGivenViewBound(q, v, 0.5);
  // x_0 = 0.5051.. satisfies v.x >= 0.5 at query cost ~0.00505.
  EXPECT_NEAR(bound, 0.01 * (0.5 / 0.99), 1e-9);
}

TEST(WatermarkBoundTest, SoundAgainstSampling) {
  // Property: the bound never exceeds the true query score of any box
  // point satisfying the view constraint.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t d = 2 + rng.Index(4);
    const Point q = rng.SimplexWeight(d);
    const Point v = rng.SimplexWeight(d);
    Point x(d);
    for (double& xi : x) xi = rng.Uniform();
    const double view_score = Score(v, x);
    const double bound = MinQueryScoreGivenViewBound(q, v, view_score);
    EXPECT_LE(bound, Score(q, x) + 1e-9);
  }
}

TEST(WatermarkBoundTest, MonotoneInThreshold) {
  Rng rng(6);
  const Point q = rng.SimplexWeight(3);
  const Point v = rng.SimplexWeight(3);
  double prev = 0.0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double bound = MinQueryScoreGivenViewBound(q, v, s);
    EXPECT_GE(bound + 1e-12, prev);
    prev = bound;
  }
}

TEST(ViewIndexTest, SelectViewsRanksBySimilarity) {
  const PointSet pts = GenerateIndependent(100, 3, 1);
  ViewIndexOptions options;
  options.num_views = 8;
  const ViewIndex index = ViewIndex::Build(pts, options);
  ASSERT_EQ(index.view_weights().size(), 8u);
  const Point q = index.view_weights()[3];  // exactly view 3
  const auto selected = index.SelectViews(q, 2);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], 3u);
}

struct ViewCase {
  ViewAlgorithm algorithm;
  Distribution dist;
  std::size_t d;
};

class ViewIndexCorrectnessTest : public ::testing::TestWithParam<ViewCase> {
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ViewIndexCorrectnessTest,
    ::testing::Values(
        ViewCase{ViewAlgorithm::kPrefer, Distribution::kIndependent, 2},
        ViewCase{ViewAlgorithm::kPrefer, Distribution::kIndependent, 4},
        ViewCase{ViewAlgorithm::kPrefer, Distribution::kAnticorrelated, 3},
        ViewCase{ViewAlgorithm::kLpta, Distribution::kIndependent, 3},
        ViewCase{ViewAlgorithm::kLpta, Distribution::kAnticorrelated, 2},
        ViewCase{ViewAlgorithm::kLpta, Distribution::kAnticorrelated, 4}),
    [](const auto& info) {
      return std::string(info.param.algorithm == ViewAlgorithm::kPrefer
                             ? "prefer"
                             : "lpta") +
             "_" + DistributionName(info.param.dist) + "_d" +
             std::to_string(info.param.d);
    });

TEST_P(ViewIndexCorrectnessTest, MatchesScan) {
  const ViewCase& c = GetParam();
  const PointSet pts = Generate(c.dist, 500, c.d, 40 + c.d);
  ViewIndexOptions options;
  options.algorithm = c.algorithm;
  const ViewIndex index = ViewIndex::Build(pts, options);
  ExpectMatchesScan(index, pts, 10, 10, c.d);
  ExpectMatchesScan(index, pts, 40, 5, c.d + 1);
}

TEST(ViewIndexTest, MatchingViewIsNearlyFree) {
  // When the query equals a materialized view's weights, PREFER's
  // watermark fires almost immediately: cost ~ k, not n.
  const PointSet pts = GenerateIndependent(5000, 3, 2);
  ViewIndexOptions options;
  options.num_views = 4;
  const ViewIndex index = ViewIndex::Build(pts, options);
  TopKQuery query;
  query.weights = index.view_weights()[0];  // the uniform view
  query.k = 10;
  const TopKResult result = index.Query(query);
  EXPECT_LT(result.stats.tuples_evaluated, 100u);
}

TEST(ViewIndexTest, MoreViewsNeverHurtOnAverage) {
  const PointSet pts = GenerateIndependent(2000, 3, 3);
  ViewIndexOptions few, many;
  few.num_views = 2;
  many.num_views = 32;
  const ViewIndex sparse = ViewIndex::Build(pts, few);
  const ViewIndex dense = ViewIndex::Build(pts, many);
  std::size_t cost_sparse = 0, cost_dense = 0;
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 25, 4)) {
    cost_sparse += sparse.Query(query).stats.tuples_evaluated;
    cost_dense += dense.Query(query).stats.tuples_evaluated;
  }
  EXPECT_LE(cost_dense, cost_sparse);
}

TEST(ViewIndexTest, LptaUsesMultipleViews) {
  const PointSet pts = GenerateAnticorrelated(2000, 3, 5);
  ViewIndexOptions one, three;
  one.algorithm = ViewAlgorithm::kLpta;
  one.views_per_query = 1;
  three.algorithm = ViewAlgorithm::kLpta;
  three.views_per_query = 3;
  const ViewIndex single = ViewIndex::Build(pts, one);
  const ViewIndex multi = ViewIndex::Build(pts, three);
  std::size_t cost_single = 0, cost_multi = 0;
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 20, 6)) {
    const TopKResult a = single.Query(query);
    const TopKResult b = multi.Query(query);
    EXPECT_TRUE(testing_util::ResultsEquivalent(a, b));
    cost_single += a.stats.tuples_evaluated;
    cost_multi += b.stats.tuples_evaluated;
  }
  // Intersecting more view constraints tightens the LP bound; the
  // round-robin overhead is bounded by the factor r.
  EXPECT_LT(cost_multi, 3 * cost_single);
}

TEST(ViewIndexTest, TinyRelation) {
  PointSet pts(2);
  pts.Add({0.2, 0.8});
  pts.Add({0.8, 0.2});
  for (ViewAlgorithm algorithm :
       {ViewAlgorithm::kPrefer, ViewAlgorithm::kLpta}) {
    ViewIndexOptions options;
    options.algorithm = algorithm;
    const ViewIndex index = ViewIndex::Build(pts, options);
    TopKQuery query;
    query.weights = {0.5, 0.5};
    query.k = 5;
    EXPECT_EQ(index.Query(query).items.size(), 2u);
  }
}

}  // namespace
}  // namespace drli
