#include <algorithm>
#include <map>

#include "gtest/gtest.h"

#include "core/dynamic_index.h"
#include "data/generator.h"
#include "test_util.h"
#include "topk/scan.h"

namespace drli {
namespace {

// Reference model: a map from stable id to tuple, scanned per query.
class ReferenceRelation {
 public:
  explicit ReferenceRelation(std::size_t dim) : dim_(dim) {}

  void Insert(TupleId id, PointView p) {
    tuples_[id] = Point(p.begin(), p.end());
  }
  void Erase(TupleId id) { tuples_.erase(id); }
  std::size_t size() const { return tuples_.size(); }

  std::vector<ScoredTuple> TopK(const TopKQuery& query) const {
    std::vector<ScoredTuple> all;
    for (const auto& [id, p] : tuples_) {
      all.push_back(ScoredTuple{id, Score(query.weights, p)});
    }
    std::sort(all.begin(), all.end(),
              [](const ScoredTuple& a, const ScoredTuple& b) {
                if (a.score != b.score) return a.score < b.score;
                return a.id < b.id;
              });
    if (all.size() > query.k) all.resize(query.k);
    return all;
  }

 private:
  std::size_t dim_;
  std::map<TupleId, Point> tuples_;
};

void ExpectAgrees(const DynamicDualLayerIndex& index,
                  const ReferenceRelation& model, std::size_t d,
                  std::uint64_t seed) {
  ASSERT_EQ(index.size(), model.size());
  for (const TopKQuery& query : testing_util::RandomQueries(d, 10, 6, seed)) {
    const auto expected = model.TopK(query);
    const TopKResult got = index.Query(query);
    ASSERT_EQ(got.items.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(got.items[i].score, expected[i].score, 1e-12)
          << "rank " << i;
    }
  }
}

TEST(DynamicIndexTest, InsertOnlyWorkload) {
  DynamicDualLayerIndex index(3);
  ReferenceRelation model(3);
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const Point p = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    const TupleId id = index.Insert(p);
    model.Insert(id, p);
  }
  ExpectAgrees(index, model, 3, 2);
}

TEST(DynamicIndexTest, MixedWorkloadMatchesModel) {
  const PointSet initial = GenerateAnticorrelated(400, 3, 3);
  DynamicDualLayerIndex index(initial);
  ReferenceRelation model(3);
  std::vector<TupleId> live;
  for (TupleId id = 0; id < initial.size(); ++id) {
    model.Insert(id, initial[id]);
    live.push_back(id);
  }
  Rng rng(4);
  for (int step = 0; step < 400; ++step) {
    if (rng.Uniform() < 0.6 || live.empty()) {
      const Point p = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
      const TupleId id = index.Insert(p);
      model.Insert(id, p);
      live.push_back(id);
    } else {
      const std::size_t pick = rng.Index(live.size());
      const TupleId id = live[pick];
      EXPECT_TRUE(index.Erase(id));
      model.Erase(id);
      live[pick] = live.back();
      live.pop_back();
    }
    if (step % 80 == 79) ExpectAgrees(index, model, 3, 100 + step);
  }
  ExpectAgrees(index, model, 3, 5);
  EXPECT_GT(index.rebuild_count(), 0u);
}

TEST(DynamicIndexTest, EraseSemantics) {
  DynamicDualLayerIndex index(2);
  const TupleId a = index.Insert(Point{0.1, 0.9});
  const TupleId b = index.Insert(Point{0.9, 0.1});
  EXPECT_TRUE(index.Contains(a));
  EXPECT_TRUE(index.Erase(a));
  EXPECT_FALSE(index.Contains(a));
  EXPECT_FALSE(index.Erase(a));  // double delete
  EXPECT_FALSE(index.Erase(9999));  // unknown id
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.Contains(b));

  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 5;
  const TopKResult result = index.Query(query);
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0].id, b);
}

TEST(DynamicIndexTest, DeletedBaseTuplesNeverReturned) {
  const PointSet initial = GenerateIndependent(200, 2, 6);
  DynamicDualLayerIndex index(initial);
  // Delete the global top-1 for the uniform weight repeatedly; the
  // answer must always move to the next live tuple.
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 1;
  std::vector<double> seen_scores;
  for (int round = 0; round < 20; ++round) {
    const TopKResult result = index.Query(query);
    ASSERT_EQ(result.items.size(), 1u);
    if (!seen_scores.empty()) {
      EXPECT_GE(result.items[0].score, seen_scores.back() - 1e-12);
    }
    seen_scores.push_back(result.items[0].score);
    ASSERT_TRUE(index.Erase(result.items[0].id));
  }
  EXPECT_EQ(index.size(), 180u);
}

TEST(DynamicIndexTest, CompactPreservesAnswersAndResetsDelta) {
  DynamicDualLayerIndex index(3);
  ReferenceRelation model(3);
  Rng rng(7);
  for (int i = 0; i < 150; ++i) {
    const Point p = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    const TupleId id = index.Insert(p);
    model.Insert(id, p);
  }
  index.Compact();
  EXPECT_EQ(index.delta_size(), 0u);
  EXPECT_EQ(index.tombstone_count(), 0u);
  ExpectAgrees(index, model, 3, 8);
}

TEST(DynamicIndexTest, StableIdsSurviveRebuilds) {
  DynamicDualLayerIndex index(2);
  const TupleId keeper = index.Insert(Point{0.01, 0.01});
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    index.Insert(Point{rng.Uniform(0.2, 1.0), rng.Uniform(0.2, 1.0)});
  }
  EXPECT_GT(index.rebuild_count(), 0u);
  EXPECT_TRUE(index.Contains(keeper));
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 1;
  EXPECT_EQ(index.Query(query).items[0].id, keeper);
}

TEST(DynamicIndexTest, CostStaysSelectiveBetweenRebuilds) {
  const PointSet initial = GenerateIndependent(5000, 3, 10);
  DynamicDualLayerIndex index(initial);
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {  // below the rebuild threshold
    index.Insert(Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
  }
  TopKQuery query;
  query.weights = {0.3, 0.3, 0.4};
  query.k = 10;
  const TopKResult result = index.Query(query);
  // Base selectivity plus the delta scan, far below a full scan.
  EXPECT_LT(result.stats.tuples_evaluated, 1000u);
}

}  // namespace
}  // namespace drli
