#include <algorithm>
#include <cmath>
#include <numeric>

#include "gtest/gtest.h"

#include "common/point.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace drli {
namespace {

TEST(DominanceTest, StrictDominance) {
  const Point a = {0.2, 0.3};
  const Point b = {0.4, 0.5};
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
}

TEST(DominanceTest, EqualPointsDoNotDominate) {
  const Point a = {0.2, 0.3, 0.7};
  EXPECT_FALSE(Dominates(a, a));
  EXPECT_TRUE(WeaklyDominates(a, a));
  EXPECT_EQ(Compare(a, a), DomRel::kEqual);
}

TEST(DominanceTest, PartialImprovementStillDominates) {
  const Point a = {0.2, 0.5};
  const Point b = {0.2, 0.6};
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_EQ(Compare(a, b), DomRel::kDominates);
  EXPECT_EQ(Compare(b, a), DomRel::kDominatedBy);
}

TEST(DominanceTest, IncomparablePoints) {
  const Point a = {0.2, 0.8};
  const Point b = {0.8, 0.2};
  EXPECT_FALSE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
  EXPECT_EQ(Compare(a, b), DomRel::kIncomparable);
}

TEST(DominanceTest, WeakDominanceIncludesEquality) {
  EXPECT_TRUE(WeaklyDominates(Point{0.1, 0.2}, Point{0.1, 0.2}));
  EXPECT_TRUE(WeaklyDominates(Point{0.1, 0.2}, Point{0.1, 0.3}));
  EXPECT_FALSE(WeaklyDominates(Point{0.1, 0.4}, Point{0.1, 0.3}));
}

TEST(ScoreTest, LinearCombination) {
  const Point w = {0.5, 0.5};
  const Point p = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Score(w, p), 3.5);
}

TEST(ScoreTest, MonotoneUnderDominance) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Point w = rng.SimplexWeight(4);
    Point a(4), b(4);
    for (int j = 0; j < 4; ++j) {
      a[j] = rng.Uniform();
      b[j] = a[j] + rng.Uniform(0.0, 0.5);
    }
    EXPECT_LT(Score(w, a), Score(w, b));
  }
}

TEST(PointSetTest, AddAndAccess) {
  PointSet set(3);
  EXPECT_TRUE(set.empty());
  const TupleId id0 = set.Add({0.1, 0.2, 0.3});
  const TupleId id1 = set.Add({0.4, 0.5, 0.6});
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.At(1, 2), 0.6);
  EXPECT_DOUBLE_EQ(set[0][1], 0.2);
}

TEST(PointSetTest, SubsetPreservesOrder) {
  PointSet set(2);
  for (int i = 0; i < 5; ++i) {
    set.Add({static_cast<double>(i), static_cast<double>(10 - i)});
  }
  const PointSet sub = set.Subset({4, 1, 3});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sub.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub.At(2, 0), 3.0);
}

TEST(PointSetTest, MaterializeAndSet) {
  PointSet set(2);
  set.Add({0.5, 0.25});
  Point p = set.Materialize(0);
  EXPECT_EQ(p, (Point{0.5, 0.25}));
  set.Set(0, 1, 0.75);
  EXPECT_DOUBLE_EQ(set.At(0, 1), 0.75);
}

TEST(PointSetTest, ToStringFormatsValues) {
  PointSet set(2);
  set.Add({0.5, 1.0});
  EXPECT_EQ(ToString(set[0]), "(0.5, 1)");
}

TEST(RandomTest, SimplexWeightSumsToOne) {
  Rng rng(7);
  for (std::size_t d = 2; d <= 6; ++d) {
    for (int i = 0; i < 50; ++i) {
      const Point w = rng.SimplexWeight(d);
      ASSERT_EQ(w.size(), d);
      const double sum = std::accumulate(w.begin(), w.end(), 0.0);
      EXPECT_NEAR(sum, 1.0, 1e-12);
      for (double wi : w) {
        EXPECT_GT(wi, 0.0);
        EXPECT_LT(wi, 1.0);
      }
    }
  }
}

TEST(RandomTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RandomTest, IndexInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(17), 17u);
  }
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  StatusOr<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  sw.Restart();
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace drli
