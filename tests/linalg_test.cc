#include <cmath>

#include "gtest/gtest.h"

#include "common/random.h"
#include "geometry/linalg.h"

namespace drli {
namespace {

TEST(NormTest, EuclideanLength) {
  const Point v = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Norm(v), 5.0);
}

TEST(NormalizeTest, UnitLength) {
  std::vector<double> v = {3.0, 4.0};
  ASSERT_TRUE(Normalize(&v));
  EXPECT_NEAR(Norm(PointView(v)), 1.0, 1e-12);
  EXPECT_NEAR(v[0], 0.6, 1e-12);
}

TEST(NormalizeTest, ZeroVectorFails) {
  std::vector<double> v = {0.0, 0.0, 0.0};
  EXPECT_FALSE(Normalize(&v));
}

TEST(DeterminantTest, Identity) {
  EXPECT_DOUBLE_EQ(Determinant({1, 0, 0, 1}, 2), 1.0);
  EXPECT_DOUBLE_EQ(Determinant({1, 0, 0, 0, 1, 0, 0, 0, 1}, 3), 1.0);
}

TEST(DeterminantTest, KnownValues) {
  // |1 2; 3 4| = -2
  EXPECT_NEAR(Determinant({1, 2, 3, 4}, 2), -2.0, 1e-12);
  // Singular matrix.
  EXPECT_DOUBLE_EQ(Determinant({1, 2, 2, 4}, 2), 0.0);
}

TEST(DeterminantTest, RowSwapFlipsSign) {
  const double d1 = Determinant({0, 1, 1, 0}, 2);
  EXPECT_NEAR(d1, -1.0, 1e-12);
}

TEST(SolveTest, TwoByTwo) {
  std::vector<double> x;
  // x + y = 3; x - y = 1 -> x = 2, y = 1.
  ASSERT_TRUE(SolveLinearSystem(std::vector<double>{1, 1, 1, -1},
                                std::vector<double>{3, 1}, 2, &x));
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveTest, SingularFails) {
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem(std::vector<double>{1, 2, 2, 4},
                                 std::vector<double>{1, 2}, 2, &x));
}

TEST(SolveTest, RandomRoundTrip) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.Index(4);
    std::vector<double> a(n * n);
    std::vector<double> x_true(n);
    for (auto& v : a) v = rng.Uniform(-1.0, 1.0);
    for (auto& v : x_true) v = rng.Uniform(-1.0, 1.0);
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
    }
    std::vector<double> x;
    if (!SolveLinearSystem(a, b, n, &x)) continue;  // near-singular draw
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(x[j], x_true[j], 1e-6);
    }
  }
}

TEST(HyperplaneTest, Line2D) {
  PointSet pts(2);
  pts.Add({0.0, 1.0});
  pts.Add({1.0, 0.0});
  Hyperplane plane;
  ASSERT_TRUE(HyperplaneThroughPoints({pts[0], pts[1]}, &plane));
  // Plane x + y = 1 (up to sign).
  EXPECT_NEAR(std::fabs(plane.SignedDistance(Point{0.5, 0.5})), 0.0, 1e-12);
  EXPECT_NEAR(std::fabs(plane.SignedDistance(Point{0.0, 0.0})),
              1.0 / std::sqrt(2.0), 1e-12);
}

TEST(HyperplaneTest, Plane3D) {
  PointSet pts(3);
  pts.Add({1.0, 0.0, 0.0});
  pts.Add({0.0, 1.0, 0.0});
  pts.Add({0.0, 0.0, 1.0});
  Hyperplane plane;
  ASSERT_TRUE(HyperplaneThroughPoints({pts[0], pts[1], pts[2]}, &plane));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(plane.SignedDistance(pts[i]), 0.0, 1e-12);
  }
  // Normal is parallel to (1,1,1)/sqrt(3).
  EXPECT_NEAR(std::fabs(plane.normal[0]), 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(std::fabs(plane.normal[1]), std::fabs(plane.normal[0]), 1e-12);
}

TEST(HyperplaneTest, DegeneratePointsFail) {
  PointSet pts(3);
  pts.Add({0.0, 0.0, 0.0});
  pts.Add({1.0, 1.0, 1.0});
  pts.Add({2.0, 2.0, 2.0});  // collinear
  Hyperplane plane;
  EXPECT_FALSE(HyperplaneThroughPoints({pts[0], pts[1], pts[2]}, &plane));
}

TEST(AffineBasisTest, RejectsDependentPoints) {
  AffineBasis basis(3);
  PointSet pts(3);
  pts.Add({0, 0, 0});
  pts.Add({1, 0, 0});
  pts.Add({2, 0, 0});  // on the same line
  pts.Add({0, 1, 0});
  EXPECT_TRUE(basis.Add(pts[0], 1e-9));
  EXPECT_TRUE(basis.Add(pts[1], 1e-9));
  EXPECT_FALSE(basis.Add(pts[2], 1e-9));
  EXPECT_TRUE(basis.Add(pts[3], 1e-9));
  EXPECT_EQ(basis.count(), 3u);
}

TEST(AffineBasisTest, DistanceToSpan) {
  AffineBasis basis(2);
  PointSet pts(2);
  pts.Add({0, 0});
  pts.Add({1, 0});
  basis.Add(pts[0], 1e-9);
  basis.Add(pts[1], 1e-9);
  EXPECT_NEAR(basis.DistanceToSpan(Point{0.5, 2.0}), 2.0, 1e-12);
  EXPECT_NEAR(basis.DistanceToSpan(Point{7.0, 0.0}), 0.0, 1e-12);
}

}  // namespace
}  // namespace drli
