// The parallel fast path must be invisible in results: QueryBatch over
// the task pool is element-wise identical to a serial Query loop for
// every index kind, and a parallel build produces the same index as a
// serial build, bit for bit.

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "gtest/gtest.h"

#include "common/parallel_for.h"
#include "core/dual_layer.h"
#include "core/index_registry.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

// The whole binary runs with a forced 4-worker pool so the parallel
// paths are exercised even on small CI machines.
class ForceThreadsEnv : public ::testing::Environment {
 public:
  void SetUp() override { setenv("DRLI_THREADS", "4", 1); }
};
const ::testing::Environment* const kForceThreads =
    ::testing::AddGlobalTestEnvironment(new ForceThreadsEnv);

// Full equality, not just score equivalence: the batch path must be
// indistinguishable from the serial loop (elapsed_seconds excepted --
// it is wall time, not a function of the query).
void ExpectIdentical(const TopKResult& expected, const TopKResult& actual) {
  ASSERT_EQ(expected.items.size(), actual.items.size());
  for (std::size_t i = 0; i < expected.items.size(); ++i) {
    EXPECT_EQ(expected.items[i].id, actual.items[i].id) << "rank " << i;
    EXPECT_EQ(expected.items[i].score, actual.items[i].score) << "rank " << i;
  }
  EXPECT_EQ(expected.stats.tuples_evaluated, actual.stats.tuples_evaluated);
  EXPECT_EQ(expected.stats.virtual_evaluated, actual.stats.virtual_evaluated);
  EXPECT_EQ(expected.accessed, actual.accessed);
}

class QueryBatchKindTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Kinds, QueryBatchKindTest,
                         ::testing::Values("dl", "dl+", "dg", "scan"),
                         [](const auto& info) {
                           std::string name = info.param;
                           if (!name.empty() && name.back() == '+') {
                             name.back() = 'p';
                           }
                           return name;
                         });

TEST_P(QueryBatchKindTest, BatchMatchesSerialLoop) {
  ASSERT_EQ(ParallelThreadCount(), 4u);
  for (std::size_t d : {std::size_t{2}, std::size_t{4}}) {
    const PointSet points = GenerateAnticorrelated(600, d, 31 + d);
    IndexBuildConfig config;
    config.kind = GetParam();
    auto built = BuildIndex(config, points);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const TopKIndex& index = *built.value();

    const std::vector<TopKQuery> queries =
        testing_util::RandomQueries(d, /*k=*/7, /*count=*/64, /*seed=*/d);
    const std::vector<TopKResult> batch = index.QueryBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ExpectIdentical(index.Query(queries[i]), batch[i]);
    }
  }
}

TEST(QueryBatchTest, EmptyBatchAndEmptyIndex) {
  const PointSet points = GenerateIndependent(100, 3, 5);
  const DualLayerIndex index = DualLayerIndex::Build(points);
  EXPECT_TRUE(index.QueryBatch({}).empty());

  const DualLayerIndex empty = DualLayerIndex::Build(PointSet(3));
  const auto results =
      empty.QueryBatch(testing_util::RandomQueries(3, 5, 8, 1));
  ASSERT_EQ(results.size(), 8u);
  for (const TopKResult& result : results) {
    EXPECT_TRUE(result.items.empty());
  }
}

TEST(QueryBatchTest, SharedScratchAcrossIndexesStaysCorrect) {
  // One scratch serving interleaved queries against indexes of
  // different node counts must reset correctly via epoch stamps.
  const PointSet small = GenerateAnticorrelated(120, 3, 21);
  const PointSet large = GenerateAnticorrelated(900, 3, 22);
  const DualLayerIndex small_index = DualLayerIndex::Build(small);
  const DualLayerIndex large_index = DualLayerIndex::Build(large);
  QueryScratch scratch;
  for (const TopKQuery& query : testing_util::RandomQueries(3, 9, 30, 23)) {
    ExpectIdentical(small_index.Query(query),
                    small_index.Query(query, &scratch));
    ExpectIdentical(large_index.Query(query),
                    large_index.Query(query, &scratch));
  }
}

void ExpectSameIndex(const DualLayerIndex& a, const DualLayerIndex& b) {
  EXPECT_EQ(a.coarse_out(), b.coarse_out());
  EXPECT_EQ(a.fine_out(), b.fine_out());
  EXPECT_EQ(a.coarse_in_degree(), b.coarse_in_degree());
  EXPECT_EQ(a.has_fine_in(), b.has_fine_in());
  EXPECT_EQ(a.initial_nodes(), b.initial_nodes());
  EXPECT_EQ(a.LayerGroups(), b.LayerGroups());
  EXPECT_TRUE(
      std::ranges::equal(a.virtual_points().raw(), b.virtual_points().raw()));
  const DualLayerBuildStats& sa = a.build_stats();
  const DualLayerBuildStats& sb = b.build_stats();
  EXPECT_EQ(sa.num_coarse_layers, sb.num_coarse_layers);
  EXPECT_EQ(sa.num_fine_layers, sb.num_fine_layers);
  EXPECT_EQ(sa.num_coarse_edges, sb.num_coarse_edges);
  EXPECT_EQ(sa.num_fine_edges, sb.num_fine_edges);
  EXPECT_EQ(sa.eds_uncovered, sb.eds_uncovered);
  EXPECT_EQ(sa.csky_fallbacks, sb.csky_fallbacks);
  EXPECT_EQ(sa.num_virtual, sb.num_virtual);
  for (std::size_t node = 0; node < a.num_nodes(); ++node) {
    const auto id = static_cast<DualLayerIndex::NodeId>(node);
    ASSERT_EQ(a.coarse_layer_of(id), b.coarse_layer_of(id));
    ASSERT_EQ(a.fine_layer_of(id), b.fine_layer_of(id));
  }
}

TEST(ParallelBuildTest, ParallelBuildEqualsSerialBuild) {
  for (std::size_t d : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    const PointSet points = GenerateAnticorrelated(700, d, 41 + d);
    for (bool zero_layer : {false, true}) {
      DualLayerOptions options;
      options.build_zero_layer = zero_layer;
      options.build_threads = 1;
      const DualLayerIndex serial = DualLayerIndex::Build(points, options);
      options.build_threads = 4;
      const DualLayerIndex parallel = DualLayerIndex::Build(points, options);
      ExpectSameIndex(serial, parallel);
    }
  }
}

TEST(ParallelBuildTest, EnvThreadCountAlsoDeterministic) {
  // build_threads = 0 resolves through DRLI_THREADS (4 here).
  const PointSet points = GenerateIndependent(500, 4, 51);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex via_env = DualLayerIndex::Build(points, options);
  options.build_threads = 1;
  const DualLayerIndex serial = DualLayerIndex::Build(points, options);
  ExpectSameIndex(serial, via_env);
}

}  // namespace
}  // namespace drli
