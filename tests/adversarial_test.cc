// Adversarial inputs: ties, duplicates, degenerate geometry. Floating
// point general position is the easy case; these datasets are the ones
// that break tolerance-based hulls and dominance bookkeeping.

#include <algorithm>
#include <cmath>
#include <string>

#include "gtest/gtest.h"

#include "core/index_registry.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

void CheckAllIndexes(const PointSet& pts, std::size_t k,
                     std::uint64_t seed) {
  for (const std::string& kind : KnownIndexKinds()) {
    IndexBuildConfig config;
    config.kind = kind;
    auto index = BuildIndex(config, pts);
    ASSERT_TRUE(index.ok()) << kind;
    testing_util::ExpectMatchesScan(*index.value(), pts, k, 6, seed);
  }
}

// Integer grid: massive numbers of score ties and coordinate ties.
TEST(AdversarialTest, IntegerGrid2D) {
  PointSet pts(2);
  for (int x = 0; x < 12; ++x) {
    for (int y = 0; y < 12; ++y) {
      pts.Add({x / 12.0, y / 12.0});
    }
  }
  CheckAllIndexes(pts, 10, 1);
}

TEST(AdversarialTest, IntegerGrid3D) {
  PointSet pts(3);
  for (int x = 0; x < 6; ++x) {
    for (int y = 0; y < 6; ++y) {
      for (int z = 0; z < 6; ++z) {
        pts.Add({x / 6.0, y / 6.0, z / 6.0});
      }
    }
  }
  CheckAllIndexes(pts, 15, 2);
}

// Every tuple lies on one anti-diagonal plane: the hull is degenerate
// in d >= 3 and the convex-skyline fallback must engage.
TEST(AdversarialTest, CoplanarAntidiagonal3D) {
  PointSet pts(3);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(0.0, 1.0);
    const double b = rng.Uniform(0.0, 1.0 - a);
    pts.Add({a, b, 1.0 - a - b});  // exact plane x + y + z = 1
  }
  CheckAllIndexes(pts, 10, 3);
}

TEST(AdversarialTest, CollinearPoints2D) {
  PointSet pts(2);
  for (int i = 0; i < 50; ++i) {
    pts.Add({0.01 * i, 0.5 - 0.01 * i});  // one descending line
  }
  CheckAllIndexes(pts, 7, 4);
}

TEST(AdversarialTest, ManyExactDuplicates) {
  PointSet pts(3);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const Point p = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    for (int copies = 0; copies < 5; ++copies) pts.Add(p);
  }
  CheckAllIndexes(pts, 12, 5);
}

TEST(AdversarialTest, NearDuplicateClusters) {
  PointSet pts(3);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.Uniform(), y = rng.Uniform(), z = rng.Uniform();
    for (int copies = 0; copies < 4; ++copies) {
      pts.Add({x + copies * 1e-12, y - copies * 1e-12, z});
    }
  }
  CheckAllIndexes(pts, 10, 6);
}

TEST(AdversarialTest, AllIdenticalTuples) {
  PointSet pts(4);
  for (int i = 0; i < 64; ++i) pts.Add({0.3, 0.4, 0.5, 0.6});
  CheckAllIndexes(pts, 10, 7);
}

TEST(AdversarialTest, SingleAttributeSpread) {
  // Only one attribute varies: total order, layers of size one.
  PointSet pts(3);
  for (int i = 0; i < 80; ++i) {
    pts.Add({i / 80.0, 0.5, 0.5});
  }
  CheckAllIndexes(pts, 9, 8);
}

TEST(AdversarialTest, AxisAlignedExtremes) {
  // Points on the coordinate axes plus the center: stresses boundary
  // weight handling (minimizers at w -> e_i).
  PointSet pts(3);
  for (int i = 1; i <= 20; ++i) {
    pts.Add({i / 20.0, 1e-6, 1e-6});
    pts.Add({1e-6, i / 20.0, 1e-6});
    pts.Add({1e-6, 1e-6, i / 20.0});
  }
  pts.Add({0.33, 0.33, 0.33});
  CheckAllIndexes(pts, 8, 9);
}

TEST(AdversarialTest, TwoClustersFarApart) {
  PointSet pts(4);
  Rng rng(10);
  for (int i = 0; i < 60; ++i) {
    pts.Add({rng.Uniform(0.0, 0.05), rng.Uniform(0.0, 0.05),
             rng.Uniform(0.0, 0.05), rng.Uniform(0.0, 0.05)});
    pts.Add({rng.Uniform(0.95, 1.0), rng.Uniform(0.95, 1.0),
             rng.Uniform(0.95, 1.0), rng.Uniform(0.95, 1.0)});
  }
  CheckAllIndexes(pts, 10, 10);
}

// Degenerate-input audit: every registered family must survive the
// empty relation, a single tuple, k = 0, k = n, and k > n, returning
// exactly min(k, n) tuples in canonical order and agreeing with the
// scan oracle throughout.
TEST(DegenerateInputTest, EveryFamilyHandlesDegenerateShapes) {
  Rng rng(99);
  for (const std::size_t d : {2u, 3u}) {
    for (const std::size_t n : {0u, 1u, 2u, 5u}) {
      PointSet pts(d);
      for (std::size_t i = 0; i < n; ++i) {
        Point p;
        for (std::size_t a = 0; a < d; ++a) p.push_back(rng.Uniform());
        pts.Add(PointView(p));
      }
      for (const std::string& kind : KnownIndexKinds()) {
        IndexBuildConfig config;
        config.kind = kind;
        auto index = BuildIndex(config, pts);
        ASSERT_TRUE(index.ok()) << kind << " n=" << n << " d=" << d;
        for (const std::size_t k :
             {std::size_t{0}, std::size_t{1}, n, n + 1, n + 7}) {
          TopKQuery query;
          query.weights = rng.SimplexWeight(d);
          query.k = k;
          const TopKResult result = index.value()->Query(query);
          const std::string what = kind + " n=" + std::to_string(n) +
                                   " d=" + std::to_string(d) +
                                   " k=" + std::to_string(k);
          ASSERT_EQ(result.items.size(), std::min(k, n)) << what;
          for (std::size_t r = 0; r < result.items.size(); ++r) {
            EXPECT_LT(result.items[r].id, n) << what;
            if (r > 0) {
              EXPECT_FALSE(
                  ResultOrderLess(result.items[r], result.items[r - 1]))
                  << what << " rank " << r;
            }
          }
          EXPECT_TRUE(testing_util::ResultsEquivalent(Scan(pts, query),
                                                      result))
              << what;
        }
      }
    }
  }
}

TEST(AdversarialTest, PowersOfTwoMagnitudes) {
  // Mixed magnitudes probe the fixed epsilons in the hull machinery.
  PointSet pts(3);
  Rng rng(11);
  for (int i = 0; i < 150; ++i) {
    const int e1 = static_cast<int>(rng.Index(10));
    const int e2 = static_cast<int>(rng.Index(10));
    const int e3 = static_cast<int>(rng.Index(10));
    pts.Add({std::ldexp(rng.Uniform(0.5, 1.0), -e1),
             std::ldexp(rng.Uniform(0.5, 1.0), -e2),
             std::ldexp(rng.Uniform(0.5, 1.0), -e3)});
  }
  CheckAllIndexes(pts, 10, 11);
}

}  // namespace
}  // namespace drli
