#include "gtest/gtest.h"

#include "core/dual_layer.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

using testing_util::ExpectMatchesScan;
using testing_util::MakeToyDataset;

TEST(DualLayerQueryTest, PaperExample5Trace) {
  // k = 3, w = (0.5, 0.5): answers {a, b, f} in that order, and only
  // the tuples the paper's Table III accesses are evaluated:
  // {a,b,c} initially, then {d,e,f} after popping a, then {g} after
  // popping b -- 7 evaluations in total.
  DualLayerIndex index = DualLayerIndex::Build(MakeToyDataset());
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 3;
  const TopKResult result = index.Query(query);
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.items[0].id, testing_util::kA);
  EXPECT_DOUBLE_EQ(result.items[0].score, 3.5);
  EXPECT_EQ(result.items[1].id, testing_util::kB);
  EXPECT_EQ(result.items[2].id, testing_util::kF);
  EXPECT_EQ(result.stats.tuples_evaluated, 7u);
  EXPECT_EQ(result.stats.virtual_evaluated, 0u);
}

TEST(DualLayerQueryTest, MatchesScanToyAllK) {
  const PointSet pts = MakeToyDataset();
  DualLayerIndex index = DualLayerIndex::Build(pts);
  for (std::size_t k = 1; k <= pts.size(); ++k) {
    ExpectMatchesScan(index, pts, k, 10, 1000 + k);
  }
}

struct QueryCase {
  Distribution dist;
  std::size_t n;
  std::size_t d;
  std::size_t k;
  bool zero_layer;
};

class DualLayerQueryParamTest : public ::testing::TestWithParam<QueryCase> {
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, DualLayerQueryParamTest,
    ::testing::Values(
        QueryCase{Distribution::kIndependent, 500, 2, 10, false},
        QueryCase{Distribution::kIndependent, 500, 2, 10, true},
        QueryCase{Distribution::kIndependent, 500, 3, 10, false},
        QueryCase{Distribution::kIndependent, 500, 3, 10, true},
        QueryCase{Distribution::kIndependent, 500, 4, 25, false},
        QueryCase{Distribution::kIndependent, 500, 4, 25, true},
        QueryCase{Distribution::kIndependent, 500, 5, 10, true},
        QueryCase{Distribution::kAnticorrelated, 400, 2, 10, false},
        QueryCase{Distribution::kAnticorrelated, 400, 2, 10, true},
        QueryCase{Distribution::kAnticorrelated, 400, 3, 15, false},
        QueryCase{Distribution::kAnticorrelated, 400, 3, 15, true},
        QueryCase{Distribution::kAnticorrelated, 400, 4, 10, true},
        QueryCase{Distribution::kCorrelated, 500, 3, 10, false},
        QueryCase{Distribution::kCorrelated, 500, 4, 10, true}));

TEST_P(DualLayerQueryParamTest, MatchesScan) {
  const QueryCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, 31 * c.d + c.k);
  DualLayerOptions options;
  options.build_zero_layer = c.zero_layer;
  DualLayerIndex index = DualLayerIndex::Build(pts, options);
  ExpectMatchesScan(index, pts, c.k, 15, 7 * c.d + c.k);
}

TEST(DualLayerQueryTest, KEqualsNReturnsEverything) {
  const PointSet pts = GenerateIndependent(200, 3, 8);
  DualLayerIndex index = DualLayerIndex::Build(pts);
  TopKQuery query;
  query.weights = {0.2, 0.3, 0.5};
  query.k = 200;
  const TopKResult result = index.Query(query);
  EXPECT_EQ(result.items.size(), 200u);
  // All tuples evaluated when everything must be returned.
  EXPECT_EQ(result.stats.tuples_evaluated, 200u);
  for (std::size_t i = 1; i < result.items.size(); ++i) {
    EXPECT_LE(result.items[i - 1].score, result.items[i].score);
  }
}

TEST(DualLayerQueryTest, CostNeverExceedsScan) {
  const PointSet pts = GenerateAnticorrelated(500, 3, 9);
  DualLayerIndex index = DualLayerIndex::Build(pts);
  for (std::size_t k : {1u, 5u, 20u}) {
    for (const TopKQuery& query :
         testing_util::RandomQueries(3, k, 10, 17)) {
      EXPECT_LE(index.Query(query).stats.tuples_evaluated, pts.size());
    }
  }
}

TEST(DualLayerQueryTest, ZeroLayer2DAccessesOneChainTuple) {
  const PointSet pts = GenerateIndependent(2000, 2, 10);
  DualLayerOptions with, without;
  with.build_zero_layer = true;
  DualLayerIndex plus = DualLayerIndex::Build(pts, with);
  DualLayerIndex plain = DualLayerIndex::Build(pts, without);
  ASSERT_TRUE(plus.uses_weight_table());
  for (const TopKQuery& query : testing_util::RandomQueries(2, 1, 25, 3)) {
    const TopKResult r_plus = plus.Query(query);
    const TopKResult r_plain = plain.Query(query);
    EXPECT_TRUE(testing_util::ResultsEquivalent(r_plain, r_plus));
    // Top-1 via the weight table costs exactly one evaluation.
    EXPECT_EQ(r_plus.stats.tuples_evaluated, 1u);
    EXPECT_GE(r_plain.stats.tuples_evaluated, r_plus.stats.tuples_evaluated);
  }
}

TEST(DualLayerQueryTest, ZeroLayerNeverChangesAnswers) {
  for (std::size_t d = 2; d <= 5; ++d) {
    const PointSet pts = GenerateAnticorrelated(400, d, 40 + d);
    DualLayerOptions with;
    with.build_zero_layer = true;
    DualLayerIndex plus = DualLayerIndex::Build(pts, with);
    DualLayerIndex plain = DualLayerIndex::Build(pts);
    for (const TopKQuery& query :
         testing_util::RandomQueries(d, 10, 10, d)) {
      EXPECT_TRUE(testing_util::ResultsEquivalent(plain.Query(query),
                                                  plus.Query(query)));
    }
  }
}

TEST(DualLayerQueryTest, AllFacetsPolicyCorrectButNoCheaper) {
  const PointSet pts = GenerateAnticorrelated(400, 3, 11);
  DualLayerOptions all;
  all.eds_policy = EdsPolicy::kAllFacets;
  DualLayerIndex index_all = DualLayerIndex::Build(pts, all);
  DualLayerIndex index_single = DualLayerIndex::Build(pts);
  std::size_t cost_all = 0, cost_single = 0;
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 20, 5)) {
    const TopKResult r_all = index_all.Query(query);
    const TopKResult r_single = index_single.Query(query);
    EXPECT_TRUE(testing_util::ResultsEquivalent(r_single, r_all));
    cost_all += r_all.stats.tuples_evaluated;
    cost_single += r_single.stats.tuples_evaluated;
  }
  // Extra in-edges can only unlock tuples earlier.
  EXPECT_GE(cost_all, cost_single);
}

TEST(DualLayerQueryTest, DuplicateTuplesHandled) {
  PointSet pts(3);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(), y = rng.Uniform(), z = rng.Uniform();
    pts.Add({x, y, z});
    pts.Add({x, y, z});  // exact duplicate
  }
  DualLayerIndex index = DualLayerIndex::Build(pts);
  ExpectMatchesScan(index, pts, 10, 10, 77);
}

}  // namespace
}  // namespace drli
