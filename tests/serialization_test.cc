#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"

#include "core/serialization.h"
#include "data/generator.h"
#include "testing/check_index.h"
#include "testing/fault_inject.h"
#include "test_util.h"

namespace drli {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void ExpectSameAnswersAndCost(const DualLayerIndex& a,
                              const DualLayerIndex& b, std::size_t d,
                              std::size_t k) {
  for (const TopKQuery& query : testing_util::RandomQueries(d, k, 15, 5)) {
    const TopKResult ra = a.Query(query);
    const TopKResult rb = b.Query(query);
    EXPECT_TRUE(testing_util::ResultsEquivalent(ra, rb));
    EXPECT_EQ(ra.stats.tuples_evaluated, rb.stats.tuples_evaluated);
    EXPECT_EQ(ra.stats.virtual_evaluated, rb.stats.virtual_evaluated);
  }
}

TEST(SerializationTest, RoundTripPlainDl) {
  const std::string path = TempPath("drli_index_plain.bin");
  const PointSet pts = GenerateAnticorrelated(300, 3, 1);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  auto loaded = LoadDualLayerIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().name(), "DL");
  EXPECT_EQ(loaded.value().size(), index.size());
  ExpectSameAnswersAndCost(index, loaded.value(), 3, 10);
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripDlPlusClustered) {
  const std::string path = TempPath("drli_index_plus.bin");
  const PointSet pts = GenerateIndependent(400, 4, 2);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  auto loaded = LoadDualLayerIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().virtual_points().size(),
            index.virtual_points().size());
  ExpectSameAnswersAndCost(index, loaded.value(), 4, 10);
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripDlPlus2DWeightTable) {
  const std::string path = TempPath("drli_index_2d.bin");
  const PointSet pts = GenerateIndependent(500, 2, 3);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  auto loaded = LoadDualLayerIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().uses_weight_table());
  ExpectSameAnswersAndCost(index, loaded.value(), 2, 5);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileFails) {
  const auto loaded = LoadDualLayerIndex("/nonexistent/drli.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SerializationTest, CorruptMagicRejected) {
  const std::string path = TempPath("drli_index_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not an index file at all";
  }
  const auto loaded = LoadDualLayerIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileRejected) {
  const std::string path = TempPath("drli_index_trunc.bin");
  const PointSet pts = GenerateIndependent(100, 3, 4);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  const auto loaded = LoadDualLayerIndex(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, V1RoundTripStillLoads) {
  const std::string path = TempPath("drli_index_v1.bin");
  const PointSet pts = GenerateAnticorrelated(350, 4, 6);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  SnapshotSaveOptions save;
  save.format_version = snapshot::kVersionV1;
  ASSERT_TRUE(SaveDualLayerIndex(index, path, save).ok());
  auto loaded = LoadDualLayerIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // v1 always loads into owned storage.
  EXPECT_TRUE(loaded.value().points().owns_data());
  EXPECT_TRUE(loaded.value().coarse_out().owns_data());
  ExpectSameAnswersAndCost(index, loaded.value(), 4, 10);
  EXPECT_TRUE(CheckIndex(loaded.value()).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, WeightTableRoundTripsInBothFormats) {
  const PointSet pts = GenerateAnticorrelated(600, 2, 8);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  ASSERT_TRUE(index.uses_weight_table());
  for (const std::uint32_t version :
       {snapshot::kVersionV1, snapshot::kVersionV2}) {
    const std::string path =
        TempPath("drli_index_wt_v" + std::to_string(version) + ".bin");
    SnapshotSaveOptions save;
    save.format_version = version;
    ASSERT_TRUE(SaveDualLayerIndex(index, path, save).ok());
    auto loaded = LoadDualLayerIndex(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(loaded.value().uses_weight_table());
    EXPECT_EQ(loaded.value().weight_table().chain(),
              index.weight_table().chain());
    ExpectSameAnswersAndCost(index, loaded.value(), 2, 5);
    std::remove(path.c_str());
  }
}

TEST(SerializationTest, MmapLoadIsZeroCopy) {
  const std::string path = TempPath("drli_index_mmap.bin");
  const PointSet pts = GenerateIndependent(500, 4, 9);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());

  auto mapped = LoadDualLayerIndex(path);  // prefer_mmap defaults true
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  // The point and adjacency payloads are views into the mapping, not
  // copies -- the zero-copy claim of the v2 loader.
  EXPECT_FALSE(mapped.value().points().owns_data());
  EXPECT_FALSE(mapped.value().virtual_points().owns_data());
  EXPECT_FALSE(mapped.value().coarse_out().owns_data());
  EXPECT_FALSE(mapped.value().fine_out().owns_data());

  SnapshotLoadOptions no_mmap;
  no_mmap.prefer_mmap = false;
  auto copied = LoadDualLayerIndex(path, no_mmap);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  EXPECT_TRUE(copied.value().points().owns_data());
  EXPECT_TRUE(copied.value().coarse_out().owns_data());

  ExpectSameAnswersAndCost(index, mapped.value(), 4, 10);
  ExpectSameAnswersAndCost(mapped.value(), copied.value(), 4, 10);
  EXPECT_TRUE(CheckIndex(mapped.value()).ok());
  std::remove(path.c_str());
  // The index must stay usable after the file is gone: the views own
  // the mapping, not the path.
  ExpectSameAnswersAndCost(index, mapped.value(), 4, 10);
}

TEST(SerializationTest, EmptyIndexRoundTripsInBothFormats) {
  const DualLayerIndex index = DualLayerIndex::Build(PointSet(3));
  for (const std::uint32_t version :
       {snapshot::kVersionV1, snapshot::kVersionV2}) {
    const std::string path =
        TempPath("drli_index_empty_v" + std::to_string(version) + ".bin");
    SnapshotSaveOptions save;
    save.format_version = version;
    ASSERT_TRUE(SaveDualLayerIndex(index, path, save).ok());
    auto loaded = LoadDualLayerIndex(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().size(), 0u);
    EXPECT_TRUE(CheckIndex(loaded.value()).ok());
    std::remove(path.c_str());
  }
}

TEST(SerializationTest, SaveIntoMissingDirectoryFailsCleanly) {
  const std::string path = "/nonexistent_drli_dir/index.bin";
  const DualLayerIndex index =
      DualLayerIndex::Build(GenerateIndependent(50, 3, 1));
  const Status status = SaveDualLayerIndex(index, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(SerializationTest, SaveLeavesNoTempFileBehind) {
  const std::string path = TempPath("drli_index_atomic.bin");
  const DualLayerIndex index =
      DualLayerIndex::Build(GenerateIndependent(50, 3, 2));
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // Overwriting an existing snapshot goes through the same tmp+rename.
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(SerializationTest, InspectReportsSections) {
  const std::string path = TempPath("drli_index_inspect.bin");
  const PointSet pts = GenerateAnticorrelated(200, 3, 3);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, snapshot::kVersionV2);
  EXPECT_EQ(info.value().num_points, 200u);
  EXPECT_EQ(info.value().dim, 3u);
  EXPECT_EQ(info.value().sections.size(), 12u);
  for (const SnapshotSectionInfo& row : info.value().sections) {
    EXPECT_TRUE(row.crc_ok) << row.name;
  }

  SnapshotSaveOptions v1;
  v1.format_version = snapshot::kVersionV1;
  ASSERT_TRUE(SaveDualLayerIndex(index, path, v1).ok());
  info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, snapshot::kVersionV1);
  EXPECT_EQ(info.value().num_points, 200u);
  EXPECT_FALSE(info.value().sections.empty());
  std::remove(path.c_str());
}

// One deterministic byte flip in the middle of every v2 section: each
// must be caught by that section's CRC (or the padding/size rules) and
// reported as Corruption -- never a crash, never a silent success.
TEST(SerializationTest, ByteFlipInEverySectionRejected) {
  const std::string path = TempPath("drli_index_flip.bin");
  const PointSet pts = GenerateAnticorrelated(300, 2, 5);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  const std::vector<std::uint8_t> pristine = testing::ReadFileBytes(path);
  const auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok());
  for (const SnapshotSectionInfo& row : info.value().sections) {
    if (row.length == 0) continue;
    std::vector<std::uint8_t> mutant = pristine;
    mutant[row.offset + row.length / 2] ^= 0x10;
    testing::WriteFileBytes(path, mutant);
    const auto loaded = LoadDualLayerIndex(path);
    ASSERT_FALSE(loaded.ok()) << "flip in section " << row.name
                              << " loaded successfully";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << row.name;
  }
  std::remove(path.c_str());
}

// A huge length planted in a v1 length prefix must be rejected by the
// bounded reader before any allocation (this is the resize(n) bug the
// hardened loader fixes), and a huge section length in a v2 table entry
// must fail the bounds check even with the table CRC resealed.
TEST(SerializationTest, AdversarialLengthsRejected) {
  const PointSet pts = GenerateIndependent(150, 3, 7);
  const DualLayerIndex index = DualLayerIndex::Build(pts);

  const std::string v1_path = TempPath("drli_index_huge_v1.bin");
  SnapshotSaveOptions v1;
  v1.format_version = snapshot::kVersionV1;
  ASSERT_TRUE(SaveDualLayerIndex(index, v1_path, v1).ok());
  std::vector<std::uint8_t> bytes = testing::ReadFileBytes(v1_path);
  // The name length prefix sits at offset 8.
  const std::uint64_t huge = 0x7fffffffffffffffull;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  testing::WriteFileBytes(v1_path, bytes);
  auto loaded = LoadDualLayerIndex(v1_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(v1_path.c_str());

  const std::string v2_path = TempPath("drli_index_huge_v2.bin");
  ASSERT_TRUE(SaveDualLayerIndex(index, v2_path).ok());
  testing::SnapshotV2Editor editor(testing::ReadFileBytes(v2_path));
  snapshot::SectionEntry entry = editor.entry(1);
  entry.length = 0xfffffffffffff000ull;
  editor.SetEntry(1, entry);
  testing::WriteFileBytes(v2_path, editor.bytes());
  loaded = LoadDualLayerIndex(v2_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(v2_path.c_str());
}

// Corrupting only coarse_of (CRC resealed, member lists untouched)
// must already fail at load: the loader cross-checks layer membership
// against coarse_of before accepting the snapshot.
TEST(SerializationTest, InconsistentCoarseOfRejectedAtLoad) {
  const std::string path = TempPath("drli_index_coarse_of.bin");
  const PointSet pts = GenerateAnticorrelated(250, 3, 11);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  testing::SnapshotV2Editor editor(testing::ReadFileBytes(path));
  const std::uint32_t flipped = index.coarse_layer_of(0) ^ 1u;
  editor.PatchSection(snapshot::SectionKind::kCoarseOf, 0, &flipped,
                      sizeof(flipped));
  testing::WriteFileBytes(path, editor.bytes());
  const auto loaded = LoadDualLayerIndex(path);
  ASSERT_FALSE(loaded.ok()) << "inconsistent coarse_of loaded";
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// Out-of-range ids planted in the layer-member and weight-chain
// sections (CRCs resealed) must be range-checked at load; before the
// hardening these bytes flowed straight into LayerGroups() /
// WeightRangeTable::Build.
TEST(SerializationTest, OutOfRangeIdsRejectedAtLoad) {
  const std::string path = TempPath("drli_index_oob.bin");
  const PointSet pts = GenerateAnticorrelated(300, 2, 17);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  const std::vector<std::uint8_t> pristine = testing::ReadFileBytes(path);

  for (const snapshot::SectionKind kind :
       {snapshot::SectionKind::kLayerMembers,
        snapshot::SectionKind::kWeightChain,
        snapshot::SectionKind::kCoarseOf,
        snapshot::SectionKind::kFineOf,
        snapshot::SectionKind::kCoarseTargets}) {
    testing::SnapshotV2Editor editor(pristine);
    ASSERT_GE(editor.FindSection(kind), 0);
    const std::uint32_t bogus = 0x7fffffffu;
    editor.PatchSection(kind, 0, &bogus, sizeof(bogus));
    testing::WriteFileBytes(path, editor.bytes());
    const auto loaded = LoadDualLayerIndex(path);
    ASSERT_FALSE(loaded.ok())
        << "out-of-range id in " << snapshot::SectionKindName(kind)
        << " loaded";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
  std::remove(path.c_str());
}

// The full sweep (truncations at every boundary, seeded byte flips,
// adversarial metadata) for every index family in both formats.
// DRLI_FAULT_FLIPS scales the flip count (the nightly sanitizer job
// raises it; the acceptance run uses >= 1000).
TEST(SerializationFaultTest, SweepAllFamiliesBothFormats) {
  std::size_t flips = 300;
  if (const char* env = std::getenv("DRLI_FAULT_FLIPS")) {
    flips = std::strtoul(env, nullptr, 10);
  }
  struct Config {
    const char* label;
    std::size_t d;
    bool zero_layer;
  };
  for (const Config& config : {Config{"dl_3d", 3, false},
                               Config{"dl_plus_4d", 4, true},
                               Config{"dl_plus_2d", 2, true}}) {
    const PointSet pts =
        Generate(Distribution::kAnticorrelated, 300, config.d, 23);
    DualLayerOptions options;
    options.build_zero_layer = config.zero_layer;
    const DualLayerIndex index = DualLayerIndex::Build(pts, options);
    for (const std::uint32_t version :
         {snapshot::kVersionV1, snapshot::kVersionV2}) {
      const std::string path = TempPath(std::string("drli_sweep_") +
                                        config.label + "_v" +
                                        std::to_string(version) + ".bin");
      SnapshotSaveOptions save;
      save.format_version = version;
      ASSERT_TRUE(SaveDualLayerIndex(index, path, save).ok());
      testing::FaultSweepOptions sweep;
      sweep.seed = 31 + version;
      sweep.num_flips = flips;
      const testing::FaultSweepReport report =
          testing::RunSnapshotFaultSweep(path, sweep);
      EXPECT_TRUE(report.ok()) << config.label << " v" << version << ": "
                               << report.ToString();
      std::remove(path.c_str());
    }
  }
}

}  // namespace
}  // namespace drli
