#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"

#include "core/serialization.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void ExpectSameAnswersAndCost(const DualLayerIndex& a,
                              const DualLayerIndex& b, std::size_t d,
                              std::size_t k) {
  for (const TopKQuery& query : testing_util::RandomQueries(d, k, 15, 5)) {
    const TopKResult ra = a.Query(query);
    const TopKResult rb = b.Query(query);
    EXPECT_TRUE(testing_util::ResultsEquivalent(ra, rb));
    EXPECT_EQ(ra.stats.tuples_evaluated, rb.stats.tuples_evaluated);
    EXPECT_EQ(ra.stats.virtual_evaluated, rb.stats.virtual_evaluated);
  }
}

TEST(SerializationTest, RoundTripPlainDl) {
  const std::string path = TempPath("drli_index_plain.bin");
  const PointSet pts = GenerateAnticorrelated(300, 3, 1);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  auto loaded = LoadDualLayerIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().name(), "DL");
  EXPECT_EQ(loaded.value().size(), index.size());
  ExpectSameAnswersAndCost(index, loaded.value(), 3, 10);
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripDlPlusClustered) {
  const std::string path = TempPath("drli_index_plus.bin");
  const PointSet pts = GenerateIndependent(400, 4, 2);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  auto loaded = LoadDualLayerIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().virtual_points().size(),
            index.virtual_points().size());
  ExpectSameAnswersAndCost(index, loaded.value(), 4, 10);
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripDlPlus2DWeightTable) {
  const std::string path = TempPath("drli_index_2d.bin");
  const PointSet pts = GenerateIndependent(500, 2, 3);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  auto loaded = LoadDualLayerIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().uses_weight_table());
  ExpectSameAnswersAndCost(index, loaded.value(), 2, 5);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileFails) {
  const auto loaded = LoadDualLayerIndex("/nonexistent/drli.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SerializationTest, CorruptMagicRejected) {
  const std::string path = TempPath("drli_index_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not an index file at all";
  }
  const auto loaded = LoadDualLayerIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileRejected) {
  const std::string path = TempPath("drli_index_trunc.bin");
  const PointSet pts = GenerateIndependent(100, 3, 4);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  ASSERT_TRUE(SaveDualLayerIndex(index, path).ok());
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  const auto loaded = LoadDualLayerIndex(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace drli
