#include <cmath>

#include "gtest/gtest.h"

#include "common/random.h"
#include "geometry/simplex_lp.h"

namespace drli {
namespace {

TEST(SimplexLpTest, SimpleMaximization) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6 -> optimum at (1.6, 1.2).
  LinearProgram lp(2);
  lp.AddConstraint(std::vector<double>{1, 2}, LpRelation::kLessEq, 4);
  lp.AddConstraint(std::vector<double>{3, 1}, LpRelation::kLessEq, 6);
  lp.SetMaximize(std::vector<double>{1, 1});
  const LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.8, 1e-9);
  EXPECT_NEAR(r.x[0], 1.6, 1e-9);
  EXPECT_NEAR(r.x[1], 1.2, 1e-9);
}

TEST(SimplexLpTest, SimpleMinimizationWithGreaterEq) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> optimum (4, 0) -> 8.
  LinearProgram lp(2);
  lp.AddConstraint(std::vector<double>{1, 1}, LpRelation::kGreaterEq, 4);
  lp.AddConstraint(std::vector<double>{1, 0}, LpRelation::kGreaterEq, 1);
  lp.SetMinimize(std::vector<double>{2, 3});
  const LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 8.0, 1e-9);
}

TEST(SimplexLpTest, EqualityConstraint) {
  // min x s.t. x + y = 1, y <= 0.25 -> x = 0.75.
  LinearProgram lp(2);
  lp.AddConstraint(std::vector<double>{1, 1}, LpRelation::kEqual, 1);
  lp.AddConstraint(std::vector<double>{0, 1}, LpRelation::kLessEq, 0.25);
  lp.SetMinimize(std::vector<double>{1, 0});
  const LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 0.75, 1e-9);
  EXPECT_NEAR(r.x[1], 0.25, 1e-9);
}

TEST(SimplexLpTest, InfeasibleDetected) {
  LinearProgram lp(1);
  lp.AddConstraint(std::vector<double>{1}, LpRelation::kLessEq, 1);
  lp.AddConstraint(std::vector<double>{1}, LpRelation::kGreaterEq, 2);
  EXPECT_FALSE(lp.IsFeasible());
  EXPECT_EQ(lp.Solve().status, LpStatus::kInfeasible);
}

TEST(SimplexLpTest, UnboundedDetected) {
  LinearProgram lp(1);
  lp.AddConstraint(std::vector<double>{1}, LpRelation::kGreaterEq, 1);
  lp.SetMaximize(std::vector<double>{1});
  EXPECT_EQ(lp.Solve().status, LpStatus::kUnbounded);
}

TEST(SimplexLpTest, NegativeRhsNormalized) {
  // x - y <= -1 with x,y >= 0: feasible (e.g. y = 1, x = 0).
  LinearProgram lp(2);
  lp.AddConstraint(std::vector<double>{1, -1}, LpRelation::kLessEq, -1);
  EXPECT_TRUE(lp.IsFeasible());
}

TEST(SimplexLpTest, FeasibilityOfSimplexMembership) {
  // Is (0.5, 0.5) a convex combination of (0,1) and (1,0)? Yes.
  LinearProgram lp(2);
  lp.AddConstraint(std::vector<double>{1, 1}, LpRelation::kEqual, 1);
  lp.AddConstraint(std::vector<double>{0, 1}, LpRelation::kLessEq, 0.5);
  lp.AddConstraint(std::vector<double>{1, 0}, LpRelation::kLessEq, 0.5);
  EXPECT_TRUE(lp.IsFeasible());

  // Is (0.2, 0.2) reachable? No: lambda sums to 1 so coordinates sum
  // to 1 > 0.4.
  LinearProgram lp2(2);
  lp2.AddConstraint(std::vector<double>{1, 1}, LpRelation::kEqual, 1);
  lp2.AddConstraint(std::vector<double>{0, 1}, LpRelation::kLessEq, 0.2);
  lp2.AddConstraint(std::vector<double>{1, 0}, LpRelation::kLessEq, 0.2);
  EXPECT_FALSE(lp2.IsFeasible());
}

TEST(SimplexLpTest, DegenerateTiesTerminate) {
  // Degenerate vertex (multiple constraints meet): Bland's rule must
  // still terminate.
  LinearProgram lp(2);
  lp.AddConstraint(std::vector<double>{1, 1}, LpRelation::kLessEq, 1);
  lp.AddConstraint(std::vector<double>{1, 1}, LpRelation::kLessEq, 1);
  lp.AddConstraint(std::vector<double>{1, 0}, LpRelation::kLessEq, 1);
  lp.SetMaximize(std::vector<double>{1, 1});
  const LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(SimplexLpTest, RandomFeasibilityAgainstSampling) {
  // Random interval systems in 1-3 vars: LP feasibility must agree
  // with a dense grid sampling oracle.
  Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t nv = 1 + rng.Index(3);
    LinearProgram lp(nv);
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    std::vector<LpRelation> rels;
    const std::size_t nc = 1 + rng.Index(4);
    for (std::size_t c = 0; c < nc; ++c) {
      std::vector<double> row(nv);
      for (auto& v : row) v = rng.Uniform(-1.0, 1.0);
      const double b = rng.Uniform(-0.5, 1.0);
      const LpRelation rel =
          rng.Index(2) == 0 ? LpRelation::kLessEq : LpRelation::kGreaterEq;
      lp.AddConstraint(row, rel, b);
      rows.push_back(row);
      rhs.push_back(b);
      rels.push_back(rel);
    }
    // Grid-sample [0, 2]^nv.
    bool sampled_feasible = false;
    const int steps = nv == 1 ? 200 : (nv == 2 ? 60 : 25);
    std::vector<int> idx(nv, 0);
    while (true) {
      std::vector<double> x(nv);
      for (std::size_t j = 0; j < nv; ++j) x[j] = 2.0 * idx[j] / steps;
      bool ok = true;
      for (std::size_t c = 0; c < nc && ok; ++c) {
        double lhs = 0;
        for (std::size_t j = 0; j < nv; ++j) lhs += rows[c][j] * x[j];
        // Strict margin so a sampled witness is feasible exactly.
        ok = rels[c] == LpRelation::kLessEq ? lhs <= rhs[c] - 1e-9
                                            : lhs >= rhs[c] + 1e-9;
      }
      if (ok) {
        sampled_feasible = true;
        break;
      }
      std::size_t j = 0;
      while (j < nv && ++idx[j] > steps) idx[j++] = 0;
      if (j == nv) break;
    }
    // Sampling feasible implies LP feasible (grid point is a witness,
    // modulo boundary tolerance). The converse may fail when the
    // feasible region misses the grid, so only assert one direction.
    if (sampled_feasible) {
      EXPECT_TRUE(lp.IsFeasible()) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace drli
