#include <algorithm>
#include <string>

#include "gtest/gtest.h"

#include "data/generator.h"
#include "skyline/skyline.h"
#include "test_util.h"

namespace drli {
namespace {

using testing_util::MakeToyDataset;

class SkylineAlgorithmTest
    : public ::testing::TestWithParam<SkylineAlgorithm> {};

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SkylineAlgorithmTest,
                         ::testing::Values(SkylineAlgorithm::kNaive,
                                           SkylineAlgorithm::kBnl,
                                           SkylineAlgorithm::kSfs,
                                           SkylineAlgorithm::kDivideAndConquer,
                                           SkylineAlgorithm::kSkyTree),
                         [](const auto& info) {
                           return std::string(
                               SkylineAlgorithmName(info.param));
                         });

TEST_P(SkylineAlgorithmTest, ToyDatasetSkyline) {
  const PointSet pts = MakeToyDataset();
  const auto sky = ComputeSkyline(pts, GetParam());
  EXPECT_EQ(sky, (std::vector<TupleId>{testing_util::kA, testing_util::kB,
                                       testing_util::kC, testing_util::kF,
                                       testing_util::kG}));
}

TEST_P(SkylineAlgorithmTest, SinglePoint) {
  PointSet pts(3);
  pts.Add({0.5, 0.5, 0.5});
  EXPECT_EQ(ComputeSkyline(pts, GetParam()), (std::vector<TupleId>{0}));
}

TEST_P(SkylineAlgorithmTest, DuplicatesAllKept) {
  PointSet pts(2);
  pts.Add({0.2, 0.2});
  pts.Add({0.2, 0.2});
  pts.Add({0.5, 0.5});
  const auto sky = ComputeSkyline(pts, GetParam());
  EXPECT_EQ(sky, (std::vector<TupleId>{0, 1}));
}

TEST_P(SkylineAlgorithmTest, TotallyOrderedChain) {
  PointSet pts(2);
  for (int i = 0; i < 50; ++i) {
    pts.Add({0.01 * i, 0.01 * i});
  }
  EXPECT_EQ(ComputeSkyline(pts, GetParam()), (std::vector<TupleId>{0}));
}

TEST_P(SkylineAlgorithmTest, AllIncomparable) {
  PointSet pts(2);
  for (int i = 0; i < 50; ++i) {
    pts.Add({0.01 * i, 0.01 * (50 - i)});
  }
  EXPECT_EQ(ComputeSkyline(pts, GetParam()).size(), 50u);
}

TEST_P(SkylineAlgorithmTest, SubsetComputation) {
  const PointSet pts = MakeToyDataset();
  // Skyline of {d, e, i, j} is all four (second skyline layer).
  const std::vector<TupleId> subset = {testing_util::kD, testing_util::kE,
                                       testing_util::kI, testing_util::kJ};
  const auto sky = ComputeSkylineOfSubset(pts, subset, GetParam());
  std::vector<TupleId> expected = subset;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sky, expected);
}

TEST_P(SkylineAlgorithmTest, EmptyInput) {
  PointSet pts(2);
  EXPECT_TRUE(ComputeSkyline(pts, GetParam()).empty());
}

struct SkylineAgreementCase {
  Distribution dist;
  std::size_t n;
  std::size_t d;
  std::uint64_t seed;
};

class SkylineAgreementTest
    : public ::testing::TestWithParam<SkylineAgreementCase> {};

INSTANTIATE_TEST_SUITE_P(
    Distributions, SkylineAgreementTest,
    ::testing::Values(
        SkylineAgreementCase{Distribution::kIndependent, 800, 2, 1},
        SkylineAgreementCase{Distribution::kIndependent, 800, 3, 2},
        SkylineAgreementCase{Distribution::kIndependent, 800, 4, 3},
        SkylineAgreementCase{Distribution::kIndependent, 800, 5, 4},
        SkylineAgreementCase{Distribution::kAnticorrelated, 600, 2, 5},
        SkylineAgreementCase{Distribution::kAnticorrelated, 600, 3, 6},
        SkylineAgreementCase{Distribution::kAnticorrelated, 600, 4, 7},
        SkylineAgreementCase{Distribution::kCorrelated, 800, 3, 8},
        SkylineAgreementCase{Distribution::kCorrelated, 800, 5, 9}));

TEST_P(SkylineAgreementTest, AllAlgorithmsAgree) {
  const auto& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed);
  const auto naive = ComputeSkyline(pts, SkylineAlgorithm::kNaive);
  for (SkylineAlgorithm algorithm :
       {SkylineAlgorithm::kBnl, SkylineAlgorithm::kSfs,
        SkylineAlgorithm::kDivideAndConquer, SkylineAlgorithm::kSkyTree}) {
    EXPECT_EQ(ComputeSkyline(pts, algorithm), naive)
        << SkylineAlgorithmName(algorithm);
  }
}

TEST(SkylineSemanticsTest, NoMemberDominatedNoOutsiderUndominated) {
  const PointSet pts = GenerateAnticorrelated(500, 3, 42);
  const auto sky = ComputeSkyline(pts, SkylineAlgorithm::kSkyTree);
  std::vector<bool> in_sky(pts.size(), false);
  for (TupleId id : sky) in_sky[id] = true;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (i != j && Dominates(pts[j], pts[i])) {
        dominated = true;
        break;
      }
    }
    EXPECT_EQ(in_sky[i], !dominated) << "tuple " << i;
  }
}

TEST(SkylineSemanticsTest, SkyTreeHandlesManyDuplicates) {
  PointSet pts(3);
  for (int i = 0; i < 200; ++i) {
    pts.Add({0.25, 0.5, 0.75});
  }
  const auto sky = ComputeSkyline(pts, SkylineAlgorithm::kSkyTree);
  EXPECT_EQ(sky.size(), 200u);
}

}  // namespace
}  // namespace drli
