// Serving front end (DESIGN.md §10): wire protocol units, the server
// end to end over a loopback socket, overload shedding, graceful
// drain, and the headline hot-reload soak -- >= 10k queries across
// >= 20 generation bumps with zero errors, every answer exactly the
// one its generation's snapshot produces.

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "gtest/gtest.h"

#include "core/dual_layer.h"
#include "core/serialization.h"
#include "data/generator.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/serving_engine.h"
#include "test_util.h"

namespace drli {
namespace {

using server::DrliClient;
using server::ServerOptions;
using server::TopKServer;

// --- protocol units ---

TEST(WireProtocolTest, FrameRoundTrip) {
  wire::Request request;
  request.verb = wire::Verb::kQuery;
  wire::WireQuery query;
  query.weights = {0.25, 0.75};
  query.k = 7;
  query.deadline_ms = 1.5;
  query.max_evals = 123;
  request.queries.push_back(query);

  std::vector<std::uint8_t> buf;
  ASSERT_TRUE(wire::AppendFrame(42, wire::EncodeRequest(request), &buf));

  std::size_t pos = 0;
  wire::Frame frame;
  std::string error;
  ASSERT_EQ(wire::ScanFrame(buf, &pos, &frame, &error),
            wire::FrameScan::kFrame);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(pos, buf.size());

  wire::Request decoded;
  ASSERT_TRUE(wire::DecodeRequest(frame.payload, &decoded).ok());
  EXPECT_EQ(decoded.verb, wire::Verb::kQuery);
  ASSERT_EQ(decoded.queries.size(), 1u);
  EXPECT_EQ(decoded.queries[0].weights, query.weights);
  EXPECT_EQ(decoded.queries[0].k, 7u);
  EXPECT_EQ(decoded.queries[0].deadline_ms, 1.5);
  EXPECT_EQ(decoded.queries[0].max_evals, 123u);
}

TEST(WireProtocolTest, PartialFrameNeedsMore) {
  wire::Request request;
  request.queries.emplace_back();
  request.queries[0].weights = {1.0};
  std::vector<std::uint8_t> buf;
  ASSERT_TRUE(wire::AppendFrame(1, wire::EncodeRequest(request), &buf));
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(buf.begin(), buf.begin() + cut);
    std::size_t pos = 0;
    wire::Frame frame;
    std::string error;
    EXPECT_EQ(wire::ScanFrame(prefix, &pos, &frame, &error),
              wire::FrameScan::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(pos, 0u);
  }
}

TEST(WireProtocolTest, CorruptionIsDetectedNotTrusted) {
  wire::Request request;
  request.queries.emplace_back();
  request.queries[0].weights = {0.5, 0.5};
  std::vector<std::uint8_t> good;
  ASSERT_TRUE(wire::AppendFrame(9, wire::EncodeRequest(request), &good));

  // Bad magic.
  std::vector<std::uint8_t> bad = good;
  bad[0] ^= 0xff;
  std::size_t pos = 0;
  wire::Frame frame;
  std::string error;
  EXPECT_EQ(wire::ScanFrame(bad, &pos, &frame, &error),
            wire::FrameScan::kCorrupt);
  EXPECT_NE(error.find("magic"), std::string::npos);

  // Payload bit flip breaks the CRC.
  bad = good;
  bad[wire::kFrameHeaderBytes + 3] ^= 0x10;
  pos = 0;
  EXPECT_EQ(wire::ScanFrame(bad, &pos, &frame, &error),
            wire::FrameScan::kCorrupt);
  EXPECT_NE(error.find("CRC"), std::string::npos);

  // A hostile length can never drive an allocation.
  bad = good;
  const std::uint32_t huge = 0x7fffffff;
  std::memcpy(bad.data() + 4, &huge, sizeof(huge));
  pos = 0;
  EXPECT_EQ(wire::ScanFrame(bad, &pos, &frame, &error),
            wire::FrameScan::kCorrupt);
}

TEST(WireProtocolTest, ResultReplyRoundTrip) {
  std::vector<wire::WireResult> results(2);
  results[0].status = wire::ReplyStatus::kOk;
  results[0].termination = 1;  // kDeadline
  results[0].certified_prefix = 2;
  results[0].frontier_bound = 0.125;
  results[0].items = {{7, 0.5, 0.5}, {9, 0.625, 0.625}, {4, 0.75, 0.75}};
  results[0].tuples_evaluated = 31;
  results[0].generation = 5;
  results[1].status = wire::ReplyStatus::kOverloaded;
  results[1].retry_after_ms = 40;
  results[1].message = "shed";

  std::vector<wire::WireResult> decoded;
  ASSERT_TRUE(
      wire::DecodeResultReply(wire::EncodeResultReply(results), &decoded)
          .ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].termination, 1);
  EXPECT_EQ(decoded[0].certified_prefix, 2u);
  EXPECT_EQ(decoded[0].frontier_bound, 0.125);
  ASSERT_EQ(decoded[0].items.size(), 3u);
  EXPECT_EQ(decoded[0].items[1].id, 9u);
  EXPECT_EQ(decoded[0].items[1].score, 0.625);
  EXPECT_EQ(decoded[0].generation, 5u);
  EXPECT_EQ(decoded[1].status, wire::ReplyStatus::kOverloaded);
  EXPECT_EQ(decoded[1].retry_after_ms, 40u);
  EXPECT_EQ(decoded[1].message, "shed");
}

TEST(WireProtocolTest, TruncatedPayloadsDecodeToErrorsNotOverReads) {
  wire::Request request;
  request.verb = wire::Verb::kBatch;
  request.queries.resize(3);
  for (auto& query : request.queries) query.weights = {0.3, 0.3, 0.4};
  const std::vector<std::uint8_t> payload = wire::EncodeRequest(request);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(payload.begin(),
                                           payload.begin() + cut);
    wire::Request decoded;
    EXPECT_FALSE(wire::DecodeRequest(prefix, &decoded).ok())
        << "cut at " << cut;
  }
}

TEST(WireProtocolTest, AppendFrameRefusesOversizedPayloadsNotAborts) {
  std::vector<std::uint8_t> payload(wire::kMaxFramePayload + 1, 0xab);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(wire::AppendFrame(1, payload, &out));
  EXPECT_TRUE(out.empty());  // a refused frame appends nothing

  payload.resize(wire::kMaxFramePayload);
  ASSERT_TRUE(wire::AppendFrame(2, payload, &out));
  std::size_t pos = 0;
  wire::Frame frame;
  std::string error;
  ASSERT_EQ(wire::ScanFrame(out, &pos, &frame, &error),
            wire::FrameScan::kFrame);
  EXPECT_EQ(frame.request_id, 2u);
  EXPECT_EQ(frame.payload.size(), wire::kMaxFramePayload);
}

TEST(WireProtocolTest, ReplyBudgetCoversEveryAdmissibleShape) {
  // The admission predicate and the wire constants stay consistent:
  // the largest single result and the largest full batch both fit.
  EXPECT_TRUE(wire::ReplyFits(1, wire::kMaxWireItems));
  EXPECT_TRUE(wire::ReplyFits(wire::kMaxBatchQueries, wire::kMaxWireItems));
  EXPECT_FALSE(wire::ReplyFits(1, wire::kMaxWireItems + 1));
  EXPECT_FALSE(wire::ReplyFits(wire::kMaxBatchQueries + 1, 0));

  // Messages are truncated at encode time, so one worst-case result
  // really does encode within the overhead + items budget.
  wire::WireResult result;
  result.message = std::string(10 * wire::kMaxWireMessageBytes, 'x');
  result.items.resize(wire::kMaxWireItems);
  const std::vector<std::uint8_t> payload = wire::EncodeResultReply({result});
  EXPECT_LE(payload.size(), wire::kMaxFramePayload);
  std::vector<wire::WireResult> decoded;
  ASSERT_TRUE(wire::DecodeResultReply(payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].items.size(), wire::kMaxWireItems);
  EXPECT_EQ(decoded[0].message.size(), wire::kMaxWireMessageBytes);
}

// --- server end to end ---

struct ServingDir {
  std::string dir;
  explicit ServingDir(const std::string& name) {
    dir = (std::filesystem::temp_directory_path() /
           (name + "_" + std::to_string(::getpid())))
              .string();
    std::filesystem::create_directories(dir);
  }
  ~ServingDir() { std::filesystem::remove_all(dir); }
};

DualLayerIndex BuildAndPublish(const ServingDir& serving,
                               const std::string& name, std::uint64_t seed) {
  DualLayerIndex index =
      DualLayerIndex::Build(GenerateAnticorrelated(300, 3, seed));
  EXPECT_TRUE(SaveDualLayerIndex(index, serving.dir + "/" + name).ok());
  EXPECT_TRUE(server::PublishSnapshot(serving.dir, name).ok());
  return index;
}

TEST(ServerTest, AnswersMatchTheLocalIndexExactly) {
  ServingDir serving("drli_server_e2e");
  const DualLayerIndex local = BuildAndPublish(serving, "gen-1.v2", 11);

  TopKServer server;
  ASSERT_TRUE(server.Start(serving.dir, ServerOptions{}).ok());
  DrliClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  for (const TopKQuery& query :
       testing_util::RandomQueries(3, /*k=*/6, /*count=*/32, /*seed=*/3)) {
    wire::WireQuery wq;
    wq.weights = query.weights;
    wq.k = query.k;
    auto result = client.Query(wq);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().status, wire::ReplyStatus::kOk);
    const TopKResult expected = local.Query(query);
    ASSERT_EQ(result.value().items.size(), expected.items.size());
    for (std::size_t r = 0; r < expected.items.size(); ++r) {
      EXPECT_EQ(result.value().items[r].id, expected.items[r].id);
      EXPECT_EQ(result.value().items[r].score, expected.items[r].score);
    }
    EXPECT_EQ(result.value().tuples_evaluated,
              expected.stats.tuples_evaluated);
  }

  // Batch over one connection matches too, slot for slot.
  std::vector<wire::WireQuery> batch;
  const auto queries = testing_util::RandomQueries(3, 4, 16, 5);
  for (const TopKQuery& query : queries) {
    wire::WireQuery wq;
    wq.weights = query.weights;
    wq.k = query.k;
    batch.push_back(wq);
  }
  auto results = client.Batch(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results.value().size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const TopKResult expected = local.Query(queries[i]);
    ASSERT_EQ(results.value()[i].items.size(), expected.items.size()) << i;
    for (std::size_t r = 0; r < expected.items.size(); ++r) {
      EXPECT_EQ(results.value()[i].items[r].id, expected.items[r].id);
    }
  }

  auto health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().generation, 1u);
  EXPECT_GE(health.value().queries_served, 32u);
  EXPECT_EQ(health.value().draining, 0);

  auto inspect = client.Inspect();
  ASSERT_TRUE(inspect.ok());
  EXPECT_EQ(inspect.value().snapshot, "gen-1.v2");
  EXPECT_EQ(inspect.value().num_points, 300u);
  EXPECT_EQ(inspect.value().dim, 3u);
  server.Shutdown();
}

TEST(ServerTest, MalformedPayloadUnderIntactFrameKeepsConnection) {
  ServingDir serving("drli_server_malformed");
  BuildAndPublish(serving, "gen-1.v2", 13);
  TopKServer server;
  ASSERT_TRUE(server.Start(serving.dir, ServerOptions{}).ok());
  DrliClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // A well-framed payload with an out-of-range verb decodes to a
  // kMalformed reply -- and the connection survives for the next query.
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(wire::AppendFrame(77, {0xee, 0x01, 0x02}, &frame));
  ASSERT_TRUE(client.SendRaw(frame).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().request_id, 77u);
  std::vector<wire::WireResult> results;
  ASSERT_TRUE(wire::DecodeResultReply(reply.value().payload, &results).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, wire::ReplyStatus::kMalformed);

  wire::WireQuery query;
  query.weights = {0.2, 0.3, 0.5};
  query.k = 3;
  auto answer = client.Query(query);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer.value().status, wire::ReplyStatus::kOk);
  EXPECT_EQ(server.counters().malformed_frames, 1u);
  server.Shutdown();
}

TEST(ServerTest, OverloadShedsWithRetryAfterNotCollapse) {
  ServingDir serving("drli_server_shed");
  BuildAndPublish(serving, "gen-1.v2", 17);
  ServerOptions options;
  options.max_in_flight = 1;
  options.num_workers = 1;
  options.test_worker_delay_ms = 40.0;  // park the one admitted query
  options.retry_after_ms = 35;
  TopKServer server;
  ASSERT_TRUE(server.Start(serving.dir, options).ok());

  constexpr std::size_t kClients = 6;
  std::atomic<std::size_t> ok_count{0}, shed_count{0}, errors{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      DrliClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        errors.fetch_add(1);
        return;
      }
      wire::WireQuery query;
      query.weights = {0.2 + 0.1 * static_cast<double>(c % 3), 0.3, 0.5};
      query.k = 4;
      auto result = client.Query(query);
      if (!result.ok()) {
        errors.fetch_add(1);
      } else if (result.value().status == wire::ReplyStatus::kOk) {
        ok_count.fetch_add(1);
      } else if (result.value().status == wire::ReplyStatus::kOverloaded) {
        // The shed is explicit and actionable, not a dropped socket.
        if (result.value().retry_after_ms != 35) errors.fetch_add(1);
        shed_count.fetch_add(1);
      } else {
        errors.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(ok_count.load() + shed_count.load(), kClients);
  EXPECT_GE(ok_count.load(), 1u);   // the admitted query completed
  EXPECT_GE(shed_count.load(), 1u); // and overload was actually hit
  EXPECT_EQ(server.counters().queries_shed, shed_count.load());
  server.Shutdown();
}

// The high-severity DoS pin: a well-formed request whose reply could
// not fit one frame used to CHECK-abort the whole process inside
// AppendFrame; it must come back as an explicit kInvalidQuery instead,
// with the connection (and the server) intact.
TEST(ServerTest, RepliesThatCannotFitOneFrameAreRejectedUpFront) {
  ServingDir serving("drli_server_replycap");
  BuildAndPublish(serving, "gen-1.v2", 23);
  TopKServer server;
  ASSERT_TRUE(server.Start(serving.dir, ServerOptions{}).ok());
  DrliClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Single query with k over the per-frame item bound.
  wire::WireQuery query;
  query.weights = {0.2, 0.3, 0.5};
  query.k = wire::kMaxWireItems + 1;
  auto huge = client.Query(query);
  ASSERT_TRUE(huge.ok()) << huge.status().ToString();
  EXPECT_EQ(huge.value().status, wire::ReplyStatus::kInvalidQuery);

  // A batch whose combined worst case overflows the frame cap even
  // though every per-query k is individually modest.
  std::vector<wire::WireQuery> batch(256);
  for (auto& wq : batch) {
    wq.weights = {0.2, 0.3, 0.5};
    wq.k = 1000;
  }
  auto results = client.Batch(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results.value().size(), batch.size());
  for (const wire::WireResult& r : results.value()) {
    EXPECT_EQ(r.status, wire::ReplyStatus::kInvalidQuery);
  }

  // The largest admissible k still answers on the same connection --
  // the server shrugged off both rejections.
  query.k = wire::kMaxWireItems;
  auto legal = client.Query(query);
  ASSERT_TRUE(legal.ok()) << legal.status().ToString();
  EXPECT_EQ(legal.value().status, wire::ReplyStatus::kOk);
  EXPECT_EQ(legal.value().items.size(), 300u);  // clamped by the dataset
  server.Shutdown();
}

TEST(ServerTest, GracefulDrainAnswersInFlightWork) {
  ServingDir serving("drli_server_drain");
  BuildAndPublish(serving, "gen-1.v2", 19);
  ServerOptions options;
  options.test_worker_delay_ms = 30.0;  // widen the drain window
  TopKServer server;
  ASSERT_TRUE(server.Start(serving.dir, options).ok());
  DrliClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  wire::WireQuery query;
  query.weights = {0.2, 0.3, 0.5};
  query.k = 4;
  std::uint32_t id = 0;
  {
    wire::Request request;
    request.verb = wire::Verb::kQuery;
    request.queries.push_back(query);
    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(wire::AppendFrame(5, wire::EncodeRequest(request), &frame));
    id = 5;
    ASSERT_TRUE(client.SendRaw(frame).ok());
  }
  std::thread shutdown([&] { server.Shutdown(); });
  // The in-flight query is answered, not dropped, while the server
  // drains underneath it.
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().request_id, id);
  std::vector<wire::WireResult> results;
  ASSERT_TRUE(wire::DecodeResultReply(reply.value().payload, &results).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, wire::ReplyStatus::kOk);
  EXPECT_EQ(results[0].items.size(), 4u);
  shutdown.join();
  EXPECT_TRUE(server.draining());

  // New work after the drain is refused explicitly or the socket is
  // gone -- never a hang.
  DrliClient late;
  if (late.Connect("127.0.0.1", server.port(), 0.5).ok()) {
    auto refused = late.Query(query);
    if (refused.ok()) {
      EXPECT_EQ(refused.value().status, wire::ReplyStatus::kShuttingDown);
    }
  }
}

// The headline soak: >= 20 generation bumps under a live query load of
// >= 10k queries, every reply kOk and exactly equal to what the
// snapshot of its generation answers locally. Generation sequence s
// serves snapshot gen-(s-1).v2 because publishes are acknowledged (via
// the reloads counter) before the next one goes out.
TEST(ServerSoakTest, HotReloadServesTenThousandQueriesAcrossTwentyBumps) {
  constexpr std::size_t kGenerations = 21;  // initial + 20 bumps
  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kQueriesPerReader = 2600;  // 10400 total

  ServingDir serving("drli_server_soak");
  const std::vector<TopKQuery> queries =
      testing_util::RandomQueries(3, /*k=*/5, /*count=*/8, /*seed=*/29);

  // Build every generation up front and precompute its exact answers.
  std::vector<std::vector<TopKResult>> expected(kGenerations);
  for (std::size_t g = 0; g < kGenerations; ++g) {
    const DualLayerIndex index = DualLayerIndex::Build(
        GenerateAnticorrelated(250, 3, 1000 + g));
    ASSERT_TRUE(SaveDualLayerIndex(index, serving.dir + "/gen-" +
                                              std::to_string(g) + ".v2")
                    .ok());
    for (const TopKQuery& query : queries) {
      expected[g].push_back(index.Query(query));
    }
  }
  ASSERT_TRUE(server::PublishSnapshot(serving.dir, "gen-0.v2").ok());

  ServerOptions options;
  options.reload_poll_seconds = 0.002;
  TopKServer server;
  ASSERT_TRUE(server.Start(serving.dir, options).ok());

  std::atomic<bool> published_all{false};
  std::atomic<std::size_t> soak_errors{0};
  std::atomic<std::size_t> queries_answered{0};

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      DrliClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        soak_errors.fetch_add(1);
        return;
      }
      std::uint64_t last_generation = 0;
      // The load outlives the publisher: at least kQueriesPerReader
      // round trips, and never stopping while bumps are still landing.
      for (std::size_t q = 0;
           q < kQueriesPerReader || !published_all.load(); ++q) {
        const std::size_t slot = (q + r) % queries.size();
        wire::WireQuery wq;
        wq.weights = queries[slot].weights;
        wq.k = queries[slot].k;
        auto result = client.Query(wq);
        if (!result.ok() ||
            result.value().status != wire::ReplyStatus::kOk) {
          soak_errors.fetch_add(1);
          continue;
        }
        const wire::WireResult& got = result.value();
        // Generations only move forward under a sequential client.
        if (got.generation < last_generation ||
            got.generation < 1 || got.generation > kGenerations) {
          soak_errors.fetch_add(1);
          continue;
        }
        last_generation = got.generation;
        const TopKResult& want = expected[got.generation - 1][slot];
        bool match = got.items.size() == want.items.size();
        for (std::size_t i = 0; match && i < want.items.size(); ++i) {
          match = got.items[i].id == want.items[i].id &&
                  got.items[i].score == want.items[i].score;
        }
        if (!match) soak_errors.fetch_add(1);
        queries_answered.fetch_add(1);
      }
    });
  }

  // Publisher: bump CURRENT through every generation under the load,
  // waiting for each swap to be observed before the next publish so
  // the sequence -> snapshot mapping stays exact.
  std::thread publisher([&] {
    for (std::size_t g = 1; g < kGenerations; ++g) {
      ASSERT_TRUE(server::PublishSnapshot(serving.dir,
                                          "gen-" + std::to_string(g) + ".v2")
                      .ok());
      while (server.counters().reloads < g) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  publisher.join();
  published_all.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(soak_errors.load(), 0u);
  EXPECT_GE(queries_answered.load(), 10000u);
  EXPECT_EQ(server.counters().reloads, kGenerations - 1);
  // Every generation really served: the last reply of each reader came
  // from the final generation only after all 20 swaps happened live.
  DrliClient inspect_client;
  ASSERT_TRUE(inspect_client.Connect("127.0.0.1", server.port()).ok());
  auto inspect = inspect_client.Inspect();
  ASSERT_TRUE(inspect.ok());
  EXPECT_EQ(inspect.value().snapshot,
            "gen-" + std::to_string(kGenerations - 1) + ".v2");
  server.Shutdown();
}

}  // namespace
}  // namespace drli
