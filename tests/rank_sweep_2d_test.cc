#include <algorithm>
#include <set>

#include "gtest/gtest.h"

#include "core/rank_sweep_2d.h"
#include "data/generator.h"
#include "test_util.h"
#include "topk/scan.h"

namespace drli {
namespace {

// Oracle: top-k set at a specific weight via full scan.
std::vector<TupleId> TopKSetAt(const PointSet& pts, double w1,
                               std::size_t k) {
  TopKQuery query;
  query.weights = {w1, 1.0 - w1};
  query.k = k;
  const TopKResult result = Scan(pts, query);
  std::vector<TupleId> ids;
  for (const ScoredTuple& item : result.items) ids.push_back(item.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Whether the oracle set's scores match the sweep set's scores (sets
// may differ on exact ties; score multisets must agree).
bool SetsScoreEquivalent(const PointSet& pts, double w1,
                         const std::vector<TupleId>& a,
                         const std::vector<TupleId>& b) {
  if (a.size() != b.size()) return false;
  const Point w = {w1, 1.0 - w1};
  std::vector<double> sa, sb;
  for (TupleId id : a) sa.push_back(Score(w, pts[id]));
  for (TupleId id : b) sb.push_back(Score(w, pts[id]));
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (std::fabs(sa[i] - sb[i]) > 1e-9) return false;
  }
  return true;
}

TEST(RankSweepTest, ToyDatasetTop1MatchesWeightRanges) {
  // The k = 1 sweep over L^11 must reproduce the Section V-A ranges:
  // breakpoints where a, b, c exchange the top spot.
  const PointSet pts = testing_util::MakeToyDataset();
  const RankSweepResult sweep = SweepTopKSets2D(pts, 1);
  // Top-1 near w1 = 0 is c (min distance axis y? -- min y value is c),
  // near w1 = 1 is a (min x).
  EXPECT_EQ(sweep.topk_sets.front(),
            (std::vector<TupleId>{testing_util::kC}));
  EXPECT_EQ(sweep.topk_sets.back(),
            (std::vector<TupleId>{testing_util::kA}));
  // Only convex-skyline members can ever appear.
  for (const auto& set : sweep.topk_sets) {
    ASSERT_EQ(set.size(), 1u);
    EXPECT_TRUE(set[0] == testing_util::kA || set[0] == testing_util::kB ||
                set[0] == testing_util::kC);
  }
}

TEST(RankSweepTest, MatchesScanOnDenseGrid) {
  const PointSet pts = GenerateAnticorrelated(300, 2, 7);
  for (std::size_t k : {1u, 5u, 10u}) {
    const RankSweepResult sweep = SweepTopKSets2D(pts, k);
    for (double w1 = 0.005; w1 < 1.0; w1 += 0.005) {
      const auto expected = TopKSetAt(pts, w1, k);
      const auto& got = sweep.SetAt(w1);
      EXPECT_TRUE(SetsScoreEquivalent(pts, w1, expected, got))
          << "k=" << k << " w1=" << w1;
    }
  }
}

TEST(RankSweepTest, BreakpointsStrictlyIncreasingInUnitInterval) {
  const PointSet pts = GenerateIndependent(500, 2, 8);
  const RankSweepResult sweep = SweepTopKSets2D(pts, 10);
  double prev = 0.0;
  for (double b : sweep.breakpoints) {
    EXPECT_GT(b, prev);
    EXPECT_LT(b, 1.0);
    prev = b;
  }
  EXPECT_EQ(sweep.topk_sets.size(), sweep.breakpoints.size() + 1);
  // Adjacent sets differ (no-op intervals are compacted).
  for (std::size_t i = 0; i + 1 < sweep.topk_sets.size(); ++i) {
    EXPECT_NE(sweep.topk_sets[i], sweep.topk_sets[i + 1]);
  }
}

TEST(RankSweepTest, KEqualsNIsOneInterval) {
  const PointSet pts = GenerateIndependent(50, 2, 9);
  const RankSweepResult sweep = SweepTopKSets2D(pts, 50);
  EXPECT_TRUE(sweep.breakpoints.empty());
  ASSERT_EQ(sweep.topk_sets.size(), 1u);
  EXPECT_EQ(sweep.topk_sets[0].size(), 50u);
}

TEST(RankSweepTest, SingleTupleAndEmpty) {
  PointSet one(2);
  one.Add({0.3, 0.7});
  const RankSweepResult sweep = SweepTopKSets2D(one, 3);
  EXPECT_TRUE(sweep.breakpoints.empty());
  EXPECT_EQ(sweep.topk_sets[0], (std::vector<TupleId>{0}));

  PointSet none(2);
  const RankSweepResult empty = SweepTopKSets2D(none, 1);
  EXPECT_TRUE(empty.topk_sets[0].empty());
}

TEST(RankSweepTest, ConcurrentLinesCascade) {
  // Three lines through one point: (0.2,0.8), (0.5,0.5), (0.8,0.2) all
  // score 0.5 at w1 = 0.5 -- a full-reversal cascade at one weight.
  PointSet pts(2);
  pts.Add({0.2, 0.8});
  pts.Add({0.5, 0.5});
  pts.Add({0.8, 0.2});
  const RankSweepResult sweep = SweepTopKSets2D(pts, 1);
  ASSERT_GE(sweep.topk_sets.size(), 2u);
  EXPECT_EQ(sweep.topk_sets.front(), (std::vector<TupleId>{2}));
  EXPECT_EQ(sweep.topk_sets.back(), (std::vector<TupleId>{0}));
  for (double b : sweep.breakpoints) {
    EXPECT_NEAR(b, 0.5, 1e-9);
  }
}

TEST(ReverseTopKTest, IntervalsMatchMembership) {
  const PointSet pts = GenerateAnticorrelated(200, 2, 10);
  const std::size_t k = 5;
  const RankSweepResult sweep = SweepTopKSets2D(pts, k);
  for (TupleId target = 0; target < 20; ++target) {
    const auto intervals = ReverseTopKIntervals2D(sweep, target);
    // Sample: membership in the swept sets must agree with intervals.
    for (double w1 = 0.01; w1 < 1.0; w1 += 0.01) {
      const bool in_set =
          std::binary_search(sweep.SetAt(w1).begin(),
                             sweep.SetAt(w1).end(), target);
      bool in_interval = false;
      for (const auto& [lo, hi] : intervals) {
        if (w1 >= lo && w1 <= hi) {
          in_interval = true;
          break;
        }
      }
      EXPECT_EQ(in_set, in_interval) << "target " << target << " w1 " << w1;
    }
  }
}

TEST(ReverseTopKTest, SkylineMembersHaveIntervalsDominatedDoNot) {
  PointSet pts(2);
  pts.Add({0.1, 0.9});   // 0: on the chain
  pts.Add({0.9, 0.1});   // 1: on the chain
  pts.Add({0.95, 0.95});  // 2: dominated by everything
  const RankSweepResult sweep = SweepTopKSets2D(pts, 1);
  EXPECT_FALSE(ReverseTopKIntervals2D(sweep, 0).empty());
  EXPECT_FALSE(ReverseTopKIntervals2D(sweep, 1).empty());
  EXPECT_TRUE(ReverseTopKIntervals2D(sweep, 2).empty());
}

TEST(ReverseTopKTest, AdjacentIntervalsMerged) {
  const PointSet pts = GenerateIndependent(100, 2, 11);
  const RankSweepResult sweep = SweepTopKSets2D(pts, 10);
  for (TupleId target = 0; target < 10; ++target) {
    const auto intervals = ReverseTopKIntervals2D(sweep, target);
    for (std::size_t i = 0; i + 1 < intervals.size(); ++i) {
      EXPECT_LT(intervals[i].second, intervals[i + 1].first);
    }
  }
}

}  // namespace
}  // namespace drli
