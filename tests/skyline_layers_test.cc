#include <numeric>
#include <set>

#include "gtest/gtest.h"

#include "common/random.h"
#include "data/generator.h"
#include "skyline/skyline_layers.h"
#include "test_util.h"

namespace drli {
namespace {

using testing_util::MakeToyDataset;

void CheckPartition(const std::vector<std::vector<TupleId>>& layers,
                    const std::vector<std::size_t>& layer_of,
                    std::size_t n) {
  std::size_t total = 0;
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    EXPECT_FALSE(layers[i].empty()) << "layer " << i;
    for (TupleId id : layers[i]) {
      ASSERT_LT(id, n);
      EXPECT_FALSE(seen[id]) << "tuple " << id << " in two layers";
      seen[id] = true;
      EXPECT_EQ(layer_of[id], i);
      ++total;
    }
  }
  EXPECT_EQ(total, n);
}

TEST(SkylineLayersTest, ToyDatasetLayers) {
  const PointSet pts = MakeToyDataset();
  const LayerDecomposition layers = BuildSkylineLayers(pts);
  ASSERT_EQ(layers.layers.size(), 3u);
  EXPECT_EQ(layers.layers[0],
            (std::vector<TupleId>{testing_util::kA, testing_util::kB,
                                  testing_util::kC, testing_util::kF,
                                  testing_util::kG}));
  EXPECT_EQ(layers.layers[1],
            (std::vector<TupleId>{testing_util::kD, testing_util::kE,
                                  testing_util::kI, testing_util::kJ}));
  EXPECT_EQ(layers.layers[2],
            (std::vector<TupleId>{testing_util::kH, testing_util::kK}));
  CheckPartition(layers.layers, layers.layer_of, pts.size());
}

TEST(SkylineLayersTest, PartitionAndMonotonicity) {
  for (std::size_t d = 2; d <= 4; ++d) {
    const PointSet pts = GenerateIndependent(600, d, 10 + d);
    const LayerDecomposition layers = BuildSkylineLayers(pts);
    CheckPartition(layers.layers, layers.layer_of, pts.size());
    // Every tuple in layer i+1 is dominated by some tuple in layer i.
    for (std::size_t i = 0; i + 1 < layers.layers.size(); ++i) {
      for (TupleId t : layers.layers[i + 1]) {
        bool dominated = false;
        for (TupleId s : layers.layers[i]) {
          if (Dominates(pts[s], pts[t])) {
            dominated = true;
            break;
          }
        }
        EXPECT_TRUE(dominated) << "layer " << i + 1 << " tuple " << t;
      }
    }
    // Layers are skylines: members are mutually incomparable.
    for (const auto& layer : layers.layers) {
      for (std::size_t x = 0; x < layer.size(); ++x) {
        for (std::size_t y = x + 1; y < layer.size(); ++y) {
          EXPECT_FALSE(Dominates(pts[layer[x]], pts[layer[y]]));
          EXPECT_FALSE(Dominates(pts[layer[y]], pts[layer[x]]));
        }
      }
    }
  }
}

TEST(ConvexLayersTest, PartitionAndMinimizerProperty) {
  const PointSet pts = GenerateIndependent(400, 3, 5);
  const ConvexLayerDecomposition layers = BuildConvexLayers(pts);
  EXPECT_FALSE(layers.truncated);
  CheckPartition(layers.layers, layers.layer_of, pts.size());

  // For any positive weight vector, the layer minima increase strictly
  // with the layer index (prefix property of convex layers).
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Point w = rng.SimplexWeight(3);
    double prev = -1.0;
    for (const auto& layer : layers.layers) {
      double lo = Score(w, pts[layer[0]]);
      for (TupleId id : layer) {
        lo = std::min(lo, Score(w, pts[id]));
      }
      EXPECT_GT(lo, prev);
      prev = lo;
    }
  }
}

TEST(ConvexLayersTest, ToyDatasetFirstLayer) {
  const PointSet pts = MakeToyDataset();
  const ConvexLayerDecomposition layers = BuildConvexLayers(pts);
  ASSERT_GE(layers.layers.size(), 2u);
  EXPECT_EQ(layers.layers[0],
            (std::vector<TupleId>{testing_util::kA, testing_util::kB,
                                  testing_util::kC}));
}

TEST(ConvexLayersTest, MaxLayersTruncates) {
  const PointSet pts = GenerateIndependent(500, 3, 6);
  const ConvexLayerDecomposition full = BuildConvexLayers(pts);
  ASSERT_GT(full.layers.size(), 3u);
  const ConvexLayerDecomposition capped = BuildConvexLayers(pts, 3);
  EXPECT_TRUE(capped.truncated);
  ASSERT_EQ(capped.layers.size(), 4u);  // 3 peeled + 1 tail
  // The peeled prefix agrees with the full decomposition.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(capped.layers[i], full.layers[i]);
  }
  CheckPartition(capped.layers, capped.layer_of, pts.size());
}

TEST(ConvexLayersTest, AnticorrelatedManyLayersStillPartition) {
  const PointSet pts = GenerateAnticorrelated(300, 4, 9);
  const ConvexLayerDecomposition layers = BuildConvexLayers(pts);
  CheckPartition(layers.layers, layers.layer_of, pts.size());
}

TEST(ForEachDominancePairTest, MatchesBruteForce) {
  const PointSet pts = GenerateIndependent(200, 3, 77);
  const LayerDecomposition layers = BuildSkylineLayers(pts);
  ASSERT_GE(layers.layers.size(), 2u);
  std::set<std::pair<TupleId, TupleId>> via_helper;
  ForEachDominancePair(pts, layers.layers[0], layers.layers[1],
                       [&](TupleId s, TupleId t) {
                         via_helper.insert({s, t});
                       });
  std::set<std::pair<TupleId, TupleId>> brute;
  for (TupleId s : layers.layers[0]) {
    for (TupleId t : layers.layers[1]) {
      if (Dominates(pts[s], pts[t])) brute.insert({s, t});
    }
  }
  EXPECT_EQ(via_helper, brute);
}

}  // namespace
}  // namespace drli
