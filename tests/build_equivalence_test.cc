// Golden equivalence tests for the build-pipeline fast paths: the
// pruned coarse ∀-edge detection, the EDS bbox prefilter, and the
// single-pass layer peeling must produce exactly the structure the
// naive reference procedures produce -- the optimizations are pure
// speedups, never semantic changes.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

#include "common/point.h"
#include "common/random.h"
#include "core/dual_layer.h"
#include "core/eds.h"
#include "core/serialization.h"
#include "data/generator.h"
#include "skyline/skyline_layers.h"

namespace drli {
namespace {

struct Config {
  Distribution dist;
  std::size_t n;
  std::size_t d;
  std::uint64_t seed;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  const char* dist = info.param.dist == Distribution::kIndependent ? "ind"
                     : info.param.dist == Distribution::kCorrelated
                         ? "cor"
                         : "ant";
  std::ostringstream os;
  os << dist << "_d" << info.param.d;
  return os.str();
}

class BuildEquivalenceTest : public ::testing::TestWithParam<Config> {};

// The single-pass layering must equal the repeated-peel reference
// exactly (the decomposition is unique).
TEST_P(BuildEquivalenceTest, LayeringMatchesPeelingReference) {
  const Config& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed);
  const LayerDecomposition fast = BuildSkylineLayers(pts);
  const LayerDecomposition naive = BuildSkylineLayersByPeeling(pts);
  ASSERT_EQ(fast.layers.size(), naive.layers.size());
  for (std::size_t i = 0; i < fast.layers.size(); ++i) {
    EXPECT_EQ(fast.layers[i], naive.layers[i]) << "layer " << i;
  }
  EXPECT_EQ(fast.layer_of, naive.layer_of);
}

// Pruned ∀-edge detection between adjacent layers: same edge set, same
// per-target in-degrees, and the stats partition every candidate pair.
TEST_P(BuildEquivalenceTest, DominancePairsMatchAllPairsReference) {
  const Config& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed);
  const LayerDecomposition layers = BuildSkylineLayers(pts);
  ASSERT_GE(layers.layers.size(), 2u);
  for (std::size_t i = 0; i + 1 < layers.layers.size(); ++i) {
    const std::vector<TupleId>& upper = layers.layers[i];
    const std::vector<TupleId>& lower = layers.layers[i + 1];

    std::set<std::pair<TupleId, TupleId>> pruned_edges;
    DominancePairStats stats;
    ForEachDominancePair(
        pts, upper, lower,
        [&](TupleId s, TupleId t) {
          EXPECT_TRUE(pruned_edges.emplace(s, t).second)
              << "duplicate edge " << s << "->" << t;
        },
        &stats);

    std::set<std::pair<TupleId, TupleId>> naive_edges;
    std::vector<std::size_t> naive_in_degree(pts.size(), 0);
    for (TupleId s : upper) {
      for (TupleId t : lower) {
        if (Dominates(pts[s], pts[t])) {
          naive_edges.emplace(s, t);
          ++naive_in_degree[t];
        }
      }
    }
    EXPECT_EQ(pruned_edges, naive_edges) << "layers " << i << "/" << i + 1;

    std::vector<std::size_t> pruned_in_degree(pts.size(), 0);
    for (const auto& [s, t] : pruned_edges) ++pruned_in_degree[t];
    EXPECT_EQ(pruned_in_degree, naive_in_degree);

    // Every candidate pair lands in exactly one stats bucket.
    EXPECT_EQ(stats.pairs_pruned + stats.pairs_tested,
              upper.size() * lower.size());
  }
}

// The EDS corner prefilter (precomputed min corner, sum shortcut) must
// agree with the from-scratch convenience overload on every decision.
TEST_P(BuildEquivalenceTest, EdsPrefilterMatchesConvenienceReference) {
  const Config& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n / 4, c.d, c.seed + 1);
  Rng rng(c.seed + 2);
  for (std::size_t trial = 0; trial < 200; ++trial) {
    const std::size_t facet_size = 1 + rng.Index(c.d + 1);
    std::vector<TupleId> facet;
    for (std::size_t m = 0; m < facet_size; ++m) {
      facet.push_back(static_cast<TupleId>(rng.Index(pts.size())));
    }
    std::sort(facet.begin(), facet.end());
    facet.erase(std::unique(facet.begin(), facet.end()), facet.end());
    const auto target = static_cast<TupleId>(rng.Index(pts.size()));

    const Point corner = FacetMinCorner(pts, facet);
    // Sum shortcut soundness: when the corner-sum test fires, the
    // componentwise test must also reject (monotone rounding).
    double corner_sum = 0.0;
    double target_sum = 0.0;
    for (std::size_t j = 0; j < c.d; ++j) {
      corner_sum += corner[j];
      target_sum += pts[target][j];
    }
    if (corner_sum > target_sum) {
      EXPECT_FALSE(WeaklyDominates(PointView(corner), pts[target]));
    }

    EdsCounters counters;
    const bool with_corner =
        FacetIsEds(pts, facet, PointView(corner), pts[target], &counters);
    const bool reference = FacetIsEds(pts, facet, pts[target]);
    EXPECT_EQ(with_corner, reference)
        << "trial " << trial << " facet size " << facet.size();
    // Each call resolves through exactly one instrumented path (or the
    // uncounted single-member miss).
    EXPECT_LE(counters.bbox_rejects + counters.member_hits +
                  counters.lp_calls,
              1u);
  }
}

// The full build's coarse-edge counters partition the candidate pairs
// given by adjacent coarse layer sizes.
TEST_P(BuildEquivalenceTest, BuildStatsPartitionCandidatePairs) {
  const Config& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  const DualLayerBuildStats& stats = index.build_stats();

  const LayerDecomposition layers = BuildSkylineLayers(pts);
  std::size_t candidate_pairs = 0;
  for (std::size_t i = 0; i + 1 < layers.layers.size(); ++i) {
    candidate_pairs += layers.layers[i].size() * layers.layers[i + 1].size();
  }
  EXPECT_EQ(stats.coarse_pairs_pruned + stats.coarse_pairs_tested,
            candidate_pairs);
  // EDS pairs all resolve through an instrumented path or an LP.
  EXPECT_GT(stats.num_coarse_edges, 0u);
  if (index.build_stats().num_fine_layers > layers.layers.size()) {
    EXPECT_GT(stats.eds_bbox_rejects + stats.eds_member_hits +
                  stats.eds_lp_calls,
              0u);
  }
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Serial and parallel builds serialize to the same bytes, and repeated
// builds are bit-identical (the bit-identical-build invariant that the
// pruning fast paths must preserve).
TEST_P(BuildEquivalenceTest, SerializedIndexIsDeterministic) {
  const Config& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed);
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string base =
      dir + "/drli_equiv_" + std::to_string(c.d) + "_" +
      std::to_string(static_cast<int>(c.dist));

  DualLayerOptions serial;
  serial.build_zero_layer = true;
  serial.build_threads = 1;
  DualLayerOptions parallel = serial;
  parallel.build_threads = 4;

  const std::string path_a = base + "_a.bin";
  const std::string path_b = base + "_b.bin";
  const std::string path_c = base + "_c.bin";
  ASSERT_TRUE(
      SaveDualLayerIndex(DualLayerIndex::Build(pts, serial), path_a).ok());
  ASSERT_TRUE(
      SaveDualLayerIndex(DualLayerIndex::Build(pts, serial), path_b).ok());
  ASSERT_TRUE(
      SaveDualLayerIndex(DualLayerIndex::Build(pts, parallel), path_c).ok());

  const std::string bytes_a = ReadFileBytes(path_a);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, ReadFileBytes(path_b)) << "rebuild not bit-identical";
  EXPECT_EQ(bytes_a, ReadFileBytes(path_c))
      << "parallel build not bit-identical to serial";
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  std::remove(path_c.c_str());
}

// Serial phase timers are non-negative and sum to roughly the total
// (loose bound: wall-clock noise must not flake CI).
TEST_P(BuildEquivalenceTest, PhaseTimersCoverBuild) {
  const Config& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed);
  DualLayerOptions options;
  options.build_threads = 1;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  const DualLayerBuildStats& s = index.build_stats();
  EXPECT_GE(s.skyline_seconds, 0.0);
  EXPECT_GE(s.fine_peel_seconds, 0.0);
  EXPECT_GE(s.coarse_edge_seconds, 0.0);
  EXPECT_GE(s.zero_layer_seconds, 0.0);
  EXPECT_GE(s.finalize_seconds, 0.0);
  const double phase_sum = s.skyline_seconds + s.fine_peel_seconds +
                           s.coarse_edge_seconds + s.zero_layer_seconds +
                           s.finalize_seconds;
  EXPECT_LE(phase_sum, s.build_seconds + 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuildEquivalenceTest,
    ::testing::Values(
        Config{Distribution::kIndependent, 1200, 2, 11},
        Config{Distribution::kIndependent, 1200, 4, 12},
        Config{Distribution::kCorrelated, 1200, 3, 13},
        Config{Distribution::kCorrelated, 1200, 5, 14},
        Config{Distribution::kAnticorrelated, 900, 2, 15},
        Config{Distribution::kAnticorrelated, 900, 3, 16},
        Config{Distribution::kAnticorrelated, 700, 4, 17},
        Config{Distribution::kAnticorrelated, 500, 5, 18}),
    ConfigName);

}  // namespace
}  // namespace drli
