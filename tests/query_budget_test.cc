// Serving-grade execution controls: per-query budgets, cooperative
// cancellation, certified partial results, recoverable rejection of
// malformed queries, and overload-safe batching (DESIGN.md §5).
//
// The exhaustive cut-point tests fire a step budget and a cancel fuse
// at EVERY step index of a small traversal for the graph families, and
// check every partial result against the brute-force reference through
// the differential oracle.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "common/parallel_for.h"
#include "core/dual_layer.h"
#include "core/dynamic_index.h"
#include "core/index_registry.h"
#include "data/generator.h"
#include "test_util.h"
#include "testing/differential.h"
#include "testing/fault_inject.h"
#include "topk/query.h"

namespace drli {
namespace {

// Force a 4-worker pool so the parallel QueryBatch paths are exercised
// even on small CI machines.
class ForceThreadsEnv : public ::testing::Environment {
 public:
  void SetUp() override { setenv("DRLI_THREADS", "4", 1); }
};
const ::testing::Environment* const kForceThreads =
    ::testing::AddGlobalTestEnvironment(new ForceThreadsEnv);

// --- CancelToken / BudgetGate unit behaviour ---

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, FuseFiresAfterExactPollCount) {
  CancelToken token;
  token.CancelAfterChecks(3);
  EXPECT_FALSE(token.cancelled());  // poll 1
  EXPECT_FALSE(token.cancelled());  // poll 2
  EXPECT_FALSE(token.cancelled());  // poll 3
  EXPECT_TRUE(token.cancelled());   // poll 4 fires
  EXPECT_TRUE(token.cancelled());   // and stays fired
}

TEST(BudgetGateTest, UnlimitedBudgetNeverTrips) {
  BudgetGate gate(ExecBudget{});
  EXPECT_FALSE(gate.active());
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(gate.Step(i), Termination::kComplete);
  }
}

TEST(BudgetGateTest, StepBudgetTripsAtBoundaryAndStaysTripped) {
  ExecBudget budget;
  budget.max_evals = 5;
  BudgetGate gate(budget);
  EXPECT_TRUE(gate.active());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(gate.Step(i), Termination::kComplete) << i;
  }
  EXPECT_EQ(gate.Step(5), Termination::kStepBudget);
  // Sticky: a smaller counter cannot un-trip the gate.
  EXPECT_EQ(gate.Step(0), Termination::kStepBudget);
}

TEST(BudgetGateTest, TinyDeadlineTripsWithinTheFirstPollWindow) {
  ExecBudget budget;
  budget.deadline_seconds = 1e-12;
  BudgetGate gate(budget);
  Termination stop = Termination::kComplete;
  // The deadline is polled every 64 ticks; by tick 64 the elapsed time
  // exceeds a picosecond on any real clock.
  for (std::size_t i = 0; i < 128 && stop == Termination::kComplete; ++i) {
    stop = gate.Step(0);
  }
  EXPECT_EQ(stop, Termination::kDeadline);
}

// --- exhaustive cancellation / step-budget cut points ---

class ExhaustiveCutPointTest : public ::testing::TestWithParam<const char*> {
};

INSTANTIATE_TEST_SUITE_P(Kinds, ExhaustiveCutPointTest,
                         ::testing::Values("dl", "dl+", "dg+", "hl+"),
                         [](const auto& info) {
                           std::string name = info.param;
                           if (!name.empty() && name.back() == '+') {
                             name.back() = 'p';
                           }
                           return name;
                         });

TEST_P(ExhaustiveCutPointTest, EveryPopIndexCertifiesCorrectly) {
  const PointSet points = GenerateAnticorrelated(140, 3, 7);
  StatusOr<DifferentialHarness> harness = DifferentialHarness::Build(points);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();

  TopKQuery base;
  base.k = 9;
  base.weights = {0.2, 0.3, 0.5};
  std::size_t cost = 0;
  for (const auto& [kind, c] : harness.value().UnbudgetedCosts(base)) {
    if (kind == GetParam()) cost = c;
  }
  ASSERT_GT(cost, 0u);

  std::size_t partials = 0;
  for (std::size_t s = 1; s <= cost; ++s) {
    {
      TopKQuery query = base;
      query.budget.max_evals = s;
      const std::vector<std::string> failures =
          harness.value().CheckBudgetedQuery(query, GetParam(), &partials);
      ASSERT_TRUE(failures.empty())
          << "max_evals=" << s << ": " << failures.front();
    }
    {
      CancelToken token;
      token.CancelAfterChecks(s);
      TopKQuery query = base;
      query.budget.cancel = &token;
      const std::vector<std::string> failures =
          harness.value().CheckBudgetedQuery(query, GetParam(), &partials);
      ASSERT_TRUE(failures.empty())
          << "cancel after " << s << " checks: " << failures.front();
    }
  }
  EXPECT_GT(partials, 0u) << "no cut point ever produced a partial result";
}

TEST(BudgetFaultSweepTest, AllFamiliesCertifyUnderEveryStepBudget) {
  const PointSet points = GenerateAnticorrelated(90, 2, 3);
  std::vector<TopKQuery> queries;
  {
    TopKQuery query;
    query.k = 5;
    query.weights = {0.5, 0.5};  // uniform weights maximize ties
    queries.push_back(std::move(query));
  }
  {
    TopKQuery query;
    query.k = 12;
    query.weights = {0.8, 0.2};
    queries.push_back(std::move(query));
  }
  const testing::BudgetFaultReport report =
      testing::RunBudgetFaultSweep(points, queries);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.partials, 0u);
  EXPECT_GT(report.completes, 0u);  // the s = cost boundary cases
}

// --- budgets on individual families ---

TEST(BudgetedQueryTest, ScanReturnsUncertifiedPartial) {
  const PointSet points = GenerateIndependent(500, 3, 11);
  IndexBuildConfig config;
  config.kind = "scan";
  auto built = BuildIndex(config, points);
  ASSERT_TRUE(built.ok());
  TopKQuery query;
  query.k = 10;
  query.weights = {0.3, 0.3, 0.4};
  query.budget.max_evals = 40;
  const TopKResult result = built.value()->Query(query);
  EXPECT_EQ(result.termination, Termination::kStepBudget);
  EXPECT_FALSE(result.complete());
  // An unordered scan cannot bound its unscanned suffix.
  EXPECT_EQ(result.certified_prefix, 0u);
  EXPECT_EQ(result.frontier_bound,
            -std::numeric_limits<double>::infinity());
  EXPECT_LE(result.stats.tuples_evaluated, 40u);
}

TEST(BudgetedQueryTest, DeadlineSurfacesOnLongScan) {
  const PointSet points = GenerateIndependent(20000, 3, 13);
  IndexBuildConfig config;
  config.kind = "scan";
  auto built = BuildIndex(config, points);
  ASSERT_TRUE(built.ok());
  TopKQuery query;
  query.k = 5;
  query.weights = {0.3, 0.3, 0.4};
  query.budget.deadline_seconds = 1e-12;
  const TopKResult result = built.value()->Query(query);
  EXPECT_EQ(result.termination, Termination::kDeadline);
  EXPECT_LT(result.stats.tuples_evaluated, points.size());
}

TEST(BudgetedQueryTest, DynamicIndexCertifiesAgainstExactAnswer) {
  const PointSet points = GenerateAnticorrelated(160, 3, 17);
  PointSet initial(3);
  for (std::size_t i = 0; i < 100; ++i) initial.Add(points[i]);
  DynamicDualLayerIndex dynamic(std::move(initial));
  for (std::size_t i = 100; i < points.size(); ++i) {
    dynamic.Insert(points[i]);
  }

  TopKQuery query;
  query.k = 12;
  query.weights = {0.4, 0.4, 0.2};
  const TopKResult exact = dynamic.Query(query);
  ASSERT_TRUE(exact.complete());
  ASSERT_EQ(exact.certified_prefix, exact.items.size());

  bool saw_partial = false;
  for (std::size_t s = 1; s <= exact.stats.tuples_evaluated; s += 3) {
    TopKQuery budgeted = query;
    budgeted.budget.max_evals = s;
    const TopKResult partial = dynamic.Query(budgeted);
    ASSERT_LE(partial.certified_prefix, partial.items.size());
    ASSERT_LE(partial.certified_prefix, exact.items.size());
    saw_partial = saw_partial || !partial.complete();
    for (std::size_t rank = 0; rank < partial.certified_prefix; ++rank) {
      EXPECT_EQ(partial.items[rank].id, exact.items[rank].id)
          << "s=" << s << " rank=" << rank;
      EXPECT_EQ(partial.items[rank].score, exact.items[rank].score);
    }
  }
  EXPECT_TRUE(saw_partial);
}

// --- recoverable rejection of malformed queries ---

TEST(InvalidQueryTest, EveryFamilyRejectsRecoverably) {
  const PointSet points = GenerateIndependent(60, 3, 9);
  for (const std::string& kind : KnownIndexKinds()) {
    IndexBuildConfig config;
    config.kind = kind;
    auto built = BuildIndex(config, points);
    ASSERT_TRUE(built.ok()) << kind;

    TopKQuery bad_dim;
    bad_dim.weights = {0.5, 0.5};  // index is 3-d
    bad_dim.k = 3;
    const TopKResult r1 = built.value()->Query(bad_dim);
    EXPECT_EQ(r1.termination, Termination::kInvalidQuery) << kind;
    EXPECT_NE(r1.error.find("dimensionality"), std::string::npos) << kind;
    EXPECT_TRUE(r1.items.empty()) << kind;
    EXPECT_EQ(r1.certified_prefix, 0u) << kind;

    TopKQuery bad_weight;
    bad_weight.weights = {0.5, -0.1, 0.6};
    bad_weight.k = 3;
    const TopKResult r2 = built.value()->Query(bad_weight);
    EXPECT_EQ(r2.termination, Termination::kInvalidQuery) << kind;
    EXPECT_NE(r2.error.find("non-negative"), std::string::npos) << kind;

    // A zero weight is the legal simplex boundary: every family must
    // accept it and agree on the answer with the brute-force scan.
    TopKQuery boundary;
    boundary.weights = {0.0, 0.4, 0.6};
    boundary.k = 3;
    const TopKResult r3 = built.value()->Query(boundary);
    EXPECT_EQ(r3.termination, Termination::kComplete) << kind;
    EXPECT_EQ(r3.items.size(), 3u) << kind;

    // The same rejection must flow through the batch path.
    const std::vector<TopKResult> batch =
        built.value()->QueryBatch({bad_dim, bad_weight});
    ASSERT_EQ(batch.size(), 2u) << kind;
    EXPECT_EQ(batch[0].termination, Termination::kInvalidQuery) << kind;
    EXPECT_EQ(batch[1].termination, Termination::kInvalidQuery) << kind;
  }
}

TEST(InvalidQueryTest, DynamicIndexRejectsRecoverably) {
  DynamicDualLayerIndex dynamic(3);
  const Point tuple{0.1, 0.2, 0.3};
  dynamic.Insert(PointView(tuple));
  TopKQuery bad;
  bad.weights = {1.0};
  bad.k = 1;
  const TopKResult result = dynamic.Query(bad);
  EXPECT_EQ(result.termination, Termination::kInvalidQuery);
  EXPECT_TRUE(result.items.empty());
}

// --- batch semantics: per-query budgets, shedding, worker errors ---

void ExpectSameOutcome(const TopKResult& expected, const TopKResult& actual) {
  ASSERT_EQ(expected.termination, actual.termination);
  ASSERT_EQ(expected.certified_prefix, actual.certified_prefix);
  ASSERT_EQ(expected.items.size(), actual.items.size());
  for (std::size_t i = 0; i < expected.items.size(); ++i) {
    EXPECT_EQ(expected.items[i].id, actual.items[i].id) << "rank " << i;
    EXPECT_EQ(expected.items[i].score, actual.items[i].score);
  }
  EXPECT_EQ(expected.stats.tuples_evaluated, actual.stats.tuples_evaluated);
}

TEST(BatchBudgetTest, SerialAndParallelBatchesHonourPerQueryBudgets) {
  ASSERT_EQ(ParallelThreadCount(), 4u);
  const PointSet points = GenerateAnticorrelated(600, 3, 31);
  // dl exercises the parallel fan-out, onion the serial base-class loop.
  for (const char* kind : {"dl", "onion"}) {
    IndexBuildConfig config;
    config.kind = kind;
    auto built = BuildIndex(config, points);
    ASSERT_TRUE(built.ok()) << kind;
    const TopKIndex& index = *built.value();

    std::vector<TopKQuery> queries =
        testing_util::RandomQueries(3, /*k=*/7, /*count=*/24, /*seed=*/5);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      // A mix of unlimited, generous and tight step budgets.
      queries[i].budget.max_evals = (i % 3 == 0) ? 0 : 3 * i + 1;
    }
    const std::vector<TopKResult> batch = index.QueryBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    bool saw_partial = false;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ExpectSameOutcome(index.Query(queries[i]), batch[i]);
      saw_partial = saw_partial || !batch[i].complete();
    }
    EXPECT_TRUE(saw_partial) << kind;
  }
}

TEST(BatchSheddingTest, QueriesBeyondTheInFlightLimitAreShed) {
  const PointSet points = GenerateAnticorrelated(300, 3, 37);
  for (const char* kind : {"dl+", "onion"}) {
    IndexBuildConfig config;
    config.kind = kind;
    auto built = BuildIndex(config, points);
    ASSERT_TRUE(built.ok()) << kind;
    const TopKIndex& index = *built.value();

    // 4x the in-flight limit, per the acceptance criterion.
    const std::size_t limit = 8;
    const std::vector<TopKQuery> queries =
        testing_util::RandomQueries(3, /*k=*/5, /*count=*/4 * limit,
                                    /*seed=*/9);
    BatchOptions options;
    options.max_in_flight = limit;
    const std::vector<TopKResult> results = index.QueryBatch(queries, options);
    ASSERT_EQ(results.size(), queries.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i < limit) {
        EXPECT_TRUE(results[i].complete()) << kind << " slot " << i;
        ExpectSameOutcome(index.Query(queries[i]), results[i]);
      } else {
        EXPECT_EQ(results[i].termination, Termination::kShed)
            << kind << " slot " << i;
        EXPECT_NE(results[i].error.find("in-flight limit"),
                  std::string::npos);
        EXPECT_TRUE(results[i].items.empty());
        EXPECT_EQ(results[i].certified_prefix, 0u);
      }
    }

    // Shedding is deterministic: the same batch sheds the same slots.
    const std::vector<TopKResult> again = index.QueryBatch(queries, options);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].termination, again[i].termination) << i;
    }
  }
}

// Validation happens BEFORE the shed decision: a malformed query is a
// kInvalidQuery rejection that consumes no in-flight slot, so it can
// never crowd out a well-formed query under admission pressure.
TEST(BatchSheddingTest, MalformedQueriesDoNotConsumeInFlightSlots) {
  const PointSet points = GenerateAnticorrelated(300, 3, 37);
  const DualLayerIndex index = DualLayerIndex::Build(points);

  std::vector<TopKQuery> queries =
      testing_util::RandomQueries(3, /*k=*/5, /*count=*/4, /*seed=*/9);
  queries[0].weights = {0.5, 0.5};           // wrong arity
  queries[2].weights = {-0.2, 0.6, 0.6};     // negative component

  BatchOptions options;
  options.max_in_flight = 2;  // exactly the number of valid queries
  const std::vector<TopKResult> results = index.QueryBatch(queries, options);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].termination, Termination::kInvalidQuery);
  EXPECT_EQ(results[2].termination, Termination::kInvalidQuery);
  // Both valid queries were admitted: with validate-after-shed the
  // malformed slots would have eaten the cap and slot 3 would be shed.
  EXPECT_TRUE(results[1].complete());
  EXPECT_TRUE(results[3].complete());
  ExpectSameOutcome(index.Query(queries[1]), results[1]);
  ExpectSameOutcome(index.Query(queries[3]), results[3]);

  // With a cap of 1 the second valid query is the one shed -- the
  // malformed ones still reject as invalid, never as overload.
  options.max_in_flight = 1;
  const std::vector<TopKResult> tight = index.QueryBatch(queries, options);
  EXPECT_EQ(tight[0].termination, Termination::kInvalidQuery);
  EXPECT_EQ(tight[2].termination, Termination::kInvalidQuery);
  EXPECT_TRUE(tight[1].complete());
  EXPECT_EQ(tight[3].termination, Termination::kShed);
}

TEST(BatchSheddingTest, UnlimitedInFlightAdmitsEverything) {
  const PointSet points = GenerateIndependent(100, 2, 41);
  const DualLayerIndex index = DualLayerIndex::Build(points);
  const std::vector<TopKQuery> queries =
      testing_util::RandomQueries(2, 3, 12, 2);
  const std::vector<TopKResult> results =
      index.QueryBatch(queries, BatchOptions{});
  for (const TopKResult& result : results) {
    EXPECT_TRUE(result.complete());
  }
}

TEST(BatchDefaultBudgetTest, AppliedOnlyToUnlimitedQueries) {
  const PointSet points = GenerateIndependent(400, 2, 43);
  IndexBuildConfig config;
  config.kind = "scan";
  auto built = BuildIndex(config, points);
  ASSERT_TRUE(built.ok());

  std::vector<TopKQuery> queries = testing_util::RandomQueries(2, 5, 4, 3);
  queries[2].budget.max_evals = points.size();  // own, generous budget

  BatchOptions options;
  options.default_budget.max_evals = 10;  // far below the scan cost
  const std::vector<TopKResult> results =
      built.value()->QueryBatch(queries, options);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].termination, Termination::kStepBudget);
  EXPECT_EQ(results[1].termination, Termination::kStepBudget);
  EXPECT_TRUE(results[2].complete());  // kept its own budget
  EXPECT_EQ(results[3].termination, Termination::kStepBudget);
}

// A deliberately poisoned index: proves one throwing worker cannot take
// down the batch or the process.
class ThrowingIndex : public TopKIndex {
 public:
  std::string name() const override { return "THROWING"; }
  std::size_t size() const override { return 0; }
  TopKResult Query(const TopKQuery& query) const override {
    if (query.k == 13) throw std::runtime_error("poisoned query k=13");
    TopKResult result;
    FinalizeComplete(result);
    return result;
  }
};

TEST(WorkerExceptionTest, ThrownExceptionSurfacesAsErrorResult) {
  ThrowingIndex index;
  std::vector<TopKQuery> queries(3);
  for (auto& query : queries) query.weights = {1.0};
  queries[0].k = 1;
  queries[1].k = 13;  // poisoned
  queries[2].k = 2;
  const std::vector<TopKResult> results = index.QueryBatch(queries);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].complete());
  EXPECT_EQ(results[1].termination, Termination::kError);
  EXPECT_NE(results[1].error.find("poisoned query"), std::string::npos);
  EXPECT_EQ(results[1].certified_prefix, 0u);
  EXPECT_TRUE(results[2].complete());
}

// --- cancellation racing a parallel batch (the TSan job runs this) ---

TEST(CancelRaceTest, CancellingASharedTokenMidBatchIsSafe) {
  ASSERT_EQ(ParallelThreadCount(), 4u);
  const PointSet points = GenerateAnticorrelated(4000, 3, 53);
  const DualLayerIndex index = DualLayerIndex::Build(points);

  CancelToken token;
  std::vector<TopKQuery> queries =
      testing_util::RandomQueries(3, /*k=*/32, /*count=*/64, /*seed=*/6);
  for (TopKQuery& query : queries) query.budget.cancel = &token;

  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    token.Cancel();
  });
  const std::vector<TopKResult> results = index.QueryBatch(queries);
  canceller.join();

  ASSERT_EQ(results.size(), queries.size());
  for (const TopKResult& result : results) {
    // Depending on timing a query either finished or was cancelled;
    // nothing else is acceptable, and partials stay well-formed.
    ASSERT_TRUE(result.termination == Termination::kComplete ||
                result.termination == Termination::kCancelled)
        << TerminationName(result.termination);
    EXPECT_LE(result.certified_prefix, result.items.size());
  }

  // After the token fired, new queries stop at their first check.
  TopKQuery cancelled = queries.front();
  const TopKResult late = index.Query(cancelled);
  EXPECT_EQ(late.termination, Termination::kCancelled);
}

}  // namespace
}  // namespace drli
