// Tiered (LSM-style) dynamic index: seal / compaction state machine,
// multi-run merge correctness against a brute-force mirror, id
// stability across compactions, tombstone masking, budgeted queries
// certifying against multi-run frontiers, and the deterministic
// query-mid-compaction interleaving contract (queries between
// CompactStep calls always see the pre-merge generation and never
// block on the merge).

#include <algorithm>
#include <map>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"
#include "core/dynamic_index.h"
#include "core/tiered_index.h"
#include "test_util.h"
#include "topk/query.h"

namespace drli {
namespace {

// Brute-force oracle over the live (id -> row) map, canonical order.
std::vector<ScoredTuple> ExactTopK(const std::map<TupleId, Point>& live,
                                   const TopKQuery& query) {
  std::vector<ScoredTuple> all;
  all.reserve(live.size());
  for (const auto& [id, row] : live) {
    all.push_back({id, Score(PointView(query.weights.data(),
                                       query.weights.size()),
                             PointView(row.data(), row.size()))});
  }
  std::sort(all.begin(), all.end(), ResultOrderLess);
  if (all.size() > query.k) all.resize(query.k);
  return all;
}

void ExpectExact(const TieredDualLayerIndex& index,
                 const std::map<TupleId, Point>& live, std::size_t k,
                 const char* where) {
  Rng rng(7);
  for (std::size_t q = 0; q < 6; ++q) {
    TopKQuery query;
    query.weights = rng.SimplexWeight(index.dim());
    query.k = k;
    const std::vector<ScoredTuple> want = ExactTopK(live, query);
    const TopKResult got = index.Query(query);
    ASSERT_TRUE(got.complete()) << where << ": " << got.error;
    ASSERT_EQ(got.items.size(), want.size()) << where;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.items[i].id, want[i].id) << where << " rank " << i;
      EXPECT_DOUBLE_EQ(got.items[i].score, want[i].score)
          << where << " rank " << i;
    }
  }
}

Point RandomRow(Rng& rng, std::size_t d) {
  Point row(d);
  for (double& x : row) x = rng.Uniform();
  return row;
}

TieredIndexOptions SmallRuns() {
  TieredIndexOptions options;
  options.memtable_capacity = 8;
  options.fanout = 2;
  options.auto_compact = false;  // tests drive the state machine
  return options;
}

TEST(TieredIndexTest, InsertsSpanRunsAndStayExact) {
  TieredDualLayerIndex index(3, SmallRuns());
  std::map<TupleId, Point> live;
  Rng rng(11);
  for (std::size_t i = 0; i < 60; ++i) {
    const Point row = RandomRow(rng, 3);
    live[index.Insert(PointView(row.data(), row.size()))] = row;
  }
  EXPECT_GE(index.num_runs(), 4u);  // 60 rows / memtable of 8
  EXPECT_GT(index.memtable_size(), 0u);
  EXPECT_EQ(index.size(), live.size());
  ExpectExact(index, live, 5, "multi-run");
  ExpectExact(index, live, 60, "k = n");
}

TEST(TieredIndexTest, SealAndCompactPreserveAnswers) {
  TieredDualLayerIndex index(2, SmallRuns());
  std::map<TupleId, Point> live;
  Rng rng(13);
  for (std::size_t i = 0; i < 40; ++i) {
    const Point row = RandomRow(rng, 2);
    live[index.Insert(PointView(row.data(), row.size()))] = row;
  }
  index.SealMemtable();
  EXPECT_EQ(index.memtable_size(), 0u);
  ExpectExact(index, live, 7, "sealed");
  const std::uint64_t generation = index.generation();
  index.Compact();
  EXPECT_LE(index.num_runs(), 1u);
  EXPECT_EQ(index.tombstone_count(), 0u);
  EXPECT_GT(index.generation(), generation);
  ExpectExact(index, live, 7, "compacted");
}

// Queries issued between CompactStep calls must return the exact
// answer at every phase of the merge (the pre-merge generation stays
// queryable until kInstalled swaps atomically) -- the "queries never
// block on compaction" contract, exercised deterministically.
TEST(TieredIndexTest, QueryMidCompactionSeesConsistentGeneration) {
  TieredIndexOptions options = SmallRuns();
  options.compact_rows_per_step = 4;  // many merge steps per job
  TieredDualLayerIndex index(3, options);
  std::map<TupleId, Point> live;
  Rng rng(17);
  for (std::size_t i = 0; i < 48; ++i) {
    const Point row = RandomRow(rng, 3);
    live[index.Insert(PointView(row.data(), row.size()))] = row;
  }
  index.SealMemtable();
  const std::size_t runs_before = index.num_runs();
  ASSERT_GE(runs_before, 2u);
  std::size_t steps = 0;
  std::size_t mid_phase_queries = 0;
  while (true) {
    const CompactProgress progress = index.CompactStep();
    if (progress == CompactProgress::kIdle) break;
    ++steps;
    // The merge is mid-flight: answers must already be exact, and the
    // pre-install phases must not have mutated the visible run set.
    if (progress != CompactProgress::kInstalled) {
      EXPECT_EQ(index.num_runs(), runs_before) << "merge leaked early";
      ++mid_phase_queries;
    }
    ExpectExact(index, live, 5, "mid-compaction");
    ASSERT_LT(steps, 1000u) << "compaction does not terminate";
  }
  EXPECT_GT(mid_phase_queries, 2u) << "merge completed in one step; the "
                                      "interleaving was never exercised";
  EXPECT_LT(index.num_runs(), runs_before);
  ExpectExact(index, live, 5, "post-compaction");
}

TEST(TieredIndexTest, EraseThenReinsertKeepsIdsStableAcrossCompactions) {
  TieredDualLayerIndex index(2, SmallRuns());
  std::map<TupleId, Point> live;
  Rng rng(19);
  std::vector<TupleId> ids;
  for (std::size_t i = 0; i < 30; ++i) {
    const Point row = RandomRow(rng, 2);
    const TupleId id = index.Insert(PointView(row.data(), row.size()));
    live[id] = row;
    ids.push_back(id);
  }
  // Erase a third, remember their rows, re-insert the same rows: the
  // new copies must get fresh ids (never reused), and the old ids must
  // stay dead forever -- across an intervening full compaction.
  std::vector<std::pair<TupleId, Point>> erased;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    erased.push_back({ids[i], live[ids[i]]});
    ASSERT_TRUE(index.Erase(ids[i]));
    live.erase(ids[i]);
  }
  index.Compact();
  for (const auto& [old_id, row] : erased) {
    const TupleId fresh = index.Insert(PointView(row.data(), row.size()));
    EXPECT_GT(fresh, old_id) << "stable id reused";
    EXPECT_FALSE(index.Contains(old_id));
    EXPECT_TRUE(index.Contains(fresh));
    live[fresh] = row;
  }
  index.Compact();
  for (const auto& [old_id, row] : erased) {
    EXPECT_FALSE(index.Contains(old_id)) << "erased id resurrected";
  }
  EXPECT_EQ(index.size(), live.size());
  ExpectExact(index, live, 9, "after erase/reinsert/compact");
}

TEST(TieredIndexTest, KLargerThanLiveSizeWithTombstones) {
  TieredDualLayerIndex index(3, SmallRuns());
  std::map<TupleId, Point> live;
  Rng rng(23);
  std::vector<TupleId> ids;
  for (std::size_t i = 0; i < 25; ++i) {
    const Point row = RandomRow(rng, 3);
    const TupleId id = index.Insert(PointView(row.data(), row.size()));
    live[id] = row;
    ids.push_back(id);
  }
  index.SealMemtable();
  for (std::size_t i = 0; i < ids.size(); i += 2) {  // tombstone most rows
    ASSERT_TRUE(index.Erase(ids[i]));
    live.erase(ids[i]);
  }
  EXPECT_GT(index.tombstone_count(), 0u);
  // k far beyond the live count: every live tuple comes back exactly
  // once, no tombstoned id leaks.
  TopKQuery query;
  query.weights = {0.2, 0.3, 0.5};
  query.k = 1000;
  const TopKResult result = index.Query(query);
  ASSERT_TRUE(result.complete()) << result.error;
  EXPECT_EQ(result.items.size(), live.size());
  for (const ScoredTuple& item : result.items) {
    EXPECT_TRUE(live.count(item.id)) << "dead id " << item.id << " returned";
  }
  ExpectExact(index, live, live.size() + 5, "k > live");
}

TEST(TieredIndexTest, AllTombstonedRunsAndEmptyMemtable) {
  TieredDualLayerIndex index(2, SmallRuns());
  std::vector<TupleId> ids;
  Rng rng(29);
  for (std::size_t i = 0; i < 16; ++i) {
    const Point row = RandomRow(rng, 2);
    ids.push_back(index.Insert(PointView(row.data(), row.size())));
  }
  index.SealMemtable();  // everything indexed, memtable empty
  for (const TupleId id : ids) ASSERT_TRUE(index.Erase(id));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_GT(index.num_runs(), 0u);  // runs still hold the dead rows
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 3;
  const TopKResult result = index.Query(query);
  ASSERT_TRUE(result.complete()) << result.error;
  EXPECT_TRUE(result.items.empty());
  // Compaction over fully-dead runs collapses to nothing.
  index.Compact();
  EXPECT_EQ(index.num_runs(), 0u);
  EXPECT_EQ(index.tombstone_count(), 0u);
  // Double-erase and unknown ids are recoverable no-ops.
  EXPECT_FALSE(index.Erase(ids.front()));
  EXPECT_FALSE(index.Erase(123456u));
}

// Budgeted query over a genuinely multi-run shape: the certified
// prefix must be an exact prefix of the brute-force answer, and the
// frontier bound must bound every unreturned live tuple -- the bound
// here is a min over per-run frontiers plus surviving heap keys.
TEST(TieredIndexTest, BudgetedQueryCertifiesAgainstMultiRunFrontier) {
  TieredDualLayerIndex index(3, SmallRuns());
  std::map<TupleId, Point> live;
  Rng rng(31);
  for (std::size_t i = 0; i < 64; ++i) {
    const Point row = RandomRow(rng, 3);
    live[index.Insert(PointView(row.data(), row.size()))] = row;
  }
  ASSERT_GE(index.num_runs(), 4u);
  TopKQuery query;
  query.weights = {0.4, 0.3, 0.3};
  query.k = 10;
  const std::vector<ScoredTuple> exact = ExactTopK(live, query);
  std::size_t partials = 0;
  for (std::size_t budget = 1; budget <= 40; ++budget) {
    TopKQuery budgeted = query;
    budgeted.budget.max_evals = budget;
    const TopKResult result = index.Query(budgeted);
    if (result.complete()) {
      ASSERT_EQ(result.items.size(), exact.size());
      continue;
    }
    ++partials;
    EXPECT_EQ(result.termination, Termination::kStepBudget);
    ASSERT_LE(result.certified_prefix, result.items.size());
    for (std::size_t i = 0; i < result.certified_prefix; ++i) {
      EXPECT_EQ(result.items[i].id, exact[i].id) << "budget " << budget;
      EXPECT_DOUBLE_EQ(result.items[i].score, exact[i].score);
    }
    // Every unreturned live tuple scores >= the frontier bound.
    for (const auto& [id, row] : live) {
      bool returned = false;
      for (const ScoredTuple& item : result.items) {
        if (item.id == id) { returned = true; break; }
      }
      if (returned) continue;
      const double score =
          Score(PointView(query.weights.data(), query.weights.size()),
                PointView(row.data(), row.size()));
      EXPECT_GE(score, result.frontier_bound)
          << "budget " << budget << " id " << id;
    }
  }
  EXPECT_GT(partials, 0u) << "no budget ever fired; sweep is vacuous";
}

// The per-run lower bounds must keep cold runs closed: with the best
// tuple planted in one run, k=1 queries should not open every run.
TEST(TieredIndexTest, ColdRunsStayClosed) {
  TieredIndexOptions options = SmallRuns();
  TieredDualLayerIndex index(2, options);
  Rng rng(37);
  // Three well-separated score bands, one run each (seal in between):
  // the 0.0 band dominates every query, the 0.8 band can never win.
  for (const double base : {0.8, 0.4, 0.0}) {
    for (std::size_t i = 0; i < 8; ++i) {
      const Point row = {base + 0.1 * rng.Uniform(),
                         base + 0.1 * rng.Uniform()};
      index.Insert(PointView(row.data(), row.size()));
    }
    index.SealMemtable();
  }
  ASSERT_EQ(index.num_runs(), 3u);
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 1;
  const TopKResult result = index.Query(query);
  ASSERT_TRUE(result.complete());
  EXPECT_LT(result.stats.runs_opened, index.num_runs())
      << "every run was opened for k=1; bounds prune nothing";
  EXPECT_GE(result.stats.runs_opened, 1u);
}

TEST(TieredIndexTest, BudgetedCompactIsResumable) {
  TieredDualLayerIndex index(3, SmallRuns());
  Rng rng(41);
  for (std::size_t i = 0; i < 80; ++i) {
    const Point row = RandomRow(rng, 3);
    index.Insert(PointView(row.data(), row.size()));
  }
  ExecBudget tiny;
  tiny.max_evals = 3;  // trips almost immediately
  std::size_t rounds = 0;
  while (index.Compact(tiny) != Termination::kComplete) {
    ASSERT_LT(++rounds, 10000u) << "budgeted compaction does not progress";
  }
  EXPECT_GT(rounds, 0u) << "budget never fired";
  EXPECT_LE(index.num_runs(), 1u);
  EXPECT_EQ(index.tombstone_count(), 0u);
  EXPECT_EQ(index.memtable_size(), 0u);
}

TEST(TieredIndexTest, BulkConstructorMatchesInsertPath) {
  const PointSet points = testing_util::MakeToyDataset();
  TieredIndexOptions options = SmallRuns();
  const TieredDualLayerIndex bulk{[&] {
    PointSet copy(points.dim());
    for (std::size_t i = 0; i < points.size(); ++i) copy.Add(points[i]);
    return copy;
  }(), options};
  TieredDualLayerIndex incremental(points.dim(), options);
  for (std::size_t i = 0; i < points.size(); ++i) {
    incremental.Insert(points[i]);
  }
  EXPECT_EQ(bulk.num_runs(), 1u);  // bulk start is one run
  for (const TopKQuery& query :
       testing_util::RandomQueries(points.dim(), 4, 12, 43)) {
    const TopKResult a = bulk.Query(query);
    const TopKResult b = incremental.Query(query);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (std::size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i].id, b.items[i].id);
      EXPECT_DOUBLE_EQ(a.items[i].score, b.items[i].score);
    }
  }
}

// The legacy wrapper: both maintenance policies answer identically and
// keep the historical observable behaviour (delta drains on Compact).
TEST(TieredIndexTest, DynamicWrapperPoliciesAgree) {
  DynamicIndexOptions tiered_options;
  tiered_options.policy = MaintenancePolicy::kTiered;
  tiered_options.memtable_capacity = 8;
  DynamicIndexOptions flat_options;
  flat_options.policy = MaintenancePolicy::kFlatRebuild;
  DynamicDualLayerIndex tiered(3, tiered_options);
  DynamicDualLayerIndex flat(3, flat_options);
  Rng rng(47);
  std::vector<TupleId> ids;
  for (std::size_t i = 0; i < 120; ++i) {
    const Point row = RandomRow(rng, 3);
    const TupleId a = tiered.Insert(PointView(row.data(), row.size()));
    const TupleId b = flat.Insert(PointView(row.data(), row.size()));
    ASSERT_EQ(a, b) << "policies diverge on id assignment";
    ids.push_back(a);
    if (i % 5 == 2 && !ids.empty()) {
      const TupleId victim = ids[rng.Index(ids.size())];
      ASSERT_EQ(tiered.Erase(victim), flat.Erase(victim));
    }
  }
  ASSERT_EQ(tiered.size(), flat.size());
  for (const TopKQuery& query : testing_util::RandomQueries(3, 6, 10, 53)) {
    const TopKResult a = tiered.Query(query);
    const TopKResult b = flat.Query(query);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (std::size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i].id, b.items[i].id);
      EXPECT_DOUBLE_EQ(a.items[i].score, b.items[i].score);
    }
  }
  tiered.Compact();
  flat.Compact();
  EXPECT_EQ(tiered.delta_size(), 0u);
  EXPECT_EQ(flat.delta_size(), 0u);
  EXPECT_EQ(tiered.size(), flat.size());
}

}  // namespace
}  // namespace drli
