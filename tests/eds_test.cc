#include <algorithm>
#include <limits>

#include "gtest/gtest.h"

#include "common/random.h"
#include "core/eds.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

using testing_util::MakeToyDataset;

TEST(EdsTest, PaperExample2) {
  // {a,b} is an EDS of f; {b,c} is not (Fig. 4). Symmetrically {b,c}
  // is an EDS of g and {a,b} is not (Example 3).
  const PointSet pts = MakeToyDataset();
  EXPECT_TRUE(FacetIsEds(pts, {testing_util::kA, testing_util::kB},
                         pts[testing_util::kF]));
  EXPECT_FALSE(FacetIsEds(pts, {testing_util::kB, testing_util::kC},
                          pts[testing_util::kF]));
  EXPECT_TRUE(FacetIsEds(pts, {testing_util::kB, testing_util::kC},
                         pts[testing_util::kG]));
  EXPECT_FALSE(FacetIsEds(pts, {testing_util::kA, testing_util::kB},
                          pts[testing_util::kG]));
}

TEST(EdsTest, SingleMemberDominatesTarget) {
  PointSet pts(3);
  pts.Add({0.1, 0.1, 0.1});  // dominates the target
  pts.Add({0.9, 0.9, 0.9});
  EXPECT_TRUE(FacetIsEds(pts, {0}, Point{0.5, 0.5, 0.5}));
  EXPECT_FALSE(FacetIsEds(pts, {1}, Point{0.5, 0.5, 0.5}));
}

TEST(EdsTest, ConvexCombinationRequired) {
  // Neither endpoint dominates the target but the midpoint does.
  PointSet pts(2);
  pts.Add({0.0, 0.8});
  pts.Add({0.8, 0.0});
  // Midpoint (0.4, 0.4) dominates (0.5, 0.5).
  EXPECT_TRUE(FacetIsEds(pts, {0, 1}, Point{0.5, 0.5}));
  // (0.3, 0.3) is below every point of the segment: the segment point
  // minimizing max-coordinate is the midpoint (0.4, 0.4).
  EXPECT_FALSE(FacetIsEds(pts, {0, 1}, Point{0.3, 0.3}));
}

TEST(EdsTest, TargetOnFacetCountsAsCovered) {
  PointSet pts(2);
  pts.Add({0.0, 1.0});
  pts.Add({1.0, 0.0});
  // The midpoint lies exactly on the segment: weak dominance.
  EXPECT_TRUE(FacetIsEds(pts, {0, 1}, Point{0.5, 0.5}));
}

TEST(EdsTest, ComponentwiseMinPrefilter) {
  PointSet pts(3);
  pts.Add({0.5, 0.1, 0.1});
  pts.Add({0.1, 0.5, 0.1});
  pts.Add({0.1, 0.1, 0.5});
  // Componentwise min (0.1, 0.1, 0.1) fails against a target below it.
  EXPECT_FALSE(FacetIsEds(pts, {0, 1, 2}, Point{0.05, 0.9, 0.9}));
}

TEST(EdsTest, SimplexInterior3D) {
  PointSet pts(3);
  pts.Add({0.6, 0.0, 0.0});
  pts.Add({0.0, 0.6, 0.0});
  pts.Add({0.0, 0.0, 0.6});
  // Barycenter (0.2, 0.2, 0.2) dominates (0.25, 0.25, 0.25).
  EXPECT_TRUE(FacetIsEds(pts, {0, 1, 2}, Point{0.25, 0.25, 0.25}));
  // (0.15, 0.15, 0.15): any convex combination sums to 0.6 > 0.45.
  EXPECT_FALSE(FacetIsEds(pts, {0, 1, 2}, Point{0.15, 0.15, 0.15}));
}

TEST(EdsTest, GuaranteeLemma2) {
  // Property: whenever FacetIsEds holds, for EVERY strictly positive
  // weight vector some facet member scores <= the target (Lemma 2).
  Rng rng(77);
  for (std::size_t d = 2; d <= 5; ++d) {
    const PointSet pts = GenerateIndependent(50, d, 100 + d);
    for (int trial = 0; trial < 40; ++trial) {
      std::vector<TupleId> facet;
      while (facet.size() < d) {
        const TupleId id = static_cast<TupleId>(rng.Index(pts.size()));
        if (std::find(facet.begin(), facet.end(), id) == facet.end()) {
          facet.push_back(id);
        }
      }
      const TupleId target = static_cast<TupleId>(rng.Index(pts.size()));
      if (!FacetIsEds(pts, facet, pts[target])) continue;
      for (int wtrial = 0; wtrial < 25; ++wtrial) {
        const Point w = rng.SimplexWeight(d);
        double best = std::numeric_limits<double>::infinity();
        for (TupleId id : facet) {
          best = std::min(best, Score(w, pts[id]));
        }
        EXPECT_LE(best, Score(w, pts[target]) + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace drli
