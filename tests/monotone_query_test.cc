// Tests for the monotone-scoring extension of the Dominant Graph:
// ∀-dominance only needs monotonicity, so DG answers top-k for any
// monotone function, not just linear combinations.

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"

#include "baselines/dominant_graph.h"
#include "common/random.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

// Brute-force oracle for an arbitrary scorer.
std::vector<ScoredTuple> ScanMonotone(
    const PointSet& points, const DominantGraphIndex::MonotoneScorer& scorer,
    std::size_t k) {
  std::vector<ScoredTuple> all;
  for (std::size_t i = 0; i < points.size(); ++i) {
    all.push_back(ScoredTuple{static_cast<TupleId>(i), scorer(points[i])});
  }
  std::sort(all.begin(), all.end(),
            [](const ScoredTuple& a, const ScoredTuple& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.id < b.id;
            });
  all.resize(std::min(k, all.size()));
  return all;
}

void ExpectMatchesMonotoneScan(
    const DominantGraphIndex& index, const PointSet& points,
    const DominantGraphIndex::MonotoneScorer& scorer, std::size_t k) {
  const std::vector<ScoredTuple> expected = ScanMonotone(points, scorer, k);
  const TopKResult got = index.QueryMonotone(scorer, k);
  ASSERT_EQ(got.items.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got.items[i].score, expected[i].score, 1e-9) << "rank " << i;
  }
  EXPECT_LE(got.stats.tuples_evaluated, points.size());
}

TEST(MonotoneQueryTest, WeightedL2Norm) {
  const PointSet pts = GenerateAnticorrelated(600, 3, 1);
  const DominantGraphIndex index = DominantGraphIndex::Build(pts);
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const Point w = rng.SimplexWeight(3);
    auto scorer = [w](PointView p) {
      double s = 0.0;
      for (std::size_t j = 0; j < p.size(); ++j) s += w[j] * p[j] * p[j];
      return std::sqrt(s);
    };
    ExpectMatchesMonotoneScan(index, pts, scorer, 10);
  }
}

TEST(MonotoneQueryTest, ChebyshevMax) {
  const PointSet pts = GenerateIndependent(500, 4, 3);
  const DominantGraphIndex index = DominantGraphIndex::Build(pts);
  auto scorer = [](PointView p) {
    double m = p[0];
    for (double x : p) m = std::max(m, x);
    return m;
  };
  ExpectMatchesMonotoneScan(index, pts, scorer, 25);
}

TEST(MonotoneQueryTest, LogProductScore) {
  const PointSet pts = GenerateIndependent(400, 3, 4);
  const DominantGraphIndex index = DominantGraphIndex::Build(pts);
  auto scorer = [](PointView p) {
    double s = 0.0;
    for (double x : p) s += std::log1p(x);
    return s;
  };
  ExpectMatchesMonotoneScan(index, pts, scorer, 15);
}

TEST(MonotoneQueryTest, WorksWithZeroLayer) {
  // Pseudo-tuples weakly dominate their members, which is exactly the
  // monotone guarantee, so DG+ supports monotone scoring too.
  const PointSet pts = GenerateAnticorrelated(600, 4, 5);
  DominantGraphOptions options;
  options.build_zero_layer = true;
  const DominantGraphIndex index = DominantGraphIndex::Build(pts, options);
  auto scorer = [](PointView p) {
    double s = 0.0;
    for (double x : p) s += x * x * x;
    return s;
  };
  ExpectMatchesMonotoneScan(index, pts, scorer, 10);
}

TEST(MonotoneQueryTest, LinearQueryConsistentWithMonotonePath) {
  const PointSet pts = GenerateIndependent(300, 3, 6);
  const DominantGraphIndex index = DominantGraphIndex::Build(pts);
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 10, 7)) {
    const Point w = query.weights;
    const TopKResult linear = index.Query(query);
    const TopKResult monotone = index.QueryMonotone(
        [w](PointView p) { return Score(w, p); }, query.k);
    ASSERT_EQ(linear.items.size(), monotone.items.size());
    for (std::size_t i = 0; i < linear.items.size(); ++i) {
      EXPECT_EQ(linear.items[i].id, monotone.items[i].id);
    }
    EXPECT_EQ(linear.stats.tuples_evaluated,
              monotone.stats.tuples_evaluated);
  }
}

TEST(MonotoneQueryTest, SelectiveAccess) {
  // Even for nonlinear scorers the graph prunes most of the relation.
  const PointSet pts = GenerateIndependent(5000, 3, 8);
  const DominantGraphIndex index = DominantGraphIndex::Build(pts);
  auto scorer = [](PointView p) {
    return std::pow(p[0], 1.5) + 0.5 * p[1] + p[2] * p[2];
  };
  const TopKResult result = index.QueryMonotone(scorer, 10);
  EXPECT_LT(result.stats.tuples_evaluated, pts.size() / 4);
}

}  // namespace
}  // namespace drli
