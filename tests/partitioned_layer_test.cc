#include "gtest/gtest.h"

#include "baselines/onion.h"
#include "baselines/partitioned_layer.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

using testing_util::ExpectMatchesScan;

TEST(PartitionedLayerTest, PartitionsCoverRelation) {
  const PointSet pts = GenerateIndependent(1000, 3, 1);
  PartitionedLayerOptions options;
  options.num_partitions = 7;
  const PartitionedLayerIndex index =
      PartitionedLayerIndex::Build(pts, options);
  EXPECT_EQ(index.build_stats().num_partitions, 7u);
  std::vector<bool> seen(pts.size(), false);
  std::size_t total = 0;
  for (const auto& partition : index.layers()) {
    for (const auto& layer : partition) {
      EXPECT_FALSE(layer.empty());
      for (TupleId id : layer) {
        ASSERT_LT(id, pts.size());
        EXPECT_FALSE(seen[id]);
        seen[id] = true;
        ++total;
      }
    }
  }
  EXPECT_EQ(total, pts.size());
}

struct PliCase {
  Distribution dist;
  std::size_t d;
  std::size_t partitions;
};

class PartitionedLayerCorrectnessTest
    : public ::testing::TestWithParam<PliCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionedLayerCorrectnessTest,
    ::testing::Values(PliCase{Distribution::kIndependent, 2, 4},
                      PliCase{Distribution::kIndependent, 3, 0},
                      PliCase{Distribution::kIndependent, 4, 8},
                      PliCase{Distribution::kAnticorrelated, 3, 3},
                      PliCase{Distribution::kAnticorrelated, 4, 0},
                      PliCase{Distribution::kCorrelated, 3, 5}));

TEST_P(PartitionedLayerCorrectnessTest, MatchesScan) {
  const PliCase& c = GetParam();
  const PointSet pts = Generate(c.dist, 600, c.d, 50 + c.d);
  PartitionedLayerOptions options;
  options.num_partitions = c.partitions;
  const PartitionedLayerIndex index =
      PartitionedLayerIndex::Build(pts, options);
  ExpectMatchesScan(index, pts, 10, 10, c.d);
  ExpectMatchesScan(index, pts, 37, 5, c.d + 1);
}

TEST(PartitionedLayerTest, SinglePartitionBehavesLikeOnion) {
  const PointSet pts = GenerateIndependent(500, 3, 2);
  PartitionedLayerOptions options;
  options.num_partitions = 1;
  const PartitionedLayerIndex pli =
      PartitionedLayerIndex::Build(pts, options);
  const OnionIndex onion = OnionIndex::Build(pts);
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 10, 3)) {
    const TopKResult a = pli.Query(query);
    const TopKResult b = onion.Query(query);
    EXPECT_TRUE(testing_util::ResultsEquivalent(b, a));
    // Same layer structure, same best-first scan: identical cost.
    EXPECT_EQ(a.stats.tuples_evaluated, b.stats.tuples_evaluated);
  }
}

TEST(PartitionedLayerTest, BuildCheaperThanGlobalOnionOnLargeInput) {
  const PointSet pts = GenerateAnticorrelated(8000, 3, 4);
  PartitionedLayerOptions options;
  options.num_partitions = 16;
  const PartitionedLayerIndex pli =
      PartitionedLayerIndex::Build(pts, options);
  const OnionIndex onion = OnionIndex::Build(pts);
  // PLI's selling point: hulls over n/p points build faster than one
  // global convex layering.
  EXPECT_LT(pli.build_stats().build_seconds,
            onion.build_stats().build_seconds);
  // But answers stay exact.
  ExpectMatchesScan(pli, pts, 10, 5, 5);
}

TEST(PartitionedLayerTest, PartitionCountTradesQueryCost) {
  // More partitions -> more first layers that must all be touched ->
  // higher floor on query cost.
  const PointSet pts = GenerateIndependent(2000, 3, 6);
  PartitionedLayerOptions few, many;
  few.num_partitions = 2;
  many.num_partitions = 32;
  const PartitionedLayerIndex a = PartitionedLayerIndex::Build(pts, few);
  const PartitionedLayerIndex b = PartitionedLayerIndex::Build(pts, many);
  std::size_t cost_few = 0, cost_many = 0;
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 15, 7)) {
    cost_few += a.Query(query).stats.tuples_evaluated;
    cost_many += b.Query(query).stats.tuples_evaluated;
  }
  EXPECT_LT(cost_few, cost_many);
}

TEST(PartitionedLayerTest, TinyRelation) {
  PointSet pts(2);
  pts.Add({0.1, 0.9});
  pts.Add({0.9, 0.1});
  pts.Add({0.5, 0.5});
  const PartitionedLayerIndex index = PartitionedLayerIndex::Build(pts);
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 3;
  EXPECT_EQ(index.Query(query).items.size(), 3u);
}

}  // namespace
}  // namespace drli
