#include <cstdio>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <string>

#include "gtest/gtest.h"

#include "baselines/dominant_graph.h"
#include "core/dual_layer.h"
#include "data/generator.h"
#include "storage/mmap_file.h"
#include "storage/page_layout.h"
#include "test_util.h"

namespace drli {
namespace {

TEST(ReadFileContentsTest, RoundTripsBytes) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "drli_read_contents.bin")
          .string();
  const std::string payload("dual\0resolution\nlayer\xff", 22);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(payload.data(), 1, payload.size(), f);
  std::fclose(f);

  auto bytes = MmapFile::ReadFileContents(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  ASSERT_EQ(bytes.value().size(), payload.size());
  EXPECT_EQ(std::memcmp(bytes.value().data(), payload.data(), payload.size()),
            0);
  std::filesystem::remove(path);
}

TEST(ReadFileContentsTest, EmptyFileYieldsEmptyVector) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "drli_read_empty.bin")
          .string();
  std::fclose(std::fopen(path.c_str(), "wb"));
  auto bytes = MmapFile::ReadFileContents(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_TRUE(bytes.value().empty());
  std::filesystem::remove(path);
}

TEST(ReadFileContentsTest, MissingFileCarriesPathAndErrnoDetail) {
  auto bytes = MmapFile::ReadFileContents("/nonexistent/drli_nope.bin");
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kIoError);
  // The Status names the failing syscall, the path, and the errno text
  // so a serving-directory misconfiguration is diagnosable from the
  // error alone.
  EXPECT_NE(bytes.status().message().find("open("), std::string::npos);
  EXPECT_NE(bytes.status().message().find("/nonexistent/drli_nope.bin"),
            std::string::npos);
  EXPECT_NE(bytes.status().message().find("No such file"),
            std::string::npos);
}

TEST(PageLayoutTest, PacksGroupsIntoPages) {
  // Two groups of 5 and 3 tuples, 2 per page: pages 0,0,1,1,2 | 3,3,4.
  const std::vector<std::vector<TupleId>> groups = {{0, 1, 2, 3, 4},
                                                    {5, 6, 7}};
  const PageLayout layout(groups, 2);
  EXPECT_EQ(layout.num_pages(), 5u);
  EXPECT_EQ(layout.page_of(0), 0u);
  EXPECT_EQ(layout.page_of(1), 0u);
  EXPECT_EQ(layout.page_of(4), 2u);
  EXPECT_EQ(layout.page_of(5), 3u);  // new group, new page
  EXPECT_EQ(layout.page_of(7), 4u);
}

TEST(PageLayoutTest, GroupsNeverSharePages) {
  const std::vector<std::vector<TupleId>> groups = {{0}, {1}, {2}};
  const PageLayout layout(groups, 100);
  EXPECT_EQ(layout.num_pages(), 3u);
  EXPECT_NE(layout.page_of(0), layout.page_of(1));
  EXPECT_NE(layout.page_of(1), layout.page_of(2));
}

TEST(PageLayoutTest, SequentialLayout) {
  const PageLayout layout = PageLayout::Sequential(10, 4);
  EXPECT_EQ(layout.num_pages(), 3u);
  EXPECT_EQ(layout.page_of(0), 0u);
  EXPECT_EQ(layout.page_of(3), 0u);
  EXPECT_EQ(layout.page_of(4), 1u);
  EXPECT_EQ(layout.page_of(9), 2u);
}

TEST(PageLayoutTest, DistinctPages) {
  const PageLayout layout = PageLayout::Sequential(100, 10);
  EXPECT_EQ(layout.DistinctPages({0, 1, 2}), 1u);
  EXPECT_EQ(layout.DistinctPages({0, 10, 20}), 3u);
  EXPECT_EQ(layout.DistinctPages({}), 0u);
  EXPECT_EQ(layout.DistinctPages({5, 5, 5, 15}), 2u);
}

TEST(PageLayoutTest, LruFetchesBasics) {
  const PageLayout layout = PageLayout::Sequential(100, 10);
  // Repeated access to one page: one fetch.
  EXPECT_EQ(layout.LruFetches({0, 1, 2, 3}, 1), 1u);
  // Alternating between two pages with a single frame: thrashing.
  EXPECT_EQ(layout.LruFetches({0, 10, 0, 10, 0, 10}, 1), 6u);
  // Two frames hold both pages.
  EXPECT_EQ(layout.LruFetches({0, 10, 0, 10, 0, 10}, 2), 2u);
}

TEST(PageLayoutTest, LruNeverBeatsDistinctPages) {
  Rng rng(3);
  const PageLayout layout = PageLayout::Sequential(1000, 16);
  std::vector<TupleId> trace;
  for (int i = 0; i < 500; ++i) {
    trace.push_back(static_cast<TupleId>(rng.Index(1000)));
  }
  const std::size_t distinct = layout.DistinctPages(trace);
  for (std::size_t frames : {1u, 4u, 64u, 1024u}) {
    EXPECT_GE(layout.LruFetches(trace, frames), distinct);
  }
  // With frames >= pages LRU matches the cold-miss count exactly.
  EXPECT_EQ(layout.LruFetches(trace, layout.num_pages()), distinct);
}

TEST(LayerGroupsTest, GroupsPartitionRelationInLayerOrder) {
  const PointSet pts = GenerateAnticorrelated(500, 3, 8);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  const auto groups = index.LayerGroups();
  std::vector<bool> seen(pts.size(), false);
  std::size_t total = 0;
  for (const auto& group : groups) {
    EXPECT_FALSE(group.empty());
    for (TupleId id : group) {
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, pts.size());
  EXPECT_EQ(groups.size(), index.build_stats().num_fine_layers);
  // Every group is one (coarse, fine) bucket.
  for (const auto& group : groups) {
    for (TupleId id : group) {
      EXPECT_EQ(index.coarse_layer_of(id),
                index.coarse_layer_of(group[0]));
      EXPECT_EQ(index.fine_layer_of(id), index.fine_layer_of(group[0]));
    }
  }
}

TEST(IoModelTest, LayerClusteredLayoutBeatsRandomPlacement) {
  // The paper's disk argument: storing layer-mates together makes the
  // touched-page count track the (small) access cost. Compare a
  // layer-clustered layout against an adversarial scattered layout on
  // the same DL query trace.
  const PointSet pts = GenerateAnticorrelated(4000, 3, 9);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  const PageLayout clustered(index.LayerGroups(), 64);

  // Scattered layout: tuples shuffled across pages.
  std::vector<TupleId> shuffled(pts.size());
  std::iota(shuffled.begin(), shuffled.end(), 0);
  Rng rng(10);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Index(i)]);
  }
  const PageLayout scattered({shuffled}, 64);

  std::size_t clustered_pages = 0, scattered_pages = 0;
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 20, 11)) {
    const TopKResult result = index.Query(query);
    clustered_pages += clustered.DistinctPages(result.accessed);
    scattered_pages += scattered.DistinctPages(result.accessed);
  }
  EXPECT_LT(clustered_pages, scattered_pages);
}

TEST(IoModelTest, DlTouchesFewerPagesThanDg) {
  const PointSet pts = GenerateAnticorrelated(3000, 4, 12);
  const DualLayerIndex dl = DualLayerIndex::Build(pts);
  const DominantGraphIndex dg = DominantGraphIndex::Build(pts);
  const PageLayout dl_layout(dl.LayerGroups(), 64);
  const PageLayout dg_layout(dg.layers(), 64);
  std::size_t dl_pages = 0, dg_pages = 0;
  for (const TopKQuery& query : testing_util::RandomQueries(4, 10, 15, 13)) {
    dl_pages += dl_layout.DistinctPages(dl.Query(query).accessed);
    dg_pages += dg_layout.DistinctPages(dg.Query(query).accessed);
  }
  EXPECT_LE(dl_pages, dg_pages);
}

TEST(AccessTraceTest, TraceMatchesCostCounter) {
  const PointSet pts = GenerateIndependent(800, 3, 14);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 10, 15)) {
    const TopKResult result = index.Query(query);
    EXPECT_EQ(result.accessed.size(), result.stats.tuples_evaluated);
  }
}

}  // namespace
}  // namespace drli
