// Deep structural invariants of the built dual-resolution index,
// checked against the paper's definitions on randomized instances:
// fine sublayers are convex-layer decompositions of their coarse layer,
// ∃-edges come with the Lemma-2 guarantee, and the zero layer never
// leaks into answers.

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>

#include "gtest/gtest.h"

#include "core/dual_layer.h"
#include "core/eds.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

struct InvCase {
  Distribution dist;
  std::size_t d;
  std::uint64_t seed;
};

class DualLayerInvariantsTest : public ::testing::TestWithParam<InvCase> {
 protected:
  void SetUp() override {
    points_ = Generate(GetParam().dist, 400, GetParam().d, GetParam().seed);
    index_ = std::make_unique<DualLayerIndex>(DualLayerIndex::Build(points_));
  }

  PointSet points_{1};
  std::unique_ptr<DualLayerIndex> index_;
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, DualLayerInvariantsTest,
    ::testing::Values(InvCase{Distribution::kIndependent, 2, 1},
                      InvCase{Distribution::kIndependent, 3, 2},
                      InvCase{Distribution::kIndependent, 4, 3},
                      InvCase{Distribution::kAnticorrelated, 2, 4},
                      InvCase{Distribution::kAnticorrelated, 3, 5},
                      InvCase{Distribution::kAnticorrelated, 4, 6},
                      InvCase{Distribution::kCorrelated, 3, 7}),
    [](const auto& info) {
      return std::string(DistributionName(info.param.dist)) + "_d" +
             std::to_string(info.param.d);
    });

TEST_P(DualLayerInvariantsTest, FirstSublayerContainsEveryMinimizer) {
  // Invariant 3 of DESIGN.md: for every strictly positive weight
  // vector the argmin over a coarse layer lies in its first sublayer
  // (score ties admitted).
  Rng rng(GetParam().seed + 100);
  const std::size_t n = points_.size();
  for (int trial = 0; trial < 40; ++trial) {
    const Point w = rng.SimplexWeight(points_.dim());
    // Coarse layer 1 only (the critical one: it feeds the top-1).
    double best = std::numeric_limits<double>::infinity();
    double best_in_l11 = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const auto node = static_cast<DualLayerIndex::NodeId>(i);
      if (index_->coarse_layer_of(node) != 0) continue;
      const double s = Score(w, points_[i]);
      best = std::min(best, s);
      if (index_->fine_layer_of(node) == 0) {
        best_in_l11 = std::min(best_in_l11, s);
      }
    }
    EXPECT_NEAR(best_in_l11, best, 1e-12);
  }
}

TEST_P(DualLayerInvariantsTest, FineEdgesCarryLemma2Guarantee) {
  // For every ∃-edge target, at least one of its in-neighbours scores
  // no worse under every sampled weight vector.
  const std::size_t total = index_->num_nodes();
  std::vector<std::vector<DualLayerIndex::NodeId>> fine_in(total);
  for (std::size_t u = 0; u < total; ++u) {
    for (const auto succ : index_->fine_out()[u]) {
      fine_in[succ].push_back(static_cast<DualLayerIndex::NodeId>(u));
    }
  }
  Rng rng(GetParam().seed + 200);
  std::vector<Point> weights;
  for (int i = 0; i < 15; ++i) {
    weights.push_back(rng.SimplexWeight(points_.dim()));
  }
  for (std::size_t t = 0; t < total; ++t) {
    if (fine_in[t].empty()) continue;
    for (const Point& w : weights) {
      const double target_score = Score(w, index_->node_point(
                                               static_cast<DualLayerIndex::NodeId>(t)));
      double best = std::numeric_limits<double>::infinity();
      for (const auto u : fine_in[t]) {
        best = std::min(best, Score(w, index_->node_point(u)));
      }
      ASSERT_LE(best, target_score + 1e-9)
          << "node " << t << " violates Lemma 2";
    }
  }
}

TEST_P(DualLayerInvariantsTest, FineInEdgesIncludeAQualifyingFacet) {
  // Each covered tuple's in-neighbour set must itself be an EDS (the
  // union of one facet is enough for the traversal guarantee).
  const std::size_t n = points_.size();
  std::vector<std::vector<TupleId>> fine_in(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const auto succ : index_->fine_out()[u]) {
      if (succ < n) fine_in[succ].push_back(static_cast<TupleId>(u));
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    if (fine_in[t].empty()) continue;
    EXPECT_TRUE(FacetIsEds(points_, fine_in[t], points_[t]))
        << "tuple " << t;
  }
}

TEST_P(DualLayerInvariantsTest, SublayerCountsAreConsistent) {
  const std::size_t n = points_.size();
  // Within each coarse layer, fine ids are contiguous from 0.
  std::map<std::uint32_t, std::set<std::uint32_t>> fine_ids;
  for (std::size_t i = 0; i < n; ++i) {
    const auto node = static_cast<DualLayerIndex::NodeId>(i);
    fine_ids[index_->coarse_layer_of(node)].insert(
        index_->fine_layer_of(node));
  }
  std::size_t total_fine = 0;
  for (const auto& [coarse, fines] : fine_ids) {
    EXPECT_EQ(*fines.begin(), 0u);
    EXPECT_EQ(*fines.rbegin(), fines.size() - 1);
    total_fine += fines.size();
  }
  EXPECT_EQ(total_fine, index_->build_stats().num_fine_layers);
  EXPECT_EQ(fine_ids.size(), index_->build_stats().num_coarse_layers);
}

TEST(DualLayerZeroLayerInvariantsTest, VirtualNodesNeverInAnswers) {
  const PointSet pts = GenerateAnticorrelated(500, 4, 9);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  ASSERT_GT(index.build_stats().num_virtual, 0u);
  for (const TopKQuery& query : testing_util::RandomQueries(4, 30, 10, 10)) {
    const TopKResult result = index.Query(query);
    for (const ScoredTuple& item : result.items) {
      EXPECT_LT(item.id, pts.size()) << "pseudo-tuple leaked into answers";
    }
    for (TupleId id : result.accessed) {
      EXPECT_LT(id, pts.size());
    }
  }
}

TEST(DualLayerZeroLayerInvariantsTest, PseudoTuplesWeaklyDominateClusters) {
  const PointSet pts = GenerateIndependent(600, 4, 11);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  const std::size_t n = pts.size();
  // Every first-layer tuple has >= 1 virtual dominator, and each
  // virtual node's successors are weakly dominated.
  for (std::size_t v = n; v < index.num_nodes(); ++v) {
    const auto node = static_cast<DualLayerIndex::NodeId>(v);
    EXPECT_FALSE(index.coarse_out()[v].empty())
        << "useless pseudo-tuple " << v;
    for (const auto succ : index.coarse_out()[v]) {
      EXPECT_TRUE(
          WeaklyDominates(index.node_point(node), index.node_point(succ)));
    }
  }
}

TEST(DualLayerDeterminismTest, RebuildIsByteIdentical) {
  // Construction is deterministic: two builds over the same input give
  // identical structures (layers, edges, stats).
  const PointSet pts = GenerateAnticorrelated(400, 3, 12);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex a = DualLayerIndex::Build(pts, options);
  const DualLayerIndex b = DualLayerIndex::Build(pts, options);
  EXPECT_EQ(a.coarse_out(), b.coarse_out());
  EXPECT_EQ(a.fine_out(), b.fine_out());
  EXPECT_EQ(a.coarse_in_degree(), b.coarse_in_degree());
  EXPECT_EQ(a.initial_nodes(), b.initial_nodes());
  EXPECT_EQ(a.build_stats().num_fine_edges, b.build_stats().num_fine_edges);
  EXPECT_TRUE(
      std::ranges::equal(a.virtual_points().raw(), b.virtual_points().raw()));
}

}  // namespace
}  // namespace drli
