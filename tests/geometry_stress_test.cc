// Randomized stress batteries for the geometry substrate: many seeds,
// dims and distributions, with oracle cross-checks on every draw.

#include <algorithm>
#include <numeric>
#include <set>

#include "gtest/gtest.h"

#include "common/random.h"
#include "data/generator.h"
#include "geometry/convex_hull.h"
#include "geometry/convex_hull_2d.h"
#include "geometry/convex_skyline.h"
#include "core/eds.h"
#include "geometry/simplex_lp.h"
#include "test_util.h"

namespace drli {
namespace {

struct StressCase {
  Distribution dist;
  std::size_t n;
  std::size_t d;
  std::uint64_t seed;
};

class HullStressTest : public ::testing::TestWithParam<StressCase> {};

std::vector<StressCase> MakeHullCases() {
  std::vector<StressCase> cases;
  std::uint64_t seed = 1000;
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated,
        Distribution::kCorrelated}) {
    for (std::size_t d = 2; d <= 5; ++d) {
      for (std::size_t n : {20u, 120u, 600u}) {
        cases.push_back(StressCase{dist, n, d, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HullStressTest,
                         ::testing::ValuesIn(MakeHullCases()),
                         [](const auto& info) {
                           return std::string(
                                      DistributionName(info.param.dist)) +
                                  "_d" + std::to_string(info.param.d) +
                                  "_n" + std::to_string(info.param.n);
                         });

TEST_P(HullStressTest, NoPointAboveAnyFacet) {
  const StressCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed);
  ConvexHull hull;
  if (ComputeConvexHull(pts, {}, &hull) != HullStatus::kOk) {
    GTEST_SKIP() << "degenerate draw";
  }
  for (const HullFacet& f : hull.facets) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      ASSERT_LT(f.plane.SignedDistance(pts[i]), 1e-6)
          << "point " << i << " above a facet";
    }
  }
  // Facet vertices are reported hull vertices.
  const std::set<std::int32_t> vertex_set(hull.vertices.begin(),
                                          hull.vertices.end());
  for (const HullFacet& f : hull.facets) {
    for (std::int32_t v : f.vertices) {
      EXPECT_TRUE(vertex_set.count(v));
    }
  }
}

TEST_P(HullStressTest, SentinelKeepsEveryPositiveMinimizer) {
  const StressCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed + 7);
  const ConvexSkylineResult csky = ComputeConvexSkyline(pts);
  const std::set<TupleId> members(csky.members.begin(), csky.members.end());
  Rng rng(c.seed);
  for (int trial = 0; trial < 30; ++trial) {
    const Point w = rng.SimplexWeight(c.d);
    TupleId best = 0;
    double best_score = Score(w, pts[0]);
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const double s = Score(w, pts[i]);
      if (s < best_score) {
        best_score = s;
        best = static_cast<TupleId>(i);
      }
    }
    // A score-equal member may stand in for the argmin on exact ties.
    bool covered = members.count(best) > 0;
    if (!covered) {
      for (TupleId m : csky.members) {
        if (Score(w, pts[m]) <= best_score + 1e-12) {
          covered = true;
          break;
        }
      }
    }
    EXPECT_TRUE(covered) << "trial " << trial;
  }
}

TEST(Hull2DStressTest, MatchesDDimHullAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const PointSet pts = Generate(
        seed % 2 == 0 ? Distribution::kIndependent
                      : Distribution::kAnticorrelated,
        200 + 50 * seed, 2, 3000 + seed);
    ConvexHull hull;
    ASSERT_EQ(ComputeConvexHull(pts, {}, &hull), HullStatus::kOk);
    std::vector<std::int32_t> chain_hull = ConvexHull2D(pts);
    std::sort(chain_hull.begin(), chain_hull.end());
    std::vector<std::int32_t> dd = hull.vertices;
    std::sort(dd.begin(), dd.end());
    EXPECT_EQ(dd, chain_hull) << "seed " << seed;
  }
}

TEST(SimplexLpStressTest, RandomBoundedLpsHaveConsistentDuals) {
  // min c.x with x in [0,1]^d (box via constraints): the optimum is
  // attainable by the greedy corner; the LP must match it.
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t d = 1 + rng.Index(5);
    LinearProgram lp(d);
    std::vector<double> row(d, 0.0);
    for (std::size_t j = 0; j < d; ++j) {
      std::fill(row.begin(), row.end(), 0.0);
      row[j] = 1.0;
      lp.AddConstraint(row, LpRelation::kLessEq, 1.0);
    }
    std::vector<double> c(d);
    for (double& v : c) v = rng.Uniform(-1.0, 1.0);
    lp.SetMinimize(c);
    const LpResult result = lp.Solve();
    ASSERT_EQ(result.status, LpStatus::kOptimal);
    double greedy = 0.0;
    for (double v : c) greedy += std::min(v, 0.0);  // x_j = 1 iff c_j < 0
    EXPECT_NEAR(result.objective, greedy, 1e-9) << "trial " << trial;
  }
}

TEST(SimplexLpStressTest, KnapsackDualityWithEds) {
  // FacetIsEds(facet, t') must agree with the direct LP formulation
  // solved through a fresh program on random draws.
  Rng rng(10);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t d = 2 + rng.Index(3);
    const PointSet pts = GenerateAnticorrelated(30, d, 5000 + trial);
    std::vector<TupleId> facet;
    while (facet.size() < d) {
      const auto id = static_cast<TupleId>(rng.Index(pts.size()));
      if (std::find(facet.begin(), facet.end(), id) == facet.end()) {
        facet.push_back(id);
      }
    }
    const auto target = static_cast<TupleId>(rng.Index(pts.size()));
    // Direct formulation.
    LinearProgram lp(d);
    std::vector<double> row(d, 1.0);
    lp.AddConstraint(row, LpRelation::kEqual, 1.0);
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t m = 0; m < d; ++m) row[m] = pts[facet[m]][j];
      lp.AddConstraint(row, LpRelation::kLessEq, pts.At(target, j));
    }
    EXPECT_EQ(lp.IsFeasible(),
              FacetIsEds(pts, facet, pts[target]))
        << "trial " << trial;
  }
}

TEST(ConvexSkylineStressTest, PeelingTerminatesAndPartitions) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const std::size_t d = 2 + seed % 4;
    const PointSet pts = GenerateAnticorrelated(300, d, 7000 + seed);
    std::vector<bool> assigned(pts.size(), false);
    std::vector<TupleId> remaining(pts.size());
    std::iota(remaining.begin(), remaining.end(), 0);
    std::size_t guard = 0;
    while (!remaining.empty()) {
      ASSERT_LT(guard++, pts.size() + 1) << "peel did not terminate";
      const PointSet subset = pts.Subset(remaining);
      const ConvexSkylineResult csky = ComputeConvexSkyline(subset);
      ASSERT_FALSE(csky.members.empty());
      std::vector<bool> is_member(remaining.size(), false);
      for (TupleId local : csky.members) {
        ASSERT_LT(local, remaining.size());
        ASSERT_FALSE(is_member[local]);
        is_member[local] = true;
        ASSERT_FALSE(assigned[remaining[local]]);
        assigned[remaining[local]] = true;
      }
      std::vector<TupleId> next;
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (!is_member[i]) next.push_back(remaining[i]);
      }
      remaining = std::move(next);
    }
    EXPECT_TRUE(std::all_of(assigned.begin(), assigned.end(),
                            [](bool b) { return b; }));
  }
}

}  // namespace
}  // namespace drli
