// Property-based tests: invariants that must hold for every index on
// randomized inputs, beyond pointwise agreement with the scan oracle.

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

#include "common/kernels_batch.h"
#include "common/simd.h"
#include "common/soa_points.h"
#include "core/dual_layer.h"
#include "core/index_registry.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

struct PropertyCase {
  std::string kind;
  Distribution dist;
  std::size_t d;
};

class IndexPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    points_ = Generate(GetParam().dist, 500, GetParam().d, 90);
    IndexBuildConfig config;
    config.kind = GetParam().kind;
    auto built = BuildIndex(config, points_);
    ASSERT_TRUE(built.ok());
    index_ = std::move(built).value();
  }

  PointSet points_{1};
  std::unique_ptr<TopKIndex> index_;
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexPropertyTest,
    ::testing::Values(
        PropertyCase{"dl", Distribution::kIndependent, 3},
        PropertyCase{"dl", Distribution::kAnticorrelated, 4},
        PropertyCase{"dl+", Distribution::kIndependent, 2},
        PropertyCase{"dl+", Distribution::kAnticorrelated, 4},
        PropertyCase{"dg", Distribution::kAnticorrelated, 3},
        PropertyCase{"dg+", Distribution::kIndependent, 4},
        PropertyCase{"hl+", Distribution::kAnticorrelated, 3},
        PropertyCase{"onion", Distribution::kIndependent, 3},
        PropertyCase{"ta", Distribution::kAnticorrelated, 3},
        PropertyCase{"nra", Distribution::kIndependent, 3}),
    [](const auto& info) {
      std::string name = info.param.kind + "_" +
                         DistributionName(info.param.dist) + "_d" +
                         std::to_string(info.param.d);
      for (char& c : name) {
        if (c == '+') c = 'p';
      }
      return name;
    });

TEST_P(IndexPropertyTest, ResultsSortedAscending) {
  for (const TopKQuery& query :
       testing_util::RandomQueries(points_.dim(), 20, 10, 1)) {
    const TopKResult result = index_->Query(query);
    for (std::size_t i = 1; i < result.items.size(); ++i) {
      EXPECT_LE(result.items[i - 1].score, result.items[i].score);
    }
  }
}

TEST_P(IndexPropertyTest, ScoresMatchWeights) {
  // Reported scores must equal the scoring function applied to the
  // reported tuple.
  for (const TopKQuery& query :
       testing_util::RandomQueries(points_.dim(), 10, 10, 2)) {
    const TopKResult result = index_->Query(query);
    for (const ScoredTuple& item : result.items) {
      EXPECT_NEAR(item.score, Score(query.weights, points_[item.id]),
                  1e-12);
    }
  }
}

TEST_P(IndexPropertyTest, LargerKExtendsPrefix) {
  for (const TopKQuery& base :
       testing_util::RandomQueries(points_.dim(), 10, 6, 3)) {
    TopKQuery larger = base;
    larger.k = base.k + 15;
    const TopKResult small = index_->Query(base);
    const TopKResult big = index_->Query(larger);
    ASSERT_GE(big.items.size(), small.items.size());
    for (std::size_t i = 0; i < small.items.size(); ++i) {
      EXPECT_NEAR(small.items[i].score, big.items[i].score, 1e-12)
          << "rank " << i;
    }
  }
}

TEST_P(IndexPropertyTest, CostMonotoneInK) {
  for (const TopKQuery& base :
       testing_util::RandomQueries(points_.dim(), 5, 6, 4)) {
    TopKQuery larger = base;
    larger.k = 40;
    EXPECT_LE(index_->Query(base).stats.tuples_evaluated,
              index_->Query(larger).stats.tuples_evaluated);
  }
}

TEST_P(IndexPropertyTest, QueriesAreDeterministic) {
  for (const TopKQuery& query :
       testing_util::RandomQueries(points_.dim(), 10, 5, 5)) {
    const TopKResult a = index_->Query(query);
    const TopKResult b = index_->Query(query);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (std::size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i].id, b.items[i].id);
      EXPECT_EQ(a.items[i].score, b.items[i].score);
    }
    EXPECT_EQ(a.stats.tuples_evaluated, b.stats.tuples_evaluated);
  }
}

TEST_P(IndexPropertyTest, NoDuplicateIdsInResult) {
  for (const TopKQuery& query :
       testing_util::RandomQueries(points_.dim(), 30, 6, 6)) {
    const TopKResult result = index_->Query(query);
    std::vector<TupleId> ids;
    for (const ScoredTuple& item : result.items) ids.push_back(item.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  }
}

// Structural transformations preserve answers.
// Pairs engineered to hit every comparison branch: random general
// position, exact equality, single-attribute perturbations, and
// partial ties from grid snapping.
std::vector<std::pair<Point, Point>> KernelPairs(std::size_t d,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Point, Point>> pairs;
  auto random_point = [&] {
    Point p;
    for (std::size_t a = 0; a < d; ++a) p.push_back(rng.Uniform());
    return p;
  };
  for (int i = 0; i < 200; ++i) {
    pairs.emplace_back(random_point(), random_point());
  }
  for (int i = 0; i < 100; ++i) {
    const Point p = random_point();
    pairs.emplace_back(p, p);  // exact equality
    Point q = p;
    q[rng.Index(d)] += rng.Uniform(-0.5, 0.5);  // differ in one attribute
    pairs.emplace_back(p, q);
    Point snapped_a = p, snapped_b = random_point();
    for (std::size_t a = 0; a < d; ++a) {
      snapped_a[a] = std::round(snapped_a[a] * 4.0) / 4.0;
      snapped_b[a] = std::round(snapped_b[a] * 4.0) / 4.0;
    }
    pairs.emplace_back(snapped_a, snapped_b);  // partial ties
  }
  return pairs;
}

// The d = 2/3/4 unrolled kernels advertise bit-identical results to
// the generic loop; cross-check all four kernels on both paths.
TEST(KernelCrossCheckTest, UnrolledMatchesGenericBitwise) {
  for (const std::size_t d : {2u, 3u, 4u}) {
    Rng rng(1000 + d);
    for (const auto& [a, b] : KernelPairs(d, 500 + d)) {
      const PointView va(a), vb(b);
      EXPECT_EQ(Dominates(va, vb), point_internal::DominatesGeneric(va, vb));
      EXPECT_EQ(WeaklyDominates(va, vb),
                point_internal::WeaklyDominatesGeneric(va, vb));
      EXPECT_EQ(Compare(va, vb), point_internal::CompareGeneric(va, vb));
      const Point w = rng.SimplexWeight(d);
      // Bitwise equality, not EXPECT_NEAR: the unrolled Score must
      // round identically to the generic left-to-right sum.
      EXPECT_EQ(Score(w, va), point_internal::ScoreGeneric(w, va));
      EXPECT_EQ(Score(w, vb), point_internal::ScoreGeneric(w, vb));
    }
  }
}

// d = 5 exercises only the generic path, so pin its semantics through
// the predicate algebra instead of a second implementation.
TEST(KernelCrossCheckTest, GenericD5SelfConsistent) {
  const std::size_t d = 5;
  Rng rng(77);
  for (const auto& [a, b] : KernelPairs(d, 42)) {
    const PointView va(a), vb(b);
    const bool dom = Dominates(va, vb);
    const bool weak = Dominates(va, vb) || a == b;
    EXPECT_EQ(WeaklyDominates(va, vb), weak);
    if (dom) {
      EXPECT_FALSE(Dominates(vb, va));  // antisymmetry
      const Point w = rng.SimplexWeight(d);
      EXPECT_LE(Score(w, va), Score(w, vb));  // monotone consequence
    }
    switch (Compare(va, vb)) {
      case DomRel::kEqual:
        EXPECT_EQ(a, b);
        break;
      case DomRel::kDominates:
        EXPECT_TRUE(dom);
        break;
      case DomRel::kDominatedBy:
        EXPECT_TRUE(Dominates(vb, va));
        break;
      case DomRel::kIncomparable:
        EXPECT_FALSE(dom);
        EXPECT_FALSE(Dominates(vb, va));
        EXPECT_NE(a, b);
        break;
    }
  }
}

// Point material for the batched-kernel cross-checks: random rows plus
// NaN-free degenerate rows (all-zero, all-one, exact duplicates, grid
// ties, constant attributes) that stress the exact predicates.
PointSet BatchKernelPoints(std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  PointSet pts(d);
  pts.Add(Point(d, 0.0));
  pts.Add(Point(d, 1.0));
  pts.Add(Point(d, 0.5));
  for (int i = 0; i < 40; ++i) {
    Point p;
    for (std::size_t a = 0; a < d; ++a) p.push_back(rng.Uniform());
    pts.Add(p);
    Point snapped = p;
    for (std::size_t a = 0; a < d; ++a) {
      snapped[a] = std::round(snapped[a] * 4.0) / 4.0;  // partial ties
    }
    pts.Add(snapped);
    pts.Add(p);  // exact duplicate
  }
  for (int i = 0; i < 10; ++i) {
    Point p(d, rng.Uniform());  // constant across attributes
    pts.Add(p);
  }
  return pts;
}

// The batched kernels advertise bit-identical scores and identical
// predicate outcomes versus the scalar references, on the active
// dispatch target and on the forced-scalar path, for every batch size
// 1..17 (covering sub-width batches and unaligned vector tails).
TEST(KernelCrossCheckTest, BatchedMatchesScalarBitwise) {
  namespace ki = kernel_internal;
  for (const bool force_scalar : {false, true}) {
    ForceScalarKernels(force_scalar);
    if (force_scalar) {
      ASSERT_EQ(ActiveSimdTarget(), SimdTarget::kScalar);
    }
    for (const std::size_t d : {2u, 3u, 4u, 5u}) {
      const PointSet pts = BatchKernelPoints(d, 900 + d);
      const SoaPointSet soa = SoaPointSet::FromPointSet(pts);
      ASSERT_EQ(soa.size(), pts.size());
      ASSERT_EQ(soa.dim(), d);
      Rng rng(7000 + d);
      const ScoreBatchFn resolved = ResolveScoreBatch();
      for (std::size_t count = 1; count <= 17; ++count) {
        std::vector<std::uint32_t> ids(count);
        for (std::uint32_t& id : ids) {
          id = static_cast<std::uint32_t>(rng.Index(pts.size()));
        }
        const Point w = rng.SimplexWeight(d);
        std::vector<double> batched(count), reference(count);
        ScoreBatch(w, soa, ids.data(), count, batched.data());
        ki::ScoreBatchScalar(w, soa, ids.data(), count, reference.data());
        std::vector<double> via_resolved(count);
        resolved(w, soa, ids.data(), count, via_resolved.data());
        const std::uint32_t first =
            static_cast<std::uint32_t>(rng.Index(pts.size() - count + 1));
        std::vector<double> ranged(count), range_ref(count);
        ScoreRange(w, soa, first, count, ranged.data());
        ki::ScoreRangeScalar(w, soa, first, count, range_ref.data());
        for (std::size_t i = 0; i < count; ++i) {
          // Bitwise equality, not EXPECT_NEAR: same FP ops, same order.
          EXPECT_EQ(batched[i], reference[i]);
          EXPECT_EQ(via_resolved[i], batched[i]);
          EXPECT_EQ(reference[i], Score(w, pts[ids[i]]));
          EXPECT_EQ(ranged[i], range_ref[i]);
          EXPECT_EQ(range_ref[i], Score(w, pts[first + i]));
        }
        const PointView q = pts[rng.Index(pts.size())];
        EXPECT_EQ(DominatesAnyBatch(soa, ids.data(), count, q),
                  ki::DominatesAnyBatchScalar(soa, ids.data(), count, q));
        bool any_scalar = false;
        for (std::size_t i = 0; i < count && !any_scalar; ++i) {
          any_scalar = Dominates(pts[ids[i]], q);
        }
        EXPECT_EQ(DominatesAnyBatch(soa, ids.data(), count, q), any_scalar);
        std::vector<DomRel> rels(count), rels_ref(count);
        CompareBatch(soa, ids.data(), count, q, rels.data());
        ki::CompareBatchScalar(soa, ids.data(), count, q, rels_ref.data());
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(rels[i], rels_ref[i]);
          EXPECT_EQ(rels[i], Compare(pts[ids[i]], q));
        }
      }
    }
  }
  ForceScalarKernels(false);
}

// SoaPointSet factories reproduce their sources bitwise, and the
// padding tail every vector load may touch is zero-filled.
TEST(KernelCrossCheckTest, SoaViewsMatchSources) {
  const std::size_t d = 3;
  const PointSet pts = BatchKernelPoints(d, 31);
  const SoaPointSet full = SoaPointSet::FromPointSet(pts);
  ASSERT_EQ(full.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      EXPECT_EQ(full.at(i, a), pts.At(i, a));
    }
  }
  Rng rng(32);
  std::vector<std::uint32_t> subset;
  for (int i = 0; i < 13; ++i) {  // 13: forces an unaligned tail
    subset.push_back(static_cast<std::uint32_t>(rng.Index(pts.size())));
  }
  const SoaPointSet sub = SoaPointSet::FromSubset(pts, subset);
  ASSERT_EQ(sub.size(), subset.size());
  EXPECT_EQ(sub.stride() % SoaPointSet::kColumnPad, 0u);
  EXPECT_GE(sub.stride(), sub.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      EXPECT_EQ(sub.at(i, a), pts.At(subset[i], a));
    }
  }
  for (std::size_t a = 0; a < d; ++a) {
    const double* col = sub.column(a);
    for (std::size_t i = sub.size(); i < sub.stride(); ++i) {
      EXPECT_EQ(col[i], 0.0);
    }
  }
}

TEST(TransformationPropertyTest, AttributePermutationSymmetry) {
  const PointSet pts = GenerateAnticorrelated(400, 3, 91);
  // Rotate attributes: (a0, a1, a2) -> (a2, a0, a1).
  PointSet rotated(3);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    rotated.Add({pts.At(i, 2), pts.At(i, 0), pts.At(i, 1)});
  }
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  const DualLayerIndex index_rot = DualLayerIndex::Build(rotated);
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    TopKQuery query;
    query.weights = rng.SimplexWeight(3);
    query.k = 10;
    TopKQuery query_rot;
    query_rot.weights = {query.weights[2], query.weights[0],
                         query.weights[1]};
    query_rot.k = 10;
    const TopKResult a = index.Query(query);
    const TopKResult b = index_rot.Query(query_rot);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (std::size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_NEAR(a.items[i].score, b.items[i].score, 1e-12);
    }
  }
}

TEST(TransformationPropertyTest, UniformScalingInvariance) {
  // Scaling every attribute by c > 0 scales all scores by c and must
  // not change the answer ids (modulo exact ties).
  const PointSet pts = GenerateIndependent(300, 3, 92);
  PointSet scaled(3);
  const double c = 0.125;  // power of two: exact float scaling
  for (std::size_t i = 0; i < pts.size(); ++i) {
    scaled.Add({pts.At(i, 0) * c, pts.At(i, 1) * c, pts.At(i, 2) * c});
  }
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  const DualLayerIndex index_scaled = DualLayerIndex::Build(scaled);
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 10, 8)) {
    const TopKResult a = index.Query(query);
    const TopKResult b = index_scaled.Query(query);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (std::size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_NEAR(a.items[i].score * c, b.items[i].score, 1e-12);
    }
  }
}

TEST(DualLayerPopOrderTest, AccessTraceRespectsDominance) {
  // If t ∀-dominates t', t must appear in the access trace before t'
  // whenever both were accessed (t' cannot unlock before t pops).
  const PointSet pts = GenerateIndependent(300, 3, 93);
  const DualLayerIndex index = DualLayerIndex::Build(pts);
  for (const TopKQuery& query : testing_util::RandomQueries(3, 40, 5, 9)) {
    const TopKResult result = index.Query(query);
    std::vector<std::size_t> order(pts.size(), SIZE_MAX);
    for (std::size_t i = 0; i < result.accessed.size(); ++i) {
      order[result.accessed[i]] = i;
    }
    for (std::size_t u = 0; u < pts.size(); ++u) {
      for (const auto succ : index.coarse_out()[u]) {
        if (order[u] != SIZE_MAX && order[succ] != SIZE_MAX) {
          EXPECT_LT(order[u], order[succ])
              << "dominated tuple " << succ << " accessed before " << u;
        }
      }
    }
  }
}

}  // namespace
}  // namespace drli
