// Cross-index integration tests: every index must agree with the
// full-scan oracle on the same data and queries, and the paper's
// analytical claims (Theorem 5, Table II ordering) must hold
// empirically.

#include <map>
#include <memory>

#include "gtest/gtest.h"

#include "baselines/dominant_graph.h"
#include "core/dual_layer.h"
#include "core/index_registry.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

struct IntegrationCase {
  Distribution dist;
  std::size_t n;
  std::size_t d;
  std::uint64_t seed;
};

class AllIndexesTest : public ::testing::TestWithParam<IntegrationCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllIndexesTest,
    ::testing::Values(
        IntegrationCase{Distribution::kIndependent, 600, 2, 1},
        IntegrationCase{Distribution::kIndependent, 600, 3, 2},
        IntegrationCase{Distribution::kIndependent, 600, 4, 3},
        IntegrationCase{Distribution::kAnticorrelated, 500, 2, 4},
        IntegrationCase{Distribution::kAnticorrelated, 500, 3, 5},
        IntegrationCase{Distribution::kAnticorrelated, 400, 4, 6},
        IntegrationCase{Distribution::kCorrelated, 600, 3, 7}),
    [](const auto& info) {
      return std::string(DistributionName(info.param.dist)) + "_d" +
             std::to_string(info.param.d);
    });

TEST_P(AllIndexesTest, EveryKindMatchesScan) {
  const IntegrationCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed);
  for (const std::string& kind : KnownIndexKinds()) {
    IndexBuildConfig config;
    config.kind = kind;
    auto index = BuildIndex(config, pts);
    ASSERT_TRUE(index.ok()) << kind;
    for (std::size_t k : {1u, 10u, 40u}) {
      testing_util::ExpectMatchesScan(*index.value(), pts, k, 8,
                                      c.seed * 100 + k);
    }
  }
}

TEST_P(AllIndexesTest, Theorem5DlNeverCostsMoreThanDg) {
  const IntegrationCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed);
  DominantGraphIndex dg = DominantGraphIndex::Build(pts);
  DualLayerIndex dl = DualLayerIndex::Build(pts);
  for (std::size_t k : {1u, 10u, 25u}) {
    for (const TopKQuery& query :
         testing_util::RandomQueries(c.d, k, 12, c.seed + k)) {
      const std::size_t cost_dg = dg.Query(query).stats.tuples_evaluated;
      const std::size_t cost_dl = dl.Query(query).stats.tuples_evaluated;
      EXPECT_LE(cost_dl, cost_dg)
          << DistributionName(c.dist) << " d=" << c.d << " k=" << k;
    }
  }
}

TEST_P(AllIndexesTest, AverageCostOrderingMatchesPaperClaims) {
  // The paper's headline ordering, averaged over queries: DL prunes at
  // least as well as DG (Theorem 5, holds per query), DL+ at least as
  // well as DL (Figs. 8-9), and DL+ beats HL+ (Figs. 12, 15). Note
  // Onion is NOT comparable to DG across distributions: on strongly
  // anti-correlated data DG's complete access to the (huge) first
  // skyline layer costs more than Onion's small first convex layer.
  const IntegrationCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.seed);
  std::map<std::string, std::size_t> cost;
  for (const std::string& kind :
       {std::string("hl+"), std::string("dg"), std::string("dl"),
        std::string("dl+")}) {
    IndexBuildConfig config;
    config.kind = kind;
    auto index = BuildIndex(config, pts);
    ASSERT_TRUE(index.ok());
    std::size_t total = 0;
    for (const TopKQuery& query :
         testing_util::RandomQueries(c.d, 10, 20, c.seed)) {
      total += index.value()->Query(query).stats.tuples_evaluated;
    }
    cost[kind] = total;
  }
  EXPECT_LE(cost["dl"], cost["dg"]);
  EXPECT_LE(cost["dl+"], cost["dl"]);
  EXPECT_LE(cost["dl+"], cost["hl+"]);
}

TEST(IndexRegistryTest, KnownKindsBuild) {
  const PointSet pts = GenerateIndependent(100, 3, 9);
  for (const std::string& kind : KnownIndexKinds()) {
    IndexBuildConfig config;
    config.kind = kind;
    auto index = BuildIndex(config, pts);
    ASSERT_TRUE(index.ok()) << kind;
    EXPECT_EQ(index.value()->size(), 100u);
    EXPECT_FALSE(index.value()->name().empty());
  }
}

TEST(IndexRegistryTest, UnknownKindRejected) {
  const PointSet pts = GenerateIndependent(10, 2, 9);
  IndexBuildConfig config;
  config.kind = "btree";
  const auto index = BuildIndex(config, pts);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
}

TEST(IndexRegistryTest, CaseInsensitiveKinds) {
  const PointSet pts = GenerateIndependent(50, 2, 9);
  IndexBuildConfig config;
  config.kind = "DL+";
  const auto index = BuildIndex(config, pts);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value()->name(), "DL+");
}

TEST(ScaleTest, ModeratelyLargeAnticorrelated) {
  // A heavier end-to-end pass: 4-d anti-correlated data, all core
  // indexes, correctness against scan.
  const PointSet pts = GenerateAnticorrelated(2000, 4, 11);
  DualLayerOptions options;
  options.build_zero_layer = true;
  DualLayerIndex dl_plus = DualLayerIndex::Build(pts, options);
  testing_util::ExpectMatchesScan(dl_plus, pts, 10, 10, 12);
  testing_util::ExpectMatchesScan(dl_plus, pts, 50, 5, 13);
}

}  // namespace
}  // namespace drli

namespace drli {
namespace {

TEST(HighDimensionTest, SixDimensionalEndToEnd) {
  // The hull substrate is specified for d up to ~6; exercise the full
  // stack there (the paper's sweeps stop at d = 5).
  const PointSet pts = GenerateIndependent(300, 6, 66);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(pts, options);
  testing_util::ExpectMatchesScan(index, pts, 10, 8, 67);
}

}  // namespace
}  // namespace drli
