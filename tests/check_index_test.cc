// The invariant checker itself: a correct build of any shape must pass,
// a structurally corrupted index must fail, and the checker must keep
// working on indexes that went through a serialization round trip.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/dual_layer.h"
#include "core/serialization.h"
#include "data/generator.h"
#include "testing/check_index.h"
#include "test_util.h"

namespace drli {
namespace {

void ExpectClean(const DualLayerIndex& index, const std::string& what) {
  const CheckReport report = CheckIndex(index);
  EXPECT_TRUE(report.ok()) << what << ":\n" << report.ToString();
  EXPECT_GT(report.invariants_checked, 0u) << what;
}

TEST(CheckIndexTest, CleanBuildsAcrossShapes) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated,
        Distribution::kCorrelated}) {
    for (const std::size_t d : {2u, 3u, 5u}) {
      const PointSet points = Generate(dist, 220, d, 7 * d);
      for (const bool zero_layer : {false, true}) {
        DualLayerOptions options;
        options.build_zero_layer = zero_layer;
        ExpectClean(DualLayerIndex::Build(points, options),
                    std::string(DistributionName(dist)) + " d=" +
                        std::to_string(d) +
                        (zero_layer ? " dl+" : " dl"));
      }
    }
  }
}

TEST(CheckIndexTest, FineLayersDisabled) {
  // The ablation that reduces DL to a Dominant Graph still has to obey
  // every invariant that remains (one sublayer per coarse layer).
  const PointSet points = Generate(Distribution::kAnticorrelated, 300, 3, 11);
  DualLayerOptions options;
  options.enable_fine_layers = false;
  ExpectClean(DualLayerIndex::Build(points, options), "fine disabled");
}

TEST(CheckIndexTest, ToyAndDegenerateDatasets) {
  ExpectClean(DualLayerIndex::Build(testing_util::MakeToyDataset()), "toy");
  ExpectClean(DualLayerIndex::Build(PointSet(3)), "empty");
  PointSet one(4);
  one.Add({0.1, 0.2, 0.3, 0.4});
  DualLayerOptions plus;
  plus.build_zero_layer = true;
  ExpectClean(DualLayerIndex::Build(one, plus), "single tuple dl+");
  PointSet dups(2);
  for (int i = 0; i < 16; ++i) dups.Add({0.5, 0.5});
  ExpectClean(DualLayerIndex::Build(dups, plus), "all duplicates dl+");
}

TEST(CheckIndexTest, LoadedRoundTripsPass) {
  for (const std::size_t d : {2u, 3u}) {
    const PointSet points = Generate(Distribution::kAnticorrelated, 250, d, 5);
    DualLayerOptions options;
    options.build_zero_layer = true;  // 2-d: weight table; 3-d: clusters
    const DualLayerIndex built = DualLayerIndex::Build(points, options);
    const std::string path =
        ::testing::TempDir() + "check_round_trip_" + std::to_string(d) +
        ".bin";
    ASSERT_TRUE(SaveDualLayerIndex(built, path).ok());
    auto loaded = LoadDualLayerIndex(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectClean(loaded.value(), "round trip d=" + std::to_string(d));
    std::remove(path.c_str());
  }
}

// Flipping one coarse-layer assignment in the serialized bytes must be
// caught: the dominance-depth recomputation (and the edge/layer-group
// consistency checks) pin every assignment exactly.
TEST(CheckIndexTest, CorruptedCoarseAssignmentFails) {
  const PointSet points = Generate(Distribution::kAnticorrelated, 400, 3, 13);
  const DualLayerIndex built = DualLayerIndex::Build(points);
  ASSERT_TRUE(CheckIndex(built).ok());

  const std::string path = ::testing::TempDir() + "check_corrupt.bin";
  ASSERT_TRUE(SaveDualLayerIndex(built, path).ok());

  // Layout: magic u32, version u32, name (u64 + bytes), dim u32,
  // points (u64 + doubles), virtual (u64 + doubles), coarse_of
  // (u64 + u32 entries), ...
  const std::size_t offset =
      4 + 4 + 8 + built.name().size() + 4 +
      8 + built.points().raw().size() * sizeof(double) +
      8 + built.virtual_points().raw().size() * sizeof(double) + 8;
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  std::uint32_t layer = 0;
  file.seekg(static_cast<std::streamoff>(offset));
  file.read(reinterpret_cast<char*>(&layer), sizeof(layer));
  ASSERT_EQ(layer, built.coarse_layer_of(0));  // offset arithmetic sanity
  layer ^= 1u;
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(reinterpret_cast<const char*>(&layer), sizeof(layer));
  file.close();

  auto corrupted = LoadDualLayerIndex(path);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status().ToString();
  const CheckReport report = CheckIndex(corrupted.value());
  EXPECT_FALSE(report.ok())
      << "corrupted coarse assignment passed the checker";
  std::remove(path.c_str());
}

TEST(CheckIndexTest, ReportListsWhatWasChecked) {
  const PointSet points = Generate(Distribution::kIndependent, 120, 2, 3);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const CheckReport report =
      CheckIndex(DualLayerIndex::Build(points, options));
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_NE(report.ToString().find("OK"), std::string::npos);
}

}  // namespace
}  // namespace drli
