// The invariant checker itself: a correct build of any shape must pass,
// a structurally corrupted index must fail, and the checker must keep
// working on indexes that went through a serialization round trip.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/dual_layer.h"
#include "core/serialization.h"
#include "data/generator.h"
#include "testing/check_index.h"
#include "testing/fault_inject.h"
#include "test_util.h"

namespace drli {
namespace {

void ExpectClean(const DualLayerIndex& index, const std::string& what) {
  const CheckReport report = CheckIndex(index);
  EXPECT_TRUE(report.ok()) << what << ":\n" << report.ToString();
  EXPECT_GT(report.invariants_checked, 0u) << what;
}

TEST(CheckIndexTest, CleanBuildsAcrossShapes) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated,
        Distribution::kCorrelated}) {
    for (const std::size_t d : {2u, 3u, 5u}) {
      const PointSet points = Generate(dist, 220, d, 7 * d);
      for (const bool zero_layer : {false, true}) {
        DualLayerOptions options;
        options.build_zero_layer = zero_layer;
        ExpectClean(DualLayerIndex::Build(points, options),
                    std::string(DistributionName(dist)) + " d=" +
                        std::to_string(d) +
                        (zero_layer ? " dl+" : " dl"));
      }
    }
  }
}

TEST(CheckIndexTest, FineLayersDisabled) {
  // The ablation that reduces DL to a Dominant Graph still has to obey
  // every invariant that remains (one sublayer per coarse layer).
  const PointSet points = Generate(Distribution::kAnticorrelated, 300, 3, 11);
  DualLayerOptions options;
  options.enable_fine_layers = false;
  ExpectClean(DualLayerIndex::Build(points, options), "fine disabled");
}

TEST(CheckIndexTest, ToyAndDegenerateDatasets) {
  ExpectClean(DualLayerIndex::Build(testing_util::MakeToyDataset()), "toy");
  ExpectClean(DualLayerIndex::Build(PointSet(3)), "empty");
  PointSet one(4);
  one.Add({0.1, 0.2, 0.3, 0.4});
  DualLayerOptions plus;
  plus.build_zero_layer = true;
  ExpectClean(DualLayerIndex::Build(one, plus), "single tuple dl+");
  PointSet dups(2);
  for (int i = 0; i < 16; ++i) dups.Add({0.5, 0.5});
  ExpectClean(DualLayerIndex::Build(dups, plus), "all duplicates dl+");
}

TEST(CheckIndexTest, LoadedRoundTripsPass) {
  for (const std::size_t d : {2u, 3u}) {
    const PointSet points = Generate(Distribution::kAnticorrelated, 250, d, 5);
    DualLayerOptions options;
    options.build_zero_layer = true;  // 2-d: weight table; 3-d: clusters
    const DualLayerIndex built = DualLayerIndex::Build(points, options);
    const std::string path =
        ::testing::TempDir() + "check_round_trip_" + std::to_string(d) +
        ".bin";
    ASSERT_TRUE(SaveDualLayerIndex(built, path).ok());
    auto loaded = LoadDualLayerIndex(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectClean(loaded.value(), "round trip d=" + std::to_string(d));
    std::remove(path.c_str());
  }
}

// Swapping two tuples between adjacent coarse layers -- consistently,
// in both the coarse_of section and the layer member lists, with every
// CRC resealed -- produces a snapshot the loader must accept (its
// cross-checks all pass) but the checker must reject: the
// dominance-depth recomputation pins every assignment exactly.
TEST(CheckIndexTest, CorruptedCoarseAssignmentFails) {
  const PointSet points = Generate(Distribution::kAnticorrelated, 400, 3, 13);
  const DualLayerIndex built = DualLayerIndex::Build(points);
  ASSERT_TRUE(CheckIndex(built).ok());

  const std::string path = ::testing::TempDir() + "check_corrupt.bin";
  ASSERT_TRUE(SaveDualLayerIndex(built, path).ok());

  const std::vector<std::vector<TupleId>>& layers = built.coarse_layers();
  ASSERT_GE(layers.size(), 2u);
  const TupleId u = layers[0].front();  // flat member position 0
  const TupleId v = layers[1].front();  // flat member position |layer 0|
  const std::uint64_t pos_v = layers[0].size();

  testing::SnapshotV2Editor editor(testing::ReadFileBytes(path));
  const std::uint32_t layer_of_u = 1, layer_of_v = 0;
  editor.PatchSection(snapshot::SectionKind::kCoarseOf,
                      std::uint64_t{u} * 4, &layer_of_u, 4);
  editor.PatchSection(snapshot::SectionKind::kCoarseOf,
                      std::uint64_t{v} * 4, &layer_of_v, 4);
  editor.PatchSection(snapshot::SectionKind::kLayerMembers, 0, &v, 4);
  editor.PatchSection(snapshot::SectionKind::kLayerMembers, pos_v * 4, &u, 4);
  testing::WriteFileBytes(path, editor.bytes());

  auto corrupted = LoadDualLayerIndex(path);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status().ToString();
  const CheckReport report = CheckIndex(corrupted.value());
  EXPECT_FALSE(report.ok())
      << "corrupted coarse assignment passed the checker";
  std::remove(path.c_str());
}

TEST(CheckIndexTest, ReportListsWhatWasChecked) {
  const PointSet points = Generate(Distribution::kIndependent, 120, 2, 3);
  DualLayerOptions options;
  options.build_zero_layer = true;
  const CheckReport report =
      CheckIndex(DualLayerIndex::Build(points, options));
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_NE(report.ToString().find("OK"), std::string::npos);
}

}  // namespace
}  // namespace drli
