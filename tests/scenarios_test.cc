// Query scenarios over the DL+ core (scenarios/): constrained top-k
// with box pushdown on all three engines, diversified greedy with its
// pool certificate, reverse top-k against the full kinetic sweep, the
// QueryBatch wall-clock accounting, and the tombstone-floor compaction
// option. The randomized cross-engine sweep lives in the scenario
// oracle (testing/scenario_oracle.h) and the fuzz suite; this file
// pins the deterministic contracts.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"
#include "core/dual_layer.h"
#include "core/tiered_index.h"
#include "data/generator.h"
#include "scenarios/constrained.h"
#include "scenarios/diversified.h"
#include "scenarios/reverse_topk.h"
#include "shard/sharded_index.h"
#include "test_util.h"
#include "testing/scenario_oracle.h"
#include "topk/query.h"

namespace drli {
namespace {

struct Engines {
  DualLayerIndex dl;
  ShardedDualLayerIndex sdl;
  TieredDualLayerIndex tdl;
};

Engines BuildEngines(const PointSet& points) {
  DualLayerOptions dl_opts;
  dl_opts.build_zero_layer = true;
  dl_opts.build_threads = 1;

  ShardedBuildOptions sh_opts;
  sh_opts.num_shards = 3;
  sh_opts.shard_options.build_zero_layer = true;
  sh_opts.build_threads = 1;

  TieredIndexOptions t_opts;
  t_opts.memtable_capacity = 16;

  Engines engines{DualLayerIndex::Build(points, dl_opts),
                  ShardedDualLayerIndex::Build(points, sh_opts),
                  TieredDualLayerIndex(points.dim(), t_opts)};
  for (std::size_t i = 0; i < points.size(); ++i) {
    engines.tdl.Insert(points[i]);
  }
  return engines;
}

void ExpectSameItems(const TopKResult& got, const TopKResult& want,
                     const char* engine) {
  ASSERT_EQ(got.termination, Termination::kComplete) << engine;
  ASSERT_EQ(got.items.size(), want.items.size()) << engine;
  EXPECT_EQ(got.certified_prefix, got.items.size()) << engine;
  for (std::size_t i = 0; i < want.items.size(); ++i) {
    EXPECT_EQ(got.items[i].id, want.items[i].id) << engine << " rank " << i;
    EXPECT_EQ(got.items[i].score, want.items[i].score)
        << engine << " rank " << i;
  }
}

// --- constrained ---

TEST(ConstrainedTest, MatchesScanOnAllEnginesWithPruning) {
  const PointSet points = GenerateIndependent(180, 3, 11);
  const Engines engines = BuildEngines(points);
  Rng rng(5);

  bool dl_pruned = false, sdl_pruned = false, tdl_pruned = false;
  for (int probe = 0; probe < 12; ++probe) {
    ConstrainedQuery query;
    query.weights = rng.SimplexWeight(3);
    query.k = 1 + rng.Index(8);
    // Box spanned by two data rows: edges hit coordinates exactly.
    const TupleId a = static_cast<TupleId>(rng.Index(points.size()));
    const TupleId b = static_cast<TupleId>(rng.Index(points.size()));
    query.box.lo.resize(3);
    query.box.hi.resize(3);
    for (std::size_t attr = 0; attr < 3; ++attr) {
      query.box.lo[attr] = std::min(points.At(a, attr), points.At(b, attr));
      query.box.hi[attr] = std::max(points.At(a, attr), points.At(b, attr));
    }
    const TopKResult want = ConstrainedTopKScan(points, query);
    const TopKResult dl = ConstrainedTopK(engines.dl, query);
    const TopKResult sdl = ConstrainedTopK(engines.sdl, query);
    const TopKResult tdl = ConstrainedTopK(engines.tdl, query);
    ExpectSameItems(dl, want, "dl+");
    ExpectSameItems(sdl, want, "sdl+");
    ExpectSameItems(tdl, want, "tdl+");
    dl_pruned |= dl.stats.boxes_pruned > 0;
    sdl_pruned |= sdl.stats.boxes_pruned > 0;
    tdl_pruned |= tdl.stats.boxes_pruned > 0;
  }
  // Narrow boxes over 180 rows must have discarded whole units
  // somewhere in the sweep on every engine.
  EXPECT_TRUE(dl_pruned);
  EXPECT_TRUE(sdl_pruned);
  EXPECT_TRUE(tdl_pruned);
}

TEST(ConstrainedTest, DegenerateBoxes) {
  const PointSet points = GenerateIndependent(60, 2, 3);
  const Engines engines = BuildEngines(points);

  ConstrainedQuery query;
  query.weights = {0.5, 0.5};
  query.k = 5;

  // Inverted box matches nothing.
  query.box = AttributeBox::All(2);
  query.box.lo[0] = 1.0;
  query.box.hi[0] = 0.0;
  EXPECT_TRUE(ConstrainedTopK(engines.dl, query).items.empty());
  EXPECT_TRUE(ConstrainedTopK(engines.sdl, query).items.empty());
  EXPECT_TRUE(ConstrainedTopK(engines.tdl, query).items.empty());
  EXPECT_TRUE(ConstrainedTopKScan(points, query).items.empty());

  // The all-space box reduces to the plain top-k.
  query.box = AttributeBox::All(2);
  TopKQuery plain;
  plain.weights = query.weights;
  plain.k = query.k;
  const TopKResult unconstrained = engines.dl.Query(plain);
  ExpectSameItems(ConstrainedTopK(engines.dl, query), unconstrained, "dl+");
  ExpectSameItems(ConstrainedTopK(engines.tdl, query), unconstrained, "tdl+");

  // A point box (lo == hi == one row) with k far beyond the match
  // count returns exactly that row.
  query.box.lo = points.Materialize(7);
  query.box.hi = points.Materialize(7);
  query.k = points.size() + 3;
  const TopKResult want = ConstrainedTopKScan(points, query);
  ASSERT_EQ(want.items.size(), 1u);
  EXPECT_EQ(want.items[0].id, 7u);
  ExpectSameItems(ConstrainedTopK(engines.dl, query), want, "dl+");
  ExpectSameItems(ConstrainedTopK(engines.sdl, query), want, "sdl+");
  ExpectSameItems(ConstrainedTopK(engines.tdl, query), want, "tdl+");

  // Dimension mismatch and NaN endpoints are recoverable errors.
  query.box.lo = {0.0};
  query.box.hi = {1.0};
  EXPECT_EQ(ConstrainedTopK(engines.dl, query).termination,
            Termination::kInvalidQuery);
  query.box.lo = {std::numeric_limits<double>::quiet_NaN(), 0.0};
  query.box.hi = {1.0, 1.0};
  EXPECT_EQ(ConstrainedTopK(engines.dl, query).termination,
            Termination::kInvalidQuery);
}

TEST(ConstrainedTest, ZeroWeightQueriesAreLegal) {
  const PointSet points = GenerateIndependent(50, 2, 17);
  const Engines engines = BuildEngines(points);
  ConstrainedQuery query;
  query.weights = {0.0, 1.0};  // simplex boundary
  query.k = 4;
  query.box = AttributeBox::All(2);
  query.box.hi[1] = 0.8;
  const TopKResult want = ConstrainedTopKScan(points, query);
  ExpectSameItems(ConstrainedTopK(engines.dl, query), want, "dl+");
  ExpectSameItems(ConstrainedTopK(engines.sdl, query), want, "sdl+");
  ExpectSameItems(ConstrainedTopK(engines.tdl, query), want, "tdl+");
}

TEST(ConstrainedTest, BudgetedPartialCertifiesTruePrefix) {
  const PointSet points = GenerateIndependent(150, 3, 23);
  const Engines engines = BuildEngines(points);
  Rng rng(23);

  ConstrainedQuery query;
  query.weights = {0.3, 0.3, 0.4};
  query.k = 10;
  query.box = AttributeBox::All(3);
  query.box.hi[0] = 0.6;
  const TopKResult want = ConstrainedTopKScan(points, query);
  const std::size_t full_cost =
      ConstrainedTopK(engines.dl, query).stats.tuples_evaluated;
  ASSERT_GT(full_cost, 0u);

  bool saw_partial = false;
  for (std::size_t cut = 1; cut <= full_cost; cut += 1 + cut / 4) {
    ConstrainedQuery budgeted = query;
    budgeted.budget.max_evals = cut;
    for (const TopKResult& got : {ConstrainedTopK(engines.dl, budgeted),
                                  ConstrainedTopK(engines.sdl, budgeted),
                                  ConstrainedTopK(engines.tdl, budgeted)}) {
      saw_partial |= !got.complete();
      ASSERT_LE(got.certified_prefix, got.items.size());
      ASSERT_LE(got.certified_prefix, want.items.size());
      for (std::size_t i = 0; i < got.certified_prefix; ++i) {
        EXPECT_EQ(got.items[i].id, want.items[i].id) << "cut " << cut;
        EXPECT_EQ(got.items[i].score, want.items[i].score) << "cut " << cut;
      }
    }
  }
  EXPECT_TRUE(saw_partial);
}

// --- diversified ---

TEST(DiversifiedTest, LambdaZeroIsCanonicalTopK) {
  const PointSet points = GenerateIndependent(80, 3, 31);
  const Engines engines = BuildEngines(points);
  DiversifiedQuery query;
  query.weights = {0.2, 0.5, 0.3};
  query.k = 6;
  query.lambda = 0.0;
  TopKQuery plain;
  plain.weights = query.weights;
  plain.k = query.k;
  const TopKResult topk = engines.dl.Query(plain);
  const DiversifiedResult got = DiversifiedTopK(engines.dl, points, query);
  ASSERT_TRUE(got.complete());
  ASSERT_EQ(got.picks.size(), topk.items.size());
  for (std::size_t i = 0; i < topk.items.size(); ++i) {
    EXPECT_EQ(got.picks[i].id, topk.items[i].id) << i;
    EXPECT_EQ(got.picks[i].utility, topk.items[i].score) << i;
  }
}

TEST(DiversifiedTest, MatchesBruteForceAcrossLambdas) {
  const PointSet points = GenerateIndependent(90, 2, 37);
  const Engines engines = BuildEngines(points);
  for (const double lambda : {0.0, 0.4, 5.0}) {
    DiversifiedQuery query;
    query.weights = {0.6, 0.4};
    query.k = 5;
    query.lambda = lambda;
    query.pool_factor = 2;
    const DiversifiedResult want = DiversifiedTopKScan(points, query);
    for (const DiversifiedResult& got :
         {DiversifiedTopK(engines.dl, points, query),
          DiversifiedTopK(engines.sdl, points, query),
          DiversifiedTopK(engines.tdl, points, query)}) {
      ASSERT_TRUE(got.complete()) << "lambda=" << lambda;
      ASSERT_EQ(got.picks.size(), want.picks.size());
      EXPECT_EQ(got.certified_prefix, got.picks.size());
      for (std::size_t i = 0; i < want.picks.size(); ++i) {
        EXPECT_EQ(got.picks[i].id, want.picks[i].id)
            << "lambda=" << lambda << " pick " << i;
        EXPECT_EQ(got.picks[i].score, want.picks[i].score);
        EXPECT_EQ(got.picks[i].utility, want.picks[i].utility);
      }
    }
  }
}

// The pool certificate: a pick with utility strictly below the pool
// bound beats every out-of-pool tuple (score >= bound and the penalty
// only raises g), so certified picks never change as the pool grows --
// and a large lambda forces the engine to grow the pool before it can
// certify all k picks.
TEST(DiversifiedTest, PoolGrowsUntilCertificateCovers) {
  const PointSet points = GenerateIndependent(120, 2, 41);
  const Engines engines = BuildEngines(points);
  DiversifiedQuery query;
  query.weights = {0.5, 0.5};
  query.k = 4;
  query.lambda = 50.0;  // penalty dwarfs scores: picks flee the pool top
  query.pool_factor = 2;
  const DiversifiedResult got = DiversifiedTopK(engines.dl, points, query);
  ASSERT_TRUE(got.complete());
  EXPECT_EQ(got.certified_prefix, got.picks.size());
  // The initial pool (pool_factor * k = 8) cannot certify under this
  // lambda; completion proves at least one doubling happened.
  EXPECT_GT(got.pool_size, query.pool_factor * query.k);
  for (const DiversifiedPick& pick : got.picks) {
    EXPECT_LT(pick.utility, got.pool_bound);
  }
  const DiversifiedResult want = DiversifiedTopKScan(points, query);
  for (std::size_t i = 0; i < want.picks.size(); ++i) {
    EXPECT_EQ(got.picks[i].id, want.picks[i].id) << i;
  }
}

// --- reverse top-k ---

TEST(ReverseTopKTest, FastPathMatchesSweepForK1) {
  const PointSet points = GenerateIndependent(100, 2, 43);
  const Engines engines = BuildEngines(points);
  ASSERT_TRUE(engines.dl.uses_weight_table());
  for (TupleId target = 0; target < points.size(); ++target) {
    ReverseTopKQuery query;
    query.target = target;
    query.k = 1;
    const ReverseTopKResult got = ReverseTopK2D(engines.dl, query);
    const ReverseTopKResult want = ReverseTopK2DScan(points, query);
    ASSERT_EQ(got.intervals.size(), want.intervals.size())
        << "target " << target;
    for (std::size_t i = 0; i < want.intervals.size(); ++i) {
      EXPECT_NEAR(got.intervals[i].lo, want.intervals[i].lo, 1e-9);
      EXPECT_NEAR(got.intervals[i].hi, want.intervals[i].hi, 1e-9);
    }
    if (engines.dl.coarse_layer_of(target) == 0) {
      EXPECT_TRUE(got.used_weight_table) << "target " << target;
    } else {
      // Deeper than layer 0: top-1 is empty, certified at zero cost.
      EXPECT_TRUE(got.intervals.empty());
      EXPECT_EQ(got.stats.tuples_evaluated, 0u);
    }
  }
}

TEST(ReverseTopKTest, LayerRestrictedSweepMatchesFullSweep) {
  const PointSet points = GenerateIndependent(70, 2, 47);
  const Engines engines = BuildEngines(points);
  for (const std::size_t k : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    for (TupleId target = 0; target < points.size(); ++target) {
      ReverseTopKQuery query;
      query.target = target;
      query.k = k;
      const ReverseTopKResult got = ReverseTopK2D(engines.dl, query);
      const ReverseTopKResult want = ReverseTopK2DScan(points, query);
      ASSERT_EQ(got.intervals.size(), want.intervals.size())
          << "k=" << k << " target=" << target;
      for (std::size_t i = 0; i < want.intervals.size(); ++i) {
        EXPECT_NEAR(got.intervals[i].lo, want.intervals[i].lo, 1e-9);
        EXPECT_NEAR(got.intervals[i].hi, want.intervals[i].hi, 1e-9);
      }
      // Acceleration: the restricted pool never exceeds the relation,
      // and deep targets cost nothing at all.
      EXPECT_LE(got.stats.tuples_evaluated, want.stats.tuples_evaluated);
      if (engines.dl.coarse_layer_of(target) >= k) {
        EXPECT_EQ(got.stats.tuples_evaluated, 0u);
        EXPECT_TRUE(got.intervals.empty());
      }
    }
  }
}

TEST(ReverseTopKTest, RejectsNon2DAndBadTargets) {
  const PointSet points3 = GenerateIndependent(20, 3, 53);
  DualLayerOptions opts;
  opts.build_zero_layer = true;
  const DualLayerIndex index3 = DualLayerIndex::Build(points3, opts);
  ReverseTopKQuery query;
  query.target = 0;
  query.k = 1;
  EXPECT_EQ(ReverseTopK2D(index3, query).termination,
            Termination::kInvalidQuery);

  const PointSet points2 = GenerateIndependent(20, 2, 53);
  const DualLayerIndex index2 = DualLayerIndex::Build(points2, opts);
  query.target = 99;  // out of range
  EXPECT_EQ(ReverseTopK2D(index2, query).termination,
            Termination::kInvalidQuery);
  query.target = 0;
  query.k = 0;  // top-0 is empty for everyone
  const ReverseTopKResult empty = ReverseTopK2D(index2, query);
  EXPECT_TRUE(empty.complete());
  EXPECT_TRUE(empty.intervals.empty());
}

// --- scenario oracle smoke (the fuzz suite runs it at scale) ---

TEST(ScenarioOracleTest, CleanOnRandomDatasets) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const PointSet points =
        GenerateIndependent(60 + 7 * seed, 2 + seed % 3, seed);
    const std::vector<std::string> failures =
        CheckScenarioFamilies(points, seed);
    EXPECT_TRUE(failures.empty())
        << "seed " << seed << ": " << failures.front();
  }
}

// --- batch wall-clock accounting ---

TEST(BatchStatsTest, WallClockIsNotTheSumOfPerQueryClocks) {
  const PointSet points = GenerateIndependent(400, 3, 59);
  DualLayerOptions opts;
  opts.build_zero_layer = true;
  const DualLayerIndex index = DualLayerIndex::Build(points, opts);
  Rng rng(59);
  std::vector<TopKQuery> queries(64);
  for (TopKQuery& query : queries) {
    query.weights = rng.SimplexWeight(3);
    query.k = 10;
  }
  BatchStats stats;
  const std::vector<TopKResult> results =
      index.QueryBatch(queries, BatchOptions{}, &stats);
  ASSERT_EQ(results.size(), queries.size());
  EXPECT_GT(stats.wall_seconds, 0.0);

  double query_seconds = 0.0;
  std::size_t evaluated = 0;
  for (const TopKResult& result : results) {
    query_seconds += result.stats.elapsed_seconds;
    evaluated += result.stats.tuples_evaluated;
    EXPECT_TRUE(result.complete());
  }
  // merged is the Merge of every per-query QueryStats...
  EXPECT_EQ(stats.merged.tuples_evaluated, evaluated);
  EXPECT_DOUBLE_EQ(stats.merged.elapsed_seconds, query_seconds);
  // ...whose elapsed sum is aggregate query-seconds, NOT the batch
  // wall clock the QPS math needs. (With parallel workers the sum
  // typically exceeds the wall clock; equality would mean a serial
  // batch, which BatchOptions{} does not request.)
  EXPECT_NE(stats.merged.elapsed_seconds, stats.wall_seconds);
}

// --- tombstone compaction floor ---

TEST(TieredTombstoneFloorTest, FloorKeepsSmallIndexesUncompacted) {
  // 24 live rows in sealed runs, then erase 20: far over the 50%
  // fraction but far under the default floor of 64 tombstones.
  const auto build = [](std::size_t floor_value) {
    TieredIndexOptions options;
    options.memtable_capacity = 8;
    options.fanout = 64;  // keep size-tiered merges out of the way
    options.tombstone_compact_min = floor_value;
    TieredDualLayerIndex index(2, options);
    Rng rng(61);
    std::vector<TupleId> ids;
    for (int i = 0; i < 24; ++i) {
      Point p{rng.Uniform(), rng.Uniform()};
      ids.push_back(index.Insert(PointView(p)));
    }
    index.SealMemtable();
    for (std::size_t i = 0; i < 20; ++i) index.Erase(ids[i]);
    // Give the scheduler every chance to start and finish merges.
    for (int i = 0; i < 64; ++i) index.CompactStep();
    return index.tombstone_count();
  };
  // Default floor: 20 tombstones stay below max(64, 0.5 * rows) --
  // the historical behaviour, now an option.
  EXPECT_EQ(build(64), 20u);
  // Floor disabled: the 50% fraction alone governs, and the erase
  // storm triggers full merges that drop every consumed tombstone.
  // (Any residual is one that fell back under the fraction of the
  // shrunken index -- strictly below the fraction cap, never 20.)
  EXPECT_LE(build(0), 2u);
}

}  // namespace
}  // namespace drli
