#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "gtest/gtest.h"

#include "data/csv.h"
#include "data/dataset.h"
#include "data/generator.h"

namespace drli {
namespace {

TEST(GeneratorTest, SizesAndRanges) {
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kAnticorrelated,
                            Distribution::kCorrelated}) {
    const PointSet pts = Generate(dist, 500, 4, 11);
    ASSERT_EQ(pts.size(), 500u);
    ASSERT_EQ(pts.dim(), 4u);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_GT(pts.At(i, j), 0.0);
        EXPECT_LT(pts.At(i, j), 1.0);
      }
    }
  }
}

TEST(GeneratorTest, DeterministicBySeed) {
  const PointSet a = GenerateAnticorrelated(100, 3, 9);
  const PointSet b = GenerateAnticorrelated(100, 3, 9);
  EXPECT_TRUE(std::ranges::equal(a.raw(), b.raw()));
  const PointSet c = GenerateAnticorrelated(100, 3, 10);
  EXPECT_FALSE(std::ranges::equal(a.raw(), c.raw()));
}

TEST(GeneratorTest, AnticorrelatedHasNegativePairwiseCorrelation) {
  const PointSet pts = GenerateAnticorrelated(5000, 2, 3);
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    mx += pts.At(i, 0);
    my += pts.At(i, 1);
  }
  mx /= pts.size();
  my /= pts.size();
  double cov = 0, vx = 0, vy = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double dx = pts.At(i, 0) - mx, dy = pts.At(i, 1) - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_LT(corr, -0.3);
}

TEST(GeneratorTest, CorrelatedHasPositivePairwiseCorrelation) {
  const PointSet pts = GenerateCorrelated(5000, 2, 3);
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    mx += pts.At(i, 0);
    my += pts.At(i, 1);
  }
  mx /= pts.size();
  my /= pts.size();
  double cov = 0, vx = 0, vy = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double dx = pts.At(i, 0) - mx, dy = pts.At(i, 1) - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  EXPECT_GT(cov / std::sqrt(vx * vy), 0.5);
}

TEST(GeneratorTest, DistributionNames) {
  EXPECT_STREQ(DistributionName(Distribution::kIndependent), "ind");
  EXPECT_STREQ(DistributionName(Distribution::kAnticorrelated), "ant");
  EXPECT_STREQ(DistributionName(Distribution::kCorrelated), "cor");
}

TEST(DatasetTest, AttributeLookup) {
  Dataset ds({"price", "distance"});
  EXPECT_EQ(ds.AttributeIndex("price"), 0u);
  EXPECT_EQ(ds.AttributeIndex("distance"), 1u);
  EXPECT_EQ(ds.AttributeIndex("rating"), Dataset::npos);
}

TEST(DatasetTest, NormalizeMinMax) {
  Dataset ds({"x", "y"});
  ds.mutable_points().Add({10.0, 100.0});
  ds.mutable_points().Add({20.0, 300.0});
  ds.mutable_points().Add({30.0, 200.0});
  ds.NormalizeMinMax();
  EXPECT_DOUBLE_EQ(ds.points().At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ds.points().At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.points().At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(ds.points().At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(ds.points().At(2, 1), 0.5);
}

TEST(DatasetTest, NormalizeConstantAttribute) {
  Dataset ds({"x"});
  ds.mutable_points().Add({5.0});
  ds.mutable_points().Add({5.0});
  ds.NormalizeMinMax();
  EXPECT_DOUBLE_EQ(ds.points().At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ds.points().At(1, 0), 0.0);
}

TEST(DatasetTest, InvertAttribute) {
  Dataset ds({"rating"});
  ds.mutable_points().Add({2.0});
  ds.mutable_points().Add({5.0});
  ds.InvertAttribute(0);
  EXPECT_DOUBLE_EQ(ds.points().At(0, 0), 3.0);  // 5 - 2
  EXPECT_DOUBLE_EQ(ds.points().At(1, 0), 0.0);
}

TEST(CsvTest, ParseBasic) {
  const auto ds = ParseCsv("price,distance\n1.5,2.5\n3.0,4.0\n");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().size(), 2u);
  EXPECT_EQ(ds.value().attribute_names(),
            (std::vector<std::string>{"price", "distance"}));
  EXPECT_DOUBLE_EQ(ds.value().points().At(1, 1), 4.0);
}

TEST(CsvTest, ParseRejectsNonNumeric) {
  const auto ds = ParseCsv("a,b\n1.0,hello\n");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, ParseRejectsFieldCountMismatch) {
  const auto ds = ParseCsv("a,b\n1.0\n");
  ASSERT_FALSE(ds.ok());
}

TEST(CsvTest, ParseRejectsEmpty) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, SkipsBlankLines) {
  const auto ds = ParseCsv("a,b\n1,2\n\n3,4\n");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().size(), 2u);
}

TEST(CsvTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "drli_csv_test.csv")
          .string();
  Dataset ds({"x", "y", "z"});
  ds.mutable_points().Add({0.125, 0.5, 0.75});
  ds.mutable_points().Add({1e-9, 123456.789, 0.3333333333333333});
  ASSERT_TRUE(SaveCsv(ds, path).ok());
  const auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().attribute_names(), ds.attribute_names());
  ASSERT_EQ(loaded.value().size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = 0; j < ds.dim(); ++j) {
      EXPECT_DOUBLE_EQ(loaded.value().points().At(i, j),
                       ds.points().At(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, LoadMissingFileFails) {
  const auto ds = LoadCsv("/nonexistent/path/file.csv");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace drli
