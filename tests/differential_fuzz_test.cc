// Fuzz smoke: 500 seeded differential cases across d in {2..5} (five
// shards so ctest runs them in parallel), deterministic seed replay,
// and the minimized failure corpus in tests/corpus/.

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "gtest/gtest.h"

#include "testing/fuzz.h"

namespace drli {
namespace {

// Shards share one seed space: shard s covers seeds s*100+1..s*100+100.
void RunShard(std::uint64_t shard) {
  std::set<std::size_t> dims;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    const std::uint64_t seed = shard * 100 + i;
    const FuzzCaseResult result = RunFuzzCase(seed);
    dims.insert(result.d);
    EXPECT_TRUE(result.ok())
        << "FAIL seed=" << seed << " (" << result.dataset_desc
        << "); replay with: drli_fuzz --replay=" << seed;
    if (!result.ok()) {
      for (const std::string& failure : result.failures) {
        ADD_FAILURE() << failure;
      }
      return;
    }
  }
  // 100 seeds draw d uniformly from {2..5}; all four must appear.
  EXPECT_EQ(dims.size(), 4u) << "dimension coverage hole in shard "
                             << shard;
}

TEST(DifferentialFuzzTest, Shard0) { RunShard(0); }
TEST(DifferentialFuzzTest, Shard1) { RunShard(1); }
TEST(DifferentialFuzzTest, Shard2) { RunShard(2); }
TEST(DifferentialFuzzTest, Shard3) { RunShard(3); }
TEST(DifferentialFuzzTest, Shard4) { RunShard(4); }

TEST(DifferentialFuzzTest, SeedReplayIsDeterministic) {
  for (const std::uint64_t seed : {17ULL, 391ULL, 52ULL}) {
    const FuzzCaseResult first = RunFuzzCase(seed);
    const FuzzCaseResult second = RunFuzzCase(seed);
    EXPECT_EQ(first.dataset_desc, second.dataset_desc) << seed;
    EXPECT_EQ(first.n, second.n) << seed;
    EXPECT_EQ(first.d, second.d) << seed;
    EXPECT_EQ(first.failures, second.failures) << seed;
  }
}

// Every .seed file in tests/corpus/ is a historical failure; all must
// stay fixed. The file format is comment lines (#) plus one seed.
TEST(DifferentialFuzzTest, CorpusStaysFixed) {
  const std::filesystem::path corpus(DRLI_TEST_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(corpus)) << corpus;
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() != ".seed") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::uint64_t seed = 0;
    bool have_seed = false;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      seed = std::stoull(line);
      have_seed = true;
      break;
    }
    ASSERT_TRUE(have_seed) << "no seed in " << entry.path();
    const FuzzCaseResult result = RunFuzzCase(seed);
    EXPECT_TRUE(result.ok())
        << entry.path().filename() << " regressed (seed " << seed << ", "
        << result.dataset_desc << ")";
    for (const std::string& failure : result.failures) {
      ADD_FAILURE() << failure;
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 7u) << "corpus went missing";
}

}  // namespace
}  // namespace drli
