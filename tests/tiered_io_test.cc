// Persistence and crash recovery of the tiered dynamic index: full
// roundtrip of live multi-run state (runs + memtable + tombstones),
// manifest metadata, write-order capture, stray-run sweeping, clean
// rejection of corrupt or torn files, and the seeded crash-recovery
// fault sweep.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"
#include "core/tiered_index.h"
#include "storage/tiered_io.h"
#include "test_util.h"
#include "testing/fault_inject.h"
#include "topk/query.h"

namespace drli {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("drli_tio_" + std::to_string(getpid()) + "_" + name))
      .string();
}

void RemoveWithRuns(const std::string& manifest) {
  std::error_code ec;
  const std::filesystem::path dir =
      std::filesystem::path(manifest).parent_path();
  const std::string base = std::filesystem::path(manifest).filename();
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename();
    if (name.rfind(base, 0) == 0) std::filesystem::remove(entry.path(), ec);
  }
}

// A live index with several runs, a partial memtable and tombstones.
TieredDualLayerIndex MakeLiveIndex(std::map<TupleId, Point>* live,
                                   std::uint64_t seed = 3) {
  TieredIndexOptions options;
  options.memtable_capacity = 8;
  options.fanout = 2;
  options.auto_compact = false;
  TieredDualLayerIndex index(3, options);
  Rng rng(seed);
  std::vector<TupleId> ids;
  for (std::size_t i = 0; i < 45; ++i) {
    Point row(3);
    for (double& x : row) x = rng.Uniform();
    const TupleId id = index.Insert(PointView(row.data(), row.size()));
    if (live) (*live)[id] = row;
    ids.push_back(id);
  }
  for (std::size_t i = 0; i < ids.size(); i += 7) {
    index.Erase(ids[i]);
    if (live) live->erase(ids[i]);
  }
  return index;
}

void ExpectSameAnswers(const TieredDualLayerIndex& a,
                       const TieredDualLayerIndex& b) {
  for (const TopKQuery& query :
       testing_util::RandomQueries(a.dim(), 6, 10, 59)) {
    const TopKResult ra = a.Query(query);
    const TopKResult rb = b.Query(query);
    ASSERT_TRUE(ra.complete()) << ra.error;
    ASSERT_TRUE(rb.complete()) << rb.error;
    ASSERT_EQ(ra.items.size(), rb.items.size());
    for (std::size_t i = 0; i < ra.items.size(); ++i) {
      EXPECT_EQ(ra.items[i].id, rb.items[i].id);
      EXPECT_DOUBLE_EQ(ra.items[i].score, rb.items[i].score);
    }
  }
}

TEST(TieredIoTest, RoundTripPreservesLiveState) {
  std::map<TupleId, Point> live;
  const TieredDualLayerIndex index = MakeLiveIndex(&live);
  ASSERT_GE(index.num_runs(), 2u);
  ASSERT_GT(index.memtable_size(), 0u);
  ASSERT_GT(index.tombstone_count(), 0u);

  const std::string path = TempPath("roundtrip.drlt");
  ASSERT_TRUE(SaveTieredIndex(index, path).ok());
  auto loaded_or = LoadTieredIndex(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  TieredDualLayerIndex& loaded = loaded_or.value();

  EXPECT_EQ(loaded.size(), index.size());
  EXPECT_EQ(loaded.num_runs(), index.num_runs());
  EXPECT_EQ(loaded.memtable_size(), index.memtable_size());
  EXPECT_EQ(loaded.tombstone_count(), index.tombstone_count());
  EXPECT_EQ(loaded.generation(), index.generation());
  EXPECT_EQ(loaded.next_id(), index.next_id());
  EXPECT_EQ(loaded.next_run_uid(), index.next_run_uid());
  ExpectSameAnswers(index, loaded);

  // The loaded copy is fully mutable: inserts get fresh ids, erases
  // resolve into the reloaded runs, compaction works.
  Point row = {0.1, 0.2, 0.3};
  const TupleId fresh = loaded.Insert(PointView(row.data(), row.size()));
  EXPECT_EQ(fresh, index.next_id());
  ASSERT_TRUE(loaded.Erase(fresh));
  loaded.Compact();
  EXPECT_LE(loaded.num_runs(), 1u);
  EXPECT_EQ(loaded.size(), index.size());
  RemoveWithRuns(path);
}

TEST(TieredIoTest, EmptyIndexRoundTrips) {
  TieredDualLayerIndex index(2);
  const std::string path = TempPath("empty.drlt");
  ASSERT_TRUE(SaveTieredIndex(index, path).ok());
  auto loaded = LoadTieredIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 0u);
  EXPECT_EQ(loaded.value().num_runs(), 0u);
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 4;
  EXPECT_TRUE(loaded.value().Query(query).items.empty());
  RemoveWithRuns(path);
}

TEST(TieredIoTest, ManifestMetadataMatchesIndex) {
  const TieredDualLayerIndex index = MakeLiveIndex(nullptr);
  const std::string path = TempPath("meta.drlt");
  ASSERT_TRUE(SaveTieredIndex(index, path).ok());
  EXPECT_TRUE(IsTieredManifest(path));

  auto info_or = InspectTieredManifest(path);
  ASSERT_TRUE(info_or.ok()) << info_or.status().ToString();
  const TieredManifestInfo& info = info_or.value();
  EXPECT_EQ(info.version, tiered_manifest::kVersion);
  EXPECT_EQ(info.dim, index.dim());
  EXPECT_EQ(info.generation, index.generation());
  EXPECT_EQ(info.next_id, index.next_id());
  EXPECT_EQ(info.memtable_rows, index.memtable_size());
  EXPECT_EQ(info.num_tombstones, index.tombstone_count());
  ASSERT_EQ(info.runs.size(), index.num_runs());
  for (std::size_t i = 0; i < info.runs.size(); ++i) {
    EXPECT_EQ(info.runs[i].uid, index.run(i).uid);
    EXPECT_EQ(info.runs[i].tier, index.run(i).tier);
    EXPECT_EQ(info.runs[i].num_points, index.run(i).ids.size());
    // Files are recorded relative to the manifest and must exist.
    EXPECT_EQ(info.runs[i].file.find('/'), std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(path).parent_path() / info.runs[i].file));
  }
  RemoveWithRuns(path);
}

TEST(TieredIoTest, WriteOrderEndsWithManifest) {
  const TieredDualLayerIndex index = MakeLiveIndex(nullptr);
  const std::string path = TempPath("order.drlt");
  std::vector<std::string> writes;
  TieredSaveOptions save;
  save.write_order = &writes;
  ASSERT_TRUE(SaveTieredIndex(index, path, save).ok());
  ASSERT_EQ(writes.size(), index.num_runs() + 1);
  EXPECT_EQ(writes.back(), path);  // manifest commits last
  for (std::size_t i = 0; i + 1 < writes.size(); ++i) {
    EXPECT_NE(writes[i].find(".run-"), std::string::npos) << writes[i];
  }
  RemoveWithRuns(path);
}

TEST(TieredIoTest, ResaveSweepsStraysAndKeepsLiveRuns) {
  std::map<TupleId, Point> live;
  TieredDualLayerIndex index = MakeLiveIndex(&live);
  const std::string path = TempPath("sweep.drlt");
  ASSERT_TRUE(SaveTieredIndex(index, path).ok());
  const std::size_t runs_before = index.num_runs();
  index.Compact();  // retires every old run file
  ASSERT_LT(index.num_runs(), runs_before);
  ASSERT_TRUE(SaveTieredIndex(index, path).ok());
  // Only the manifest's runs survive on disk after the sweep.
  auto info = InspectTieredManifest(path);
  ASSERT_TRUE(info.ok());
  std::size_t run_files = 0;
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  const std::string prefix =
      std::string(std::filesystem::path(path).filename()) + ".run-";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename();
    if (name.rfind(prefix, 0) == 0) ++run_files;
  }
  EXPECT_EQ(run_files, info.value().runs.size());
  auto loaded = LoadTieredIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameAnswers(index, loaded.value());
  RemoveWithRuns(path);
}

TEST(TieredIoTest, CorruptManifestAndRunFilesAreRejected) {
  const TieredDualLayerIndex index = MakeLiveIndex(nullptr);
  const std::string path = TempPath("corrupt.drlt");
  ASSERT_TRUE(SaveTieredIndex(index, path).ok());

  const std::vector<std::uint8_t> pristine = testing::ReadFileBytes(path);
  ASSERT_FALSE(pristine.empty());
  // Flip one byte mid-manifest: checksummed, so the load must fail.
  std::vector<std::uint8_t> bytes = pristine;
  bytes[bytes.size() / 2] ^= 0x40;
  testing::WriteFileBytes(path, bytes);
  EXPECT_FALSE(LoadTieredIndex(path).ok());
  EXPECT_FALSE(InspectTieredManifest(path).ok());
  // Truncation at any point must fail too.
  bytes = pristine;
  bytes.resize(bytes.size() - 5);
  testing::WriteFileBytes(path, bytes);
  EXPECT_FALSE(LoadTieredIndex(path).ok());
  testing::WriteFileBytes(path, pristine);
  ASSERT_TRUE(LoadTieredIndex(path).ok());

  // A corrupt run snapshot is caught by the v2 section checksums.
  auto info = InspectTieredManifest(path);
  ASSERT_TRUE(info.ok());
  ASSERT_FALSE(info.value().runs.empty());
  const std::string run_path =
      (std::filesystem::path(path).parent_path() / info.value().runs[0].file)
          .string();
  const std::vector<std::uint8_t> run_pristine =
      testing::ReadFileBytes(run_path);
  std::vector<std::uint8_t> run_bytes = run_pristine;
  run_bytes[run_bytes.size() / 2] ^= 0x01;
  testing::WriteFileBytes(run_path, run_bytes);
  EXPECT_FALSE(LoadTieredIndex(path).ok());
  // A missing run file fails cleanly as well.
  testing::WriteFileBytes(run_path, run_pristine);
  ASSERT_TRUE(LoadTieredIndex(path).ok());
  std::filesystem::remove(run_path);
  EXPECT_FALSE(LoadTieredIndex(path).ok());
  RemoveWithRuns(path);
}

TEST(TieredIoTest, NonTieredFilesAreNotMistakenForManifests) {
  const std::string path = TempPath("not_tiered.bin");
  std::ofstream out(path, std::ios::binary);
  out << "DRLI someting else entirely";
  out.close();
  EXPECT_FALSE(IsTieredManifest(path));
  EXPECT_FALSE(LoadTieredIndex(path).ok());
  std::filesystem::remove(path);
}

// The full seeded crash-recovery sweep: every prefix of a generation's
// write order recovers the last durable generation, and every
// corruption of the manifest or a run file is rejected.
TEST(TieredIoTest, CrashRecoverySweepFindsNoViolations) {
  testing::TieredFaultOptions options;
  options.seed = 5;
  options.num_flips = 60;  // compact CI profile; the nightly raises it
  options.mutations_between = 32;
  const testing::TieredFaultReport report =
      testing::RunTieredFaultSweep(TempPath("crash_sweep_dir"), options);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.recovered_previous, 0u) << report.ToString();
  EXPECT_GT(report.recovered_current, 0u) << report.ToString();
  EXPECT_GT(report.rejected, 0u) << report.ToString();
}

}  // namespace
}  // namespace drli
