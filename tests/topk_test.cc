#include <algorithm>
#include <limits>
#include <numeric>

#include "gtest/gtest.h"

#include "common/random.h"
#include "data/generator.h"
#include "test_util.h"
#include "topk/query.h"
#include "topk/scan.h"
#include "topk/sorted_lists.h"
#include "topk/threshold_algorithm.h"

namespace drli {
namespace {

TEST(ScanTest, ToyDatasetTop5) {
  const PointSet pts = testing_util::MakeToyDataset();
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 5;
  const TopKResult result = Scan(pts, query);
  ASSERT_EQ(result.items.size(), 5u);
  // Example 1: top-5 = {a, b, f, d, e}; F(a) = 3.5.
  EXPECT_EQ(result.items[0].id, testing_util::kA);
  EXPECT_DOUBLE_EQ(result.items[0].score, 3.5);
  EXPECT_EQ(result.items[1].id, testing_util::kB);
  EXPECT_EQ(result.items[2].id, testing_util::kF);
  EXPECT_EQ(result.items[3].id, testing_util::kD);
  EXPECT_EQ(result.items[4].id, testing_util::kE);
  EXPECT_EQ(result.stats.tuples_evaluated, pts.size());
}

TEST(ScanTest, ScoresAscending) {
  const PointSet pts = GenerateIndependent(200, 3, 3);
  TopKQuery query;
  query.weights = {0.2, 0.3, 0.5};
  query.k = 50;
  const TopKResult result = Scan(pts, query);
  ASSERT_EQ(result.items.size(), 50u);
  for (std::size_t i = 1; i < result.items.size(); ++i) {
    EXPECT_LE(result.items[i - 1].score, result.items[i].score);
  }
}

TEST(ScanTest, KLargerThanRelation) {
  const PointSet pts = GenerateIndependent(10, 2, 4);
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 50;
  const TopKResult result = Scan(pts, query);
  EXPECT_EQ(result.items.size(), 10u);
}

TEST(FullScanIndexTest, InterfaceWorks) {
  const PointSet pts = GenerateIndependent(100, 2, 5);
  const FullScanIndex index(pts);
  EXPECT_EQ(index.name(), "SCAN");
  EXPECT_EQ(index.size(), 100u);
  TopKQuery query;
  query.weights = {0.4, 0.6};
  query.k = 7;
  EXPECT_EQ(index.Query(query).items.size(), 7u);
}

TEST(TopKHeapTest, KeepsKSmallest) {
  TopKHeap heap(3);
  EXPECT_EQ(heap.KthScore(), std::numeric_limits<double>::infinity());
  for (double s : {5.0, 1.0, 4.0, 2.0, 3.0}) {
    heap.Push(ScoredTuple{static_cast<TupleId>(s), s});
  }
  EXPECT_DOUBLE_EQ(heap.KthScore(), 3.0);
  const auto sorted = heap.SortedAscending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0].score, 1.0);
  EXPECT_DOUBLE_EQ(sorted[1].score, 2.0);
  EXPECT_DOUBLE_EQ(sorted[2].score, 3.0);
}

TEST(TopKHeapTest, TieBreaksById) {
  TopKHeap heap(2);
  heap.Push({7, 1.0});
  heap.Push({3, 1.0});
  heap.Push({5, 1.0});
  const auto sorted = heap.SortedAscending();
  EXPECT_EQ(sorted[0].id, 3u);
  EXPECT_EQ(sorted[1].id, 5u);
}

TEST(SortedListsTest, ListsAreSorted) {
  const PointSet pts = GenerateIndependent(100, 3, 6);
  std::vector<TupleId> members;
  for (TupleId i = 0; i < 50; ++i) members.push_back(i * 2);
  const SortedLists lists(pts, members);
  EXPECT_EQ(lists.dim(), 3u);
  EXPECT_EQ(lists.size(), 50u);
  for (std::size_t attr = 0; attr < 3; ++attr) {
    for (std::size_t pos = 1; pos < lists.size(); ++pos) {
      EXPECT_LE(lists.At(attr, pos - 1).value, lists.At(attr, pos).value);
    }
  }
}

TEST(ThresholdAlgorithmTest, FindsExactTopK) {
  const PointSet pts = GenerateIndependent(500, 4, 7);
  std::vector<TupleId> members(pts.size());
  std::iota(members.begin(), members.end(), 0);
  const SortedLists lists(pts, members);
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const Point w = rng.SimplexWeight(4);
    TopKHeap heap(10);
    std::size_t evaluated = 0;
    TaScanLayer(pts, lists, w, &heap, &evaluated);
    TopKQuery query;
    query.weights = w;
    query.k = 10;
    const TopKResult expected = Scan(pts, query);
    const auto got = heap.SortedAscending();
    ASSERT_EQ(got.size(), 10u);
    for (int i = 0; i < 10; ++i) {
      EXPECT_NEAR(got[i].score, expected.items[i].score, 1e-12);
    }
    // TA with early termination must not scan everything on random
    // data.
    EXPECT_LT(evaluated, pts.size());
  }
}

TEST(ThresholdAlgorithmTest, LayerLowerBound) {
  const PointSet pts = GenerateIndependent(200, 3, 9);
  std::vector<TupleId> members(pts.size());
  std::iota(members.begin(), members.end(), 0);
  const SortedLists lists(pts, members);
  Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    const Point w = rng.SimplexWeight(3);
    const double bound = LayerScoreLowerBound(lists, w);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      EXPECT_GE(Score(w, pts[i]) + 1e-12, bound);
    }
  }
}

TEST(ValidateQueryTest, AcceptsValidQuery) {
  TopKQuery query;
  query.weights = {0.25, 0.75};
  query.k = 3;
  EXPECT_TRUE(ValidateQuery(query, 2).ok());
}

TEST(ValidateQueryTest, RejectsBadQueriesRecoverably) {
  TopKQuery bad_dim;
  bad_dim.weights = {1.0};
  bad_dim.k = 1;
  const Status dim_status = ValidateQuery(bad_dim, 2);
  EXPECT_FALSE(dim_status.ok());
  EXPECT_NE(dim_status.message().find("dimensionality"), std::string::npos);

  // Zero weights are legal (boundary of the simplex) as long as one
  // entry stays positive; the all-zero vector is not.
  TopKQuery zero_weight;
  zero_weight.weights = {0.0, 1.0};
  zero_weight.k = 1;
  EXPECT_TRUE(ValidateQuery(zero_weight, 2).ok());

  TopKQuery all_zero;
  all_zero.weights = {0.0, 0.0};
  all_zero.k = 1;
  const Status all_zero_status = ValidateQuery(all_zero, 2);
  EXPECT_FALSE(all_zero_status.ok());
  EXPECT_NE(all_zero_status.message().find("positive"), std::string::npos);

  TopKQuery negative_weight;
  negative_weight.weights = {-0.5, 1.5};
  negative_weight.k = 1;
  const Status weight_status = ValidateQuery(negative_weight, 2);
  EXPECT_FALSE(weight_status.ok());
  EXPECT_NE(weight_status.message().find("non-negative"), std::string::npos);

  TopKQuery nan_weight;
  nan_weight.weights = {std::numeric_limits<double>::quiet_NaN(), 1.0};
  nan_weight.k = 1;
  EXPECT_FALSE(ValidateQuery(nan_weight, 2).ok());
}

}  // namespace
}  // namespace drli
