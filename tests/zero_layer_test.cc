#include <algorithm>
#include <cmath>
#include <numeric>

#include "gtest/gtest.h"

#include "common/random.h"
#include "core/zero_layer.h"
#include "data/generator.h"
#include "geometry/convex_hull_2d.h"
#include "test_util.h"

namespace drli {
namespace {

TEST(WeightRangeTableTest, ToyDatasetRanges) {
  const PointSet pts = testing_util::MakeToyDataset();
  const std::vector<TupleId> chain = {testing_util::kA, testing_util::kB,
                                      testing_util::kC};
  const WeightRangeTable table = WeightRangeTable::Build(pts, chain);
  ASSERT_EQ(table.breakpoints().size(), 2u);
  // Breakpoints strictly decreasing in (0, 1).
  EXPECT_GT(table.breakpoints()[0], table.breakpoints()[1]);
  EXPECT_LT(table.breakpoints()[0], 1.0);
  EXPECT_GT(table.breakpoints()[1], 0.0);
  // w1 -> 1 favours min-x (a); w1 -> 0 favours min-y (c).
  EXPECT_EQ(table.chain()[table.Lookup(0.999)], testing_util::kA);
  EXPECT_EQ(table.chain()[table.Lookup(0.001)], testing_util::kC);
  // w = (0.5, 0.5): top-1 is a (Example 1).
  EXPECT_EQ(table.chain()[table.Lookup(0.5)], testing_util::kA);
}

TEST(WeightRangeTableTest, LookupMatchesArgminOnChain) {
  const PointSet pts = GenerateAnticorrelated(2000, 2, 12);
  std::vector<std::int32_t> chain32 = LowerLeftChain2D(pts);
  std::vector<TupleId> chain(chain32.begin(), chain32.end());
  ASSERT_GE(chain.size(), 3u);
  const WeightRangeTable table = WeightRangeTable::Build(pts, chain);
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const Point w = rng.SimplexWeight(2);
    const TupleId via_table = table.chain()[table.Lookup(w[0])];
    // Brute-force argmin over the whole dataset.
    double best_score = Score(w, pts[0]);
    for (std::size_t i = 1; i < pts.size(); ++i) {
      best_score = std::min(best_score, Score(w, pts[i]));
    }
    EXPECT_NEAR(Score(w, pts[via_table]), best_score, 1e-9)
        << "w1=" << w[0];
  }
}

TEST(WeightRangeTableTest, SingleTupleChain) {
  PointSet pts(2);
  pts.Add({0.5, 0.5});
  const WeightRangeTable table = WeightRangeTable::Build(pts, {0});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Lookup(0.3), 0u);
  EXPECT_EQ(table.Lookup(0.9), 0u);
}

TEST(WeightRangeTableTest, BoundaryLookupAtBreakpoint) {
  PointSet pts(2);
  pts.Add({0.0, 1.0});
  pts.Add({1.0, 0.0});
  const WeightRangeTable table = WeightRangeTable::Build(pts, {0, 1});
  ASSERT_EQ(table.breakpoints().size(), 1u);
  EXPECT_DOUBLE_EQ(table.breakpoints()[0], 0.5);
  // At the exact tie either tuple is a valid top-1; Lookup must return
  // a valid position.
  const std::size_t pos = table.Lookup(0.5);
  EXPECT_LT(pos, 2u);
}

TEST(ClusteredZeroLayerTest, CornersCoverLayer) {
  const PointSet pts = GenerateAnticorrelated(1000, 4, 5);
  // Use the full set as "layer 1" for the test.
  std::vector<TupleId> layer(pts.size());
  std::iota(layer.begin(), layer.end(), 0);
  const ClusteredZeroLayer zero = BuildClusteredZeroLayer(pts, layer, 0, 7);
  ASSERT_FALSE(zero.pseudo.empty());
  ASSERT_EQ(zero.cluster_of.size(), layer.size());
  for (std::size_t i = 0; i < layer.size(); ++i) {
    EXPECT_TRUE(
        WeaklyDominates(zero.pseudo[zero.cluster_of[i]], pts[layer[i]]));
  }
  // Default cluster count: ceil(sqrt(n)).
  EXPECT_LE(zero.pseudo.size(),
            static_cast<std::size_t>(std::ceil(std::sqrt(1000.0))));
}

TEST(ClusteredZeroLayerTest, ExplicitClusterCount) {
  const PointSet pts = GenerateIndependent(300, 3, 6);
  std::vector<TupleId> layer(pts.size());
  std::iota(layer.begin(), layer.end(), 0);
  const ClusteredZeroLayer zero = BuildClusteredZeroLayer(pts, layer, 5, 7);
  EXPECT_LE(zero.pseudo.size(), 5u);
  EXPECT_GE(zero.pseudo.size(), 1u);
}

TEST(ClusteredZeroLayerTest, EmptyLayer) {
  const PointSet pts = GenerateIndependent(10, 2, 7);
  const ClusteredZeroLayer zero = BuildClusteredZeroLayer(pts, {}, 0, 7);
  EXPECT_TRUE(zero.pseudo.empty());
}

}  // namespace
}  // namespace drli
