#include <algorithm>
#include <set>

#include "gtest/gtest.h"

#include "core/dual_layer.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

using testing_util::MakeToyDataset;

// Structural invariants every built index must satisfy.
void CheckStructure(const DualLayerIndex& index) {
  const std::size_t n = index.points().size();
  const std::size_t total = index.num_nodes();

  // Every real tuple belongs to a coarse and a fine layer.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NE(index.fine_layer_of(static_cast<DualLayerIndex::NodeId>(i)),
              DualLayerIndex::kNoFineLayer)
        << "tuple " << i << " unassigned";
  }

  // Coarse edges connect consecutive coarse layers of real tuples (or
  // virtual -> first layer) and agree with dominance.
  for (std::size_t u = 0; u < total; ++u) {
    const auto node = static_cast<DualLayerIndex::NodeId>(u);
    for (const auto succ : index.coarse_out()[u]) {
      ASSERT_LT(succ, total);
      if (index.is_virtual(node)) {
        EXPECT_FALSE(index.is_virtual(succ));
        EXPECT_EQ(index.coarse_layer_of(succ), 0u);
        EXPECT_TRUE(
            WeaklyDominates(index.node_point(node), index.node_point(succ)));
      } else {
        EXPECT_EQ(index.coarse_layer_of(succ),
                  index.coarse_layer_of(node) + 1);
        EXPECT_TRUE(
            Dominates(index.node_point(node), index.node_point(succ)));
      }
    }
    // Fine edges go one fine layer down within the same coarse layer
    // and the same node space.
    for (const auto succ : index.fine_out()[u]) {
      ASSERT_LT(succ, total);
      EXPECT_EQ(index.is_virtual(node), index.is_virtual(succ));
      EXPECT_EQ(index.coarse_layer_of(succ), index.coarse_layer_of(node));
      EXPECT_EQ(index.fine_layer_of(succ), index.fine_layer_of(node) + 1);
    }
  }

  // In-degree bookkeeping is consistent with the edge lists.
  std::vector<std::uint32_t> in_degree(total, 0);
  std::vector<std::uint8_t> has_fine(total, 0);
  for (std::size_t u = 0; u < total; ++u) {
    for (const auto succ : index.coarse_out()[u]) ++in_degree[succ];
    for (const auto succ : index.fine_out()[u]) has_fine[succ] = 1;
  }
  for (std::size_t u = 0; u < total; ++u) {
    EXPECT_EQ(in_degree[u], index.coarse_in_degree()[u]) << "node " << u;
    EXPECT_EQ(has_fine[u], index.has_fine_in()[u]) << "node " << u;
  }

  // Initial nodes are exactly the unblocked ones.
  std::set<DualLayerIndex::NodeId> initial(index.initial_nodes().begin(),
                                           index.initial_nodes().end());
  for (std::size_t u = 0; u < total; ++u) {
    const bool expected = in_degree[u] == 0 && !has_fine[u];
    EXPECT_EQ(initial.count(static_cast<DualLayerIndex::NodeId>(u)) > 0,
              expected)
        << "node " << u;
  }
}

TEST(DualLayerBuildTest, ToyDatasetStructure) {
  DualLayerIndex index = DualLayerIndex::Build(MakeToyDataset());
  EXPECT_EQ(index.name(), "DL");
  EXPECT_EQ(index.build_stats().num_coarse_layers, 3u);
  // Fine split (Example 3): {a,b,c},{f,g} / {d,e,j},{i} / {h,k}.
  EXPECT_EQ(index.build_stats().num_fine_layers, 5u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kA), 0u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kB), 0u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kC), 0u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kF), 1u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kG), 1u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kD), 0u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kE), 0u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kJ), 0u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kI), 1u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kH), 0u);
  EXPECT_EQ(index.fine_layer_of(testing_util::kK), 0u);
  CheckStructure(index);

  // ∃-edges (Example 3): {a,b} -> f and {b,c} -> g.
  auto fine_sources = [&](TupleId target) {
    std::set<TupleId> sources;
    for (std::size_t u = 0; u < index.num_nodes(); ++u) {
      for (const auto succ : index.fine_out()[u]) {
        if (succ == target) sources.insert(static_cast<TupleId>(u));
      }
    }
    return sources;
  };
  EXPECT_EQ(fine_sources(testing_util::kF),
            (std::set<TupleId>{testing_util::kA, testing_util::kB}));
  EXPECT_EQ(fine_sources(testing_util::kG),
            (std::set<TupleId>{testing_util::kB, testing_util::kC}));

  // ∀-edges (Fig. 5): i's dominators are {a, f}; j's is {b};
  // h and k hang off j.
  auto coarse_sources = [&](TupleId target) {
    std::set<TupleId> sources;
    for (std::size_t u = 0; u < index.num_nodes(); ++u) {
      for (const auto succ : index.coarse_out()[u]) {
        if (succ == target) sources.insert(static_cast<TupleId>(u));
      }
    }
    return sources;
  };
  EXPECT_EQ(coarse_sources(testing_util::kI),
            (std::set<TupleId>{testing_util::kA, testing_util::kF}));
  EXPECT_EQ(coarse_sources(testing_util::kJ),
            (std::set<TupleId>{testing_util::kB, testing_util::kG}));
  EXPECT_EQ(coarse_sources(testing_util::kD),
            (std::set<TupleId>{testing_util::kA}));
  EXPECT_EQ(coarse_sources(testing_util::kE),
            (std::set<TupleId>{testing_util::kA}));
  EXPECT_EQ(coarse_sources(testing_util::kH),
            (std::set<TupleId>{testing_util::kJ}));
  EXPECT_EQ(coarse_sources(testing_util::kK),
            (std::set<TupleId>{testing_util::kJ}));
}

TEST(DualLayerBuildTest, RandomStructuresAllDims) {
  for (std::size_t d = 2; d <= 5; ++d) {
    for (Distribution dist :
         {Distribution::kIndependent, Distribution::kAnticorrelated}) {
      const PointSet pts = Generate(dist, 400, d, 20 + d);
      DualLayerIndex index = DualLayerIndex::Build(pts);
      CheckStructure(index);
      EXPECT_EQ(index.size(), 400u);
      EXPECT_GE(index.build_stats().num_fine_layers,
                index.build_stats().num_coarse_layers);
    }
  }
}

TEST(DualLayerBuildTest, ZeroLayer2DUsesWeightTable) {
  const PointSet pts = GenerateIndependent(500, 2, 3);
  DualLayerOptions options;
  options.build_zero_layer = true;
  DualLayerIndex index = DualLayerIndex::Build(pts, options);
  EXPECT_EQ(index.name(), "DL+");
  EXPECT_TRUE(index.uses_weight_table());
  EXPECT_EQ(index.build_stats().num_virtual, 0u);
  EXPECT_FALSE(index.weight_table().empty());
  CheckStructure(index);
}

TEST(DualLayerBuildTest, ZeroLayerHighDUsesClusters) {
  const PointSet pts = GenerateIndependent(500, 4, 3);
  DualLayerOptions options;
  options.build_zero_layer = true;
  DualLayerIndex index = DualLayerIndex::Build(pts, options);
  EXPECT_FALSE(index.uses_weight_table());
  EXPECT_GT(index.build_stats().num_virtual, 0u);
  CheckStructure(index);
  // First-layer tuples must all be guarded by the zero layer.
  for (std::size_t i = 0; i < index.size(); ++i) {
    const auto node = static_cast<DualLayerIndex::NodeId>(i);
    if (index.coarse_layer_of(node) == 0) {
      EXPECT_GT(index.coarse_in_degree()[node], 0u) << "tuple " << i;
    }
  }
}

TEST(DualLayerBuildTest, DisabledFineLayersMimicsDg) {
  const PointSet pts = GenerateIndependent(300, 3, 4);
  DualLayerOptions options;
  options.enable_fine_layers = false;
  DualLayerIndex index = DualLayerIndex::Build(pts, options);
  EXPECT_EQ(index.build_stats().num_fine_layers,
            index.build_stats().num_coarse_layers);
  EXPECT_EQ(index.build_stats().num_fine_edges, 0u);
  CheckStructure(index);
}

TEST(DualLayerBuildTest, AllFacetsPolicyAddsEdges) {
  const PointSet pts = GenerateAnticorrelated(300, 3, 5);
  DualLayerOptions single;
  DualLayerOptions all;
  all.eds_policy = EdsPolicy::kAllFacets;
  DualLayerIndex index_single = DualLayerIndex::Build(pts, single);
  DualLayerIndex index_all = DualLayerIndex::Build(pts, all);
  EXPECT_GE(index_all.build_stats().num_fine_edges,
            index_single.build_stats().num_fine_edges);
  CheckStructure(index_all);
}

TEST(DualLayerBuildTest, EmptyAndTinyInputs) {
  PointSet empty(3);
  DualLayerIndex e = DualLayerIndex::Build(empty);
  EXPECT_EQ(e.size(), 0u);
  TopKQuery query;
  query.weights = {0.3, 0.3, 0.4};
  query.k = 5;
  EXPECT_TRUE(e.Query(query).items.empty());

  PointSet one(3);
  one.Add({0.1, 0.2, 0.3});
  DualLayerIndex o = DualLayerIndex::Build(one);
  const TopKResult r = o.Query(query);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0].id, 0u);
}

TEST(DualLayerBuildTest, EdsCoverageMostlyComplete) {
  // The facet-based EDS search should cover nearly every tuple on
  // random data; fallbacks are counted, not hidden.
  const PointSet pts = GenerateAnticorrelated(600, 3, 6);
  DualLayerIndex index = DualLayerIndex::Build(pts);
  const auto& stats = index.build_stats();
  EXPECT_LT(stats.eds_uncovered, index.size() / 10)
      << "uncovered=" << stats.eds_uncovered;
}

}  // namespace
}  // namespace drli
