// Cross-version compatibility against checked-in golden snapshots.
//
// tests/golden/ holds one v1 and one v2 snapshot per recipe, produced
// by the deterministic build over a seeded generator. Loading them
// with today's loader and cross-checking answers against a freshly
// built index proves that (a) old v1 files written before the v2
// format existed keep loading, and (b) a future format change cannot
// silently orphan existing v2 files.
//
// Regenerate after an *intentional* format change with:
//   DRLI_REGEN_GOLDEN=1 ./snapshot_compat_test
// which rewrites the fixtures in the source tree.

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/dual_layer.h"
#include "core/serialization.h"
#include "data/generator.h"
#include "testing/check_index.h"
#include "test_util.h"

#ifndef DRLI_TEST_GOLDEN_DIR
#error "DRLI_TEST_GOLDEN_DIR must point at tests/golden"
#endif

namespace drli {
namespace {

struct GoldenRecipe {
  const char* name;
  Distribution dist;
  std::size_t n;
  std::size_t d;
  std::uint64_t seed;
  bool zero_layer;
};

// d=3 exercises the clustered pseudo-tuple zero layer; d=2 exercises
// the weight-range-table chain. Both shapes must survive either format.
constexpr GoldenRecipe kRecipes[] = {
    {"dl_plus_d3", Distribution::kAnticorrelated, 300, 3, 42, true},
    {"dl_plus_wt_d2", Distribution::kAnticorrelated, 300, 2, 43, true},
};

std::string GoldenPath(const GoldenRecipe& recipe, std::uint32_t version) {
  return std::string(DRLI_TEST_GOLDEN_DIR) + "/" + recipe.name + "_v" +
         std::to_string(version) + ".bin";
}

DualLayerIndex BuildRecipe(const GoldenRecipe& recipe) {
  const PointSet points =
      Generate(recipe.dist, recipe.n, recipe.d, recipe.seed);
  DualLayerOptions options;
  options.build_zero_layer = recipe.zero_layer;
  return DualLayerIndex::Build(points, options);
}

TEST(SnapshotCompatTest, GoldenFixturesLoadAndAnswerIdentically) {
  const bool regen = std::getenv("DRLI_REGEN_GOLDEN") != nullptr;
  for (const GoldenRecipe& recipe : kRecipes) {
    const DualLayerIndex fresh = BuildRecipe(recipe);
    for (const std::uint32_t version :
         {snapshot::kVersionV1, snapshot::kVersionV2}) {
      const std::string path = GoldenPath(recipe, version);
      if (regen) {
        SnapshotSaveOptions save;
        save.format_version = version;
        ASSERT_TRUE(SaveDualLayerIndex(fresh, path, save).ok()) << path;
      }
      ASSERT_TRUE(std::filesystem::exists(path))
          << path << " missing -- run with DRLI_REGEN_GOLDEN=1";

      auto loaded = LoadDualLayerIndex(path);
      ASSERT_TRUE(loaded.ok())
          << path << ": " << loaded.status().ToString();
      EXPECT_EQ(loaded.value().size(), recipe.n) << path;
      EXPECT_EQ(loaded.value().points().dim(), recipe.d) << path;
      EXPECT_EQ(loaded.value().uses_weight_table(),
                fresh.uses_weight_table())
          << path;
      EXPECT_TRUE(CheckIndex(loaded.value()).ok()) << path;

      // Answers from the fixture must match a from-scratch build.
      // Scores only, not traversal counters: a legitimate future build
      // change may alter the structure while answers stay correct.
      for (const TopKQuery& query : testing_util::RandomQueries(
               recipe.d, /*k=*/10, /*count=*/20, /*seed=*/recipe.seed)) {
        EXPECT_TRUE(testing_util::ResultsEquivalent(
            fresh.Query(query), loaded.value().Query(query)))
            << path;
      }
    }
  }
}

TEST(SnapshotCompatTest, GoldenInfoMatchesRecipe) {
  for (const GoldenRecipe& recipe : kRecipes) {
    for (const std::uint32_t version :
         {snapshot::kVersionV1, snapshot::kVersionV2}) {
      const std::string path = GoldenPath(recipe, version);
      if (!std::filesystem::exists(path)) {
        GTEST_SKIP() << path << " missing -- run with DRLI_REGEN_GOLDEN=1";
      }
      const auto info = InspectSnapshot(path);
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      EXPECT_EQ(info.value().version, version);
      EXPECT_EQ(info.value().num_points, recipe.n);
      EXPECT_EQ(info.value().dim, recipe.d);
      if (version == snapshot::kVersionV2) {
        for (const SnapshotSectionInfo& row : info.value().sections) {
          EXPECT_TRUE(row.crc_ok) << path << " section " << row.name;
        }
      }
    }
  }
}

}  // namespace
}  // namespace drli
