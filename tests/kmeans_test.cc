#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"

#include "cluster/kmeans.h"
#include "common/random.h"
#include "data/generator.h"

namespace drli {
namespace {

TEST(KMeansTest, AssignmentCoversAllPoints) {
  const PointSet pts = GenerateIndependent(300, 3, 1);
  KMeansOptions options;
  options.num_clusters = 10;
  const KMeansResult result = KMeans(pts, options);
  ASSERT_EQ(result.assignment.size(), pts.size());
  ASSERT_FALSE(result.centroids.empty());
  ASSERT_LE(result.centroids.size(), 10u);
  for (std::size_t a : result.assignment) {
    EXPECT_LT(a, result.centroids.size());
  }
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  PointSet pts(2);
  Rng rng(5);
  // Three tight blobs.
  const double centers[3][2] = {{0.1, 0.1}, {0.5, 0.9}, {0.9, 0.2}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) {
      pts.Add({centers[c][0] + rng.Uniform(-0.02, 0.02),
               centers[c][1] + rng.Uniform(-0.02, 0.02)});
    }
  }
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 3;
  const KMeansResult result = KMeans(pts, options);
  ASSERT_EQ(result.centroids.size(), 3u);
  // Every blob maps to a single cluster.
  for (int c = 0; c < 3; ++c) {
    const std::size_t expected = result.assignment[c * 40];
    for (int i = 0; i < 40; ++i) {
      EXPECT_EQ(result.assignment[c * 40 + i], expected) << "blob " << c;
    }
  }
}

TEST(KMeansTest, ClustersClampedToPointCount) {
  PointSet pts(2);
  pts.Add({0.1, 0.1});
  pts.Add({0.9, 0.9});
  KMeansOptions options;
  options.num_clusters = 50;
  const KMeansResult result = KMeans(pts, options);
  EXPECT_LE(result.centroids.size(), 2u);
}

TEST(KMeansTest, EmptyInput) {
  PointSet pts(2);
  const KMeansResult result = KMeans(pts, {});
  EXPECT_TRUE(result.assignment.empty());
  EXPECT_TRUE(result.centroids.empty());
}

TEST(KMeansTest, DuplicatePointsHandled) {
  PointSet pts(2);
  for (int i = 0; i < 20; ++i) pts.Add({0.5, 0.5});
  KMeansOptions options;
  options.num_clusters = 4;
  const KMeansResult result = KMeans(pts, options);
  ASSERT_FALSE(result.centroids.empty());
  for (std::size_t a : result.assignment) {
    EXPECT_LT(a, result.centroids.size());
  }
}

TEST(ClusterMinCornersTest, CornersWeaklyDominateMembers) {
  const PointSet pts = GenerateAnticorrelated(400, 4, 17);
  KMeansOptions options;
  options.num_clusters = 12;
  const KMeansResult result = KMeans(pts, options);
  const std::vector<Point> corners = ClusterMinCorners(pts, result);
  ASSERT_EQ(corners.size(), result.centroids.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(WeaklyDominates(corners[result.assignment[i]], pts[i]))
        << "point " << i;
  }
}

TEST(ClusterMinCornersTest, CornerIsTightPerCoordinate) {
  const PointSet pts = GenerateIndependent(200, 3, 23);
  KMeansOptions options;
  options.num_clusters = 5;
  const KMeansResult result = KMeans(pts, options);
  const std::vector<Point> corners = ClusterMinCorners(pts, result);
  // Each corner coordinate is attained by some member.
  for (std::size_t c = 0; c < corners.size(); ++c) {
    for (std::size_t j = 0; j < pts.dim(); ++j) {
      bool attained = false;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (result.assignment[i] == c &&
            std::fabs(pts.At(i, j) - corners[c][j]) < 1e-12) {
          attained = true;
          break;
        }
      }
      EXPECT_TRUE(attained) << "cluster " << c << " axis " << j;
    }
  }
}

}  // namespace
}  // namespace drli
