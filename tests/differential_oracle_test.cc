// Differential oracle: every registered index family must return the
// same (tie-broken) top-k as the brute-force reference, and the
// dual-resolution traversals must not evaluate more tuples than their
// single-resolution counterparts, on benchmark-style and tie-heavy
// adversarial datasets alike.

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"
#include "data/generator.h"
#include "testing/differential.h"
#include "test_util.h"

namespace drli {
namespace {

std::vector<TopKQuery> QueryBattery(std::size_t n, std::size_t d,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TopKQuery> queries;
  for (const std::size_t k :
       {std::size_t{0}, std::size_t{1}, std::size_t{5}, n / 2, n, n + 4}) {
    queries.push_back(TopKQuery{rng.SimplexWeight(d), k});
  }
  // Uniform weights maximize score collisions.
  queries.push_back(
      TopKQuery{Point(d, 1.0 / static_cast<double>(d)), n / 3 + 1});
  for (int i = 0; i < 8; ++i) {
    queries.push_back(
        TopKQuery{rng.SimplexWeight(d), 1 + rng.Index(n + 1)});
  }
  return queries;
}

void ExpectAllFamiliesAgree(const PointSet& points, std::uint64_t seed,
                            const std::string& what) {
  auto harness = DifferentialHarness::Build(points);
  ASSERT_TRUE(harness.ok()) << what << ": " << harness.status().ToString();
  EXPECT_GE(harness.value().num_families(), 7u);
  for (const TopKQuery& query :
       QueryBattery(points.size(), points.dim(), seed)) {
    const std::vector<std::string> failures =
        harness.value().CheckQuery(query);
    for (const std::string& failure : failures) {
      ADD_FAILURE() << what << ": " << failure;
    }
    if (!failures.empty()) return;
  }
}

// The four benchmark-style dataset shapes from the paper's evaluation
// grid: {independent, anticorrelated} x {d=2, d=4}.
TEST(DifferentialOracleTest, IndependentD2) {
  ExpectAllFamiliesAgree(Generate(Distribution::kIndependent, 300, 2, 21),
                         101, "ind d=2");
}

TEST(DifferentialOracleTest, IndependentD4) {
  ExpectAllFamiliesAgree(Generate(Distribution::kIndependent, 300, 4, 22),
                         102, "ind d=4");
}

TEST(DifferentialOracleTest, AnticorrelatedD2) {
  ExpectAllFamiliesAgree(
      Generate(Distribution::kAnticorrelated, 300, 2, 23), 103, "ant d=2");
}

TEST(DifferentialOracleTest, AnticorrelatedD4) {
  ExpectAllFamiliesAgree(
      Generate(Distribution::kAnticorrelated, 300, 4, 24), 104, "ant d=4");
}

TEST(DifferentialOracleTest, CorrelatedD3) {
  ExpectAllFamiliesAgree(Generate(Distribution::kCorrelated, 300, 3, 25),
                         105, "cor d=3");
}

// Tie-heavy adversarial shapes: exact duplicates and integer grids
// produce bitwise score ties that the canonical (score, id) order must
// resolve identically in every family.
TEST(DifferentialOracleTest, IntegerGridWithDuplicates) {
  PointSet points(3);
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) {
      for (int z = 0; z < 5; ++z) {
        points.Add({x / 5.0, y / 5.0, z / 5.0});
      }
    }
  }
  for (int i = 0; i < 30; ++i) points.Add(points.Materialize(i * 4));
  ExpectAllFamiliesAgree(points, 106, "grid+dups d=3");
}

TEST(DifferentialOracleTest, AllIdenticalTuples) {
  PointSet points(4);
  for (int i = 0; i < 48; ++i) points.Add({0.3, 0.4, 0.5, 0.6});
  ExpectAllFamiliesAgree(points, 107, "identical d=4");
}

TEST(DifferentialOracleTest, ToyDataset) {
  ExpectAllFamiliesAgree(testing_util::MakeToyDataset(), 108, "toy");
}

TEST(DifferentialOracleTest, TinyDatasets) {
  ExpectAllFamiliesAgree(PointSet(3), 109, "empty");
  PointSet one(2);
  one.Add({0.4, 0.6});
  ExpectAllFamiliesAgree(one, 110, "single");
  ExpectAllFamiliesAgree(Generate(Distribution::kIndependent, 7, 5, 26),
                         111, "n=7 d=5");
}

}  // namespace
}  // namespace drli
