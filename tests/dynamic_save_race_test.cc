// TSan target: a hot-snapshot save racing a reader pool. The serving
// front end persists generations with SaveTieredIndex while query
// workers keep answering from the same engine, so the const save path
// (run table walk + per-run serialization) and the const query path
// must be free of data races, and every snapshot written under load
// must reload to a bit-identical engine -- no torn generation.
//
// The CI tsan job builds and runs this binary explicitly; under plain
// builds it doubles as a functional save-under-load test.

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "gtest/gtest.h"

#include "common/random.h"
#include "core/dynamic_index.h"
#include "storage/tiered_io.h"
#include "test_util.h"

namespace drli {
namespace {

void ExpectIdenticalAnswers(const TopKIndex& expected_index,
                            const TopKIndex& actual_index,
                            const std::vector<TopKQuery>& queries,
                            const char* what) {
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const TopKResult expected = expected_index.Query(queries[i]);
    const TopKResult actual = actual_index.Query(queries[i]);
    ASSERT_EQ(expected.items.size(), actual.items.size())
        << what << " query " << i;
    for (std::size_t r = 0; r < expected.items.size(); ++r) {
      EXPECT_EQ(expected.items[r].id, actual.items[r].id)
          << what << " query " << i << " rank " << r;
      EXPECT_EQ(expected.items[r].score, actual.items[r].score)
          << what << " query " << i << " rank " << r;
    }
  }
}

TEST(DynamicSaveRaceTest, ConcurrentTieredSaveAndReaderPool) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("drli_save_race_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);

  DynamicIndexOptions options;
  options.memtable_capacity = 64;  // several runs + a live memtable
  DynamicDualLayerIndex index(3, options);
  Rng rng(7);

  const std::vector<TopKQuery> queries =
      testing_util::RandomQueries(3, /*k=*/5, /*count=*/16, /*seed=*/21);
  constexpr std::size_t kGenerations = 4;
  constexpr std::size_t kReaders = 4;

  for (std::size_t gen = 0; gen < kGenerations; ++gen) {
    // Single-threaded mutation burst between the concurrent phases:
    // the engine itself promises const-safety, not mutate-vs-read.
    for (int i = 0; i < 200; ++i) {
      const TupleId id =
          index.Insert(Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
      if (i % 5 == 0) index.Erase(id);
    }
    std::vector<TopKResult> expected;
    for (const TopKQuery& query : queries) {
      expected.push_back(index.Query(query));
    }

    // One saver vs. a reader pool, all over the same engine.
    const std::string path = dir + "/gen-" + std::to_string(gen) + ".drlt";
    std::atomic<bool> save_done{false};
    Status save_status;
    std::thread saver([&] {
      save_status = SaveTieredIndex(index.engine(), path);
      save_done.store(true);
    });
    std::vector<std::thread> readers;
    std::atomic<std::size_t> mismatches{0};
    for (std::size_t r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        std::size_t q = r;
        do {
          const TopKResult got = index.Query(queries[q % queries.size()]);
          const TopKResult& want = expected[q % queries.size()];
          if (got.items.size() != want.items.size()) {
            mismatches.fetch_add(1);
          } else {
            for (std::size_t i = 0; i < got.items.size(); ++i) {
              if (got.items[i].id != want.items[i].id ||
                  got.items[i].score != want.items[i].score) {
                mismatches.fetch_add(1);
              }
            }
          }
          ++q;
        } while (!save_done.load());
      });
    }
    saver.join();
    for (std::thread& reader : readers) reader.join();
    ASSERT_TRUE(save_status.ok()) << save_status.ToString();
    EXPECT_EQ(mismatches.load(), 0u) << "generation " << gen;

    // The snapshot written under load is not torn: it reloads cleanly
    // and answers exactly like the live engine it was taken from.
    auto loaded = LoadTieredIndex(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().size(), index.size());
    EXPECT_EQ(loaded.value().generation(), index.engine().generation());
    ExpectIdenticalAnswers(index, loaded.value(), queries, "reload");
  }

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace drli
