#include <algorithm>
#include <set>

#include "gtest/gtest.h"

#include "common/random.h"
#include "data/generator.h"
#include "geometry/convex_hull.h"
#include "geometry/convex_hull_2d.h"
#include "geometry/simplex_lp.h"

namespace drli {
namespace {

// Oracle: v is a vertex of conv(points) iff it cannot be written as a
// convex combination of the other points (LP feasibility).
bool IsVertexByLp(const PointSet& points, std::size_t v) {
  const std::size_t n = points.size();
  const std::size_t d = points.dim();
  LinearProgram lp(n - 1);
  std::vector<double> row(n - 1, 1.0);
  lp.AddConstraint(row, LpRelation::kEqual, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    std::size_t col = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == v) continue;
      row[col++] = points[i][j];
    }
    lp.AddConstraint(row, LpRelation::kEqual, points[v][j]);
  }
  return !lp.IsFeasible();
}

void CheckHullInvariants(const PointSet& points, const ConvexHull& hull,
                         bool sentinel_used) {
  const std::size_t d = points.dim();
  // Every facet has d vertices, a unit normal, and no point of the set
  // lies meaningfully above it.
  for (const HullFacet& f : hull.facets) {
    ASSERT_EQ(f.vertices.size(), d);
    EXPECT_NEAR(Norm(PointView(f.plane.normal)), 1.0, 1e-9);
    for (std::int32_t v : f.vertices) {
      EXPECT_NEAR(f.plane.SignedDistance(points[v]), 0.0, 1e-7);
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_LT(f.plane.SignedDistance(points[i]), 1e-6)
          << "point " << i << " above facet";
    }
    if (!sentinel_used) {
      // Neighbour links are symmetric and share a ridge.
      for (std::size_t s = 0; s < d; ++s) {
        const std::int32_t nb = f.neighbors[s];
        ASSERT_GE(nb, 0);
        ASSERT_LT(nb, static_cast<std::int32_t>(hull.facets.size()));
      }
    }
  }
}

TEST(ConvexHullTest, Simplex3D) {
  PointSet pts(3);
  pts.Add({0, 0, 0});
  pts.Add({1, 0, 0});
  pts.Add({0, 1, 0});
  pts.Add({0, 0, 1});
  pts.Add({0.2, 0.2, 0.2});  // interior
  ConvexHull hull;
  ASSERT_EQ(ComputeConvexHull(pts, {}, &hull), HullStatus::kOk);
  EXPECT_EQ(hull.facets.size(), 4u);
  EXPECT_EQ(std::set<std::int32_t>(hull.vertices.begin(), hull.vertices.end()),
            (std::set<std::int32_t>{0, 1, 2, 3}));
  CheckHullInvariants(pts, hull, false);
}

TEST(ConvexHullTest, Cube3D) {
  PointSet pts(3);
  for (int x = 0; x <= 1; ++x) {
    for (int y = 0; y <= 1; ++y) {
      for (int z = 0; z <= 1; ++z) {
        pts.Add({static_cast<double>(x), static_cast<double>(y),
                 static_cast<double>(z)});
      }
    }
  }
  pts.Add({0.5, 0.5, 0.5});
  ConvexHull hull;
  ASSERT_EQ(ComputeConvexHull(pts, {}, &hull), HullStatus::kOk);
  EXPECT_EQ(hull.vertices.size(), 8u);
  // A triangulated cube has 12 facets.
  EXPECT_EQ(hull.facets.size(), 12u);
  CheckHullInvariants(pts, hull, false);
}

TEST(ConvexHullTest, DegenerateInputsReported) {
  // Too few points.
  PointSet few(3);
  few.Add({0, 0, 0});
  few.Add({1, 0, 0});
  ConvexHull hull;
  EXPECT_EQ(ComputeConvexHull(few, {}, &hull), HullStatus::kDegenerate);

  // Coplanar 3-d points.
  PointSet flat(3);
  for (int i = 0; i < 20; ++i) {
    flat.Add({i * 0.05, 1.0 - i * 0.05, 0.5});
  }
  EXPECT_EQ(ComputeConvexHull(flat, {}, &hull), HullStatus::kDegenerate);
}

TEST(ConvexHullTest, MatchesMonotoneChainIn2D) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const PointSet pts = GenerateIndependent(300, 2, seed);
    ConvexHull hull;
    ASSERT_EQ(ComputeConvexHull(pts, {}, &hull), HullStatus::kOk);
    std::vector<std::int32_t> expected = ConvexHull2D(pts);
    std::sort(expected.begin(), expected.end());
    std::vector<std::int32_t> got = hull.vertices;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

TEST(ConvexHullTest, VerticesMatchLpOracleSmall3D) {
  for (std::uint64_t seed : {10u, 11u}) {
    const PointSet pts = GenerateIndependent(40, 3, seed);
    ConvexHull hull;
    ASSERT_EQ(ComputeConvexHull(pts, {}, &hull), HullStatus::kOk);
    const std::set<std::int32_t> hull_set(hull.vertices.begin(),
                                          hull.vertices.end());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      EXPECT_EQ(hull_set.count(static_cast<std::int32_t>(i)) > 0,
                IsVertexByLp(pts, i))
          << "point " << i << " seed " << seed;
    }
  }
}

TEST(ConvexHullTest, VerticesMatchLpOracleSmall4D) {
  const PointSet pts = GenerateIndependent(30, 4, 21);
  ConvexHull hull;
  ASSERT_EQ(ComputeConvexHull(pts, {}, &hull), HullStatus::kOk);
  const std::set<std::int32_t> hull_set(hull.vertices.begin(),
                                        hull.vertices.end());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(hull_set.count(static_cast<std::int32_t>(i)) > 0,
              IsVertexByLp(pts, i))
        << "point " << i;
  }
}

TEST(ConvexHullTest, AllPointsInsideHullFacets) {
  for (std::size_t d = 3; d <= 5; ++d) {
    const PointSet pts =
        GenerateAnticorrelated(400, d, 100 + d);
    ConvexHull hull;
    ASSERT_EQ(ComputeConvexHull(pts, {}, &hull), HullStatus::kOk) << d;
    CheckHullInvariants(pts, hull, false);
  }
}

TEST(ConvexHullTest, SentinelPreservesLowerFacets) {
  const PointSet pts = GenerateIndependent(200, 3, 7);
  ConvexHull plain, with_sentinel;
  ASSERT_EQ(ComputeConvexHull(pts, {}, &plain), HullStatus::kOk);
  ConvexHullOptions options;
  options.add_top_sentinel = true;
  ASSERT_EQ(ComputeConvexHull(pts, options, &with_sentinel), HullStatus::kOk);

  auto lower_facets = [](const ConvexHull& hull) {
    std::set<std::set<std::int32_t>> out;
    for (const HullFacet& f : hull.facets) {
      bool lower = true;
      for (double n : f.plane.normal) {
        if (n > 1e-9) lower = false;
      }
      if (lower) {
        out.insert(
            std::set<std::int32_t>(f.vertices.begin(), f.vertices.end()));
      }
    }
    return out;
  };
  EXPECT_EQ(lower_facets(plain), lower_facets(with_sentinel));
}

TEST(ConvexHullTest, VertexAdjacencySymmetric) {
  const PointSet pts = GenerateIndependent(100, 3, 13);
  ConvexHull hull;
  ASSERT_EQ(ComputeConvexHull(pts, {}, &hull), HullStatus::kOk);
  const auto adj = BuildVertexAdjacency(hull, pts.size());
  for (std::size_t v = 0; v < adj.size(); ++v) {
    for (std::int32_t u : adj[v]) {
      const auto& back = adj[u];
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(),
                                     static_cast<std::int32_t>(v)));
    }
  }
  // Non-vertices have no adjacency.
  const std::set<std::int32_t> hull_set(hull.vertices.begin(),
                                        hull.vertices.end());
  for (std::size_t v = 0; v < adj.size(); ++v) {
    if (!hull_set.count(static_cast<std::int32_t>(v))) {
      EXPECT_TRUE(adj[v].empty());
    }
  }
}

TEST(ConvexHullTest, LargerRandomHulls) {
  for (std::size_t d = 2; d <= 5; ++d) {
    const PointSet pts = GenerateIndependent(2000, d, 55 + d);
    ConvexHull hull;
    ASSERT_EQ(ComputeConvexHull(pts, {}, &hull), HullStatus::kOk) << d;
    ASSERT_FALSE(hull.facets.empty());
    // Spot-check containment on a sample of points.
    Rng rng(3);
    for (int s = 0; s < 50; ++s) {
      const std::size_t i = rng.Index(pts.size());
      for (const HullFacet& f : hull.facets) {
        EXPECT_LT(f.plane.SignedDistance(pts[i]), 1e-6);
      }
    }
  }
}

}  // namespace
}  // namespace drli
