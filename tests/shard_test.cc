// Sharded DL+ suite (ctest label "shard"): partition invariants,
// bit-identical scatter-gather merges against the unsharded index,
// shard pruning, budget certification across shard merges, manifest +
// per-shard persistence (round trip, fault injection, missing files),
// and thread-count determinism of the sharded build.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"
#include "core/index_registry.h"
#include "data/generator.h"
#include "shard/shard_io.h"
#include "shard/sharded_index.h"
#include "testing/differential.h"
#include "testing/fault_inject.h"
#include "testing/fuzz.h"
#include "topk/scan.h"
#include "test_util.h"

namespace drli {
namespace {

using testing_util::RandomQueries;

ShardedBuildOptions Opts(std::size_t shards, ShardPartitioner partitioner,
                         bool zero_layer = true) {
  ShardedBuildOptions options;
  options.num_shards = shards;
  options.partitioner = partitioner;
  options.shard_options.build_zero_layer = zero_layer;
  return options;
}

// Adversarial shapes the merge tie-break must survive: heavy exact
// duplicates (many equal scores across shards) and coplanar rows.
PointSet DuplicateHeavyDataset(std::size_t n, std::size_t d,
                               std::uint64_t seed) {
  Rng rng(seed);
  PointSet points(d);
  Point row(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || rng.Uniform() > 0.35) {
      for (std::size_t j = 0; j < d; ++j) {
        // Grid-snap so distinct tuples still collide in single
        // attributes (and often in full rows).
        row[j] = static_cast<double>(rng.Index(6)) / 5.0;
      }
    }
    points.Add(row);
  }
  return points;
}

PointSet CoplanarDataset(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  PointSet points(d);
  Point row(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j + 1 < d; ++j) {
      row[j] = rng.Uniform();
      sum += row[j];
    }
    // All points on the hyperplane sum(x) = d - 1 (clamped).
    row[d - 1] = std::max(0.0, static_cast<double>(d - 1) - sum);
    points.Add(row);
  }
  return points;
}

void ExpectBitIdentical(const TopKResult& expected, const TopKResult& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.items.size(), actual.items.size()) << what;
  for (std::size_t i = 0; i < expected.items.size(); ++i) {
    EXPECT_EQ(expected.items[i].id, actual.items[i].id)
        << what << " rank " << i;
    EXPECT_EQ(expected.items[i].score, actual.items[i].score)
        << what << " rank " << i;
  }
}

TEST(ShardPartitionTest, BothPartitionersCoverTheRelation) {
  const PointSet points = GenerateAnticorrelated(257, 3, 5);
  for (const ShardPartitioner partitioner :
       {ShardPartitioner::kRandom, ShardPartitioner::kHyperplane}) {
    for (const std::size_t shards : {1ul, 2ul, 7ul, 16ul}) {
      const auto members =
          PartitionPoints(points, shards, partitioner, 42);
      ASSERT_EQ(members.size(), shards);
      std::vector<int> seen(points.size(), 0);
      for (const auto& shard : members) {
        for (std::size_t i = 0; i < shard.size(); ++i) {
          if (i > 0) {
            EXPECT_LT(shard[i - 1], shard[i]) << "ascending ids";
          }
          ASSERT_LT(shard[i], points.size());
          ++seen[shard[i]];
        }
      }
      for (const int count : seen) EXPECT_EQ(count, 1);
      if (partitioner == ShardPartitioner::kHyperplane) {
        // Equal slabs: sizes differ by at most one.
        for (const auto& shard : members) {
          EXPECT_GE(shard.size(), points.size() / shards);
          EXPECT_LE(shard.size(), points.size() / shards + 1);
        }
      }
    }
  }
}

TEST(ShardPartitionTest, DeterministicAcrossCalls) {
  const PointSet points = GenerateIndependent(100, 2, 3);
  const auto a =
      PartitionPoints(points, 4, ShardPartitioner::kRandom, 7);
  const auto b =
      PartitionPoints(points, 4, ShardPartitioner::kRandom, 7);
  EXPECT_EQ(a, b);
  const auto c =
      PartitionPoints(points, 4, ShardPartitioner::kRandom, 8);
  EXPECT_NE(a, c) << "seed must matter";
}

// The acceptance bar of the scatter-gather merge: for any shard count
// and either partitioner the sharded answer is bit-identical (ids and
// scores) to the unsharded DL+ answer, including on duplicate-heavy
// and coplanar data where exact score ties cross shard boundaries.
TEST(ShardedQueryTest, BitIdenticalToUnshardedDlPlus) {
  struct Dataset {
    std::string name;
    PointSet points;
  };
  std::vector<Dataset> datasets;
  datasets.push_back({"ant_d3", GenerateAnticorrelated(400, 3, 11)});
  datasets.push_back({"dup_d2", DuplicateHeavyDataset(300, 2, 12)});
  datasets.push_back({"dup_d4", DuplicateHeavyDataset(260, 4, 13)});
  datasets.push_back({"coplanar_d3", CoplanarDataset(220, 3, 14)});

  for (const Dataset& dataset : datasets) {
    DualLayerOptions dl_options;
    dl_options.build_zero_layer = true;
    const DualLayerIndex reference =
        DualLayerIndex::Build(dataset.points, dl_options);
    for (const std::size_t shards : {1ul, 2ul, 4ul, 7ul}) {
      for (const ShardPartitioner partitioner :
           {ShardPartitioner::kRandom, ShardPartitioner::kHyperplane}) {
        const ShardedDualLayerIndex sharded = ShardedDualLayerIndex::Build(
            dataset.points, Opts(shards, partitioner));
        Rng rng(31);
        for (std::size_t q = 0; q < 24; ++q) {
          TopKQuery query;
          query.weights = rng.SimplexWeight(dataset.points.dim());
          query.k = 1 + rng.Index(2 * shards + 20);
          const TopKResult expected = reference.Query(query);
          const TopKResult actual = sharded.Query(query);
          ExpectBitIdentical(expected, actual,
                             dataset.name + "/" + sharded.name());
          EXPECT_TRUE(actual.complete());
          EXPECT_EQ(actual.certified_prefix, actual.items.size());
          EXPECT_GE(actual.stats.shards_touched, 1u);
          EXPECT_LE(actual.stats.shards_touched, shards);
        }
      }
    }
  }
}

TEST(ShardedQueryTest, DegenerateQueriesAndValidation) {
  const PointSet points = GenerateIndependent(40, 3, 21);
  const ShardedDualLayerIndex index = ShardedDualLayerIndex::Build(
      points, Opts(5, ShardPartitioner::kHyperplane));

  TopKQuery query;
  query.weights = {0.2, 0.3, 0.5};
  query.k = 0;
  EXPECT_TRUE(index.Query(query).complete());
  EXPECT_TRUE(index.Query(query).items.empty());

  query.k = 1000;  // k > n returns everything
  const TopKResult all = index.Query(query);
  EXPECT_TRUE(all.complete());
  EXPECT_EQ(all.items.size(), points.size());

  query.weights = {0.5, 0.5};  // wrong dimensionality
  const TopKResult bad = index.Query(query);
  EXPECT_EQ(bad.termination, Termination::kInvalidQuery);
  EXPECT_FALSE(bad.error.empty());

  query.weights = {-0.1, 0.6, 0.5};  // negative weight
  EXPECT_EQ(index.Query(query).termination, Termination::kInvalidQuery);
}

TEST(ShardedQueryTest, EmptyAndTinyRelations) {
  const PointSet empty(3);
  const ShardedDualLayerIndex index = ShardedDualLayerIndex::Build(
      empty, Opts(4, ShardPartitioner::kRandom));
  TopKQuery query;
  query.weights = {0.3, 0.3, 0.4};
  query.k = 5;
  const TopKResult result = index.Query(query);
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(result.items.empty());

  // More shards than tuples: some shards are empty, the rest hold one
  // tuple each; the answer still matches the scan.
  const PointSet tiny = GenerateIndependent(3, 3, 2);
  const ShardedDualLayerIndex sparse = ShardedDualLayerIndex::Build(
      tiny, Opts(7, ShardPartitioner::kHyperplane));
  const TopKResult got = sparse.Query(query);
  const TopKResult want = Scan(tiny, query);
  ASSERT_EQ(got.items.size(), want.items.size());
  for (std::size_t i = 0; i < got.items.size(); ++i) {
    EXPECT_EQ(got.items[i].id, want.items[i].id);
  }
}

// Hyperplane slabs order along the diagonal, which every positive
// weight vector correlates with -- so small-k queries must open only a
// fraction of the shards. Random shards have no such structure and
// serve as the contrast.
TEST(ShardedQueryTest, HyperplanePruningEngages) {
  const PointSet points = GenerateIndependent(4000, 3, 77);
  const std::size_t shards = 16;
  const ShardedDualLayerIndex hyper = ShardedDualLayerIndex::Build(
      points, Opts(shards, ShardPartitioner::kHyperplane));
  const std::vector<TopKQuery> queries = RandomQueries(3, 10, 40, 5);
  std::size_t touched = 0;
  for (const TopKQuery& query : queries) {
    const TopKResult result = hyper.Query(query);
    EXPECT_TRUE(result.complete());
    touched += result.stats.shards_touched;
  }
  const double mean = static_cast<double>(touched) /
                      static_cast<double>(queries.size());
  // k=10 out of n=4000 lives in the first slab or two.
  EXPECT_LT(mean, static_cast<double>(shards) / 2) << "mean " << mean;
  EXPECT_GE(mean, 1.0);
}

TEST(ShardedQueryTest, QueryBatchMatchesSerialLoop) {
  const PointSet points = GenerateAnticorrelated(600, 4, 9);
  const ShardedDualLayerIndex index = ShardedDualLayerIndex::Build(
      points, Opts(4, ShardPartitioner::kHyperplane));
  const std::vector<TopKQuery> queries = RandomQueries(4, 15, 32, 17);
  const std::vector<TopKResult> batch = index.QueryBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const TopKResult serial = index.Query(queries[i]);
    ExpectBitIdentical(serial, batch[i], "batch slot " + std::to_string(i));
    EXPECT_EQ(serial.stats.tuples_evaluated, batch[i].stats.tuples_evaluated);
    EXPECT_EQ(serial.stats.shards_touched, batch[i].stats.shards_touched);
    EXPECT_EQ(serial.accessed, batch[i].accessed);
  }
}

// Budget certification across shard merges: for every step index of
// the sharded traversal, a max_evals budget tripping there must yield
// a certified prefix that is a correct prefix of the exact answer.
// CheckBudgetedQuery is the same oracle the fuzzer uses.
TEST(ShardedBudgetTest, CertifiedPrefixSoundAtEveryCutPoint) {
  const PointSet points = DuplicateHeavyDataset(180, 3, 42);
  StatusOr<DifferentialHarness> harness = DifferentialHarness::Build(points);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();

  Rng rng(8);
  std::size_t partials = 0;
  for (std::size_t q = 0; q < 4; ++q) {
    TopKQuery base;
    base.weights = rng.SimplexWeight(3);
    base.k = 12;
    std::size_t cost = 0;
    for (const auto& [kind, kind_cost] :
         harness.value().UnbudgetedCosts(base)) {
      if (kind == "sdl+4h") cost = kind_cost;
    }
    ASSERT_GT(cost, 0u);
    for (std::size_t step = 1; step <= cost; ++step) {
      TopKQuery budgeted = base;
      budgeted.budget.max_evals = step;
      const std::vector<std::string> failures =
          harness.value().CheckBudgetedQuery(budgeted, "sdl+4h", &partials);
      EXPECT_TRUE(failures.empty())
          << "step " << step << ": " << failures.front();
      if (!failures.empty()) return;
    }
  }
  EXPECT_GT(partials, 0u) << "budgets never fired";
}

TEST(ShardedBudgetTest, CancellationStopsTheMerge) {
  const PointSet points = GenerateAnticorrelated(500, 3, 33);
  const ShardedDualLayerIndex index = ShardedDualLayerIndex::Build(
      points, Opts(8, ShardPartitioner::kRandom));
  TopKQuery query;
  query.weights = {0.4, 0.3, 0.3};
  query.k = 50;
  CancelToken token;
  token.Cancel();
  query.budget.cancel = &token;
  const TopKResult result = index.Query(query);
  EXPECT_EQ(result.termination, Termination::kCancelled);
  EXPECT_EQ(result.certified_prefix, 0u);
}

// ---------------------------------------------------------------------------
// Persistence

class ShardIoTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) const {
    return ::testing::TempDir() + "shard_io_" + name;
  }

  static void RemoveAll(const std::string& manifest, std::size_t shards) {
    std::remove(manifest.c_str());
    for (std::size_t s = 0; s < shards; ++s) {
      std::remove(ShardFilePath(manifest, s).c_str());
    }
  }
};

TEST_F(ShardIoTest, ManifestRoundTrip) {
  const PointSet points = GenerateAnticorrelated(300, 3, 19);
  const ShardedDualLayerIndex index = ShardedDualLayerIndex::Build(
      points, Opts(5, ShardPartitioner::kHyperplane));
  const std::string path = Path("round_trip.idx");
  ASSERT_TRUE(SaveShardedIndex(index, path).ok());

  const StatusOr<ShardManifestInfo> info = InspectShardManifest(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().num_shards, 5u);
  EXPECT_EQ(info.value().total_points, points.size());
  EXPECT_EQ(info.value().dim, 3u);
  EXPECT_EQ(info.value().partitioner, ShardPartitioner::kHyperplane);
  EXPECT_EQ(info.value().name, index.name());

  for (const bool mmap : {true, false}) {
    ShardedLoadOptions load_options;
    load_options.snapshot.prefer_mmap = mmap;
    StatusOr<ShardedDualLayerIndex> loaded =
        LoadShardedIndex(path, load_options);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().name(), index.name());
    EXPECT_EQ(loaded.value().num_shards(), index.num_shards());
    EXPECT_EQ(loaded.value().partition_seed(), index.partition_seed());
    for (std::size_t s = 0; s < index.num_shards(); ++s) {
      EXPECT_EQ(loaded.value().shard_members(s), index.shard_members(s));
    }
    for (const TopKQuery& query : RandomQueries(3, 9, 16, 3)) {
      ExpectBitIdentical(index.Query(query), loaded.value().Query(query),
                         mmap ? "mmap load" : "owned load");
    }
  }
  RemoveAll(path, 5);
}

TEST_F(ShardIoTest, IsShardManifestProbe) {
  const PointSet points = GenerateIndependent(50, 2, 4);
  const ShardedDualLayerIndex index = ShardedDualLayerIndex::Build(
      points, Opts(2, ShardPartitioner::kRandom));
  const std::string path = Path("probe.idx");
  ASSERT_TRUE(SaveShardedIndex(index, path).ok());
  EXPECT_TRUE(IsShardManifest(path));
  // A per-shard snapshot is a plain v2 file, not a manifest.
  EXPECT_FALSE(IsShardManifest(ShardFilePath(path, 0)));
  EXPECT_FALSE(IsShardManifest(Path("missing.idx")));
  RemoveAll(path, 2);
}

// Every shard file is a standard v2 snapshot, so the existing fault
// sweep applies unchanged: every mutant of every shard must be
// rejected by the (checksummed) loader.
TEST_F(ShardIoTest, PerShardSnapshotFaultSweep) {
  const PointSet points = GenerateAnticorrelated(150, 3, 23);
  const ShardedDualLayerIndex index = ShardedDualLayerIndex::Build(
      points, Opts(3, ShardPartitioner::kHyperplane));
  const std::string path = Path("fault_sweep.idx");
  ASSERT_TRUE(SaveShardedIndex(index, path).ok());
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    testing::FaultSweepOptions options;
    options.seed = 100 + s;
    options.num_flips = 300;
    const testing::FaultSweepReport report =
        testing::RunSnapshotFaultSweep(ShardFilePath(path, s), options);
    EXPECT_TRUE(report.ok()) << "shard " << s << ": " << report.ToString();
    EXPECT_EQ(report.undetected, 0u) << "shard " << s;
  }
  RemoveAll(path, 3);
}

// Exhaustive manifest mutation: flipping any single bit anywhere in
// the manifest -- header, name, member lists, trailer -- must fail the
// load (the whole file is covered by the checksum; a corrupted magic
// fails the magic gate instead).
TEST_F(ShardIoTest, EveryManifestByteFlipRejected) {
  const PointSet points = GenerateIndependent(60, 2, 29);
  const ShardedDualLayerIndex index = ShardedDualLayerIndex::Build(
      points, Opts(3, ShardPartitioner::kRandom));
  const std::string path = Path("manifest_flip.idx");
  ASSERT_TRUE(SaveShardedIndex(index, path).ok());
  const std::vector<std::uint8_t> pristine = testing::ReadFileBytes(path);
  ASSERT_FALSE(pristine.empty());

  std::size_t rejected = 0;
  for (std::size_t pos = 0; pos < pristine.size(); ++pos) {
    std::vector<std::uint8_t> mutant = pristine;
    mutant[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
    testing::WriteFileBytes(path, mutant);
    const StatusOr<ShardedDualLayerIndex> loaded = LoadShardedIndex(path);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << pos << " loaded OK";
    if (!loaded.ok()) ++rejected;
  }
  EXPECT_EQ(rejected, pristine.size());

  // And truncation at every prefix length of the (small) header.
  for (std::size_t len = 0; len < 52 && len < pristine.size(); ++len) {
    testing::WriteFileBytes(
        path, std::vector<std::uint8_t>(pristine.begin(),
                                        pristine.begin() + len));
    EXPECT_FALSE(LoadShardedIndex(path).ok()) << "truncation to " << len;
  }

  testing::WriteFileBytes(path, pristine);
  ASSERT_TRUE(LoadShardedIndex(path).ok()) << "pristine must still load";
  RemoveAll(path, 3);
}

TEST_F(ShardIoTest, MissingShardFileFailsCleanly) {
  const PointSet points = GenerateIndependent(80, 3, 31);
  const ShardedDualLayerIndex index = ShardedDualLayerIndex::Build(
      points, Opts(4, ShardPartitioner::kHyperplane));
  const std::string path = Path("missing_shard.idx");
  ASSERT_TRUE(SaveShardedIndex(index, path).ok());
  ASSERT_EQ(std::remove(ShardFilePath(path, 2).c_str()), 0);
  const StatusOr<ShardedDualLayerIndex> loaded = LoadShardedIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError)
      << loaded.status().ToString();
  RemoveAll(path, 4);
}

// The sharded build is bit-identical across thread counts: the
// partition is a pure function of the data, every shard builds
// serially, and the merge is order-independent -- so the serialized
// bytes (every shard file and the manifest) must match exactly.
TEST_F(ShardIoTest, BuildIsBitIdenticalAcrossThreadCounts) {
  const PointSet points = GenerateAnticorrelated(400, 4, 47);
  // Same basename in two directories: the manifest embeds the relative
  // shard file names, so different basenames would trivially differ.
  const std::string dir_serial = Path("threads1.d");
  const std::string dir_parallel = Path("threads8.d");
  std::filesystem::create_directories(dir_serial);
  std::filesystem::create_directories(dir_parallel);
  const std::string path_serial = dir_serial + "/index.idx";
  const std::string path_parallel = dir_parallel + "/index.idx";

  ShardedBuildOptions serial = Opts(6, ShardPartitioner::kHyperplane);
  serial.build_threads = 1;
  ShardedBuildOptions parallel = serial;
  parallel.build_threads = 8;

  ASSERT_TRUE(SaveShardedIndex(ShardedDualLayerIndex::Build(points, serial),
                               path_serial)
                  .ok());
  ASSERT_TRUE(SaveShardedIndex(ShardedDualLayerIndex::Build(points, parallel),
                               path_parallel)
                  .ok());

  for (std::size_t s = 0; s < 6; ++s) {
    EXPECT_EQ(testing::ReadFileBytes(ShardFilePath(path_serial, s)),
              testing::ReadFileBytes(ShardFilePath(path_parallel, s)))
        << "shard " << s << " bytes differ across thread counts";
  }
  // Manifests embed no timings, so they must match byte for byte too.
  EXPECT_EQ(testing::ReadFileBytes(path_serial),
            testing::ReadFileBytes(path_parallel));
  RemoveAll(path_serial, 6);
  RemoveAll(path_parallel, 6);
}

TEST_F(ShardIoTest, RoundTripWithEmptyShards) {
  const PointSet tiny = GenerateIndependent(3, 2, 53);
  const ShardedDualLayerIndex index = ShardedDualLayerIndex::Build(
      tiny, Opts(5, ShardPartitioner::kRandom));
  const std::string path = Path("empty_shards.idx");
  ASSERT_TRUE(SaveShardedIndex(index, path).ok());
  StatusOr<ShardedDualLayerIndex> loaded = LoadShardedIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  TopKQuery query;
  query.weights = {0.6, 0.4};
  query.k = 3;
  ExpectBitIdentical(index.Query(query), loaded.value().Query(query),
                     "empty-shard round trip");
  RemoveAll(path, 5);
}

// The fuzzer's own entry point with the sharded family enrolled in the
// default kind list -- one pinned seed here; the corpus seed and the
// nightly run cover breadth.
TEST(ShardedFuzzTest, PinnedSeedClean) {
  // Seed 964: d=5 n=137 cor coplanar=109 dup=20 -- most of the relation
  // is one score-tie plane, so the partition splits exact-tie classes
  // across shard boundaries and the merge must re-interleave them in
  // canonical (score, id) order.
  FuzzOptions options;
  options.dynamic = false;
  options.queries_per_case = 4;
  const FuzzCaseResult result = RunFuzzCase(964, options);
  EXPECT_TRUE(result.ok()) << result.failures.front();
}

}  // namespace
}  // namespace drli
