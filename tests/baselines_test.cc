#include "gtest/gtest.h"

#include "baselines/dominant_graph.h"
#include "baselines/hybrid_layer.h"
#include "baselines/onion.h"
#include "data/generator.h"
#include "test_util.h"

namespace drli {
namespace {

using testing_util::ExpectMatchesScan;
using testing_util::MakeToyDataset;

TEST(DominantGraphTest, ToyDatasetCorrect) {
  DominantGraphIndex index = DominantGraphIndex::Build(MakeToyDataset());
  EXPECT_EQ(index.name(), "DG");
  EXPECT_EQ(index.build_stats().num_layers, 3u);
  const PointSet pts = MakeToyDataset();
  for (std::size_t k = 1; k <= pts.size(); ++k) {
    ExpectMatchesScan(index, pts, k, 5, 100 + k);
  }
}

TEST(DominantGraphTest, FirstLayerCompleteAccess) {
  // Without the zero layer, DG must score all of L1 on every query.
  const PointSet pts = GenerateIndependent(500, 3, 1);
  DominantGraphIndex index = DominantGraphIndex::Build(pts);
  const std::size_t layer1 = index.layers()[0].size();
  for (const TopKQuery& query : testing_util::RandomQueries(3, 1, 10, 2)) {
    EXPECT_GE(index.Query(query).stats.tuples_evaluated, layer1);
  }
}

TEST(DominantGraphTest, ZeroLayerReducesFirstLayerAccess) {
  const PointSet pts = GenerateAnticorrelated(800, 4, 2);
  DominantGraphOptions plus_options;
  plus_options.build_zero_layer = true;
  DominantGraphIndex dg = DominantGraphIndex::Build(pts);
  DominantGraphIndex dg_plus = DominantGraphIndex::Build(pts, plus_options);
  EXPECT_EQ(dg_plus.name(), "DG+");
  EXPECT_GT(dg_plus.build_stats().num_virtual, 0u);
  std::size_t cost = 0, cost_plus = 0;
  for (const TopKQuery& query : testing_util::RandomQueries(4, 10, 20, 3)) {
    const TopKResult r = dg.Query(query);
    const TopKResult rp = dg_plus.Query(query);
    EXPECT_TRUE(testing_util::ResultsEquivalent(r, rp));
    cost += r.stats.tuples_evaluated;
    cost_plus += rp.stats.tuples_evaluated;
  }
  EXPECT_LT(cost_plus, cost);
}

struct BaselineCase {
  Distribution dist;
  std::size_t n;
  std::size_t d;
  std::size_t k;
};

class BaselineCorrectnessTest
    : public ::testing::TestWithParam<BaselineCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineCorrectnessTest,
    ::testing::Values(BaselineCase{Distribution::kIndependent, 400, 2, 10},
                      BaselineCase{Distribution::kIndependent, 400, 3, 10},
                      BaselineCase{Distribution::kIndependent, 400, 4, 25},
                      BaselineCase{Distribution::kAnticorrelated, 300, 2, 10},
                      BaselineCase{Distribution::kAnticorrelated, 300, 3, 15},
                      BaselineCase{Distribution::kAnticorrelated, 300, 4, 10},
                      BaselineCase{Distribution::kCorrelated, 400, 3, 10}));

TEST_P(BaselineCorrectnessTest, DominantGraphMatchesScan) {
  const BaselineCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.d * 13 + c.k);
  DominantGraphIndex index = DominantGraphIndex::Build(pts);
  ExpectMatchesScan(index, pts, c.k, 10, c.k);
}

TEST_P(BaselineCorrectnessTest, DominantGraphPlusMatchesScan) {
  const BaselineCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.d * 13 + c.k);
  DominantGraphOptions options;
  options.build_zero_layer = true;
  DominantGraphIndex index = DominantGraphIndex::Build(pts, options);
  ExpectMatchesScan(index, pts, c.k, 10, c.k + 1);
}

TEST_P(BaselineCorrectnessTest, OnionMatchesScan) {
  const BaselineCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.d * 13 + c.k);
  OnionIndex index = OnionIndex::Build(pts);
  ExpectMatchesScan(index, pts, c.k, 10, c.k + 2);
}

TEST_P(BaselineCorrectnessTest, HybridLayerMatchesScan) {
  const BaselineCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.d * 13 + c.k);
  HybridLayerOptions hl;
  hl.tight_threshold = false;
  HybridLayerIndex index = HybridLayerIndex::Build(pts, hl);
  EXPECT_EQ(index.name(), "HL");
  ExpectMatchesScan(index, pts, c.k, 10, c.k + 3);
}

TEST_P(BaselineCorrectnessTest, HybridLayerPlusMatchesScan) {
  const BaselineCase& c = GetParam();
  const PointSet pts = Generate(c.dist, c.n, c.d, c.d * 13 + c.k);
  HybridLayerIndex index = HybridLayerIndex::Build(pts);
  EXPECT_EQ(index.name(), "HL+");
  ExpectMatchesScan(index, pts, c.k, 10, c.k + 4);
}

TEST(OnionTest, CompleteAccessCostIsLayerPrefix) {
  const PointSet pts = GenerateIndependent(500, 3, 4);
  OnionOptions options;
  options.early_stop = false;
  OnionIndex index = OnionIndex::Build(pts, options);
  const auto& layers = index.layers();
  for (std::size_t k : {1u, 3u, 7u}) {
    std::size_t expected = 0;
    for (std::size_t i = 0; i < std::min(k, layers.size()); ++i) {
      expected += layers[i].size();
    }
    TopKQuery query;
    query.weights = {0.3, 0.3, 0.4};
    query.k = k;
    EXPECT_EQ(index.Query(query).stats.tuples_evaluated, expected);
  }
}

TEST(OnionTest, EarlyStopNeverCostsMore) {
  const PointSet pts = GenerateIndependent(500, 3, 5);
  OnionOptions eager, lazy;
  lazy.early_stop = false;
  OnionIndex a = OnionIndex::Build(pts, eager);
  OnionIndex b = OnionIndex::Build(pts, lazy);
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 10, 6)) {
    const TopKResult ra = a.Query(query);
    const TopKResult rb = b.Query(query);
    EXPECT_TRUE(testing_util::ResultsEquivalent(rb, ra));
    EXPECT_LE(ra.stats.tuples_evaluated, rb.stats.tuples_evaluated);
  }
}

TEST(HybridLayerTest, TightThresholdNeverCostsMore) {
  const PointSet pts = GenerateAnticorrelated(400, 3, 7);
  HybridLayerOptions plain, tight;
  plain.tight_threshold = false;
  HybridLayerIndex hl = HybridLayerIndex::Build(pts, plain);
  HybridLayerIndex hl_plus = HybridLayerIndex::Build(pts, tight);
  for (const TopKQuery& query : testing_util::RandomQueries(3, 10, 20, 8)) {
    const TopKResult r = hl.Query(query);
    const TopKResult rp = hl_plus.Query(query);
    EXPECT_TRUE(testing_util::ResultsEquivalent(r, rp));
    EXPECT_LE(rp.stats.tuples_evaluated, r.stats.tuples_evaluated);
  }
}

TEST(HybridLayerTest, SelectiveWithinLayer) {
  // TA inside a layer should not touch every tuple of the layer on
  // random data with small k.
  const PointSet pts = GenerateIndependent(2000, 2, 9);
  HybridLayerIndex index = HybridLayerIndex::Build(pts);
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 1;
  const TopKResult r = index.Query(query);
  EXPECT_LT(r.stats.tuples_evaluated, index.layers()[0].size() + 1);
}

TEST(MaxLayersTest, CappedIndexesRejectLargeK) {
  const PointSet pts = GenerateIndependent(400, 3, 10);
  OnionOptions onion_options;
  onion_options.max_layers = 5;
  OnionIndex onion = OnionIndex::Build(pts, onion_options);
  ASSERT_TRUE(onion.build_stats().truncated);
  TopKQuery query;
  query.weights = {0.3, 0.3, 0.4};
  query.k = 3;
  EXPECT_EQ(onion.Query(query).items.size(), 3u);  // fine below the cap
  query.k = 100;
  const TopKResult rejected = onion.Query(query);
  EXPECT_EQ(rejected.termination, Termination::kInvalidQuery);
  EXPECT_NE(rejected.error.find("layer budget"), std::string::npos);
  EXPECT_TRUE(rejected.items.empty());
}

TEST(BaselineEdgeCasesTest, TinyRelations) {
  PointSet pts(2);
  pts.Add({0.5, 0.5});
  pts.Add({0.2, 0.8});
  TopKQuery query;
  query.weights = {0.5, 0.5};
  query.k = 2;

  DominantGraphIndex dg = DominantGraphIndex::Build(pts);
  EXPECT_EQ(dg.Query(query).items.size(), 2u);
  OnionIndex onion = OnionIndex::Build(pts);
  EXPECT_EQ(onion.Query(query).items.size(), 2u);
  HybridLayerIndex hl = HybridLayerIndex::Build(pts);
  EXPECT_EQ(hl.Query(query).items.size(), 2u);
}

}  // namespace
}  // namespace drli
