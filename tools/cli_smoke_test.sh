#!/usr/bin/env bash
# End-to-end smoke test for the drli CLI: generate -> build -> stats ->
# query -> compare -> serve, asserting exit codes and key output
# fragments. $2 is the drli_client binary for the serving case.
set -euo pipefail

CLI="$1"
CLIENT="${2:-}"
WORK="$(mktemp -d)"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

"$CLI" generate --dist=ant --n=2000 --d=3 --seed=9 --out="$WORK/data.csv" \
  | grep -q "wrote 2000 x 3 ant tuples"

BUILD_OUT="$("$CLI" build --input="$WORK/data.csv" --kind=dl+ --out="$WORK/index.bin")"
echo "$BUILD_OUT" | grep -q "saved to"
# Per-phase build observability.
echo "$BUILD_OUT" | grep -q "build phases: skyline="
echo "$BUILD_OUT" | grep -q "fine_peel="
echo "$BUILD_OUT" | grep -qE "eds: lp_calls=[0-9]+ bbox_rejects=[0-9]+"
echo "$BUILD_OUT" | grep -qE "coarse edges: pairs_pruned=[0-9]+ pairs_tested=[0-9]+"

"$CLI" stats --index="$WORK/index.bin" | grep -q "coarse layers:"

"$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=5 \
  | grep -q "top-5"

# Kernel dispatch is reported, and --no-simd forces the scalar target
# with an identical answer.
"$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=5 \
  | grep -qE "kernel=(scalar|avx2|neon)"
"$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=5 --no-simd \
  | grep -q "kernel=scalar"
"$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=5 \
  | grep "tuple " >"$WORK/simd_items.txt"
"$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=5 --no-simd \
  | grep "tuple " >"$WORK/scalar_items.txt"
diff "$WORK/simd_items.txt" "$WORK/scalar_items.txt"
"$CLI" inspect --index="$WORK/index.bin" | grep -q "kernel dispatch:"

"$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=5 --explain \
  | grep -q "access breakdown"

"$CLI" query --input="$WORK/data.csv" --kind=hl+ --weights=0.5,0.3,0.2 --k=3 \
  | grep -q "HL+ top-3"

# Budgeted query: an unsatisfiable step budget yields a certified
# partial result and still exits zero (partial is a valid answer).
"$CLI" query --input="$WORK/data.csv" --kind=scan --weights=0.5,0.3,0.2 \
  --k=5 --max-evals=7 | grep -q "stopped on step-budget"

"$CLI" compare --input="$WORK/data.csv" --kinds=scan,dg,dl+ --k=10 --queries=5 \
  | grep -q "DL+"

"$CLI" generate --dist=ind --n=300 --d=2 --seed=3 --out="$WORK/d2.csv" >/dev/null
"$CLI" sweep --input="$WORK/d2.csv" --k=3 --reverse=0 | grep -q "weight-space partition"

# Query scenarios: constrained (box pushdown with the pruning counter),
# diversified (greedy with utility column), reverse (interval answer).
"$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=5 \
  --box=0.1:0.9,:0.8,0.2: | grep -q "constrained top-5"
"$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=5 \
  --box=0.1:0.9,:0.8,0.2: | grep -qE "boxes pruned"
"$CLI" query --input="$WORK/data.csv" --kind=tdl+64 --weights=0.2,0.3,0.5 \
  --k=5 --box=0.1:0.9,:0.8,0.2: | grep -q "constrained top-5"
"$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=4 \
  --lambda=0.5 | grep -q "utility"
"$CLI" query --input="$WORK/d2.csv" --k=3 --reverse=0 \
  | grep -q "reverse top-3 of tuple 0"
# An inverted box is legal and empty; a malformed box is rejected.
"$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=5 \
  --box=0.9:0.1,:,: | grep -q "constrained top-5"
if "$CLI" query --index="$WORK/index.bin" --weights=0.2,0.3,0.5 --k=5 \
    --box=0.1:0.9 2>/dev/null; then
  echo "expected failure for wrong-arity box" >&2
  exit 1
fi
# Reverse needs a 2-d relation: recoverable rejection on 3-d.
if "$CLI" query --index="$WORK/index.bin" --k=3 --reverse=0 2>/dev/null; then
  echo "expected failure for 3-d reverse query" >&2
  exit 1
fi

# Invariant checker: saved index and on-the-fly builds both pass.
"$CLI" check --index="$WORK/index.bin" | grep -q "OK"
"$CLI" check --input="$WORK/data.csv" --kind=dl --samples=8 | grep -q "OK"
"$CLI" check --input="$WORK/d2.csv" --kind=dl+ | grep -q "OK"

# Sharded index: build a manifest + per-shard snapshots, inspect the
# partition, query through the scatter-gather path, and audit shards.
SHARD_OUT="$("$CLI" build --input="$WORK/data.csv" --kind=dl+ --shards=4 \
  --partitioner=hyperplane --out="$WORK/sharded.bin")"
echo "$SHARD_OUT" | grep -q "built SDL+x4h over 2000 tuples"
echo "$SHARD_OUT" | grep -q "saved manifest to"
test -f "$WORK/sharded.bin.shard-0003"
"$CLI" inspect --index="$WORK/sharded.bin" | grep -q "shard manifest v1"
"$CLI" inspect --index="$WORK/sharded.bin" | grep -q "partitioner=hyperplane"
"$CLI" inspect --index="$WORK/sharded.bin.shard-0000" \
  | grep -q "kernel dispatch:"
"$CLI" query --index="$WORK/sharded.bin" --weights=0.2,0.3,0.5 --k=5 \
  | grep -qE "shards touched [1-4]/4"
"$CLI" check --index="$WORK/sharded.bin" | grep -q "OK"
# The sharded merge is bit-identical to the unsharded answer.
"$CLI" query --index="$WORK/sharded.bin" --weights=0.2,0.3,0.5 --k=5 \
  | grep "tuple " >"$WORK/sharded_items.txt"
diff "$WORK/simd_items.txt" "$WORK/sharded_items.txt"
# A manifest pointing at a missing shard file fails cleanly.
mv "$WORK/sharded.bin.shard-0002" "$WORK/sharded.bin.shard-0002.gone"
if "$CLI" query --index="$WORK/sharded.bin" --weights=0.2,0.3,0.5 --k=5 \
    2>/dev/null; then
  echo "expected failure for missing shard file" >&2
  exit 1
fi
mv "$WORK/sharded.bin.shard-0002.gone" "$WORK/sharded.bin.shard-0002"
# Sharded indexes are v2-only.
if "$CLI" build --input="$WORK/data.csv" --kind=dl+ --shards=2 --format=v1 \
    --out="$WORK/x.bin" 2>/dev/null; then
  echo "expected failure for sharded v1 snapshot" >&2
  exit 1
fi

# Tiered dynamic index: stream the relation through the insert path,
# persist the generation (manifest + run snapshots), inspect the run
# table, and query through the multi-run merge.
TIERED_OUT="$("$CLI" build --input="$WORK/data.csv" --kind=tdl+256 \
  --out="$WORK/tiered.drlt")"
echo "$TIERED_OUT" | grep -q "built DL+lsm over 2000 tuples"
echo "$TIERED_OUT" | grep -q "saved manifest to"
# Run files are named by immutable uid; compaction may have retired
# uid 0, so take the first surviving run file from the manifest table.
RUN_FILE="$WORK/$("$CLI" inspect --index="$WORK/tiered.drlt" \
  | awk '$4 ~ /\.run-/ { print $4; exit }')"
test -f "$RUN_FILE"
"$CLI" inspect --index="$WORK/tiered.drlt" | grep -q "tiered manifest v1"
"$CLI" inspect --index="$WORK/tiered.drlt" | grep -qE "generation=[0-9]+"
"$CLI" inspect --index="$RUN_FILE" | grep -q "kernel dispatch:"
"$CLI" query --index="$WORK/tiered.drlt" --weights=0.2,0.3,0.5 --k=5 \
  | grep -qE "runs opened [0-9]+/[0-9]+"
# The tiered merge is bit-identical to the single-index answer.
"$CLI" query --index="$WORK/tiered.drlt" --weights=0.2,0.3,0.5 --k=5 \
  | grep "tuple " >"$WORK/tiered_items.txt"
diff "$WORK/simd_items.txt" "$WORK/tiered_items.txt"
# A manifest pointing at a missing run file fails cleanly.
mv "$RUN_FILE" "$RUN_FILE.gone"
if "$CLI" query --index="$WORK/tiered.drlt" --weights=0.2,0.3,0.5 --k=5 \
    2>/dev/null; then
  echo "expected failure for missing run file" >&2
  exit 1
fi
mv "$RUN_FILE.gone" "$RUN_FILE"

# Error paths exit non-zero.
if "$CLI" build --input="$WORK/data.csv" --kind=onion --out="$WORK/x.bin" 2>/dev/null; then
  echo "expected failure for non-serializable kind" >&2
  exit 1
fi
if "$CLI" query --index="$WORK/missing.bin" --weights=0.5,0.5 --k=1 2>/dev/null; then
  echo "expected failure for missing index" >&2
  exit 1
fi
if "$CLI" sweep --input="$WORK/data.csv" --k=3 2>/dev/null; then
  echo "expected failure for 3-d sweep" >&2
  exit 1
fi
if "$CLI" frobnicate 2>/dev/null; then
  echo "expected usage failure" >&2
  exit 1
fi
if "$CLI" check --input="$WORK/data.csv" --kind=onion 2>/dev/null; then
  echo "expected failure for non-checkable kind" >&2
  exit 1
fi
# A malformed query (negative weight survives normalization) is a
# recoverable rejection: non-zero exit, no crash.
if "$CLI" query --index="$WORK/index.bin" --weights=-0.2,0.6,0.6 --k=3 \
    2>"$WORK/err.txt"; then
  echo "expected failure for negative weight" >&2
  exit 1
fi
grep -q "invalid-query" "$WORK/err.txt"

# Serving front end: serve a directory, query over the socket, hot-swap
# the generation with `publish`, and drain on SIGTERM.
if [ -n "$CLIENT" ]; then
  mkdir "$WORK/srv"
  cp "$WORK/index.bin" "$WORK/srv/gen-1.v2"
  "$CLI" generate --dist=ind --n=2000 --d=3 --seed=17 --out="$WORK/data3.csv" \
    >/dev/null
  "$CLI" build --input="$WORK/data3.csv" --kind=dl+ \
    --out="$WORK/srv/gen-2.v2" >/dev/null
  "$CLI" publish --dir="$WORK/srv" --snapshot=gen-1.v2 \
    | grep -q "published"
  "$CLI" serve --dir="$WORK/srv" --port=0 --port-file="$WORK/port.txt" \
    --reload-poll=0.05 >"$WORK/serve.log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$WORK/port.txt" ] && break
    sleep 0.1
  done
  [ -s "$WORK/port.txt" ]
  PORT="$(cat "$WORK/port.txt")"
  "$CLIENT" health --port="$PORT" | grep -q "^serving generation=1"
  # The wire answer is bit-identical to the local one.
  "$CLIENT" query --port="$PORT" --weights=0.2,0.3,0.5 --k=5 \
    | tee "$WORK/wire.txt" | grep -q "generation 1"
  grep "tuple " "$WORK/wire.txt" >"$WORK/wire_items.txt"
  diff "$WORK/simd_items.txt" "$WORK/wire_items.txt"
  # Scenario routing and budget propagation over the wire.
  "$CLIENT" query --port="$PORT" --weights=0.2,0.3,0.5 --k=5 \
    --box=0.1:0.9,:0.8,0.2: | grep -q "tuple "
  "$CLIENT" query --port="$PORT" --weights=0.2,0.3,0.5 --k=5 --max-evals=7 \
    | grep -q "partial result"
  # A malformed query is a recoverable wire rejection, not a crash.
  if "$CLIENT" query --port="$PORT" --weights=0.5,0.5 --k=5 2>"$WORK/err.txt"
  then
    echo "expected wire rejection for 2-d weights on 3-d index" >&2
    exit 1
  fi
  grep -q "dimensionality mismatch" "$WORK/err.txt"
  # Hot reload: publish gen-2, force a poll, and re-query -- the swap
  # happens with the server up and the old connection draining.
  "$CLI" publish --dir="$WORK/srv" --snapshot=gen-2.v2 >/dev/null
  "$CLIENT" reload --port="$PORT" | grep -qE "^(swapped|unchanged)"
  "$CLIENT" inspect --port="$PORT" | grep -q "snapshot gen-2.v2"
  "$CLIENT" query --port="$PORT" --weights=0.2,0.3,0.5 --k=5 \
    | grep -q "generation 2"
  # Graceful drain: SIGTERM answers in-flight work, then exits 0.
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  SERVER_PID=""
  grep -q "draining" "$WORK/serve.log"
  grep -qE "served [0-9]+ queries" "$WORK/serve.log"
fi

echo "CLI smoke test passed"
