// drli — command-line front end for the DRLI library.
//
//   drli generate --dist=ant --n=20000 --d=4 --seed=1 --out=data.csv
//   drli build    --input=data.csv --kind=dl+ --out=index.bin
//   drli stats    --index=index.bin
//   drli inspect  --index=index.bin
//   drli query    --index=index.bin --weights=0.3,0.3,0.4 --k=10
//   drli query    --input=data.csv --kind=hl+ --weights=0.5,0.5 --k=5
//   drli query    --index=index.bin --weights=0.5,0.5 --k=10
//                 --deadline-ms=0.5 --max-evals=2000
//                 # budgeted query: prints the certified partial answer
//                 # if either cap fires mid-traversal
//   drli compare  --input=data.csv --kinds=dg,dg+,dl,dl+ --k=10 --queries=50
//   drli sweep    --input=data2d.csv --k=5 --reverse=42
//   drli check    --index=index.bin
//   drli check    --input=data.csv --kind=dl+ --samples=32
//
// Serving front end (DESIGN.md §10): `serve` answers queries over a
// loopback/TCP socket from a serving directory whose CURRENT file
// names the generation to serve; `publish` atomically repoints
// CURRENT (the running server picks the new generation up without
// dropping in-flight queries). SIGTERM/SIGINT drain gracefully.
//
//   drli serve    --dir=/srv/drli --port=7071
//                 [--port-file=port.txt]     # written once bound
//                 [--max-in-flight=256] [--deadline-ms=50]
//                 [--loops=2] [--workers=4]
//   drli publish  --dir=/srv/drli --snapshot=gen-000002.v2
//
// Query scenarios (DESIGN.md "Query scenarios"):
//
//   drli query    --index=index.bin --weights=0.5,0.5 --k=10
//                 --box=0.2:0.8,:0.5
//                 # constrained top-k inside the attribute box; each
//                 # component is lo:hi, an empty side is unbounded
//   drli query    --index=index.bin --weights=0.5,0.5 --k=10
//                 --lambda=0.7 --pool-factor=4
//                 # diversified greedy re-ranking (score + lambda * sim)
//   drli query    --index=index.bin --k=5 --reverse=42
//                 # reverse top-k: the w1 intervals on which tuple 42
//                 # is in the top-k (2-d dl+ indexes only)
//
// Tiered dynamic index: --kind=tdl+ (optionally tdl+<M> for a memtable
// of M rows) builds the LSM-style engine by streaming the relation
// through its insert path and writes a generation manifest plus one
// run snapshot per sealed run; inspect/query detect tiered manifests
// automatically and inspect prints the run table.
//
//   drli build    --input=data.csv --kind=tdl+128 --out=index.drlt
//   drli inspect  --index=index.drlt        # generation + run table
//   drli query    --index=index.drlt --weights=0.3,0.3,0.4 --k=10
//                 # prints "runs opened R_o/R" next to the timings
//
// Sharded serving (DESIGN.md §7): --shards=S at build time partitions
// the relation and writes one snapshot per shard plus a manifest;
// inspect/query/check detect manifest files automatically.
//
//   drli build    --input=data.csv --kind=dl+ --shards=16
//                 --partitioner=hyperplane --shard-seed=42 --out=index.bin
//   drli inspect  --index=index.bin         # manifest + per-shard table
//   drli query    --index=index.bin --weights=0.3,0.3,0.4 --k=10
//                 # prints "shards touched S_t/S" next to the timings
//   drli check    --index=index.bin         # audits every shard
//
// `build`/`stats` operate on the serializable dual-resolution index;
// `query` and `compare` accept any index kind (built on the fly from
// CSV when --index is not given).
//
// `--no-simd` (any command) forces the scalar batch kernels, same as
// the DRLI_NO_SIMD environment variable; `query` and `inspect` report
// the active kernel dispatch target.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "core/dual_layer.h"
#include "core/index_registry.h"
#include "core/rank_sweep_2d.h"
#include "core/serialization.h"
#include "core/tiered_index.h"
#include "data/csv.h"
#include "data/generator.h"
#include "scenarios/constrained.h"
#include "scenarios/diversified.h"
#include "scenarios/reverse_topk.h"
#include "server/server.h"
#include "server/serving_engine.h"
#include "shard/shard_io.h"
#include "shard/sharded_index.h"
#include "storage/tiered_io.h"
#include "testing/check_index.h"

namespace drli {
namespace {

using Flags = std::map<std::string, std::string>;

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "true";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string GetFlag(const Flags& flags, const std::string& key,
                    const std::string& fallback = "") {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

std::size_t GetSizeFlag(const Flags& flags, const std::string& key,
                        std::size_t fallback) {
  const std::string value = GetFlag(flags, key);
  return value.empty() ? fallback : std::strtoul(value.c_str(), nullptr, 10);
}

std::vector<std::string> SplitComma(const std::string& value) {
  std::vector<std::string> parts;
  std::stringstream ss(value);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

int Usage() {
  std::fprintf(stderr,
               "usage: drli <generate|build|stats|inspect|query|compare|"
               "sweep|check|serve|publish>"
               " [--flags]\n"
               "see the header of tools/drli_cli.cc for examples\n");
  return 2;
}

StatusOr<Dataset> LoadInput(const Flags& flags) {
  const std::string path = GetFlag(flags, "input");
  if (path.empty()) {
    return Status::InvalidArgument("--input=<csv> is required");
  }
  return LoadCsv(path);
}

int CmdGenerate(const Flags& flags) {
  const std::string dist_name = GetFlag(flags, "dist", "ind");
  Distribution dist;
  if (dist_name == "ind") {
    dist = Distribution::kIndependent;
  } else if (dist_name == "ant") {
    dist = Distribution::kAnticorrelated;
  } else if (dist_name == "cor") {
    dist = Distribution::kCorrelated;
  } else {
    std::fprintf(stderr, "unknown --dist=%s (ind|ant|cor)\n",
                 dist_name.c_str());
    return 2;
  }
  const std::size_t n = GetSizeFlag(flags, "n", 10000);
  const std::size_t d = GetSizeFlag(flags, "d", 4);
  const std::size_t seed = GetSizeFlag(flags, "seed", 42);
  const std::string out = GetFlag(flags, "out");
  if (out.empty()) {
    std::fprintf(stderr, "--out=<csv> is required\n");
    return 2;
  }
  const Dataset dataset(Generate(dist, n, d, seed));
  if (const Status status = SaveCsv(dataset, out); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu %s tuples to %s\n", n, d, dist_name.c_str(),
              out.c_str());
  return 0;
}

int CmdBuild(const Flags& flags) {
  auto dataset = LoadInput(flags);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::string kind = GetFlag(flags, "kind", "dl+");
  if (kind != "dl" && kind != "dl+" && kind.rfind("tdl+", 0) != 0) {
    std::fprintf(stderr,
                 "only dl, dl+ and tdl+ support serialization; got %s\n",
                 kind.c_str());
    return 2;
  }
  const std::string out = GetFlag(flags, "out");
  if (out.empty()) {
    std::fprintf(stderr, "--out=<index file> is required\n");
    return 2;
  }
  if (kind.rfind("tdl+", 0) == 0) {
    // The registry streams the relation through the insert path, so
    // the saved state genuinely spans sealed runs plus a (possibly
    // partial) memtable -- the shape a live dynamic deployment has.
    IndexBuildConfig config;
    config.kind = kind;
    config.zero_layer_clusters = GetSizeFlag(flags, "clusters", 0);
    Stopwatch timer;
    auto built = BuildIndex(config, dataset.value().points());
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    const auto* tiered =
        static_cast<const TieredDualLayerIndex*>(built.value().get());
    std::printf("built %s over %zu tuples in %.2fs "
                "(%zu runs, %zu memtable rows, %zu seals, %zu compactions)\n",
                tiered->name().c_str(), tiered->size(),
                timer.ElapsedSeconds(), tiered->num_runs(),
                tiered->memtable_size(), tiered->seal_count(),
                tiered->compaction_count());
    if (const Status status = SaveTieredIndex(*tiered, out); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved manifest to %s (+%zu run snapshots)\n", out.c_str(),
                tiered->num_runs());
    return 0;
  }
  DualLayerOptions options;
  options.build_zero_layer = (kind == "dl+");
  options.zero_layer_clusters = GetSizeFlag(flags, "clusters", 0);

  const std::size_t shards = GetSizeFlag(flags, "shards", 0);
  const std::string format = GetFlag(flags, "format", "v2");
  if (shards > 0) {
    if (format == "v1") {
      std::fprintf(stderr,
                   "sharded indexes require the v2 snapshot format; "
                   "drop --format=v1 or --shards\n");
      return 2;
    }
    auto partitioner =
        ParseShardPartitioner(GetFlag(flags, "partitioner", "hyperplane"));
    if (!partitioner.ok()) {
      std::fprintf(stderr, "%s\n", partitioner.status().ToString().c_str());
      return 2;
    }
    ShardedBuildOptions sharded;
    sharded.num_shards = shards;
    sharded.partitioner = partitioner.value();
    sharded.partition_seed = GetSizeFlag(flags, "shard-seed", 42);
    sharded.shard_options = options;
    const ShardedDualLayerIndex index =
        ShardedDualLayerIndex::Build(dataset.value().points(), sharded);
    const ShardedBuildStats& bs = index.build_stats();
    std::printf("built %s over %zu tuples in %.2fs\n", index.name().c_str(),
                index.size(), bs.total_seconds);
    std::printf(
        "shards: %zu (%s split, seed %llu), %zu..%zu tuples each\n",
        index.num_shards(), ShardPartitionerName(index.partitioner()),
        static_cast<unsigned long long>(index.partition_seed()),
        bs.min_shard_points, bs.max_shard_points);
    std::printf(
        "build phases: partition=%.3fs shard_wall=%.3fs shard_cpu=%.3fs "
        "(parallel speedup %.2fx)\n",
        bs.partition_seconds, bs.build_wall_seconds, bs.build_cpu_seconds,
        bs.build_wall_seconds > 0.0
            ? bs.build_cpu_seconds / bs.build_wall_seconds
            : 1.0);
    if (const Status status = SaveShardedIndex(index, out); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved manifest to %s (+%zu shard snapshots)\n", out.c_str(),
                index.num_shards());
    return 0;
  }

  Stopwatch timer;
  const DualLayerIndex index =
      DualLayerIndex::Build(dataset.value().points(), options);
  std::printf("built %s over %zu tuples in %.2fs\n", index.name().c_str(),
              index.size(), timer.ElapsedSeconds());
  const DualLayerBuildStats& bs = index.build_stats();
  std::printf(
      "build phases: skyline=%.3fs fine_peel=%.3fs coarse_edge=%.3fs "
      "zero_layer=%.3fs finalize=%.3fs\n",
      bs.skyline_seconds, bs.fine_peel_seconds, bs.coarse_edge_seconds,
      bs.zero_layer_seconds, bs.finalize_seconds);
  std::printf(
      "eds: lp_calls=%zu bbox_rejects=%zu member_hits=%zu (%.3fs)\n",
      bs.eds_lp_calls, bs.eds_bbox_rejects, bs.eds_member_hits,
      bs.eds_seconds);
  std::printf("coarse edges: pairs_pruned=%zu pairs_tested=%zu\n",
              bs.coarse_pairs_pruned, bs.coarse_pairs_tested);
  SnapshotSaveOptions save;
  if (format == "v1") {
    save.format_version = snapshot::kVersionV1;
  } else if (format != "v2") {
    std::fprintf(stderr, "unknown --format=%s (v1|v2)\n", format.c_str());
    return 2;
  }
  if (const Status status = SaveDualLayerIndex(index, out, save);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved to %s (%s)\n", out.c_str(), format.c_str());
  return 0;
}

// Shard-manifest metadata: the partition summary and a per-shard table.
// Validates the manifest checksum but does not open the shard files;
// run `drli inspect` on an individual .shard-NNNN file (a standard v2
// snapshot) to audit its sections.
int InspectManifest(const std::string& path) {
  const auto inspected = InspectShardManifest(path);
  if (!inspected.ok()) {
    std::fprintf(stderr, "%s\n", inspected.status().ToString().c_str());
    return 1;
  }
  const ShardManifestInfo& info = inspected.value();
  std::printf("%s: shard manifest v%u (%s)\n", path.c_str(), info.version,
              info.name.c_str());
  std::printf(
      "n=%llu d=%zu shards=%llu partitioner=%s seed=%llu\n",
      static_cast<unsigned long long>(info.total_points), info.dim,
      static_cast<unsigned long long>(info.num_shards),
      ShardPartitionerName(info.partitioner),
      static_cast<unsigned long long>(info.partition_seed));
  std::printf("%-8s %10s  %s\n", "shard", "tuples", "file");
  for (std::size_t s = 0; s < info.shards.size(); ++s) {
    std::printf("%-8zu %10llu  %s\n", s,
                static_cast<unsigned long long>(info.shards[s].num_points),
                info.shards[s].file.c_str());
  }
  return 0;
}

// Tiered-manifest metadata: the generation summary and the run table.
// Validates the manifest checksum but does not open the run files;
// `drli inspect` on an individual .run-NNNNNN file (a standard v2
// snapshot) audits its sections.
int InspectTiered(const std::string& path) {
  const auto inspected = InspectTieredManifest(path);
  if (!inspected.ok()) {
    std::fprintf(stderr, "%s\n", inspected.status().ToString().c_str());
    return 1;
  }
  const TieredManifestInfo& info = inspected.value();
  std::printf("%s: tiered manifest v%u (%s)\n", path.c_str(), info.version,
              info.name.c_str());
  std::printf("generation=%llu d=%zu runs=%zu memtable=%llu tombstones=%llu "
              "next_id=%llu\n",
              static_cast<unsigned long long>(info.generation), info.dim,
              info.runs.size(),
              static_cast<unsigned long long>(info.memtable_rows),
              static_cast<unsigned long long>(info.num_tombstones),
              static_cast<unsigned long long>(info.next_id));
  std::printf("%-8s %-6s %10s  %s\n", "run", "tier", "tuples", "file");
  for (const TieredManifestRunInfo& run : info.runs) {
    std::printf("%-8u %-6u %10llu  %s\n", run.uid, run.tier,
                static_cast<unsigned long long>(run.num_points),
                run.file.c_str());
  }
  return 0;
}

// Snapshot metadata without constructing the index: format version,
// shape, and (for v2) the section table with recomputed CRCs.
int CmdInspect(const Flags& flags) {
  const std::string path = GetFlag(flags, "index");
  if (path.empty()) {
    std::fprintf(stderr, "--index=<file> is required\n");
    return 2;
  }
  if (IsShardManifest(path)) return InspectManifest(path);
  if (IsTieredManifest(path)) return InspectTiered(path);
  const auto inspected = InspectSnapshot(path);
  if (!inspected.ok()) {
    std::fprintf(stderr, "%s\n", inspected.status().ToString().c_str());
    return 1;
  }
  const SnapshotInfo& info = inspected.value();
  std::printf("%s: snapshot v%u, %llu bytes\n", path.c_str(), info.version,
              static_cast<unsigned long long>(info.file_size));
  std::printf("n=%zu d=%zu pseudo-tuples=%zu 2-d weight table: %s\n",
              info.num_points, info.dim, info.num_virtual,
              info.use_weight_table ? "yes" : "no");
  std::printf("kernel dispatch: %s\n", SimdTargetName(ActiveSimdTarget()));
  if (info.version == snapshot::kVersionV1) {
    std::printf("%-18s %10s %12s\n", "segment", "offset", "bytes");
    for (const SnapshotSectionInfo& row : info.sections) {
      std::printf("%-18s %10llu %12llu\n", row.name.c_str(),
                  static_cast<unsigned long long>(row.offset),
                  static_cast<unsigned long long>(row.length));
    }
    std::printf("(v1 stream: no checksums; rebuild with `drli build` to get "
                "a v2 snapshot)\n");
    return 0;
  }
  std::printf("%-16s %10s %12s %10s %s\n", "section", "offset", "bytes",
              "crc32c", "ok");
  bool all_ok = true;
  for (const SnapshotSectionInfo& row : info.sections) {
    std::printf("%-16s %10llu %12llu %10x %s\n", row.name.c_str(),
                static_cast<unsigned long long>(row.offset),
                static_cast<unsigned long long>(row.length), row.crc,
                row.crc_ok ? "yes" : "NO");
    all_ok = all_ok && row.crc_ok;
  }
  if (!all_ok) {
    std::fprintf(stderr, "section checksum mismatch: snapshot is corrupt\n");
    return 1;
  }
  return 0;
}

int CmdStats(const Flags& flags) {
  const std::string path = GetFlag(flags, "index");
  if (path.empty()) {
    std::fprintf(stderr, "--index=<file> is required\n");
    return 2;
  }
  if (IsShardManifest(path)) return InspectManifest(path);
  if (IsTieredManifest(path)) return InspectTiered(path);
  auto index = LoadDualLayerIndex(path);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  const DualLayerIndex& dl = index.value();
  std::printf("%s: n=%zu d=%zu\n", dl.name().c_str(), dl.size(),
              dl.points().dim());
  const auto groups = dl.LayerGroups();
  std::printf("coarse layers: %zu, fine sublayers: %zu, pseudo-tuples: %zu, "
              "2-d weight table: %s\n",
              dl.build_stats().num_coarse_layers, groups.size(),
              dl.virtual_points().size(),
              dl.uses_weight_table() ? "yes" : "no");
  std::printf("%-8s %-6s %-6s\n", "group", "coarse", "size");
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::printf("%-8zu %-6u %-6zu\n", g,
                dl.coarse_layer_of(groups[g][0]), groups[g].size());
    if (g == 19 && groups.size() > 21) {
      std::printf("... (%zu more groups)\n", groups.size() - 20);
      break;
    }
  }
  return 0;
}

StatusOr<Point> ParseWeights(const Flags& flags, std::size_t d) {
  const std::vector<std::string> parts =
      SplitComma(GetFlag(flags, "weights"));
  if (parts.size() != d) {
    return Status::InvalidArgument(
        "--weights must have " + std::to_string(d) + " components");
  }
  Point weights;
  double sum = 0.0;
  for (const std::string& part : parts) {
    weights.push_back(std::strtod(part.c_str(), nullptr));
    sum += weights.back();
  }
  if (sum <= 0.0) return Status::InvalidArgument("weights must sum > 0");
  for (double& w : weights) w /= sum;  // normalize for convenience
  return weights;
}

// --box=lo:hi,lo:hi,... -- one inclusive range per attribute; an empty
// side is unbounded, a bare ":" leaves the attribute unconstrained.
StatusOr<AttributeBox> ParseBoxFlag(const std::string& value,
                                    std::size_t d) {
  const std::vector<std::string> parts = SplitComma(value);
  if (parts.size() != d) {
    return Status::InvalidArgument("--box must have " + std::to_string(d) +
                                   " lo:hi components");
  }
  AttributeBox box = AttributeBox::All(d);
  for (std::size_t a = 0; a < d; ++a) {
    const std::size_t colon = parts[a].find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("--box component \"" + parts[a] +
                                     "\" is not lo:hi");
    }
    const std::string lo = parts[a].substr(0, colon);
    const std::string hi = parts[a].substr(colon + 1);
    if (!lo.empty()) box.lo[a] = std::strtod(lo.c_str(), nullptr);
    if (!hi.empty()) box.hi[a] = std::strtod(hi.c_str(), nullptr);
  }
  return box;
}

void PrintTopKItems(const TopKResult& result) {
  for (std::size_t r = 0; r < result.items.size(); ++r) {
    std::printf("  %2zu. tuple %-8u score %.6f%s\n", r + 1,
                result.items[r].id, result.items[r].score,
                !result.complete() && r >= result.certified_prefix
                    ? "  (uncertified)"
                    : "");
  }
  if (!result.complete()) {
    std::printf("partial result: stopped on %s; first %zu of %zu items "
                "certified exact\n",
                TerminationName(result.termination), result.certified_prefix,
                result.items.size());
  }
}

int CmdQuery(const Flags& flags) {
  const std::size_t k = GetSizeFlag(flags, "k", 10);
  const std::string index_path = GetFlag(flags, "index");

  std::unique_ptr<TopKIndex> owned;
  std::optional<DualLayerIndex> loaded_dl;
  std::optional<ShardedDualLayerIndex> loaded_sharded;
  std::optional<TieredDualLayerIndex> loaded_tiered;
  std::optional<Dataset> dataset;
  const TieredDualLayerIndex* tiered_alias = nullptr;
  const TopKIndex* index = nullptr;
  std::size_t dim = 0;
  if (!index_path.empty() && IsShardManifest(index_path)) {
    auto loaded = LoadShardedIndex(index_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    loaded_sharded.emplace(std::move(loaded).value());
    index = &*loaded_sharded;
    dim = loaded_sharded->dim();
  } else if (!index_path.empty() && IsTieredManifest(index_path)) {
    auto loaded = LoadTieredIndex(index_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    loaded_tiered.emplace(std::move(loaded).value());
    index = &*loaded_tiered;
    dim = loaded_tiered->dim();
  } else if (!index_path.empty()) {
    auto loaded = LoadDualLayerIndex(index_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    loaded_dl.emplace(std::move(loaded).value());
    index = &*loaded_dl;
    dim = loaded_dl->points().dim();
  } else {
    auto loaded = LoadInput(flags);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset.emplace(std::move(loaded).value());
    dim = dataset->dim();
    const std::string kind = GetFlag(flags, "kind", "dl+");
    const bool concrete_engine = !GetFlag(flags, "box").empty() ||
                                 !GetFlag(flags, "reverse").empty();
    if (concrete_engine && (kind == "dl" || kind == "dl+")) {
      // The constrained / reverse traversals dispatch on the concrete
      // engine type, so build the dual-layer index directly instead of
      // through the registry's type-erased handle.
      DualLayerOptions options;
      options.build_zero_layer = (kind == "dl+");
      options.zero_layer_clusters = GetSizeFlag(flags, "clusters", 0);
      loaded_dl.emplace(DualLayerIndex::Build(dataset->points(), options));
      index = &*loaded_dl;
    } else {
      IndexBuildConfig config;
      config.kind = kind;
      auto built = BuildIndex(config, dataset->points());
      if (!built.ok()) {
        std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
        return 1;
      }
      owned = std::move(built).value();
      index = owned.get();
      if (kind.rfind("tdl+", 0) == 0) {
        tiered_alias = static_cast<const TieredDualLayerIndex*>(owned.get());
      }
    }
  }

  // Serving controls: --deadline-ms caps wall time, --max-evals caps
  // scored tuples; either can cut the traversal short, in which case
  // the certified prefix of the partial answer is reported. They apply
  // to every scenario below as well.
  ExecBudget budget;
  const std::string deadline_ms = GetFlag(flags, "deadline-ms");
  if (!deadline_ms.empty()) {
    budget.deadline_seconds =
        std::strtod(deadline_ms.c_str(), nullptr) / 1000.0;
  }
  budget.max_evals = GetSizeFlag(flags, "max-evals", 0);

  // Reverse top-k: no weight vector -- the weights ARE the answer.
  const std::string reverse_flag = GetFlag(flags, "reverse");
  if (!reverse_flag.empty()) {
    if (!loaded_dl.has_value()) {
      std::fprintf(stderr,
                   "--reverse needs a dl+ engine: a dual-layer snapshot or "
                   "--input with --kind=dl+\n");
      return 2;
    }
    ReverseTopKQuery rquery;
    rquery.target =
        static_cast<TupleId>(std::strtoul(reverse_flag.c_str(), nullptr, 10));
    rquery.k = k;
    rquery.budget = budget;
    Stopwatch timer;
    const ReverseTopKResult result = ReverseTopK2D(*loaded_dl, rquery);
    const double ms = timer.ElapsedMillis();
    if (!result.complete()) {
      std::fprintf(stderr, "reverse query stopped (%s): %s\n",
                   TerminationName(result.termination), result.error.c_str());
      return 1;
    }
    std::printf("%s reverse top-%zu of tuple %u "
                "(%.3f ms, %zu tuples swept%s):",
                loaded_dl->name().c_str(), k, rquery.target, ms,
                result.stats.tuples_evaluated,
                result.used_weight_table ? ", via 2-d weight table" : "");
    if (result.intervals.empty()) std::printf(" never in the top-%zu", k);
    for (const WeightInterval& iv : result.intervals) {
      std::printf(" [%.5f, %.5f]", iv.lo, iv.hi);
    }
    std::printf("\n");
    return 0;
  }

  auto weights = ParseWeights(flags, dim);
  if (!weights.ok()) {
    std::fprintf(stderr, "%s\n", weights.status().ToString().c_str());
    return 2;
  }

  // Constrained top-k: the plain query restricted to an attribute box,
  // with whole sublayers / shards / runs pruned on bounding-box misses.
  const std::string box_flag = GetFlag(flags, "box");
  if (!box_flag.empty()) {
    auto box = ParseBoxFlag(box_flag, dim);
    if (!box.ok()) {
      std::fprintf(stderr, "%s\n", box.status().ToString().c_str());
      return 2;
    }
    ConstrainedQuery cquery;
    cquery.weights = weights.value();
    cquery.k = k;
    cquery.box = std::move(box).value();
    cquery.budget = budget;
    Stopwatch timer;
    const TopKResult result =
        loaded_dl.has_value()      ? ConstrainedTopK(*loaded_dl, cquery)
        : loaded_sharded.has_value() ? ConstrainedTopK(*loaded_sharded, cquery)
        : loaded_tiered.has_value()  ? ConstrainedTopK(*loaded_tiered, cquery)
        : tiered_alias != nullptr    ? ConstrainedTopK(*tiered_alias, cquery)
                                     : ConstrainedTopKScan(
                                           dataset->points(), cquery);
    const double ms = timer.ElapsedMillis();
    if (result.termination == Termination::kInvalidQuery ||
        result.termination == Termination::kError) {
      std::fprintf(stderr, "query rejected (%s): %s\n",
                   TerminationName(result.termination), result.error.c_str());
      return 1;
    }
    std::printf("%s constrained top-%zu "
                "(%.3f ms, %zu tuples evaluated, %zu boxes pruned):\n",
                index->name().c_str(), k, ms, result.stats.tuples_evaluated,
                result.stats.boxes_pruned);
    PrintTopKItems(result);
    return 0;
  }

  // Diversified top-k: greedy score + lambda * similarity re-ranking
  // over a certified candidate pool.
  const std::string lambda_flag = GetFlag(flags, "lambda");
  if (!lambda_flag.empty()) {
    const PointSet* relation = dataset.has_value() ? &dataset->points()
                               : loaded_dl.has_value() ? &loaded_dl->points()
                                                       : nullptr;
    if (relation == nullptr) {
      std::fprintf(stderr,
                   "--lambda needs the relation for the similarity "
                   "penalty: a dual-layer snapshot or --input\n");
      return 2;
    }
    DiversifiedQuery dquery;
    dquery.weights = weights.value();
    dquery.k = k;
    dquery.lambda = std::strtod(lambda_flag.c_str(), nullptr);
    dquery.pool_factor = GetSizeFlag(flags, "pool-factor", 4);
    dquery.budget = budget;
    Stopwatch timer;
    const DiversifiedResult result =
        DiversifiedTopK(*index, *relation, dquery);
    const double ms = timer.ElapsedMillis();
    if (result.termination == Termination::kInvalidQuery ||
        result.termination == Termination::kError) {
      std::fprintf(stderr, "query rejected (%s): %s\n",
                   TerminationName(result.termination), result.error.c_str());
      return 1;
    }
    std::printf("%s diversified top-%zu, lambda=%g "
                "(%.3f ms, %zu tuples evaluated, pool %zu):\n",
                index->name().c_str(), k, dquery.lambda, ms,
                result.stats.tuples_evaluated, result.pool_size);
    for (std::size_t r = 0; r < result.picks.size(); ++r) {
      std::printf("  %2zu. tuple %-8u score %.6f utility %.6f%s\n", r + 1,
                  result.picks[r].id, result.picks[r].score,
                  result.picks[r].utility,
                  !result.complete() && r >= result.certified_prefix
                      ? "  (uncertified)"
                      : "");
    }
    if (!result.complete()) {
      std::printf("partial result: stopped on %s; first %zu of %zu picks "
                  "certified exact\n",
                  TerminationName(result.termination),
                  result.certified_prefix, result.picks.size());
    }
    return 0;
  }

  TopKQuery query;
  query.weights = weights.value();
  query.k = k;
  query.budget = budget;
  Stopwatch timer;
  const TopKResult result = index->Query(query);
  const double ms = timer.ElapsedMillis();
  if (result.termination == Termination::kInvalidQuery ||
      result.termination == Termination::kError) {
    std::fprintf(stderr, "query rejected (%s): %s\n",
                 TerminationName(result.termination), result.error.c_str());
    return 1;
  }
  std::printf("%s top-%zu (%.3f ms, %zu tuples evaluated, kernel=%s):\n",
              index->name().c_str(), k, ms, result.stats.tuples_evaluated,
              SimdTargetName(ActiveSimdTarget()));
  if (loaded_sharded.has_value()) {
    std::printf("shards touched %zu/%zu\n", result.stats.shards_touched,
                loaded_sharded->num_shards());
  } else if (result.stats.shards_touched > 0) {
    std::printf("shards touched %zu\n", result.stats.shards_touched);
  }
  if (loaded_tiered.has_value()) {
    std::printf("runs opened %zu/%zu (+memtable of %zu rows)\n",
                result.stats.runs_opened, loaded_tiered->num_runs(),
                loaded_tiered->memtable_size());
  }
  PrintTopKItems(result);
  if (GetFlag(flags, "explain") == "true" && loaded_dl.has_value()) {
    std::printf("\naccess breakdown by sublayer:\n");
    std::printf("%-8s %-6s %-8s %-8s\n", "coarse", "fine", "size",
                "accessed");
    for (const LayerAccessRow& row : ExplainAccess(*loaded_dl, result)) {
      if (row.accessed == 0) continue;
      std::printf("%-8u %-6u %-8zu %-8zu\n", row.coarse, row.fine,
                  row.layer_size, row.accessed);
    }
  }
  return 0;
}

int CmdCompare(const Flags& flags) {
  auto dataset = LoadInput(flags);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const PointSet& points = dataset.value().points();
  const std::size_t k = GetSizeFlag(flags, "k", 10);
  const std::size_t num_queries = GetSizeFlag(flags, "queries", 50);
  std::vector<std::string> kinds = SplitComma(
      GetFlag(flags, "kinds", "scan,ta,onion,dg,dg+,hl+,dl,dl+"));

  std::printf("n=%zu d=%zu k=%zu queries=%zu\n\n", points.size(),
              points.dim(), k, num_queries);
  std::printf("%-8s %10s %14s\n", "index", "build(s)", "avg tuples");
  for (const std::string& kind : kinds) {
    IndexBuildConfig config;
    config.kind = kind;
    Stopwatch timer;
    auto index = BuildIndex(config, points);
    if (!index.ok()) {
      std::fprintf(stderr, "%s: %s\n", kind.c_str(),
                   index.status().ToString().c_str());
      return 1;
    }
    const double build_s = timer.ElapsedSeconds();
    Rng rng(11);
    double total = 0.0;
    for (std::size_t q = 0; q < num_queries; ++q) {
      TopKQuery query;
      query.weights = rng.SimplexWeight(points.dim());
      query.k = k;
      total += static_cast<double>(
          index.value()->Query(query).stats.tuples_evaluated);
    }
    std::printf("%-8s %10.2f %14.1f\n", index.value()->name().c_str(),
                build_s, total / static_cast<double>(num_queries));
  }
  return 0;
}

// Exact 2-d weight-space analysis: the intervals of w1 on which each
// top-k set holds, and optionally the reverse top-k of one tuple.
int CmdSweep(const Flags& flags) {
  auto dataset = LoadInput(flags);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if (dataset.value().dim() != 2) {
    std::fprintf(stderr, "sweep requires a 2-attribute dataset (got %zu)\n",
                 dataset.value().dim());
    return 2;
  }
  const std::size_t k = GetSizeFlag(flags, "k", 5);
  const RankSweepResult sweep =
      SweepTopKSets2D(dataset.value().points(), k);
  std::printf("top-%zu weight-space partition: %zu intervals\n", k,
              sweep.topk_sets.size());
  const std::size_t limit = GetSizeFlag(flags, "limit", 20);
  for (std::size_t i = 0; i < sweep.topk_sets.size() && i < limit; ++i) {
    const double lo = i == 0 ? 0.0 : sweep.breakpoints[i - 1];
    const double hi =
        i < sweep.breakpoints.size() ? sweep.breakpoints[i] : 1.0;
    std::printf("  w1 in [%.5f, %.5f]: {", lo, hi);
    for (std::size_t j = 0; j < sweep.topk_sets[i].size(); ++j) {
      std::printf("%s%u", j ? ", " : "", sweep.topk_sets[i][j]);
    }
    std::printf("}\n");
  }
  if (sweep.topk_sets.size() > limit) {
    std::printf("  ... (%zu more intervals)\n",
                sweep.topk_sets.size() - limit);
  }
  const std::string target_flag = GetFlag(flags, "reverse");
  if (!target_flag.empty()) {
    const auto target =
        static_cast<TupleId>(std::strtoul(target_flag.c_str(), nullptr, 10));
    const auto intervals = ReverseTopKIntervals2D(sweep, target);
    std::printf("reverse top-%zu of tuple %u:", k, target);
    if (intervals.empty()) std::printf(" never in the top-%zu", k);
    for (const auto& [lo, hi] : intervals) {
      std::printf(" [%.5f, %.5f]", lo, hi);
    }
    std::printf("\n");
  }
  return 0;
}

// Structural invariant audit of a dual-resolution index, either loaded
// from disk or built on the fly from a CSV.
int CmdCheck(const Flags& flags) {
  std::optional<DualLayerIndex> index;
  const std::string index_path = GetFlag(flags, "index");
  if (!index_path.empty() && IsShardManifest(index_path)) {
    // Sharded index: every shard is a full dual-resolution index, so
    // the audit runs per shard (the merge layer itself is covered by
    // the differential suite, not structural invariants).
    auto loaded = LoadShardedIndex(index_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    const ShardedDualLayerIndex& sharded = loaded.value();
    CheckOptions options;
    options.weight_samples = GetSizeFlag(flags, "samples", 16);
    options.seed = GetSizeFlag(flags, "seed", 12345);
    std::size_t invariants = 0;
    bool ok = true;
    for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
      const CheckReport report = CheckIndex(sharded.shard(s), options);
      invariants += report.invariants_checked;
      if (!report.ok()) {
        ok = false;
        std::fprintf(stderr, "shard %zu:\n%s", s, report.ToString().c_str());
      }
    }
    std::printf("%s: n=%zu, %zu shards, %zu invariants checked\n",
                sharded.name().c_str(), sharded.size(), sharded.num_shards(),
                invariants);
    if (!ok) return 1;
    std::printf("OK\n");
    return 0;
  }
  if (!index_path.empty()) {
    auto loaded = LoadDualLayerIndex(index_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    index.emplace(std::move(loaded).value());
  } else {
    auto dataset = LoadInput(flags);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    const std::string kind = GetFlag(flags, "kind", "dl+");
    if (kind != "dl" && kind != "dl+") {
      std::fprintf(stderr, "check builds dl or dl+; got %s\n", kind.c_str());
      return 2;
    }
    DualLayerOptions options;
    options.build_zero_layer = (kind == "dl+");
    options.zero_layer_clusters = GetSizeFlag(flags, "clusters", 0);
    index.emplace(
        DualLayerIndex::Build(dataset.value().points(), options));
  }

  CheckOptions options;
  options.weight_samples = GetSizeFlag(flags, "samples", 16);
  options.seed = GetSizeFlag(flags, "seed", 12345);
  const CheckReport report = CheckIndex(*index, options);
  std::printf("%s: n=%zu, %zu invariants checked\n", index->name().c_str(),
              index->size(), report.invariants_checked);
  if (report.ok()) {
    std::printf("OK\n");
    return 0;
  }
  std::fprintf(stderr, "%s", report.ToString().c_str());
  return 1;
}

volatile std::sig_atomic_t g_stop_serving = 0;

void HandleStopSignal(int) { g_stop_serving = 1; }

double GetDoubleFlag(const Flags& flags, const std::string& key,
                     double fallback) {
  const std::string value = GetFlag(flags, key);
  return value.empty() ? fallback : std::strtod(value.c_str(), nullptr);
}

int CmdServe(const Flags& flags) {
  const std::string dir = GetFlag(flags, "dir");
  if (dir.empty()) {
    std::fprintf(stderr, "--dir=<serving directory> is required\n");
    return 2;
  }
  server::ServerOptions options;
  options.host = GetFlag(flags, "host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(GetSizeFlag(flags, "port", 0));
  options.num_loops = GetSizeFlag(flags, "loops", 0);
  options.num_workers = GetSizeFlag(flags, "workers", 0);
  options.max_in_flight = GetSizeFlag(flags, "max-in-flight", 0);
  options.default_deadline_ms = GetDoubleFlag(flags, "deadline-ms", 0.0);
  options.idle_timeout_seconds =
      GetDoubleFlag(flags, "idle-timeout", options.idle_timeout_seconds);
  options.reload_poll_seconds =
      GetDoubleFlag(flags, "reload-poll", options.reload_poll_seconds);

  server::TopKServer server;
  if (const Status status = server.Start(dir, options); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const auto generation = server.engine().Acquire();
  std::printf("serving %s (%s, n=%zu d=%zu) on %s:%u\n", dir.c_str(),
              generation->snapshot.c_str(), generation->index->size(),
              generation->dim, options.host.c_str(), server.port());
  std::fflush(stdout);

  // Smoke tests bind port 0 and discover the real port from this file.
  const std::string port_file = GetFlag(flags, "port-file");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  while (g_stop_serving == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("draining...\n");
  std::fflush(stdout);
  server.Shutdown();
  const server::ServerCounters counters = server.counters();
  std::printf("served %llu queries (%llu shed, %llu malformed frames, "
              "%llu connections, %llu reloads)\n",
              static_cast<unsigned long long>(counters.queries_served),
              static_cast<unsigned long long>(counters.queries_shed),
              static_cast<unsigned long long>(counters.malformed_frames),
              static_cast<unsigned long long>(counters.connections_opened),
              static_cast<unsigned long long>(counters.reloads));
  return 0;
}

int CmdPublish(const Flags& flags) {
  const std::string dir = GetFlag(flags, "dir");
  const std::string snapshot = GetFlag(flags, "snapshot");
  if (dir.empty() || snapshot.empty()) {
    std::fprintf(stderr,
                 "--dir=<serving directory> and --snapshot=<name> are "
                 "required\n");
    return 2;
  }
  if (const Status status = server::PublishSnapshot(dir, snapshot);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("published %s/CURRENT -> %s\n", dir.c_str(), snapshot.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (GetFlag(flags, "no-simd") == "true") ForceScalarKernels(true);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "build") return CmdBuild(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "inspect") return CmdInspect(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "compare") return CmdCompare(flags);
  if (command == "sweep") return CmdSweep(flags);
  if (command == "check") return CmdCheck(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "publish") return CmdPublish(flags);
  return Usage();
}

}  // namespace
}  // namespace drli

int main(int argc, char** argv) { return drli::Main(argc, argv); }
