// drli_fuzz — seeded differential fuzzer over all index families.
//
//   drli_fuzz --cases=500 --seed=1        # seeds 1..500
//   drli_fuzz --replay=391                # one failing seed, verbose
//   drli_fuzz --cases=200 --dynamic=0     # skip the DynamicIndex oracle
//
// Every case builds a fresh adversarial dataset from its seed (exact
// duplicates, grid-snapped coordinates, coplanar rows, d in 2..5, tiny
// n), runs the invariant checker on dl/dl+ builds, cross-checks every
// registered family against the brute-force reference, and replays an
// insert/erase/query trace against DynamicDualLayerIndex. A failure
// prints "FAIL seed=<seed>" and the process exits nonzero; the same
// seed reproduces the case deterministically.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "testing/fuzz.h"

namespace drli {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: drli_fuzz [--cases=N] [--seed=S] [--replay=SEED]\n"
               "                 [--dynamic=0|1] [--max-n=N]\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::size_t cases = 100;
  std::uint64_t first_seed = 1;
  bool replay = false;
  FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--cases=", 0) == 0) {
      cases = std::strtoul(value("--cases="), nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      first_seed = std::strtoull(value("--seed="), nullptr, 10);
    } else if (arg.rfind("--replay=", 0) == 0) {
      first_seed = std::strtoull(value("--replay="), nullptr, 10);
      cases = 1;
      replay = true;
    } else if (arg.rfind("--dynamic=", 0) == 0) {
      options.dynamic = std::strtoul(value("--dynamic="), nullptr, 10) != 0;
    } else if (arg.rfind("--max-n=", 0) == 0) {
      options.max_n = std::strtoul(value("--max-n="), nullptr, 10);
    } else {
      return Usage();
    }
  }

  std::size_t failed = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = first_seed + i;
    const FuzzCaseResult result = RunFuzzCase(seed, options);
    if (replay) {
      std::printf("seed=%llu dataset: %s\n",
                  static_cast<unsigned long long>(seed),
                  result.dataset_desc.c_str());
    }
    if (result.ok()) continue;
    ++failed;
    std::printf("FAIL seed=%llu (%s)\n",
                static_cast<unsigned long long>(seed),
                result.dataset_desc.c_str());
    for (const std::string& failure : result.failures) {
      std::printf("  %s\n", failure.c_str());
    }
  }
  if (failed == 0) {
    std::printf("%zu/%zu cases ok (seeds %llu..%llu)\n", cases, cases,
                static_cast<unsigned long long>(first_seed),
                static_cast<unsigned long long>(first_seed + cases - 1));
    return 0;
  }
  std::printf("%zu/%zu cases FAILED\n", failed, cases);
  return 1;
}

}  // namespace
}  // namespace drli

int main(int argc, char** argv) { return drli::Main(argc, argv); }
