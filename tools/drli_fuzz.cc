// drli_fuzz — seeded differential fuzzer over all index families.
//
//   drli_fuzz --cases=500 --seed=1        # seeds 1..500
//   drli_fuzz --replay=391                # one failing seed, verbose
//   drli_fuzz --cases=200 --dynamic=0     # skip the DynamicIndex oracle
//   drli_fuzz --mixed-rw --cases=40       # sustained ~95/5 read/write
//                                         # traces against the tiered
//                                         # engine (nightly sanitizer
//                                         # soak entry point)
//   drli_fuzz --snapshot-faults --flips=20000 --seed=7
//                                         # snapshot corruption sweep +
//                                         # tiered crash-recovery sweep
//   drli_fuzz --budget-faults --cases=20 --seed=3
//                                         # exhaustive execution-budget
//                                         # fault sweep (every step index
//                                         # of every family, step budget
//                                         # and cancellation)
//   drli_fuzz --server-faults --cases=3 --seed=5
//                                         # serving front end under fire:
//                                         # corrupt frames, disconnects,
//                                         # reload races, deadline storms,
//                                         # overload (one sweep per seed)
//
// Every case builds a fresh adversarial dataset from its seed (exact
// duplicates, grid-snapped coordinates, coplanar rows, d in 2..5, tiny
// n), runs the invariant checker on dl/dl+ builds, cross-checks every
// registered family against the brute-force reference, and replays an
// insert/erase/query/compact-step trace against both dynamic engines
// (flat-rebuild and tiered). A failure prints "FAIL seed=<seed>" and
// the process exits nonzero; the same seed reproduces the case
// deterministically.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/dual_layer.h"
#include "core/serialization.h"
#include "data/generator.h"
#include "testing/fault_inject.h"
#include "testing/fuzz.h"
#include "testing/server_faults.h"

namespace drli {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: drli_fuzz [--cases=N] [--seed=S] [--replay=SEED]\n"
               "                 [--dynamic=0|1] [--max-n=N]\n"
               "       drli_fuzz --mixed-rw [--cases=N] [--seed=S]\n"
               "       drli_fuzz --snapshot-faults [--flips=N] [--seed=S]\n"
               "       drli_fuzz --budget-faults [--cases=N] [--seed=S]\n"
               "       drli_fuzz --server-faults [--cases=N] [--seed=S]\n");
  return 2;
}

// Sustained ~95% read / ~5% write traces against the tiered dynamic
// engine, each checked step by step against a brute-force mirror. The
// nightly ASan/UBSan job runs this mode to soak the concurrent-shape
// state machine (seal and compaction under a read stream).
int RunMixedTraces(std::size_t cases, std::uint64_t first_seed) {
  std::size_t failed = 0;
  std::size_t max_runs = 0;
  std::size_t mid_compaction = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = first_seed + i;
    const FuzzCaseResult result = RunMixedTraceCase(seed);
    max_runs = std::max(max_runs, result.max_runs);
    mid_compaction += result.mid_compaction_queries;
    if (result.ok()) continue;
    ++failed;
    std::printf("FAIL seed=%llu (%s)\n",
                static_cast<unsigned long long>(seed),
                result.dataset_desc.c_str());
    for (const std::string& failure : result.failures) {
      std::printf("  %s\n", failure.c_str());
    }
  }
  if (failed == 0) {
    std::printf("%zu/%zu mixed-rw traces ok (max %zu runs, %zu queries "
                "mid-compaction)\n",
                cases, cases, max_runs, mid_compaction);
    return 0;
  }
  std::printf("%zu/%zu mixed-rw traces FAILED\n", failed, cases);
  return 1;
}

// Execution-budget fault sweep: for each case seed, derive the usual
// adversarial dataset, then for every index family and EVERY step index
// of its traversal fire a step budget and a cancel fuse there, and
// check the certified partial result against the exact answer. The
// sweep is fully deterministic in the seed.
int RunBudgetFaults(std::size_t cases, std::uint64_t first_seed) {
  FuzzOptions options;
  options.max_n = 120;  // exhaustive per-step sweep; keep cases compact
  bool ok = true;
  std::size_t datasets = 0;
  std::size_t total_queries = 0;
  std::size_t total_partials = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = first_seed + i;
    std::string desc;
    const PointSet dataset = MakeFuzzDataset(seed, options, &desc);
    if (dataset.empty()) continue;
    ++datasets;
    Rng rng(seed ^ 0xb5297a4db1a54e25ULL);
    std::vector<TopKQuery> queries;
    {
      TopKQuery query;  // uniform weights maximize score collisions
      query.k = std::min<std::size_t>(3, dataset.size());
      query.weights.assign(dataset.dim(),
                           1.0 / static_cast<double>(dataset.dim()));
      queries.push_back(std::move(query));
    }
    {
      TopKQuery query;
      query.k = 1 + rng.Index(dataset.size());
      query.weights = rng.SimplexWeight(dataset.dim());
      queries.push_back(std::move(query));
    }
    const testing::BudgetFaultReport report =
        testing::RunBudgetFaultSweep(dataset, queries);
    total_queries += report.cases;
    total_partials += report.partials;
    if (!report.ok()) {
      ok = false;
      std::printf("FAIL seed=%llu (%s)\n  %s\n",
                  static_cast<unsigned long long>(seed), desc.c_str(),
                  report.ToString().c_str());
    }
  }
  // A sweep in which no budget ever fired means the gates are not
  // wired into the traversals at all -- that is itself a failure.
  if (datasets > 0 && total_partials == 0) {
    ok = false;
    std::printf("budget fault sweep never produced a partial result\n");
  }
  std::printf("%s: %zu dataset(s), %zu budgeted quer(ies), %zu partial\n",
              ok ? "budget fault sweep ok" : "budget fault sweep FAILED",
              datasets, total_queries, total_partials);
  return ok ? 0 : 1;
}

// Snapshot corruption sweep: builds one index per family (plain DL,
// clustered DL+, 2-d weight-table DL+), saves it in both formats, and
// runs the full fault matrix against each file. Nonzero exit on any
// crash-free-but-wrong outcome; a crash takes the process down, which
// the nightly ASan/UBSan job reports with a trace.
int RunSnapshotFaults(std::size_t flips, std::uint64_t seed) {
  struct Config {
    const char* label;
    std::size_t d;
    bool zero_layer;
  };
  const Config configs[] = {
      {"dl_4d", 4, false},
      {"dl_plus_4d", 4, true},
      {"dl_plus_2d", 2, true},
  };
  const std::string base =
      "/tmp/drli_faults_" + std::to_string(getpid()) + "_";
  bool ok = true;
  for (const Config& config : configs) {
    const PointSet points =
        Generate(Distribution::kAnticorrelated, 400, config.d, seed);
    DualLayerOptions options;
    options.build_zero_layer = config.zero_layer;
    const DualLayerIndex index = DualLayerIndex::Build(points, options);
    for (const std::uint32_t version :
         {snapshot::kVersionV1, snapshot::kVersionV2}) {
      const std::string path = base + config.label + "_v" +
                               std::to_string(version) + ".bin";
      SnapshotSaveOptions save;
      save.format_version = version;
      if (const Status status = SaveDualLayerIndex(index, path, save);
          !status.ok()) {
        std::printf("FAIL %s: %s\n", path.c_str(),
                    status.ToString().c_str());
        ok = false;
        continue;
      }
      testing::FaultSweepOptions sweep;
      sweep.seed = seed;
      sweep.num_flips = flips;
      const testing::FaultSweepReport report =
          testing::RunSnapshotFaultSweep(path, sweep);
      std::printf("%s v%u: %s\n", config.label, version,
                  report.ToString().c_str());
      ok = ok && report.ok();
      std::remove(path.c_str());
    }
  }
  // Tiered crash-recovery sweep: crash prefixes over the generation
  // write schedule plus corruption of the manifest and run files.
  {
    testing::TieredFaultOptions sweep;
    sweep.seed = seed;
    sweep.num_flips = flips;
    const testing::TieredFaultReport report =
        testing::RunTieredFaultSweep(base + "tiered", sweep);
    std::printf("tiered crash sweep: %s\n", report.ToString().c_str());
    ok = ok && report.ok();
  }
  std::printf(ok ? "snapshot fault sweep ok\n"
                 : "snapshot fault sweep FAILED\n");
  return ok ? 0 : 1;
}

// Serving-front-end fault sweep: each case stands up a real server on
// a loopback socket and runs the full attack matrix (corrupt frames,
// mid-request disconnects, reload-during-query races, deadline storms,
// overload). The nightly ASan/UBSan job runs this as a soak.
int RunServerFaults(std::size_t cases, std::uint64_t first_seed) {
  const std::string base =
      "/tmp/drli_server_faults_" + std::to_string(getpid()) + "_";
  bool ok = true;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = first_seed + i;
    testing::ServerFaultOptions sweep;
    sweep.seed = seed;
    const testing::ServerFaultReport report = testing::RunServerFaultSweep(
        base + std::to_string(seed), sweep);
    std::printf("seed=%llu: %s\n", static_cast<unsigned long long>(seed),
                report.ToString().c_str());
    if (!report.ok()) {
      ok = false;
      std::printf("FAIL seed=%llu\n", static_cast<unsigned long long>(seed));
    }
  }
  std::printf(ok ? "server fault sweep ok\n" : "server fault sweep FAILED\n");
  return ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::size_t cases = 100;
  std::uint64_t first_seed = 1;
  bool replay = false;
  bool snapshot_faults = false;
  bool budget_faults = false;
  bool mixed_rw = false;
  bool server_faults = false;
  // DRLI_FAULT_FLIPS pre-sets the flip budget (the nightly job raises
  // it); --flips= wins over the environment.
  std::size_t flips = 1000;
  if (const char* env = std::getenv("DRLI_FAULT_FLIPS")) {
    flips = std::strtoul(env, nullptr, 10);
  }
  FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg == "--snapshot-faults") {
      snapshot_faults = true;
    } else if (arg == "--budget-faults") {
      budget_faults = true;
    } else if (arg == "--mixed-rw") {
      mixed_rw = true;
    } else if (arg == "--server-faults") {
      server_faults = true;
    } else if (arg.rfind("--flips=", 0) == 0) {
      flips = std::strtoul(value("--flips="), nullptr, 10);
    } else if (arg.rfind("--cases=", 0) == 0) {
      cases = std::strtoul(value("--cases="), nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      first_seed = std::strtoull(value("--seed="), nullptr, 10);
    } else if (arg.rfind("--replay=", 0) == 0) {
      first_seed = std::strtoull(value("--replay="), nullptr, 10);
      cases = 1;
      replay = true;
    } else if (arg.rfind("--dynamic=", 0) == 0) {
      options.dynamic = std::strtoul(value("--dynamic="), nullptr, 10) != 0;
    } else if (arg.rfind("--max-n=", 0) == 0) {
      options.max_n = std::strtoul(value("--max-n="), nullptr, 10);
    } else {
      return Usage();
    }
  }
  if (snapshot_faults) return RunSnapshotFaults(flips, first_seed);
  if (budget_faults) return RunBudgetFaults(cases, first_seed);
  if (mixed_rw) return RunMixedTraces(cases, first_seed);
  if (server_faults) return RunServerFaults(cases, first_seed);

  std::size_t failed = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = first_seed + i;
    const FuzzCaseResult result = RunFuzzCase(seed, options);
    if (replay) {
      std::printf("seed=%llu dataset: %s\n",
                  static_cast<unsigned long long>(seed),
                  result.dataset_desc.c_str());
      std::printf("  tiered trace: max_runs=%zu mid_compaction_queries=%zu "
                  "peak_tombstones=%zu\n",
                  result.max_runs, result.mid_compaction_queries,
                  result.peak_tombstones);
    }
    if (result.ok()) continue;
    ++failed;
    std::printf("FAIL seed=%llu (%s)\n",
                static_cast<unsigned long long>(seed),
                result.dataset_desc.c_str());
    for (const std::string& failure : result.failures) {
      std::printf("  %s\n", failure.c_str());
    }
  }
  if (failed == 0) {
    std::printf("%zu/%zu cases ok (seeds %llu..%llu)\n", cases, cases,
                static_cast<unsigned long long>(first_seed),
                static_cast<unsigned long long>(first_seed + cases - 1));
    return 0;
  }
  std::printf("%zu/%zu cases FAILED\n", failed, cases);
  return 1;
}

}  // namespace
}  // namespace drli

int main(int argc, char** argv) { return drli::Main(argc, argv); }
