// drli_client — wire client for the drli serving front end.
//
//   drli_client query   --port=7071 --weights=0.3,0.3,0.4 --k=10
//                       [--host=127.0.0.1]
//                       [--deadline-ms=5] [--max-evals=2000]
//                       [--box=0.2:0.8,:,:] [--lambda=0.7]
//                       [--pool-factor=4] [--reverse=42]
//   drli_client health  --port=7071
//   drli_client inspect --port=7071
//   drli_client reload  --port=7071      # force a CURRENT poll now
//
// Every reply carries the generation sequence it was served from, so
// `query` in a loop across a `drli publish` shows the hot swap. A
// kOverloaded reply prints the server's retry-after hint and exits 3;
// certified partials print like `drli query` partials and exit 0.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "server/client.h"
#include "server/protocol.h"

namespace drli {
namespace {

using server::DrliClient;
using Flags = std::map<std::string, std::string>;

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "true";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string GetFlag(const Flags& flags, const std::string& key,
                    const std::string& fallback = "") {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage: drli_client <query|health|inspect|reload> "
               "--port=N [--flags]\n"
               "see the header of tools/drli_client.cc for examples\n");
  return 2;
}

int ConnectOrDie(const Flags& flags, DrliClient* client) {
  const std::string host = GetFlag(flags, "host", "127.0.0.1");
  const std::string port_flag = GetFlag(flags, "port");
  if (port_flag.empty()) {
    std::fprintf(stderr, "--port=N is required\n");
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(
      std::strtoul(port_flag.c_str(), nullptr, 10));
  const Status status = client->Connect(host, port);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdQuery(const Flags& flags) {
  wire::WireQuery query;
  const std::string weights_flag = GetFlag(flags, "weights");
  std::stringstream ss(weights_flag);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) {
      query.weights.push_back(std::strtod(part.c_str(), nullptr));
    }
  }
  query.k = std::strtoul(GetFlag(flags, "k", "10").c_str(), nullptr, 10);
  query.deadline_ms =
      std::strtod(GetFlag(flags, "deadline-ms", "0").c_str(), nullptr);
  query.max_evals =
      std::strtoul(GetFlag(flags, "max-evals", "0").c_str(), nullptr, 10);

  const std::string box_flag = GetFlag(flags, "box");
  const std::string lambda_flag = GetFlag(flags, "lambda");
  const std::string reverse_flag = GetFlag(flags, "reverse");
  if (!box_flag.empty()) {
    query.scenario = wire::Scenario::kConstrained;
    std::vector<std::string> parts;
    std::stringstream bss(box_flag);
    while (std::getline(bss, part, ',')) parts.push_back(part);
    query.box = AttributeBox::All(parts.size());
    for (std::size_t a = 0; a < parts.size(); ++a) {
      const std::size_t colon = parts[a].find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--box component \"%s\" is not lo:hi\n",
                     parts[a].c_str());
        return 2;
      }
      const std::string lo = parts[a].substr(0, colon);
      const std::string hi = parts[a].substr(colon + 1);
      if (!lo.empty()) query.box.lo[a] = std::strtod(lo.c_str(), nullptr);
      if (!hi.empty()) query.box.hi[a] = std::strtod(hi.c_str(), nullptr);
    }
  } else if (!lambda_flag.empty()) {
    query.scenario = wire::Scenario::kDiversified;
    query.lambda = std::strtod(lambda_flag.c_str(), nullptr);
    query.pool_factor =
        std::strtoul(GetFlag(flags, "pool-factor", "4").c_str(), nullptr, 10);
  } else if (!reverse_flag.empty()) {
    query.scenario = wire::Scenario::kReverse;
    query.reverse_target = static_cast<std::uint32_t>(
        std::strtoul(reverse_flag.c_str(), nullptr, 10));
  }

  DrliClient client;
  if (const int rc = ConnectOrDie(flags, &client); rc != 0) return rc;
  Stopwatch timer;
  auto result = client.Query(query);
  const double ms = timer.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const wire::WireResult& r = result.value();
  if (r.status == wire::ReplyStatus::kOverloaded) {
    std::fprintf(stderr, "overloaded: %s (retry after %u ms)\n",
                 r.message.c_str(), r.retry_after_ms);
    return 3;
  }
  if (r.status != wire::ReplyStatus::kOk) {
    std::fprintf(stderr, "%s: %s\n", wire::ReplyStatusName(r.status),
                 r.message.c_str());
    return 1;
  }
  std::printf("generation %llu, %.3f ms round trip, %llu tuples "
              "evaluated\n",
              static_cast<unsigned long long>(r.generation), ms,
              static_cast<unsigned long long>(r.tuples_evaluated));
  if (query.scenario == wire::Scenario::kReverse) {
    std::printf("reverse top-%u of tuple %u:",
                static_cast<unsigned>(query.k), query.reverse_target);
    if (r.intervals.empty()) std::printf(" never in the top-k");
    for (const wire::WireInterval& iv : r.intervals) {
      std::printf(" [%.5f, %.5f]", iv.lo, iv.hi);
    }
    std::printf("\n");
    return 0;
  }
  for (std::size_t i = 0; i < r.items.size(); ++i) {
    std::printf("  %2zu. tuple %-8u score %.6f%s\n", i + 1, r.items[i].id,
                r.items[i].score,
                r.termination != 0 && i >= r.certified_prefix
                    ? "  (uncertified)"
                    : "");
  }
  if (r.termination != 0) {
    std::printf("partial result: first %llu of %zu items certified exact\n",
                static_cast<unsigned long long>(r.certified_prefix),
                r.items.size());
  }
  return 0;
}

int CmdHealth(const Flags& flags) {
  DrliClient client;
  if (const int rc = ConnectOrDie(flags, &client); rc != 0) return rc;
  auto health = client.Health();
  if (!health.ok()) {
    std::fprintf(stderr, "%s\n", health.status().ToString().c_str());
    return 1;
  }
  const wire::HealthInfo& info = health.value();
  std::printf("%s generation=%llu in_flight=%llu served=%llu shed=%llu\n",
              info.draining ? "draining" : "serving",
              static_cast<unsigned long long>(info.generation),
              static_cast<unsigned long long>(info.queries_in_flight),
              static_cast<unsigned long long>(info.queries_served),
              static_cast<unsigned long long>(info.queries_shed));
  return 0;
}

int CmdInspect(const Flags& flags) {
  DrliClient client;
  if (const int rc = ConnectOrDie(flags, &client); rc != 0) return rc;
  auto inspect = client.Inspect();
  if (!inspect.ok()) {
    std::fprintf(stderr, "%s\n", inspect.status().ToString().c_str());
    return 1;
  }
  const wire::InspectInfo& info = inspect.value();
  std::printf("snapshot %s (generation %llu): %s, n=%llu d=%u\n",
              info.snapshot.c_str(),
              static_cast<unsigned long long>(info.generation),
              info.engine.c_str(),
              static_cast<unsigned long long>(info.num_points), info.dim);
  if (!info.last_reload_error.empty()) {
    std::printf("last_reload_error=%s\n", info.last_reload_error.c_str());
  }
  return 0;
}

int CmdReload(const Flags& flags) {
  DrliClient client;
  if (const int rc = ConnectOrDie(flags, &client); rc != 0) return rc;
  auto reload = client.Reload();
  if (!reload.ok()) {
    std::fprintf(stderr, "%s\n", reload.status().ToString().c_str());
    return 1;
  }
  const wire::ReloadInfo& info = reload.value();
  if (!info.error.empty()) {
    std::fprintf(stderr,
                 "reload failed: %s (old generation %llu kept serving)\n",
                 info.error.c_str(),
                 static_cast<unsigned long long>(info.generation));
    return 1;
  }
  std::printf("%s: generation %llu\n",
              info.reloaded ? "swapped" : "unchanged",
              static_cast<unsigned long long>(info.generation));
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (command == "query") return CmdQuery(flags);
  if (command == "health") return CmdHealth(flags);
  if (command == "inspect") return CmdInspect(flags);
  if (command == "reload") return CmdReload(flags);
  return Usage();
}

}  // namespace
}  // namespace drli

int main(int argc, char** argv) { return drli::Main(argc, argv); }
