#include "server/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.h"
#include "common/stopwatch.h"

namespace drli {
namespace server {

namespace {

// One frame's worth of socket reads per EPOLLIN burst iteration.
constexpr std::size_t kReadChunk = 64 * 1024;
// Cap on bytes drained per EPOLLIN event: epoll is level-triggered,
// so whatever is left re-arms immediately, and a firehose client can
// neither pin its loop thread nor grow inbuf without bound while
// other connections wait.
constexpr std::size_t kMaxReadBurst = 4 * kReadChunk;
constexpr int kEpollWaitMs = 50;
constexpr int kListenBacklog = 128;

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

// A connected client socket. The owning event loop is the only thread
// that touches fd / inbuf / epoll registration; workers hand replies
// over through outbuf under `mu` and wake the loop, which does every
// actual send. `closed` flips exactly once (under `mu`), after which
// workers drop replies instead of appending -- the fd may already be
// reused by a new connection.
struct Connection {
  int fd = -1;
  std::size_t loop = 0;

  // Loop-thread state.
  std::vector<std::uint8_t> inbuf;
  std::size_t inpos = 0;
  bool want_write = false;
  Stopwatch last_activity;

  // Shared state.
  std::mutex mu;
  std::vector<std::uint8_t> outbuf;
  std::size_t outpos = 0;
  bool closed = false;
  bool close_after_flush = false;
  Stopwatch last_write_progress;  // meaningful while outbuf nonempty
};

namespace {

struct WorkItem {
  std::shared_ptr<Connection> conn;
  wire::Request request;
  std::uint32_t request_id = 0;
  // Started when the frame was decoded: wire deadlines count queue
  // wait against this clock.
  Stopwatch arrival;
  std::size_t admitted = 0;  // wire queries counted against in-flight
};

struct EventLoop {
  std::size_t index = 0;
  int epoll_fd = -1;
  int listen_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  // The loop thread owns the map's contents; the mutex covers the map
  // structure itself, which the drain path reads from another thread.
  std::mutex conns_mu;
  std::unordered_map<int, std::shared_ptr<Connection>> conns;

  std::vector<std::shared_ptr<Connection>> Snapshot() {
    std::lock_guard<std::mutex> lock(conns_mu);
    std::vector<std::shared_ptr<Connection>> out;
    out.reserve(conns.size());
    for (auto& [fd, conn] : conns) out.push_back(conn);
    return out;
  }
};

}  // namespace

struct TopKServer::Impl {
  ServerOptions options;
  ServingEngine engine;
  std::uint16_t bound_port = 0;

  std::vector<std::unique_ptr<EventLoop>> loops;
  std::vector<std::thread> workers;
  std::thread watcher;

  std::atomic<bool> started{false};
  std::atomic<bool> draining{false};
  std::atomic<bool> stop{false};

  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> malformed{0};
  std::atomic<std::uint64_t> conns_opened{0};

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<WorkItem> queue;
  std::atomic<std::uint64_t> busy_workers{0};
  std::mutex shutdown_mu;  // serializes concurrent Shutdown calls

  ~Impl() { ShutdownNow(); }

  // --- startup ---

  Status Start(const std::string& dir, const ServerOptions& opts);
  StatusOr<int> OpenListener();

  // --- event loop ---

  void LoopMain(std::size_t loop_index);
  void AcceptAll(EventLoop& loop);
  void ReadConn(EventLoop& loop, const std::shared_ptr<Connection>& conn);
  void ProcessFrames(EventLoop& loop, const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   wire::Frame&& frame);
  void FlushConn(EventLoop& loop, const std::shared_ptr<Connection>& conn);
  void CloseConn(EventLoop& loop, int fd);
  void ScanTimeouts(EventLoop& loop);

  // --- workers ---

  void WorkerMain();
  void Execute(WorkItem& item);

  void WatcherMain();

  // Queues `payload` as one reply frame on `conn` and wakes its loop.
  void SendReply(const std::shared_ptr<Connection>& conn,
                 std::uint32_t request_id,
                 const std::vector<std::uint8_t>& payload);
  void WakeLoop(std::size_t loop_index);
  void WakeAllLoops();

  bool AllFlushedAndIdle();
  void ShutdownNow();
};

Status TopKServer::Impl::Start(const std::string& dir,
                               const ServerOptions& opts) {
  options = opts;
  const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());
  if (options.num_loops == 0) options.num_loops = std::min<std::size_t>(cores, 4);
  if (options.num_workers == 0) {
    options.num_workers = std::min<std::size_t>(cores, 8);
  }
  if (options.max_in_flight == 0) options.max_in_flight = 256;

  Status status = engine.Open(dir);
  if (!status.ok()) return status;

  bound_port = options.port;
  for (std::size_t i = 0; i < options.num_loops; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->index = i;
    auto listener = OpenListener();
    if (!listener.ok()) return listener.status();
    loop->listen_fd = listener.value();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) return Errno("epoll_create1");
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->wake_fd < 0) return Errno("eventfd");
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = loop->listen_fd;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->listen_fd, &ev) != 0) {
      return Errno("epoll_ctl(listener)");
    }
    ev.data.fd = loop->wake_fd;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev) != 0) {
      return Errno("epoll_ctl(eventfd)");
    }
    loops.push_back(std::move(loop));
  }

  started.store(true);
  for (std::size_t i = 0; i < loops.size(); ++i) {
    loops[i]->thread = std::thread([this, i] { LoopMain(i); });
  }
  for (std::size_t i = 0; i < options.num_workers; ++i) {
    workers.emplace_back([this] { WorkerMain(); });
  }
  watcher = std::thread([this] { WatcherMain(); });
  return Status::Ok();
}

StatusOr<int> TopKServer::Impl::OpenListener() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Every loop binds its own listener to the same port: the kernel
  // load-balances accepts across them (thread-per-core accepting).
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(bound_port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen host: " + options.host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Errno("bind " + options.host + ":" +
                          std::to_string(bound_port));
    ::close(fd);
    return status;
  }
  if (bound_port == 0) {
    // First listener picked the ephemeral port; the rest reuse it.
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
        0) {
      Status status = Errno("getsockname");
      ::close(fd);
      return status;
    }
    bound_port = ntohs(addr.sin_port);
  }
  if (::listen(fd, kListenBacklog) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  return fd;
}

// --- event loop ---

void TopKServer::Impl::LoopMain(std::size_t loop_index) {
  EventLoop& loop = *loops[loop_index];
  bool accepting = true;
  struct epoll_event events[64];
  while (true) {
    const int n = ::epoll_wait(loop.epoll_fd, events, 64, kEpollWaitMs);
    if (n < 0 && errno != EINTR) break;
    if (accepting && draining.load()) {
      // Drain: stop accepting; existing connections keep flushing.
      ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, loop.listen_fd, nullptr);
      ::close(loop.listen_fd);
      loop.listen_fd = -1;
      accepting = false;
    }
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.wake_fd) {
        std::uint64_t drainer = 0;
        while (::read(loop.wake_fd, &drainer, sizeof(drainer)) > 0) {
        }
        // A wake means some connection has replies to flush.
        for (auto& conn : loop.Snapshot()) FlushConn(loop, conn);
        continue;
      }
      if (fd == loop.listen_fd && accepting) {
        AcceptAll(loop);
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(loop.conns_mu);
        auto it = loop.conns.find(fd);
        if (it == loop.conns.end()) continue;
        conn = it->second;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(loop, fd);
        continue;
      }
      if (events[i].events & EPOLLIN) ReadConn(loop, conn);
      if (events[i].events & EPOLLOUT) FlushConn(loop, conn);
    }
    ScanTimeouts(loop);
    if (stop.load()) break;
  }
  // Hard stop: close the sockets this loop owns. wake_fd and epoll_fd
  // stay open -- workers and WakeLoop may still write to wake_fd until
  // they are joined, and closing here could hand the fd number to an
  // unrelated descriptor mid-write. ShutdownNow closes both after
  // every thread that can touch them has been joined.
  for (auto& conn : loop.Snapshot()) CloseConn(loop, conn->fd);
  if (loop.listen_fd >= 0) {
    ::close(loop.listen_fd);
    loop.listen_fd = -1;
  }
}

void TopKServer::Impl::AcceptAll(EventLoop& loop) {
  while (true) {
    const int fd = ::accept4(loop.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or transient accept error: wait for epoll
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->loop = loop.index;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(loop.conns_mu);
      loop.conns.emplace(fd, std::move(conn));
    }
    conns_opened.fetch_add(1);
  }
}

void TopKServer::Impl::ReadConn(EventLoop& loop,
                                const std::shared_ptr<Connection>& conn) {
  bool peer_closed = false;
  std::size_t burst = 0;
  while (burst < kMaxReadBurst) {
    const std::size_t old_size = conn->inbuf.size();
    conn->inbuf.resize(old_size + kReadChunk);
    const ssize_t n =
        ::recv(conn->fd, conn->inbuf.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      conn->inbuf.resize(old_size + static_cast<std::size_t>(n));
      conn->last_activity.Restart();
      burst += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < kReadChunk) break;
      continue;
    }
    conn->inbuf.resize(old_size);
    if (n == 0) {
      peer_closed = true;  // mid-request disconnects land here
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    peer_closed = true;
    break;
  }
  if (!conn->inbuf.empty()) ProcessFrames(loop, conn);
  if (peer_closed) CloseConn(loop, conn->fd);
}

void TopKServer::Impl::ProcessFrames(EventLoop& loop,
                                     const std::shared_ptr<Connection>& conn) {
  while (true) {
    wire::Frame frame;
    std::string error;
    const wire::FrameScan scan =
        wire::ScanFrame(conn->inbuf, &conn->inpos, &frame, &error);
    if (scan == wire::FrameScan::kNeedMore) break;
    if (scan == wire::FrameScan::kCorrupt) {
      // The stream cannot be resynchronized: one best-effort reply,
      // then close once it flushes.
      malformed.fetch_add(1);
      SendReply(conn, 0,
                wire::EncodeStatusReply(wire::ReplyStatus::kMalformed, error));
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->close_after_flush = true;
      }
      conn->inbuf.clear();
      conn->inpos = 0;
      FlushConn(loop, conn);
      return;
    }
    HandleFrame(conn, std::move(frame));
  }
  // Drop consumed bytes so the buffer never grows beyond one frame
  // plus one read burst.
  if (conn->inpos > 0) {
    conn->inbuf.erase(conn->inbuf.begin(),
                      conn->inbuf.begin() +
                          static_cast<std::ptrdiff_t>(conn->inpos));
    conn->inpos = 0;
  }
  FlushConn(loop, conn);
}

void TopKServer::Impl::HandleFrame(const std::shared_ptr<Connection>& conn,
                                   wire::Frame&& frame) {
  wire::Request request;
  Status status = wire::DecodeRequest(frame.payload, &request);
  if (!status.ok()) {
    // Frame was intact (CRC passed) but the payload is nonsense: the
    // stream is still framed, so reply and keep the connection.
    malformed.fetch_add(1);
    SendReply(conn, frame.request_id,
              wire::EncodeStatusReply(wire::ReplyStatus::kMalformed,
                                      status.message()));
    return;
  }
  if (draining.load()) {
    SendReply(conn, frame.request_id,
              wire::EncodeStatusReply(wire::ReplyStatus::kShuttingDown,
                                      "server is draining"));
    return;
  }
  switch (request.verb) {
    case wire::Verb::kHealth: {
      wire::HealthInfo info;
      auto gen = engine.Acquire();
      info.generation = gen->sequence;
      info.queries_served = served.load();
      info.queries_shed = shed.load();
      info.queries_in_flight = in_flight.load();
      info.reloads = engine.reload_count();
      info.malformed_frames = malformed.load();
      info.draining = draining.load() ? 1 : 0;
      SendReply(conn, frame.request_id, wire::EncodeHealthReply(info));
      return;
    }
    case wire::Verb::kInspect: {
      wire::InspectInfo info;
      auto gen = engine.Acquire();
      info.engine = gen->index->name();
      info.snapshot = gen->snapshot;
      info.generation = gen->sequence;
      info.num_points = gen->index->size();
      info.dim = static_cast<std::uint32_t>(gen->dim);
      info.last_reload_error = engine.last_reload_error();
      SendReply(conn, frame.request_id, wire::EncodeInspectReply(info));
      return;
    }
    case wire::Verb::kReload: {
      WorkItem item;
      item.conn = conn;
      item.request = std::move(request);
      item.request_id = frame.request_id;
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        queue.push_back(std::move(item));
      }
      queue_cv.notify_one();
      return;
    }
    case wire::Verb::kQuery:
    case wire::Verb::kBatch: {
      const std::size_t n = request.queries.size();
      // One reply frame carries every result, so the worst-case
      // encoded reply is bounded here, before admission: a well-formed
      // request whose answer could bust the frame cap comes back as an
      // explicit kInvalidQuery instead of an untransmittable reply.
      // Reverse results are interval- (data-) bounded, not k-bounded;
      // non-plain batch slots answer kInvalidQuery and carry no items.
      std::uint64_t worst_items = 0;
      for (const wire::WireQuery& q : request.queries) {
        if (request.verb == wire::Verb::kBatch &&
            q.scenario != wire::Scenario::kPlain) {
          continue;
        }
        worst_items += q.scenario == wire::Scenario::kReverse
                           ? wire::kMaxWireItems
                           : std::min<std::uint64_t>(q.k, wire::kMaxWireItems);
      }
      if (!wire::ReplyFits(n, worst_items)) {
        std::vector<wire::WireResult> results(n);
        for (auto& r : results) {
          r.status = wire::ReplyStatus::kInvalidQuery;
          r.termination =
              static_cast<std::uint8_t>(Termination::kInvalidQuery);
          r.message = "worst-case reply exceeds the frame payload cap; "
                      "lower k or split the batch";
        }
        SendReply(conn, frame.request_id, wire::EncodeResultReply(results));
        return;
      }
      // Deterministic admission: increment first, then shed the whole
      // request on overshoot, so concurrent loop threads can never
      // admit past the cap -- a clear kOverloaded beats a
      // deadline-blown answer.
      const std::uint64_t before = in_flight.fetch_add(n);
      if (before + n > options.max_in_flight) {
        in_flight.fetch_sub(n);
        shed.fetch_add(n);
        std::vector<wire::WireResult> results(n);
        for (auto& r : results) {
          r.status = wire::ReplyStatus::kOverloaded;
          r.termination = static_cast<std::uint8_t>(Termination::kShed);
          r.retry_after_ms = options.retry_after_ms;
          r.message = "shed: server at max in-flight (" +
                      std::to_string(options.max_in_flight) + ")";
        }
        SendReply(conn, frame.request_id, wire::EncodeResultReply(results));
        return;
      }
      WorkItem item;
      item.conn = conn;
      item.request = std::move(request);
      item.request_id = frame.request_id;
      item.admitted = n;
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        queue.push_back(std::move(item));
      }
      queue_cv.notify_one();
      return;
    }
  }
  SendReply(conn, frame.request_id,
            wire::EncodeStatusReply(wire::ReplyStatus::kMalformed,
                                    "unknown verb"));
}

void TopKServer::Impl::FlushConn(EventLoop& loop,
                                 const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  bool want_write = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    while (conn->outpos < conn->outbuf.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->outbuf.data() + conn->outpos,
                 conn->outbuf.size() - conn->outpos, MSG_NOSIGNAL);
      if (n > 0) {
        conn->outpos += static_cast<std::size_t>(n);
        conn->last_write_progress.Restart();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_write = true;
        break;
      }
      close_now = true;  // peer gone mid-write
      break;
    }
    if (conn->outpos == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->outpos = 0;
      if (conn->close_after_flush) close_now = true;
    }
  }
  if (close_now) {
    CloseConn(loop, conn->fd);
    return;
  }
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd;
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void TopKServer::Impl::CloseConn(EventLoop& loop, int fd) {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(loop.conns_mu);
    auto it = loop.conns.find(fd);
    if (it == loop.conns.end()) return;
    conn = it->second;
    loop.conns.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
  }
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
}

void TopKServer::Impl::ScanTimeouts(EventLoop& loop) {
  for (auto& conn : loop.Snapshot()) {
    bool stuck_write = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed) continue;
      stuck_write = !conn->outbuf.empty() &&
                    conn->last_write_progress.ElapsedSeconds() >
                        options.io_timeout_seconds;
    }
    const bool idle = conn->last_activity.ElapsedSeconds() >
                      options.idle_timeout_seconds;
    if (stuck_write || idle) CloseConn(loop, conn->fd);
  }
}

// --- workers ---

void TopKServer::Impl::WorkerMain() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mu);
      queue_cv.wait(lock, [this] { return stop.load() || !queue.empty(); });
      if (queue.empty()) {
        if (stop.load()) return;
        continue;
      }
      item = std::move(queue.front());
      queue.pop_front();
      busy_workers.fetch_add(1);
    }
    Execute(item);
    busy_workers.fetch_sub(1);
  }
}

void TopKServer::Impl::Execute(WorkItem& item) {
  if (options.test_worker_delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options.test_worker_delay_ms));
  }
  if (item.request.verb == wire::Verb::kReload) {
    wire::ReloadInfo info;
    auto result = engine.PollReload();
    if (result.ok()) {
      info.reloaded = result.value() ? 1 : 0;
    } else {
      info.error = result.status().message();
    }
    info.generation = engine.Acquire()->sequence;
    SendReply(item.conn, item.request_id, wire::EncodeReloadReply(info));
    return;
  }

  auto generation = engine.Acquire();
  const std::size_t n = item.request.queries.size();
  std::vector<ExecBudget> budgets(n);
  for (std::size_t i = 0; i < n; ++i) {
    const wire::WireQuery& q = item.request.queries[i];
    double deadline_ms =
        q.deadline_ms > 0.0 ? q.deadline_ms : options.default_deadline_ms;
    if (deadline_ms > 0.0) {
      // The wire deadline covers queue wait: hand the traversal only
      // what is left, floored at a hair above zero so an already-
      // expired request trips the gate immediately and still returns
      // a well-formed certified partial.
      const double remaining =
          deadline_ms / 1e3 - item.arrival.ElapsedSeconds();
      budgets[i].deadline_seconds = std::max(remaining, 1e-9);
    }
    budgets[i].max_evals = static_cast<std::size_t>(q.max_evals);
  }

  std::vector<wire::WireResult> results;
  if (item.request.verb == wire::Verb::kQuery) {
    results.push_back(
        ExecuteWireQuery(*generation, item.request.queries[0], budgets[0]));
  } else {
    results = ExecuteWireBatch(*generation, item.request.queries, budgets,
                               options.max_in_flight);
  }
  for (auto& r : results) {
    if (r.status == wire::ReplyStatus::kOverloaded) {
      r.retry_after_ms = options.retry_after_ms;
      shed.fetch_add(1);
    }
  }
  served.fetch_add(n);
  in_flight.fetch_sub(item.admitted);
  SendReply(item.conn, item.request_id, wire::EncodeResultReply(results));
}

void TopKServer::Impl::WatcherMain() {
  Stopwatch since_poll;
  while (!stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (since_poll.ElapsedSeconds() < options.reload_poll_seconds) continue;
    since_poll.Restart();
    // Failures are recorded by the engine and surfaced via inspect;
    // the watcher keeps polling (the next publish may fix it).
    (void)engine.PollReload();
  }
}

void TopKServer::Impl::SendReply(const std::shared_ptr<Connection>& conn,
                                 std::uint32_t request_id,
                                 const std::vector<std::uint8_t>& payload) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;  // client went away; drop the reply
    if (conn->outbuf.empty()) conn->last_write_progress.Restart();
    if (!wire::AppendFrame(request_id, payload, &conn->outbuf)) {
      // Admission bounds the worst-case reply, so this is a belt-and-
      // braces path: degrade to a bare kError the client can parse
      // rather than ever aborting or emitting a broken frame.
      const bool sent = wire::AppendFrame(
          request_id,
          wire::EncodeStatusReply(wire::ReplyStatus::kError,
                                  "reply exceeds the frame payload cap"),
          &conn->outbuf);
      DRLI_CHECK(sent);  // a bare status reply is a few dozen bytes
    }
  }
  WakeLoop(conn->loop);
}

void TopKServer::Impl::WakeLoop(std::size_t loop_index) {
  if (loop_index >= loops.size()) return;
  if (loops[loop_index]->wake_fd < 0) return;  // already shut down
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(loops[loop_index]->wake_fd, &one, sizeof(one));
}

void TopKServer::Impl::WakeAllLoops() {
  for (std::size_t i = 0; i < loops.size(); ++i) WakeLoop(i);
}

bool TopKServer::Impl::AllFlushedAndIdle() {
  if (in_flight.load() != 0 || busy_workers.load() != 0) return false;
  {
    std::lock_guard<std::mutex> lock(queue_mu);
    if (!queue.empty()) return false;
  }
  for (auto& loop : loops) {
    for (auto& conn : loop->Snapshot()) {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->closed && !conn->outbuf.empty()) return false;
    }
  }
  return true;
}

void TopKServer::Impl::ShutdownNow() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu);
  if (started.load()) {
    draining.store(true);
    WakeAllLoops();
    // Drain: let queued work finish and replies flush, bounded.
    Stopwatch drain;
    while (drain.ElapsedSeconds() < options.drain_timeout_seconds) {
      // conns maps belong to live loop threads; AllFlushedAndIdle only
      // reads them while loops are still running, which they are here.
      if (AllFlushedAndIdle()) break;
      queue_cv.notify_all();
      WakeAllLoops();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true);
    queue_cv.notify_all();
    WakeAllLoops();
    for (auto& worker : workers) {
      if (worker.joinable()) worker.join();
    }
    if (watcher.joinable()) watcher.join();
    for (auto& loop : loops) {
      if (loop->thread.joinable()) loop->thread.join();
    }
    started.store(false);
  }
  // Only now -- with every worker and loop thread joined -- is it safe
  // to close the wake/epoll fds: no stray WakeLoop write can land on a
  // recycled descriptor. Also runs for a Start that failed partway, so
  // its half-built loops do not leak fds.
  for (auto& loop : loops) {
    if (loop->wake_fd >= 0) {
      ::close(loop->wake_fd);
      loop->wake_fd = -1;
    }
    if (loop->epoll_fd >= 0) {
      ::close(loop->epoll_fd);
      loop->epoll_fd = -1;
    }
    if (loop->listen_fd >= 0) {
      ::close(loop->listen_fd);
      loop->listen_fd = -1;
    }
  }
}

// --- public surface ---

TopKServer::TopKServer() : impl_(std::make_unique<Impl>()) {}

TopKServer::~TopKServer() { Shutdown(); }

Status TopKServer::Start(const std::string& dir,
                         const ServerOptions& options) {
  return impl_->Start(dir, options);
}

std::uint16_t TopKServer::port() const { return impl_->bound_port; }

void TopKServer::Shutdown() { impl_->ShutdownNow(); }

bool TopKServer::draining() const { return impl_->draining.load(); }

ServerCounters TopKServer::counters() const {
  ServerCounters counters;
  counters.queries_served = impl_->served.load();
  counters.queries_shed = impl_->shed.load();
  counters.queries_in_flight = impl_->in_flight.load();
  counters.malformed_frames = impl_->malformed.load();
  counters.connections_opened = impl_->conns_opened.load();
  counters.reloads = impl_->engine.reload_count();
  return counters;
}

ServingEngine& TopKServer::engine() { return impl_->engine; }

}  // namespace server
}  // namespace drli
