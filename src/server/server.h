// Epoll-based TCP serving front end (DESIGN.md §10): thread-per-core
// event loops (each with its own SO_REUSEPORT listener and epoll set)
// accept and frame connections; a shared worker pool answers query
// work through the QueryBatch machinery; a watcher thread polls the
// serving directory's CURRENT pointer for hot generation swaps.
//
// Robustness contract, in degradation order:
//   1. full answers while capacity and deadlines allow;
//   2. certified partials when a per-request deadline or step budget
//      trips mid-traversal (wire deadline_ms counts from frame arrival,
//      queue wait included -- a request that waited its whole deadline
//      out gets an immediate empty kDeadline partial, not a stale run);
//   3. deterministic load shedding with kOverloaded + retry-after once
//      admission control's in-flight cap is reached;
//   4. kShuttingDown while draining (in-flight work still completes).
// Malformed input never crashes: a corrupt frame header/CRC earns one
// best-effort kMalformed reply and a close, an undecodable payload
// under an intact frame earns kMalformed with the connection kept, and
// idle / stuck-IO connections are reaped by timeout.

#ifndef DRLI_SERVER_SERVER_H_
#define DRLI_SERVER_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "server/protocol.h"
#include "server/serving_engine.h"

namespace drli {
namespace server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; port() reports the one the kernel chose.
  std::uint16_t port = 0;
  // Event loops (each an acceptor + epoll set). 0 = one per core,
  // capped at 4.
  std::size_t num_loops = 0;
  // Query worker threads. 0 = one per core, capped at 8.
  std::size_t num_workers = 0;
  // Admission cap on wire queries queued or executing; at the cap new
  // requests shed deterministically with kOverloaded. 0 = 256.
  std::size_t max_in_flight = 0;
  // Deadline applied to queries whose frame carries none (ms; 0 = no
  // default deadline).
  double default_deadline_ms = 0.0;
  // Connections silent this long are closed.
  double idle_timeout_seconds = 60.0;
  // Connections with a reply stuck mid-write this long are closed.
  double io_timeout_seconds = 10.0;
  // CURRENT watcher period.
  double reload_poll_seconds = 0.25;
  // Retry hint carried in kOverloaded replies.
  std::uint32_t retry_after_ms = 50;
  // Shutdown() waits this long for in-flight work and reply flushes.
  double drain_timeout_seconds = 5.0;
  // Test hook: every worker sleeps this long per request before
  // executing, making overload and drain windows deterministic.
  double test_worker_delay_ms = 0.0;
};

struct ServerCounters {
  std::uint64_t queries_served = 0;   // wire queries answered (any status)
  std::uint64_t queries_shed = 0;     // kOverloaded rejections
  std::uint64_t queries_in_flight = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t connections_opened = 0;
  std::uint64_t reloads = 0;
};

// The server. Start() spawns the loops, workers, and watcher;
// Shutdown() drains gracefully (idempotent; the destructor calls it).
class TopKServer {
 public:
  TopKServer();
  ~TopKServer();
  TopKServer(const TopKServer&) = delete;
  TopKServer& operator=(const TopKServer&) = delete;

  // Opens `dir` through a ServingEngine (loads the CURRENT
  // generation), binds, listens, and spawns the threads.
  Status Start(const std::string& dir, const ServerOptions& options);

  // Port actually bound (== options.port unless that was 0).
  std::uint16_t port() const;

  // Graceful drain: stop accepting, answer queued work, flush replies,
  // join every thread. Safe to call more than once / concurrently
  // with serving; wired to SIGTERM/SIGINT by `drli serve`.
  void Shutdown();

  bool draining() const;
  ServerCounters counters() const;
  // The generation manager (tests publish + force-poll through it).
  ServingEngine& engine();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace server
}  // namespace drli

#endif  // DRLI_SERVER_SERVER_H_
