// Generation management for the serving front end (DESIGN.md §10).
//
// A serving directory holds generation-named snapshot files (any
// format the CLI writes: dl+ v2, DRLS shard manifest + shards, DRLT
// tiered manifest + runs) plus one pointer file, CURRENT, whose first
// line names the snapshot to serve. Publishing a new generation is a
// write to CURRENT.tmp followed by an atomic rename, so a reader of
// CURRENT sees either the old name or the new name, never a torn one.
//
// The engine polls CURRENT by stat (inode + mtime + size -- the rename
// always changes the inode) and, on a pointer change, loads the new
// snapshot read-only (mmap for v2 single indexes) and swaps it in
// behind a shared_ptr. In-flight queries keep the generation they
// started on pinned through their own shared_ptr copy, so a reload
// drops zero queries and frees the old mapping exactly when its last
// query finishes. A failed load (missing file, torn snapshot, bad
// CURRENT) keeps the old generation serving and surfaces the error
// through last_reload_error() / the kReload verb.

#ifndef DRLI_SERVER_SERVING_ENGINE_H_
#define DRLI_SERVER_SERVING_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dual_layer.h"
#include "core/tiered_index.h"
#include "server/protocol.h"
#include "shard/sharded_index.h"
#include "topk/query.h"

namespace drli {
namespace server {

// One loaded snapshot generation. Exactly one of the engine slots is
// engaged; `index` points at it through the common interface. Pinned
// by shared_ptr: the ServingEngine holds the serving generation, every
// in-flight query holds the generation it started on.
struct ServingGeneration {
  // Monotone per-process sequence number; bumps on every swap. Echoed
  // in every reply so a client (and the reload race test) can tie an
  // answer to the snapshot that produced it.
  std::uint64_t sequence = 0;
  // The CURRENT pointer value this generation was loaded from.
  std::string snapshot;

  std::optional<DualLayerIndex> dl;
  std::optional<ShardedDualLayerIndex> sharded;
  std::optional<TieredDualLayerIndex> tiered;
  const TopKIndex* index = nullptr;
  std::size_t dim = 0;
};

class ServingEngine {
 public:
  ServingEngine() = default;
  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  // Opens `dir` and loads the generation its CURRENT file names.
  Status Open(const std::string& dir);

  // Pins the serving generation (never null after a successful Open).
  std::shared_ptr<const ServingGeneration> Acquire() const;

  // Checks CURRENT for a pointer change; loads and swaps on one.
  // Returns true when a new generation was swapped in, false when the
  // pointer is unchanged. A failed load keeps the old generation
  // serving, records last_reload_error(), and returns the error.
  StatusOr<bool> PollReload();

  const std::string& dir() const { return dir_; }
  // Completed swaps since Open.
  std::uint64_t reload_count() const;
  // Detail of the most recent failed reload; empty after a clean one.
  std::string last_reload_error() const;

 private:
  Status LoadGeneration(const std::string& name,
                        std::shared_ptr<const ServingGeneration>* out);
  // Reads the first line of CURRENT (trimmed), rejecting empty or
  // path-escaping names.
  StatusOr<std::string> ReadCurrent() const;

  std::string dir_;
  mutable std::mutex mu_;           // guards everything below
  std::shared_ptr<const ServingGeneration> generation_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t reload_count_ = 0;
  std::string last_reload_error_;
  // Identity of CURRENT at the last load/poll (rename changes the
  // inode, so pointer bumps are detected without reading the file).
  std::uint64_t current_ino_ = 0;
  std::int64_t current_mtime_ns_ = 0;
  std::int64_t current_size_ = 0;
  std::mutex reload_mu_;  // serializes concurrent PollReload calls
};

// Atomically repoints `dir`/CURRENT at `snapshot_name`: writes
// CURRENT.tmp, fsyncs, renames over CURRENT. The snapshot file(s)
// must already be in place -- publish is the last step.
Status PublishSnapshot(const std::string& dir,
                       const std::string& snapshot_name);

// Runs one wire query against a pinned generation with the budget the
// server derived from its deadline fields. Scenario support over the
// wire: plain and constrained run on every engine; diversified and
// reverse need a single dl+ generation (and reverse a 2-d relation);
// anything else is a recoverable kInvalidQuery reply, never a crash.
wire::WireResult ExecuteWireQuery(const ServingGeneration& generation,
                                  const wire::WireQuery& query,
                                  const ExecBudget& budget);

// Runs a kBatch frame through the TopKIndex::QueryBatch admission
// machinery: plain queries are batched (parallel fast path, validate-
// before-shed, deterministic shedding at `max_in_flight`); non-plain
// scenarios come back kInvalidQuery without consuming a slot (use
// kQuery for scenario routing). budgets[i] is query i's ExecBudget.
std::vector<wire::WireResult> ExecuteWireBatch(
    const ServingGeneration& generation,
    const std::vector<wire::WireQuery>& queries,
    const std::vector<ExecBudget>& budgets, std::size_t max_in_flight);

}  // namespace server
}  // namespace drli

#endif  // DRLI_SERVER_SERVING_ENGINE_H_
