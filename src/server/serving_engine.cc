#include "server/serving_engine.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/serialization.h"
#include "scenarios/constrained.h"
#include "scenarios/diversified.h"
#include "scenarios/reverse_topk.h"
#include "shard/shard_io.h"
#include "storage/mmap_file.h"
#include "storage/tiered_io.h"

namespace drli {
namespace server {

namespace {

constexpr char kCurrentName[] = "CURRENT";

struct FileIdentity {
  std::uint64_t ino = 0;
  std::int64_t mtime_ns = 0;
  std::int64_t size = 0;
};

Status StatIdentity(const std::string& path, FileIdentity* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError("stat(" + path + "): " + std::strerror(errno));
  }
  out->ino = static_cast<std::uint64_t>(st.st_ino);
  out->mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                  st.st_mtim.tv_nsec;
  out->size = static_cast<std::int64_t>(st.st_size);
  return Status::Ok();
}

wire::WireResult FromTopKResult(const TopKResult& result,
                                std::uint64_t sequence) {
  wire::WireResult out;
  switch (result.termination) {
    case Termination::kShed:
      out.status = wire::ReplyStatus::kOverloaded;
      break;
    case Termination::kInvalidQuery:
      out.status = wire::ReplyStatus::kInvalidQuery;
      break;
    case Termination::kError:
      out.status = wire::ReplyStatus::kError;
      break;
    default:
      out.status = wire::ReplyStatus::kOk;
  }
  out.termination = static_cast<std::uint8_t>(result.termination);
  out.certified_prefix = result.certified_prefix;
  out.frontier_bound = result.frontier_bound;
  out.items.reserve(result.items.size());
  for (const ScoredTuple& item : result.items) {
    out.items.push_back({item.id, item.score, item.score});
  }
  out.tuples_evaluated = result.stats.tuples_evaluated;
  out.generation = sequence;
  out.message = result.error;
  return out;
}

wire::WireResult InvalidWireQuery(std::uint64_t sequence,
                                  const std::string& message) {
  wire::WireResult out;
  out.status = wire::ReplyStatus::kInvalidQuery;
  out.termination = static_cast<std::uint8_t>(Termination::kInvalidQuery);
  out.generation = sequence;
  out.message = message;
  return out;
}

}  // namespace

Status ServingEngine::Open(const std::string& dir) {
  dir_ = dir;
  auto name = ReadCurrent();
  if (!name.ok()) return name.status();
  FileIdentity id;
  Status stat_status = StatIdentity(dir_ + "/" + kCurrentName, &id);
  if (!stat_status.ok()) return stat_status;
  std::shared_ptr<const ServingGeneration> loaded;
  Status status = LoadGeneration(name.value(), &loaded);
  if (!status.ok()) return status;
  std::lock_guard<std::mutex> lock(mu_);
  generation_ = std::move(loaded);
  current_ino_ = id.ino;
  current_mtime_ns_ = id.mtime_ns;
  current_size_ = id.size;
  return Status::Ok();
}

std::shared_ptr<const ServingGeneration> ServingEngine::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

StatusOr<bool> ServingEngine::PollReload() {
  // One reload at a time; concurrent pollers (the watcher thread and
  // kReload verbs from any worker) queue here, readers never do.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  FileIdentity id;
  Status stat_status = StatIdentity(dir_ + "/" + kCurrentName, &id);
  if (!stat_status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    last_reload_error_ = stat_status.message();
    return stat_status;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id.ino == current_ino_ && id.mtime_ns == current_mtime_ns_ &&
        id.size == current_size_) {
      return false;  // pointer unchanged
    }
  }
  auto name = ReadCurrent();
  if (!name.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    last_reload_error_ = name.status().message();
    return name.status();
  }
  {
    // A rewritten pointer naming the same snapshot (touch, re-publish)
    // refreshes the stat cache without a reload.
    std::lock_guard<std::mutex> lock(mu_);
    if (generation_ != nullptr && name.value() == generation_->snapshot) {
      current_ino_ = id.ino;
      current_mtime_ns_ = id.mtime_ns;
      current_size_ = id.size;
      return false;
    }
  }
  std::shared_ptr<const ServingGeneration> loaded;
  Status status = LoadGeneration(name.value(), &loaded);
  std::lock_guard<std::mutex> lock(mu_);
  if (!status.ok()) {
    // Keep the old generation serving; the pointer stays "dirty" so
    // the next poll retries the load.
    last_reload_error_ = status.message();
    return status;
  }
  generation_ = std::move(loaded);
  current_ino_ = id.ino;
  current_mtime_ns_ = id.mtime_ns;
  current_size_ = id.size;
  ++reload_count_;
  last_reload_error_.clear();
  return true;
}

std::uint64_t ServingEngine::reload_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reload_count_;
}

std::string ServingEngine::last_reload_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_reload_error_;
}

StatusOr<std::string> ServingEngine::ReadCurrent() const {
  const std::string path = dir_ + "/" + kCurrentName;
  auto bytes = MmapFile::ReadFileContents(path);
  if (!bytes.ok()) return bytes.status();
  std::string name(bytes.value().begin(), bytes.value().end());
  const std::size_t eol = name.find('\n');
  if (eol != std::string::npos) name.resize(eol);
  while (!name.empty() && (name.back() == '\r' || name.back() == ' ')) {
    name.pop_back();
  }
  if (name.empty()) {
    return Status::Corruption("empty CURRENT pointer in " + dir_);
  }
  // The pointer names a file inside the serving directory; a
  // path-escaping name in a tampered CURRENT must not be followed.
  if (name.front() == '/' || name.find("..") != std::string::npos) {
    return Status::Corruption("CURRENT pointer escapes serving dir: " + name);
  }
  return name;
}

Status ServingEngine::LoadGeneration(
    const std::string& name, std::shared_ptr<const ServingGeneration>* out) {
  const std::string path = dir_ + "/" + name;
  auto generation = std::make_shared<ServingGeneration>();
  generation->snapshot = name;
  if (IsShardManifest(path)) {
    auto loaded = LoadShardedIndex(path);
    if (!loaded.ok()) return loaded.status();
    generation->sharded.emplace(std::move(loaded).value());
    generation->index = &*generation->sharded;
    generation->dim = generation->sharded->dim();
  } else if (IsTieredManifest(path)) {
    auto loaded = LoadTieredIndex(path);
    if (!loaded.ok()) return loaded.status();
    generation->tiered.emplace(std::move(loaded).value());
    generation->index = &*generation->tiered;
    generation->dim = generation->tiered->dim();
  } else {
    auto loaded = LoadDualLayerIndex(path);  // prefer_mmap: read-only map
    if (!loaded.ok()) return loaded.status();
    generation->dl.emplace(std::move(loaded).value());
    generation->index = &*generation->dl;
    generation->dim = generation->dl->points().dim();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation->sequence = next_sequence_++;
  }
  *out = std::move(generation);
  return Status::Ok();
}

Status PublishSnapshot(const std::string& dir,
                       const std::string& snapshot_name) {
  const std::string tmp = dir + "/" + kCurrentName + ".tmp";
  const std::string final_path = dir + "/" + kCurrentName;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + tmp + "): " + std::strerror(errno));
  }
  const std::string contents = snapshot_name + "\n";
  std::size_t done = 0;
  while (done < contents.size()) {
    const ssize_t n = ::write(fd, contents.data() + done,
                              contents.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("write(" + tmp + "): " + err);
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fsync(" + tmp + "): " + err);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Status::IoError("rename(" + tmp + " -> " + final_path +
                           "): " + std::strerror(errno));
  }
  return Status::Ok();
}

wire::WireResult ExecuteWireQuery(const ServingGeneration& generation,
                                  const wire::WireQuery& query,
                                  const ExecBudget& budget) {
  if (query.k > wire::kMaxWireItems) {
    return InvalidWireQuery(
        generation.sequence,
        "k exceeds the wire reply bound (" +
            std::to_string(wire::kMaxWireItems) + ")");
  }
  const std::size_t k = static_cast<std::size_t>(query.k);
  switch (query.scenario) {
    case wire::Scenario::kPlain: {
      TopKQuery q;
      q.weights = query.weights;
      q.k = k;
      q.budget = budget;
      return FromTopKResult(generation.index->Query(q),
                            generation.sequence);
    }
    case wire::Scenario::kConstrained: {
      ConstrainedQuery q;
      q.weights = query.weights;
      q.k = k;
      q.box = query.box;
      q.budget = budget;
      TopKResult result;
      if (generation.dl.has_value()) {
        result = ConstrainedTopK(*generation.dl, q);
      } else if (generation.sharded.has_value()) {
        result = ConstrainedTopK(*generation.sharded, q);
      } else {
        result = ConstrainedTopK(*generation.tiered, q);
      }
      return FromTopKResult(result, generation.sequence);
    }
    case wire::Scenario::kDiversified: {
      if (!generation.dl.has_value()) {
        return InvalidWireQuery(generation.sequence,
                                "diversified queries need a single dl+ "
                                "generation (engine is " +
                                    generation.index->name() + ")");
      }
      DiversifiedQuery q;
      q.weights = query.weights;
      q.k = k;
      q.lambda = query.lambda;
      q.pool_factor = static_cast<std::size_t>(query.pool_factor);
      q.budget = budget;
      DiversifiedResult result =
          DiversifiedTopK(*generation.index, generation.dl->points(), q);
      wire::WireResult out;
      switch (result.termination) {
        case Termination::kInvalidQuery:
          out.status = wire::ReplyStatus::kInvalidQuery;
          break;
        case Termination::kError:
          out.status = wire::ReplyStatus::kError;
          break;
        default:
          out.status = wire::ReplyStatus::kOk;
      }
      out.termination = static_cast<std::uint8_t>(result.termination);
      out.certified_prefix = result.certified_prefix;
      out.frontier_bound = result.pool_bound;
      out.items.reserve(result.picks.size());
      for (const DiversifiedPick& pick : result.picks) {
        out.items.push_back({pick.id, pick.score, pick.utility});
      }
      out.tuples_evaluated = result.stats.tuples_evaluated;
      out.generation = generation.sequence;
      out.message = result.error;
      return out;
    }
    case wire::Scenario::kReverse: {
      if (!generation.dl.has_value()) {
        return InvalidWireQuery(generation.sequence,
                                "reverse top-k needs a single dl+ "
                                "generation (engine is " +
                                    generation.index->name() + ")");
      }
      ReverseTopKQuery q;
      q.target = query.reverse_target;
      q.k = k;
      q.budget = budget;
      ReverseTopKResult result = ReverseTopK2D(*generation.dl, q);
      if (result.intervals.size() > wire::kMaxWireItems) {
        // Interval count is bounded by the data, not by k, so it is
        // only checkable here; an explicit error beats a reply that
        // cannot fit one frame.
        wire::WireResult out;
        out.status = wire::ReplyStatus::kError;
        out.termination = static_cast<std::uint8_t>(Termination::kError);
        out.tuples_evaluated = result.stats.tuples_evaluated;
        out.generation = generation.sequence;
        out.message = "reverse result carries " +
                      std::to_string(result.intervals.size()) +
                      " intervals, over the wire bound (" +
                      std::to_string(wire::kMaxWireItems) + ")";
        return out;
      }
      wire::WireResult out;
      switch (result.termination) {
        case Termination::kInvalidQuery:
          out.status = wire::ReplyStatus::kInvalidQuery;
          break;
        case Termination::kError:
          out.status = wire::ReplyStatus::kError;
          break;
        default:
          out.status = wire::ReplyStatus::kOk;
      }
      out.termination = static_cast<std::uint8_t>(result.termination);
      // Every returned interval of a complete sweep is exact.
      out.certified_prefix =
          result.complete() ? result.intervals.size() : 0;
      out.intervals.reserve(result.intervals.size());
      for (const WeightInterval& iv : result.intervals) {
        out.intervals.push_back({iv.lo, iv.hi});
      }
      out.tuples_evaluated = result.stats.tuples_evaluated;
      out.generation = generation.sequence;
      out.message = result.error;
      return out;
    }
  }
  return InvalidWireQuery(generation.sequence, "unknown scenario");
}

std::vector<wire::WireResult> ExecuteWireBatch(
    const ServingGeneration& generation,
    const std::vector<wire::WireQuery>& queries,
    const std::vector<ExecBudget>& budgets, std::size_t max_in_flight) {
  std::vector<wire::WireResult> out(queries.size());
  std::vector<std::size_t> plain;
  plain.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].scenario != wire::Scenario::kPlain) {
      out[i] = InvalidWireQuery(
          generation.sequence,
          "kBatch carries plain top-k queries only; use kQuery for "
          "scenario routing");
    } else if (queries[i].k > wire::kMaxWireItems) {
      out[i] = InvalidWireQuery(
          generation.sequence,
          "k exceeds the wire reply bound (" +
              std::to_string(wire::kMaxWireItems) + ")");
    } else {
      plain.push_back(i);
    }
  }
  std::vector<TopKQuery> batch;
  batch.reserve(plain.size());
  for (std::size_t i : plain) {
    TopKQuery q;
    q.weights = queries[i].weights;
    q.k = static_cast<std::size_t>(queries[i].k);
    q.budget = budgets[i];
    batch.push_back(std::move(q));
  }
  BatchOptions options;
  options.max_in_flight = max_in_flight;
  std::vector<TopKResult> results =
      generation.index->QueryBatch(batch, options);
  for (std::size_t j = 0; j < plain.size(); ++j) {
    out[plain[j]] = FromTopKResult(results[j], generation.sequence);
  }
  return out;
}

}  // namespace server
}  // namespace drli
