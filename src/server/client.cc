#include "server/client.h"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace drli {
namespace server {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

DrliClient::~DrliClient() { Close(); }

Status DrliClient::Connect(const std::string& host, std::uint16_t port,
                           double timeout_seconds) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  if (timeout_seconds > 0.0) {
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - std::floor(timeout_seconds)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status status = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  rxbuf_.clear();
  rxpos_ = 0;
  return Status::Ok();
}

void DrliClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rxbuf_.clear();
  rxpos_ = 0;
}

Status DrliClient::SendRaw(const std::vector<std::uint8_t>& bytes) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + done, bytes.size() - done,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

StatusOr<wire::Frame> DrliClient::ReadFrame() {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  while (true) {
    wire::Frame frame;
    std::string error;
    const wire::FrameScan scan =
        wire::ScanFrame(rxbuf_, &rxpos_, &frame, &error);
    if (scan == wire::FrameScan::kFrame) {
      if (rxpos_ == rxbuf_.size()) {
        rxbuf_.clear();
        rxpos_ = 0;
      }
      return frame;
    }
    if (scan == wire::FrameScan::kCorrupt) {
      return Status::Corruption("corrupt reply frame: " + error);
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("receive timeout");
      }
      return Errno("recv");
    }
    rxbuf_.insert(rxbuf_.end(), chunk, chunk + n);
  }
}

Status DrliClient::SendRequest(const wire::Request& request,
                               std::uint32_t* id) {
  *id = next_request_id_++;
  if (next_request_id_ == 0) next_request_id_ = 1;
  std::vector<std::uint8_t> frame;
  if (!wire::AppendFrame(*id, wire::EncodeRequest(request), &frame)) {
    return Status::InvalidArgument(
        "encoded request exceeds the frame payload cap; split the batch");
  }
  return SendRaw(frame);
}

StatusOr<wire::Frame> DrliClient::Roundtrip(const wire::Request& request) {
  std::uint32_t id = 0;
  Status status = SendRequest(request, &id);
  if (!status.ok()) return status;
  while (true) {
    auto frame = ReadFrame();
    if (!frame.ok()) return frame.status();
    // request_id 0 is the server's "cannot trust your stream" reply to
    // a corrupt frame; with a single request in flight either id is
    // the answer to this call.
    if (frame.value().request_id == id || frame.value().request_id == 0) {
      return frame;
    }
  }
}

StatusOr<wire::WireResult> DrliClient::Query(const wire::WireQuery& query) {
  wire::Request request;
  request.verb = wire::Verb::kQuery;
  request.queries.push_back(query);
  auto frame = Roundtrip(request);
  if (!frame.ok()) return frame.status();
  std::vector<wire::WireResult> results;
  Status status = wire::DecodeResultReply(frame.value().payload, &results);
  if (!status.ok()) return status;
  if (results.size() != 1) {
    return Status::Corruption("expected 1 result, got " +
                              std::to_string(results.size()));
  }
  return std::move(results[0]);
}

StatusOr<std::vector<wire::WireResult>> DrliClient::Batch(
    const std::vector<wire::WireQuery>& queries) {
  wire::Request request;
  request.verb = wire::Verb::kBatch;
  request.queries = queries;
  auto frame = Roundtrip(request);
  if (!frame.ok()) return frame.status();
  std::vector<wire::WireResult> results;
  Status status = wire::DecodeResultReply(frame.value().payload, &results);
  if (!status.ok()) return status;
  return results;
}

StatusOr<wire::HealthInfo> DrliClient::Health() {
  wire::Request request;
  request.verb = wire::Verb::kHealth;
  auto frame = Roundtrip(request);
  if (!frame.ok()) return frame.status();
  wire::HealthInfo info;
  Status status = wire::DecodeHealthReply(frame.value().payload, &info);
  if (!status.ok()) return status;
  return info;
}

StatusOr<wire::InspectInfo> DrliClient::Inspect() {
  wire::Request request;
  request.verb = wire::Verb::kInspect;
  auto frame = Roundtrip(request);
  if (!frame.ok()) return frame.status();
  wire::InspectInfo info;
  Status status = wire::DecodeInspectReply(frame.value().payload, &info);
  if (!status.ok()) return status;
  return info;
}

StatusOr<wire::ReloadInfo> DrliClient::Reload() {
  wire::Request request;
  request.verb = wire::Verb::kReload;
  auto frame = Roundtrip(request);
  if (!frame.ok()) return frame.status();
  wire::ReloadInfo info;
  Status status = wire::DecodeReloadReply(frame.value().payload, &info);
  if (!status.ok()) return status;
  return info;
}

}  // namespace server
}  // namespace drli
