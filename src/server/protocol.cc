#include "server/protocol.h"

#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/crc32c.h"

namespace drli {
namespace wire {
namespace {

// Little-endian append/read helpers. The reader is bounds-checked on
// every access: a hostile payload can make a Get fail, never over-read
// or trigger an unbounded allocation.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>* out) : out_(out) {}

  void U8(std::uint8_t v) { out_->push_back(v); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

 private:
  void Raw(const void* data, std::size_t len) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    out_->insert(out_->end(), bytes, bytes + len);
  }

  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  bool U8(std::uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(std::uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(std::uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s, std::size_t max_len = kMaxFramePayload) {
    std::uint32_t len = 0;
    if (!U32(&len) || len > max_len || len > remaining()) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

 private:
  bool Raw(void* out, std::size_t len) {
    if (len > remaining()) return false;
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void EncodeQueryBody(const WireQuery& query, Writer* w) {
  w->U8(static_cast<std::uint8_t>(query.scenario));
  w->U64(query.k);
  w->F64(query.deadline_ms);
  w->U64(query.max_evals);
  w->U32(static_cast<std::uint32_t>(query.weights.size()));
  for (double v : query.weights) w->F64(v);
  switch (query.scenario) {
    case Scenario::kPlain:
      break;
    case Scenario::kConstrained:
      w->U32(static_cast<std::uint32_t>(query.box.dim()));
      for (std::size_t a = 0; a < query.box.dim(); ++a) {
        w->F64(query.box.lo[a]);
        w->F64(query.box.hi[a]);
      }
      break;
    case Scenario::kDiversified:
      w->F64(query.lambda);
      w->U64(query.pool_factor);
      break;
    case Scenario::kReverse:
      w->U32(query.reverse_target);
      break;
  }
}

bool DecodeQueryBody(Reader* r, WireQuery* query) {
  std::uint8_t scenario = 0;
  if (!r->U8(&scenario) || scenario > 3) return false;
  query->scenario = static_cast<Scenario>(scenario);
  if (!r->U64(&query->k) || !r->F64(&query->deadline_ms) ||
      !r->U64(&query->max_evals)) {
    return false;
  }
  std::uint32_t dim = 0;
  if (!r->U32(&dim) || dim > kMaxWireDim ||
      static_cast<std::size_t>(dim) * sizeof(double) > r->remaining()) {
    return false;
  }
  query->weights.resize(dim);
  for (double& v : query->weights) {
    if (!r->F64(&v)) return false;
  }
  switch (query->scenario) {
    case Scenario::kPlain:
      break;
    case Scenario::kConstrained: {
      std::uint32_t box_dim = 0;
      if (!r->U32(&box_dim) || box_dim > kMaxWireDim ||
          static_cast<std::size_t>(box_dim) * 2 * sizeof(double) >
              r->remaining()) {
        return false;
      }
      query->box.lo.resize(box_dim);
      query->box.hi.resize(box_dim);
      for (std::size_t a = 0; a < box_dim; ++a) {
        if (!r->F64(&query->box.lo[a]) || !r->F64(&query->box.hi[a])) {
          return false;
        }
      }
      break;
    }
    case Scenario::kDiversified:
      if (!r->F64(&query->lambda) || !r->U64(&query->pool_factor)) {
        return false;
      }
      break;
    case Scenario::kReverse:
      if (!r->U32(&query->reverse_target)) return false;
      break;
  }
  return true;
}

void EncodeResultBody(const WireResult& result, Writer* w) {
  w->U8(static_cast<std::uint8_t>(result.status));
  w->U8(result.termination);
  w->U64(result.certified_prefix);
  w->F64(result.frontier_bound);
  w->U64(result.tuples_evaluated);
  w->U64(result.generation);
  w->U32(result.retry_after_ms);
  // Truncated so per-result encoded size never exceeds the
  // kWireResultOverheadBytes + items/intervals budget ReplyFits uses.
  w->Str(result.message.substr(0, kMaxWireMessageBytes));
  w->U32(static_cast<std::uint32_t>(result.items.size()));
  for (const WireItem& item : result.items) {
    w->U32(item.id);
    w->F64(item.score);
    w->F64(item.utility);
  }
  w->U32(static_cast<std::uint32_t>(result.intervals.size()));
  for (const WireInterval& iv : result.intervals) {
    w->F64(iv.lo);
    w->F64(iv.hi);
  }
}

bool DecodeResultBody(Reader* r, WireResult* result) {
  std::uint8_t status = 0;
  if (!r->U8(&status) || status > 5) return false;
  result->status = static_cast<ReplyStatus>(status);
  if (!r->U8(&result->termination) || result->termination > 6 ||
      !r->U64(&result->certified_prefix) || !r->F64(&result->frontier_bound) ||
      !r->U64(&result->tuples_evaluated) || !r->U64(&result->generation) ||
      !r->U32(&result->retry_after_ms) || !r->Str(&result->message)) {
    return false;
  }
  std::uint32_t count = 0;
  if (!r->U32(&count) || count > kMaxWireItems ||
      static_cast<std::size_t>(count) * 20 > r->remaining()) {
    return false;
  }
  result->items.resize(count);
  for (WireItem& item : result->items) {
    if (!r->U32(&item.id) || !r->F64(&item.score) || !r->F64(&item.utility)) {
      return false;
    }
  }
  if (!r->U32(&count) || count > kMaxWireItems ||
      static_cast<std::size_t>(count) * 16 > r->remaining()) {
    return false;
  }
  result->intervals.resize(count);
  for (WireInterval& iv : result->intervals) {
    if (!r->F64(&iv.lo) || !r->F64(&iv.hi)) return false;
  }
  return true;
}

}  // namespace

const char* ReplyStatusName(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk:
      return "ok";
    case ReplyStatus::kOverloaded:
      return "overloaded";
    case ReplyStatus::kInvalidQuery:
      return "invalid-query";
    case ReplyStatus::kError:
      return "error";
    case ReplyStatus::kMalformed:
      return "malformed";
    case ReplyStatus::kShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

bool AppendFrame(std::uint32_t request_id,
                 const std::vector<std::uint8_t>& payload,
                 std::vector<std::uint8_t>* out) {
  if (payload.size() > kMaxFramePayload) return false;
  Writer w(out);
  w.U32(kFrameMagic);
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U32(Crc32c(payload.data(), payload.size()));
  w.U32(request_id);
  out->insert(out->end(), payload.begin(), payload.end());
  return true;
}

FrameScan ScanFrame(const std::vector<std::uint8_t>& buf, std::size_t* pos,
                    Frame* frame, std::string* error) {
  const std::size_t avail = buf.size() - *pos;
  if (avail < kFrameHeaderBytes) return FrameScan::kNeedMore;
  const std::uint8_t* head = buf.data() + *pos;
  std::uint32_t magic, len, crc, request_id;
  std::memcpy(&magic, head, 4);
  std::memcpy(&len, head + 4, 4);
  std::memcpy(&crc, head + 8, 4);
  std::memcpy(&request_id, head + 12, 4);
  if (magic != kFrameMagic) {
    *error = "bad frame magic";
    return FrameScan::kCorrupt;
  }
  if (len > kMaxFramePayload) {
    *error = "frame payload length " + std::to_string(len) +
             " exceeds the wire cap";
    return FrameScan::kCorrupt;
  }
  if (avail < kFrameHeaderBytes + len) return FrameScan::kNeedMore;
  const std::uint8_t* payload = head + kFrameHeaderBytes;
  if (Crc32c(payload, len) != crc) {
    *error = "frame payload CRC mismatch";
    return FrameScan::kCorrupt;
  }
  frame->request_id = request_id;
  frame->payload.assign(payload, payload + len);
  *pos += kFrameHeaderBytes + len;
  return FrameScan::kFrame;
}

std::vector<std::uint8_t> EncodeRequest(const Request& request) {
  std::vector<std::uint8_t> payload;
  Writer w(&payload);
  w.U8(static_cast<std::uint8_t>(request.verb));
  switch (request.verb) {
    case Verb::kQuery:
      DRLI_CHECK(request.queries.size() == 1);
      EncodeQueryBody(request.queries[0], &w);
      break;
    case Verb::kBatch:
      DRLI_CHECK(request.queries.size() <= kMaxBatchQueries);
      w.U32(static_cast<std::uint32_t>(request.queries.size()));
      for (const WireQuery& query : request.queries) {
        EncodeQueryBody(query, &w);
      }
      break;
    case Verb::kInspect:
    case Verb::kHealth:
    case Verb::kReload:
      break;
  }
  return payload;
}

Status DecodeRequest(const std::vector<std::uint8_t>& payload,
                     Request* request) {
  Reader r(payload.data(), payload.size());
  std::uint8_t verb = 0;
  if (!r.U8(&verb) || verb < 1 || verb > 5) {
    return Status::Corruption("unknown request verb");
  }
  request->verb = static_cast<Verb>(verb);
  request->queries.clear();
  switch (request->verb) {
    case Verb::kQuery: {
      WireQuery query;
      if (!DecodeQueryBody(&r, &query)) {
        return Status::Corruption("undecodable query body");
      }
      request->queries.push_back(std::move(query));
      break;
    }
    case Verb::kBatch: {
      std::uint32_t count = 0;
      if (!r.U32(&count) || count > kMaxBatchQueries) {
        return Status::Corruption("batch count out of range");
      }
      request->queries.resize(count);
      for (WireQuery& query : request->queries) {
        if (!DecodeQueryBody(&r, &query)) {
          return Status::Corruption("undecodable batch query body");
        }
      }
      break;
    }
    case Verb::kInspect:
    case Verb::kHealth:
    case Verb::kReload:
      break;
  }
  if (!r.done()) {
    return Status::Corruption("trailing bytes after request body");
  }
  return Status::Ok();
}

std::vector<std::uint8_t> EncodeResultReply(
    const std::vector<WireResult>& results) {
  std::vector<std::uint8_t> payload;
  Writer w(&payload);
  w.U8(static_cast<std::uint8_t>(ReplyStatus::kOk));
  w.U32(static_cast<std::uint32_t>(results.size()));
  for (const WireResult& result : results) EncodeResultBody(result, &w);
  return payload;
}

std::vector<std::uint8_t> EncodeHealthReply(const HealthInfo& info) {
  std::vector<std::uint8_t> payload;
  Writer w(&payload);
  w.U8(static_cast<std::uint8_t>(ReplyStatus::kOk));
  w.U64(info.generation);
  w.U64(info.queries_served);
  w.U64(info.queries_shed);
  w.U64(info.queries_in_flight);
  w.U64(info.reloads);
  w.U64(info.malformed_frames);
  w.U8(info.draining);
  return payload;
}

std::vector<std::uint8_t> EncodeInspectReply(const InspectInfo& info) {
  std::vector<std::uint8_t> payload;
  Writer w(&payload);
  w.U8(static_cast<std::uint8_t>(ReplyStatus::kOk));
  w.Str(info.engine);
  w.Str(info.snapshot);
  w.U64(info.generation);
  w.U64(info.num_points);
  w.U32(info.dim);
  w.Str(info.last_reload_error);
  return payload;
}

std::vector<std::uint8_t> EncodeReloadReply(const ReloadInfo& info) {
  std::vector<std::uint8_t> payload;
  Writer w(&payload);
  w.U8(static_cast<std::uint8_t>(ReplyStatus::kOk));
  w.U8(info.reloaded);
  w.U64(info.generation);
  w.Str(info.error);
  return payload;
}

std::vector<std::uint8_t> EncodeStatusReply(ReplyStatus status,
                                            const std::string& message,
                                            std::uint32_t retry_after_ms) {
  std::vector<std::uint8_t> payload;
  Writer w(&payload);
  w.U8(static_cast<std::uint8_t>(status));
  w.U32(retry_after_ms);
  w.Str(message);
  return payload;
}

namespace {

// Bare-status replies are legal wherever a typed reply is expected;
// this maps one onto a single WireResult so callers see a uniform
// (status, message, retry hint) surface.
bool DecodeBareStatus(Reader* r, ReplyStatus status, WireResult* result) {
  result->status = status;
  return r->U32(&result->retry_after_ms) && r->Str(&result->message) &&
         r->done();
}

}  // namespace

Status DecodeResultReply(const std::vector<std::uint8_t>& payload,
                         std::vector<WireResult>* results) {
  Reader r(payload.data(), payload.size());
  std::uint8_t status = 0;
  if (!r.U8(&status) || status > 5) {
    return Status::Corruption("unknown reply status");
  }
  results->clear();
  if (static_cast<ReplyStatus>(status) != ReplyStatus::kOk) {
    WireResult result;
    if (!DecodeBareStatus(&r, static_cast<ReplyStatus>(status), &result)) {
      return Status::Corruption("undecodable status reply");
    }
    results->push_back(std::move(result));
    return Status::Ok();
  }
  std::uint32_t count = 0;
  if (!r.U32(&count) || count > kMaxBatchQueries) {
    return Status::Corruption("reply result count out of range");
  }
  results->resize(count);
  for (WireResult& result : *results) {
    if (!DecodeResultBody(&r, &result)) {
      return Status::Corruption("undecodable result body");
    }
  }
  if (!r.done()) return Status::Corruption("trailing bytes after reply");
  return Status::Ok();
}

Status DecodeHealthReply(const std::vector<std::uint8_t>& payload,
                         HealthInfo* info) {
  Reader r(payload.data(), payload.size());
  std::uint8_t status = 0;
  if (!r.U8(&status) || static_cast<ReplyStatus>(status) != ReplyStatus::kOk) {
    return Status::Corruption("health reply carries a non-ok status");
  }
  if (!r.U64(&info->generation) || !r.U64(&info->queries_served) ||
      !r.U64(&info->queries_shed) || !r.U64(&info->queries_in_flight) ||
      !r.U64(&info->reloads) || !r.U64(&info->malformed_frames) ||
      !r.U8(&info->draining) || !r.done()) {
    return Status::Corruption("undecodable health reply");
  }
  return Status::Ok();
}

Status DecodeInspectReply(const std::vector<std::uint8_t>& payload,
                          InspectInfo* info) {
  Reader r(payload.data(), payload.size());
  std::uint8_t status = 0;
  if (!r.U8(&status) || static_cast<ReplyStatus>(status) != ReplyStatus::kOk) {
    return Status::Corruption("inspect reply carries a non-ok status");
  }
  if (!r.Str(&info->engine) || !r.Str(&info->snapshot) ||
      !r.U64(&info->generation) || !r.U64(&info->num_points) ||
      !r.U32(&info->dim) || !r.Str(&info->last_reload_error) || !r.done()) {
    return Status::Corruption("undecodable inspect reply");
  }
  return Status::Ok();
}

Status DecodeReloadReply(const std::vector<std::uint8_t>& payload,
                         ReloadInfo* info) {
  Reader r(payload.data(), payload.size());
  std::uint8_t status = 0;
  if (!r.U8(&status) || static_cast<ReplyStatus>(status) != ReplyStatus::kOk) {
    return Status::Corruption("reload reply carries a non-ok status");
  }
  if (!r.U8(&info->reloaded) || !r.U64(&info->generation) ||
      !r.Str(&info->error) || !r.done()) {
    return Status::Corruption("undecodable reload reply");
  }
  return Status::Ok();
}

}  // namespace wire
}  // namespace drli
