// Blocking client for the serving front end's wire protocol. One
// connection, one request in flight at a time: each call frames a
// request, sends it, and blocks for the matching reply (send/receive
// timeouts via SO_SNDTIMEO/SO_RCVTIMEO). Used by the drli_client
// tool, the server tests, and -- through the raw hooks -- the server
// fault sweep, which needs to put deliberately broken bytes on the
// wire.

#ifndef DRLI_SERVER_CLIENT_H_
#define DRLI_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/protocol.h"

namespace drli {
namespace server {

class DrliClient {
 public:
  DrliClient() = default;
  ~DrliClient();
  DrliClient(const DrliClient&) = delete;
  DrliClient& operator=(const DrliClient&) = delete;

  // Connects to host:port; `timeout_seconds` bounds every subsequent
  // send and receive (0 = block forever).
  Status Connect(const std::string& host, std::uint16_t port,
                 double timeout_seconds = 5.0);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // One query; the reply's single WireResult.
  StatusOr<wire::WireResult> Query(const wire::WireQuery& query);
  // One batch frame; results in request order.
  StatusOr<std::vector<wire::WireResult>> Batch(
      const std::vector<wire::WireQuery>& queries);
  StatusOr<wire::HealthInfo> Health();
  StatusOr<wire::InspectInfo> Inspect();
  StatusOr<wire::ReloadInfo> Reload();

  // --- raw hooks (fault injection) ---

  // Puts arbitrary bytes on the wire, framing included by the caller.
  Status SendRaw(const std::vector<std::uint8_t>& bytes);
  // Blocks for one well-formed frame (Corruption if the server's own
  // bytes ever fail to frame -- the fault sweep's "every reply is
  // well-formed" assertion).
  StatusOr<wire::Frame> ReadFrame();
  int fd() const { return fd_; }

 private:
  Status SendRequest(const wire::Request& request, std::uint32_t* id);
  // Sends `request` and reads frames until one matches its id.
  StatusOr<wire::Frame> Roundtrip(const wire::Request& request);

  int fd_ = -1;
  std::uint32_t next_request_id_ = 1;
  std::vector<std::uint8_t> rxbuf_;
  std::size_t rxpos_ = 0;
};

}  // namespace server
}  // namespace drli

#endif  // DRLI_SERVER_CLIENT_H_
