// Wire protocol of the serving front end (DESIGN.md §10): a
// length-prefixed, CRC-framed binary protocol over TCP. Every message
// -- request or reply -- is one frame:
//
//   u32 magic "DRLW"       (0x574c5244 little-endian)
//   u32 payload_len        (bounded by kMaxFramePayload)
//   u32 payload crc32c
//   u32 request_id         (client-chosen, echoed verbatim in the reply)
//   payload_len bytes of payload
//
// The payload's first byte is the verb (requests) or the reply status
// (replies). Integers are little-endian, floats IEEE-754 bits; strings
// are u32 length + bytes. Decoding trusts nothing: every length is
// bounded against the remaining payload before any allocation, every
// enum is range-checked, and a malformed payload surfaces as a Status
// -- never a crash, throw, or over-read. A frame whose header or CRC
// is corrupt cannot be trusted for resynchronization, so the server
// answers it with one kMalformed reply (request_id 0) and closes the
// connection; a payload that fails to decode under an intact frame is
// answered with kMalformed and the connection stays open.
//
// Request verbs:
//   kQuery    one scenario-routed top-k query (plain / constrained box
//             / diversified / reverse), with an optional deadline and
//             step budget that propagate into the ExecBudget;
//   kBatch    several query bodies answered in one reply frame through
//             the QueryBatch machinery (admission control included);
//   kInspect  engine metadata (snapshot name, generation, n, d);
//   kHealth   liveness + serving counters;
//   kReload   force a generation-pointer check right now.
//
// Reply statuses carry the wire-level degradation ladder: kOk with a
// complete result, kOk with a certified partial (termination +
// certified_prefix say why and how much is exact), kOverloaded with a
// retry-after hint when admission control sheds the query, and
// kShuttingDown while the server drains.

#ifndef DRLI_SERVER_PROTOCOL_H_
#define DRLI_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "scenarios/scenario_box.h"
#include "topk/query.h"

namespace drli {
namespace wire {

inline constexpr std::uint32_t kFrameMagic = 0x574c5244;  // "DRLW" LE
inline constexpr std::size_t kFrameHeaderBytes = 16;
// Upper bound on one frame's payload. Every reply the server can emit
// must fit it, so request admission validates the worst-case encoded
// reply against this cap (see ReplyFits) instead of discovering the
// overflow at encode time.
inline constexpr std::size_t kMaxFramePayload = 4u << 20;
// Queries per kBatch frame.
inline constexpr std::size_t kMaxBatchQueries = 512;
// Weight-vector arity bound (the library tops out far below this; the
// bound exists so a hostile dim can never drive an allocation).
inline constexpr std::size_t kMaxWireDim = 4096;
// Items/intervals one result may carry, sized so a single full reply
// always fits kMaxFramePayload (bounds hostile reply decodes in the
// client the same way request decodes are bounded in the server).
inline constexpr std::size_t kMaxWireItems = 200000;

// Encoded sizes of one reply's parts, used by ReplyFits: a reply is a
// status byte + u32 result count, then per result ~50 fixed bytes plus
// a message (truncated at encode time to kMaxWireMessageBytes) plus
// 20 bytes per item / 16 per interval.
inline constexpr std::size_t kResultReplyHeaderBytes = 5;
inline constexpr std::size_t kWireItemBytes = 20;
inline constexpr std::size_t kWireIntervalBytes = 16;
inline constexpr std::size_t kMaxWireMessageBytes = 206;
inline constexpr std::size_t kWireResultOverheadBytes =
    50 + kMaxWireMessageBytes;  // == 256

// True when a reply of `results` result slots carrying `items` total
// items-or-intervals is guaranteed to encode within kMaxFramePayload.
// The server evaluates this per request before admitting it, with
// `items` the saturated worst case across the request's queries.
inline constexpr bool ReplyFits(std::uint64_t results, std::uint64_t items) {
  return results <= kMaxBatchQueries && items <= kMaxWireItems &&
         kResultReplyHeaderBytes + results * kWireResultOverheadBytes +
                 items * kWireItemBytes <=
             kMaxFramePayload;
}

// The bounds above must be mutually consistent: the largest admissible
// single result and the largest admissible batch both fit one frame.
static_assert(ReplyFits(1, kMaxWireItems),
              "one full result must fit a frame");
static_assert(ReplyFits(kMaxBatchQueries, kMaxWireItems),
              "a full batch reply must fit a frame");
static_assert(kWireIntervalBytes <= kWireItemBytes,
              "ReplyFits budgets intervals at the item rate");

enum class Verb : std::uint8_t {
  kQuery = 1,
  kBatch = 2,
  kInspect = 3,
  kHealth = 4,
  kReload = 5,
};

enum class ReplyStatus : std::uint8_t {
  kOk = 0,           // result follows (complete or certified partial)
  kOverloaded = 1,   // shed by admission control; retry_after_ms set
  kInvalidQuery = 2, // recoverable rejection; message set
  kError = 3,        // worker error; message set
  kMalformed = 4,    // undecodable frame or payload; message set
  kShuttingDown = 5, // server is draining; retry elsewhere
};

const char* ReplyStatusName(ReplyStatus status);

enum class Scenario : std::uint8_t {
  kPlain = 0,
  kConstrained = 1,
  kDiversified = 2,
  kReverse = 3,
};

// One scenario-routed query as it travels on the wire.
struct WireQuery {
  Scenario scenario = Scenario::kPlain;
  Point weights;               // unused for kReverse
  std::uint64_t k = 1;
  // Total wall-clock allowance measured from the frame's arrival at
  // the server (queue wait included -- the deadline the CLIENT cares
  // about). 0 = none. The server subtracts the queue wait and hands
  // the remainder to ExecBudget::deadline_seconds.
  double deadline_ms = 0.0;
  std::uint64_t max_evals = 0;  // ExecBudget::max_evals; 0 = unlimited
  // kConstrained:
  AttributeBox box;
  // kDiversified:
  double lambda = 0.5;
  std::uint64_t pool_factor = 4;
  // kReverse:
  std::uint32_t reverse_target = 0;
};

struct Request {
  Verb verb = Verb::kQuery;
  std::uint32_t request_id = 0;
  std::vector<WireQuery> queries;  // 1 for kQuery, n for kBatch
};

struct WireItem {
  std::uint32_t id = 0;
  double score = 0.0;
  double utility = 0.0;  // diversified only; == score otherwise
};

struct WireInterval {
  double lo = 0.0;
  double hi = 0.0;
};

// One query's answer as it travels on the wire. For kBatch replies the
// frame carries one of these per query, in request order.
struct WireResult {
  ReplyStatus status = ReplyStatus::kOk;
  std::uint8_t termination = 0;  // drli::Termination
  std::uint64_t certified_prefix = 0;
  double frontier_bound = 0.0;
  std::vector<WireItem> items;          // plain/constrained/diversified
  std::vector<WireInterval> intervals;  // reverse
  std::uint64_t tuples_evaluated = 0;
  // Generation sequence number that served the query (monotone per
  // server process; bumps on every hot reload).
  std::uint64_t generation = 0;
  std::uint32_t retry_after_ms = 0;  // kOverloaded only
  std::string message;               // rejection / error detail
};

struct HealthInfo {
  std::uint64_t generation = 0;
  std::uint64_t queries_served = 0;
  std::uint64_t queries_shed = 0;
  std::uint64_t queries_in_flight = 0;
  std::uint64_t reloads = 0;
  std::uint64_t malformed_frames = 0;
  std::uint8_t draining = 0;
};

struct InspectInfo {
  std::string engine;         // index family name, e.g. "DL+"
  std::string snapshot;       // value of the CURRENT pointer file
  std::uint64_t generation = 0;
  std::uint64_t num_points = 0;
  std::uint32_t dim = 0;
  std::string last_reload_error;  // empty when the last reload was clean
};

struct ReloadInfo {
  std::uint8_t reloaded = 0;  // 1 when this check swapped generations
  std::uint64_t generation = 0;
  std::string error;  // reload failure detail (old generation kept)
};

// --- framing ---

// Appends one complete frame (header + payload) to `out`. Returns
// false -- appending nothing -- when the payload exceeds
// kMaxFramePayload; the caller degrades (e.g. to a bare kError reply)
// instead of ever putting an untransmittable frame on the wire.
[[nodiscard]] bool AppendFrame(std::uint32_t request_id,
                               const std::vector<std::uint8_t>& payload,
                               std::vector<std::uint8_t>* out);

// Result of scanning a receive buffer for one frame.
enum class FrameScan : std::uint8_t {
  kNeedMore = 0,  // incomplete header or payload; read more bytes
  kFrame = 1,     // a well-formed frame was extracted
  kCorrupt = 2,   // bad magic, oversized length, or CRC mismatch
};

struct Frame {
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

// Scans `buf[pos..]` for one frame. On kFrame fills `*frame` and
// advances `*pos` past it; on kCorrupt fills `*error` and leaves the
// buffer untrustworthy (the connection should be closed after one
// best-effort kMalformed reply); on kNeedMore leaves `*pos` unchanged.
FrameScan ScanFrame(const std::vector<std::uint8_t>& buf, std::size_t* pos,
                    Frame* frame, std::string* error);

// --- request payloads ---

std::vector<std::uint8_t> EncodeRequest(const Request& request);
Status DecodeRequest(const std::vector<std::uint8_t>& payload,
                     Request* request);

// --- reply payloads ---

std::vector<std::uint8_t> EncodeResultReply(
    const std::vector<WireResult>& results);
std::vector<std::uint8_t> EncodeHealthReply(const HealthInfo& info);
std::vector<std::uint8_t> EncodeInspectReply(const InspectInfo& info);
std::vector<std::uint8_t> EncodeReloadReply(const ReloadInfo& info);
// A bare-status reply (kMalformed / kShuttingDown / kOverloaded for
// non-query verbs) with an optional detail message.
std::vector<std::uint8_t> EncodeStatusReply(ReplyStatus status,
                                            const std::string& message,
                                            std::uint32_t retry_after_ms = 0);

// Decodes any reply payload. Exactly one of the optional outputs is
// filled, according to the leading status byte and the verb the caller
// sent: result replies fill `results`, health/inspect/reload fill
// their structs, bare-status replies fill results with one
// status-carrying WireResult.
Status DecodeResultReply(const std::vector<std::uint8_t>& payload,
                         std::vector<WireResult>* results);
Status DecodeHealthReply(const std::vector<std::uint8_t>& payload,
                         HealthInfo* info);
Status DecodeInspectReply(const std::vector<std::uint8_t>& payload,
                          InspectInfo* info);
Status DecodeReloadReply(const std::vector<std::uint8_t>& payload,
                         ReloadInfo* info);

}  // namespace wire
}  // namespace drli

#endif  // DRLI_SERVER_PROTOCOL_H_
