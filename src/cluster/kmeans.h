// Lloyd's k-means with k-means++ seeding. Used to build the zero layer
// L0 (Section V-B): first-layer tuples are clustered and each cluster
// contributes a pseudo-tuple at its attribute-wise minimum corner.

#ifndef DRLI_CLUSTER_KMEANS_H_
#define DRLI_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/point.h"

namespace drli {

struct KMeansOptions {
  std::size_t num_clusters = 8;
  std::size_t max_iterations = 25;
  std::uint64_t seed = 42;
};

struct KMeansResult {
  // assignment[i] = cluster of input point i, in [0, num_clusters).
  std::vector<std::size_t> assignment;
  // Cluster centroids; empty clusters are dropped, so the effective
  // cluster count is centroids.size() <= options.num_clusters.
  std::vector<Point> centroids;
};

// Clusters `points`. num_clusters is clamped to the number of points.
KMeansResult KMeans(const PointSet& points, const KMeansOptions& options);

// Attribute-wise minimum corner of each cluster: the pseudo-tuple that
// weakly dominates every member of the cluster.
std::vector<Point> ClusterMinCorners(const PointSet& points,
                                     const KMeansResult& result);

}  // namespace drli

#endif  // DRLI_CLUSTER_KMEANS_H_
