#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/random.h"

namespace drli {

namespace {

double SquaredDistance(PointView a, PointView b) {
  double s = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double diff = a[j] - b[j];
    s += diff * diff;
  }
  return s;
}

}  // namespace

KMeansResult KMeans(const PointSet& points, const KMeansOptions& options) {
  KMeansResult result;
  const std::size_t n = points.size();
  const std::size_t d = points.dim();
  if (n == 0) return result;
  const std::size_t k = std::max<std::size_t>(
      1, std::min(options.num_clusters, n));

  Rng rng(options.seed);

  // k-means++ seeding.
  std::vector<Point> centroids;
  centroids.reserve(k);
  centroids.push_back(points.Materialize(rng.Index(n)));
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dist2[i] = std::min(dist2[i],
                          SquaredDistance(points[i], centroids.back()));
      total += dist2[i];
    }
    if (total <= 0.0) break;  // all remaining points coincide with seeds
    double target = rng.Uniform(0.0, total);
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points.Materialize(chosen));
  }

  // Lloyd iterations.
  std::vector<std::size_t> assignment(n, 0);
  std::vector<Point> sums(centroids.size(), Point(d, 0.0));
  std::vector<std::size_t> counts(centroids.size(), 0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double dd = SquaredDistance(points[i], PointView(centroids[c]));
        if (dd < best_d) {
          best_d = dd;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    for (auto& s : sums) std::fill(s.begin(), s.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const PointView p = points[i];
      Point& s = sums[assignment[i]];
      for (std::size_t j = 0; j < d; ++j) s[j] += p[j];
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t j = 0; j < d; ++j) {
        centroids[c][j] = sums[c][j] / static_cast<double>(counts[c]);
      }
    }
  }

  // Drop empty clusters and remap assignments.
  std::fill(counts.begin(), counts.end(), 0);
  for (std::size_t a : assignment) ++counts[a];
  std::vector<std::size_t> remap(centroids.size(), 0);
  std::size_t next = 0;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    if (counts[c] == 0) continue;
    remap[c] = next;
    result.centroids.push_back(std::move(centroids[c]));
    ++next;
  }
  result.assignment.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.assignment[i] = remap[assignment[i]];
  }
  return result;
}

std::vector<Point> ClusterMinCorners(const PointSet& points,
                                     const KMeansResult& result) {
  const std::size_t d = points.dim();
  std::vector<Point> corners(result.centroids.size(),
                             Point(d, std::numeric_limits<double>::infinity()));
  for (std::size_t i = 0; i < points.size(); ++i) {
    Point& corner = corners[result.assignment[i]];
    const PointView p = points[i];
    for (std::size_t j = 0; j < d; ++j) {
      corner[j] = std::min(corner[j], p[j]);
    }
  }
  return corners;
}

}  // namespace drli
