#include "geometry/linalg.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace drli {

namespace {
constexpr double kSingularTol = 1e-12;
}  // namespace

double Norm(PointView v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

bool Normalize(std::vector<double>* v) {
  const double n = Norm(*v);
  if (n < kSingularTol) return false;
  for (double& x : *v) x /= n;
  return true;
}

double Determinant(std::vector<double> m, std::size_t n) {
  DRLI_CHECK_EQ(m.size(), n * n);
  double det = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: largest magnitude entry in this column.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(m[row * n + col]) > std::fabs(m[pivot * n + col])) {
        pivot = row;
      }
    }
    const double pivot_value = m[pivot * n + col];
    if (std::fabs(pivot_value) < kSingularTol) return 0.0;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(m[col * n + j], m[pivot * n + j]);
      }
      det = -det;
    }
    det *= pivot_value;
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = m[row * n + col] / pivot_value;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        m[row * n + j] -= factor * m[col * n + j];
      }
    }
  }
  return det;
}

bool SolveLinearSystem(std::span<const double> a, std::span<const double> b,
                       std::size_t n, std::vector<double>* x) {
  DRLI_CHECK_EQ(a.size(), n * n);
  DRLI_CHECK_EQ(b.size(), n);
  std::vector<double> m(a.begin(), a.end());
  std::vector<double> rhs(b.begin(), b.end());
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(m[row * n + col]) > std::fabs(m[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::fabs(m[pivot * n + col]) < kSingularTol) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(m[col * n + j], m[pivot * n + j]);
      }
      std::swap(rhs[col], rhs[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = m[row * n + col] / m[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        m[row * n + j] -= factor * m[col * n + j];
      }
      rhs[row] -= factor * rhs[col];
    }
  }
  x->assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = rhs[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      sum -= m[i * n + j] * (*x)[j];
    }
    (*x)[i] = sum / m[i * n + i];
  }
  return true;
}

double Hyperplane::SignedDistance(PointView p) const {
  DRLI_DCHECK(p.size() == normal.size());
  double s = -offset;
  for (std::size_t i = 0; i < p.size(); ++i) s += normal[i] * p[i];
  return s;
}

bool HyperplaneThroughPoints(const std::vector<PointView>& pts,
                             Hyperplane* plane) {
  const std::size_t d = pts.empty() ? 0 : pts[0].size();
  DRLI_CHECK_EQ(pts.size(), d);
  DRLI_CHECK(d >= 2);
  // The normal satisfies n . (p_i - p_0) = 0 for i = 1..d-1. Compute it
  // as the generalized cross product: n_j = (-1)^j det(M without col j),
  // where M is the (d-1) x d matrix of difference vectors.
  std::vector<double> diffs((d - 1) * d);
  for (std::size_t i = 1; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      diffs[(i - 1) * d + j] = pts[i][j] - pts[0][j];
    }
  }
  std::vector<double> normal(d);
  std::vector<double> minor((d - 1) * (d - 1));
  for (std::size_t skip = 0; skip < d; ++skip) {
    for (std::size_t r = 0; r < d - 1; ++r) {
      std::size_t out = 0;
      for (std::size_t c = 0; c < d; ++c) {
        if (c == skip) continue;
        minor[r * (d - 1) + out++] = diffs[r * d + c];
      }
    }
    const double det = Determinant(minor, d - 1);
    normal[skip] = (skip % 2 == 0) ? det : -det;
  }
  if (!Normalize(&normal)) return false;
  plane->normal = std::move(normal);
  plane->offset = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    plane->offset += plane->normal[j] * pts[0][j];
  }
  return true;
}

double AffineBasis::DistanceToSpan(PointView p) const {
  if (!origin_set_) return std::numeric_limits<double>::infinity();
  return Norm(PointView(Residual(p)));
}

std::vector<double> AffineBasis::Residual(PointView p) const {
  DRLI_DCHECK(p.size() == dim_);
  std::vector<double> r(p.begin(), p.end());
  for (std::size_t j = 0; j < dim_; ++j) r[j] -= origin_[j];
  for (const auto& b : basis_) {
    double proj = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) proj += r[j] * b[j];
    for (std::size_t j = 0; j < dim_; ++j) r[j] -= proj * b[j];
  }
  return r;
}

bool AffineBasis::Add(PointView p, double tol) {
  if (!origin_set_) {
    origin_.assign(p.begin(), p.end());
    origin_set_ = true;
    return true;
  }
  std::vector<double> r = Residual(p);
  const double dist = Norm(PointView(r));
  if (dist <= tol) return false;
  for (double& x : r) x /= dist;
  basis_.push_back(std::move(r));
  return true;
}

}  // namespace drli
