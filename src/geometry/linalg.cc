#include "geometry/linalg.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace drli {

namespace {
constexpr double kSingularTol = 1e-12;
}  // namespace

double Norm(PointView v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

bool Normalize(std::vector<double>* v) {
  const double n = Norm(*v);
  if (n < kSingularTol) return false;
  for (double& x : *v) x /= n;
  return true;
}

double Determinant(std::vector<double> m, std::size_t n) {
  DRLI_CHECK_EQ(m.size(), n * n);
  return DeterminantInPlace(m.data(), n);
}

namespace {

// Same elimination as the generic loop below, with the dimension a
// compile-time constant so the compiler fully unrolls it. The operation
// sequence is identical, so the result is bit-identical to the generic
// path -- required by the deterministic-build invariant.
template <std::size_t N>
double DeterminantFixed(double* m) {
  double det = 1.0;
  for (std::size_t col = 0; col < N; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < N; ++row) {
      if (std::fabs(m[row * N + col]) > std::fabs(m[pivot * N + col])) {
        pivot = row;
      }
    }
    const double pivot_value = m[pivot * N + col];
    if (std::fabs(pivot_value) < kSingularTol) return 0.0;
    if (pivot != col) {
      for (std::size_t j = 0; j < N; ++j) {
        std::swap(m[col * N + j], m[pivot * N + j]);
      }
      det = -det;
    }
    det *= pivot_value;
    for (std::size_t row = col + 1; row < N; ++row) {
      const double factor = m[row * N + col] / pivot_value;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < N; ++j) {
        m[row * N + j] -= factor * m[col * N + j];
      }
    }
  }
  return det;
}

}  // namespace

double DeterminantInPlace(double* m, std::size_t n) {
  switch (n) {
    case 1: return DeterminantFixed<1>(m);
    case 2: return DeterminantFixed<2>(m);
    case 3: return DeterminantFixed<3>(m);
    case 4: return DeterminantFixed<4>(m);
    default: break;
  }
  double det = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: largest magnitude entry in this column.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(m[row * n + col]) > std::fabs(m[pivot * n + col])) {
        pivot = row;
      }
    }
    const double pivot_value = m[pivot * n + col];
    if (std::fabs(pivot_value) < kSingularTol) return 0.0;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(m[col * n + j], m[pivot * n + j]);
      }
      det = -det;
    }
    det *= pivot_value;
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = m[row * n + col] / pivot_value;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        m[row * n + j] -= factor * m[col * n + j];
      }
    }
  }
  return det;
}

bool SolveLinearSystem(std::span<const double> a, std::span<const double> b,
                       std::size_t n, std::vector<double>* x) {
  DRLI_CHECK_EQ(a.size(), n * n);
  DRLI_CHECK_EQ(b.size(), n);
  std::vector<double> m(a.begin(), a.end());
  std::vector<double> rhs(b.begin(), b.end());
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(m[row * n + col]) > std::fabs(m[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::fabs(m[pivot * n + col]) < kSingularTol) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(m[col * n + j], m[pivot * n + j]);
      }
      std::swap(rhs[col], rhs[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = m[row * n + col] / m[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        m[row * n + j] -= factor * m[col * n + j];
      }
      rhs[row] -= factor * rhs[col];
    }
  }
  x->assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = rhs[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      sum -= m[i * n + j] * (*x)[j];
    }
    (*x)[i] = sum / m[i * n + i];
  }
  return true;
}

namespace {

// Shared body of HyperplaneThroughPoints over caller-provided scratch
// (stack for small d, heap otherwise) so the hot path allocates only
// for the stored normal itself.
bool HyperplaneImpl(const std::vector<PointView>& pts, std::size_t d,
                    double* diffs, double* minor, double* normal,
                    Hyperplane* plane) {
  // The normal satisfies n . (p_i - p_0) = 0 for i = 1..d-1. Compute it
  // as the generalized cross product: n_j = (-1)^j det(M without col j),
  // where M is the (d-1) x d matrix of difference vectors.
  for (std::size_t i = 1; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      diffs[(i - 1) * d + j] = pts[i][j] - pts[0][j];
    }
  }
  for (std::size_t skip = 0; skip < d; ++skip) {
    for (std::size_t r = 0; r < d - 1; ++r) {
      std::size_t out = 0;
      for (std::size_t c = 0; c < d; ++c) {
        if (c == skip) continue;
        minor[r * (d - 1) + out++] = diffs[r * d + c];
      }
    }
    const double det = DeterminantInPlace(minor, d - 1);
    normal[skip] = (skip % 2 == 0) ? det : -det;
  }
  const double norm = Norm(PointView(normal, d));
  if (norm < kSingularTol) return false;
  for (std::size_t j = 0; j < d; ++j) normal[j] /= norm;
  plane->normal.assign(normal, normal + d);
  plane->offset = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    plane->offset += plane->normal[j] * pts[0][j];
  }
  return true;
}

}  // namespace

bool HyperplaneThroughPoints(const std::vector<PointView>& pts,
                             Hyperplane* plane) {
  const std::size_t d = pts.empty() ? 0 : pts[0].size();
  DRLI_CHECK_EQ(pts.size(), d);
  DRLI_CHECK(d >= 2);
  constexpr std::size_t kStackDim = 8;
  if (d <= kStackDim) {
    double diffs[(kStackDim - 1) * kStackDim];
    double minor[(kStackDim - 1) * (kStackDim - 1)];
    double normal[kStackDim];
    return HyperplaneImpl(pts, d, diffs, minor, normal, plane);
  }
  std::vector<double> diffs((d - 1) * d);
  std::vector<double> minor((d - 1) * (d - 1));
  std::vector<double> normal(d);
  return HyperplaneImpl(pts, d, diffs.data(), minor.data(), normal.data(),
                        plane);
}

double AffineBasis::DistanceToSpan(PointView p) const {
  if (!origin_set_) return std::numeric_limits<double>::infinity();
  return Norm(PointView(Residual(p)));
}

std::vector<double> AffineBasis::Residual(PointView p) const {
  DRLI_DCHECK(p.size() == dim_);
  std::vector<double> r(p.begin(), p.end());
  for (std::size_t j = 0; j < dim_; ++j) r[j] -= origin_[j];
  for (const auto& b : basis_) {
    double proj = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) proj += r[j] * b[j];
    for (std::size_t j = 0; j < dim_; ++j) r[j] -= proj * b[j];
  }
  return r;
}

bool AffineBasis::Add(PointView p, double tol) {
  if (!origin_set_) {
    origin_.assign(p.begin(), p.end());
    origin_set_ = true;
    return true;
  }
  std::vector<double> r = Residual(p);
  const double dist = Norm(PointView(r));
  if (dist <= tol) return false;
  for (double& x : r) x /= dist;
  basis_.push_back(std::move(r));
  return true;
}

}  // namespace drli
