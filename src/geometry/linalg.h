// Small dense linear algebra helpers for the convex-hull and
// convex-skyline machinery. Dimensionalities here are tiny (d <= ~8), so
// everything is straightforward Gaussian elimination on row-major
// buffers -- no external BLAS.

#ifndef DRLI_GEOMETRY_LINALG_H_
#define DRLI_GEOMETRY_LINALG_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/point.h"

namespace drli {

// Euclidean norm of v.
double Norm(PointView v);

// In-place scales v to unit length; returns false when ||v|| is
// numerically zero (vector left untouched).
bool Normalize(std::vector<double>* v);

// Determinant of the n x n row-major matrix `m` (destroyed), via Gaussian
// elimination with partial pivoting.
double Determinant(std::vector<double> m, std::size_t n);

// Same elimination, destroying the caller's buffer in place (no copy);
// the hot path for the hull's per-facet normals.
double DeterminantInPlace(double* m, std::size_t n);

// Solves A x = b for the n x n row-major matrix A (copied internally).
// Returns false when A is singular within tolerance.
bool SolveLinearSystem(std::span<const double> a, std::span<const double> b,
                       std::size_t n, std::vector<double>* x);

// A hyperplane {x : normal . x = offset} in d dimensions.
struct Hyperplane {
  std::vector<double> normal;  // unit length
  double offset = 0.0;

  // Signed distance of p from the plane: normal . p - offset. Inline:
  // this is the innermost test of the hull's point classification.
  double SignedDistance(PointView p) const {
    DRLI_DCHECK(p.size() == normal.size());
    double s = -offset;
    for (std::size_t i = 0; i < p.size(); ++i) s += normal[i] * p[i];
    return s;
  }
};

// Computes the hyperplane through the d points `pts[i]` (each of
// dimension d). Returns false when the points are affinely dependent
// within tolerance. The normal's orientation is arbitrary; callers
// orient it against a reference interior point.
bool HyperplaneThroughPoints(const std::vector<PointView>& pts,
                             Hyperplane* plane);

// Incrementally built orthonormal basis of an affine subspace, used to
// pick the initial simplex of the hull: feed points, query the distance
// of a candidate to the current affine span.
class AffineBasis {
 public:
  explicit AffineBasis(std::size_t dim) : dim_(dim) {}

  std::size_t dim() const { return dim_; }
  // Number of points accepted so far (affine rank is count()-1).
  std::size_t count() const { return origin_set_ ? basis_.size() + 1 : 0; }

  // Distance from p to the affine span of the accepted points.
  // Infinity-like large value when no point was accepted yet.
  double DistanceToSpan(PointView p) const;

  // Accepts p, extending the span. Returns false (and rejects p) when p
  // is within `tol` of the current span.
  bool Add(PointView p, double tol);

 private:
  // Returns the residual of p after projecting out origin + basis.
  std::vector<double> Residual(PointView p) const;

  std::size_t dim_;
  bool origin_set_ = false;
  std::vector<double> origin_;
  std::vector<std::vector<double>> basis_;  // orthonormal directions
};

}  // namespace drli

#endif  // DRLI_GEOMETRY_LINALG_H_
