// A small dense two-phase simplex solver.
//
// DRLI solves only tiny linear programs: the ∃-dominance-set facet test
// (d variables, d+1 constraints), convex-skyline vertex membership
// (d variables, one constraint per hull neighbour), and the exact
// oracles used by the test suite. The solver is a textbook tableau
// simplex with Bland's rule, which is plenty at these sizes and cannot
// cycle.
//
// Canonical form: variables x >= 0; each constraint is
//   a . x (<=|>=|==) b;   objective: minimize c . x.

#ifndef DRLI_GEOMETRY_SIMPLEX_LP_H_
#define DRLI_GEOMETRY_SIMPLEX_LP_H_

#include <cstddef>
#include <span>
#include <vector>

namespace drli {

enum class LpRelation { kLessEq, kGreaterEq, kEqual };

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;    // primal solution when kOptimal
  double objective = 0.0;   // c . x when kOptimal
};

class LinearProgram {
 public:
  // A program over `num_vars` non-negative variables with zero
  // objective (pure feasibility) until SetMinimize is called.
  explicit LinearProgram(std::size_t num_vars);

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_constraints() const { return rows_.size(); }

  // Reserves storage for `n` constraints (optional, a hot-path hint).
  void ReserveConstraints(std::size_t n) {
    rows_.reserve(n);
    row_coeffs_.reserve(n * num_vars_);
  }

  // Appends the constraint coeffs . x (rel) rhs.
  void AddConstraint(std::span<const double> coeffs, LpRelation rel,
                     double rhs);

  // Sets the objective to minimize coeffs . x.
  void SetMinimize(std::span<const double> coeffs);
  // Sets the objective to maximize coeffs . x.
  void SetMaximize(std::span<const double> coeffs);

  // Runs two-phase simplex. Deterministic; no randomness involved.
  LpResult Solve() const;

  // Convenience: true iff the constraint system admits any feasible
  // point (objective ignored).
  bool IsFeasible() const;

 private:
  struct RowMeta {
    LpRelation rel;
    double rhs;
  };

  // Shared two-phase body; feasibility_only runs phase 2 with a zero
  // objective (equivalent to, but cheaper than, solving a copy with
  // the objective cleared).
  LpResult SolveImpl(bool feasibility_only) const;

  std::size_t num_vars_;
  std::vector<RowMeta> rows_;
  // Constraint coefficients, flat with stride num_vars_; row i occupies
  // [i * num_vars_, (i + 1) * num_vars_).
  std::vector<double> row_coeffs_;
  std::vector<double> objective_;  // minimize form
  bool maximize_ = false;          // flips the reported objective sign
};

}  // namespace drli

#endif  // DRLI_GEOMETRY_SIMPLEX_LP_H_
