// Exact 2-d hull primitives: Andrew's monotone chain and the
// "lower-left" staircase chain that equals the 2-d convex skyline. The
// 2-d chain is also the basis of the Section V-A weight-range structure
// (slopes of adjacent facets bound each tuple's optimal weight range).

#ifndef DRLI_GEOMETRY_CONVEX_HULL_2D_H_
#define DRLI_GEOMETRY_CONVEX_HULL_2D_H_

#include <cstdint>
#include <vector>

#include "common/point.h"

namespace drli {

// Indices of the convex hull of 2-d `points`, counter-clockwise starting
// from the lexicographically smallest point. Collinear points are not
// hull vertices. Duplicates are kept once.
std::vector<std::int32_t> ConvexHull2D(const PointSet& points);

// The 2-d convex skyline: hull vertices on the strictly-decreasing
// lower-left chain, ordered by increasing x (equivalently decreasing y),
// from the min-x point to the min-y point. Every linear scoring function
// with strictly positive weights attains its minimum on this chain.
std::vector<std::int32_t> LowerLeftChain2D(const PointSet& points);

}  // namespace drli

#endif  // DRLI_GEOMETRY_CONVEX_HULL_2D_H_
