#include "geometry/simplex_lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace drli {

namespace {

constexpr double kTol = 1e-9;

// One simplex run over an explicit tableau.
//   tableau: m rows, each with `cols` coefficient entries plus the rhs
//            in the final slot.
//   basis:   basis[i] = column basic in row i.
//   cost:    objective coefficients per column (minimization).
//   can_enter: columns allowed to enter the basis.
// Returns kOptimal/kUnbounded; on optimal, *objective holds the value.
LpStatus RunSimplex(std::vector<std::vector<double>>& tableau,
                    std::vector<std::size_t>& basis,
                    const std::vector<double>& cost,
                    const std::vector<bool>& can_enter, std::size_t cols,
                    double* objective) {
  const std::size_t m = tableau.size();
  while (true) {
    // Reduced costs: rc_j = c_j - sum_i c_B(i) * T[i][j]. Recomputed
    // from scratch every iteration; the LPs in this library are tiny.
    std::size_t entering = cols;
    for (std::size_t j = 0; j < cols; ++j) {
      if (!can_enter[j]) continue;
      bool is_basic = false;
      for (std::size_t i = 0; i < m; ++i) {
        if (basis[i] == j) {
          is_basic = true;
          break;
        }
      }
      if (is_basic) continue;
      double rc = cost[j];
      for (std::size_t i = 0; i < m; ++i) {
        if (cost[basis[i]] != 0.0) {
          rc -= cost[basis[i]] * tableau[i][j];
        }
      }
      if (rc < -kTol) {
        entering = j;  // Bland's rule: smallest improving index.
        break;
      }
    }
    if (entering == cols) {
      double obj = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        obj += cost[basis[i]] * tableau[i][cols];
      }
      *objective = obj;
      return LpStatus::kOptimal;
    }

    // Ratio test; Bland tie-break on the smallest basis column.
    std::size_t leaving = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      const double a = tableau[i][entering];
      if (a <= kTol) continue;
      const double ratio = tableau[i][cols] / a;
      if (ratio < best_ratio - kTol ||
          (ratio < best_ratio + kTol &&
           (leaving == m || basis[i] < basis[leaving]))) {
        best_ratio = ratio;
        leaving = i;
      }
    }
    if (leaving == m) return LpStatus::kUnbounded;

    // Pivot on (leaving, entering).
    const double pivot = tableau[leaving][entering];
    for (double& v : tableau[leaving]) v /= pivot;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == leaving) continue;
      const double factor = tableau[i][entering];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j <= cols; ++j) {
        tableau[i][j] -= factor * tableau[leaving][j];
      }
    }
    basis[leaving] = entering;
  }
}

}  // namespace

LinearProgram::LinearProgram(std::size_t num_vars) : num_vars_(num_vars) {
  DRLI_CHECK(num_vars >= 1);
  objective_.assign(num_vars, 0.0);
}

void LinearProgram::AddConstraint(std::span<const double> coeffs,
                                  LpRelation rel, double rhs) {
  DRLI_CHECK_EQ(coeffs.size(), num_vars_);
  rows_.push_back(Row{std::vector<double>(coeffs.begin(), coeffs.end()),
                      rel, rhs});
}

void LinearProgram::SetMinimize(std::span<const double> coeffs) {
  DRLI_CHECK_EQ(coeffs.size(), num_vars_);
  objective_.assign(coeffs.begin(), coeffs.end());
  maximize_ = false;
}

void LinearProgram::SetMaximize(std::span<const double> coeffs) {
  DRLI_CHECK_EQ(coeffs.size(), num_vars_);
  objective_.resize(num_vars_);
  for (std::size_t j = 0; j < num_vars_; ++j) objective_[j] = -coeffs[j];
  maximize_ = true;
}

LpResult LinearProgram::Solve() const {
  const std::size_t m = rows_.size();

  // Normalize rows to non-negative rhs, counting extra columns.
  struct NormRow {
    std::vector<double> coeffs;
    LpRelation rel;
    double rhs;
  };
  std::vector<NormRow> rows;
  rows.reserve(m);
  std::size_t num_slack = 0;
  for (const Row& r : rows_) {
    NormRow nr{r.coeffs, r.rel, r.rhs};
    if (nr.rhs < 0) {
      for (double& c : nr.coeffs) c = -c;
      nr.rhs = -nr.rhs;
      if (nr.rel == LpRelation::kLessEq) {
        nr.rel = LpRelation::kGreaterEq;
      } else if (nr.rel == LpRelation::kGreaterEq) {
        nr.rel = LpRelation::kLessEq;
      }
    }
    if (nr.rel != LpRelation::kEqual) ++num_slack;
    rows.push_back(std::move(nr));
  }

  // Column layout: [original vars][slack/surplus][artificials][rhs].
  // <= rows take a slack and need no artificial; >= and == rows take an
  // artificial (>= additionally takes a surplus column).
  std::size_t num_artificial = 0;
  for (const NormRow& r : rows) {
    if (r.rel != LpRelation::kLessEq) ++num_artificial;
  }
  const std::size_t slack_base = num_vars_;
  const std::size_t art_base = num_vars_ + num_slack;
  const std::size_t cols = art_base + num_artificial;

  std::vector<std::vector<double>> tableau(
      m, std::vector<double>(cols + 1, 0.0));
  std::vector<std::size_t> basis(m, 0);
  std::size_t next_slack = slack_base;
  std::size_t next_art = art_base;
  for (std::size_t i = 0; i < m; ++i) {
    const NormRow& r = rows[i];
    for (std::size_t j = 0; j < num_vars_; ++j) tableau[i][j] = r.coeffs[j];
    tableau[i][cols] = r.rhs;
    switch (r.rel) {
      case LpRelation::kLessEq:
        tableau[i][next_slack] = 1.0;
        basis[i] = next_slack++;
        break;
      case LpRelation::kGreaterEq:
        tableau[i][next_slack] = -1.0;
        ++next_slack;
        tableau[i][next_art] = 1.0;
        basis[i] = next_art++;
        break;
      case LpRelation::kEqual:
        tableau[i][next_art] = 1.0;
        basis[i] = next_art++;
        break;
    }
  }

  LpResult result;

  // Phase 1: minimize the sum of artificials.
  if (num_artificial > 0) {
    std::vector<double> cost(cols, 0.0);
    for (std::size_t j = art_base; j < cols; ++j) cost[j] = 1.0;
    std::vector<bool> can_enter(cols, true);
    double phase1_obj = 0.0;
    const LpStatus status =
        RunSimplex(tableau, basis, cost, can_enter, cols, &phase1_obj);
    DRLI_CHECK(status == LpStatus::kOptimal)
        << "phase-1 LP cannot be unbounded";
    if (phase1_obj > 1e-7) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Drive remaining artificials out of the basis where possible.
    for (std::size_t i = 0; i < m; ++i) {
      if (basis[i] < art_base) continue;
      std::size_t pivot_col = cols;
      for (std::size_t j = 0; j < art_base; ++j) {
        if (std::fabs(tableau[i][j]) > kTol) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col == cols) continue;  // redundant row; artificial stays 0
      const double pivot = tableau[i][pivot_col];
      for (double& v : tableau[i]) v /= pivot;
      for (std::size_t r2 = 0; r2 < m; ++r2) {
        if (r2 == i) continue;
        const double factor = tableau[r2][pivot_col];
        if (factor == 0.0) continue;
        for (std::size_t j = 0; j <= cols; ++j) {
          tableau[r2][j] -= factor * tableau[i][j];
        }
      }
      basis[i] = pivot_col;
    }
  }

  // Phase 2: the real objective; artificial columns may not re-enter.
  std::vector<double> cost(cols, 0.0);
  for (std::size_t j = 0; j < num_vars_; ++j) cost[j] = objective_[j];
  std::vector<bool> can_enter(cols, true);
  for (std::size_t j = art_base; j < cols; ++j) can_enter[j] = false;
  double obj = 0.0;
  const LpStatus status =
      RunSimplex(tableau, basis, cost, can_enter, cols, &obj);
  if (status == LpStatus::kUnbounded) {
    result.status = LpStatus::kUnbounded;
    return result;
  }

  result.status = LpStatus::kOptimal;
  result.objective = maximize_ ? -obj : obj;
  result.x.assign(num_vars_, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < num_vars_) result.x[basis[i]] = tableau[i][cols];
  }
  return result;
}

bool LinearProgram::IsFeasible() const {
  LinearProgram feas = *this;
  feas.objective_.assign(num_vars_, 0.0);
  return feas.Solve().status == LpStatus::kOptimal;
}

}  // namespace drli
