#include "geometry/simplex_lp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace drli {

namespace {

constexpr double kTol = 1e-9;

// One simplex run over an explicit tableau.
//   tableau: m rows of `cols` coefficient entries plus the rhs in the
//            final slot, stored flat with stride cols + 1.
//   basis:   basis[i] = column basic in row i.
//   cost:    objective coefficients per column (minimization).
//   can_enter: columns allowed to enter the basis.
// Returns kOptimal/kUnbounded; on optimal, *objective holds the value.
LpStatus RunSimplex(double* tableau, std::size_t m,
                    std::vector<std::size_t>& basis,
                    const std::vector<double>& cost,
                    const std::vector<bool>& can_enter, std::size_t cols,
                    double* objective) {
  const std::size_t stride = cols + 1;
  while (true) {
    // Reduced costs: rc_j = c_j - sum_i c_B(i) * T[i][j]. Recomputed
    // from scratch every iteration; the LPs in this library are tiny.
    // Basic columns are summarized in a bitmask when they fit in one
    // word (the common case), avoiding an O(m) scan per column.
    std::uint64_t basic_mask = 0;
    const bool small = cols <= 64;
    if (small) {
      for (std::size_t i = 0; i < m; ++i) basic_mask |= 1ull << basis[i];
    }
    std::size_t entering = cols;
    for (std::size_t j = 0; j < cols; ++j) {
      if (!can_enter[j]) continue;
      bool is_basic;
      if (small) {
        is_basic = (basic_mask >> j) & 1;
      } else {
        is_basic = false;
        for (std::size_t i = 0; i < m; ++i) {
          if (basis[i] == j) {
            is_basic = true;
            break;
          }
        }
      }
      if (is_basic) continue;
      double rc = cost[j];
      for (std::size_t i = 0; i < m; ++i) {
        if (cost[basis[i]] != 0.0) {
          rc -= cost[basis[i]] * tableau[i * stride + j];
        }
      }
      if (rc < -kTol) {
        entering = j;  // Bland's rule: smallest improving index.
        break;
      }
    }
    if (entering == cols) {
      double obj = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        obj += cost[basis[i]] * tableau[i * stride + cols];
      }
      *objective = obj;
      return LpStatus::kOptimal;
    }

    // Ratio test; Bland tie-break on the smallest basis column.
    std::size_t leaving = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      const double a = tableau[i * stride + entering];
      if (a <= kTol) continue;
      const double ratio = tableau[i * stride + cols] / a;
      if (ratio < best_ratio - kTol ||
          (ratio < best_ratio + kTol &&
           (leaving == m || basis[i] < basis[leaving]))) {
        best_ratio = ratio;
        leaving = i;
      }
    }
    if (leaving == m) return LpStatus::kUnbounded;

    // Pivot on (leaving, entering).
    const double pivot = tableau[leaving * stride + entering];
    double* lrow = tableau + leaving * stride;
    for (std::size_t j = 0; j <= cols; ++j) lrow[j] /= pivot;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == leaving) continue;
      const double factor = tableau[i * stride + entering];
      if (factor == 0.0) continue;
      double* row = tableau + i * stride;
      for (std::size_t j = 0; j <= cols; ++j) {
        row[j] -= factor * lrow[j];
      }
    }
    basis[leaving] = entering;
  }
}

// rhs-flipped relation of a row (rows with negative rhs are negated
// during tableau assembly).
LpRelation EffectiveRelation(LpRelation rel, double rhs) {
  if (rhs >= 0) return rel;
  if (rel == LpRelation::kLessEq) return LpRelation::kGreaterEq;
  if (rel == LpRelation::kGreaterEq) return LpRelation::kLessEq;
  return LpRelation::kEqual;
}

}  // namespace

LinearProgram::LinearProgram(std::size_t num_vars) : num_vars_(num_vars) {
  DRLI_CHECK(num_vars >= 1);
  objective_.assign(num_vars, 0.0);
}

void LinearProgram::AddConstraint(std::span<const double> coeffs,
                                  LpRelation rel, double rhs) {
  DRLI_CHECK_EQ(coeffs.size(), num_vars_);
  row_coeffs_.insert(row_coeffs_.end(), coeffs.begin(), coeffs.end());
  rows_.push_back(RowMeta{rel, rhs});
}

void LinearProgram::SetMinimize(std::span<const double> coeffs) {
  DRLI_CHECK_EQ(coeffs.size(), num_vars_);
  objective_.assign(coeffs.begin(), coeffs.end());
  maximize_ = false;
}

void LinearProgram::SetMaximize(std::span<const double> coeffs) {
  DRLI_CHECK_EQ(coeffs.size(), num_vars_);
  objective_.resize(num_vars_);
  for (std::size_t j = 0; j < num_vars_; ++j) objective_[j] = -coeffs[j];
  maximize_ = true;
}

LpResult LinearProgram::Solve() const { return SolveImpl(false); }

bool LinearProgram::IsFeasible() const {
  return SolveImpl(true).status == LpStatus::kOptimal;
}

LpResult LinearProgram::SolveImpl(bool feasibility_only) const {
  const std::size_t m = rows_.size();

  // Column layout: [original vars][slack/surplus][artificials][rhs].
  // <= rows take a slack and need no artificial; >= and == rows take an
  // artificial (>= additionally takes a surplus column). Rows with a
  // negative rhs are negated (flipping the relation) as the tableau is
  // assembled, so no normalized copy of the rows is materialized.
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const RowMeta& r : rows_) {
    const LpRelation rel = EffectiveRelation(r.rel, r.rhs);
    if (rel != LpRelation::kEqual) ++num_slack;
    if (rel != LpRelation::kLessEq) ++num_artificial;
  }
  const std::size_t slack_base = num_vars_;
  const std::size_t art_base = num_vars_ + num_slack;
  const std::size_t cols = art_base + num_artificial;
  const std::size_t stride = cols + 1;

  // Scratch reused across calls: the EDS facet test solves hundreds of
  // thousands of tiny LPs per build, and per-call heap churn was a
  // measurable fraction of build time. thread_local keeps the parallel
  // build race-free.
  thread_local std::vector<double> tableau;
  thread_local std::vector<std::size_t> basis;
  tableau.assign(m * stride, 0.0);
  basis.assign(m, 0);
  std::size_t next_slack = slack_base;
  std::size_t next_art = art_base;
  for (std::size_t i = 0; i < m; ++i) {
    const RowMeta& r = rows_[i];
    const double* coeffs = row_coeffs_.data() + i * num_vars_;
    const bool flip = r.rhs < 0;
    double* row = tableau.data() + i * stride;
    for (std::size_t j = 0; j < num_vars_; ++j) {
      row[j] = flip ? -coeffs[j] : coeffs[j];
    }
    row[cols] = flip ? -r.rhs : r.rhs;
    switch (EffectiveRelation(r.rel, r.rhs)) {
      case LpRelation::kLessEq:
        row[next_slack] = 1.0;
        basis[i] = next_slack++;
        break;
      case LpRelation::kGreaterEq:
        row[next_slack] = -1.0;
        ++next_slack;
        row[next_art] = 1.0;
        basis[i] = next_art++;
        break;
      case LpRelation::kEqual:
        row[next_art] = 1.0;
        basis[i] = next_art++;
        break;
    }
  }

  LpResult result;
  thread_local std::vector<double> cost;
  thread_local std::vector<bool> can_enter;

  // Phase 1: minimize the sum of artificials.
  if (num_artificial > 0) {
    cost.assign(cols, 0.0);
    for (std::size_t j = art_base; j < cols; ++j) cost[j] = 1.0;
    can_enter.assign(cols, true);
    double phase1_obj = 0.0;
    const LpStatus status = RunSimplex(tableau.data(), m, basis, cost,
                                       can_enter, cols, &phase1_obj);
    DRLI_CHECK(status == LpStatus::kOptimal)
        << "phase-1 LP cannot be unbounded";
    if (phase1_obj > 1e-7) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Drive remaining artificials out of the basis where possible.
    for (std::size_t i = 0; i < m; ++i) {
      if (basis[i] < art_base) continue;
      std::size_t pivot_col = cols;
      for (std::size_t j = 0; j < art_base; ++j) {
        if (std::fabs(tableau[i * stride + j]) > kTol) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col == cols) continue;  // redundant row; artificial stays 0
      const double pivot = tableau[i * stride + pivot_col];
      double* prow = tableau.data() + i * stride;
      for (std::size_t j = 0; j <= cols; ++j) prow[j] /= pivot;
      for (std::size_t r2 = 0; r2 < m; ++r2) {
        if (r2 == i) continue;
        const double factor = tableau[r2 * stride + pivot_col];
        if (factor == 0.0) continue;
        double* row = tableau.data() + r2 * stride;
        for (std::size_t j = 0; j <= cols; ++j) {
          row[j] -= factor * prow[j];
        }
      }
      basis[i] = pivot_col;
    }
  }

  // Phase 2: the real objective; artificial columns may not re-enter.
  // A feasibility-only solve keeps the zero objective, which makes this
  // phase a no-op beyond the optimality check.
  cost.assign(cols, 0.0);
  if (!feasibility_only) {
    for (std::size_t j = 0; j < num_vars_; ++j) cost[j] = objective_[j];
  }
  can_enter.assign(cols, true);
  for (std::size_t j = art_base; j < cols; ++j) can_enter[j] = false;
  double obj = 0.0;
  const LpStatus status =
      RunSimplex(tableau.data(), m, basis, cost, can_enter, cols, &obj);
  if (status == LpStatus::kUnbounded) {
    result.status = LpStatus::kUnbounded;
    return result;
  }

  result.status = LpStatus::kOptimal;
  result.objective = maximize_ ? -obj : obj;
  result.x.assign(num_vars_, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < num_vars_) result.x[basis[i]] = tableau[i * stride + cols];
  }
  return result;
}

}  // namespace drli
