// Convex skyline (Definition 4): the tuples that minimize some linear
// scoring function with strictly positive weights, plus the *lower
// facets* of their hull, which Section III-B uses as the minimal
// ∃-dominance sets.
//
// Extraction strategy per dimensionality:
//   d == 2  -- exact lower-left monotone chain; facets are consecutive
//              chain pairs.
//   d >= 3  -- hull via geometry/convex_hull (with the top sentinel);
//              members are (a) vertices of facets whose outward normal
//              is componentwise non-positive ("lower facets", the
//              sources of ∃-dominance edges) plus (b) hull vertices
//              whose local-optimality LP over strictly positive weights
//              is feasible. Set (b) ⊇ the exact convex skyline; the
//              union is therefore a superset of CSKY, which preserves
//              Lemma 2 (the minimizer of any strictly positive scoring
//              function lies in the first sublayer).
//
// Degenerate inputs (|S| <= d, affinely dependent, hull failure) fall
// back to members = all points with a single all-member pseudo-facet,
// flagged exact = false. The fallback is conservative: layering remains
// a valid partition and query answers stay correct; only pruning
// quality degrades.

#ifndef DRLI_GEOMETRY_CONVEX_SKYLINE_H_
#define DRLI_GEOMETRY_CONVEX_SKYLINE_H_

#include <vector>

#include "common/point.h"

namespace drli {

struct ConvexSkylineOptions {
  // Hull orientation tolerance.
  double eps = 1e-9;
  // A facet counts as "lower" iff every outward-normal component is
  // <= normal_tol.
  double normal_tol = 1e-9;
  // When false, the per-vertex local-optimality LP pass is skipped and
  // members are the lower-facet vertices only (faster; used by
  // benchmarks that only need a valid peel, not the exact CSKY).
  bool lp_membership = true;
};

struct ConvexSkylineResult {
  // Convex-skyline member ids (into the input PointSet), ascending.
  std::vector<TupleId> members;
  // Lower-facet simplices: each a set of <= d member ids spanning one
  // lower facet of the hull. These are the EDS candidates of Section
  // III-B. May be empty in fallback mode.
  std::vector<std::vector<TupleId>> facets;
  // False when the conservative fallback (members = all points) fired.
  bool exact = true;
};

ConvexSkylineResult ComputeConvexSkyline(
    const PointSet& points, const ConvexSkylineOptions& options = {});

}  // namespace drli

#endif  // DRLI_GEOMETRY_CONVEX_SKYLINE_H_
