#include "geometry/convex_skyline.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "geometry/convex_hull.h"
#include "geometry/convex_hull_2d.h"
#include "geometry/simplex_lp.h"

namespace drli {

namespace {

ConvexSkylineResult Fallback(const PointSet& points) {
  ConvexSkylineResult result;
  result.exact = false;
  result.members.resize(points.size());
  std::iota(result.members.begin(), result.members.end(), 0);
  if (!result.members.empty()) {
    // One pseudo-facet spanning all members: still a sound EDS
    // candidate (the intersection LP is what certifies a facet).
    result.facets.push_back(result.members);
  }
  return result;
}

ConvexSkylineResult ConvexSkyline2D(const PointSet& points) {
  ConvexSkylineResult result;
  const std::vector<std::int32_t> chain = LowerLeftChain2D(points);
  result.members.assign(chain.begin(), chain.end());
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    result.facets.push_back({static_cast<TupleId>(chain[i]),
                             static_cast<TupleId>(chain[i + 1])});
  }
  std::sort(result.members.begin(), result.members.end());
  return result;
}

// True iff some strictly positive weight vector makes `v` locally (and
// hence globally) optimal: exists w with w_i >= 1 and
// w . (u - v) >= 0 for every hull neighbour u.
bool IsPositiveMinimizer(const PointSet& points, std::int32_t v,
                         const std::vector<std::int32_t>& neighbors) {
  const std::size_t d = points.dim();
  LinearProgram lp(d);
  std::vector<double> row(d);
  for (std::size_t j = 0; j < d; ++j) {
    std::fill(row.begin(), row.end(), 0.0);
    row[j] = 1.0;
    lp.AddConstraint(row, LpRelation::kGreaterEq, 1.0);
  }
  const PointView pv = points[v];
  for (std::int32_t u : neighbors) {
    const PointView pu = points[u];
    for (std::size_t j = 0; j < d; ++j) row[j] = pu[j] - pv[j];
    lp.AddConstraint(row, LpRelation::kGreaterEq, 0.0);
  }
  return lp.IsFeasible();
}

}  // namespace

ConvexSkylineResult ComputeConvexSkyline(const PointSet& points,
                                         const ConvexSkylineOptions& options) {
  const std::size_t d = points.dim();
  if (points.empty()) return ConvexSkylineResult{};
  if (d == 2) return ConvexSkyline2D(points);
  if (points.size() <= d + 1) return Fallback(points);

  ConvexHullOptions hull_options;
  hull_options.eps = options.eps;
  hull_options.add_top_sentinel = true;
  ConvexHull hull;
  if (ComputeConvexHull(points, hull_options, &hull) != HullStatus::kOk) {
    return Fallback(points);
  }

  ConvexSkylineResult result;
  std::vector<bool> member(points.size(), false);
  for (const HullFacet& f : hull.facets) {
    bool lower = true;
    for (double n : f.plane.normal) {
      if (n > options.normal_tol) {
        lower = false;
        break;
      }
    }
    if (!lower) continue;
    std::vector<TupleId> facet;
    facet.reserve(f.vertices.size());
    for (std::int32_t v : f.vertices) {
      facet.push_back(static_cast<TupleId>(v));
      member[v] = true;
    }
    std::sort(facet.begin(), facet.end());
    result.facets.push_back(std::move(facet));
  }

  if (options.lp_membership) {
    const auto adjacency = BuildVertexAdjacency(hull, points.size());
    for (std::int32_t v : hull.vertices) {
      if (member[v]) continue;
      if (IsPositiveMinimizer(points, v, adjacency[v])) member[v] = true;
    }
  }

  for (std::size_t i = 0; i < points.size(); ++i) {
    if (member[i]) result.members.push_back(static_cast<TupleId>(i));
  }
  if (result.members.empty()) return Fallback(points);
  return result;
}

}  // namespace drli
