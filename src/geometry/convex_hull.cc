#include "geometry/convex_hull.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/check.h"

namespace drli {

namespace {

// Facet vertex/neighbour lists are stored inline (simplicial facets
// have exactly d entries); dimensions beyond this cap report
// kDegenerate, which callers already translate into their exact
// fallbacks. Hull-based indexing is hopeless that deep anyway.
constexpr std::size_t kMaxHullDim = 12;

// Working representation of one facet during construction. The plane
// is stored inline (fixed-size normal plus offset) so facet creation
// does not heap-allocate per facet.
struct FacetRec {
  std::array<std::int32_t, kMaxHullDim> verts;  // d point indices
  std::array<std::int32_t, kMaxHullDim> neigh;  // d facet ids, per vertex
  std::array<double, kMaxHullDim> normal;       // outward unit normal
  double offset = 0.0;                          // normal . x == offset
  std::vector<std::int32_t> outside;  // points strictly above this facet
  double furthest_dist = 0.0;
  std::int32_t furthest = -1;
  bool alive = true;
};

// Same accumulation order as Hyperplane::SignedDistance.
inline double FacetDistance(const FacetRec& f, PointView p,
                            std::size_t dim) {
  double s = -f.offset;
  for (std::size_t j = 0; j < dim; ++j) s += f.normal[j] * p[j];
  return s;
}

// Hash key for a (d-1)-vertex ridge: sorted vertex ids.
struct RidgeKey {
  std::array<std::int32_t, kMaxHullDim> verts;
  std::uint32_t size = 0;
  bool operator==(const RidgeKey& o) const {
    if (size != o.size) return false;
    for (std::uint32_t i = 0; i < size; ++i) {
      if (verts[i] != o.verts[i]) return false;
    }
    return true;
  }
};

std::size_t RidgeKeyHash(const RidgeKey& k) {
  std::size_t h = 1469598103934665603ull;
  for (std::uint32_t i = 0; i < k.size; ++i) {
    h ^= static_cast<std::size_t>(k.verts[i]) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return h;
}

// Slot of the flat linear-probing table used to pair apex ridges. The
// table is hoisted across apexes and invalidated by bumping `stamp`
// instead of clearing, so the pairing allocates nothing in steady
// state. Each ridge occurs exactly twice on a closed horizon, so a
// slot is inserted once and consumed (paired) once; no deletion.
struct RidgeSlot {
  RidgeKey key;
  std::int32_t facet = -1;
  std::uint32_t slot = 0;
  std::uint32_t stamp = 0;
  bool paired = false;
};

class HullBuilder {
 public:
  HullBuilder(const PointSet& points, const ConvexHullOptions& options)
      : input_(points), options_(options), dim_(points.dim()) {}

  HullStatus Build(ConvexHull* out);

 private:
  PointView PointAt(std::int32_t id) const {
    if (id < static_cast<std::int32_t>(input_.size())) {
      return input_[static_cast<std::size_t>(id)];
    }
    return PointView(sentinel_);
  }

  std::size_t NumPoints() const {
    return input_.size() + (sentinel_.empty() ? 0 : 1);
  }

  bool MakePlane(const std::int32_t* verts, FacetRec* f);
  bool BuildInitialSimplex();
  bool ProcessOutsidePoints();
  void AssignInitialOutside();
  void Compact(ConvexHull* out);

  const PointSet& input_;
  ConvexHullOptions options_;
  std::size_t dim_;
  Point sentinel_;         // empty unless add_top_sentinel
  std::int32_t sentinel_id_ = -1;
  Point interior_;         // reference interior point
  std::vector<std::int32_t> simplex_;   // initial d+1 vertex ids
  std::vector<FacetRec> facets_;
  std::vector<std::int32_t> pending_;   // facet ids with outside points
  std::size_t live_facets_ = 0;
  // Per-facet visit stamps for the visibility BFS.
  std::vector<std::uint32_t> visit_stamp_;
  std::uint32_t current_stamp_ = 0;
  std::vector<PointView> plane_pts_;  // MakePlane scratch
  Hyperplane plane_scratch_;          // MakePlane scratch
};

bool HullBuilder::MakePlane(const std::int32_t* verts, FacetRec* f) {
  plane_pts_.clear();
  for (std::size_t s = 0; s < dim_; ++s) plane_pts_.push_back(PointAt(verts[s]));
  Hyperplane* plane = &plane_scratch_;
  if (!HyperplaneThroughPoints(plane_pts_, plane)) return false;
  // Orient outward: the interior reference point must be strictly below.
  const double d = plane->SignedDistance(PointView(interior_));
  if (std::fabs(d) < options_.eps * 0.5) return false;  // interior on plane
  if (d > 0.0) {
    for (double& x : plane->normal) x = -x;
    plane->offset = -plane->offset;
  }
  std::copy(plane->normal.begin(), plane->normal.end(), f->normal.begin());
  f->offset = plane->offset;
  return true;
}

bool HullBuilder::BuildInitialSimplex() {
  const std::size_t n = NumPoints();
  if (n < dim_ + 1) return false;

  // Greedy affinely-independent selection: start from the two points
  // extreme along the axis of largest spread, then repeatedly add the
  // point furthest from the current affine span.
  std::size_t best_axis = 0;
  std::int32_t lo = 0, hi = 0;
  double best_spread = -1.0;
  for (std::size_t a = 0; a < dim_; ++a) {
    std::int32_t lo_a = 0, hi_a = 0;
    for (std::size_t i = 1; i < n; ++i) {
      const auto id = static_cast<std::int32_t>(i);
      if (PointAt(id)[a] < PointAt(lo_a)[a]) lo_a = id;
      if (PointAt(id)[a] > PointAt(hi_a)[a]) hi_a = id;
    }
    const double spread = PointAt(hi_a)[a] - PointAt(lo_a)[a];
    if (spread > best_spread) {
      best_spread = spread;
      best_axis = a;
      lo = lo_a;
      hi = hi_a;
    }
  }
  (void)best_axis;
  if (lo == hi || best_spread < options_.eps) return false;

  AffineBasis basis(dim_);
  simplex_.clear();
  basis.Add(PointAt(lo), options_.eps);
  simplex_.push_back(lo);
  if (!basis.Add(PointAt(hi), options_.eps)) return false;
  simplex_.push_back(hi);
  while (simplex_.size() < dim_ + 1) {
    std::int32_t best = -1;
    double best_dist = options_.eps;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<std::int32_t>(i);
      if (std::find(simplex_.begin(), simplex_.end(), id) != simplex_.end()) {
        continue;
      }
      const double dist = basis.DistanceToSpan(PointAt(id));
      if (dist > best_dist) {
        best_dist = dist;
        best = id;
      }
    }
    if (best < 0) return false;  // affinely dependent input
    DRLI_CHECK(basis.Add(PointAt(best), options_.eps));
    simplex_.push_back(best);
  }

  // Interior reference: centroid of the simplex.
  interior_.assign(dim_, 0.0);
  for (std::int32_t v : simplex_) {
    PointView p = PointAt(v);
    for (std::size_t j = 0; j < dim_; ++j) interior_[j] += p[j];
  }
  for (double& x : interior_) x /= static_cast<double>(dim_ + 1);

  // The d+1 simplex facets: facet i omits simplex_[i].
  facets_.clear();
  facets_.resize(dim_ + 1);
  for (std::size_t i = 0; i <= dim_; ++i) {
    FacetRec& f = facets_[i];
    f.neigh.fill(-1);
    std::size_t vcount = 0;
    for (std::size_t j = 0; j <= dim_; ++j) {
      if (j != i) f.verts[vcount++] = simplex_[j];
    }
    if (!MakePlane(f.verts.data(), &f)) return false;
    // Neighbour opposite f.verts[s]: f.verts[s] == simplex_[j], and the
    // ridge omitting both simplex_[i] and simplex_[j] is shared with
    // facet j.
    for (std::size_t s = 0; s < dim_; ++s) {
      const std::int32_t vid = f.verts[s];
      for (std::size_t j = 0; j <= dim_; ++j) {
        if (simplex_[j] == vid) {
          f.neigh[s] = static_cast<std::int32_t>(j);
          break;
        }
      }
      DRLI_DCHECK(f.neigh[s] >= 0);
    }
  }
  live_facets_ = dim_ + 1;
  return true;
}

void HullBuilder::AssignInitialOutside() {
  const std::size_t n = NumPoints();
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::int32_t>(i);
    if (std::find(simplex_.begin(), simplex_.end(), id) != simplex_.end()) {
      continue;
    }
    PointView p = PointAt(id);
    for (FacetRec& f : facets_) {
      const double dist = FacetDistance(f, p, dim_);
      if (dist > options_.eps) {
        f.outside.push_back(id);
        if (dist > f.furthest_dist) {
          f.furthest_dist = dist;
          f.furthest = id;
        }
        break;
      }
    }
  }
  for (std::size_t i = 0; i < facets_.size(); ++i) {
    if (!facets_[i].outside.empty()) {
      pending_.push_back(static_cast<std::int32_t>(i));
    }
  }
}

bool HullBuilder::ProcessOutsidePoints() {
  visit_stamp_.assign(facets_.size(), 0);
  std::vector<std::int32_t> visible;
  std::vector<std::int32_t> bfs;
  // Horizon ridge: (visible facet id, slot, outer neighbour id).
  struct Horizon {
    std::int32_t visible_facet;
    std::size_t slot;
    std::int32_t outer;
  };
  std::vector<Horizon> horizon;
  std::vector<RidgeSlot> ridge_table;  // power-of-two linear probing
  std::uint32_t ridge_stamp = 0;
  std::vector<std::int32_t> new_facets;
  // New-facet planes flattened to d normal entries plus the offset per
  // facet, so the redistribution loop scans contiguous memory instead
  // of chasing FacetRec -> heap-allocated normal per probe.
  std::vector<double> new_planes;
  // Apex distance per stamped facet, so the BFS evaluates each facet's
  // plane once instead of once per incident edge.
  std::vector<double> apex_dist;
  // Retired outside-point buffers, recycled into new facets so the
  // redistribution loop reuses capacity instead of reallocating.
  std::vector<std::vector<std::int32_t>> spare_outside;

  while (!pending_.empty()) {
    const std::int32_t fid = pending_.back();
    pending_.pop_back();
    if (fid >= static_cast<std::int32_t>(facets_.size())) continue;
    FacetRec& f = facets_[fid];
    if (!f.alive || f.outside.empty()) continue;

    const std::int32_t apex = f.furthest;
    DRLI_DCHECK(apex >= 0);
    PointView apex_pt = PointAt(apex);

    // Visibility BFS from f.
    ++current_stamp_;
    visit_stamp_.resize(facets_.size(), 0);
    apex_dist.resize(facets_.size(), 0.0);
    visible.clear();
    horizon.clear();
    bfs.clear();
    bfs.push_back(fid);
    visit_stamp_[fid] = current_stamp_;
    // The seed's apex distance was computed when the apex was assigned
    // as its furthest outside point.
    apex_dist[fid] = f.furthest_dist;
    while (!bfs.empty()) {
      const std::int32_t cur = bfs.back();
      bfs.pop_back();
      visible.push_back(cur);
      const FacetRec& fc = facets_[cur];
      for (std::size_t s = 0; s < dim_; ++s) {
        const std::int32_t nb = fc.neigh[s];
        DRLI_DCHECK(nb >= 0);
        if (visit_stamp_[nb] == current_stamp_) {
          if (facets_[nb].alive && apex_dist[nb] > options_.eps) {
            continue;  // already queued as visible
          }
          // Already classified not-visible: horizon ridge.
          horizon.push_back(Horizon{cur, s, nb});
          continue;
        }
        visit_stamp_[nb] = current_stamp_;
        const double dist = FacetDistance(facets_[nb], apex_pt, dim_);
        apex_dist[nb] = dist;
        if (dist > options_.eps) {
          bfs.push_back(nb);
        } else {
          horizon.push_back(Horizon{cur, s, nb});
        }
      }
    }

    if (horizon.empty()) return false;  // numerically inconsistent

    // Create one new facet per horizon ridge. Size the ridge table for
    // load factor <= 1/2 and invalidate previous contents by stamp.
    const std::size_t expected_ridges = horizon.size() * (dim_ - 1);
    std::size_t cap = 16;
    while (cap < 2 * expected_ridges) cap <<= 1;
    if (ridge_table.size() < cap) {
      ridge_table.assign(cap, RidgeSlot{});
      ridge_stamp = 0;
    } else {
      cap = ridge_table.size();
    }
    ++ridge_stamp;
    const std::size_t ridge_mask = cap - 1;
    std::size_t open_ridges = 0;
    new_facets.clear();
    new_facets.reserve(horizon.size());
    for (const Horizon& h : horizon) {
      const FacetRec& vf = facets_[h.visible_facet];
      FacetRec nf;
      std::size_t vcount = 0;
      for (std::size_t s = 0; s < dim_; ++s) {
        if (s != h.slot) nf.verts[vcount++] = vf.verts[s];
      }
      nf.verts[vcount] = apex;
      nf.neigh.fill(-1);
      if (!MakePlane(nf.verts.data(), &nf)) return false;
      const auto new_id = static_cast<std::int32_t>(facets_.size());

      // Across the ridge without the apex lies the old outer facet.
      nf.neigh[dim_ - 1] = h.outer;
      FacetRec& outer = facets_[h.outer];
      bool wired = false;
      for (std::size_t s = 0; s < dim_; ++s) {
        if (outer.neigh[s] == h.visible_facet) {
          outer.neigh[s] = new_id;
          wired = true;
          break;
        }
      }
      if (!wired) return false;

      // Ridges containing the apex pair up among the new facets.
      for (std::size_t s = 0; s + 1 < dim_; ++s) {
        RidgeKey key;
        for (std::size_t t = 0; t < dim_; ++t) {
          if (t != s) key.verts[key.size++] = nf.verts[t];
        }
        std::sort(key.verts.begin(), key.verts.begin() + key.size);
        std::size_t h = RidgeKeyHash(key) & ridge_mask;
        while (true) {
          RidgeSlot& rs = ridge_table[h];
          if (rs.stamp != ridge_stamp) {
            rs.key = key;
            rs.facet = new_id;
            rs.slot = static_cast<std::uint32_t>(s);
            rs.stamp = ridge_stamp;
            rs.paired = false;
            ++open_ridges;
            break;
          }
          if (rs.key == key) {
            if (rs.paired) return false;  // ridge seen three times
            nf.neigh[s] = rs.facet;
            facets_[rs.facet].neigh[rs.slot] = new_id;
            rs.paired = true;
            --open_ridges;
            break;
          }
          h = (h + 1) & ridge_mask;
        }
      }

      facets_.push_back(std::move(nf));
      visit_stamp_.push_back(0);
      new_facets.push_back(new_id);
      ++live_facets_;
      if (live_facets_ > options_.max_facets) return false;
    }
    if (open_ridges != 0) return false;  // horizon not closed

    // Redistribute the outside points of all visible facets.
    const std::size_t pstride = dim_ + 1;
    new_planes.clear();
    for (const std::int32_t nid : new_facets) {
      const FacetRec& nf = facets_[nid];
      new_planes.insert(new_planes.end(), nf.normal.begin(),
                        nf.normal.begin() + dim_);
      new_planes.push_back(nf.offset);
    }
    for (const std::int32_t vid : visible) {
      FacetRec& vf = facets_[vid];
      for (const std::int32_t q : vf.outside) {
        if (q == apex) continue;
        PointView qp = PointAt(q);
        for (std::size_t k = 0; k < new_facets.size(); ++k) {
          // Same accumulation order as Hyperplane::SignedDistance.
          const double* pl = new_planes.data() + k * pstride;
          double dist = -pl[dim_];
          for (std::size_t j = 0; j < dim_; ++j) dist += pl[j] * qp[j];
          if (dist > options_.eps) {
            FacetRec& nf = facets_[new_facets[k]];
            if (nf.outside.capacity() == 0 && !spare_outside.empty()) {
              nf.outside = std::move(spare_outside.back());
              spare_outside.pop_back();
            }
            nf.outside.push_back(q);
            if (dist > nf.furthest_dist) {
              nf.furthest_dist = dist;
              nf.furthest = q;
            }
            break;
          }
        }
      }
      if (vf.outside.capacity() != 0) {
        vf.outside.clear();
        spare_outside.push_back(std::move(vf.outside));
        vf.outside = {};
      }
      vf.alive = false;
      --live_facets_;
    }
    for (const std::int32_t nid : new_facets) {
      if (!facets_[nid].outside.empty()) pending_.push_back(nid);
    }
  }
  return true;
}

void HullBuilder::Compact(ConvexHull* out) {
  out->dim = dim_;
  out->vertices.clear();
  out->facets.clear();

  // Keep alive facets not incident to the sentinel.
  std::vector<std::int32_t> remap(facets_.size(), -1);
  for (std::size_t i = 0; i < facets_.size(); ++i) {
    const FacetRec& f = facets_[i];
    if (!f.alive) continue;
    if (sentinel_id_ >= 0 &&
        std::find(f.verts.begin(), f.verts.begin() + dim_, sentinel_id_) !=
            f.verts.begin() + dim_) {
      continue;
    }
    remap[i] = static_cast<std::int32_t>(out->facets.size());
    out->facets.emplace_back();
  }
  std::size_t next = 0;
  for (std::size_t i = 0; i < facets_.size(); ++i) {
    if (remap[i] < 0) continue;
    const FacetRec& f = facets_[i];
    HullFacet& hf = out->facets[next++];
    hf.vertices.assign(f.verts.begin(), f.verts.begin() + dim_);
    hf.plane.normal.assign(f.normal.begin(), f.normal.begin() + dim_);
    hf.plane.offset = f.offset;
    hf.neighbors.assign(dim_, -1);
    for (std::size_t s = 0; s < dim_; ++s) {
      const std::int32_t nb = f.neigh[s];
      if (nb >= 0 && remap[nb] >= 0) hf.neighbors[s] = remap[nb];
    }
  }

  std::vector<bool> is_vertex(NumPoints(), false);
  // Vertices come from all alive facets (including sentinel ones, so
  // that points whose every incident facet touches the sentinel are
  // still reported as hull vertices), minus the sentinel itself.
  for (const FacetRec& f : facets_) {
    if (!f.alive) continue;
    for (std::size_t s = 0; s < dim_; ++s) {
      if (f.verts[s] != sentinel_id_) is_vertex[f.verts[s]] = true;
    }
  }
  for (std::size_t i = 0; i < is_vertex.size(); ++i) {
    if (is_vertex[i]) out->vertices.push_back(static_cast<std::int32_t>(i));
  }
}

HullStatus HullBuilder::Build(ConvexHull* out) {
  DRLI_CHECK(dim_ >= 2) << "convex hull requires dim >= 2";
  if (dim_ > kMaxHullDim) return HullStatus::kDegenerate;
  if (options_.add_top_sentinel && input_.size() > 0) {
    // One point beyond the max corner in every coordinate; it is never
    // below any lower facet, so the lower hull is unchanged.
    sentinel_.assign(dim_, 0.0);
    for (std::size_t i = 0; i < input_.size(); ++i) {
      PointView p = input_[i];
      for (std::size_t j = 0; j < dim_; ++j) {
        sentinel_[j] = std::max(sentinel_[j], p[j]);
      }
    }
    for (double& x : sentinel_) x = x * 2.0 + 1.0;
    sentinel_id_ = static_cast<std::int32_t>(input_.size());
  }
  if (!BuildInitialSimplex()) return HullStatus::kDegenerate;
  AssignInitialOutside();
  if (!ProcessOutsidePoints()) return HullStatus::kDegenerate;
  Compact(out);
  return HullStatus::kOk;
}

}  // namespace

HullStatus ComputeConvexHull(const PointSet& points,
                             const ConvexHullOptions& options,
                             ConvexHull* hull) {
  HullBuilder builder(points, options);
  return builder.Build(hull);
}

std::vector<std::vector<std::int32_t>> BuildVertexAdjacency(
    const ConvexHull& hull, std::size_t num_points) {
  std::vector<std::vector<std::int32_t>> adj(num_points);
  for (const HullFacet& f : hull.facets) {
    // Simplicial facet: every vertex pair within it is a hull edge.
    for (std::size_t a = 0; a < f.vertices.size(); ++a) {
      for (std::size_t b = a + 1; b < f.vertices.size(); ++b) {
        adj[f.vertices[a]].push_back(f.vertices[b]);
        adj[f.vertices[b]].push_back(f.vertices[a]);
      }
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

}  // namespace drli
