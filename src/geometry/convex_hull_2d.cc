#include "geometry/convex_hull_2d.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace drli {

namespace {

constexpr double kCollinearTol = 1e-12;

// Twice the signed area of triangle (o, a, b); > 0 for a left turn.
double Cross(PointView o, PointView a, PointView b) {
  return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]);
}

// Indices sorted lexicographically by (x, y).
std::vector<std::int32_t> SortedIndices(const PointSet& points) {
  std::vector<std::int32_t> idx(points.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::int32_t a, std::int32_t b) {
    const PointView pa = points[a], pb = points[b];
    if (pa[0] != pb[0]) return pa[0] < pb[0];
    if (pa[1] != pb[1]) return pa[1] < pb[1];
    return a < b;
  });
  return idx;
}

// Monotone-chain lower hull over lexicographically sorted indices.
std::vector<std::int32_t> LowerHull(const PointSet& points,
                                    const std::vector<std::int32_t>& idx) {
  std::vector<std::int32_t> hull;
  for (std::int32_t i : idx) {
    while (hull.size() >= 2 &&
           Cross(points[hull[hull.size() - 2]], points[hull.back()],
                 points[i]) <= kCollinearTol) {
      hull.pop_back();
    }
    // Skip exact duplicates of the current hull tail.
    if (!hull.empty()) {
      const PointView tail = points[hull.back()], p = points[i];
      if (tail[0] == p[0] && tail[1] == p[1]) continue;
    }
    hull.push_back(i);
  }
  return hull;
}

}  // namespace

std::vector<std::int32_t> ConvexHull2D(const PointSet& points) {
  DRLI_CHECK_EQ(points.dim(), 2u);
  const std::vector<std::int32_t> idx = SortedIndices(points);
  if (idx.size() <= 2) {
    std::vector<std::int32_t> hull(idx);
    if (hull.size() == 2) {
      const PointView a = points[hull[0]], b = points[hull[1]];
      if (a[0] == b[0] && a[1] == b[1]) hull.pop_back();
    }
    return hull;
  }

  std::vector<std::int32_t> lower = LowerHull(points, idx);
  std::vector<std::int32_t> rev(idx.rbegin(), idx.rend());
  std::vector<std::int32_t> upper = LowerHull(points, rev);

  // CCW: lower chain then upper chain, dropping the shared endpoints.
  std::vector<std::int32_t> hull(lower);
  for (std::size_t i = 1; i + 1 < upper.size(); ++i) {
    hull.push_back(upper[i]);
  }
  if (hull.size() > 1 && hull.front() == hull.back()) hull.pop_back();
  return hull;
}

std::vector<std::int32_t> LowerLeftChain2D(const PointSet& points) {
  DRLI_CHECK_EQ(points.dim(), 2u);
  if (points.empty()) return {};
  const std::vector<std::int32_t> idx = SortedIndices(points);
  const std::vector<std::int32_t> lower = LowerHull(points, idx);

  // Keep the strictly y-decreasing prefix: slopes on the lower hull
  // increase left to right, so the chain descends to the min-y vertex
  // and then rises; only descending edges support strictly positive
  // weight vectors.
  std::vector<std::int32_t> chain;
  chain.push_back(lower[0]);
  for (std::size_t i = 1; i < lower.size(); ++i) {
    if (points[lower[i]][1] < points[lower[i - 1]][1]) {
      chain.push_back(lower[i]);
    } else {
      break;
    }
  }
  return chain;
}

}  // namespace drli
