// d-dimensional convex hull (quickhull / beneath-beyond with outside
// sets), the substrate the paper obtains from QHull. Supports d in
// [2, ~6] which covers the paper's experiments (d = 2..5).
//
// The hull is maintained with simplicial facets, outward unit normals
// (oriented away from an interior reference point) and facet adjacency,
// which downstream code uses to
//   * extract convex skylines (lower facets + vertex membership LPs),
//   * enumerate facet simplices for the ∃-dominance-set test.
//
// Robustness model: tolerance-based orientation (points within
// `options.eps` of a facet plane are treated as on/behind it), matching
// qhull's practical behaviour on the paper's [0,1]^d inputs. Degenerate
// inputs (affinely dependent, too few points) are reported via
// HullStatus so callers can fall back to conservative layering.

#ifndef DRLI_GEOMETRY_CONVEX_HULL_H_
#define DRLI_GEOMETRY_CONVEX_HULL_H_

#include <cstdint>
#include <vector>

#include "common/point.h"
#include "geometry/linalg.h"

namespace drli {

struct HullFacet {
  // Exactly d point indices (into the input PointSet) spanning the
  // facet. Order is arbitrary; orientation lives in `plane`.
  std::vector<std::int32_t> vertices;
  // neighbors[i] is the facet index sharing the ridge opposite
  // vertices[i]; -1 when the neighbour was dropped (sentinel facets).
  std::vector<std::int32_t> neighbors;
  // Outward-oriented supporting hyperplane (unit normal).
  Hyperplane plane;
};

enum class HullStatus {
  kOk,
  // Fewer than d+1 points, affinely dependent input, or a numerical
  // inconsistency was detected mid-build. Callers fall back.
  kDegenerate,
};

struct ConvexHull {
  std::size_t dim = 0;
  // Indices of input points that are hull vertices (sorted, unique).
  std::vector<std::int32_t> vertices;
  std::vector<HullFacet> facets;
};

struct ConvexHullOptions {
  // Orientation tolerance: a point is "above" a facet iff its signed
  // distance exceeds eps.
  double eps = 1e-9;
  // When true, a sentinel point far in the dominated direction
  // (max-corner * 2 + 1) is added before building. The sentinel prunes
  // the combinatorially heavy "upper" side of near-degenerate clouds
  // (e.g. anti-correlated data) while leaving every lower facet
  // untouched; facets incident to the sentinel are removed from the
  // output. Used by the convex-skyline code, which only consumes lower
  // facets.
  bool add_top_sentinel = false;
  // Hard cap on live facets; exceeding it aborts with kDegenerate so a
  // pathological input degrades to the conservative fallback instead of
  // exhausting memory.
  std::size_t max_facets = 4'000'000;
};

// Computes the convex hull of `points`. On kDegenerate, *hull is left in
// an unspecified but valid state and must not be used.
HullStatus ComputeConvexHull(const PointSet& points,
                             const ConvexHullOptions& options,
                             ConvexHull* hull);

// Per-vertex adjacency over the hull's 1-skeleton: result[v] lists the
// input-point indices adjacent to v (sorted, unique); empty for
// non-vertices. `num_points` is the size of the original point set.
std::vector<std::vector<std::int32_t>> BuildVertexAdjacency(
    const ConvexHull& hull, std::size_t num_points);

}  // namespace drli

#endif  // DRLI_GEOMETRY_CONVEX_HULL_H_
