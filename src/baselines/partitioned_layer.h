// The Partitioned-Layer Index (Heo, Whang et al., Inf. Sci. 2009 --
// reference [29] of the paper): the relation is split into p
// partitions, each materialized as its own convex-skyline layer list
// (small, cheap-to-build hulls); queries merge the partitions
// layer-by-layer with per-partition chain bounds.
//
// Included as the remaining member of the paper's layer-based family.
// Its trade-off: construction is much cheaper than one global convex
// layering (hulls over n/p points), while query access cost sits
// between Onion and HL.

#ifndef DRLI_BASELINES_PARTITIONED_LAYER_H_
#define DRLI_BASELINES_PARTITIONED_LAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"
#include "skyline/skyline.h"
#include "topk/query.h"

namespace drli {

struct PartitionedLayerOptions {
  // Number of partitions; 0 = ceil(n / 4096) clamped to [1, 64].
  std::size_t num_partitions = 0;
  // Layer cap per partition, as in OnionOptions (top-k with k below
  // the cap stays exact; the remainder forms a complete-access tail).
  std::size_t max_layers_per_partition = 256;
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kSkyTree;
  std::uint64_t seed = 23;  // partition assignment shuffle
  std::string name = "PLI";
};

struct PartitionedLayerBuildStats {
  std::size_t num_partitions = 0;
  std::size_t total_layers = 0;
  double build_seconds = 0.0;
};

class PartitionedLayerIndex final : public TopKIndex {
 public:
  static PartitionedLayerIndex Build(
      PointSet points, const PartitionedLayerOptions& options = {});

  PartitionedLayerIndex(PartitionedLayerIndex&&) = default;
  PartitionedLayerIndex& operator=(PartitionedLayerIndex&&) = default;

  std::string name() const override { return name_; }
  std::size_t size() const override { return points_.size(); }
  std::size_t dim() const override { return points_.dim(); }
  TopKResult Query(const TopKQuery& query) const override;

  const PartitionedLayerBuildStats& build_stats() const { return stats_; }
  // layers()[p][l] = ids of layer l of partition p.
  const std::vector<std::vector<std::vector<TupleId>>>& layers() const {
    return layers_;
  }

 private:
  PartitionedLayerIndex() : points_(1) {}

  std::string name_;
  PartitionedLayerBuildStats stats_;
  PointSet points_;
  std::vector<std::vector<std::vector<TupleId>>> layers_;
};

}  // namespace drli

#endif  // DRLI_BASELINES_PARTITIONED_LAYER_H_
