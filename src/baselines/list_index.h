// List-based top-k processing (Section VII-B): d sorted attribute lists
// over the whole relation, queried with one of the classic middleware
// algorithms. Included as the non-layer baseline family the paper
// positions itself against.
//
//  * FA  (Fagin, PODS'96): round-robin sorted access until k tuples
//    have been seen in every list, then random access to everything
//    seen. Simple, but access cost grows quickly.
//  * TA  (Fagin, Lotem & Naor): sorted access with immediate random
//    access; stops when the frontier threshold reaches the k-th best
//    score. Instance-optimal among random-access algorithms.
//  * NRA (no random access): maintains score intervals from partial
//    attribute knowledge only; stops when k tuples' upper bounds beat
//    every other tuple's lower bound.
//
// Cost accounting: FA/TA count distinct tuples scored (Definition 9);
// NRA never computes full scores, so it counts distinct tuples whose
// partial information was materialized.

#ifndef DRLI_BASELINES_LIST_INDEX_H_
#define DRLI_BASELINES_LIST_INDEX_H_

#include <string>

#include "common/point.h"
#include "common/soa_points.h"
#include "topk/query.h"
#include "topk/sorted_lists.h"

namespace drli {

enum class ListAlgorithm {
  kFa,
  kTa,
  kNra,
};

class ListIndex final : public TopKIndex {
 public:
  static ListIndex Build(PointSet points, ListAlgorithm algorithm);

  ListIndex(ListIndex&&) = default;
  ListIndex& operator=(ListIndex&&) = default;

  std::string name() const override;
  std::size_t size() const override { return points_.size(); }
  std::size_t dim() const override { return points_.dim(); }
  TopKResult Query(const TopKQuery& query) const override;

  ListAlgorithm algorithm() const { return algorithm_; }

 private:
  ListIndex(PointSet points, ListAlgorithm algorithm);

  TopKResult QueryFa(const TopKQuery& query) const;
  TopKResult QueryTa(const TopKQuery& query) const;
  TopKResult QueryNra(const TopKQuery& query) const;

  PointSet points_;
  ListAlgorithm algorithm_;
  SortedLists lists_;
  // Dimension-major view of points_ for batched random-access
  // completion; derived at construction, never persisted.
  SoaPointSet soa_;
};

}  // namespace drli

#endif  // DRLI_BASELINES_LIST_INDEX_H_
