#include "baselines/list_index.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/kernels_batch.h"
#include "common/stopwatch.h"
#include "topk/threshold_algorithm.h"

namespace drli {

namespace {

std::vector<TupleId> AllIds(std::size_t n) {
  std::vector<TupleId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

}  // namespace

ListIndex::ListIndex(PointSet points, ListAlgorithm algorithm)
    : points_(std::move(points)),
      algorithm_(algorithm),
      lists_(points_, AllIds(points_.size())),
      soa_(SoaPointSet::FromPointSet(points_)) {}

ListIndex ListIndex::Build(PointSet points, ListAlgorithm algorithm) {
  return ListIndex(std::move(points), algorithm);
}

std::string ListIndex::name() const {
  switch (algorithm_) {
    case ListAlgorithm::kFa:
      return "FA";
    case ListAlgorithm::kTa:
      return "TA";
    case ListAlgorithm::kNra:
      return "NRA";
  }
  return "LIST";
}

TopKResult ListIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  if (const Status status = ValidateQuery(query, points_.dim());
      !status.ok()) {
    return InvalidQueryResult(status);
  }
  TopKResult result;
  if (query.k == 0) {
    FinalizeComplete(result);
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }
  switch (algorithm_) {
    case ListAlgorithm::kFa:
      result = QueryFa(query);
      break;
    case ListAlgorithm::kTa:
      result = QueryTa(query);
      break;
    case ListAlgorithm::kNra:
      result = QueryNra(query);
      break;
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

TopKResult ListIndex::QueryFa(const TopKQuery& query) const {
  const std::size_t d = points_.dim();
  const std::size_t n = points_.size();
  TopKResult result;
  if (n == 0) {
    FinalizeComplete(result);
    return result;
  }
  BudgetGate gate(query.budget);
  Termination stop = Termination::kComplete;

  // Phase 1: sorted access until k tuples were seen in every list.
  // Nothing is scored yet, so the step budget cannot trip here; the
  // gate still honours deadlines and cancellation.
  std::unordered_map<TupleId, std::size_t> seen_count;
  seen_count.reserve(4 * query.k * d);
  std::size_t fully_seen = 0;
  for (std::size_t pos = 0; pos < n && fully_seen < query.k; ++pos) {
    if (stop = gate.Step(result.stats.tuples_evaluated);
        stop != Termination::kComplete) {
      // No tuple has been scored: nothing to return or certify.
      FinalizePartial(result, stop,
                      -std::numeric_limits<double>::infinity());
      return result;
    }
    for (std::size_t attr = 0; attr < d; ++attr) {
      if (++seen_count[lists_.At(attr, pos).id] == d) ++fully_seen;
    }
  }

  // Phase 2: random access to complete every tuple seen anywhere. With
  // no armed budget the whole candidate set goes through one batched
  // kernel call; a gated query keeps the per-tuple loop so it can stop
  // at any tuple boundary.
  TopKHeap heap(query.k);
  if (!gate.active()) {
    std::vector<TupleId> ids;
    ids.reserve(seen_count.size());
    for (const auto& [id, count] : seen_count) ids.push_back(id);
    std::vector<double> scores(ids.size());
    ScoreBatch(query.weights, soa_, ids.data(), ids.size(), scores.data());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      heap.Push(ScoredTuple{ids[i], scores[i]});
      ++result.stats.tuples_evaluated;
      result.accessed.push_back(ids[i]);
    }
  } else {
    for (const auto& [id, count] : seen_count) {
      if (stop = gate.Step(result.stats.tuples_evaluated);
          stop != Termination::kComplete) {
        break;
      }
      heap.Push(ScoredTuple{id, Score(query.weights, points_[id])});
      ++result.stats.tuples_evaluated;
      result.accessed.push_back(id);
    }
  }
  result.items = heap.SortedAscending();
  if (stop == Termination::kComplete) {
    FinalizeComplete(result);
  } else {
    // The unscored remainder of the candidate set is unbounded, so a
    // mid-phase-2 stop certifies nothing.
    FinalizePartial(result, stop, -std::numeric_limits<double>::infinity());
  }
  return result;
}

TopKResult ListIndex::QueryTa(const TopKQuery& query) const {
  TopKResult result;
  if (points_.empty()) {
    FinalizeComplete(result);
    return result;
  }
  BudgetGate gate(query.budget);
  TaScanControl control;
  control.gate = &gate;
  TopKHeap heap(query.k);
  TaScanLayer(points_, lists_, query.weights, &heap,
              &result.stats.tuples_evaluated, /*layer_min_bound=*/nullptr,
              &result.accessed, &control, &soa_);
  result.items = heap.SortedAscending();
  if (control.stop == Termination::kComplete) {
    FinalizeComplete(result);
  } else {
    FinalizePartial(result, control.stop,
                    HeapFrontier(heap, control.frontier));
  }
  return result;
}

TopKResult ListIndex::QueryNra(const TopKQuery& query) const {
  const std::size_t d = points_.dim();
  const std::size_t n = points_.size();
  TopKResult result;
  if (n == 0) return result;
  const std::size_t k = std::min(query.k, n);
  const PointView w(query.weights);
  BudgetGate gate(query.budget);
  Termination stop = Termination::kComplete;
  double partial_frontier = -std::numeric_limits<double>::infinity();

  // Per-attribute domain maxima tighten the upper bounds.
  std::vector<double> attr_max(d);
  for (std::size_t attr = 0; attr < d; ++attr) {
    attr_max[attr] = lists_.At(attr, n - 1).value;
  }

  struct Partial {
    std::uint32_t known_mask = 0;
    Point values;  // revealed attribute values, canonical slots
  };
  std::unordered_map<TupleId, Partial> seen;
  seen.reserve(16 * k);
  std::vector<double> frontier(d, 0.0);

  // Both bounds sum in canonical attribute order (never in list-reveal
  // order): exact duplicates with equal known masks then carry
  // bitwise-equal bounds, and a fully known tuple's bound is exactly
  // Score(w, tuple). A running sum in reveal order drifts by an ulp
  // and splits exact ties at the stop decision.
  auto bounds_of = [&](const Partial& p) {
    double lower = 0.0, upper = 0.0;
    for (std::size_t attr = 0; attr < d; ++attr) {
      if (p.known_mask & (1u << attr)) {
        lower += w[attr] * p.values[attr];
        upper += w[attr] * p.values[attr];
      } else {
        // An attribute not yet seen in list `attr` is at or beyond the
        // frontier, and at most the list maximum.
        lower += w[attr] * frontier[attr];
        upper += w[attr] * attr_max[attr];
      }
    }
    return std::make_pair(lower, upper);
  };

  std::vector<std::pair<double, TupleId>> winners;  // (upper, id)
  for (std::size_t pos = 0; pos < n; ++pos) {
    // Budget check per sorted-access round; NRA's cost metric is the
    // number of tuples with materialized partial information.
    if (stop = gate.Step(seen.size()); stop != Termination::kComplete) {
      // Return the best-upper-bound candidates seen so far (rescored
      // exactly below -- they are already charged to the cost metric).
      // Every other tuple scores at least its own lower bound, and
      // unseen tuples at least the frontier sum, so the minimum of
      // those is the certification frontier.
      const std::size_t kk = std::min(k, seen.size());
      double min_other_lower = std::numeric_limits<double>::infinity();
      if (kk > 0) {
        std::vector<std::pair<double, TupleId>> uppers;
        uppers.reserve(seen.size());
        for (const auto& [id, partial] : seen) {
          uppers.push_back({bounds_of(partial).second, id});
        }
        std::nth_element(uppers.begin(), uppers.begin() + (kk - 1),
                         uppers.end());
        winners.assign(uppers.begin(), uppers.begin() + kk);
        std::unordered_set<TupleId> candidate_ids;
        candidate_ids.reserve(kk);
        for (const auto& [upper, id] : winners) candidate_ids.insert(id);
        for (const auto& [id, partial] : seen) {
          if (candidate_ids.count(id)) continue;
          min_other_lower =
              std::min(min_other_lower, bounds_of(partial).first);
        }
      }
      if (seen.size() < n) {
        double unseen_lower = 0.0;
        for (std::size_t attr = 0; attr < d; ++attr) {
          unseen_lower += w[attr] * frontier[attr];
        }
        min_other_lower = std::min(min_other_lower, unseen_lower);
      }
      partial_frontier = min_other_lower;
      break;
    }
    for (std::size_t attr = 0; attr < d; ++attr) {
      const SortedLists::Entry& e = lists_.At(attr, pos);
      frontier[attr] = e.value;
      Partial& p = seen[e.id];
      if (p.values.empty()) p.values.assign(d, 0.0);
      if (!(p.known_mask & (1u << attr))) {
        p.known_mask |= (1u << attr);
        p.values[attr] = e.value;
      }
    }

    // Periodic stop check (the bound scan is linear in |seen|, so the
    // check runs every 64 sorted-access rounds to keep the whole query
    // near-linear).
    if ((pos & 63) != 63 && pos + 1 != n) continue;
    if (seen.size() < k) continue;

    // k smallest upper bounds among seen tuples.
    std::vector<std::pair<double, TupleId>> uppers;
    uppers.reserve(seen.size());
    double min_other_lower = std::numeric_limits<double>::infinity();
    for (const auto& [id, partial] : seen) {
      uppers.push_back({bounds_of(partial).second, id});
    }
    std::nth_element(uppers.begin(), uppers.begin() + (k - 1), uppers.end());
    const double kth_upper = uppers[k - 1].first;
    std::unordered_set<TupleId> candidate_ids;
    candidate_ids.reserve(k);
    for (std::size_t i = 0; i < k; ++i) candidate_ids.insert(uppers[i].second);
    for (const auto& [id, partial] : seen) {
      if (candidate_ids.count(id)) continue;
      min_other_lower =
          std::min(min_other_lower, bounds_of(partial).first);
    }
    // Tuples never seen in any list score at least the frontier sum.
    if (seen.size() < n) {
      double unseen_lower = 0.0;
      for (std::size_t attr = 0; attr < d; ++attr) {
        unseen_lower += w[attr] * frontier[attr];
      }
      min_other_lower = std::min(min_other_lower, unseen_lower);
    }
    // STRICT separation: at kth_upper == min_other_lower a tuple
    // outside the candidate set could still realize an exact tie with
    // a smaller id; keep scanning (exhaustion resolves ties exactly).
    if (kth_upper < min_other_lower) {
      winners.assign(uppers.begin(), uppers.begin() + k);
      break;
    }
  }
  if (stop == Termination::kComplete && winners.empty()) {
    // Exhausted the lists: every tuple is fully known.
    std::vector<std::pair<double, TupleId>> uppers;
    for (const auto& [id, partial] : seen) {
      uppers.push_back({bounds_of(partial).second, id});
    }
    std::nth_element(uppers.begin(), uppers.begin() + (k - 1), uppers.end());
    winners.assign(uppers.begin(), uppers.begin() + k);
  }

  // NRA's cost: tuples whose partial information was materialized.
  result.stats.tuples_evaluated = seen.size();
  result.accessed.reserve(seen.size());
  for (const auto& [id, partial] : seen) result.accessed.push_back(id);
  // Report exact scores for the winning set (the set itself is already
  // exact: its upper bounds beat every other lower bound).
  result.items.reserve(winners.size());
  for (const auto& [upper, id] : winners) {
    result.items.push_back(ScoredTuple{id, Score(w, points_[id])});
  }
  std::sort(result.items.begin(), result.items.end(), ResultOrderLess);
  if (stop == Termination::kComplete) {
    FinalizeComplete(result);
  } else {
    FinalizePartial(result, stop, partial_frontier);
  }
  return result;
}

}  // namespace drli
