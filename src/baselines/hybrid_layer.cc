#include "baselines/hybrid_layer.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/stopwatch.h"
#include "skyline/skyline_layers.h"
#include "topk/threshold_algorithm.h"

namespace drli {

HybridLayerIndex HybridLayerIndex::Build(PointSet points,
                                         const HybridLayerOptions& options) {
  Stopwatch timer;
  HybridLayerIndex index;
  index.points_ = std::move(points);
  index.tight_threshold_ = options.tight_threshold;
  index.name_ = options.name.empty()
                    ? (options.tight_threshold ? "HL+" : "HL")
                    : options.name;
  if (!index.points_.empty()) {
    ConvexLayerDecomposition decomposition = BuildConvexLayers(
        index.points_, options.max_layers, options.skyline_algorithm);
    index.layers_ = std::move(decomposition.layers);
    index.stats_.truncated = decomposition.truncated;
    index.lists_.reserve(index.layers_.size());
    for (const std::vector<TupleId>& layer : index.layers_) {
      index.lists_.emplace_back(index.points_, layer);
    }
  }
  index.stats_.num_layers = index.layers_.size();
  index.stats_.build_seconds = timer.ElapsedSeconds();
  return index;
}

TopKResult HybridLayerIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  ValidateQuery(query, points_.dim());
  const PointView w(query.weights);

  TopKResult result;
  if (points_.empty()) return result;
  if (stats_.truncated) {
    DRLI_CHECK(query.k < layers_.size())
        << "k exceeds the peeled layer budget of this HL index";
  }

  TopKHeap heap(query.k);
  std::size_t layers_scanned = 0;
  // Strictly increasing lower bound on the minimum score of every
  // still-unscanned layer (HL+ only): convex-layer minima increase
  // layer over layer, so the previous layer's minimum bounds them all.
  double chain_bound = -std::numeric_limits<double>::infinity();
  for (const SortedLists& layer_lists : lists_) {
    if (layers_scanned == query.k) break;  // k-layer guarantee
    if (tight_threshold_ &&
        std::max(chain_bound, LayerScoreLowerBound(layer_lists, w)) >=
            heap.KthScore()) {
      // No tuple in this or any later layer can enter the top-k.
      break;
    }
    double layer_min_bound = 0.0;
    TaScanLayer(points_, layer_lists, w, &heap,
                &result.stats.tuples_evaluated, &layer_min_bound,
                &result.accessed);
    chain_bound = std::max(chain_bound, layer_min_bound);
    ++layers_scanned;
  }
  result.items = heap.SortedAscending();
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
