#include "baselines/hybrid_layer.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/kernels_batch.h"
#include "common/stopwatch.h"
#include "skyline/skyline_layers.h"
#include "topk/threshold_algorithm.h"

namespace drli {

HybridLayerIndex HybridLayerIndex::Build(PointSet points,
                                         const HybridLayerOptions& options) {
  Stopwatch timer;
  HybridLayerIndex index;
  index.points_ = std::move(points);
  index.tight_threshold_ = options.tight_threshold;
  index.name_ = options.name.empty()
                    ? (options.tight_threshold ? "HL+" : "HL")
                    : options.name;
  if (!index.points_.empty()) {
    ConvexLayerDecomposition decomposition = BuildConvexLayers(
        index.points_, options.max_layers, options.skyline_algorithm);
    index.layers_ = std::move(decomposition.layers);
    index.stats_.truncated = decomposition.truncated;
    index.lists_.reserve(index.layers_.size());
    for (const std::vector<TupleId>& layer : index.layers_) {
      index.lists_.emplace_back(index.points_, layer);
    }
  }
  index.soa_ = SoaPointSet::FromPointSet(index.points_);
  index.stats_.num_layers = index.layers_.size();
  index.stats_.build_seconds = timer.ElapsedSeconds();
  return index;
}

TopKResult HybridLayerIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  if (const Status status = ValidateQuery(query, points_.dim());
      !status.ok()) {
    return InvalidQueryResult(status);
  }

  TopKResult result;
  if (points_.empty() || query.k == 0) {
    FinalizeComplete(result);
    return result;
  }
  if (stats_.truncated && query.k >= layers_.size()) {
    // The tail layer breaks the k-layer guarantee beyond the cap; an
    // oversized k is a recoverable rejection, not a process abort.
    return InvalidQueryResult(Status::InvalidArgument(
        "k exceeds the peeled layer budget of this HL index"));
  }
  const PointView w(query.weights);

  BudgetGate gate(query.budget);
  TaScanControl control;
  control.gate = &gate;
  TopKHeap heap(query.k);
  std::size_t layers_scanned = 0;
  // Weakly increasing lower bound on the minimum score of every
  // still-unscanned layer: convex-layer minima increase layer over
  // layer, so the previous layer's minimum bounds them all.
  double chain_bound = -std::numeric_limits<double>::infinity();
  // Lower bound on every tuple in the unscanned suffix at loop exit;
  // ties with the k-th answer remain possible while it is <= KthScore.
  double separation = std::numeric_limits<double>::infinity();
  bool scanned_all = true;
  for (std::size_t layer = 0; layer < lists_.size(); ++layer) {
    const SortedLists& layer_lists = lists_[layer];
    if (layers_scanned == query.k) {  // k-layer guarantee
      separation = chain_bound;
      scanned_all = false;
      break;
    }
    if (tight_threshold_) {
      const double layer_floor =
          std::max(chain_bound, LayerScoreLowerBound(layer_lists, w));
      if (layer_floor >= heap.KthScore()) {
        // No tuple in this or any later layer can beat the top-k.
        separation = layer_floor;
        scanned_all = false;
        break;
      }
    }
    double layer_min_bound = 0.0;
    TaScanLayer(points_, layer_lists, w, &heap,
                &result.stats.tuples_evaluated, &layer_min_bound,
                &result.accessed, &control, &soa_);
    if (control.stop != Termination::kComplete) {
      // Budget tripped mid-layer. Unoffered tuples of this layer are
      // bounded by the TA frontier. Unscanned deeper layers: convex
      // minima weakly increase, so they are bounded by this layer's
      // (partial) minimum bound, the chain bound, and -- often tightest
      // -- the next layer's own attribute floor. Completed layers'
      // unoffered tuples and heap evictions are at or above the k-th
      // heap entry (HeapFrontier).
      double deeper = std::max(chain_bound, layer_min_bound);
      if (layer + 1 < lists_.size()) {
        deeper = std::max(deeper, LayerScoreLowerBound(lists_[layer + 1], w));
      } else {
        deeper = std::numeric_limits<double>::infinity();
      }
      result.items = heap.SortedAscending();
      if (result.items.size() > query.k) result.items.resize(query.k);
      FinalizePartial(
          result, control.stop,
          HeapFrontier(heap, std::min(control.frontier, deeper)));
      result.stats.elapsed_seconds = timer.ElapsedSeconds();
      return result;
    }
    chain_bound = std::max(chain_bound, layer_min_bound);
    ++layers_scanned;
  }
  // Cross-layer tie-probe: the k-layer guarantee puts every unscanned
  // tuple at or above the k-th answer, but an exact duplicate can still
  // tie it and the canonical (score, id) order must then surface the
  // smaller id. Walk the unscanned suffix charging only genuine ties
  // (the tie-agnostic reference never materializes the rest) until a
  // layer's true minimum strictly separates. Within-layer ties were
  // already resolved by TaScanLayer's own probe.
  if (!scanned_all && heap.size() == heap.k() &&
      separation <= heap.KthScore()) {
    const double kth = heap.KthScore();
    for (std::size_t i = layers_scanned; i < layers_.size(); ++i) {
      if (const Termination stop =
              gate.Step(result.stats.tuples_evaluated);
          stop != Termination::kComplete) {
        // Past the k-layer stop every unreturned tuple scores >= kth;
        // only exact ties at kth are still unresolved.
        result.items = heap.SortedAscending();
        FinalizePartial(result, stop, kth);
        result.stats.elapsed_seconds = timer.ElapsedSeconds();
        return result;
      }
      // Whole-layer sweep: one batched kernel call, then the per-tuple
      // tie bookkeeping in id order exactly as the scalar loop did.
      double layer_min = std::numeric_limits<double>::infinity();
      const std::vector<TupleId>& layer_ids = layers_[i];
      std::vector<double> layer_scores(layer_ids.size());
      ScoreBatch(w, soa_, layer_ids.data(), layer_ids.size(),
                 layer_scores.data());
      for (std::size_t j = 0; j < layer_ids.size(); ++j) {
        const double score = layer_scores[j];
        layer_min = std::min(layer_min, score);
        if (score == kth) {
          ++result.stats.tuples_evaluated;
          result.accessed.push_back(layer_ids[j]);
          heap.Push(ScoredTuple{layer_ids[j], score});
        }
      }
      if (layer_min > kth) break;
    }
  }
  result.items = heap.SortedAscending();
  FinalizeComplete(result);
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
