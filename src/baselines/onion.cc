#include "baselines/onion.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/stopwatch.h"
#include "skyline/skyline_layers.h"
#include "topk/threshold_algorithm.h"

namespace drli {

OnionIndex OnionIndex::Build(PointSet points, const OnionOptions& options) {
  Stopwatch timer;
  OnionIndex index;
  index.points_ = std::move(points);
  index.name_ = options.name;
  index.early_stop_ = options.early_stop;
  if (!index.points_.empty()) {
    ConvexLayerDecomposition decomposition = BuildConvexLayers(
        index.points_, options.max_layers, options.skyline_algorithm);
    index.layers_ = std::move(decomposition.layers);
    index.stats_.truncated = decomposition.truncated;
  }
  index.stats_.num_layers = index.layers_.size();
  index.stats_.build_seconds = timer.ElapsedSeconds();
  return index;
}

TopKResult OnionIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  ValidateQuery(query, points_.dim());
  const PointView w(query.weights);

  TopKResult result;
  if (points_.empty() || query.k == 0) return result;
  if (stats_.truncated) {
    // The tail layer breaks the k-layer guarantee beyond the cap.
    DRLI_CHECK(query.k < layers_.size())
        << "k exceeds the peeled layer budget of this Onion index";
  }

  TopKHeap heap(query.k);
  std::size_t layers_scanned = 0;
  double prev_min = -std::numeric_limits<double>::infinity();
  for (const std::vector<TupleId>& layer : layers_) {
    if (layers_scanned == query.k) break;  // k-layer guarantee
    double layer_min = std::numeric_limits<double>::infinity();
    for (TupleId id : layer) {
      const double score = Score(w, points_[id]);
      ++result.stats.tuples_evaluated;
      result.accessed.push_back(id);
      heap.Push(ScoredTuple{id, score});
      layer_min = std::min(layer_min, score);
    }
    ++layers_scanned;
    prev_min = layer_min;
    // Layer minima strictly increase, so once the k-th best is at or
    // below this layer's minimum no later layer can improve the result.
    if (early_stop_ && heap.KthScore() <= layer_min) break;
  }
  // Tie-probe phase: layer minima only WEAKLY increase under exact
  // duplicates, so at KthScore == prev_min an unscanned layer can still
  // hold an equal-score tuple that the canonical (score, id) order must
  // prefer. Probe forward until a layer's minimum strictly separates;
  // probes are charged to the cost metric only when they actually tie
  // (the classic tie-agnostic traversal never materializes the rest).
  if (heap.size() == heap.k() && heap.KthScore() >= prev_min) {
    const double kth = heap.KthScore();
    for (std::size_t i = layers_scanned; i < layers_.size(); ++i) {
      double layer_min = std::numeric_limits<double>::infinity();
      for (TupleId id : layers_[i]) {
        const double score = Score(w, points_[id]);
        layer_min = std::min(layer_min, score);
        if (score == kth) {
          ++result.stats.tuples_evaluated;
          result.accessed.push_back(id);
          heap.Push(ScoredTuple{id, score});
        }
      }
      if (layer_min > kth) break;
    }
  }
  result.items = heap.SortedAscending();
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
