#include "baselines/onion.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/stopwatch.h"
#include "skyline/skyline_layers.h"
#include "topk/threshold_algorithm.h"

namespace drli {

OnionIndex OnionIndex::Build(PointSet points, const OnionOptions& options) {
  Stopwatch timer;
  OnionIndex index;
  index.points_ = std::move(points);
  index.name_ = options.name;
  index.early_stop_ = options.early_stop;
  if (!index.points_.empty()) {
    ConvexLayerDecomposition decomposition = BuildConvexLayers(
        index.points_, options.max_layers, options.skyline_algorithm);
    index.layers_ = std::move(decomposition.layers);
    index.stats_.truncated = decomposition.truncated;
  }
  index.stats_.num_layers = index.layers_.size();
  index.stats_.build_seconds = timer.ElapsedSeconds();
  return index;
}

TopKResult OnionIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  if (const Status status = ValidateQuery(query, points_.dim());
      !status.ok()) {
    return InvalidQueryResult(status);
  }

  TopKResult result;
  if (points_.empty() || query.k == 0) {
    FinalizeComplete(result);
    return result;
  }
  if (stats_.truncated && query.k >= layers_.size()) {
    // The tail layer breaks the k-layer guarantee beyond the cap; an
    // oversized k is a recoverable rejection, not a process abort.
    return InvalidQueryResult(Status::InvalidArgument(
        "k exceeds the peeled layer budget of this Onion index"));
  }
  const PointView w(query.weights);

  BudgetGate gate(query.budget);
  TopKHeap heap(query.k);
  std::size_t layers_scanned = 0;
  double prev_min = -std::numeric_limits<double>::infinity();
  for (const std::vector<TupleId>& layer : layers_) {
    if (layers_scanned == query.k) break;  // k-layer guarantee
    double layer_min = std::numeric_limits<double>::infinity();
    for (std::size_t pos = 0; pos < layer.size(); ++pos) {
      // Budget check at the scan position. Unscanned tuples of this
      // layer and every deeper layer score at or above the last fully
      // scanned layer's minimum (layer minima weakly increase), so
      // prev_min is the certification frontier.
      if (const Termination stop =
              gate.Step(result.stats.tuples_evaluated);
          stop != Termination::kComplete) {
        result.items = heap.SortedAscending();
        FinalizePartial(result, stop, HeapFrontier(heap, prev_min));
        result.stats.elapsed_seconds = timer.ElapsedSeconds();
        return result;
      }
      const TupleId id = layer[pos];
      const double score = Score(w, points_[id]);
      ++result.stats.tuples_evaluated;
      result.accessed.push_back(id);
      heap.Push(ScoredTuple{id, score});
      layer_min = std::min(layer_min, score);
    }
    ++layers_scanned;
    prev_min = layer_min;
    // Layer minima strictly increase, so once the k-th best is at or
    // below this layer's minimum no later layer can improve the result.
    if (early_stop_ && heap.KthScore() <= layer_min) break;
  }
  // Tie-probe phase: layer minima only WEAKLY increase under exact
  // duplicates, so at KthScore == prev_min an unscanned layer can still
  // hold an equal-score tuple that the canonical (score, id) order must
  // prefer. Probe forward until a layer's minimum strictly separates;
  // probes are charged to the cost metric only when they actually tie
  // (the classic tie-agnostic traversal never materializes the rest).
  if (heap.size() == heap.k() && heap.KthScore() >= prev_min) {
    const double kth = heap.KthScore();
    for (std::size_t i = layers_scanned; i < layers_.size(); ++i) {
      if (const Termination stop =
              gate.Step(result.stats.tuples_evaluated);
          stop != Termination::kComplete) {
        // Past the k-layer stop every unreturned tuple scores >= kth;
        // only exact ties at kth are still unresolved.
        result.items = heap.SortedAscending();
        FinalizePartial(result, stop, kth);
        result.stats.elapsed_seconds = timer.ElapsedSeconds();
        return result;
      }
      double layer_min = std::numeric_limits<double>::infinity();
      for (TupleId id : layers_[i]) {
        const double score = Score(w, points_[id]);
        layer_min = std::min(layer_min, score);
        if (score == kth) {
          ++result.stats.tuples_evaluated;
          result.accessed.push_back(id);
          heap.Push(ScoredTuple{id, score});
        }
      }
      if (layer_min > kth) break;
    }
  }
  result.items = heap.SortedAscending();
  FinalizeComplete(result);
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
