// View-based top-k processing (Section VII-C): pre-computed ranked
// views (materialized top-k queries) reused to answer new queries.
//
//  * PREFER (Hristidis et al., SIGMOD'01): pick the single materialized
//    view whose weight vector is most similar to the query, scan it in
//    view-rank order, and stop at the watermark -- the point where the
//    best possible query score of any unseen tuple (min f_q(x) subject
//    to f_v(x) >= current view score, x in [0,1]^d, a fractional
//    knapsack) cannot beat the current k-th best.
//  * LPTA (Das et al., VLDB'06): scan the r most similar views in
//    round-robin; the unseen-score bound intersects ALL view
//    constraints, solved exactly with the library's simplex LP.
//
// Views are rankings of the full relation under fixed weight vectors
// (the classic "materialized preference view" setting). The cost metric
// counts distinct tuples scored under the query function.

#ifndef DRLI_BASELINES_VIEW_INDEX_H_
#define DRLI_BASELINES_VIEW_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"
#include "topk/query.h"

namespace drli {

enum class ViewAlgorithm {
  kPrefer,  // single best view + knapsack watermark
  kLpta,    // multiple views + LP bound
};

struct ViewIndexOptions {
  ViewAlgorithm algorithm = ViewAlgorithm::kPrefer;
  // Number of materialized views; their weight vectors are drawn
  // uniformly from the open simplex (plus the uniform weight vector).
  std::size_t num_views = 16;
  // Views consulted per query (LPTA only; PREFER always uses 1).
  std::size_t views_per_query = 2;
  std::uint64_t seed = 17;
  std::string name;  // empty = "PREFER" / "LPTA"
};

struct ViewIndexBuildStats {
  std::size_t num_views = 0;
  double build_seconds = 0.0;
};

class ViewIndex final : public TopKIndex {
 public:
  static ViewIndex Build(PointSet points,
                         const ViewIndexOptions& options = {});

  ViewIndex(ViewIndex&&) = default;
  ViewIndex& operator=(ViewIndex&&) = default;

  std::string name() const override { return name_; }
  std::size_t size() const override { return points_.size(); }
  std::size_t dim() const override { return points_.dim(); }
  TopKResult Query(const TopKQuery& query) const override;

  const ViewIndexBuildStats& build_stats() const { return stats_; }
  const std::vector<Point>& view_weights() const { return view_weights_; }

  // Indices of the `count` views most similar to `weights` (cosine
  // similarity), most similar first. Exposed for tests.
  std::vector<std::size_t> SelectViews(PointView weights,
                                       std::size_t count) const;

 private:
  ViewIndex() : points_(1) {}

  struct ViewEntry {
    double score;  // under the view's weight vector
    TupleId id;
  };

  TopKResult QueryPrefer(const TopKQuery& query) const;
  TopKResult QueryLpta(const TopKQuery& query) const;

  std::string name_;
  ViewIndexOptions options_;
  ViewIndexBuildStats stats_;
  PointSet points_;
  Point attr_max_;  // per-attribute data maxima: the bounding box
  std::vector<Point> view_weights_;
  std::vector<std::vector<ViewEntry>> views_;  // ascending by score
};

// Exact minimum of q . x over {x in [0, box] : v . x >= threshold},
// the PREFER watermark bound: a fractional knapsack filled in
// increasing q_i / v_i order. `box` holds the per-attribute maxima of
// the data (empty = the unit box); bounding by the actual data box
// matters because a [0,1] cap on data that exceeds it overestimates
// the bound and stops the scan before true answers. Returns +infinity
// when the constraint is infeasible within the box. Exposed for tests.
double MinQueryScoreGivenViewBound(PointView query_weights,
                                   PointView view_weights, double threshold,
                                   PointView box = {});

}  // namespace drli

#endif  // DRLI_BASELINES_VIEW_INDEX_H_
