#include "baselines/partitioned_layer.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "skyline/skyline_layers.h"
#include "topk/threshold_algorithm.h"

namespace drli {

PartitionedLayerIndex PartitionedLayerIndex::Build(
    PointSet points, const PartitionedLayerOptions& options) {
  Stopwatch timer;
  PartitionedLayerIndex index;
  index.points_ = std::move(points);
  index.name_ = options.name;

  const std::size_t n = index.points_.size();
  if (n > 0) {
    std::size_t p = options.num_partitions;
    if (p == 0) {
      p = std::clamp<std::size_t>((n + 4095) / 4096, 1, 64);
    }
    p = std::min(p, n);

    // Random balanced partition (seeded shuffle + round-robin).
    std::vector<TupleId> shuffled(n);
    std::iota(shuffled.begin(), shuffled.end(), 0);
    Rng rng(options.seed);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Index(i)]);
    }
    std::vector<std::vector<TupleId>> partitions(p);
    for (std::size_t i = 0; i < n; ++i) {
      partitions[i % p].push_back(shuffled[i]);
    }

    index.layers_.reserve(p);
    for (const std::vector<TupleId>& partition : partitions) {
      const PointSet subset = index.points_.Subset(partition);
      const ConvexLayerDecomposition decomposition = BuildConvexLayers(
          subset, options.max_layers_per_partition,
          options.skyline_algorithm);
      std::vector<std::vector<TupleId>> mapped;
      mapped.reserve(decomposition.layers.size());
      for (const std::vector<TupleId>& layer : decomposition.layers) {
        std::vector<TupleId> global;
        global.reserve(layer.size());
        for (TupleId local : layer) global.push_back(partition[local]);
        mapped.push_back(std::move(global));
      }
      index.stats_.total_layers += mapped.size();
      index.layers_.push_back(std::move(mapped));
    }
    index.stats_.num_partitions = p;
  }
  index.stats_.build_seconds = timer.ElapsedSeconds();
  return index;
}

TopKResult PartitionedLayerIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  if (const Status status = ValidateQuery(query, points_.dim());
      !status.ok()) {
    return InvalidQueryResult(status);
  }
  const PointView w(query.weights);

  TopKResult result;
  if (points_.empty() || query.k == 0) {
    FinalizeComplete(result);
    return result;
  }
  const std::size_t p = layers_.size();

  BudgetGate gate(query.budget);
  TopKHeap heap(query.k);
  std::vector<std::size_t> cursor(p, 0);
  // Lower bound on the minimum score in every unscanned layer of each
  // partition: convex-layer minima increase strictly within a
  // partition, so the last scanned layer's minimum bounds the rest.
  std::vector<double> bound(p, -std::numeric_limits<double>::infinity());

  // Certification frontier while the merge is still running: every
  // tuple that can still enter the top-k sits in an unscanned layer of
  // a partition whose k-layer guarantee is not met yet, and scores at
  // least that partition's bound (tuples past a partition's k-th layer
  // cannot rank in the global top-k at all).
  auto unscanned_bound = [&]() {
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t part = 0; part < p; ++part) {
      if (cursor[part] >= layers_[part].size()) continue;
      if (cursor[part] >= query.k) continue;
      b = std::min(b, bound[part]);
    }
    return b;
  };

  while (true) {
    // Most promising partition: smallest bound, still within its
    // k-layer guarantee and not exhausted.
    std::size_t best = p;
    for (std::size_t part = 0; part < p; ++part) {
      if (cursor[part] >= layers_[part].size()) continue;
      if (cursor[part] >= query.k) continue;  // k-layer guarantee met
      if (bound[part] >= heap.KthScore()) continue;
      if (best == p || bound[part] < bound[best]) best = part;
    }
    if (best == p) break;

    const std::vector<TupleId>& layer = layers_[best][cursor[best]];
    double layer_min = std::numeric_limits<double>::infinity();
    for (TupleId id : layer) {
      if (const Termination stop =
              gate.Step(result.stats.tuples_evaluated);
          stop != Termination::kComplete) {
        // The partially scanned layer is still covered by bound[best],
        // which unscanned_bound() includes (the cursor has not moved).
        result.items = heap.SortedAscending();
        FinalizePartial(result, stop,
                        HeapFrontier(heap, unscanned_bound()));
        result.stats.elapsed_seconds = timer.ElapsedSeconds();
        return result;
      }
      const double score = Score(w, points_[id]);
      ++result.stats.tuples_evaluated;
      result.accessed.push_back(id);
      heap.Push(ScoredTuple{id, score});
      layer_min = std::min(layer_min, score);
    }
    bound[best] = layer_min;
    ++cursor[best];
  }
  // Per-partition tie-probe: the bounds above put every unscanned tuple
  // at or above the k-th answer, but an exact duplicate can still tie
  // it and the canonical (score, id) order must then surface the
  // smaller id. Walk each partition's unscanned suffix charging only
  // genuine ties (the tie-agnostic reference never materializes the
  // rest) until its layer minimum strictly separates.
  if (heap.size() == heap.k()) {
    const double kth = heap.KthScore();
    for (std::size_t part = 0; part < p; ++part) {
      if (bound[part] > kth) continue;
      for (std::size_t i = cursor[part]; i < layers_[part].size(); ++i) {
        if (const Termination stop =
                gate.Step(result.stats.tuples_evaluated);
            stop != Termination::kComplete) {
          // Past the merge loop every unreturned tuple scores >= kth;
          // only exact ties at kth are still unresolved.
          result.items = heap.SortedAscending();
          FinalizePartial(result, stop, kth);
          result.stats.elapsed_seconds = timer.ElapsedSeconds();
          return result;
        }
        double layer_min = std::numeric_limits<double>::infinity();
        for (TupleId id : layers_[part][i]) {
          const double score = Score(w, points_[id]);
          layer_min = std::min(layer_min, score);
          if (score == kth) {
            ++result.stats.tuples_evaluated;
            result.accessed.push_back(id);
            heap.Push(ScoredTuple{id, score});
          }
        }
        if (layer_min > kth) break;
      }
    }
  }
  result.items = heap.SortedAscending();
  FinalizeComplete(result);
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
