// The Onion index (Chang et al., SIGMOD'00): convex-skyline layers with
// complete access. Included as the classic convex-layer baseline
// (Table II: complete access to the first layers).
//
// Query processing scans layers in order, scoring every tuple in each
// layer. Because the minimum score per layer strictly increases, the
// scan can stop once k answers at or below the current layer's minimum
// are held (early_stop, on by default); the worst case is the classic
// k-layer guarantee.

#ifndef DRLI_BASELINES_ONION_H_
#define DRLI_BASELINES_ONION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/point.h"
#include "skyline/skyline.h"
#include "topk/query.h"

namespace drli {

struct OnionOptions {
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kSkyTree;
  // Cap on peeled layers; the remainder becomes one complete-access
  // tail layer (queries with k <= max_layers never reach it).
  std::size_t max_layers = static_cast<std::size_t>(-1);
  bool early_stop = true;
  std::string name = "ONION";
};

struct OnionBuildStats {
  std::size_t num_layers = 0;
  bool truncated = false;
  double build_seconds = 0.0;
};

class OnionIndex final : public TopKIndex {
 public:
  static OnionIndex Build(PointSet points, const OnionOptions& options = {});

  OnionIndex(OnionIndex&&) = default;
  OnionIndex& operator=(OnionIndex&&) = default;

  std::string name() const override { return name_; }
  std::size_t size() const override { return points_.size(); }
  std::size_t dim() const override { return points_.dim(); }
  TopKResult Query(const TopKQuery& query) const override;

  const PointSet& points() const { return points_; }
  const std::vector<std::vector<TupleId>>& layers() const { return layers_; }
  const OnionBuildStats& build_stats() const { return stats_; }

 private:
  OnionIndex() : points_(1) {}

  std::string name_;
  bool early_stop_ = true;
  OnionBuildStats stats_;
  PointSet points_;
  std::vector<std::vector<TupleId>> layers_;
};

}  // namespace drli

#endif  // DRLI_BASELINES_ONION_H_
