#include "baselines/view_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "geometry/simplex_lp.h"
#include "topk/threshold_algorithm.h"

namespace drli {

namespace {

double CosineSimilarity(PointView a, PointView b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const double denom = std::sqrt(na * nb);
  return denom > 0 ? dot / denom : 0.0;
}

}  // namespace

double MinQueryScoreGivenViewBound(PointView query_weights,
                                   PointView view_weights, double threshold,
                                   PointView box) {
  const std::size_t d = query_weights.size();
  DRLI_DCHECK(view_weights.size() == d);
  DRLI_DCHECK(box.empty() || box.size() == d);
  if (threshold <= 0.0) return 0.0;
  // Fractional knapsack: buy view-score units at the cheapest
  // query-score price q_i / v_i first.
  std::vector<std::size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    // v_i == 0 dims cannot help meet the constraint; push them last.
    const double ra = view_weights[a] > 0
                          ? query_weights[a] / view_weights[a]
                          : std::numeric_limits<double>::infinity();
    const double rb = view_weights[b] > 0
                          ? query_weights[b] / view_weights[b]
                          : std::numeric_limits<double>::infinity();
    return ra < rb;
  });
  double remaining = threshold;
  double cost = 0.0;
  for (std::size_t i : order) {
    if (view_weights[i] <= 0.0) break;
    const double cap = box.empty() ? 1.0 : box[i];
    const double take = std::min(cap, remaining / view_weights[i]);
    cost += query_weights[i] * take;
    remaining -= view_weights[i] * take;
    if (remaining <= 1e-12) return cost;
  }
  return std::numeric_limits<double>::infinity();  // box cannot reach it
}

ViewIndex ViewIndex::Build(PointSet points, const ViewIndexOptions& options) {
  Stopwatch timer;
  ViewIndex index;
  index.points_ = std::move(points);
  index.options_ = options;
  index.name_ = options.name.empty()
                    ? (options.algorithm == ViewAlgorithm::kPrefer
                           ? "PREFER"
                           : "LPTA")
                    : options.name;

  const std::size_t d = index.points_.dim();
  // The stop bounds minimize over the data's bounding box; assuming the
  // unit box silently breaks on data outside [0,1]^d.
  index.attr_max_.assign(d, 0.0);
  for (std::size_t i = 0; i < index.points_.size(); ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      index.attr_max_[a] = std::max(index.attr_max_[a],
                                    index.points_.At(i, a));
    }
  }
  const std::size_t num_views = std::max<std::size_t>(1, options.num_views);
  Rng rng(options.seed);
  index.view_weights_.push_back(Point(d, 1.0 / static_cast<double>(d)));
  while (index.view_weights_.size() < num_views) {
    index.view_weights_.push_back(rng.SimplexWeight(d));
  }

  index.views_.reserve(num_views);
  for (const Point& w : index.view_weights_) {
    std::vector<ViewEntry> view;
    view.reserve(index.points_.size());
    for (std::size_t i = 0; i < index.points_.size(); ++i) {
      view.push_back(ViewEntry{Score(w, index.points_[i]),
                               static_cast<TupleId>(i)});
    }
    std::sort(view.begin(), view.end(),
              [](const ViewEntry& a, const ViewEntry& b) {
                if (a.score != b.score) return a.score < b.score;
                return a.id < b.id;
              });
    index.views_.push_back(std::move(view));
  }
  index.stats_.num_views = index.views_.size();
  index.stats_.build_seconds = timer.ElapsedSeconds();
  return index;
}

std::vector<std::size_t> ViewIndex::SelectViews(PointView weights,
                                                std::size_t count) const {
  std::vector<std::size_t> order(view_weights_.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> similarity(view_weights_.size());
  for (std::size_t v = 0; v < view_weights_.size(); ++v) {
    similarity[v] = CosineSimilarity(weights, view_weights_[v]);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (similarity[a] != similarity[b]) return similarity[a] > similarity[b];
    return a < b;
  });
  order.resize(std::min(count, order.size()));
  return order;
}

TopKResult ViewIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  if (const Status status = ValidateQuery(query, points_.dim());
      !status.ok()) {
    return InvalidQueryResult(status);
  }
  TopKResult result;
  if (query.k > 0) {
    result = options_.algorithm == ViewAlgorithm::kPrefer
                 ? QueryPrefer(query)
                 : QueryLpta(query);
  } else {
    FinalizeComplete(result);
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

TopKResult ViewIndex::QueryPrefer(const TopKQuery& query) const {
  TopKResult result;
  if (points_.empty()) {
    FinalizeComplete(result);
    return result;
  }
  const PointView q(query.weights);
  const std::size_t best_view = SelectViews(q, 1)[0];
  const std::vector<ViewEntry>& view = views_[best_view];
  const PointView v(view_weights_[best_view]);

  BudgetGate gate(query.budget);
  TopKHeap heap(query.k);
  for (std::size_t pos = 0; pos < view.size(); ++pos) {
    // Budget check at the view position: every unseen tuple has view
    // score >= view[pos].score, so the knapsack watermark at that view
    // score bounds the whole unscanned suffix.
    if (const Termination stop = gate.Step(result.stats.tuples_evaluated);
        stop != Termination::kComplete) {
      const double watermark = MinQueryScoreGivenViewBound(
          q, v, view[pos].score, PointView(attr_max_));
      result.items = heap.SortedAscending();
      FinalizePartial(result, stop, HeapFrontier(heap, watermark));
      return result;
    }
    const ViewEntry& entry = view[pos];
    const double score = Score(q, points_[entry.id]);
    ++result.stats.tuples_evaluated;
    result.accessed.push_back(entry.id);
    heap.Push(ScoredTuple{entry.id, score});
    // Watermark: every unseen tuple has view score >= entry.score, so
    // its query score is at least the knapsack bound. STRICT stop so an
    // unseen equal-score tuple can still claim its (score, id) slot.
    if (MinQueryScoreGivenViewBound(q, v, entry.score,
                                    PointView(attr_max_)) >
        heap.KthScore()) {
      break;
    }
  }
  result.items = heap.SortedAscending();
  FinalizeComplete(result);
  return result;
}

TopKResult ViewIndex::QueryLpta(const TopKQuery& query) const {
  TopKResult result;
  if (points_.empty()) {
    FinalizeComplete(result);
    return result;
  }
  const PointView q(query.weights);
  const std::size_t d = points_.dim();
  const std::vector<std::size_t> selected =
      SelectViews(q, std::max<std::size_t>(1, options_.views_per_query));

  // Best-case query score of a tuple at or beyond view position `pos`
  // in every consulted view: an LP over the data box. Doubles as the
  // regular stop bound and the certification frontier at a budget trip.
  auto unseen_bound = [&](std::size_t pos) {
    LinearProgram lp(d);
    std::vector<double> row(d);
    for (std::size_t j = 0; j < d; ++j) {
      std::fill(row.begin(), row.end(), 0.0);
      row[j] = 1.0;
      lp.AddConstraint(row, LpRelation::kLessEq,
                       attr_max_[j]);  // x_j <= data max
    }
    for (const std::size_t view_id : selected) {
      const Point& vw = view_weights_[view_id];
      lp.AddConstraint(vw, LpRelation::kGreaterEq,
                       views_[view_id][pos].score);
    }
    std::vector<double> objective(q.begin(), q.end());
    lp.SetMinimize(objective);
    return lp.Solve();
  };

  BudgetGate gate(query.budget);
  TopKHeap heap(query.k);
  std::unordered_set<TupleId> seen;
  seen.reserve(64);
  const std::size_t n = points_.size();
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (const Termination stop = gate.Step(result.stats.tuples_evaluated);
        stop != Termination::kComplete) {
      // One LP solve bounds every tuple not yet seen through any
      // consulted view (infeasible means nothing is left out there).
      const LpResult bound = unseen_bound(pos);
      double frontier = -std::numeric_limits<double>::infinity();
      if (bound.status == LpStatus::kInfeasible) {
        frontier = std::numeric_limits<double>::infinity();
      } else if (bound.status == LpStatus::kOptimal) {
        frontier = bound.objective;
      }
      result.items = heap.SortedAscending();
      FinalizePartial(result, stop, HeapFrontier(heap, frontier));
      return result;
    }
    for (const std::size_t view_id : selected) {
      const ViewEntry& entry = views_[view_id][pos];
      if (seen.insert(entry.id).second) {
        const double score = Score(q, points_[entry.id]);
        ++result.stats.tuples_evaluated;
        result.accessed.push_back(entry.id);
        heap.Push(ScoredTuple{entry.id, score});
      }
    }
    // Unseen tuples satisfy f_{v_j}(x) >= frontier_j for every
    // consulted view; the exact best-case query score is an LP over
    // the unit box. Checked every few rounds (the LP dominates cost).
    if ((pos & 3) != 3 && pos + 1 != n) continue;
    if (heap.size() < heap.k()) continue;
    const LpResult bound = unseen_bound(pos);
    // STRICT stop: equal-score ties beyond the frontier must be seen.
    if (bound.status == LpStatus::kInfeasible ||
        (bound.status == LpStatus::kOptimal &&
         bound.objective > heap.KthScore())) {
      break;
    }
  }
  result.items = heap.SortedAscending();
  FinalizeComplete(result);
  return result;
}

}  // namespace drli
