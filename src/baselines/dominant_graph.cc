#include "baselines/dominant_graph.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/kernels_batch.h"
#include "common/stopwatch.h"
#include "core/zero_layer.h"
#include "skyline/skyline_layers.h"

namespace drli {

DominantGraphIndex DominantGraphIndex::Build(
    PointSet points, const DominantGraphOptions& options) {
  Stopwatch timer;
  DominantGraphIndex index;
  index.points_ = std::move(points);
  index.virtual_points_ = PointSet(index.points_.dim());
  index.name_ = options.name.empty()
                    ? (options.build_zero_layer ? "DG+" : "DG")
                    : options.name;

  const std::size_t n = index.points_.size();
  std::vector<std::vector<NodeId>> out(n);
  index.in_degree_.assign(n, 0);

  if (n > 0) {
    LayerDecomposition decomposition =
        BuildSkylineLayers(index.points_, options.skyline_algorithm);
    index.layers_ = std::move(decomposition.layers);
    index.stats_.num_layers = index.layers_.size();

    for (std::size_t i = 0; i + 1 < index.layers_.size(); ++i) {
      ForEachDominancePair(index.points_, index.layers_[i],
                           index.layers_[i + 1],
                           [&](TupleId source, TupleId target) {
                             out[source].push_back(target);
                             ++index.in_degree_[target];
                             ++index.stats_.num_edges;
                           });
    }

    if (options.build_zero_layer) {
      const ClusteredZeroLayer zero = BuildClusteredZeroLayer(
          index.points_, index.layers_[0], options.zero_layer_clusters,
          options.zero_layer_seed);
      if (!zero.pseudo.empty()) {
        index.virtual_points_ = zero.pseudo;
        const std::size_t v = index.virtual_points_.size();
        index.stats_.num_virtual = v;
        out.resize(n + v);
        index.in_degree_.resize(n + v, 0);
        for (TupleId target : index.layers_[0]) {
          const PointView tp = index.points_[target];
          for (std::size_t i = 0; i < v; ++i) {
            if (WeaklyDominates(index.virtual_points_[i], tp)) {
              out[n + i].push_back(target);
              ++index.in_degree_[target];
              ++index.stats_.num_edges;
            }
          }
          DRLI_CHECK(index.in_degree_[target] > 0);
        }
      }
    }
  }

  // CSR form of the out-edges (rows keep their build order) plus the
  // dimension-major score view -- both derived, neither persisted.
  const std::size_t total = index.num_nodes();
  index.out_offsets_.resize(total + 1);
  index.out_targets_.clear();
  index.out_targets_.reserve(index.stats_.num_edges);
  for (std::size_t node = 0; node < total; ++node) {
    index.out_offsets_[node] =
        static_cast<std::uint32_t>(index.out_targets_.size());
    index.out_targets_.insert(index.out_targets_.end(), out[node].begin(),
                              out[node].end());
  }
  index.out_offsets_[total] =
      static_cast<std::uint32_t>(index.out_targets_.size());
  index.soa_ = SoaPointSet::FromPointSets(index.points_, index.virtual_points_);

  for (std::size_t node = 0; node < total; ++node) {
    if (index.in_degree_[node] == 0) {
      index.initial_.push_back(static_cast<NodeId>(node));
    }
  }
  index.stats_.build_seconds = timer.ElapsedSeconds();
  return index;
}

TopKResult DominantGraphIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  if (const Status status = ValidateQuery(query, points_.dim());
      !status.ok()) {
    return InvalidQueryResult(status);
  }
  TopKResult result = QueryLinear(query);
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

TopKResult DominantGraphIndex::QueryLinear(const TopKQuery& query) const {
  const std::size_t total = num_nodes();

  TopKResult result;
  if (total == 0 || query.k == 0) {
    FinalizeComplete(result);
    return result;
  }
  BudgetGate gate(query.budget);
  const PointView w(query.weights);
  const ScoreBatchFn score_batch = ResolveScoreBatch();

  enum : std::uint8_t { kBlocked = 0, kQueued = 1, kPopped = 2 };
  std::vector<std::uint32_t> remaining = in_degree_;
  std::vector<std::uint8_t> state(total, kBlocked);
  const std::uint32_t* const off = out_offsets_.data();
  const NodeId* const tgt = out_targets_.data();

  struct Entry {
    double score;
    NodeId node;
  };
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.score != b.score) return a.score > b.score;
      return a.node > b.node;
    }
  };
  std::vector<Entry> heap;
  heap.reserve(initial_.size() + 64);

  // Same tie-cutoff discipline as QueryMonotone (see below).
  double tie_cutoff = std::numeric_limits<double>::infinity();

  // Nodes whose in-degree countdown hit zero during one pop's
  // expansion, scored in one batched kernel call over the
  // dimension-major view and enqueued in that same event order.
  // Deferring past the expansion changes nothing observable: the
  // cutoff only moves at pops and the heap order is a total order on
  // (score, node) independent of push order.
  std::vector<NodeId> freed;
  freed.reserve(256);
  std::vector<double> scores(256);
  const auto flush_freed = [&]() {
    const std::size_t count = freed.size();
    if (count == 0) return;
    if (scores.size() < count) scores.resize(count);
    score_batch(w, soa_, freed.data(), count, scores.data());
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId node = freed[i];
      const double score = scores[i];
      if (score > tie_cutoff) continue;
      if (is_virtual(node)) {
        ++result.stats.virtual_evaluated;
      } else {
        ++result.stats.tuples_evaluated;
        result.accessed.push_back(node);
      }
      state[node] = kQueued;
      heap.push_back(Entry{score, node});
      std::push_heap(heap.begin(), heap.end(), Greater{});
    }
    freed.clear();
  };

  for (const NodeId node : initial_) freed.push_back(node);
  flush_freed();

  Termination stop = Termination::kComplete;
  double frontier = -std::numeric_limits<double>::infinity();

  while (!heap.empty()) {
    if (result.items.size() >= query.k &&
        heap.front().score > tie_cutoff) {
      break;
    }
    if (stop = gate.Step(result.stats.tuples_evaluated);
        stop != Termination::kComplete) {
      frontier = std::min(heap.front().score, tie_cutoff);
      break;
    }
    std::pop_heap(heap.begin(), heap.end(), Greater{});
    const Entry top = heap.back();
    heap.pop_back();
    state[top.node] = kPopped;
    if (!is_virtual(top.node)) {
      result.items.push_back(ScoredTuple{top.node, top.score});
      if (result.items.size() == query.k) tie_cutoff = top.score;
    }
    // Unlike the dual-layer index, DG keeps nodes in id order, so the
    // countdown words of a row's targets scatter across the array;
    // prefetching a few edges ahead overlaps those misses.
    const std::uint32_t row_begin = off[top.node];
    const std::uint32_t row_end = off[top.node + 1];
    for (std::uint32_t i = row_begin; i < row_end; ++i) {
      if (i + 8 < row_end) __builtin_prefetch(&remaining[tgt[i + 8]], 1, 1);
      const NodeId succ = tgt[i];
      DRLI_DCHECK(remaining[succ] > 0);
      if (--remaining[succ] == 0) freed.push_back(succ);
    }
    flush_freed();
  }
  std::sort(result.items.begin(), result.items.end(), ResultOrderLess);
  if (result.items.size() > query.k) result.items.resize(query.k);
  if (stop == Termination::kComplete) {
    FinalizeComplete(result);
  } else {
    FinalizePartial(result, stop, frontier);
  }
  return result;
}

TopKResult DominantGraphIndex::QueryMonotone(const MonotoneScorer& scorer,
                                             std::size_t k,
                                             const ExecBudget& budget) const {
  const std::size_t total = num_nodes();

  TopKResult result;
  if (total == 0 || k == 0) {
    FinalizeComplete(result);
    return result;
  }
  BudgetGate gate(budget);

  enum : std::uint8_t { kBlocked = 0, kQueued = 1, kPopped = 2 };
  std::vector<std::uint32_t> remaining = in_degree_;
  std::vector<std::uint8_t> state(total, kBlocked);

  struct Entry {
    double score;
    NodeId node;
  };
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.score != b.score) return a.score > b.score;
      return a.node > b.node;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Greater> queue;

  // Once the k-th answer is known, only exact ties at its score can
  // still enter the (score, id)-ordered result; probes above it are
  // discarded without being charged to the cost metric (the original
  // stop-at-k traversal would never have materialized them).
  double tie_cutoff = std::numeric_limits<double>::infinity();

  auto try_enqueue = [&](NodeId node) {
    if (state[node] != kBlocked || remaining[node] != 0) return;
    const double score = scorer(node_point(node));
    if (score > tie_cutoff) return;
    if (is_virtual(node)) {
      ++result.stats.virtual_evaluated;
    } else {
      ++result.stats.tuples_evaluated;
      result.accessed.push_back(node);
    }
    state[node] = kQueued;
    queue.push(Entry{score, node});
  };

  for (NodeId node : initial_) try_enqueue(node);

  Termination stop = Termination::kComplete;
  double frontier = -std::numeric_limits<double>::infinity();

  while (!queue.empty()) {
    // Pops are non-decreasing: every blocked node has an in-queue
    // ancestor scoring no higher than itself, so once the queue minimum
    // is strictly worse than the k-th answer no tie can be hidden
    // behind a blocked node.
    if (result.items.size() >= k && queue.top().score > tie_cutoff) break;
    // Budget check at the pop boundary: every unreturned tuple is in
    // the queue, behind an in-queue ancestor, or tie-filtered above
    // tie_cutoff, so min(queue minimum, tie_cutoff) bounds them all.
    if (stop = gate.Step(result.stats.tuples_evaluated);
        stop != Termination::kComplete) {
      frontier = std::min(queue.top().score, tie_cutoff);
      break;
    }
    const Entry top = queue.top();
    queue.pop();
    state[top.node] = kPopped;
    if (!is_virtual(top.node)) {
      result.items.push_back(ScoredTuple{top.node, top.score});
      if (result.items.size() == k) tie_cutoff = top.score;
    }
    for (std::uint32_t i = out_offsets_[top.node];
         i < out_offsets_[top.node + 1]; ++i) {
      const NodeId succ = out_targets_[i];
      DRLI_DCHECK(remaining[succ] > 0);
      if (--remaining[succ] == 0) try_enqueue(succ);
    }
  }
  // Ties freed late pop out of id order; restore the canonical order.
  std::sort(result.items.begin(), result.items.end(), ResultOrderLess);
  if (result.items.size() > k) result.items.resize(k);
  if (stop == Termination::kComplete) {
    FinalizeComplete(result);
  } else {
    FinalizePartial(result, stop, frontier);
  }
  return result;
}

}  // namespace drli
