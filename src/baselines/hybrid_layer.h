// The Hybrid-Layer index HL/HL+ (Heo, Cho & Whang, ICDE'10): convex
// layers whose tuples are stored as d sorted attribute lists, queried
// with the Threshold Algorithm inside each layer.
//
//  * HL  -- scans min(k, #layers) layers; inside a layer, TA stops at
//           threshold >= current global k-th best.
//  * HL+ -- additionally maintains a tight cross-layer bound: a layer
//           whose attribute-minima lower bound cannot beat the current
//           k-th best ends the scan entirely (layer minima increase
//           monotonically over convex layers).

#ifndef DRLI_BASELINES_HYBRID_LAYER_H_
#define DRLI_BASELINES_HYBRID_LAYER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/point.h"
#include "common/soa_points.h"
#include "skyline/skyline.h"
#include "topk/query.h"
#include "topk/sorted_lists.h"

namespace drli {

struct HybridLayerOptions {
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kSkyTree;
  // Cap on peeled layers, as in OnionOptions.
  std::size_t max_layers = static_cast<std::size_t>(-1);
  bool tight_threshold = true;  // HL+ when true
  std::string name;             // empty = "HL" / "HL+"
};

struct HybridLayerBuildStats {
  std::size_t num_layers = 0;
  bool truncated = false;
  double build_seconds = 0.0;
};

class HybridLayerIndex final : public TopKIndex {
 public:
  static HybridLayerIndex Build(PointSet points,
                                const HybridLayerOptions& options = {});

  HybridLayerIndex(HybridLayerIndex&&) = default;
  HybridLayerIndex& operator=(HybridLayerIndex&&) = default;

  std::string name() const override { return name_; }
  std::size_t size() const override { return points_.size(); }
  std::size_t dim() const override { return points_.dim(); }
  TopKResult Query(const TopKQuery& query) const override;

  const PointSet& points() const { return points_; }
  const std::vector<std::vector<TupleId>>& layers() const { return layers_; }
  const HybridLayerBuildStats& build_stats() const { return stats_; }

 private:
  HybridLayerIndex() : points_(1) {}

  std::string name_;
  bool tight_threshold_ = true;
  HybridLayerBuildStats stats_;
  PointSet points_;
  // Dimension-major view of points_ for batched random-access
  // completion; derived at construction, never persisted.
  SoaPointSet soa_;
  std::vector<std::vector<TupleId>> layers_;
  std::vector<SortedLists> lists_;  // one per layer
};

}  // namespace drli

#endif  // DRLI_BASELINES_HYBRID_LAYER_H_
