// The Dominant Graph index DG (Zou & Chen, ICDE'08) and its zero-layer
// variant DG+ -- the strongest layer-based competitor in the paper's
// evaluation (Section VI).
//
// Structure: skyline layers with ∀-dominance edges between adjacent
// layers. A tuple is accessed once every dominator in the previous
// layer has entered the running top-(k-1) answer set; the first layer
// receives complete access (DG) or is guarded by k-means pseudo-tuples
// (DG+, following Section V-B of [5] without the fine split).

#ifndef DRLI_BASELINES_DOMINANT_GRAPH_H_
#define DRLI_BASELINES_DOMINANT_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/point.h"
#include "common/soa_points.h"
#include "skyline/skyline.h"
#include "topk/query.h"

namespace drli {

struct DominantGraphOptions {
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kSkyTree;
  bool build_zero_layer = false;  // DG+ when true
  std::size_t zero_layer_clusters = 0;  // 0 = ceil(sqrt(|L1|))
  std::uint64_t zero_layer_seed = 7;
  std::string name;  // empty = "DG" / "DG+"
};

struct DominantGraphBuildStats {
  std::size_t num_layers = 0;
  std::size_t num_edges = 0;
  std::size_t num_virtual = 0;
  double build_seconds = 0.0;
};

class DominantGraphIndex final : public TopKIndex {
 public:
  using NodeId = std::uint32_t;

  static DominantGraphIndex Build(PointSet points,
                                  const DominantGraphOptions& options = {});

  DominantGraphIndex(DominantGraphIndex&&) = default;
  DominantGraphIndex& operator=(DominantGraphIndex&&) = default;

  std::string name() const override { return name_; }
  std::size_t size() const override { return points_.size(); }
  std::size_t dim() const override { return points_.dim(); }
  TopKResult Query(const TopKQuery& query) const override;

  // Extension beyond the paper's linear model: skyline layers and
  // ∀-dominance only need monotonicity, so DG answers top-k for ANY
  // monotone scoring function (if t_i <= t'_i for all i then
  // scorer(t) <= scorer(t')), e.g. weighted L_p norms. The zero layer
  // remains sound because pseudo-tuples weakly dominate their cluster
  // members. (The dual-resolution index cannot offer this: ∃-dominance
  // is a convexity argument and requires linear scoring.)
  using MonotoneScorer = std::function<double(PointView)>;
  TopKResult QueryMonotone(const MonotoneScorer& scorer, std::size_t k,
                           const ExecBudget& budget = {}) const;

  const PointSet& points() const { return points_; }
  const PointSet& virtual_points() const { return virtual_points_; }
  const DominantGraphBuildStats& build_stats() const { return stats_; }
  const std::vector<std::vector<TupleId>>& layers() const { return layers_; }

 private:
  DominantGraphIndex() : points_(1), virtual_points_(1) {}

  bool is_virtual(NodeId node) const { return node >= points_.size(); }
  PointView node_point(NodeId node) const {
    return is_virtual(node) ? virtual_points_[node - points_.size()]
                            : points_[node];
  }
  std::size_t num_nodes() const {
    return points_.size() + virtual_points_.size();
  }

  // The linear-scorer fast path for Query(): batched scoring over the
  // dimension-major view with deferred enqueues, semantically identical
  // to QueryMonotone with a linear scorer.
  TopKResult QueryLinear(const TopKQuery& query) const;

  std::string name_;
  DominantGraphBuildStats stats_;
  PointSet points_;
  PointSet virtual_points_;
  // Dimension-major view over points_ then virtual_points_ (node-id
  // order); derived at build time, never persisted.
  SoaPointSet soa_;
  std::vector<std::vector<TupleId>> layers_;
  // ∀-dominance out-edges in CSR form: the targets of node v are
  // out_targets_[out_offsets_[v] .. out_offsets_[v+1]).
  std::vector<std::uint32_t> out_offsets_;
  std::vector<NodeId> out_targets_;
  std::vector<std::uint32_t> in_degree_;
  std::vector<NodeId> initial_;
};

}  // namespace drli

#endif  // DRLI_BASELINES_DOMINANT_GRAPH_H_
