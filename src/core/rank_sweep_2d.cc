#include "core/rank_sweep_2d.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace drli {

namespace {

constexpr double kWeightTol = 1e-13;

struct SwapEvent {
  double w;            // crossing weight
  TupleId upper;       // currently ranked just above (better)
  TupleId lower;       // currently ranked just below
};

struct EventLater {
  bool operator()(const SwapEvent& a, const SwapEvent& b) const {
    if (a.w != b.w) return a.w > b.w;
    if (a.upper != b.upper) return a.upper > b.upper;
    return a.lower > b.lower;
  }
};

}  // namespace

const std::vector<TupleId>& RankSweepResult::SetAt(double w1) const {
  DRLI_CHECK(!topk_sets.empty());
  const auto it =
      std::upper_bound(breakpoints.begin(), breakpoints.end(), w1);
  return topk_sets[static_cast<std::size_t>(it - breakpoints.begin())];
}

RankSweepResult SweepTopKSets2D(const PointSet& points, std::size_t k) {
  DRLI_CHECK_EQ(points.dim(), 2u);
  DRLI_CHECK_GE(k, 1u);
  const std::size_t n = points.size();
  RankSweepResult result;
  if (n == 0) {
    result.topk_sets.push_back({});
    return result;
  }
  k = std::min(k, n);

  // Score line of tuple t: f_t(w) = intercept_t + w * slope_t.
  auto intercept = [&](TupleId t) { return points.At(t, 1); };
  auto slope = [&](TupleId t) {
    return points.At(t, 0) - points.At(t, 1);
  };
  // Initial order just right of w = 0: by intercept, slope-tiebreak.
  std::vector<TupleId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](TupleId a, TupleId b) {
    if (intercept(a) != intercept(b)) return intercept(a) < intercept(b);
    if (slope(a) != slope(b)) return slope(a) < slope(b);
    return a < b;
  });
  std::vector<std::size_t> position(n);
  for (std::size_t i = 0; i < n; ++i) position[order[i]] = i;

  // Crossing weight of an adjacent pair, or a sentinel > 1 when the
  // pair never swaps at or after `after` inside (0, 1). `after` is
  // passed slightly below the sweep position so that cascades of
  // crossings at one weight (concurrent lines) are not lost.
  auto crossing = [&](TupleId upper, TupleId lower, double after) {
    // Equal first attributes tie the scores exactly at w = 1 and
    // nowhere else: there is no interior crossing. This test must be
    // exact -- the generic formula below rounds such crossings to
    // 1 - ulp, which would fabricate an interior breakpoint whose
    // sliver segment carries a fully inverted (and wrong) order.
    if (points.At(upper, 0) == points.At(lower, 0)) return 2.0;
    const double slope_diff = slope(upper) - slope(lower);
    if (slope_diff <= 0.0) return 2.0;  // upper stays at or below
    const double w = (intercept(lower) - intercept(upper)) / slope_diff;
    if (w < after || w >= 1.0) return 2.0;
    return w;
  };

  std::priority_queue<SwapEvent, std::vector<SwapEvent>, EventLater> events;
  auto schedule = [&](std::size_t pos, double after) {
    if (pos + 1 >= n) return;
    const TupleId upper = order[pos];
    const TupleId lower = order[pos + 1];
    const double w = crossing(upper, lower, after);
    if (w <= 1.0) events.push(SwapEvent{w, upper, lower});
  };
  for (std::size_t pos = 0; pos + 1 < n; ++pos) schedule(pos, kWeightTol);

  auto snapshot = [&]() {
    std::vector<TupleId> set(order.begin(), order.begin() + k);
    std::sort(set.begin(), set.end());
    return set;
  };
  result.topk_sets.push_back(snapshot());

  double current_w = 0.0;
  while (!events.empty()) {
    const SwapEvent event = events.top();
    events.pop();
    // Stale events: the pair is no longer adjacent in this order. A
    // pair crosses at most once, so adjacency in the original
    // orientation plus a positive slope difference means the swap is
    // genuine.
    const std::size_t pos = position[event.upper];
    if (pos + 1 >= n || order[pos + 1] != event.lower) continue;
    if (crossing(event.upper, event.lower, current_w - kWeightTol) > 1.0) {
      continue;
    }

    current_w = std::max(current_w, event.w);
    std::swap(order[pos], order[pos + 1]);
    position[event.upper] = pos + 1;
    position[event.lower] = pos;

    // New adjacencies around the swapped pair; allow crossings at the
    // current weight so same-weight cascades are scheduled.
    if (pos > 0) schedule(pos - 1, current_w - kWeightTol);
    schedule(pos, current_w - kWeightTol);
    schedule(pos + 1, current_w - kWeightTol);

    // Only a swap across the k-boundary changes the top-k set.
    if (pos + 1 == k) {
      if (!result.breakpoints.empty() &&
          event.w <= result.breakpoints.back() + kWeightTol) {
        // Cascade at (numerically) the same weight: update in place.
        result.topk_sets.back() = snapshot();
      } else {
        result.breakpoints.push_back(event.w);
        result.topk_sets.push_back(snapshot());
      }
    }
  }

  // Drop no-op intervals (a tuple can leave and re-enter within one
  // cascade).
  std::vector<double> bps;
  std::vector<std::vector<TupleId>> sets;
  sets.push_back(std::move(result.topk_sets.front()));
  for (std::size_t i = 0; i < result.breakpoints.size(); ++i) {
    if (result.topk_sets[i + 1] == sets.back()) continue;
    bps.push_back(result.breakpoints[i]);
    sets.push_back(std::move(result.topk_sets[i + 1]));
  }
  result.breakpoints = std::move(bps);
  result.topk_sets = std::move(sets);

  return result;
}

std::vector<std::pair<double, double>> ReverseTopKIntervals2D(
    const RankSweepResult& sweep, TupleId target) {
  std::vector<std::pair<double, double>> intervals;
  const std::size_t m = sweep.topk_sets.size();
  for (std::size_t i = 0; i < m; ++i) {
    const auto& set = sweep.topk_sets[i];
    if (!std::binary_search(set.begin(), set.end(), target)) continue;
    const double lo = i == 0 ? 0.0 : sweep.breakpoints[i - 1];
    const double hi = i + 1 == m ? 1.0 : sweep.breakpoints[i];
    if (!intervals.empty() && intervals.back().second >= lo) {
      intervals.back().second = hi;  // merge adjacent intervals
    } else {
      intervals.emplace_back(lo, hi);
    }
  }
  return intervals;
}

}  // namespace drli
