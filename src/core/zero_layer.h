// The virtual zero layer L0 of Section V, in both forms:
//
//  * d == 2 (Section V-A): an exact weight-range partition over the
//    first fine sublayer L^{11}. Each chain tuple is optimal for one
//    interval of w1 bounded by the slopes of its adjacent facets
//    (w1 = lambda/(lambda-1)); a binary search identifies the unique
//    top-1 candidate, so only one tuple of L^{11} is accessed.
//
//  * d >= 3 (Section V-B): first-layer tuples are clustered (k-means)
//    and each cluster is represented by a pseudo-tuple at its
//    attribute-wise minimum corner, which weakly dominates every
//    member. DL+ additionally splits the pseudo-tuples into fine
//    sublayers with ∃-dominance edges; DG+ uses them flat.

#ifndef DRLI_CORE_ZERO_LAYER_H_
#define DRLI_CORE_ZERO_LAYER_H_

#include <cstdint>
#include <vector>

#include "common/point.h"

namespace drli {

// Section V-A structure. Valid for d == 2 only.
class WeightRangeTable {
 public:
  WeightRangeTable() = default;

  // `chain` = the L^{11} tuples in increasing-x (decreasing-y) order;
  // must be a strictly convex lower-left chain.
  static WeightRangeTable Build(const PointSet& points,
                                std::vector<TupleId> chain);

  // True iff `chain` satisfies Build's preconditions on `points`: dim
  // 2, every id in range, strictly descending left to right, and
  // strictly convex (decreasing breakpoints). The snapshot loader runs
  // this on untrusted chains so a corrupt file is rejected with a
  // Status instead of tripping the CHECKs inside Build.
  static bool ValidateChain(const PointSet& points,
                            const std::vector<TupleId>& chain);

  bool empty() const { return chain_.empty(); }
  std::size_t size() const { return chain_.size(); }
  const std::vector<TupleId>& chain() const { return chain_; }
  const std::vector<double>& breakpoints() const { return breakpoints_; }

  // Chain position of the top-1 candidate for weights (w1, 1 - w1).
  // O(log |L^{11}|).
  std::size_t Lookup(double w1) const;

 private:
  std::vector<TupleId> chain_;       // x-ascending
  std::vector<double> breakpoints_;  // strictly decreasing, size-1 entries
};

// Section V-B structure: pseudo-tuples for the clusters of `layer1`.
struct ClusteredZeroLayer {
  // One pseudo-tuple (min corner) per non-empty cluster.
  PointSet pseudo;
  // cluster_of[i] = cluster of layer1[i].
  std::vector<std::size_t> cluster_of;

  explicit ClusteredZeroLayer(std::size_t dim) : pseudo(dim) {}
};

// Clusters the tuples `layer1` of `points`. `num_clusters` 0 means the
// default ceil(sqrt(|layer1|)).
ClusteredZeroLayer BuildClusteredZeroLayer(const PointSet& points,
                                           const std::vector<TupleId>& layer1,
                                           std::size_t num_clusters,
                                           std::uint64_t seed);

}  // namespace drli

#endif  // DRLI_CORE_ZERO_LAYER_H_
