// The dual-resolution layer index (Sections III-V): the paper's
// contribution.
//
// Structure
//   * Coarse layers: iterated skylines; adjacent layers are connected
//     by ∀-dominance edges (classic dominance, Lemma 1).
//   * Fine sublayers: iterated convex skylines inside each coarse
//     layer; adjacent sublayers are connected by ∃-dominance edges
//     derived from hull facets (Lemma 2): each tuple of sublayer j+1
//     receives the members of one facet of sublayer j whose simplex
//     intersects its dominance box.
//   * Optional zero layer L0 (Section V): an exact weight-range table
//     in 2-d, clustered pseudo-tuples (with their own dual-resolution
//     split) in higher dimensions.
//
// Query processing (Algorithm 2) is best-first graph traversal: a tuple
// is scored only once it is ∀-dominance-free (all coarse in-neighbours
// popped) and ∃-dominance-free (some fine in-neighbour popped). The
// number of scored relation tuples is the paper's cost metric
// (Definition 9) and is reported in TopKResult::stats.
//
// Performance architecture (see DESIGN.md): both edge sets are stored
// as CSR (CsrGraph), per-query node state lives in a reusable
// epoch-stamped QueryScratch, and the build parallelizes the fine peel
// across coarse layers and the ∀-edge wiring across adjacent layer
// pairs with a deterministic merge, so the parallel build is
// bit-identical to the serial one.

#ifndef DRLI_CORE_DUAL_LAYER_H_
#define DRLI_CORE_DUAL_LAYER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/csr.h"
#include "common/point.h"
#include "common/soa_points.h"
#include "core/eds.h"
#include "core/zero_layer.h"
#include "geometry/convex_skyline.h"
#include "skyline/skyline.h"
#include "topk/query.h"

namespace drli {

// How many qualifying EDS facets feed edges into each tuple.
// kSingleFacet is the minimal (and cheapest-to-query) choice: one facet
// guarantees Lemma 2, and extra in-edges can only unlock tuples earlier.
// kAllFacets exists for the ablation benchmark.
enum class EdsPolicy {
  kSingleFacet,
  kAllFacets,
};

struct DualLayerOptions {
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kSkyTree;
  ConvexSkylineOptions csky;
  EdsPolicy eds_policy = EdsPolicy::kSingleFacet;

  // Ablation switch: with fine layers disabled each coarse layer is one
  // sublayer with no ∃-edges, reducing the index to a Dominant Graph.
  bool enable_fine_layers = true;

  // DL+ when true (Section V).
  bool build_zero_layer = false;
  // 0 = ceil(sqrt(|L1|)). Ignored for the 2-d weight-range table.
  std::size_t zero_layer_clusters = 0;
  // DL+ splits L0 into fine sublayers; DG+-style flat layer when false.
  bool zero_layer_fine_split = true;
  std::uint64_t zero_layer_seed = 7;

  // Build-side worker threads: 0 = DRLI_THREADS env / hardware
  // concurrency, 1 = serial. Any value yields the identical index.
  std::size_t build_threads = 0;

  // Display name; empty = "DL" / "DL+".
  std::string name;
};

struct DualLayerBuildStats {
  std::size_t num_coarse_layers = 0;
  std::size_t num_fine_layers = 0;
  std::size_t num_coarse_edges = 0;
  std::size_t num_fine_edges = 0;
  // Tuples in sublayer j+1 for which no facet of sublayer j passed the
  // EDS test; they are left ∃-dominance-free (correct, less pruning).
  std::size_t eds_uncovered = 0;
  // Fine peels that used the conservative all-remaining fallback.
  std::size_t csky_fallbacks = 0;
  std::size_t num_virtual = 0;
  double build_seconds = 0.0;

  // --- per-phase wall clock. In a serial build (build_threads = 1) the
  // five phase timers sum to ≈ build_seconds; with worker threads each
  // phase is still wall clock of that phase.
  double skyline_seconds = 0.0;      // coarse layer peeling
  double fine_peel_seconds = 0.0;    // fine sublayers + ∃-edge detection
  double coarse_edge_seconds = 0.0;  // ∀-edge wiring
  double zero_layer_seconds = 0.0;   // L0 (weight table / pseudo-tuples)
  double finalize_seconds = 0.0;     // CSR flatten + initial-node scan

  // --- EDS detection (Section III-B) instrumentation. Facet/target
  // pairs are resolved by, in order: a facet member weakly dominating
  // the target (member_hits), the facet's componentwise-min corner
  // failing to dominate it (bbox_rejects), or the simplex LP
  // (lp_calls). eds_seconds is CPU time summed across fine-peel tasks,
  // so it can exceed fine_peel_seconds when build_threads > 1.
  double eds_seconds = 0.0;
  std::size_t eds_member_hits = 0;
  std::size_t eds_bbox_rejects = 0;
  std::size_t eds_lp_calls = 0;

  // --- coarse ∀-edge detection instrumentation: candidate pairs
  // skipped by the sort/bound pruning vs. pairs actually compared.
  std::size_t coarse_pairs_pruned = 0;
  std::size_t coarse_pairs_tested = 0;
};

// One (coarse layer, fine sublayer) group of real tuples with its
// attribute bounding box, in layer order (same partition as
// LayerGroups). The constrained scenario traversal treats each
// sublayer as a pruning unit: skip the whole group when its box misses
// the constraint box, otherwise open it in ascending order of the
// componentwise-min corner's score (a lower bound on every member's
// score under non-negative weights).
struct SublayerSummary {
  std::uint32_t coarse = 0;
  std::uint32_t fine = 0;
  std::vector<TupleId> members;  // LayerGroups order
  Point bbox_lo;                 // componentwise min over members
  Point bbox_hi;                 // componentwise max over members
};

// Derived, traversal-ordered layout the query path runs on. Built by
// FinalizeInitialNodes (once per Build and once per snapshot load --
// never persisted; a snapshot stores only the node-space index).
//
// Nodes are renumbered into *slots* ordered by (pseudo-tuples first,
// coarse layer, fine sublayer, node id). Best-first traversal touches
// low layers almost exclusively, so in slot order a query's working
// set -- node states, CSR rows, point data -- collapses into a small
// contiguous prefix of each array and stays cache-resident. Edge rows
// are remapped to slot targets but keep their original edge order, so
// the traversal performs the identical access sequence as in node
// space. Points are held dimension-major (SoaPointSet) for the batched
// kernels in common/kernels_batch.h.
struct QueryLayout {
  // Packed per-slot traversal state, one uint32 (see QueryScratch):
  //   bits  0-23  remaining coarse in-degree countdown
  //   bits 24-25  lifecycle (0 blocked, 1 queued, 2 popped)
  //   bit  26     ∃-dominance-free
  //   bit  27     weight-table chain lock
  // A slot is enqueueable exactly when its word equals kFreeable:
  // blocked, countdown exhausted, fine-free, not chain-locked -- one
  // compare replaces the original four-array test.
  static constexpr std::uint32_t kRemainingMask = (1u << 24) - 1;
  static constexpr std::uint32_t kQueuedBit = 1u << 24;
  static constexpr std::uint32_t kPoppedBit = 2u << 24;
  static constexpr std::uint32_t kStateMask = 3u << 24;
  static constexpr std::uint32_t kFineFreeBit = 1u << 26;
  static constexpr std::uint32_t kChainLockedBit = 1u << 27;
  static constexpr std::uint32_t kFreeable = kFineFreeBit;

  // Distinguishes layouts across indexes (and rebuilds), so a
  // QueryScratch can tell when its cached per-slot init words belong to
  // a different index and must be re-seeded.
  std::uint64_t generation = 0;

  std::vector<std::uint32_t> node_of;  // slot -> node id
  std::vector<std::uint32_t> slot_of;  // node id -> slot
  // Coarse (∀) and fine (∃) out-edges in slot space, CSR.
  std::vector<std::uint32_t> coarse_offsets;
  std::vector<std::uint32_t> coarse_targets;
  std::vector<std::uint32_t> fine_offsets;
  std::vector<std::uint32_t> fine_targets;
  // Per-slot initial state word: in-degree | (fine-free if no ∃-edge).
  std::vector<std::uint32_t> init_packed;
  std::vector<std::uint32_t> initial_slots;
  // Slot-ordered points, dimension-major.
  SoaPointSet points;
  // Slots in [0, first_real_slot) are pseudo-tuples.
  std::uint32_t first_real_slot = 0;
};

// Reusable per-query workspace for DualLayerIndex::Query. Holds the
// traversal's per-node state (one packed word per slot, see
// QueryLayout) plus the priority-queue backing store. Resetting between
// queries is O(nodes touched) amortized: states are epoch-stamped, and
// a node's state is lazily re-initialized the first time a query
// touches it. One scratch serves any number of sequential queries
// against indexes of any size; use one scratch per thread.
class QueryScratch {
 public:
  QueryScratch() = default;

  struct HeapEntry {
    double score;
    std::uint32_t node;  // original node id -- the tie-break key
    std::uint32_t slot;  // layout slot -- the memory key
  };
  // Per-slot traversal state. The layout's init word rides in the same
  // record so a first touch costs one cache line, not a second random
  // load from a separate init array; stamp == the scratch epoch iff
  // packed is valid for this query.
  struct NodeState {
    std::uint32_t init;
    std::uint32_t stamp;
    std::uint32_t packed;
  };

 private:
  friend class DualLayerIndex;

  // Binds the scratch to `layout` (seeding the per-slot init words if
  // the scratch last served a different index) and opens a fresh epoch.
  void Prepare(const QueryLayout& layout);

  std::uint64_t generation_ = 0;
  std::uint32_t epoch_ = 0;
  std::vector<NodeState> nodes_;
  // Min-heap storage (std::push_heap/pop_heap); capacity persists.
  std::vector<HeapEntry> heap_;
  // Slots freed during one pop's expansion, scored in one batched
  // kernel call before being enqueued.
  std::vector<std::uint32_t> freed_;
  std::vector<double> freed_scores_;
  // Max-heap over the k smallest real candidate scores seen so far;
  // its top bounds the final k-th answer and prunes doomed heap pushes.
  std::vector<double> bound_heap_;
};

class DualLayerIndex final : public TopKIndex {
 public:
  // Node ids: [0, n) real tuples, [n, n + num_virtual) pseudo-tuples.
  using NodeId = std::uint32_t;
  static constexpr std::uint32_t kNoFineLayer =
      std::numeric_limits<std::uint32_t>::max();

  static DualLayerIndex Build(PointSet points,
                              const DualLayerOptions& options = {});

  DualLayerIndex(DualLayerIndex&&) = default;
  DualLayerIndex& operator=(DualLayerIndex&&) = default;

  std::string name() const override { return name_; }
  std::size_t size() const override { return points_.size(); }
  std::size_t dim() const override { return points_.dim(); }
  // Convenience wrapper over the scratch overload (thread-local
  // scratch, so repeated calls on one thread already reuse state).
  TopKResult Query(const TopKQuery& query) const override;
  // Explicit-scratch variant for callers that manage per-thread
  // workspaces themselves (batch engines, benchmarks).
  TopKResult Query(const TopKQuery& query, QueryScratch* scratch) const;
  // Parallel batch: answers queries[i] -> results[i] using
  // ParallelThreadCount() workers, one QueryScratch per worker.
  std::vector<TopKResult> QueryBatch(
      const std::vector<TopKQuery>& queries) const override;
  // Keep the base admission-control overload visible alongside the
  // override above.
  using TopKIndex::QueryBatch;

  // --- introspection (tests, serialization, examples) ---
  const PointSet& points() const { return points_; }
  const PointSet& virtual_points() const { return virtual_points_; }
  const DualLayerOptions& options() const { return options_; }
  const DualLayerBuildStats& build_stats() const { return stats_; }

  std::size_t num_nodes() const {
    return points_.size() + virtual_points_.size();
  }
  bool is_virtual(NodeId node) const { return node >= points_.size(); }
  PointView node_point(NodeId node) const {
    return is_virtual(node) ? virtual_points_[node - points_.size()]
                            : points_[node];
  }

  // 0-based coarse / fine layer of a node. Virtual nodes report coarse
  // layer 0 of the virtual space.
  std::uint32_t coarse_layer_of(NodeId node) const {
    return coarse_of_[node];
  }
  std::uint32_t fine_layer_of(NodeId node) const { return fine_of_[node]; }

  const CsrGraph& coarse_out() const { return coarse_out_; }
  const CsrGraph& fine_out() const { return fine_out_; }
  const std::vector<std::uint32_t>& coarse_in_degree() const {
    return coarse_in_degree_;
  }
  const std::vector<std::uint8_t>& has_fine_in() const {
    return has_fine_in_;
  }
  const std::vector<NodeId>& initial_nodes() const { return initial_; }
  // Real tuples grouped by coarse layer, in layer order (the iterated
  // skylines). Exposed for the invariant checker and serialization;
  // a deserialized index restores this from the snapshot, where the
  // loader range-validates every member id against coarse_layer_of.
  const std::vector<std::vector<TupleId>>& coarse_layers() const {
    return coarse_layers_;
  }
  // Real tuples grouped by (coarse layer, fine sublayer), in layer
  // order -- the disk clustering unit for storage/page_layout.
  std::vector<std::vector<TupleId>> LayerGroups() const;
  // Per-sublayer summaries in layer order: the LayerGroups partition
  // plus each group's attribute bounding box. bbox_lo is the
  // componentwise-min corner, so Score(weights, bbox_lo) lower-bounds
  // every member's score for any non-negative weights -- the bound the
  // constrained scenario's group heap orders by (scenarios/
  // constrained.h), and bbox overlap against a constraint box is the
  // prune test. Derived by FinalizeInitialNodes after every build and
  // snapshot load; never persisted.
  const std::vector<SublayerSummary>& sublayer_catalog() const {
    return sublayer_catalog_;
  }
  bool uses_weight_table() const { return use_weight_table_; }
  const WeightRangeTable& weight_table() const { return weight_table_; }
  // The derived slot-space layout queries run on (tests, benchmarks).
  const QueryLayout& query_layout() const { return layout_; }

 private:
  friend class DualLayerSerializer;

  // Build-time adjacency accumulator, flattened to CSR once complete.
  using AdjacencyBuilder = std::vector<std::vector<NodeId>>;

  // One node subset's fine decomposition, computed independently
  // (possibly on a worker thread) and merged serially in layer order --
  // this keeps the parallel build bit-identical to the serial one.
  struct FinePeelResult {
    // (node, 0-based fine sublayer), in assignment order.
    std::vector<std::pair<NodeId, std::uint32_t>> fine_of;
    // ∃-edges in creation order.
    std::vector<std::pair<NodeId, NodeId>> edges;
    std::size_t num_fine_layers = 0;
    std::size_t eds_uncovered = 0;
    std::size_t csky_fallbacks = 0;
    EdsCounters eds;
    double eds_seconds = 0.0;
  };

  DualLayerIndex() : points_(1), virtual_points_(1) {}

  void BuildCoarseLayers();
  void BuildFineLayers(AdjacencyBuilder* fine_adj);
  void BuildCoarseEdges(AdjacencyBuilder* coarse_adj);
  void BuildZeroLayer(AdjacencyBuilder* coarse_adj,
                      AdjacencyBuilder* fine_adj);
  void FinalizeInitialNodes();

  // Splits one node subset (real coarse layer or the virtual layer)
  // into fine sublayers with ∃-edges. `node_ids` are node-space ids;
  // `pool` is the PointSet they live in with `pool_ids` the matching
  // in-pool indices. Pure w.r.t. the index (thread-safe); the caller
  // merges the result via ApplyFinePeel.
  FinePeelResult PeelFineLayers(const std::vector<NodeId>& node_ids,
                                const PointSet& pool,
                                const std::vector<TupleId>& pool_ids) const;
  void ApplyFinePeel(const FinePeelResult& peel, AdjacencyBuilder* fine_adj);

  std::string name_;
  DualLayerOptions options_;
  DualLayerBuildStats stats_;

  PointSet points_;
  PointSet virtual_points_;

  std::vector<std::uint32_t> coarse_of_;
  std::vector<std::uint32_t> fine_of_;
  CsrGraph coarse_out_;
  std::vector<std::uint32_t> coarse_in_degree_;
  CsrGraph fine_out_;
  std::vector<std::uint8_t> has_fine_in_;
  std::vector<NodeId> initial_;
  std::vector<std::vector<TupleId>> coarse_layers_;
  // Derived from the members above by FinalizeInitialNodes; never
  // serialized (rebuilt after every build and snapshot load).
  QueryLayout layout_;
  std::vector<SublayerSummary> sublayer_catalog_;

  // 2-d zero layer (Section V-A).
  bool use_weight_table_ = false;
  WeightRangeTable weight_table_;
  // Position of a node in the weight-table chain, kNoFineLayer if none.
  std::vector<std::uint32_t> chain_pos_;
};

// Observability: how a query's accesses distribute over the
// dual-resolution structure. One row per (coarse, fine) sublayer that
// holds at least one tuple, in layer order.
struct LayerAccessRow {
  std::uint32_t coarse = 0;
  std::uint32_t fine = 0;
  std::size_t layer_size = 0;  // tuples in the sublayer
  std::size_t accessed = 0;    // of which this query evaluated
};

// Breaks down `result.accessed` (from index.Query) by sublayer.
std::vector<LayerAccessRow> ExplainAccess(const DualLayerIndex& index,
                                          const TopKResult& result);

}  // namespace drli

#endif  // DRLI_CORE_DUAL_LAYER_H_
