// Binary save/load of a built DualLayerIndex, so the pre-materialized
// structure can be constructed once and reused across sessions -- the
// operating model of a layer-based index (built offline, queried for
// many weight vectors).
//
// Two on-disk formats:
//  * v2 (default, core/snapshot_format.h): fixed header + section
//    table, one 64-byte-aligned section per array, each carrying a
//    CRC-32C. Written atomically (temp file + rename). Loads either
//    zero-copy -- PointSet/CsrGraph views pointed straight into a
//    shared mmap of the file, no copy of the point or adjacency
//    payloads -- or into owned storage (the fallback, and the only
//    mode for v1 files).
//  * v1 (legacy stream format): still readable, and still writable via
//    SnapshotSaveOptions for fixtures and back-compat tests.
//
// Load never trusts the file: lengths are bounded by the file size
// before any allocation, every section CRC is verified, edge targets /
// layer members / zero-layer chains are range-checked and
// cross-checked, and any violation surfaces as Status::Corruption or
// Status::IoError -- never a crash or an index that later reads out of
// bounds.

#ifndef DRLI_CORE_SERIALIZATION_H_
#define DRLI_CORE_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dual_layer.h"
#include "core/snapshot_format.h"

namespace drli {

struct SnapshotSaveOptions {
  // snapshot::kVersionV2 (default) or snapshot::kVersionV1 (legacy
  // stream layout, for fixtures and compatibility tests).
  std::uint32_t format_version = snapshot::kVersionV2;
};

// Writes the full index (points, layers, edges, zero layer) to `path`,
// atomically: the bytes go to "<path>.tmp" and are renamed over `path`
// only after a clean flush + close, so a crash or full disk never
// leaves a torn file at `path`.
// Note: only the query-relevant structure is persisted; the loaded
// index reports default build options() and zeroed build timings.
Status SaveDualLayerIndex(const DualLayerIndex& index,
                          const std::string& path,
                          const SnapshotSaveOptions& options = {});

struct SnapshotLoadOptions {
  // For v2 files: mmap the snapshot and point the index's point /
  // adjacency storage directly into the mapping (the mapping is
  // shared-owned by those views and unmapped with the last of them).
  // When false -- or when mmap fails, or for v1 files -- every array
  // is copied into owned storage.
  bool prefer_mmap = true;
};

// Reads an index previously written by SaveDualLayerIndex (either
// format version).
StatusOr<DualLayerIndex> LoadDualLayerIndex(
    const std::string& path, const SnapshotLoadOptions& options = {});

// --- snapshot metadata (drli inspect, testing/fault_inject) ---

struct SnapshotSectionInfo {
  std::uint32_t kind = 0;   // snapshot::SectionKind (v2); 0 for v1 rows
  std::string name;         // section name, e.g. "points"
  std::uint64_t offset = 0; // absolute file offset of the payload
  std::uint64_t length = 0; // payload bytes
  std::uint32_t crc = 0;    // stored CRC-32C (v2 only)
  bool crc_ok = false;      // payload CRC recomputed and matched (v2)
};

struct SnapshotInfo {
  std::uint32_t version = 0;
  std::size_t dim = 0;
  std::size_t num_points = 0;
  std::size_t num_virtual = 0;
  bool use_weight_table = false;
  std::uint64_t file_size = 0;
  // v2: the section table, in file order, with verified CRCs.
  // v1: synthesized rows for the stream's length-prefixed segments.
  std::vector<SnapshotSectionInfo> sections;
};

// Parses snapshot metadata without constructing the index. For v2
// files every section CRC is recomputed into SnapshotSectionInfo::
// crc_ok; structural corruption (bad magic/header/table, out-of-range
// sections) is a Corruption status.
StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path);

}  // namespace drli

#endif  // DRLI_CORE_SERIALIZATION_H_
