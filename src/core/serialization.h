// Binary save/load of a built DualLayerIndex, so the pre-materialized
// structure can be constructed once and reused across sessions -- the
// operating model of a layer-based index (built offline, queried for
// many weight vectors).

#ifndef DRLI_CORE_SERIALIZATION_H_
#define DRLI_CORE_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "core/dual_layer.h"

namespace drli {

// Writes the full index (points, layers, edges, zero layer) to `path`.
// Note: only the query-relevant structure is persisted; the loaded
// index reports default build options() and zeroed build timings.
Status SaveDualLayerIndex(const DualLayerIndex& index,
                          const std::string& path);

// Reads an index previously written by SaveDualLayerIndex.
StatusOr<DualLayerIndex> LoadDualLayerIndex(const std::string& path);

}  // namespace drli

#endif  // DRLI_CORE_SERIALIZATION_H_
