#include "core/tiered_index.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace drli {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// One entry of the run-merge heap, identical in shape and ordering to
// the sharded coordinator's (shard/sharded_index.cc): bound entries
// (kind 0) stand in for a whole unopened run at its corner lower
// bound; item entries (kind 1) are the cursor over one opened result
// list. Bounds order before items of equal score -- a run must be
// opened before any tuple at its bound may be emitted -- and items of
// equal score order by stable id, which is exactly ResultOrderLess.
struct MergeEntry {
  double score;
  std::uint32_t kind;  // 0 = run bound, 1 = item cursor
  std::uint32_t tie;   // bound: slot; item: stable tuple id
  std::uint32_t slot;  // run slot; memtable = num_runs
  std::uint32_t pos;   // item: position in the opened list
};

struct MergeEntryAfter {
  bool operator()(const MergeEntry& a, const MergeEntry& b) const {
    if (a.score != b.score) return a.score > b.score;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.tie > b.tie;
  }
};

}  // namespace

TieredDualLayerIndex::TieredDualLayerIndex(std::size_t dim,
                                           const TieredIndexOptions& options)
    : dim_(dim), options_(options), memtable_(dim) {
  DRLI_CHECK_GT(dim_, 0u) << "tiered index needs dim >= 1";
}

TieredDualLayerIndex::TieredDualLayerIndex(PointSet initial,
                                           const TieredIndexOptions& options)
    : dim_(initial.dim()), options_(options), memtable_(initial.dim()) {
  DRLI_CHECK_GT(dim_, 0u) << "tiered index needs dim >= 1";
  const std::size_t n = initial.size();
  if (n == 0) return;
  std::vector<TupleId> ids(n);
  std::iota(ids.begin(), ids.end(), TupleId{0});
  next_id_ = static_cast<TupleId>(n);
  // Place the bulk run at the tier its size would naturally reach, so
  // tier-0 seals do not immediately drag it into every small merge.
  std::uint32_t tier = 0;
  std::size_t tier_cap = std::max<std::size_t>(1, options_.memtable_capacity);
  while (tier_cap < n) {
    tier_cap *= std::max<std::size_t>(2, options_.fanout);
    ++tier;
  }
  InstallRun(std::move(initial), std::move(ids), tier);
}

std::string TieredDualLayerIndex::name() const {
  return options_.name.empty() ? "DL+lsm" : options_.name;
}

std::size_t TieredDualLayerIndex::indexed_rows() const {
  std::size_t rows = 0;
  for (const TieredRun& run : runs_) rows += run.ids.size();
  return rows;
}

std::size_t TieredDualLayerIndex::size() const {
  return indexed_rows() - tombstones_.size() + memtable_ids_.size();
}

std::size_t TieredDualLayerIndex::RunSlotOf(TupleId id) const {
  for (std::size_t s = 0; s < runs_.size(); ++s) {
    const std::vector<TupleId>& ids = runs_[s].ids;
    if (ids.empty() || id < ids.front() || id > ids.back()) continue;
    if (std::binary_search(ids.begin(), ids.end(), id)) return s;
    return kNpos;  // inside this run's interval but absent: nowhere else
  }
  return kNpos;
}

std::size_t TieredDualLayerIndex::MemtablePosOf(TupleId id) const {
  const auto it =
      std::lower_bound(memtable_ids_.begin(), memtable_ids_.end(), id);
  if (it == memtable_ids_.end() || *it != id) return kNpos;
  return static_cast<std::size_t>(it - memtable_ids_.begin());
}

std::size_t TieredDualLayerIndex::SlotOfUid(std::uint32_t uid) const {
  for (std::size_t s = 0; s < runs_.size(); ++s) {
    if (runs_[s].uid == uid) return s;
  }
  return kNpos;
}

bool TieredDualLayerIndex::Contains(TupleId id) const {
  if (id >= next_id_ || tombstones_.count(id)) return false;
  return MemtablePosOf(id) != kNpos || RunSlotOf(id) != kNpos;
}

PointView TieredDualLayerIndex::Get(TupleId id) const {
  DRLI_CHECK(!tombstones_.count(id)) << "tuple " << id << " deleted";
  const std::size_t mem = MemtablePosOf(id);
  if (mem != kNpos) return memtable_[mem];
  const std::size_t slot = RunSlotOf(id);
  DRLI_CHECK(slot != kNpos) << "unknown tuple " << id;
  const std::vector<TupleId>& ids = runs_[slot].ids;
  const std::size_t local = static_cast<std::size_t>(
      std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
  return runs_[slot].index.points()[local];
}

std::optional<std::uint32_t> TieredDualLayerIndex::run_uid_of(
    TupleId id) const {
  if (id >= next_id_ || tombstones_.count(id)) return std::nullopt;
  const std::size_t slot = RunSlotOf(id);
  if (slot == kNpos) return std::nullopt;
  return runs_[slot].uid;
}

TupleId TieredDualLayerIndex::Insert(PointView tuple) {
  DRLI_CHECK_EQ(tuple.size(), dim_);
  const TupleId id = next_id_++;
  memtable_ids_.push_back(id);
  memtable_.Add(tuple);
  MaybeMaintain();
  return id;
}

bool TieredDualLayerIndex::Erase(TupleId id) {
  if (tombstones_.count(id)) return false;
  const std::size_t mem = MemtablePosOf(id);
  if (mem != kNpos) {
    // Memtable deletes apply in place; the rebuild (PointSet has no
    // erase) keeps row order, preserving the ascending-id invariant.
    memtable_ids_.erase(memtable_ids_.begin() +
                        static_cast<std::ptrdiff_t>(mem));
    PointSet rebuilt(dim_);
    rebuilt.Reserve(memtable_.size() - 1);
    for (std::size_t i = 0; i < memtable_.size(); ++i) {
      if (i != mem) rebuilt.Add(memtable_[i]);
    }
    memtable_ = std::move(rebuilt);
    return true;
  }
  const std::size_t slot = RunSlotOf(id);
  if (slot == kNpos) return false;
  tombstones_.insert(id);
  ++runs_[slot].dead;
  MaybeMaintain();
  return true;
}

void TieredDualLayerIndex::SealMemtable() {
  if (memtable_ids_.empty()) return;
  PointSet rows = std::move(memtable_);
  std::vector<TupleId> ids = std::move(memtable_ids_);
  memtable_ = PointSet(dim_);
  memtable_ids_ = std::vector<TupleId>();
  InstallRun(std::move(rows), std::move(ids), 0);
  ++seals_;
}

void TieredDualLayerIndex::InstallRun(PointSet rows, std::vector<TupleId> ids,
                                      std::uint32_t tier) {
  if (ids.empty()) return;
  DRLI_CHECK(runs_.empty() || ids.front() > runs_.back().ids.back())
      << "new run must hold the newest id interval";
  TieredRun run{next_run_uid_++, tier,
                DualLayerIndex::Build(std::move(rows), options_.run),
                std::move(ids), 0, {}};
  ComputeRunBound(&run);
  runs_.push_back(std::move(run));
  ++generation_;
}

void TieredDualLayerIndex::ComputeRunBound(TieredRun* run) const {
  // Same construction as the sharded coordinator's shard bounds: the
  // run's skyline (coarse layer 1 dominates every deeper tuple),
  // chunked along the first coordinate into at most
  // kMaxBoundPointsPerRun groups, one componentwise-min corner per
  // group. Sound under tombstones too: masking members only raises the
  // run's true minimum live score.
  run->bound_values.clear();
  const PointSet& pts = run->index.points();
  if (pts.size() == 0) return;
  std::vector<TupleId> sky = run->index.coarse_layers().front();
  std::stable_sort(sky.begin(), sky.end(), [&](TupleId a, TupleId b) {
    return pts[a][0] < pts[b][0] || (pts[a][0] == pts[b][0] && a < b);
  });
  const std::size_t groups = std::min(kMaxBoundPointsPerRun, sky.size());
  const std::size_t base = sky.size() / groups;
  const std::size_t extra = sky.size() % groups;
  std::size_t cursor = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t take = base + (g < extra ? 1 : 0);
    const std::size_t begin = run->bound_values.size();
    run->bound_values.insert(run->bound_values.end(), dim_, kInf);
    for (std::size_t i = 0; i < take; ++i) {
      const PointView p = pts[sky[cursor + i]];
      for (std::size_t d = 0; d < dim_; ++d) {
        run->bound_values[begin + d] =
            std::min(run->bound_values[begin + d], p[d]);
      }
    }
    cursor += take;
  }
}

double TieredDualLayerIndex::RunLowerBound(const TieredRun& run,
                                           PointView weights) const {
  // Minimum corner score; exact-sound in floating point because Score
  // accumulates left-to-right with monotone rounding, so lowering any
  // coordinate never raises the computed score.
  double bound = kInf;
  for (std::size_t at = 0; at < run.bound_values.size(); at += dim_) {
    bound = std::min(bound,
                     Score(weights, PointView(&run.bound_values[at], dim_)));
  }
  return bound;
}

void TieredDualLayerIndex::MaybeMaintain() {
  if (memtable_ids_.size() >= std::max<std::size_t>(
                                  1, options_.memtable_capacity)) {
    SealMemtable();
  }
  if (options_.auto_compact) CompactStep();
}

bool TieredDualLayerIndex::ScheduleCompaction() {
  if (job_.has_value() || runs_.empty()) return false;
  const std::size_t fanout = std::max<std::size_t>(2, options_.fanout);

  // (a) size-tiered trigger: the lowest tier holding >= fanout runs.
  std::uint32_t max_tier = 0;
  for (const TieredRun& run : runs_) max_tier = std::max(max_tier, run.tier);
  for (std::uint32_t tier = 0; tier <= max_tier; ++tier) {
    std::vector<std::uint32_t> inputs;
    for (const TieredRun& run : runs_) {
      if (run.tier == tier) inputs.push_back(run.uid);
    }
    if (inputs.size() < fanout) continue;
    job_.emplace(dim_);
    job_->input_uids = std::move(inputs);
    job_->target_tier = tier + 1;
    return true;
  }

  // (b) tombstone pressure: merge everything, dropping every consumed
  // tombstone.
  if (options_.tombstone_compact_fraction > 0.0) {
    const double cap =
        std::max(static_cast<double>(options_.tombstone_compact_min),
                 options_.tombstone_compact_fraction *
                     static_cast<double>(indexed_rows()));
    if (static_cast<double>(tombstones_.size()) > cap) {
      ScheduleFullCompaction();
      return true;
    }
  }
  return false;
}

void TieredDualLayerIndex::ScheduleFullCompaction() {
  DRLI_CHECK(!job_.has_value());
  DRLI_CHECK(!runs_.empty());
  job_.emplace(dim_);
  std::uint32_t max_tier = 0;
  for (const TieredRun& run : runs_) {
    job_->input_uids.push_back(run.uid);
    max_tier = std::max(max_tier, run.tier);
  }
  job_->target_tier = runs_.size() > 1 ? max_tier + 1 : max_tier;
}

CompactProgress TieredDualLayerIndex::CompactStep() {
  if (!job_.has_value() && !ScheduleCompaction()) {
    return CompactProgress::kIdle;
  }
  CompactionJob& job = *job_;

  if (!job.merge_done) {
    // Copy a bounded batch of live rows out of the input runs. Rows
    // tombstoned at copy time are skipped and their tombstones
    // remembered for release at install.
    std::size_t copied = 0;
    const std::size_t cap =
        std::max<std::size_t>(1, options_.compact_rows_per_step);
    while (copied < cap && job.input_pos < job.input_uids.size()) {
      const std::size_t slot = SlotOfUid(job.input_uids[job.input_pos]);
      DRLI_CHECK(slot != kNpos) << "compaction input run vanished";
      const TieredRun& in = runs_[slot];
      if (job.local_pos >= in.ids.size()) {
        ++job.input_pos;
        job.local_pos = 0;
        continue;
      }
      const TupleId id = in.ids[job.local_pos];
      if (tombstones_.count(id)) {
        job.dropped.push_back(id);
      } else {
        job.rows.Add(in.index.points()[job.local_pos]);
        job.row_ids.push_back(id);
        ++copied;
      }
      ++job.local_pos;
    }
    if (job.input_pos >= job.input_uids.size()) job.merge_done = true;
    return CompactProgress::kMerging;
  }

  if (!job.built.has_value()) {
    // Inputs were walked in run order (ascending disjoint id
    // intervals), so the merged rows are already id-sorted -- the
    // order every run's canonical tie-breaking relies on.
    DRLI_CHECK(
        std::is_sorted(job.row_ids.begin(), job.row_ids.end()))
        << "merged run ids out of order";
    job.built.emplace(
        DualLayerIndex::Build(std::move(job.rows), options_.run));
    return CompactProgress::kBuilding;
  }

  // Install: this is the only step queries can observe -- everything
  // before it worked on job-private state.
  for (const TupleId id : job.dropped) tombstones_.erase(id);
  // Ids erased after their row was copied stay tombstoned: they are
  // members of the new run and must remain masked (no resurrection).
  std::size_t dead = 0;
  for (const TupleId id : job.row_ids) {
    dead += tombstones_.count(id) ? 1 : 0;
  }
  std::vector<TieredRun> kept;
  kept.reserve(runs_.size());
  std::size_t insert_at = kNpos;
  for (std::size_t s = 0; s < runs_.size(); ++s) {
    const bool consumed =
        std::find(job.input_uids.begin(), job.input_uids.end(),
                  runs_[s].uid) != job.input_uids.end();
    if (consumed) {
      if (insert_at == kNpos) insert_at = kept.size();
      continue;
    }
    kept.push_back(std::move(runs_[s]));
  }
  DRLI_CHECK(insert_at != kNpos);
  if (!job.row_ids.empty()) {
    TieredRun merged{next_run_uid_++, job.target_tier,
                     std::move(*job.built), std::move(job.row_ids), dead,
                     {}};
    ComputeRunBound(&merged);
    kept.insert(kept.begin() + static_cast<std::ptrdiff_t>(insert_at),
                std::move(merged));
  }
  runs_ = std::move(kept);
  ++compactions_;
  ++generation_;
  job_.reset();
  return CompactProgress::kInstalled;
}

Termination TieredDualLayerIndex::Compact(const ExecBudget& budget) {
  // One gate step per CompactStep: max_evals caps the number of
  // increments, deadlines and cancellation are polled between them --
  // a serving loop can pump compaction in bounded slices.
  BudgetGate gate(budget);
  std::size_t steps = 0;
  for (;;) {
    const Termination state = gate.Step(steps);
    if (state != Termination::kComplete) return state;
    if (!job_.has_value()) {
      SealMemtable();
      if (runs_.size() <= 1 && tombstones_.empty()) {
        return Termination::kComplete;
      }
      ScheduleFullCompaction();
    }
    CompactStep();
    ++steps;
  }
}

void TieredDualLayerIndex::Compact() { Compact(ExecBudget{}); }

TopKResult TieredDualLayerIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  if (const Status status = ValidateQuery(query, dim_); !status.ok()) {
    return InvalidQueryResult(status);
  }
  TopKResult result;
  if (query.k == 0 || size() == 0) {
    FinalizeComplete(result);
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }

  const PointView w(query.weights);
  const std::size_t mem_slot = runs_.size();
  // Result lists: opened runs (tombstones filtered, ids stable) plus
  // the memtable's pre-sorted scan at mem_slot.
  std::vector<std::vector<ScoredTuple>> open(runs_.size() + 1);

  // Memtable: always a full scan, even under a budget -- it is bounded
  // by the seal threshold, so this is amortized-constant overshoot,
  // and covering it completely lets a partial result certify against
  // the run frontiers alone (unsorted unscanned rows would otherwise
  // force a -inf frontier and certify nothing).
  {
    std::vector<ScoredTuple>& mem = open[mem_slot];
    mem.reserve(memtable_ids_.size());
    for (std::size_t i = 0; i < memtable_ids_.size(); ++i) {
      mem.push_back(ScoredTuple{memtable_ids_[i], Score(w, memtable_[i])});
      ++result.stats.tuples_evaluated;
      result.accessed.push_back(memtable_ids_[i]);
    }
    std::sort(mem.begin(), mem.end(), ResultOrderLess);
  }

  std::vector<MergeEntry> heap;
  heap.reserve(runs_.size() + 2);
  for (std::size_t s = 0; s < runs_.size(); ++s) {
    if (runs_[s].ids.size() <= runs_[s].dead) continue;  // no live member
    heap.push_back(MergeEntry{RunLowerBound(runs_[s], w), 0,
                              static_cast<std::uint32_t>(s),
                              static_cast<std::uint32_t>(s), 0});
  }
  if (!open[mem_slot].empty()) {
    const ScoredTuple& first = open[mem_slot].front();
    heap.push_back(MergeEntry{first.score, 1, first.id,
                              static_cast<std::uint32_t>(mem_slot), 0});
  }
  std::make_heap(heap.begin(), heap.end(), MergeEntryAfter{});

  Termination reason = Termination::kComplete;
  double stop_floor = kInf;
  bool stopped = false;

  while (result.items.size() < query.k && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), MergeEntryAfter{});
    const MergeEntry entry = heap.back();
    heap.pop_back();

    if (entry.kind == 1) {
      const std::vector<ScoredTuple>& items = open[entry.slot];
      result.items.push_back(items[entry.pos]);
      if (entry.pos + 1 < items.size()) {
        const ScoredTuple& next = items[entry.pos + 1];
        heap.push_back(
            MergeEntry{next.score, 1, next.id, entry.slot, entry.pos + 1});
        std::push_heap(heap.begin(), heap.end(), MergeEntryAfter{});
      }
      continue;
    }

    // The merge frontier reached this run's corner bound: open it.
    ExecBudget sub;
    reason = RemainingBudget(query.budget, result.stats.tuples_evaluated,
                             timer, &sub);
    if (reason != Termination::kComplete) {
      stop_floor = entry.score;  // the run we could not afford to open
      stopped = true;
      break;
    }
    const TieredRun& run = runs_[entry.slot];
    // Over-fetch to survive tombstone filtering: the top (k + dead)
    // members contain at least min(live(run), k) live tuples, so a
    // complete run's cursor can only be exhausted when the whole run
    // was returned -- there is never an unreturned live member hiding
    // past the cut.
    TopKQuery run_query;
    run_query.weights = query.weights;
    run_query.k = std::min(run.ids.size(), query.k + run.dead);
    run_query.budget = sub;
    TopKResult run_result = run.index.Query(run_query);

    ++result.stats.runs_opened;
    result.stats.tuples_evaluated += run_result.stats.tuples_evaluated;
    result.stats.virtual_evaluated += run_result.stats.virtual_evaluated;
    for (const TupleId local : run_result.accessed) {
      result.accessed.push_back(run.ids[local]);
    }
    if (run_result.termination == Termination::kError ||
        run_result.termination == Termination::kInvalidQuery) {
      result.items.clear();
      result.termination = Termination::kError;
      result.error =
          "run " + std::to_string(run.uid) + ": " +
          (run_result.error.empty()
               ? std::string(TerminationName(run_result.termination))
               : run_result.error);
      result.certified_prefix = 0;
      result.frontier_bound = -kInf;
      result.stats.elapsed_seconds = timer.ElapsedSeconds();
      return result;
    }

    if (!run_result.complete()) {
      // The run's budget slice tripped mid-traversal. None of its
      // items are merged; the whole run is bounded by the smaller of
      // its frontier and its best returned score, and the merge stops.
      double floor = run_result.frontier_bound;
      if (!run_result.items.empty()) {
        floor = std::min(floor, run_result.items.front().score);
      }
      stop_floor = floor;
      reason = run_result.termination;
      stopped = true;
      break;
    }

    std::vector<ScoredTuple>& live = open[entry.slot];
    live.reserve(run_result.items.size());
    for (const ScoredTuple& item : run_result.items) {
      const TupleId stable = run.ids[item.id];
      if (tombstones_.count(stable)) continue;  // masked member
      live.push_back(ScoredTuple{stable, item.score});
    }
    if (!live.empty()) {
      heap.push_back(MergeEntry{live.front().score, 1, live.front().id,
                                entry.slot, 0});
      std::push_heap(heap.begin(), heap.end(), MergeEntryAfter{});
    }
  }

  if (!stopped) {
    FinalizeComplete(result);
  } else {
    // Every unreturned live tuple is (a) in the run that stopped or
    // was unaffordable -- bounded by stop_floor, (b) in a run still
    // represented by a bound entry, (c) after the cursor of an opened
    // list (memtable included), or (d) past an opened run's over-fetch
    // cut, where the raw k'-th score >= that run's live cursor entry.
    // (b)-(d) are all covered by the surviving heap keys.
    double bound = stop_floor;
    for (const MergeEntry& e : heap) bound = std::min(bound, e.score);
    FinalizePartial(result, reason, bound);
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
