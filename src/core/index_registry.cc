#include "core/index_registry.h"

#include <algorithm>

#include "baselines/dominant_graph.h"
#include "baselines/hybrid_layer.h"
#include "baselines/list_index.h"
#include "baselines/onion.h"
#include "baselines/partitioned_layer.h"
#include "baselines/view_index.h"
#include "core/dual_layer.h"
#include "core/tiered_index.h"
#include "shard/sharded_index.h"
#include "topk/scan.h"

namespace drli {

namespace {

std::string Lowered(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::vector<std::string> KnownIndexKinds() {
  return {"scan", "fa",  "ta",  "nra", "prefer", "lpta", "onion", "pli",
          "dg",   "dg+", "hl",  "hl+", "dl",     "dl+",  "sdl+",  "tdl+"};
}

StatusOr<std::unique_ptr<TopKIndex>> BuildIndex(const IndexBuildConfig& config,
                                                PointSet points) {
  const std::string kind = Lowered(config.kind);
  if (kind == "scan") {
    return std::unique_ptr<TopKIndex>(
        std::make_unique<FullScanIndex>(std::move(points)));
  }
  if (kind == "fa" || kind == "ta" || kind == "nra") {
    const ListAlgorithm algorithm = kind == "fa"   ? ListAlgorithm::kFa
                                    : kind == "ta" ? ListAlgorithm::kTa
                                                   : ListAlgorithm::kNra;
    return std::unique_ptr<TopKIndex>(std::make_unique<ListIndex>(
        ListIndex::Build(std::move(points), algorithm)));
  }
  if (kind == "prefer" || kind == "lpta") {
    ViewIndexOptions options;
    options.algorithm =
        kind == "prefer" ? ViewAlgorithm::kPrefer : ViewAlgorithm::kLpta;
    return std::unique_ptr<TopKIndex>(std::make_unique<ViewIndex>(
        ViewIndex::Build(std::move(points), options)));
  }
  if (kind == "onion") {
    OnionOptions options;
    options.skyline_algorithm = config.skyline_algorithm;
    options.max_layers = config.convex_max_layers;
    return std::unique_ptr<TopKIndex>(std::make_unique<OnionIndex>(
        OnionIndex::Build(std::move(points), options)));
  }
  if (kind == "pli") {
    PartitionedLayerOptions options;
    options.skyline_algorithm = config.skyline_algorithm;
    options.max_layers_per_partition = config.convex_max_layers;
    return std::unique_ptr<TopKIndex>(
        std::make_unique<PartitionedLayerIndex>(
            PartitionedLayerIndex::Build(std::move(points), options)));
  }
  if (kind == "dg" || kind == "dg+") {
    DominantGraphOptions options;
    options.skyline_algorithm = config.skyline_algorithm;
    options.build_zero_layer = (kind == "dg+");
    options.zero_layer_clusters = config.zero_layer_clusters;
    return std::unique_ptr<TopKIndex>(std::make_unique<DominantGraphIndex>(
        DominantGraphIndex::Build(std::move(points), options)));
  }
  if (kind == "hl" || kind == "hl+") {
    HybridLayerOptions options;
    options.skyline_algorithm = config.skyline_algorithm;
    options.max_layers = config.convex_max_layers;
    options.tight_threshold = (kind == "hl+");
    return std::unique_ptr<TopKIndex>(std::make_unique<HybridLayerIndex>(
        HybridLayerIndex::Build(std::move(points), options)));
  }
  if (kind == "dl" || kind == "dl+") {
    DualLayerOptions options;
    options.skyline_algorithm = config.skyline_algorithm;
    options.build_zero_layer = (kind == "dl+");
    options.zero_layer_clusters = config.zero_layer_clusters;
    return std::unique_ptr<TopKIndex>(std::make_unique<DualLayerIndex>(
        DualLayerIndex::Build(std::move(points), options)));
  }
  if (kind.rfind("sdl+", 0) == 0) {
    ShardedBuildOptions options;
    options.num_shards = config.num_shards;
    options.partition_seed = config.shard_seed;
    StatusOr<ShardPartitioner> partitioner =
        ParseShardPartitioner(config.shard_partitioner);
    if (!partitioner.ok()) return partitioner.status();
    options.partitioner = partitioner.value();
    // Optional inline spec: "sdl+<S>[r|h]".
    std::string spec = kind.substr(4);
    if (!spec.empty()) {
      if (spec.back() == 'r' || spec.back() == 'h') {
        options.partitioner = spec.back() == 'r'
                                  ? ShardPartitioner::kRandom
                                  : ShardPartitioner::kHyperplane;
        spec.pop_back();
      }
      if (spec.empty() ||
          spec.find_first_not_of("0123456789") != std::string::npos) {
        return Status::InvalidArgument("bad sharded kind spec: " +
                                       config.kind);
      }
      const unsigned long parsed = std::stoul(spec);
      if (parsed == 0 || parsed > 4096) {
        return Status::InvalidArgument("shard count out of range in: " +
                                       config.kind);
      }
      options.num_shards = parsed;
    }
    options.shard_options.skyline_algorithm = config.skyline_algorithm;
    options.shard_options.build_zero_layer = true;
    options.shard_options.zero_layer_clusters = config.zero_layer_clusters;
    return std::unique_ptr<TopKIndex>(std::make_unique<ShardedDualLayerIndex>(
        ShardedDualLayerIndex::Build(std::move(points), options)));
  }
  if (kind.rfind("tdl+", 0) == 0) {
    TieredIndexOptions options;
    options.run.skyline_algorithm = config.skyline_algorithm;
    options.run.build_zero_layer = true;
    options.run.zero_layer_clusters = config.zero_layer_clusters;
    options.memtable_capacity = config.tiered_memtable_capacity;
    // Optional inline spec: "tdl+<M>" = memtable capacity M.
    const std::string spec = kind.substr(4);
    if (!spec.empty()) {
      if (spec.find_first_not_of("0123456789") != std::string::npos) {
        return Status::InvalidArgument("bad tiered kind spec: " + config.kind);
      }
      const unsigned long parsed = std::stoul(spec);
      if (parsed == 0 || parsed > 1u << 20) {
        return Status::InvalidArgument("memtable capacity out of range in: " +
                                       config.kind);
      }
      options.memtable_capacity = parsed;
    }
    // Feed the relation through the mutation path (instead of the bulk
    // constructor) so the built index genuinely spans multiple runs
    // with live compaction state -- the configuration the differential
    // oracle exists to cross-check against the static families.
    auto index = std::make_unique<TieredDualLayerIndex>(points.dim(), options);
    for (std::size_t i = 0; i < points.size(); ++i) index->Insert(points[i]);
    return std::unique_ptr<TopKIndex>(std::move(index));
  }
  return Status::InvalidArgument("unknown index kind: " + config.kind);
}

}  // namespace drli
