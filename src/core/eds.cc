#include "core/eds.h"

#include <algorithm>

#include "common/check.h"
#include "geometry/simplex_lp.h"

namespace drli {

Point FacetMinCorner(const PointSet& points,
                     const std::vector<TupleId>& facet) {
  DRLI_CHECK(!facet.empty());
  const std::size_t d = points.dim();
  Point corner(points[facet[0]].begin(), points[facet[0]].end());
  for (std::size_t m = 1; m < facet.size(); ++m) {
    const PointView p = points[facet[m]];
    for (std::size_t j = 0; j < d; ++j) {
      corner[j] = std::min(corner[j], p[j]);
    }
  }
  return corner;
}

bool FacetIsEds(const PointSet& points, const std::vector<TupleId>& facet,
                PointView min_corner, PointView target,
                EdsCounters* counters) {
  const std::size_t d = points.dim();
  DRLI_CHECK_EQ(target.size(), d);
  DRLI_DCHECK(facet.size() >= 1);
  DRLI_DCHECK(min_corner.size() == d);

  // Necessary condition: the componentwise minimum of the facet must
  // weakly dominate the target, otherwise no convex combination can.
  if (!WeaklyDominates(min_corner, target)) {
    if (counters != nullptr) ++counters->bbox_rejects;
    return false;
  }

  // Fast path: a single member weakly dominating the target already
  // certifies the facet (the virtual tuple is the member itself).
  for (TupleId id : facet) {
    if (WeaklyDominates(points[id], target)) {
      if (counters != nullptr) ++counters->member_hits;
      return true;
    }
  }
  if (facet.size() == 1) return false;  // single point already checked

  // LP feasibility over the barycentric weights lambda >= 0:
  //   sum_m lambda_m = 1,  sum_m lambda_m * t^m_j <= target_j  (all j).
  if (counters != nullptr) ++counters->lp_calls;
  LinearProgram lp(facet.size());
  lp.ReserveConstraints(d + 1);
  std::vector<double> row(facet.size(), 1.0);
  lp.AddConstraint(row, LpRelation::kEqual, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t m = 0; m < facet.size(); ++m) {
      row[m] = points[facet[m]][j];
    }
    lp.AddConstraint(row, LpRelation::kLessEq, target[j]);
  }
  return lp.IsFeasible();
}

bool FacetIsEds(const PointSet& points, const std::vector<TupleId>& facet,
                PointView target) {
  const Point corner = FacetMinCorner(points, facet);
  return FacetIsEds(points, facet, corner, target, nullptr);
}

}  // namespace drli
