#include "core/eds.h"

#include <algorithm>

#include "common/check.h"
#include "geometry/simplex_lp.h"

namespace drli {

bool FacetIsEds(const PointSet& points, const std::vector<TupleId>& facet,
                PointView target) {
  DRLI_CHECK(!facet.empty());
  const std::size_t d = points.dim();
  DRLI_CHECK_EQ(target.size(), d);

  // Fast path: a single member weakly dominating the target already
  // certifies the facet (the virtual tuple is the member itself).
  for (TupleId id : facet) {
    if (WeaklyDominates(points[id], target)) return true;
  }

  // Necessary condition: the componentwise minimum of the facet must
  // weakly dominate the target, otherwise no convex combination can.
  for (std::size_t j = 0; j < d; ++j) {
    double lo = points[facet[0]][j];
    for (std::size_t m = 1; m < facet.size(); ++m) {
      lo = std::min(lo, points[facet[m]][j]);
    }
    if (lo > target[j]) return false;
  }
  if (facet.size() == 1) return false;  // single point already checked

  // LP feasibility over the barycentric weights lambda >= 0:
  //   sum_m lambda_m = 1,  sum_m lambda_m * t^m_j <= target_j  (all j).
  LinearProgram lp(facet.size());
  std::vector<double> row(facet.size(), 1.0);
  lp.AddConstraint(row, LpRelation::kEqual, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t m = 0; m < facet.size(); ++m) {
      row[m] = points[facet[m]][j];
    }
    lp.AddConstraint(row, LpRelation::kLessEq, target[j]);
  }
  return lp.IsFeasible();
}

}  // namespace drli
