// ∃-dominance sets (Definitions 5 and 6). A facet F = {t^1..t^d} of the
// convex hull of fine sublayer L^{ij} is an EDS of a tuple t' iff some
// virtual tuple on the facet's hyperplane segment dominates t' -- i.e.
// iff the simplex conv(F) intersects the dominance box {x : x <= t'}.
// When it does, every member of F ∃-dominates t', and at least one
// member scores below t' under every strictly positive linear scoring
// function (Lemma 2).
//
// The test is resolved by three stages of increasing cost:
//   1. bbox reject: the componentwise-min corner of the facet fails to
//      weakly dominate t' -> no convex combination can (O(d));
//   2. member hit: a single facet member weakly dominates t' (the
//      virtual tuple is the member itself);
//   3. simplex LP over the barycentric weights (exact, expensive).
// The corner of stage 1 depends only on the facet, so build loops that
// test one facet against many targets precompute it once with
// FacetMinCorner and call the prefiltered overload.

#ifndef DRLI_CORE_EDS_H_
#define DRLI_CORE_EDS_H_

#include <cstddef>
#include <vector>

#include "common/point.h"

namespace drli {

// How many facet/target pairs each stage resolved (see above).
struct EdsCounters {
  std::size_t bbox_rejects = 0;
  std::size_t member_hits = 0;
  std::size_t lp_calls = 0;
};

// Componentwise minimum of the facet members: the corner of the
// smallest axis-aligned box containing the facet's simplex.
Point FacetMinCorner(const PointSet& points, const std::vector<TupleId>& facet);

// True iff conv{points[id] : id in facet} intersects {x : x <= target}
// componentwise. Exact up to LP tolerance; facets of any size >= 1 are
// accepted (degenerate fallback facets included). `min_corner` must be
// FacetMinCorner(points, facet); `counters` may be null.
bool FacetIsEds(const PointSet& points, const std::vector<TupleId>& facet,
                PointView min_corner, PointView target,
                EdsCounters* counters);

// Convenience overload computing the corner on the fly (tests, single
// facet/target probes).
bool FacetIsEds(const PointSet& points, const std::vector<TupleId>& facet,
                PointView target);

}  // namespace drli

#endif  // DRLI_CORE_EDS_H_
