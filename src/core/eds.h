// ∃-dominance sets (Definitions 5 and 6). A facet F = {t^1..t^d} of the
// convex hull of fine sublayer L^{ij} is an EDS of a tuple t' iff some
// virtual tuple on the facet's hyperplane segment dominates t' -- i.e.
// iff the simplex conv(F) intersects the dominance box {x : x <= t'}.
// When it does, every member of F ∃-dominates t', and at least one
// member scores below t' under every strictly positive linear scoring
// function (Lemma 2).

#ifndef DRLI_CORE_EDS_H_
#define DRLI_CORE_EDS_H_

#include <vector>

#include "common/point.h"

namespace drli {

// True iff conv{points[id] : id in facet} intersects {x : x <= target}
// componentwise. Exact up to LP tolerance; facets of any size >= 1 are
// accepted (degenerate fallback facets included).
bool FacetIsEds(const PointSet& points, const std::vector<TupleId>& facet,
                PointView target);

}  // namespace drli

#endif  // DRLI_CORE_EDS_H_
