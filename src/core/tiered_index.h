// LSM-style dynamic maintenance for the dual-resolution index (see
// DESIGN.md, "Tiered dynamic maintenance").
//
// The relation is the union of
//  * a mutable memtable (unindexed rows, scanned at query time),
//  * a set of immutable runs, each a small DualLayerIndex built when
//    the memtable sealed or when a compaction merged older runs,
//  * a tombstone set masking deleted stable ids that still sit inside
//    a run (memtable deletes are applied in place).
//
// Stable ids are assigned by Insert in increasing order and never
// reused, so at any time the runs hold pairwise disjoint, ascending id
// ranges: sealing takes the newest contiguous batch, and compaction
// only ever merges *all* runs of one tier (or all runs), which keeps
// every run an interval. Merging is therefore concatenation in
// run order and the per-run id lists stay sorted -- the property the
// query path leans on for canonical (score, id) tie-breaking.
//
// Queries run the same scatter-gather merge as the sharded coordinator
// (shard/sharded_index.cc): one min-heap seeded with a per-run lower
// bound (componentwise-min corners over the run's skyline, grouped to
// at most kMaxBoundPointsPerRun corners) plus a cursor over the fully
// scanned memtable. A run is opened -- its DualLayerIndex queried for
// min(|run|, k + dead(run)) items, tombstones filtered on merge --
// only when the merge frontier reaches its bound, so cold runs stay
// closed exactly like cold shards. Budgets compose by remainder and
// partial results certify against the surviving heap keys.
//
// Compaction is incremental: CompactStep() advances a single job by a
// bounded amount (copy <= compact_rows_per_step live rows, then one
// build step, then an O(#runs) install), so queries interleaved
// between steps always see the pre-merge generation. Tombstones whose
// run was consumed by the merge are dropped at install; ids erased
// *after* their row was copied stay tombstoned in the new run (no
// resurrection).

#ifndef DRLI_CORE_TIERED_INDEX_H_
#define DRLI_CORE_TIERED_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/point.h"
#include "core/dual_layer.h"
#include "topk/query.h"

namespace drli {

struct TieredIndexOptions {
  TieredIndexOptions() { run.build_zero_layer = true; }

  // Build options for every run (sealed memtables and merge outputs).
  // Defaults to DL+ runs -- the zero layer is cheap at run sizes.
  DualLayerOptions run;
  // Seal the memtable into a tier-0 run once it reaches this many rows.
  std::size_t memtable_capacity = 128;
  // Merge a tier once it accumulates this many runs (size-tiered).
  std::size_t fanout = 4;
  // Drive one CompactStep() after every mutation. Off, runs accumulate
  // until the caller pumps CompactStep()/Compact() explicitly.
  bool auto_compact = true;
  // Live rows copied per merge step (the unit of compaction progress).
  std::size_t compact_rows_per_step = 4096;
  // Merge all runs (dropping every consumed tombstone) once tombstones
  // exceed max(tombstone_compact_min, this fraction of indexed rows).
  // 0 disables.
  double tombstone_compact_fraction = 0.5;
  // Absolute floor under the tombstone trigger: below this many
  // tombstones no fraction ever fires. The default keeps the historical
  // behaviour (a hardcoded 64 kept the trigger off delete-heavy tiny
  // indexes); set 0 to let the fraction govern alone at any size.
  std::size_t tombstone_compact_min = 64;
  // Display name; empty = "DL+lsm".
  std::string name;
};

// What one CompactStep() call did.
enum class CompactProgress : std::uint8_t {
  kIdle = 0,    // nothing to compact
  kMerging,     // copied a bounded batch of live rows
  kBuilding,    // built the merged run's DualLayerIndex
  kInstalled,   // swapped the new run in (generation advanced)
};

// One immutable run: a DualLayerIndex over a contiguous batch of
// stable ids. `ids` maps run-local tuple positions to stable ids and
// is strictly ascending; `dead` counts members currently tombstoned.
struct TieredRun {
  std::uint32_t uid = 0;   // unique within the index, monotone
  std::uint32_t tier = 0;  // 0 = sealed memtable, +1 per merge
  DualLayerIndex index;
  std::vector<TupleId> ids;
  std::size_t dead = 0;
  // Grouped skyline corners backing the run's query-time lower bound
  // (see ComputeRunBound); `bound_corners` corners of dim() doubles.
  std::vector<double> bound_values;
};

class TieredDualLayerIndex final : public TopKIndex {
 public:
  // Corner cap per run bound, matching the sharded coordinator's.
  static constexpr std::size_t kMaxBoundPointsPerRun = 64;

  explicit TieredDualLayerIndex(std::size_t dim,
                                const TieredIndexOptions& options = {});
  // Bulk start: `initial` becomes one run holding ids [0, n).
  TieredDualLayerIndex(PointSet initial,
                       const TieredIndexOptions& options = {});

  TieredDualLayerIndex(TieredDualLayerIndex&&) = default;
  TieredDualLayerIndex& operator=(TieredDualLayerIndex&&) = default;

  std::string name() const override;
  // Number of live tuples.
  std::size_t size() const override;
  TopKResult Query(const TopKQuery& query) const override;

  // Adds a tuple; returns its stable id (never reused). May seal the
  // memtable and, with auto_compact, advance compaction by one step.
  TupleId Insert(PointView tuple);
  // Removes a tuple by stable id; false if unknown or already deleted.
  bool Erase(TupleId id);
  // True iff the id refers to a live tuple.
  bool Contains(TupleId id) const;
  // The live tuple's attributes (CHECKs Contains).
  PointView Get(TupleId id) const;

  // Builds the current memtable into a tier-0 run (no-op when empty).
  void SealMemtable();
  // Advances the active compaction job by one bounded increment,
  // scheduling a job first if the tier policy wants one. Queries
  // issued between steps see the pre-merge runs until kInstalled.
  CompactProgress CompactStep();
  // Pumps CompactStep under `budget` until the index is fully merged
  // into at most one run with no tombstones, or the budget trips.
  // Returns kComplete on full compaction, else the tripped reason.
  Termination Compact(const ExecBudget& budget);
  // Blocking full compaction (seals, merges everything, drops all
  // tombstones) -- the legacy DynamicDualLayerIndex::Compact contract.
  void Compact();

  // --- introspection (tests, persistence, inspect) ---
  std::size_t dim() const override { return dim_; }
  const TieredIndexOptions& options() const { return options_; }
  std::size_t memtable_size() const { return memtable_ids_.size(); }
  std::size_t num_runs() const { return runs_.size(); }
  const TieredRun& run(std::size_t i) const { return runs_[i]; }
  // Rows held by runs, tombstoned members included.
  std::size_t indexed_rows() const;
  std::size_t tombstone_count() const { return tombstones_.size(); }
  std::size_t seal_count() const { return seals_; }
  std::size_t compaction_count() const { return compactions_; }
  // Advances on every installed structural change (seal / merge).
  std::uint64_t generation() const { return generation_; }
  TupleId next_id() const { return next_id_; }
  std::uint32_t next_run_uid() const { return next_run_uid_; }
  bool compaction_active() const { return job_.has_value(); }
  // The uid of the run holding `id`; nullopt for memtable-resident,
  // dead, or unknown ids. Exposed for tests asserting id placement
  // across compactions.
  std::optional<std::uint32_t> run_uid_of(TupleId id) const;

  // Memtable contents, ids ascending (persistence).
  const PointSet& memtable() const { return memtable_; }
  const std::vector<TupleId>& memtable_ids() const { return memtable_ids_; }
  const std::unordered_set<TupleId>& tombstones() const {
    return tombstones_;
  }

 private:
  friend class TieredIndexIO;  // storage/tiered_io.cc

  struct CompactionJob {
    std::vector<std::uint32_t> input_uids;
    std::uint32_t target_tier = 0;
    PointSet rows;  // live rows accumulated so far, id order
    std::vector<TupleId> row_ids;
    std::vector<TupleId> dropped;  // tombstoned ids consumed (skipped)
    std::size_t input_pos = 0;     // index into input_uids
    std::size_t local_pos = 0;     // next row of the current input
    bool merge_done = false;
    std::optional<DualLayerIndex> built;

    explicit CompactionJob(std::size_t dim) : rows(dim) {}
  };

  // Appends a run over `rows` (ids ascending) and bumps the
  // generation; drops empty row sets.
  void InstallRun(PointSet rows, std::vector<TupleId> ids,
                  std::uint32_t tier);
  void ComputeRunBound(TieredRun* run) const;
  double RunLowerBound(const TieredRun& run, PointView weights) const;
  // Picks the next merge job per the size-tiered policy; false = none.
  bool ScheduleCompaction();
  // Queues a merge of every run (full compaction driver).
  void ScheduleFullCompaction();
  void MaybeMaintain();
  // Index into runs_ holding `id`, or npos. Runs hold disjoint id
  // intervals, so a range check per run suffices before the binary
  // search inside it.
  std::size_t RunSlotOf(TupleId id) const;
  std::size_t MemtablePosOf(TupleId id) const;
  std::size_t SlotOfUid(std::uint32_t uid) const;

  std::size_t dim_;
  TieredIndexOptions options_;

  PointSet memtable_;
  std::vector<TupleId> memtable_ids_;  // ascending
  std::vector<TieredRun> runs_;        // ascending min-id order
  std::unordered_set<TupleId> tombstones_;  // masked run members

  std::optional<CompactionJob> job_;

  TupleId next_id_ = 0;
  std::uint32_t next_run_uid_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t seals_ = 0;
  std::size_t compactions_ = 0;
};

}  // namespace drli

#endif  // DRLI_CORE_TIERED_INDEX_H_
