#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/kernels_batch.h"
#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "core/dual_layer.h"

namespace drli {

namespace {

// Orders the scratch heap as a min-heap on (score, original node id).
// The node id -- not the slot -- is the tie-break key, so the pop
// sequence is identical to the node-space traversal's.
struct HeapEntryGreater {
  bool operator()(const QueryScratch::HeapEntry& a,
                  const QueryScratch::HeapEntry& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.node > b.node;
  }
};

}  // namespace

void QueryScratch::Prepare(const QueryLayout& layout) {
  if (generation_ != layout.generation) {
    // First query against this layout: seed the per-slot init words so
    // a first touch reads one cache line instead of also hitting a
    // separate init array. Amortized over every query the scratch
    // serves on this index.
    generation_ = layout.generation;
    const std::size_t num_slots = layout.init_packed.size();
    nodes_.resize(num_slots);
    for (std::size_t i = 0; i < num_slots; ++i) {
      nodes_[i] = NodeState{layout.init_packed[i], 0, 0};
    }
    epoch_ = 0;
  }
  ++epoch_;
  if (epoch_ == 0) {
    // Epoch counter wrapped: stale stamps could collide, so invalidate
    // everything once per ~4 billion queries.
    for (NodeState& node : nodes_) node.stamp = 0;
    epoch_ = 1;
  }
  heap_.clear();
  freed_.clear();
  bound_heap_.clear();
}

TopKResult DualLayerIndex::Query(const TopKQuery& query) const {
  // Thread-local so sequential callers on one thread reuse the arena
  // without managing it themselves; Query stays thread-compatible.
  static thread_local QueryScratch scratch;
  return Query(query, &scratch);
}

TopKResult DualLayerIndex::Query(const TopKQuery& query,
                                 QueryScratch* scratch) const {
  Stopwatch timer;
  if (const Status status = ValidateQuery(query, points_.dim());
      !status.ok()) {
    return InvalidQueryResult(status);
  }
  const PointView w(query.weights);
  const std::size_t total = num_nodes();

  TopKResult result;
  if (total == 0 || query.k == 0) {
    FinalizeComplete(result);
    return result;
  }
  BudgetGate gate(query.budget);

  const QueryLayout& layout = layout_;
  QueryScratch& s = *scratch;
  s.Prepare(layout);
  if (s.heap_.capacity() < initial_.size() + 16) {
    s.heap_.reserve(initial_.size() + 16);
  }
  // One allocation each instead of a doubling chain; the typical query
  // evaluates a few dozen tuples per answer slot.
  result.items.reserve(query.k + 8);
  result.accessed.reserve(16 * query.k);
  const ScoreBatchFn score_batch = ResolveScoreBatch();
  const std::uint32_t epoch = s.epoch_;
  QueryScratch::NodeState* const st = s.nodes_.data();
  const std::uint32_t* const node_of = layout.node_of.data();
  const std::uint32_t* const coarse_off = layout.coarse_offsets.data();
  const std::uint32_t* const coarse_tgt = layout.coarse_targets.data();
  const std::uint32_t* const fine_off = layout.fine_offsets.data();
  const std::uint32_t* const fine_tgt = layout.fine_targets.data();

  // Lazily initializes slot state on first touch this query; the reset
  // cost is O(slots touched), not O(n).
  const auto touch = [&](std::uint32_t slot) -> QueryScratch::NodeState& {
    QueryScratch::NodeState& ns = st[slot];
    if (ns.stamp != epoch) {
      ns.stamp = epoch;
      ns.packed = ns.init;
    }
    return ns;
  };

  // Once the k-th answer is known, only exact ties at its score can
  // still change the (score, id)-ordered result. Probes above it are
  // discarded unscored-as-far-as-the-cost-model-goes: the original
  // algorithm would never have materialized them, so charging them
  // would distort the Definition-9 metric on tie-free queries.
  double tie_cutoff = std::numeric_limits<double>::infinity();

  // Provisional upper bound on the final k-th answer: the k-th smallest
  // real candidate score seen so far (+inf until k have been seen).
  // Pops are non-decreasing in (score, node) and unlocking a node never
  // reveals a smaller score than its unlocker, so (a) the final answer
  // set is the k smallest real keys among everything eventually scored,
  // which makes any prefix's k-th smallest an upper bound on the final
  // tie_cutoff, and (b) no entry with score strictly above the final
  // tie_cutoff is ever popped. A candidate scoring strictly above the
  // bound is therefore dead weight: it is counted and recorded exactly
  // as before, but its heap push is skipped. Only exercised when no
  // budget gate is active -- a tripped gate certifies its partial
  // result against the literal heap minimum, which pruning would move.
  double push_bound = std::numeric_limits<double>::infinity();
  const bool prune_pushes = !gate.active();

  // Slots freed during one pop's expansion accumulate in s.freed_ (in
  // the order the expansion loops reach them) and are scored in one
  // batched kernel call, then enqueued in that same order. Deferring
  // the scores past the expansion changes nothing observable:
  // tie_cutoff only moves at pops, the heap pop sequence is a total
  // order on (score, node id) independent of push order, and the
  // accessed/evaluated bookkeeping runs in the exact event order the
  // eager traversal used.
  const auto flush_freed = [&]() {
    const std::size_t count = s.freed_.size();
    if (count == 0) return;
    if (s.freed_scores_.size() < count) s.freed_scores_.resize(count);
    score_batch(w, layout.points, s.freed_.data(), count,
                s.freed_scores_.data());
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t slot = s.freed_[i];
      const double score = s.freed_scores_[i];
      if (score > tie_cutoff) continue;
      const std::uint32_t node = node_of[slot];
      if (slot < layout.first_real_slot) {
        ++result.stats.virtual_evaluated;
      } else {
        ++result.stats.tuples_evaluated;
        result.accessed.push_back(node);
        if (prune_pushes) {
          // Track the k smallest real scores in a max-heap; its top is
          // the push bound once full.
          std::vector<double>& bh = s.bound_heap_;
          if (bh.size() < query.k) {
            bh.push_back(score);
            std::push_heap(bh.begin(), bh.end());
            if (bh.size() == query.k) push_bound = bh.front();
          } else if (score < bh.front()) {
            std::pop_heap(bh.begin(), bh.end());
            bh.back() = score;
            std::push_heap(bh.begin(), bh.end());
            push_bound = bh.front();
          }
        }
      }
      // Strictly above the bound: can never pop before termination and
      // can never tie the k-th answer (ties are == the bound at most).
      if (score > push_bound) continue;
      st[slot].packed |= QueryLayout::kQueuedBit;
      s.heap_.push_back(QueryScratch::HeapEntry{score, node, slot});
      std::push_heap(s.heap_.begin(), s.heap_.end(), HeapEntryGreater{});
    }
    s.freed_.clear();
  };

  if (use_weight_table_ && !weight_table_.empty()) {
    // With the 2-d weight table, L^{11} chain tuples other than the
    // looked-up top-1 candidate start locked and unlock along the chain.
    const std::size_t top1 = weight_table_.Lookup(query.weights[0]);
    const std::vector<TupleId>& chain = weight_table_.chain();
    for (std::size_t pos = 0; pos < chain.size(); ++pos) {
      QueryScratch::NodeState& ns = touch(layout.slot_of[chain[pos]]);
      if (pos != top1) ns.packed |= QueryLayout::kChainLockedBit;
    }
  }
  for (const std::uint32_t slot : layout.initial_slots) {
    if (touch(slot).packed == QueryLayout::kFreeable) {
      s.freed_.push_back(slot);
    }
  }
  flush_freed();

  // Set when the budget gate trips; the heap minimum at that pop
  // boundary becomes the certification frontier.
  Termination stop = Termination::kComplete;
  double frontier = -std::numeric_limits<double>::infinity();

  while (!s.heap_.empty()) {
    // Pops are non-decreasing in (score, node): every blocked node has
    // an in-heap ancestor with a score no larger than its own, so once
    // the heap minimum is strictly worse than the k-th answer no exact
    // tie can be hiding behind a blocked node and the query is done.
    if (result.items.size() >= query.k &&
        s.heap_.front().score > tie_cutoff) {
      break;
    }
    // Budget check at the pop boundary. The same invariant that powers
    // the stop rule above makes the partial result certifiable: every
    // unreturned tuple is in the heap, behind an in-heap ancestor, or
    // behind a tie-filtered probe (score > tie_cutoff), so
    // min(heap minimum, tie_cutoff) lower-bounds all of them.
    if (stop = gate.Step(result.stats.tuples_evaluated);
        stop != Termination::kComplete) {
      frontier = std::min(s.heap_.front().score, tie_cutoff);
      break;
    }
    std::pop_heap(s.heap_.begin(), s.heap_.end(), HeapEntryGreater{});
    const QueryScratch::HeapEntry top = s.heap_.back();
    s.heap_.pop_back();
    const std::uint32_t slot = top.slot;
    st[slot].packed =
        (st[slot].packed & ~QueryLayout::kStateMask) | QueryLayout::kPoppedBit;

    if (slot >= layout.first_real_slot) {
      result.items.push_back(ScoredTuple{top.node, top.score});
      if (result.items.size() == query.k) tie_cutoff = top.score;
    }

    // ∀-successors: free once every coarse in-neighbour popped.
    for (std::uint32_t i = coarse_off[slot]; i < coarse_off[slot + 1]; ++i) {
      const std::uint32_t succ = coarse_tgt[i];
      QueryScratch::NodeState& ns = touch(succ);
      DRLI_DCHECK((ns.packed & QueryLayout::kRemainingMask) > 0);
      if (--ns.packed == QueryLayout::kFreeable) s.freed_.push_back(succ);
    }
    // ∃-successors: free once any fine in-neighbour popped.
    for (std::uint32_t i = fine_off[slot]; i < fine_off[slot + 1]; ++i) {
      const std::uint32_t succ = fine_tgt[i];
      QueryScratch::NodeState& ns = touch(succ);
      if (!(ns.packed & QueryLayout::kFineFreeBit)) {
        ns.packed |= QueryLayout::kFineFreeBit;
        if (ns.packed == QueryLayout::kFreeable) s.freed_.push_back(succ);
      }
    }
    // Chain neighbours (2-d zero layer).
    if (use_weight_table_ && chain_pos_[top.node] != kNoFineLayer) {
      const std::vector<TupleId>& chain = weight_table_.chain();
      const std::size_t pos = chain_pos_[top.node];
      const auto unlock = [&](std::size_t neighbour) {
        const std::uint32_t nslot = layout.slot_of[chain[neighbour]];
        QueryScratch::NodeState& ns = st[nslot];
        if (ns.packed & QueryLayout::kChainLockedBit) {
          ns.packed &= ~QueryLayout::kChainLockedBit;
          if (ns.packed == QueryLayout::kFreeable) s.freed_.push_back(nslot);
        }
      };
      if (pos > 0) unlock(pos - 1);
      if (pos + 1 < chain.size()) unlock(pos + 1);
    }
    flush_freed();
  }
  // Equal-score tuples freed late (they were ∃- or chain-blocked behind
  // an equal-score node) pop out of id order; restore the canonical
  // (score, id) order and drop surplus ties beyond k.
  std::sort(result.items.begin(), result.items.end(), ResultOrderLess);
  if (result.items.size() > query.k) result.items.resize(query.k);
  if (stop == Termination::kComplete) {
    FinalizeComplete(result);
  } else {
    // Surplus ties dropped by the resize above score >= tie_cutoff >=
    // frontier, so they never invalidate the certified prefix.
    FinalizePartial(result, stop, frontier);
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<TopKResult> DualLayerIndex::QueryBatch(
    const std::vector<TopKQuery>& queries) const {
  std::vector<TopKResult> results(queries.size());
  if (queries.empty()) return results;
  const std::size_t workers =
      std::min(ParallelThreadCount(), queries.size());
  // One scratch per worker: Query itself is const, so per-worker
  // scratches are the only mutable state in the fan-out.
  std::vector<QueryScratch> scratches(workers);
  ParallelFor(
      queries.size(),
      [&](std::size_t i, std::size_t worker) {
        // GuardedQuery keeps a throwing worker from poisoning the whole
        // batch: the slot reports kError, the other queries proceed.
        results[i] = GuardedQuery(
            [&] { return Query(queries[i], &scratches[worker]); });
      },
      workers);
  return results;
}

}  // namespace drli
