#include <queue>
#include <vector>

#include "common/check.h"
#include "core/dual_layer.h"

namespace drli {

namespace {

// Node lifecycle during one query.
enum NodeState : std::uint8_t {
  kBlocked = 0,
  kQueued = 1,
  kPopped = 2,
};

struct QueueEntry {
  double score;
  DualLayerIndex::NodeId node;
};

struct QueueEntryGreater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.node > b.node;
  }
};

}  // namespace

TopKResult DualLayerIndex::Query(const TopKQuery& query) const {
  ValidateQuery(query, points_.dim());
  const PointView w(query.weights);
  const std::size_t total = num_nodes();

  TopKResult result;
  if (total == 0) return result;

  std::vector<std::uint32_t> remaining = coarse_in_degree_;
  std::vector<std::uint8_t> state(total, kBlocked);
  std::vector<std::uint8_t> fine_free(total, 0);
  for (std::size_t i = 0; i < total; ++i) fine_free[i] = !has_fine_in_[i];
  // With the 2-d weight table, L^{11} chain tuples other than the
  // looked-up top-1 candidate start locked and unlock along the chain.
  std::vector<std::uint8_t> chain_locked(total, 0);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      QueueEntryGreater>
      queue;

  auto try_enqueue = [&](NodeId node) {
    if (state[node] != kBlocked) return;
    if (remaining[node] != 0 || !fine_free[node] || chain_locked[node]) {
      return;
    }
    const double score = Score(w, node_point(node));
    if (is_virtual(node)) {
      ++result.stats.virtual_evaluated;
    } else {
      ++result.stats.tuples_evaluated;
      result.accessed.push_back(node);
    }
    state[node] = kQueued;
    queue.push(QueueEntry{score, node});
  };

  if (use_weight_table_ && !weight_table_.empty()) {
    const std::size_t top1 = weight_table_.Lookup(query.weights[0]);
    const std::vector<TupleId>& chain = weight_table_.chain();
    for (std::size_t pos = 0; pos < chain.size(); ++pos) {
      if (pos != top1) chain_locked[chain[pos]] = 1;
    }
  }
  for (NodeId node : initial_) try_enqueue(node);

  while (result.items.size() < query.k && !queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    const NodeId node = top.node;
    state[node] = kPopped;

    if (!is_virtual(node)) {
      result.items.push_back(ScoredTuple{node, top.score});
      if (result.items.size() == query.k) break;
    }

    // ∀-successors: free once every coarse in-neighbour popped.
    for (const NodeId succ : coarse_out_[node]) {
      DRLI_DCHECK(remaining[succ] > 0);
      if (--remaining[succ] == 0) try_enqueue(succ);
    }
    // ∃-successors: free once any fine in-neighbour popped.
    for (const NodeId succ : fine_out_[node]) {
      if (!fine_free[succ]) {
        fine_free[succ] = 1;
        try_enqueue(succ);
      }
    }
    // Chain neighbours (2-d zero layer).
    if (use_weight_table_ && chain_pos_[node] != kNoFineLayer) {
      const std::vector<TupleId>& chain = weight_table_.chain();
      const std::size_t pos = chain_pos_[node];
      if (pos > 0 && chain_locked[chain[pos - 1]]) {
        chain_locked[chain[pos - 1]] = 0;
        try_enqueue(chain[pos - 1]);
      }
      if (pos + 1 < chain.size() && chain_locked[chain[pos + 1]]) {
        chain_locked[chain[pos + 1]] = 0;
        try_enqueue(chain[pos + 1]);
      }
    }
  }
  return result;
}

}  // namespace drli
