#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "core/dual_layer.h"

namespace drli {

namespace {

// Node lifecycle during one query.
enum NodeState : std::uint8_t {
  kBlocked = 0,
  kQueued = 1,
  kPopped = 2,
};

// Orders the scratch heap as a min-heap on (score, node).
struct HeapEntryGreater {
  bool operator()(const QueryScratch::HeapEntry& a,
                  const QueryScratch::HeapEntry& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.node > b.node;
  }
};

}  // namespace

void QueryScratch::Prepare(std::size_t num_nodes) {
  if (stamp_.size() < num_nodes) {
    stamp_.resize(num_nodes, 0);
    remaining_.resize(num_nodes);
    state_.resize(num_nodes);
    fine_free_.resize(num_nodes);
    chain_locked_.resize(num_nodes);
  }
  ++epoch_;
  if (epoch_ == 0) {
    // Epoch counter wrapped: stale stamps could collide, so invalidate
    // everything once per ~4 billion queries.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  heap_.clear();
}

TopKResult DualLayerIndex::Query(const TopKQuery& query) const {
  // Thread-local so sequential callers on one thread reuse the arena
  // without managing it themselves; Query stays thread-compatible.
  static thread_local QueryScratch scratch;
  return Query(query, &scratch);
}

TopKResult DualLayerIndex::Query(const TopKQuery& query,
                                 QueryScratch* scratch) const {
  Stopwatch timer;
  if (const Status status = ValidateQuery(query, points_.dim());
      !status.ok()) {
    return InvalidQueryResult(status);
  }
  const PointView w(query.weights);
  const std::size_t total = num_nodes();

  TopKResult result;
  if (total == 0 || query.k == 0) {
    FinalizeComplete(result);
    return result;
  }
  BudgetGate gate(query.budget);

  QueryScratch& s = *scratch;
  s.Prepare(total);
  if (s.heap_.capacity() < initial_.size() + 16) {
    s.heap_.reserve(initial_.size() + 16);
  }
  const std::uint32_t epoch = s.epoch_;

  // Lazily initializes node state on first touch this query; the reset
  // cost is O(nodes touched), not O(n).
  auto touch = [&](NodeId node) {
    if (s.stamp_[node] != epoch) {
      s.stamp_[node] = epoch;
      s.remaining_[node] = coarse_in_degree_[node];
      s.state_[node] = kBlocked;
      s.fine_free_[node] = !has_fine_in_[node];
      s.chain_locked_[node] = 0;
    }
  };

  // Once the k-th answer is known, only exact ties at its score can
  // still change the (score, id)-ordered result. Probes above it are
  // discarded unscored-as-far-as-the-cost-model-goes: the original
  // algorithm would never have materialized them, so charging them
  // would distort the Definition-9 metric on tie-free queries.
  double tie_cutoff = std::numeric_limits<double>::infinity();

  // Precondition: `node` touched.
  auto try_enqueue = [&](NodeId node) {
    if (s.state_[node] != kBlocked) return;
    if (s.remaining_[node] != 0 || !s.fine_free_[node] ||
        s.chain_locked_[node]) {
      return;
    }
    const double score = Score(w, node_point(node));
    if (score > tie_cutoff) return;
    if (is_virtual(node)) {
      ++result.stats.virtual_evaluated;
    } else {
      ++result.stats.tuples_evaluated;
      result.accessed.push_back(node);
    }
    s.state_[node] = kQueued;
    s.heap_.push_back(QueryScratch::HeapEntry{score, node});
    std::push_heap(s.heap_.begin(), s.heap_.end(), HeapEntryGreater{});
  };

  if (use_weight_table_ && !weight_table_.empty()) {
    // With the 2-d weight table, L^{11} chain tuples other than the
    // looked-up top-1 candidate start locked and unlock along the chain.
    const std::size_t top1 = weight_table_.Lookup(query.weights[0]);
    const std::vector<TupleId>& chain = weight_table_.chain();
    for (std::size_t pos = 0; pos < chain.size(); ++pos) {
      touch(chain[pos]);
      if (pos != top1) s.chain_locked_[chain[pos]] = 1;
    }
  }
  for (NodeId node : initial_) {
    touch(node);
    try_enqueue(node);
  }

  // Set when the budget gate trips; the heap minimum at that pop
  // boundary becomes the certification frontier.
  Termination stop = Termination::kComplete;
  double frontier = -std::numeric_limits<double>::infinity();

  while (!s.heap_.empty()) {
    // Pops are non-decreasing in (score, node): every blocked node has
    // an in-heap ancestor with a score no larger than its own, so once
    // the heap minimum is strictly worse than the k-th answer no exact
    // tie can be hiding behind a blocked node and the query is done.
    if (result.items.size() >= query.k &&
        s.heap_.front().score > tie_cutoff) {
      break;
    }
    // Budget check at the pop boundary. The same invariant that powers
    // the stop rule above makes the partial result certifiable: every
    // unreturned tuple is in the heap, behind an in-heap ancestor, or
    // behind a tie-filtered probe (score > tie_cutoff), so
    // min(heap minimum, tie_cutoff) lower-bounds all of them.
    if (stop = gate.Step(result.stats.tuples_evaluated);
        stop != Termination::kComplete) {
      frontier = std::min(s.heap_.front().score, tie_cutoff);
      break;
    }
    std::pop_heap(s.heap_.begin(), s.heap_.end(), HeapEntryGreater{});
    const QueryScratch::HeapEntry top = s.heap_.back();
    s.heap_.pop_back();
    const NodeId node = top.node;
    s.state_[node] = kPopped;

    if (!is_virtual(node)) {
      result.items.push_back(ScoredTuple{node, top.score});
      if (result.items.size() == query.k) tie_cutoff = top.score;
    }

    // ∀-successors: free once every coarse in-neighbour popped.
    for (const NodeId succ : coarse_out_[node]) {
      touch(succ);
      DRLI_DCHECK(s.remaining_[succ] > 0);
      if (--s.remaining_[succ] == 0) try_enqueue(succ);
    }
    // ∃-successors: free once any fine in-neighbour popped.
    for (const NodeId succ : fine_out_[node]) {
      touch(succ);
      if (!s.fine_free_[succ]) {
        s.fine_free_[succ] = 1;
        try_enqueue(succ);
      }
    }
    // Chain neighbours (2-d zero layer).
    if (use_weight_table_ && chain_pos_[node] != kNoFineLayer) {
      const std::vector<TupleId>& chain = weight_table_.chain();
      const std::size_t pos = chain_pos_[node];
      if (pos > 0 && s.chain_locked_[chain[pos - 1]]) {
        s.chain_locked_[chain[pos - 1]] = 0;
        try_enqueue(chain[pos - 1]);
      }
      if (pos + 1 < chain.size() && s.chain_locked_[chain[pos + 1]]) {
        s.chain_locked_[chain[pos + 1]] = 0;
        try_enqueue(chain[pos + 1]);
      }
    }
  }
  // Equal-score tuples freed late (they were ∃- or chain-blocked behind
  // an equal-score node) pop out of id order; restore the canonical
  // (score, id) order and drop surplus ties beyond k.
  std::sort(result.items.begin(), result.items.end(), ResultOrderLess);
  if (result.items.size() > query.k) result.items.resize(query.k);
  if (stop == Termination::kComplete) {
    FinalizeComplete(result);
  } else {
    // Surplus ties dropped by the resize above score >= tie_cutoff >=
    // frontier, so they never invalidate the certified prefix.
    FinalizePartial(result, stop, frontier);
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<TopKResult> DualLayerIndex::QueryBatch(
    const std::vector<TopKQuery>& queries) const {
  std::vector<TopKResult> results(queries.size());
  if (queries.empty()) return results;
  const std::size_t workers =
      std::min(ParallelThreadCount(), queries.size());
  // One scratch per worker: Query itself is const, so per-worker
  // scratches are the only mutable state in the fan-out.
  std::vector<QueryScratch> scratches(workers);
  ParallelFor(
      queries.size(),
      [&](std::size_t i, std::size_t worker) {
        // GuardedQuery keeps a throwing worker from poisoning the whole
        // batch: the slot reports kError, the other queries proceed.
        results[i] = GuardedQuery(
            [&] { return Query(queries[i], &scratches[worker]); });
      },
      workers);
  return results;
}

}  // namespace drli
