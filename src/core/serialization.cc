#include "core/serialization.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "storage/mmap_file.h"

namespace drli {

namespace {

using snapshot::HeaderV2;
using snapshot::SectionEntry;
using snapshot::SectionKind;

constexpr std::size_t kNumSections = 12;  // SectionKind values 1..12
constexpr std::uint64_t kMaxNameBytes = 1u << 16;

constexpr std::array<SectionKind, kNumSections> kAllSections = {
    SectionKind::kName,          SectionKind::kPoints,
    SectionKind::kVirtualPoints, SectionKind::kCoarseOf,
    SectionKind::kFineOf,        SectionKind::kCoarseOffsets,
    SectionKind::kCoarseTargets, SectionKind::kFineOffsets,
    SectionKind::kFineTargets,   SectionKind::kLayerOffsets,
    SectionKind::kLayerMembers,  SectionKind::kWeightChain,
};

// Bytes per array element of a section (1 = opaque bytes).
std::uint64_t ElementSize(SectionKind kind) {
  switch (kind) {
    case SectionKind::kName:
      return 1;
    case SectionKind::kPoints:
    case SectionKind::kVirtualPoints:
      return sizeof(double);
    default:
      return sizeof(std::uint32_t);
  }
}

std::uint64_t AlignUp(std::uint64_t value) {
  const std::uint64_t a = snapshot::kSectionAlignment;
  return (value + a - 1) / a * a;
}

// ---------------------------------------------------------------------------
// v1 stream writers (legacy format, still emitted on request).

void WriteU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteDoubles(std::ostream& out, std::span<const double> v) {
  WriteU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}
void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
template <typename T>
void WriteIds(std::ostream& out, const std::vector<T>& v) {
  static_assert(sizeof(T) == sizeof(std::uint32_t));
  WriteU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}
template <typename T>
void WriteAdjacency(std::ostream& out, const std::vector<std::vector<T>>& v) {
  WriteU64(out, v.size());
  for (const auto& list : v) WriteIds(out, list);
}
// CSR graphs serialize in the same per-node list format as
// vector<vector> adjacency, so the v1 on-disk layout is unchanged.
void WriteAdjacency(std::ostream& out, const CsrGraph& graph) {
  WriteU64(out, graph.num_nodes());
  for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
    const auto list = graph[node];
    WriteU64(out, list.size());
    out.write(reinterpret_cast<const char*>(list.data()),
              static_cast<std::streamsize>(list.size() *
                                           sizeof(CsrGraph::NodeId)));
  }
}

// ---------------------------------------------------------------------------
// v1 bounded stream reader. Every length prefix is checked against the
// bytes actually left in the file BEFORE any allocation, so a corrupt
// prefix surfaces as `false` (-> Status::Corruption), never as
// bad_alloc / length_error from resize(n) on attacker-controlled n.

class BoundedReader {
 public:
  BoundedReader(std::istream& in, std::uint64_t file_size)
      : in_(in), remaining_(file_size) {}

  std::uint64_t remaining() const { return remaining_; }
  std::uint64_t consumed() const { return consumed_; }

  bool ReadU32(std::uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(std::uint64_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadDoubles(std::vector<double>* v) {
    std::uint64_t n = 0;
    if (!ReadU64(&n) || n > remaining_ / sizeof(double)) return false;
    v->resize(n);
    return ReadRaw(v->data(), n * sizeof(double));
  }
  bool ReadString(std::string* s) {
    std::uint64_t n = 0;
    if (!ReadU64(&n) || n > remaining_ || n > kMaxNameBytes) return false;
    s->resize(n);
    return ReadRaw(s->data(), n);
  }
  template <typename T>
  bool ReadIds(std::vector<T>* v) {
    static_assert(sizeof(T) == sizeof(std::uint32_t));
    std::uint64_t n = 0;
    if (!ReadU64(&n) || n > remaining_ / sizeof(T)) return false;
    v->resize(n);
    return ReadRaw(v->data(), n * sizeof(T));
  }
  template <typename T>
  bool ReadAdjacency(std::vector<std::vector<T>>* v) {
    std::uint64_t n = 0;
    // Each non-empty adjacency list costs at least its 8-byte prefix.
    if (!ReadU64(&n) || n > remaining_ / sizeof(std::uint64_t)) return false;
    v->resize(n);
    for (auto& list : *v) {
      if (!ReadIds(&list)) return false;
    }
    return true;
  }

  // Skips `bytes` without reading them (metadata-only inspection).
  bool Skip(std::uint64_t bytes) {
    if (bytes > remaining_) return false;
    in_.seekg(static_cast<std::streamoff>(bytes), std::ios::cur);
    if (!in_) return false;
    remaining_ -= bytes;
    consumed_ += bytes;
    return true;
  }

 private:
  bool ReadRaw(void* out, std::uint64_t bytes) {
    if (bytes > remaining_) return false;
    in_.read(static_cast<char*>(out),
             static_cast<std::streamsize>(bytes));
    if (!in_) return false;
    remaining_ -= bytes;
    consumed_ += bytes;
    return true;
  }

  std::istream& in_;
  std::uint64_t remaining_;
  std::uint64_t consumed_ = 0;
};

StatusOr<std::uint64_t> FileSize(std::istream& in, const std::string& path) {
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (!in || size < 0) return Status::IoError("cannot stat " + path);
  return static_cast<std::uint64_t>(size);
}

// Finishes a temp-file write: flush, close, verify, rename over `path`.
// The destination never holds a torn file -- on any failure the temp
// file is removed and `path` is untouched.
Status CommitAtomic(std::ofstream& out, const std::string& tmp,
                    const std::string& path) {
  out.flush();
  const bool flushed = bool(out);
  out.close();
  if (!flushed || out.fail()) {
    std::remove(tmp.c_str());
    return Status::IoError("write failure on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// v2 section indexing: header + table + per-section validation over a
// raw byte buffer (an mmap or an in-memory copy of the file).

struct SectionView {
  bool present = false;
  const std::uint8_t* data = nullptr;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
  bool crc_ok = false;
};

struct SectionMap {
  HeaderV2 header;
  std::array<SectionView, kNumSections + 1> by_kind;  // indexed by kind

  const SectionView& operator[](SectionKind kind) const {
    return by_kind[static_cast<std::uint32_t>(kind)];
  }
};

// Parses and validates the v2 container: header CRC, section-table
// CRC, per-section bounds/alignment/overlap, zeroed padding gaps, an
// exact file-size match, and the element-size/shape of every section.
// Payload CRCs are always computed into SectionView::crc_ok; with
// `strict_crc` a mismatch is also a Corruption (the loader), without
// it the caller reports per-section results (`drli inspect`).
Status IndexSections(const std::uint8_t* base, std::uint64_t size,
                     bool strict_crc, SectionMap* map) {
  if (size < sizeof(HeaderV2)) {
    return Status::Corruption("file smaller than snapshot header");
  }
  HeaderV2& h = map->header;
  std::memcpy(&h, base, sizeof(h));
  if (h.magic != snapshot::kMagic) return Status::Corruption("bad magic");
  if (h.version != snapshot::kVersionV2) {
    return Status::Corruption("unsupported snapshot version");
  }
  if (snapshot::ComputeHeaderCrc(h) != h.header_crc) {
    return Status::Corruption("header CRC mismatch");
  }
  if (h.reserved != 0) return Status::Corruption("nonzero header reserved");
  if ((h.flags & ~snapshot::kFlagWeightTable) != 0) {
    return Status::Corruption("unknown header flags");
  }
  if (h.dim == 0 || h.dim > snapshot::kMaxDim) {
    return Status::Corruption("implausible dimensionality");
  }
  if (h.num_sections == 0 || h.num_sections > snapshot::kMaxSections) {
    return Status::Corruption("implausible section count");
  }
  constexpr std::uint64_t kMaxNodes =
      std::numeric_limits<std::uint32_t>::max();
  if (h.num_points > kMaxNodes || h.num_virtual > kMaxNodes ||
      h.num_points + h.num_virtual > kMaxNodes) {
    return Status::Corruption("node count overflows 32-bit ids");
  }
  if (h.section_table_offset != sizeof(HeaderV2)) {
    return Status::Corruption("section table not adjacent to header");
  }
  const std::uint64_t table_bytes =
      std::uint64_t{h.num_sections} * sizeof(SectionEntry);
  if (table_bytes > size - sizeof(HeaderV2)) {
    return Status::Corruption("section table out of range");
  }
  if (Crc32c(base + h.section_table_offset, table_bytes) !=
      h.section_table_crc) {
    return Status::Corruption("section table CRC mismatch");
  }

  std::vector<SectionEntry> entries(h.num_sections);
  std::memcpy(entries.data(), base + h.section_table_offset, table_bytes);
  std::sort(entries.begin(), entries.end(),
            [](const SectionEntry& a, const SectionEntry& b) {
              return a.offset < b.offset;
            });

  std::uint64_t cursor = h.section_table_offset + table_bytes;
  for (const SectionEntry& entry : entries) {
    if (entry.kind == 0 || entry.kind > kNumSections) {
      return Status::Corruption("unknown section kind");
    }
    const auto kind = static_cast<SectionKind>(entry.kind);
    SectionView& view = map->by_kind[entry.kind];
    if (view.present) {
      return Status::Corruption(std::string("duplicate section ") +
                                snapshot::SectionKindName(kind));
    }
    if (entry.reserved != 0 || entry.reserved2 != 0) {
      return Status::Corruption("nonzero section reserved field");
    }
    if (entry.offset % snapshot::kSectionAlignment != 0) {
      return Status::Corruption(std::string("misaligned section ") +
                                snapshot::SectionKindName(kind));
    }
    if (entry.offset > size || entry.length > size - entry.offset) {
      return Status::Corruption(std::string("section out of range: ") +
                                snapshot::SectionKindName(kind));
    }
    if (entry.length % ElementSize(kind) != 0) {
      return Status::Corruption(std::string("ragged section length: ") +
                                snapshot::SectionKindName(kind));
    }
    if (entry.offset < cursor) {
      return Status::Corruption("overlapping sections");
    }
    for (std::uint64_t i = cursor; i < entry.offset; ++i) {
      if (base[i] != 0) {
        return Status::Corruption("nonzero padding between sections");
      }
    }
    cursor = entry.offset + entry.length;

    view.present = true;
    view.data = base + entry.offset;
    view.offset = entry.offset;
    view.length = entry.length;
    view.crc = entry.crc;
    view.crc_ok = Crc32c(view.data, view.length) == entry.crc;
    if (strict_crc && !view.crc_ok) {
      return Status::Corruption(std::string("section CRC mismatch: ") +
                                snapshot::SectionKindName(kind));
    }
  }
  if (cursor != size) {
    return Status::Corruption("file size disagrees with section table");
  }
  for (SectionKind kind : kAllSections) {
    if (!(*map)[kind].present) {
      return Status::Corruption(std::string("missing section ") +
                                snapshot::SectionKindName(kind));
    }
  }

  // Shape checks tying section lengths to the header's geometry.
  const auto expect_len = [&](SectionKind kind,
                              std::uint64_t elems) -> Status {
    const unsigned __int128 want =
        static_cast<unsigned __int128>(elems) * ElementSize(kind);
    if (want != (*map)[kind].length) {
      return Status::Corruption(std::string("wrong section size: ") +
                                snapshot::SectionKindName(kind));
    }
    return Status::Ok();
  };
  const std::uint64_t total = h.num_points + h.num_virtual;
  if (Status s = expect_len(SectionKind::kPoints, h.num_points * h.dim);
      !s.ok()) {
    return s;
  }
  if (Status s =
          expect_len(SectionKind::kVirtualPoints, h.num_virtual * h.dim);
      !s.ok()) {
    return s;
  }
  if (Status s = expect_len(SectionKind::kCoarseOf, total); !s.ok()) return s;
  if (Status s = expect_len(SectionKind::kFineOf, total); !s.ok()) return s;
  if (Status s = expect_len(SectionKind::kCoarseOffsets, total + 1); !s.ok()) {
    return s;
  }
  if (Status s = expect_len(SectionKind::kFineOffsets, total + 1); !s.ok()) {
    return s;
  }
  if ((*map)[SectionKind::kName].length > kMaxNameBytes) {
    return Status::Corruption("implausible name length");
  }
  if ((*map)[SectionKind::kLayerOffsets].length < sizeof(std::uint32_t)) {
    return Status::Corruption("empty layer offsets section");
  }
  return Status::Ok();
}

template <typename T>
std::span<const T> SectionSpan(const SectionView& view) {
  return std::span<const T>(reinterpret_cast<const T*>(view.data),
                            view.length / sizeof(T));
}

// Pre-validates CSR shape so CsrGraph::FromViews / FromVectors
// preconditions hold on untrusted data (their DRLI_CHECKs must never
// fire on file input).
Status ValidateCsrShape(std::span<const std::uint32_t> offsets,
                        std::uint64_t num_targets, std::uint64_t total,
                        const char* what) {
  if (offsets.size() != total + 1) {
    return Status::Corruption(std::string(what) + " CSR offsets size");
  }
  if (offsets.front() != 0 || offsets.back() != num_targets) {
    return Status::Corruption(std::string(what) + " CSR bounds corrupt");
  }
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption(std::string(what) +
                                " CSR offsets not monotone");
    }
  }
  return Status::Ok();
}

}  // namespace

// Friend of DualLayerIndex: reads/writes its private representation.
class DualLayerSerializer {
 public:
  // ------------------------------------------------------------------ save

  static Status SaveV1(const DualLayerIndex& index, const std::string& path) {
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");

    WriteU32(out, snapshot::kMagic);
    WriteU32(out, snapshot::kVersionV1);
    WriteString(out, index.name_);
    WriteU32(out, static_cast<std::uint32_t>(index.points_.dim()));
    WriteDoubles(out, index.points_.raw());
    WriteDoubles(out, index.virtual_points_.raw());
    WriteIds(out, index.coarse_of_);
    WriteIds(out, index.fine_of_);
    WriteAdjacency(out, index.coarse_out_);
    WriteAdjacency(out, index.fine_out_);
    WriteAdjacency(out, index.coarse_layers_);
    WriteU32(out, index.use_weight_table_ ? 1 : 0);
    WriteIds(out, index.weight_table_.chain());

    return CommitAtomic(out, tmp, path);
  }

  static Status SaveV2(const DualLayerIndex& index, const std::string& path) {
    // Flatten the per-layer member lists into offsets + one id array.
    std::vector<std::uint32_t> layer_offsets;
    std::vector<TupleId> layer_members;
    layer_offsets.reserve(index.coarse_layers_.size() + 1);
    layer_offsets.push_back(0);
    for (const auto& layer : index.coarse_layers_) {
      layer_members.insert(layer_members.end(), layer.begin(), layer.end());
      layer_offsets.push_back(
          static_cast<std::uint32_t>(layer_members.size()));
    }

    const std::span<const double> points_raw = index.points_.raw();
    const std::span<const double> virtual_raw = index.virtual_points_.raw();
    const auto coarse_offsets = index.coarse_out_.offsets();
    const auto coarse_targets = index.coarse_out_.targets();
    const auto fine_offsets = index.fine_out_.offsets();
    const auto fine_targets = index.fine_out_.targets();
    const std::vector<TupleId>& chain = index.weight_table_.chain();

    struct Payload {
      SectionKind kind;
      const void* data;
      std::uint64_t bytes;
    };
    const std::array<Payload, kNumSections> payloads = {{
        {SectionKind::kName, index.name_.data(), index.name_.size()},
        {SectionKind::kPoints, points_raw.data(),
         points_raw.size() * sizeof(double)},
        {SectionKind::kVirtualPoints, virtual_raw.data(),
         virtual_raw.size() * sizeof(double)},
        {SectionKind::kCoarseOf, index.coarse_of_.data(),
         index.coarse_of_.size() * sizeof(std::uint32_t)},
        {SectionKind::kFineOf, index.fine_of_.data(),
         index.fine_of_.size() * sizeof(std::uint32_t)},
        {SectionKind::kCoarseOffsets, coarse_offsets.data(),
         coarse_offsets.size() * sizeof(std::uint32_t)},
        {SectionKind::kCoarseTargets, coarse_targets.data(),
         coarse_targets.size() * sizeof(std::uint32_t)},
        {SectionKind::kFineOffsets, fine_offsets.data(),
         fine_offsets.size() * sizeof(std::uint32_t)},
        {SectionKind::kFineTargets, fine_targets.data(),
         fine_targets.size() * sizeof(std::uint32_t)},
        {SectionKind::kLayerOffsets, layer_offsets.data(),
         layer_offsets.size() * sizeof(std::uint32_t)},
        {SectionKind::kLayerMembers, layer_members.data(),
         layer_members.size() * sizeof(std::uint32_t)},
        {SectionKind::kWeightChain, chain.data(),
         chain.size() * sizeof(std::uint32_t)},
    }};

    HeaderV2 header;
    header.dim = static_cast<std::uint32_t>(index.points_.dim());
    header.flags = index.use_weight_table_ ? snapshot::kFlagWeightTable : 0;
    header.num_points = index.points_.size();
    header.num_virtual = index.virtual_points_.size();
    header.num_sections = kNumSections;
    header.section_table_offset = sizeof(HeaderV2);

    std::array<SectionEntry, kNumSections> entries;
    std::uint64_t cursor =
        sizeof(HeaderV2) + kNumSections * sizeof(SectionEntry);
    for (std::size_t i = 0; i < kNumSections; ++i) {
      const Payload& p = payloads[i];
      SectionEntry& entry = entries[i];
      entry.kind = static_cast<std::uint32_t>(p.kind);
      entry.offset = AlignUp(cursor);
      entry.length = p.bytes;
      entry.crc = Crc32c(p.data, p.bytes);
      cursor = entry.offset + entry.length;
    }
    header.section_table_crc =
        Crc32c(entries.data(), sizeof(SectionEntry) * entries.size());
    header.header_crc = snapshot::ComputeHeaderCrc(header);

    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(entries.data()),
              static_cast<std::streamsize>(sizeof(SectionEntry) *
                                           entries.size()));
    std::uint64_t written =
        sizeof(HeaderV2) + kNumSections * sizeof(SectionEntry);
    static constexpr char kZeros[snapshot::kSectionAlignment] = {};
    for (std::size_t i = 0; i < kNumSections; ++i) {
      const std::uint64_t pad = entries[i].offset - written;
      out.write(kZeros, static_cast<std::streamsize>(pad));
      out.write(static_cast<const char*>(payloads[i].data),
                static_cast<std::streamsize>(payloads[i].bytes));
      written = entries[i].offset + payloads[i].bytes;
    }
    return CommitAtomic(out, tmp, path);
  }

  // ------------------------------------------------------------------ load

  static StatusOr<DualLayerIndex> LoadV1(std::istream& in,
                                         std::uint64_t file_size,
                                         const std::string& path) {
    BoundedReader reader(in, file_size);
    std::uint32_t magic = 0, version = 0;
    if (!reader.ReadU32(&magic) || magic != snapshot::kMagic ||
        !reader.ReadU32(&version) || version != snapshot::kVersionV1) {
      return Status::Corruption("bad v1 header in " + path);
    }

    DualLayerIndex index;
    std::uint32_t dim = 0;
    std::vector<double> points_raw;
    std::vector<double> virtual_raw;
    std::uint32_t use_table = 0;
    std::vector<TupleId> chain;
    std::vector<std::vector<CsrGraph::NodeId>> coarse_adj;
    std::vector<std::vector<CsrGraph::NodeId>> fine_adj;
    std::vector<std::vector<TupleId>> coarse_layers;
    if (!reader.ReadString(&index.name_) || !reader.ReadU32(&dim) ||
        dim == 0 || dim > snapshot::kMaxDim ||
        !reader.ReadDoubles(&points_raw) ||
        !reader.ReadDoubles(&virtual_raw) ||
        !reader.ReadIds(&index.coarse_of_) ||
        !reader.ReadIds(&index.fine_of_) ||
        !reader.ReadAdjacency(&coarse_adj) ||
        !reader.ReadAdjacency(&fine_adj) ||
        !reader.ReadAdjacency(&coarse_layers) ||
        !reader.ReadU32(&use_table) || !reader.ReadIds(&chain)) {
      return Status::Corruption("truncated or corrupt index file " + path);
    }
    if (points_raw.size() % dim != 0 || virtual_raw.size() % dim != 0) {
      return Status::Corruption("point buffer not divisible by dim");
    }

    index.points_ = PointSet::FromVector(dim, std::move(points_raw));
    index.virtual_points_ = PointSet::FromVector(dim, std::move(virtual_raw));
    const std::size_t total = index.num_nodes();
    if (coarse_adj.size() != total || fine_adj.size() != total) {
      return Status::Corruption("node array size mismatch");
    }
    // Targets are range-checked in FinishLoadedIndex, but 32-bit CSR
    // offsets must not overflow before that.
    const auto count_edges = [](const auto& adj) {
      std::uint64_t edges = 0;
      for (const auto& list : adj) edges += list.size();
      return edges;
    };
    if (count_edges(coarse_adj) > std::numeric_limits<std::uint32_t>::max() ||
        count_edges(fine_adj) > std::numeric_limits<std::uint32_t>::max()) {
      return Status::Corruption("edge count overflows CSR offsets");
    }
    index.coarse_out_ = CsrGraph::FromAdjacency(coarse_adj);
    index.fine_out_ = CsrGraph::FromAdjacency(fine_adj);
    index.coarse_layers_ = std::move(coarse_layers);
    return FinishLoadedIndex(std::move(index), use_table != 0,
                             std::move(chain));
  }

  static StatusOr<DualLayerIndex> LoadV2(
      const std::uint8_t* base, std::uint64_t size,
      std::shared_ptr<const void> keepalive) {
    SectionMap map;
    if (Status s = IndexSections(base, size, /*strict_crc=*/true, &map);
        !s.ok()) {
      return s;
    }
    const HeaderV2& h = map.header;
    const std::uint64_t total = h.num_points + h.num_virtual;

    const auto coarse_offsets =
        SectionSpan<std::uint32_t>(map[SectionKind::kCoarseOffsets]);
    const auto coarse_targets =
        SectionSpan<CsrGraph::NodeId>(map[SectionKind::kCoarseTargets]);
    const auto fine_offsets =
        SectionSpan<std::uint32_t>(map[SectionKind::kFineOffsets]);
    const auto fine_targets =
        SectionSpan<CsrGraph::NodeId>(map[SectionKind::kFineTargets]);
    if (Status s = ValidateCsrShape(coarse_offsets, coarse_targets.size(),
                                    total, "coarse");
        !s.ok()) {
      return s;
    }
    if (Status s =
            ValidateCsrShape(fine_offsets, fine_targets.size(), total, "fine");
        !s.ok()) {
      return s;
    }
    const auto layer_offsets =
        SectionSpan<std::uint32_t>(map[SectionKind::kLayerOffsets]);
    const auto layer_members =
        SectionSpan<TupleId>(map[SectionKind::kLayerMembers]);
    if (Status s = ValidateCsrShape(layer_offsets, layer_members.size(),
                                    layer_offsets.size() - 1, "layer");
        !s.ok()) {
      return s;
    }

    DualLayerIndex index;
    const SectionView& name = map[SectionKind::kName];
    index.name_.assign(reinterpret_cast<const char*>(name.data),
                       name.length);
    const auto points = SectionSpan<double>(map[SectionKind::kPoints]);
    const auto virtuals =
        SectionSpan<double>(map[SectionKind::kVirtualPoints]);
    if (keepalive != nullptr) {
      // Zero-copy: the point and adjacency payloads stay in the mapped
      // file; views keep the mapping alive.
      index.points_ =
          PointSet::FromView(h.dim, points.data(), points.size(), keepalive);
      index.virtual_points_ = PointSet::FromView(h.dim, virtuals.data(),
                                                 virtuals.size(), keepalive);
      index.coarse_out_ =
          CsrGraph::FromViews(coarse_offsets, coarse_targets, keepalive);
      index.fine_out_ =
          CsrGraph::FromViews(fine_offsets, fine_targets, keepalive);
    } else {
      index.points_ = PointSet::FromVector(
          h.dim, std::vector<double>(points.begin(), points.end()));
      index.virtual_points_ = PointSet::FromVector(
          h.dim, std::vector<double>(virtuals.begin(), virtuals.end()));
      index.coarse_out_ = CsrGraph::FromVectors(
          std::vector<std::uint32_t>(coarse_offsets.begin(),
                                     coarse_offsets.end()),
          std::vector<CsrGraph::NodeId>(coarse_targets.begin(),
                                        coarse_targets.end()));
      index.fine_out_ = CsrGraph::FromVectors(
          std::vector<std::uint32_t>(fine_offsets.begin(),
                                     fine_offsets.end()),
          std::vector<CsrGraph::NodeId>(fine_targets.begin(),
                                        fine_targets.end()));
    }
    const auto coarse_of = SectionSpan<std::uint32_t>(
        map[SectionKind::kCoarseOf]);
    const auto fine_of = SectionSpan<std::uint32_t>(map[SectionKind::kFineOf]);
    index.coarse_of_.assign(coarse_of.begin(), coarse_of.end());
    index.fine_of_.assign(fine_of.begin(), fine_of.end());
    index.coarse_layers_.resize(layer_offsets.size() - 1);
    for (std::size_t layer = 0; layer + 1 < layer_offsets.size(); ++layer) {
      index.coarse_layers_[layer].assign(
          layer_members.begin() + layer_offsets[layer],
          layer_members.begin() + layer_offsets[layer + 1]);
    }
    const auto chain_span =
        SectionSpan<TupleId>(map[SectionKind::kWeightChain]);
    std::vector<TupleId> chain(chain_span.begin(), chain_span.end());
    return FinishLoadedIndex(std::move(index),
                             (h.flags & snapshot::kFlagWeightTable) != 0,
                             std::move(chain));
  }

  // Shared tail of both loaders: range-checks everything that could
  // index out of bounds at query time, then recomputes derived state.
  static StatusOr<DualLayerIndex> FinishLoadedIndex(
      DualLayerIndex index, bool use_table, std::vector<TupleId> chain) {
    const std::size_t n = index.points_.size();
    const std::size_t total = index.num_nodes();
    if (index.coarse_of_.size() != total ||
        index.fine_of_.size() != total ||
        index.coarse_out_.num_nodes() != total ||
        index.fine_out_.num_nodes() != total) {
      return Status::Corruption("node array size mismatch");
    }
    // Layer assignments are indices into per-node bookkeeping; anything
    // >= total can never be valid and would corrupt LayerGroups().
    for (std::size_t node = 0; node < total; ++node) {
      if (index.coarse_of_[node] >= total || index.fine_of_[node] >= total) {
        return Status::Corruption("layer assignment out of range");
      }
    }
    // Derived state is recomputed rather than stored; the recount
    // doubles as the edge-target range check.
    index.coarse_in_degree_.assign(total, 0);
    index.has_fine_in_.assign(total, 0);
    for (const CsrGraph::NodeId target : index.coarse_out_.targets()) {
      if (target >= total) return Status::Corruption("edge out of range");
      ++index.coarse_in_degree_[target];
    }
    for (const CsrGraph::NodeId target : index.fine_out_.targets()) {
      if (target >= total) return Status::Corruption("edge out of range");
      index.has_fine_in_[target] = 1;
    }
    // The coarse layer lists must partition the real tuples and agree
    // with coarse_of_ (CheckIndex repeats this audit on live indexes).
    std::vector<std::uint8_t> seen(n, 0);
    std::size_t members = 0;
    for (std::size_t layer = 0; layer < index.coarse_layers_.size();
         ++layer) {
      for (const TupleId id : index.coarse_layers_[layer]) {
        if (id >= n) {
          return Status::Corruption("coarse layer member out of range");
        }
        if (seen[id] != 0) {
          return Status::Corruption("tuple listed in two coarse layers");
        }
        if (index.coarse_of_[id] != layer) {
          return Status::Corruption(
              "coarse layer membership disagrees with coarse_of");
        }
        seen[id] = 1;
        ++members;
      }
    }
    if (members != n) {
      return Status::Corruption("coarse layers do not cover the relation");
    }

    index.chain_pos_.assign(total, DualLayerIndex::kNoFineLayer);
    if (use_table) {
      // ValidateChain covers dim == 2, id ranges, descent and strict
      // convexity -- exactly Build's CHECKed preconditions.
      if (!WeightRangeTable::ValidateChain(index.points_, chain)) {
        return Status::Corruption("invalid 2-d weight-table chain");
      }
      index.use_weight_table_ = true;
      for (std::size_t pos = 0; pos < chain.size(); ++pos) {
        index.chain_pos_[chain[pos]] = static_cast<std::uint32_t>(pos);
      }
      index.weight_table_ =
          WeightRangeTable::Build(index.points_, std::move(chain));
    }
    index.FinalizeInitialNodes();

    index.stats_.num_coarse_layers = index.coarse_layers_.size();
    index.stats_.num_virtual = index.virtual_points_.size();
    return index;
  }
};

Status SaveDualLayerIndex(const DualLayerIndex& index, const std::string& path,
                          const SnapshotSaveOptions& options) {
  switch (options.format_version) {
    case snapshot::kVersionV1:
      return DualLayerSerializer::SaveV1(index, path);
    case snapshot::kVersionV2:
      return DualLayerSerializer::SaveV2(index, path);
    default:
      return Status::InvalidArgument(
          "unknown snapshot format version " +
          std::to_string(options.format_version));
  }
}

StatusOr<DualLayerIndex> LoadDualLayerIndex(
    const std::string& path, const SnapshotLoadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  auto size = FileSize(in, path);
  if (!size.ok()) return size.status();

  std::uint32_t magic = 0, version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != snapshot::kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  in.seekg(0, std::ios::beg);

  if (version == snapshot::kVersionV1) {
    return DualLayerSerializer::LoadV1(in, size.value(), path);
  }
  if (version != snapshot::kVersionV2) {
    return Status::Corruption("unsupported version in " + path);
  }
  in.close();

  if (options.prefer_mmap) {
    auto mapped = MmapFile::Open(path);
    if (mapped.ok()) {
      const std::shared_ptr<MmapFile> file = mapped.value();
      return DualLayerSerializer::LoadV2(file->data(), file->size(), file);
    }
    // Fall through to the owning read (e.g. filesystems without mmap).
  }
  auto bytes = MmapFile::ReadFileContents(path);
  if (!bytes.ok()) return bytes.status();
  return DualLayerSerializer::LoadV2(bytes.value().data(),
                                     bytes.value().size(), nullptr);
}

namespace {

// v1 metadata walk: skips through the stream recording segment
// boundaries, with every length bounded before use.
StatusOr<SnapshotInfo> InspectV1(std::istream& in, std::uint64_t file_size) {
  SnapshotInfo info;
  info.version = snapshot::kVersionV1;
  info.file_size = file_size;
  BoundedReader reader(in, file_size);

  std::uint32_t magic = 0, version = 0;
  if (!reader.ReadU32(&magic) || !reader.ReadU32(&version)) {
    return Status::Corruption("truncated v1 header");
  }

  const auto begin_row = [&](const char* name) {
    SnapshotSectionInfo row;
    row.name = name;
    row.offset = reader.consumed();
    return row;
  };
  const auto end_row = [&](SnapshotSectionInfo row) {
    row.length = reader.consumed() - row.offset;
    info.sections.push_back(std::move(row));
  };
  const auto skip_array = [&](std::uint64_t elem_size,
                              std::uint64_t* count) -> bool {
    std::uint64_t n = 0;
    if (!reader.ReadU64(&n) || n > reader.remaining() / elem_size) {
      return false;
    }
    if (count != nullptr) *count = n;
    return reader.Skip(n * elem_size);
  };

  SnapshotSectionInfo row = begin_row("name");
  std::uint64_t count = 0;
  if (!skip_array(1, &count)) return Status::Corruption("corrupt v1 name");
  end_row(std::move(row));

  std::uint32_t dim = 0;
  if (!reader.ReadU32(&dim) || dim == 0 || dim > snapshot::kMaxDim) {
    return Status::Corruption("corrupt v1 dim");
  }
  info.dim = dim;

  const char* point_sections[] = {"points", "virtual_points"};
  for (const char* name : point_sections) {
    row = begin_row(name);
    if (!skip_array(sizeof(double), &count)) {
      return Status::Corruption(std::string("corrupt v1 ") + name);
    }
    end_row(std::move(row));
    if (count % dim != 0) {
      return Status::Corruption("point buffer not divisible by dim");
    }
    (name == point_sections[0] ? info.num_points : info.num_virtual) =
        count / dim;
  }
  const char* id_sections[] = {"coarse_of", "fine_of"};
  for (const char* name : id_sections) {
    row = begin_row(name);
    if (!skip_array(sizeof(std::uint32_t), nullptr)) {
      return Status::Corruption(std::string("corrupt v1 ") + name);
    }
    end_row(std::move(row));
  }
  const char* adjacency_sections[] = {"coarse_adjacency", "fine_adjacency",
                                      "coarse_layers"};
  for (const char* name : adjacency_sections) {
    row = begin_row(name);
    std::uint64_t lists = 0;
    if (!reader.ReadU64(&lists) ||
        lists > reader.remaining() / sizeof(std::uint64_t)) {
      return Status::Corruption(std::string("corrupt v1 ") + name);
    }
    for (std::uint64_t i = 0; i < lists; ++i) {
      if (!skip_array(sizeof(std::uint32_t), nullptr)) {
        return Status::Corruption(std::string("corrupt v1 ") + name);
      }
    }
    end_row(std::move(row));
  }
  row = begin_row("weight_chain");
  std::uint32_t use_table = 0;
  if (!reader.ReadU32(&use_table) ||
      !skip_array(sizeof(std::uint32_t), nullptr)) {
    return Status::Corruption("corrupt v1 weight chain");
  }
  end_row(std::move(row));
  info.use_weight_table = use_table != 0;
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after v1 stream");
  }
  return info;
}

}  // namespace

StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  auto size = FileSize(in, path);
  if (!size.ok()) return size.status();

  std::uint32_t magic = 0, version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != snapshot::kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  in.seekg(0, std::ios::beg);
  if (version == snapshot::kVersionV1) {
    return InspectV1(in, size.value());
  }
  if (version != snapshot::kVersionV2) {
    return Status::Corruption("unsupported version in " + path);
  }
  in.close();

  auto mapped = MmapFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  const std::shared_ptr<MmapFile> file = mapped.value();
  SectionMap map;
  if (Status s =
          IndexSections(file->data(), file->size(), /*strict_crc=*/false,
                        &map);
      !s.ok()) {
    return s;
  }
  SnapshotInfo info;
  info.version = snapshot::kVersionV2;
  info.dim = map.header.dim;
  info.num_points = map.header.num_points;
  info.num_virtual = map.header.num_virtual;
  info.use_weight_table =
      (map.header.flags & snapshot::kFlagWeightTable) != 0;
  info.file_size = file->size();
  std::vector<SnapshotSectionInfo> rows;
  for (SectionKind kind : kAllSections) {
    const SectionView& view = map[kind];
    SnapshotSectionInfo row;
    row.kind = static_cast<std::uint32_t>(kind);
    row.name = snapshot::SectionKindName(kind);
    row.offset = view.offset;
    row.length = view.length;
    row.crc = view.crc;
    row.crc_ok = view.crc_ok;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const SnapshotSectionInfo& a, const SnapshotSectionInfo& b) {
              return a.offset < b.offset;
            });
  info.sections = std::move(rows);
  return info;
}

}  // namespace drli
