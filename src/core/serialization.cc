#include "core/serialization.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace drli {

namespace {

constexpr std::uint32_t kMagic = 0x494c5244;  // "DRLI"
constexpr std::uint32_t kVersion = 1;

void WriteU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteDoubles(std::ostream& out, const std::vector<double>& v) {
  WriteU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}
void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
template <typename T>
void WriteIds(std::ostream& out, const std::vector<T>& v) {
  static_assert(sizeof(T) == sizeof(std::uint32_t));
  WriteU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}
template <typename T>
void WriteAdjacency(std::ostream& out, const std::vector<std::vector<T>>& v) {
  WriteU64(out, v.size());
  for (const auto& list : v) WriteIds(out, list);
}
// CSR graphs serialize in the same per-node list format as
// vector<vector> adjacency, so the on-disk layout is unchanged.
void WriteAdjacency(std::ostream& out, const CsrGraph& graph) {
  WriteU64(out, graph.num_nodes());
  for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
    const auto list = graph[node];
    WriteU64(out, list.size());
    out.write(reinterpret_cast<const char*>(list.data()),
              static_cast<std::streamsize>(list.size() *
                                           sizeof(CsrGraph::NodeId)));
  }
}

bool ReadU32(std::istream& in, std::uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return bool(in);
}
bool ReadU64(std::istream& in, std::uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return bool(in);
}
bool ReadDoubles(std::istream& in, std::vector<double>* v) {
  std::uint64_t n = 0;
  if (!ReadU64(in, &n)) return false;
  v->resize(n);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  return bool(in);
}
bool ReadString(std::istream& in, std::string* s) {
  std::uint64_t n = 0;
  if (!ReadU64(in, &n)) return false;
  s->resize(n);
  in.read(s->data(), static_cast<std::streamsize>(n));
  return bool(in);
}
template <typename T>
bool ReadIds(std::istream& in, std::vector<T>* v) {
  static_assert(sizeof(T) == sizeof(std::uint32_t));
  std::uint64_t n = 0;
  if (!ReadU64(in, &n)) return false;
  v->resize(n);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return bool(in);
}
template <typename T>
bool ReadAdjacency(std::istream& in, std::vector<std::vector<T>>* v) {
  std::uint64_t n = 0;
  if (!ReadU64(in, &n)) return false;
  v->resize(n);
  for (auto& list : *v) {
    if (!ReadIds(in, &list)) return false;
  }
  return true;
}

}  // namespace

// Friend of DualLayerIndex: reads/writes its private representation.
class DualLayerSerializer {
 public:
  static Status Save(const DualLayerIndex& index, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::IoError("cannot open " + path + " for writing");

    WriteU32(out, kMagic);
    WriteU32(out, kVersion);
    WriteString(out, index.name_);
    WriteU32(out, static_cast<std::uint32_t>(index.points_.dim()));
    WriteDoubles(out, index.points_.raw());
    WriteDoubles(out, index.virtual_points_.raw());
    WriteIds(out, index.coarse_of_);
    WriteIds(out, index.fine_of_);
    WriteAdjacency(out, index.coarse_out_);
    WriteAdjacency(out, index.fine_out_);
    WriteAdjacency(out, index.coarse_layers_);
    WriteU32(out, index.use_weight_table_ ? 1 : 0);
    WriteIds(out, index.weight_table_.chain());

    if (!out) return Status::IoError("write failure on " + path);
    return Status::Ok();
  }

  static StatusOr<DualLayerIndex> Load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot open " + path);

    std::uint32_t magic = 0, version = 0;
    if (!ReadU32(in, &magic) || magic != kMagic) {
      return Status::Corruption("bad magic in " + path);
    }
    if (!ReadU32(in, &version) || version != kVersion) {
      return Status::Corruption("unsupported version in " + path);
    }

    DualLayerIndex index;
    std::uint32_t dim = 0;
    std::vector<double> points_raw;
    std::vector<double> virtual_raw;
    std::uint32_t use_table = 0;
    std::vector<TupleId> chain;
    std::vector<std::vector<CsrGraph::NodeId>> coarse_adj;
    std::vector<std::vector<CsrGraph::NodeId>> fine_adj;
    if (!ReadString(in, &index.name_) || !ReadU32(in, &dim) || dim == 0 ||
        !ReadDoubles(in, &points_raw) || !ReadDoubles(in, &virtual_raw) ||
        !ReadIds(in, &index.coarse_of_) || !ReadIds(in, &index.fine_of_) ||
        !ReadAdjacency(in, &coarse_adj) || !ReadAdjacency(in, &fine_adj) ||
        !ReadAdjacency(in, &index.coarse_layers_) ||
        !ReadU32(in, &use_table) || !ReadIds(in, &chain)) {
      return Status::Corruption("truncated index file " + path);
    }
    if (points_raw.size() % dim != 0 || virtual_raw.size() % dim != 0) {
      return Status::Corruption("point buffer not divisible by dim");
    }

    index.points_ = PointSet(dim);
    for (std::size_t i = 0; i < points_raw.size(); i += dim) {
      index.points_.Add(PointView(points_raw.data() + i, dim));
    }
    index.virtual_points_ = PointSet(dim);
    for (std::size_t i = 0; i < virtual_raw.size(); i += dim) {
      index.virtual_points_.Add(PointView(virtual_raw.data() + i, dim));
    }

    const std::size_t total = index.num_nodes();
    if (index.coarse_of_.size() != total || index.fine_of_.size() != total ||
        coarse_adj.size() != total || fine_adj.size() != total) {
      return Status::Corruption("node array size mismatch");
    }

    // Derived state is recomputed rather than stored.
    index.coarse_in_degree_.assign(total, 0);
    index.has_fine_in_.assign(total, 0);
    for (const auto& edges : coarse_adj) {
      for (const auto target : edges) {
        if (target >= total) return Status::Corruption("edge out of range");
        ++index.coarse_in_degree_[target];
      }
    }
    for (const auto& edges : fine_adj) {
      for (const auto target : edges) {
        if (target >= total) return Status::Corruption("edge out of range");
        index.has_fine_in_[target] = 1;
      }
    }
    index.coarse_out_ = CsrGraph::FromAdjacency(coarse_adj);
    index.fine_out_ = CsrGraph::FromAdjacency(fine_adj);
    index.chain_pos_.assign(total, DualLayerIndex::kNoFineLayer);
    if (use_table != 0) {
      index.use_weight_table_ = true;
      for (std::size_t pos = 0; pos < chain.size(); ++pos) {
        if (chain[pos] >= index.points_.size()) {
          return Status::Corruption("chain id out of range");
        }
        index.chain_pos_[chain[pos]] = static_cast<std::uint32_t>(pos);
      }
      index.weight_table_ =
          WeightRangeTable::Build(index.points_, std::move(chain));
    }
    index.FinalizeInitialNodes();

    index.stats_.num_coarse_layers = index.coarse_layers_.size();
    index.stats_.num_virtual = index.virtual_points_.size();
    return index;
  }
};

Status SaveDualLayerIndex(const DualLayerIndex& index,
                          const std::string& path) {
  return DualLayerSerializer::Save(index, path);
}

StatusOr<DualLayerIndex> LoadDualLayerIndex(const std::string& path) {
  return DualLayerSerializer::Load(path);
}

}  // namespace drli
