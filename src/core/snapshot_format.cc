#include "core/snapshot_format.h"

#include <cstring>

#include "common/crc32c.h"

namespace drli {
namespace snapshot {

const char* SectionKindName(SectionKind kind) {
  switch (kind) {
    case SectionKind::kName:
      return "name";
    case SectionKind::kPoints:
      return "points";
    case SectionKind::kVirtualPoints:
      return "virtual_points";
    case SectionKind::kCoarseOf:
      return "coarse_of";
    case SectionKind::kFineOf:
      return "fine_of";
    case SectionKind::kCoarseOffsets:
      return "coarse_offsets";
    case SectionKind::kCoarseTargets:
      return "coarse_targets";
    case SectionKind::kFineOffsets:
      return "fine_offsets";
    case SectionKind::kFineTargets:
      return "fine_targets";
    case SectionKind::kLayerOffsets:
      return "layer_offsets";
    case SectionKind::kLayerMembers:
      return "layer_members";
    case SectionKind::kWeightChain:
      return "weight_chain";
  }
  return "?";
}

std::uint32_t ComputeHeaderCrc(const HeaderV2& header) {
  HeaderV2 copy;
  std::memcpy(&copy, &header, sizeof(copy));
  copy.header_crc = 0;
  return Crc32c(&copy, sizeof(copy));
}

}  // namespace snapshot
}  // namespace drli
