// Exact 2-d weight-space analysis: the Section V-A construction pushed
// from top-1 to top-k.
//
// For d = 2 the weight space is the segment w1 in (0,1) and every
// tuple's score f_t(w1) = t_2 + w1 (t_1 - t_2) is a line, so the rank
// order changes only where adjacent score lines cross. A kinetic sweep
// maintains the full order from w1 -> 0+ to w1 -> 1- and records every
// weight where the top-k SET changes. Two applications:
//
//  * the exact partition of the weight space by top-k answer set (the
//    top-1 case is the paper's weight-range table);
//  * monochromatic reverse top-k queries (Vlachou et al., ICDE'10 --
//    the paper's reference [32]): for which weights is a given tuple
//    among the top-k?

#ifndef DRLI_CORE_RANK_SWEEP_2D_H_
#define DRLI_CORE_RANK_SWEEP_2D_H_

#include <utility>
#include <vector>

#include "common/point.h"

namespace drli {

struct RankSweepResult {
  // Strictly increasing interior breakpoints 0 < b_1 < ... < b_m < 1
  // at which the top-k set changes.
  std::vector<double> breakpoints;
  // topk_sets[i] = the top-k set (sorted ids) on the i-th interval
  // (b_{i-1}, b_i); size = breakpoints.size() + 1. Exact score ties at
  // interval boundaries make either neighbouring set a valid answer.
  std::vector<std::vector<TupleId>> topk_sets;

  // The set valid at a specific weight (binary search).
  const std::vector<TupleId>& SetAt(double w1) const;
};

// Sweeps all weights for a 2-d relation. O((n + S) log n) where S is
// the number of adjacent rank swaps.
RankSweepResult SweepTopKSets2D(const PointSet& points, std::size_t k);

// The w1-intervals (merged, ascending) on which `target` belongs to
// the top-k. Endpoints are the sweep breakpoints (or 0/1).
std::vector<std::pair<double, double>> ReverseTopKIntervals2D(
    const RankSweepResult& sweep, TupleId target);

}  // namespace drli

#endif  // DRLI_CORE_RANK_SWEEP_2D_H_
