// Dynamic maintenance around the (static, pre-materialized)
// dual-resolution index. The paper builds DL offline; real deployments
// also need inserts and deletes without a full rebuild.
//
// DynamicDualLayerIndex is a thin policy wrapper over the tiered
// engine in core/tiered_index.h. Two maintenance policies:
//
//  * kTiered (default): LSM-style. Inserts land in a memtable that
//    seals into small immutable DL+ runs; deletes become tombstones;
//    background compaction merges tiers incrementally, so no mutation
//    ever pays a stop-the-world rebuild of the whole relation.
//  * kFlatRebuild: the legacy differential design. One base run plus
//    an unindexed delta buffer; when either the buffer or the
//    tombstone set exceeds its threshold fraction of the base, the
//    whole index is rebuilt over the live tuples (blocking).
//
// Answers are always exact w.r.t. the current logical relation under
// either policy; they differ only in maintenance cost distribution
// (amortized increments vs. rare stop-the-world spikes).

#ifndef DRLI_CORE_DYNAMIC_INDEX_H_
#define DRLI_CORE_DYNAMIC_INDEX_H_

#include <string>

#include "common/point.h"
#include "core/tiered_index.h"
#include "topk/query.h"

namespace drli {

enum class MaintenancePolicy : std::uint8_t {
  kTiered = 0,    // LSM-style incremental compaction (default)
  kFlatRebuild,   // base + delta with stop-the-world rebuilds
};

struct DynamicIndexOptions {
  // Build options for the base index (kFlatRebuild) or every run
  // (kTiered).
  DualLayerOptions base;
  MaintenancePolicy policy = MaintenancePolicy::kTiered;

  // --- kFlatRebuild thresholds ---
  // Rebuild when |delta buffer| exceeds this fraction of the base size
  // (minimum 64 tuples).
  double rebuild_delta_fraction = 0.1;
  // Rebuild when tombstones exceed this fraction of the base size.
  double rebuild_tombstone_fraction = 0.1;

  // --- kTiered knobs (see TieredIndexOptions) ---
  std::size_t memtable_capacity = 128;
  std::size_t fanout = 4;
  bool auto_compact = true;
};

// A top-k index over a mutable relation. Tuples are addressed by
// stable user-visible ids assigned by Insert (never reused).
class DynamicDualLayerIndex final : public TopKIndex {
 public:
  explicit DynamicDualLayerIndex(std::size_t dim,
                                 const DynamicIndexOptions& options = {});
  DynamicDualLayerIndex(PointSet initial,
                        const DynamicIndexOptions& options = {});

  std::string name() const override { return "DL+dyn"; }
  // Number of live tuples.
  std::size_t size() const override { return engine_.size(); }
  std::size_t dim() const override { return engine_.dim(); }
  TopKResult Query(const TopKQuery& query) const override {
    return engine_.Query(query);
  }

  // Adds a tuple; returns its stable id.
  TupleId Insert(PointView tuple);
  // Removes a tuple by stable id; false if unknown or already deleted.
  bool Erase(TupleId id);
  // True iff the id refers to a live tuple.
  bool Contains(TupleId id) const { return engine_.Contains(id); }
  // The live tuple's attributes (CHECKs Contains).
  PointView Get(TupleId id) const { return engine_.Get(id); }

  // Forces the differential state into one fully merged base index now
  // (no memtable, no tombstones, at most one run).
  void Compact() { engine_.Compact(); }

  // Introspection for tests.
  std::size_t delta_size() const { return engine_.memtable_size(); }
  std::size_t tombstone_count() const { return engine_.tombstone_count(); }
  // Structural maintenance events: seals + compactions (kTiered), or
  // full rebuilds (kFlatRebuild, where every rebuild is one
  // seal+merge pair and this counts the merges).
  std::size_t rebuild_count() const;
  MaintenancePolicy policy() const { return options_.policy; }
  // The underlying tiered engine (run table, generation, ...).
  const TieredDualLayerIndex& engine() const { return engine_; }

 private:
  static TieredIndexOptions EngineOptions(const DynamicIndexOptions& options);
  void MaybeRebuild();

  DynamicIndexOptions options_;
  TieredDualLayerIndex engine_;
};

}  // namespace drli

#endif  // DRLI_CORE_DYNAMIC_INDEX_H_
