// Dynamic maintenance around the (static, pre-materialized)
// dual-resolution index. The paper builds DL offline; real deployments
// also need inserts and deletes without a full rebuild. This wrapper
// uses the classic differential design:
//
//  * inserts land in an unindexed delta buffer, scanned at query time
//    and merged into the answer (cost += |delta|);
//  * deletes become tombstones; the static index is queried for
//    k + |tombstones| answers and tombstoned tuples are filtered out;
//  * when either side exceeds its rebuild threshold the base index is
//    reconstructed over the live tuples.
//
// Answers are therefore always exact w.r.t. the current logical
// relation, and between rebuilds the paper's access-cost advantage is
// preserved up to the delta overhead (reported separately in
// QueryStats via the usual counters).

#ifndef DRLI_CORE_DYNAMIC_INDEX_H_
#define DRLI_CORE_DYNAMIC_INDEX_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/point.h"
#include "core/dual_layer.h"
#include "topk/query.h"

namespace drli {

struct DynamicIndexOptions {
  DualLayerOptions base;
  // Rebuild when |delta buffer| exceeds this fraction of the base size
  // (minimum 64 tuples).
  double rebuild_delta_fraction = 0.1;
  // Rebuild when tombstones exceed this fraction of the base size.
  double rebuild_tombstone_fraction = 0.1;
};

// A top-k index over a mutable relation. Tuples are addressed by
// stable user-visible ids assigned by Insert (never reused).
class DynamicDualLayerIndex final : public TopKIndex {
 public:
  explicit DynamicDualLayerIndex(std::size_t dim,
                                 const DynamicIndexOptions& options = {});
  DynamicDualLayerIndex(PointSet initial,
                        const DynamicIndexOptions& options = {});

  std::string name() const override { return "DL+dyn"; }
  // Number of live tuples.
  std::size_t size() const override;
  TopKResult Query(const TopKQuery& query) const override;

  // Adds a tuple; returns its stable id.
  TupleId Insert(PointView tuple);
  // Removes a tuple by stable id; false if unknown or already deleted.
  bool Erase(TupleId id);
  // True iff the id refers to a live tuple.
  bool Contains(TupleId id) const;
  // The live tuple's attributes (CHECKs Contains).
  PointView Get(TupleId id) const;

  // Forces the differential state into the base index now.
  void Compact();

  // Introspection for tests.
  std::size_t delta_size() const { return delta_.size(); }
  std::size_t tombstone_count() const { return tombstones_.size(); }
  std::size_t rebuild_count() const { return rebuilds_; }

 private:
  void MaybeRebuild();

  std::size_t dim_;
  DynamicIndexOptions options_;

  // Base (static) index over base_points_; base_ids_[i] = stable id of
  // base tuple i.
  DualLayerIndex base_;
  std::vector<TupleId> base_ids_;
  // Stable id -> position in base (kInvalidTupleId when in delta).
  std::unordered_map<TupleId, TupleId> base_position_;

  // Delta buffer: stable id -> attributes.
  std::vector<TupleId> delta_ids_;
  PointSet delta_;

  std::unordered_set<TupleId> tombstones_;  // stable ids
  TupleId next_id_ = 0;
  std::size_t rebuilds_ = 0;
};

}  // namespace drli

#endif  // DRLI_CORE_DYNAMIC_INDEX_H_
