// On-disk layout of DualLayerIndex snapshot format v2, shared by the
// serializer (core/serialization), the metadata inspector (`drli
// inspect`), and the fault injector (testing/fault_inject).
//
// File layout (all integers little-endian):
//
//   [HeaderV2, 56 bytes]            magic/version/shape + header CRC
//   [SectionEntry x num_sections]   32 bytes each, at
//                                   header.section_table_offset (= 56)
//   [payload sections]              each 64-byte aligned; gaps between
//                                   sections are zero bytes
//
// Every region is tamper-evident: the header carries its own CRC-32C
// (computed with header_crc = 0) and the CRC of the section table; each
// section entry carries the CRC of its payload; padding gaps must be
// zero and the file must end exactly where the last section ends.
// Payload sections are aligned so numeric arrays can be reinterpreted
// in place by the mmap loader (doubles need 8-byte alignment; 64 keeps
// them cache-line aligned).

#ifndef DRLI_CORE_SNAPSHOT_FORMAT_H_
#define DRLI_CORE_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace drli {
namespace snapshot {

inline constexpr std::uint32_t kMagic = 0x494c5244;  // "DRLI"
inline constexpr std::uint32_t kVersionV1 = 1;       // legacy stream format
inline constexpr std::uint32_t kVersionV2 = 2;       // sectioned + CRC32C
inline constexpr std::size_t kSectionAlignment = 64;

// Sanity bounds enforced before any allocation sized from file data.
inline constexpr std::uint32_t kMaxDim = 4096;
inline constexpr std::uint32_t kMaxSections = 64;

enum class SectionKind : std::uint32_t {
  kName = 1,            // index display name (char bytes)
  kPoints = 2,          // num_points * dim doubles, row-major
  kVirtualPoints = 3,   // num_virtual * dim doubles, row-major
  kCoarseOf = 4,        // num_nodes u32: coarse layer per node
  kFineOf = 5,          // num_nodes u32: fine sublayer per node
  kCoarseOffsets = 6,   // CSR offsets of the ∀-dominance graph
  kCoarseTargets = 7,   // CSR targets of the ∀-dominance graph
  kFineOffsets = 8,     // CSR offsets of the ∃-dominance graph
  kFineTargets = 9,     // CSR targets of the ∃-dominance graph
  kLayerOffsets = 10,   // num_coarse_layers + 1 u32 into kLayerMembers
  kLayerMembers = 11,   // real tuple ids grouped by coarse layer
  kWeightChain = 12,    // 2-d zero-layer chain (tuple ids, x-ascending)
};

// Short lower-case identifier, e.g. "points"; "?" for unknown kinds.
const char* SectionKindName(SectionKind kind);

struct HeaderV2 {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersionV2;
  std::uint32_t dim = 0;
  std::uint32_t flags = 0;  // kFlagWeightTable
  std::uint64_t num_points = 0;
  std::uint64_t num_virtual = 0;
  std::uint32_t num_sections = 0;
  std::uint32_t section_table_crc = 0;
  std::uint64_t section_table_offset = 0;
  std::uint32_t header_crc = 0;  // CRC-32C of header with this field 0
  std::uint32_t reserved = 0;
};
static_assert(sizeof(HeaderV2) == 56);

inline constexpr std::uint32_t kFlagWeightTable = 1u << 0;

struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;  // absolute file offset, kSectionAlignment-ed
  std::uint64_t length = 0;  // payload bytes
  std::uint32_t crc = 0;     // CRC-32C of the payload
  std::uint32_t reserved2 = 0;
};
static_assert(sizeof(SectionEntry) == 32);

// CRC-32C of `header` serialized with header_crc treated as zero.
std::uint32_t ComputeHeaderCrc(const HeaderV2& header);

}  // namespace snapshot
}  // namespace drli

#endif  // DRLI_CORE_SNAPSHOT_FORMAT_H_
