#include "core/dynamic_index.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace drli {

TieredIndexOptions DynamicDualLayerIndex::EngineOptions(
    const DynamicIndexOptions& options) {
  TieredIndexOptions engine;
  engine.run = options.base;
  if (options.policy == MaintenancePolicy::kFlatRebuild) {
    // The flat policy never seals or merges on its own: the wrapper's
    // MaybeRebuild decides when to collapse everything via Compact().
    engine.memtable_capacity = std::numeric_limits<std::size_t>::max();
    engine.auto_compact = false;
    engine.tombstone_compact_fraction = 0.0;
  } else {
    engine.memtable_capacity = options.memtable_capacity;
    engine.fanout = options.fanout;
    engine.auto_compact = options.auto_compact;
  }
  return engine;
}

DynamicDualLayerIndex::DynamicDualLayerIndex(
    std::size_t dim, const DynamicIndexOptions& options)
    : options_(options), engine_(dim, EngineOptions(options)) {}

DynamicDualLayerIndex::DynamicDualLayerIndex(
    PointSet initial, const DynamicIndexOptions& options)
    : options_(options), engine_(std::move(initial), EngineOptions(options)) {}

TupleId DynamicDualLayerIndex::Insert(PointView tuple) {
  const TupleId id = engine_.Insert(tuple);
  MaybeRebuild();
  return id;
}

bool DynamicDualLayerIndex::Erase(TupleId id) {
  const bool erased = engine_.Erase(id);
  if (erased) MaybeRebuild();
  return erased;
}

std::size_t DynamicDualLayerIndex::rebuild_count() const {
  return options_.policy == MaintenancePolicy::kFlatRebuild
             ? engine_.compaction_count()
             : engine_.seal_count() + engine_.compaction_count();
}

void DynamicDualLayerIndex::MaybeRebuild() {
  if (options_.policy != MaintenancePolicy::kFlatRebuild) return;
  const double base_n = static_cast<double>(engine_.indexed_rows());
  const double delta_cap =
      std::max(64.0, options_.rebuild_delta_fraction * base_n);
  const double tombstone_cap =
      std::max(64.0, options_.rebuild_tombstone_fraction * base_n);
  if (static_cast<double>(engine_.memtable_size()) > delta_cap ||
      static_cast<double>(engine_.tombstone_count()) > tombstone_cap) {
    engine_.Compact();
  }
}

}  // namespace drli
