#include "core/dynamic_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/stopwatch.h"

namespace drli {

DynamicDualLayerIndex::DynamicDualLayerIndex(
    std::size_t dim, const DynamicIndexOptions& options)
    : DynamicDualLayerIndex(PointSet(dim), options) {}

DynamicDualLayerIndex::DynamicDualLayerIndex(
    PointSet initial, const DynamicIndexOptions& options)
    : dim_(initial.dim()),
      options_(options),
      base_(DualLayerIndex::Build(initial, options.base)),
      delta_(initial.dim()) {
  const std::size_t n = base_.size();
  base_ids_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    base_ids_[i] = next_id_;
    base_position_.emplace(next_id_, static_cast<TupleId>(i));
    ++next_id_;
  }
}

std::size_t DynamicDualLayerIndex::size() const {
  return base_.size() - tombstones_.size() + delta_.size();
}

bool DynamicDualLayerIndex::Contains(TupleId id) const {
  if (tombstones_.count(id)) return false;
  if (base_position_.count(id)) return true;
  return std::find(delta_ids_.begin(), delta_ids_.end(), id) !=
         delta_ids_.end();
}

PointView DynamicDualLayerIndex::Get(TupleId id) const {
  DRLI_CHECK(!tombstones_.count(id)) << "tuple " << id << " deleted";
  const auto it = base_position_.find(id);
  if (it != base_position_.end()) return base_.points()[it->second];
  const auto pos = std::find(delta_ids_.begin(), delta_ids_.end(), id);
  DRLI_CHECK(pos != delta_ids_.end()) << "unknown tuple " << id;
  return delta_[static_cast<std::size_t>(pos - delta_ids_.begin())];
}

TupleId DynamicDualLayerIndex::Insert(PointView tuple) {
  DRLI_CHECK_EQ(tuple.size(), dim_);
  const TupleId id = next_id_++;
  delta_ids_.push_back(id);
  delta_.Add(tuple);
  MaybeRebuild();
  return id;
}

bool DynamicDualLayerIndex::Erase(TupleId id) {
  if (tombstones_.count(id)) return false;
  if (base_position_.count(id)) {
    tombstones_.insert(id);
    MaybeRebuild();
    return true;
  }
  const auto pos_it = std::find(delta_ids_.begin(), delta_ids_.end(), id);
  if (pos_it == delta_ids_.end()) return false;
  // Swap-remove from the delta buffer.
  const std::size_t pos =
      static_cast<std::size_t>(pos_it - delta_ids_.begin());
  const std::size_t last = delta_.size() - 1;
  if (pos != last) {
    const Point moved = delta_.Materialize(last);
    for (std::size_t j = 0; j < dim_; ++j) delta_.Set(pos, j, moved[j]);
    delta_ids_[pos] = delta_ids_[last];
  }
  delta_ids_.pop_back();
  // PointSet has no pop; rebuild the buffer without the last row.
  PointSet rebuilt(dim_);
  rebuilt.Reserve(last);
  for (std::size_t i = 0; i < last; ++i) rebuilt.Add(delta_[i]);
  delta_ = std::move(rebuilt);
  return true;
}

void DynamicDualLayerIndex::Compact() {
  PointSet live(dim_);
  live.Reserve(size());
  std::vector<TupleId> live_ids;
  live_ids.reserve(size());
  for (std::size_t i = 0; i < base_.size(); ++i) {
    const TupleId id = base_ids_[i];
    if (tombstones_.count(id)) continue;
    live.Add(base_.points()[i]);
    live_ids.push_back(id);
  }
  for (std::size_t i = 0; i < delta_.size(); ++i) {
    live.Add(delta_[i]);
    live_ids.push_back(delta_ids_[i]);
  }
  // Query's merged sort relies on base position order matching stable-id
  // order to break exact score ties canonically, and the swap-remove in
  // Erase permutes delta_ids_; restore ascending ids before rebuilding.
  std::vector<TupleId> order(live_ids.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<TupleId>(i);
  }
  std::sort(order.begin(), order.end(), [&](TupleId a, TupleId b) {
    return live_ids[a] < live_ids[b];
  });
  PointSet sorted_live(dim_);
  sorted_live.Reserve(live.size());
  std::vector<TupleId> sorted_ids;
  sorted_ids.reserve(live_ids.size());
  for (TupleId pos : order) {
    sorted_live.Add(live[pos]);
    sorted_ids.push_back(live_ids[pos]);
  }

  base_ = DualLayerIndex::Build(std::move(sorted_live), options_.base);
  base_ids_ = std::move(sorted_ids);
  base_position_.clear();
  for (std::size_t i = 0; i < base_ids_.size(); ++i) {
    base_position_.emplace(base_ids_[i], static_cast<TupleId>(i));
  }
  delta_ = PointSet(dim_);
  delta_ids_.clear();
  tombstones_.clear();
  ++rebuilds_;
}

void DynamicDualLayerIndex::MaybeRebuild() {
  const double base_n = static_cast<double>(base_.size());
  const double delta_cap =
      std::max(64.0, options_.rebuild_delta_fraction * base_n);
  const double tombstone_cap =
      std::max(64.0, options_.rebuild_tombstone_fraction * base_n);
  if (static_cast<double>(delta_.size()) > delta_cap ||
      static_cast<double>(tombstones_.size()) > tombstone_cap) {
    Compact();
  }
}

TopKResult DynamicDualLayerIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  if (const Status status = ValidateQuery(query, dim_); !status.ok()) {
    return InvalidQueryResult(status);
  }
  TopKResult result;
  if (query.k == 0) {
    FinalizeComplete(result);
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }

  // Base index: over-fetch to survive tombstone filtering. The budget
  // travels inside the query, so the base traversal enforces it and
  // reports its own termination + frontier.
  Termination stop = Termination::kComplete;
  double frontier = std::numeric_limits<double>::infinity();
  std::vector<ScoredTuple> candidates;
  if (base_.size() > 0) {
    TopKQuery base_query = query;
    base_query.k = std::min(base_.size(), query.k + tombstones_.size());
    const TopKResult base_result = base_.Query(base_query);
    result.stats.Merge(base_result.stats);
    stop = base_result.termination;
    frontier = base_result.frontier_bound;
    for (const ScoredTuple& item : base_result.items) {
      const TupleId stable = base_ids_[item.id];
      if (tombstones_.count(stable)) continue;
      candidates.push_back(ScoredTuple{stable, item.score});
    }
    for (TupleId pos : base_result.accessed) {
      result.accessed.push_back(base_ids_[pos]);
    }
  }
  // Delta buffer: always a full scan, even when the base traversal was
  // cut short -- the buffer is bounded by the rebuild threshold, so
  // this is amortized-constant overshoot, and covering it completely
  // lets a partial result certify against the base frontier alone
  // (unsorted unscanned delta rows would otherwise force a -inf
  // frontier and certify nothing).
  for (std::size_t i = 0; i < delta_.size(); ++i) {
    candidates.push_back(
        ScoredTuple{delta_ids_[i], Score(query.weights, delta_[i])});
    ++result.stats.tuples_evaluated;
    result.accessed.push_back(delta_ids_[i]);
  }

  // Base results carry base positions whose order matches stable-id
  // order (base_ids_ is ascending), so one canonical sort over the
  // merged candidate set yields the exact (score, id) top-k.
  std::sort(candidates.begin(), candidates.end(), ResultOrderLess);
  if (candidates.size() > query.k) candidates.resize(query.k);
  result.items = std::move(candidates);
  if (stop == Termination::kComplete) {
    FinalizeComplete(result);
  } else {
    // Unreturned live tuples are base tuples the cut-short traversal
    // bounded by its frontier (tombstone filtering only removes
    // candidates, and candidates cut at k rank canonically beyond the
    // k-th item, which the strict-< certification rule already
    // excludes).
    FinalizePartial(result, stop, frontier);
  }
  // This call's own wall time, not the sum of merged sub-query timings.
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
