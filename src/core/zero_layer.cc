#include "core/zero_layer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "cluster/kmeans.h"

namespace drli {

WeightRangeTable WeightRangeTable::Build(const PointSet& points,
                                         std::vector<TupleId> chain) {
  DRLI_CHECK_EQ(points.dim(), 2u);
  WeightRangeTable table;
  table.chain_ = std::move(chain);
  for (std::size_t i = 0; i + 1 < table.chain_.size(); ++i) {
    const PointView a = points[table.chain_[i]];
    const PointView b = points[table.chain_[i + 1]];
    DRLI_CHECK(a[0] < b[0] && a[1] > b[1])
        << "chain must descend left to right";
    // Scores tie at w1 (a1 - b1) + (1 - w1)(a2 - b2) = 0, i.e.
    // w1* = B / (B - A) with A = a1 - b1 < 0, B = a2 - b2 > 0 --
    // equivalently lambda/(lambda - 1) for the facet slope lambda.
    const double big_a = a[0] - b[0];
    const double big_b = a[1] - b[1];
    table.breakpoints_.push_back(big_b / (big_b - big_a));
  }
  // Convexity of the chain makes the breakpoints strictly decreasing.
  for (std::size_t i = 0; i + 1 < table.breakpoints_.size(); ++i) {
    DRLI_CHECK(table.breakpoints_[i] > table.breakpoints_[i + 1])
        << "chain is not strictly convex";
  }
  return table;
}

bool WeightRangeTable::ValidateChain(const PointSet& points,
                                     const std::vector<TupleId>& chain) {
  if (points.dim() != 2) return false;
  for (TupleId id : chain) {
    if (id >= points.size()) return false;
  }
  double prev_breakpoint = 0.0;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const PointView a = points[chain[i]];
    const PointView b = points[chain[i + 1]];
    if (!(a[0] < b[0] && a[1] > b[1])) return false;
    // Same arithmetic as Build, so the convexity check here accepts
    // exactly the chains whose breakpoints Build finds decreasing.
    const double big_a = a[0] - b[0];
    const double big_b = a[1] - b[1];
    const double breakpoint = big_b / (big_b - big_a);
    if (i > 0 && !(prev_breakpoint > breakpoint)) return false;
    prev_breakpoint = breakpoint;
  }
  return true;
}

std::size_t WeightRangeTable::Lookup(double w1) const {
  DRLI_CHECK(!chain_.empty());
  // First position whose breakpoint is <= w1 (breakpoints descend):
  // chain_[i] is optimal on [breakpoints_[i], breakpoints_[i-1]].
  const auto it =
      std::lower_bound(breakpoints_.begin(), breakpoints_.end(), w1,
                       [](double bp, double value) { return bp > value; });
  return static_cast<std::size_t>(it - breakpoints_.begin());
}

ClusteredZeroLayer BuildClusteredZeroLayer(const PointSet& points,
                                           const std::vector<TupleId>& layer1,
                                           std::size_t num_clusters,
                                           std::uint64_t seed) {
  ClusteredZeroLayer out(points.dim());
  if (layer1.empty()) return out;
  if (num_clusters == 0) {
    num_clusters = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(layer1.size()))));
  }
  const PointSet members = points.Subset(layer1);
  KMeansOptions options;
  options.num_clusters = num_clusters;
  options.seed = seed;
  const KMeansResult clusters = KMeans(members, options);
  out.cluster_of = clusters.assignment;
  for (const Point& corner : ClusterMinCorners(members, clusters)) {
    out.pseudo.Add(corner);
  }
  return out;
}

}  // namespace drli
