// Builds any of the library's indexes by name -- the glue used by the
// examples and the benchmark harness.

#ifndef DRLI_CORE_INDEX_REGISTRY_H_
#define DRLI_CORE_INDEX_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "skyline/skyline.h"
#include "topk/query.h"

namespace drli {

struct IndexBuildConfig {
  // One of: scan, fa, ta, nra, prefer, lpta, onion, pli, dg, dg+,
  // hl, hl+, dl, dl+ (case-insensitive).
  std::string kind = "dl+";
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kSkyTree;
  // Convex-layer cap for onion/hl/hl+ (k must stay below it).
  std::size_t convex_max_layers = 256;
  // Zero-layer cluster count for dg+/dl+ (0 = ceil(sqrt(|L1|))).
  std::size_t zero_layer_clusters = 0;
};

// All kinds accepted by BuildIndex.
std::vector<std::string> KnownIndexKinds();

// Builds the index over `points`. Unknown kind => InvalidArgument.
StatusOr<std::unique_ptr<TopKIndex>> BuildIndex(const IndexBuildConfig& config,
                                                PointSet points);

}  // namespace drli

#endif  // DRLI_CORE_INDEX_REGISTRY_H_
