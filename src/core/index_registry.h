// Builds any of the library's indexes by name -- the glue used by the
// examples and the benchmark harness.

#ifndef DRLI_CORE_INDEX_REGISTRY_H_
#define DRLI_CORE_INDEX_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "skyline/skyline.h"
#include "topk/query.h"

namespace drli {

struct IndexBuildConfig {
  // One of: scan, fa, ta, nra, prefer, lpta, onion, pli, dg, dg+,
  // hl, hl+, dl, dl+, sdl+, tdl+ (case-insensitive). The sharded kind
  // also accepts an inline spec "sdl+<S>[r|h]" -- shard count plus an
  // optional partitioner letter (random / hyperplane) -- e.g. "sdl+4h";
  // the suffix overrides num_shards / shard_partitioner below. The
  // tiered dynamic kind accepts "tdl+<M>" -- the memtable capacity,
  // overriding tiered_memtable_capacity -- e.g. "tdl+7" seals a run
  // every 7 inserts.
  std::string kind = "dl+";
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kSkyTree;
  // Convex-layer cap for onion/hl/hl+ (k must stay below it).
  std::size_t convex_max_layers = 256;
  // Zero-layer cluster count for dg+/dl+ (0 = ceil(sqrt(|L1|))).
  std::size_t zero_layer_clusters = 0;
  // Sharded kind ("sdl+"): shard count, partitioner
  // ("random" | "hyperplane") and partition seed.
  std::size_t num_shards = 4;
  std::string shard_partitioner = "hyperplane";
  std::uint64_t shard_seed = 42;
  // Tiered dynamic kind ("tdl+"): rows buffered before a seal. The
  // relation is fed through Insert at build time, so n / capacity
  // seals (minus compactions) shape the run table.
  std::size_t tiered_memtable_capacity = 32;
};

// All kinds accepted by BuildIndex.
std::vector<std::string> KnownIndexKinds();

// Builds the index over `points`. Unknown kind => InvalidArgument.
StatusOr<std::unique_ptr<TopKIndex>> BuildIndex(const IndexBuildConfig& config,
                                                PointSet points);

}  // namespace drli

#endif  // DRLI_CORE_INDEX_REGISTRY_H_
