#include "core/dual_layer.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "core/eds.h"
#include "skyline/skyline_layers.h"

namespace drli {

namespace {

// Below this many points a whole build phase finishes in well under a
// millisecond -- less than the cost of waking the task pool -- so the
// parallel build phases early-out to the inline serial path. Parallel
// and serial builds are bit-identical either way; this is purely a
// scheduling decision.
constexpr std::size_t kMinPointsForParallelBuild = 4096;

}  // namespace

DualLayerIndex DualLayerIndex::Build(PointSet points,
                                     const DualLayerOptions& options) {
  Stopwatch timer;
  DualLayerIndex index;
  index.options_ = options;
  index.points_ = std::move(points);
  index.virtual_points_ = PointSet(index.points_.dim());
  index.name_ = options.name.empty()
                    ? (options.build_zero_layer ? "DL+" : "DL")
                    : options.name;

  const std::size_t n = index.points_.size();
  index.coarse_of_.assign(n, 0);
  index.fine_of_.assign(n, kNoFineLayer);
  index.coarse_in_degree_.assign(n, 0);
  index.has_fine_in_.assign(n, 0);
  index.chain_pos_.assign(n, kNoFineLayer);

  AdjacencyBuilder coarse_adj(n);
  AdjacencyBuilder fine_adj(n);
  Stopwatch phase;
  if (n > 0) {
    index.BuildCoarseLayers();
    index.stats_.skyline_seconds = phase.ElapsedSeconds();
    phase.Restart();
    index.BuildFineLayers(&fine_adj);
    index.stats_.fine_peel_seconds = phase.ElapsedSeconds();
    phase.Restart();
    index.BuildCoarseEdges(&coarse_adj);
    index.stats_.coarse_edge_seconds = phase.ElapsedSeconds();
    if (options.build_zero_layer) {
      phase.Restart();
      index.BuildZeroLayer(&coarse_adj, &fine_adj);
      index.stats_.zero_layer_seconds = phase.ElapsedSeconds();
    }
  }
  phase.Restart();
  index.coarse_out_ = CsrGraph::FromAdjacency(coarse_adj);
  index.fine_out_ = CsrGraph::FromAdjacency(fine_adj);
  index.FinalizeInitialNodes();
  index.stats_.finalize_seconds = phase.ElapsedSeconds();
  index.stats_.build_seconds = timer.ElapsedSeconds();
  return index;
}

void DualLayerIndex::BuildCoarseLayers() {
  LayerDecomposition decomposition =
      BuildSkylineLayers(points_, options_.skyline_algorithm);
  coarse_layers_ = std::move(decomposition.layers);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    coarse_of_[i] = static_cast<std::uint32_t>(decomposition.layer_of[i]);
  }
  stats_.num_coarse_layers = coarse_layers_.size();
}

DualLayerIndex::FinePeelResult DualLayerIndex::PeelFineLayers(
    const std::vector<NodeId>& node_ids, const PointSet& pool,
    const std::vector<TupleId>& pool_ids) const {
  DRLI_CHECK_EQ(node_ids.size(), pool_ids.size());
  FinePeelResult out;
  // remaining[i] indexes into node_ids/pool_ids.
  std::vector<std::size_t> remaining(node_ids.size());
  std::iota(remaining.begin(), remaining.end(), 0);

  std::uint32_t fine = 0;
  // Facets of the previous sublayer, as node ids.
  std::vector<std::vector<NodeId>> prev_facets;
  // The previous sublayer lives in `pool`; the EDS LP needs pool-local
  // coordinates, so keep a parallel pool-id version of the facets.
  std::vector<std::vector<TupleId>> prev_facets_pool;
  // Componentwise-min corner per facet, computed once per facet and
  // reused as the O(d) EDS reject test against every target. Stored
  // flat (facet-major) with the corner's attribute sum alongside: a
  // corner whose sum exceeds the target's cannot weakly dominate it,
  // which settles most rejections in one comparison.
  std::vector<double> prev_corner_coords;
  std::vector<double> prev_corner_sums;

  while (!remaining.empty()) {
    std::vector<TupleId> local_pool_ids;
    local_pool_ids.reserve(remaining.size());
    PointSet subset(pool.dim());
    subset.Reserve(remaining.size());
    for (std::size_t r : remaining) {
      local_pool_ids.push_back(pool_ids[r]);
      subset.Add(pool[pool_ids[r]]);
    }
    const ConvexSkylineResult csky =
        ComputeConvexSkyline(subset, options_.csky);
    if (!csky.exact) ++out.csky_fallbacks;
    DRLI_CHECK(!csky.members.empty());

    // Map sublayer members and facets back to node / pool ids.
    std::vector<NodeId> member_nodes;
    member_nodes.reserve(csky.members.size());
    std::vector<bool> is_member(remaining.size(), false);
    for (TupleId local : csky.members) {
      is_member[local] = true;
      const NodeId node = node_ids[remaining[local]];
      member_nodes.push_back(node);
      out.fine_of.emplace_back(node, fine);
    }
    const std::size_t d = pool.dim();
    std::vector<std::vector<NodeId>> facets;
    std::vector<std::vector<TupleId>> facets_pool;
    std::vector<double> corner_coords;
    std::vector<double> corner_sums;
    facets.reserve(csky.facets.size());
    facets_pool.reserve(csky.facets.size());
    corner_coords.reserve(csky.facets.size() * d);
    corner_sums.reserve(csky.facets.size());
    for (const auto& facet : csky.facets) {
      std::vector<NodeId> f_nodes;
      std::vector<TupleId> f_pool;
      f_nodes.reserve(facet.size());
      f_pool.reserve(facet.size());
      for (TupleId local : facet) {
        f_nodes.push_back(node_ids[remaining[local]]);
        f_pool.push_back(pool_ids[remaining[local]]);
      }
      const std::size_t at = corner_coords.size();
      corner_coords.resize(at + d);
      double* corner = corner_coords.data() + at;
      const PointView first = pool[f_pool[0]];
      std::copy(first.begin(), first.end(), corner);
      for (std::size_t v = 1; v < f_pool.size(); ++v) {
        const PointView p = pool[f_pool[v]];
        for (std::size_t j = 0; j < d; ++j) {
          corner[j] = std::min(corner[j], p[j]);
        }
      }
      double corner_sum = 0.0;
      for (std::size_t j = 0; j < d; ++j) corner_sum += corner[j];
      corner_sums.push_back(corner_sum);
      facets.push_back(std::move(f_nodes));
      facets_pool.push_back(std::move(f_pool));
    }

    // ∃-edges from sublayer fine-1 into this sublayer (Section III-B).
    if (fine > 0) {
      Stopwatch eds_timer;
      for (std::size_t m = 0; m < member_nodes.size(); ++m) {
        const NodeId target_node = member_nodes[m];
        const PointView target = pool[local_pool_ids[csky.members[m]]];
        double target_sum = 0.0;
        for (std::size_t j = 0; j < d; ++j) target_sum += target[j];
        bool covered = false;
        for (std::size_t f = 0; f < prev_facets.size(); ++f) {
          // Inline bbox reject on the flat corner array (identical
          // decision and counter to FacetIsEds' own corner test, minus
          // the call): the sum shortcut settles a reject in one compare
          // when it fires (componentwise <= implies, with monotone
          // rounding and the same association, sum <=), then the corner
          // itself must weakly dominate the target.
          if (prev_corner_sums[f] > target_sum) {
            ++out.eds.bbox_rejects;
            continue;
          }
          const double* corner = prev_corner_coords.data() + f * d;
          if (!WeaklyDominates(PointView(corner, d), target)) {
            ++out.eds.bbox_rejects;
            continue;
          }
          if (!FacetIsEds(pool, prev_facets_pool[f], PointView(corner, d),
                          target, &out.eds)) {
            continue;
          }
          for (const NodeId source : prev_facets[f]) {
            out.edges.emplace_back(source, target_node);
          }
          covered = true;
          if (options_.eds_policy == EdsPolicy::kSingleFacet) break;
        }
        if (!covered) ++out.eds_uncovered;
      }
      out.eds_seconds += eds_timer.ElapsedSeconds();
    }

    prev_facets = std::move(facets);
    prev_facets_pool = std::move(facets_pool);
    prev_corner_coords = std::move(corner_coords);
    prev_corner_sums = std::move(corner_sums);

    // Remove the sublayer from the remaining pool.
    std::vector<std::size_t> next;
    next.reserve(remaining.size() - csky.members.size());
    for (std::size_t local = 0; local < remaining.size(); ++local) {
      if (!is_member[local]) next.push_back(remaining[local]);
    }
    remaining = std::move(next);
    ++fine;
    ++out.num_fine_layers;
  }
  return out;
}

void DualLayerIndex::ApplyFinePeel(const FinePeelResult& peel,
                                   AdjacencyBuilder* fine_adj) {
  for (const auto& [node, fine] : peel.fine_of) fine_of_[node] = fine;
  for (const auto& [source, target] : peel.edges) {
    (*fine_adj)[source].push_back(target);
    has_fine_in_[target] = 1;
    ++stats_.num_fine_edges;
  }
  stats_.num_fine_layers += peel.num_fine_layers;
  stats_.eds_uncovered += peel.eds_uncovered;
  stats_.csky_fallbacks += peel.csky_fallbacks;
  stats_.eds_member_hits += peel.eds.member_hits;
  stats_.eds_bbox_rejects += peel.eds.bbox_rejects;
  stats_.eds_lp_calls += peel.eds.lp_calls;
  stats_.eds_seconds += peel.eds_seconds;
}

void DualLayerIndex::BuildFineLayers(AdjacencyBuilder* fine_adj) {
  if (!options_.enable_fine_layers) {
    for (const std::vector<TupleId>& layer : coarse_layers_) {
      for (TupleId id : layer) fine_of_[id] = 0;
      ++stats_.num_fine_layers;
    }
    return;
  }
  // The peel of each coarse layer is independent; run them on the task
  // pool and merge in layer order. All ∃-edges stay inside one coarse
  // layer, so the per-source edge lists -- and hence the CSR -- come
  // out identical to a serial build. Below kMinPointsForParallelBuild
  // the whole peel is cheaper than spawning workers, so run inline;
  // above it, hand out the largest layers first so one fat layer does
  // not become the tail of the schedule.
  std::vector<FinePeelResult> results(coarse_layers_.size());
  const std::size_t threads =
      points_.size() < kMinPointsForParallelBuild ? 1 : options_.build_threads;
  std::vector<std::size_t> order(coarse_layers_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return coarse_layers_[a].size() > coarse_layers_[b].size();
  });
  ParallelFor(
      order.size(),
      [&](std::size_t task, std::size_t) {
        const std::size_t i = order[task];
        const std::vector<TupleId>& layer = coarse_layers_[i];
        std::vector<NodeId> node_ids(layer.begin(), layer.end());
        results[i] = PeelFineLayers(node_ids, points_, layer);
      },
      threads);
  for (const FinePeelResult& peel : results) ApplyFinePeel(peel, fine_adj);
}

void DualLayerIndex::BuildCoarseEdges(AdjacencyBuilder* coarse_adj) {
  // ∀-edges between adjacent coarse layers (Lemma 1): t -> t' iff t ≺ t'.
  // Each adjacent pair is scanned independently on the task pool; edges
  // are buffered per pair and merged in pair order (a source node only
  // ever appears in one pair, so per-source order matches the serial
  // build).
  if (coarse_layers_.size() < 2) return;
  const std::size_t pairs = coarse_layers_.size() - 1;
  std::vector<std::vector<std::pair<NodeId, NodeId>>> pair_edges(pairs);
  std::vector<DominancePairStats> pair_stats(pairs);
  const std::size_t threads =
      points_.size() < kMinPointsForParallelBuild ? 1 : options_.build_threads;
  // Largest cross products first; same tail-latency argument as the
  // fine peel above.
  std::vector<std::size_t> order(pairs);
  for (std::size_t i = 0; i < pairs; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return coarse_layers_[a].size() * coarse_layers_[a + 1].size() >
           coarse_layers_[b].size() * coarse_layers_[b + 1].size();
  });
  ParallelFor(
      order.size(),
      [&](std::size_t task, std::size_t) {
        const std::size_t i = order[task];
        ForEachDominancePair(points_, coarse_layers_[i],
                             coarse_layers_[i + 1],
                             [&](TupleId source, TupleId target) {
                               pair_edges[i].emplace_back(source, target);
                             },
                             &pair_stats[i]);
      },
      threads);
  for (std::size_t i = 0; i < pairs; ++i) {
    stats_.coarse_pairs_pruned += pair_stats[i].pairs_pruned;
    stats_.coarse_pairs_tested += pair_stats[i].pairs_tested;
    for (const auto& [source, target] : pair_edges[i]) {
      (*coarse_adj)[source].push_back(target);
      ++coarse_in_degree_[target];
      ++stats_.num_coarse_edges;
    }
    for (TupleId target : coarse_layers_[i + 1]) {
      DRLI_DCHECK(coarse_in_degree_[target] > 0)
          << "every tuple below layer 1 has a dominator one layer up";
    }
  }
}

void DualLayerIndex::BuildZeroLayer(AdjacencyBuilder* coarse_adj,
                                    AdjacencyBuilder* fine_adj) {
  const std::vector<TupleId>& layer1 = coarse_layers_[0];

  if (points_.dim() == 2 && options_.enable_fine_layers) {
    // Section V-A: exact weight-range table over L^{11}. The chain is
    // the first fine sublayer of coarse layer 1, ordered by x.
    std::vector<TupleId> chain;
    for (TupleId id : layer1) {
      if (fine_of_[id] == 0) chain.push_back(id);
    }
    std::sort(chain.begin(), chain.end(), [&](TupleId a, TupleId b) {
      return points_.At(a, 0) < points_.At(b, 0);
    });
    weight_table_ = WeightRangeTable::Build(points_, chain);
    use_weight_table_ = true;
    for (std::size_t pos = 0; pos < chain.size(); ++pos) {
      chain_pos_[chain[pos]] = static_cast<std::uint32_t>(pos);
    }
    return;
  }

  // Section V-B: clustered pseudo-tuples with their own fine split.
  ClusteredZeroLayer zero =
      BuildClusteredZeroLayer(points_, layer1, options_.zero_layer_clusters,
                              options_.zero_layer_seed);
  if (zero.pseudo.empty()) return;
  virtual_points_ = std::move(zero.pseudo);
  const std::size_t n = points_.size();
  const std::size_t v = virtual_points_.size();
  stats_.num_virtual = v;

  coarse_of_.resize(n + v, 0);
  fine_of_.resize(n + v, kNoFineLayer);
  coarse_adj->resize(n + v);
  coarse_in_degree_.resize(n + v, 0);
  fine_adj->resize(n + v);
  has_fine_in_.resize(n + v, 0);
  chain_pos_.resize(n + v, kNoFineLayer);

  std::vector<NodeId> virtual_nodes(v);
  std::vector<TupleId> virtual_ids(v);
  for (std::size_t i = 0; i < v; ++i) {
    virtual_nodes[i] = static_cast<NodeId>(n + i);
    virtual_ids[i] = static_cast<TupleId>(i);
  }
  if (options_.zero_layer_fine_split) {
    ApplyFinePeel(PeelFineLayers(virtual_nodes, virtual_points_, virtual_ids),
                  fine_adj);
  } else {
    for (NodeId node : virtual_nodes) fine_of_[node] = 0;
  }

  // ∀-edges L0 -> L1: a pseudo-tuple precedes every first-layer tuple
  // it weakly dominates (its own cluster members at minimum).
  for (TupleId target : layer1) {
    const PointView tp = points_[target];
    for (std::size_t i = 0; i < v; ++i) {
      if (WeaklyDominates(virtual_points_[i], tp)) {
        (*coarse_adj)[n + i].push_back(target);
        ++coarse_in_degree_[target];
        ++stats_.num_coarse_edges;
      }
    }
    DRLI_CHECK(coarse_in_degree_[target] > 0)
        << "zero layer must cover every first-layer tuple";
  }
}

std::vector<std::vector<TupleId>> DualLayerIndex::LayerGroups() const {
  std::vector<std::vector<TupleId>> groups;
  for (const std::vector<TupleId>& layer : coarse_layers_) {
    // Bucket the coarse layer by fine sublayer, preserving fine order.
    std::uint32_t max_fine = 0;
    for (TupleId id : layer) max_fine = std::max(max_fine, fine_of_[id]);
    const std::size_t base = groups.size();
    groups.resize(base + max_fine + 1);
    for (TupleId id : layer) {
      groups[base + fine_of_[id]].push_back(id);
    }
  }
  return groups;
}

void DualLayerIndex::FinalizeInitialNodes() {
  const std::size_t total = num_nodes();
  initial_.clear();
  for (std::size_t node = 0; node < total; ++node) {
    if (coarse_in_degree_[node] == 0 && !has_fine_in_[node]) {
      initial_.push_back(static_cast<NodeId>(node));
    }
  }

  // Rebuild the derived slot-space query layout (see QueryLayout in
  // dual_layer.h). This runs after every build and snapshot load, so
  // the layout can never go stale relative to the graph above.
  QueryLayout& layout = layout_;
  layout.node_of.resize(total);
  std::iota(layout.node_of.begin(), layout.node_of.end(), 0u);
  std::stable_sort(layout.node_of.begin(), layout.node_of.end(),
                   [&](NodeId a, NodeId b) {
                     const bool va = is_virtual(a);
                     const bool vb = is_virtual(b);
                     if (va != vb) return va;  // pseudo-tuples first
                     if (coarse_of_[a] != coarse_of_[b]) {
                       return coarse_of_[a] < coarse_of_[b];
                     }
                     if (fine_of_[a] != fine_of_[b]) {
                       return fine_of_[a] < fine_of_[b];
                     }
                     return a < b;
                   });
  layout.slot_of.resize(total);
  for (std::size_t slot = 0; slot < total; ++slot) {
    layout.slot_of[layout.node_of[slot]] = static_cast<std::uint32_t>(slot);
  }
  layout.first_real_slot = static_cast<std::uint32_t>(virtual_points_.size());

  // Remap both edge sets to slot space. Rows keep their original edge
  // order so the traversal's per-pop access sequence (and therefore
  // TopKResult::accessed) is byte-identical to the node-space walk.
  const auto remap = [&](const CsrGraph& graph,
                         std::vector<std::uint32_t>& offsets,
                         std::vector<std::uint32_t>& targets) {
    offsets.resize(total + 1);
    targets.clear();
    targets.reserve(graph.num_edges());
    for (std::size_t slot = 0; slot < total; ++slot) {
      offsets[slot] = static_cast<std::uint32_t>(targets.size());
      for (const NodeId succ : graph[layout.node_of[slot]]) {
        targets.push_back(layout.slot_of[succ]);
      }
    }
    offsets[total] = static_cast<std::uint32_t>(targets.size());
  };
  remap(coarse_out_, layout.coarse_offsets, layout.coarse_targets);
  remap(fine_out_, layout.fine_offsets, layout.fine_targets);

  layout.init_packed.resize(total);
  for (std::size_t slot = 0; slot < total; ++slot) {
    const NodeId node = layout.node_of[slot];
    // The in-degree countdown lives in the low 24 bits of the packed
    // state word; an overflow would corrupt the lifecycle bits.
    DRLI_CHECK(coarse_in_degree_[node] <= QueryLayout::kRemainingMask);
    layout.init_packed[slot] =
        coarse_in_degree_[node] |
        (has_fine_in_[node] ? 0u : QueryLayout::kFineFreeBit);
  }
  layout.initial_slots.clear();
  layout.initial_slots.reserve(initial_.size());
  for (const NodeId node : initial_) {
    layout.initial_slots.push_back(layout.slot_of[node]);
  }
  layout.points =
      SoaPointSet::FromPermutation(points_, virtual_points_, layout.node_of);

  // A fresh id per rebuild lets QueryScratch detect that its cached
  // per-slot init words belong to another layout and must be re-seeded.
  static std::atomic<std::uint64_t> layout_generation{0};
  layout.generation = ++layout_generation;

  // Sublayer catalog for the constrained scenario (see SublayerSummary
  // in dual_layer.h): the LayerGroups partition annotated with each
  // group's attribute bounding box. O(n*d), once per build/load.
  sublayer_catalog_.clear();
  const std::size_t d = points_.dim();
  for (const std::vector<TupleId>& layer : coarse_layers_) {
    std::uint32_t max_fine = 0;
    for (TupleId id : layer) max_fine = std::max(max_fine, fine_of_[id]);
    const std::size_t base = sublayer_catalog_.size();
    sublayer_catalog_.resize(base + max_fine + 1);
    for (TupleId id : layer) {
      SublayerSummary& group = sublayer_catalog_[base + fine_of_[id]];
      const PointView p = points_[id];
      if (group.members.empty()) {
        group.coarse = coarse_of_[id];
        group.fine = fine_of_[id];
        group.bbox_lo.assign(p.begin(), p.end());
        group.bbox_hi.assign(p.begin(), p.end());
      } else {
        for (std::size_t a = 0; a < d; ++a) {
          group.bbox_lo[a] = std::min(group.bbox_lo[a], p[a]);
          group.bbox_hi[a] = std::max(group.bbox_hi[a], p[a]);
        }
      }
      group.members.push_back(id);
    }
    // Fine sublayer numbering is contiguous per coarse layer, but keep
    // the catalog robust to gaps: a consumer iterating it must never
    // see a memberless group.
    sublayer_catalog_.erase(
        std::remove_if(sublayer_catalog_.begin() + base,
                       sublayer_catalog_.end(),
                       [](const SublayerSummary& g) {
                         return g.members.empty();
                       }),
        sublayer_catalog_.end());
  }
}

std::vector<LayerAccessRow> ExplainAccess(const DualLayerIndex& index,
                                          const TopKResult& result) {
  // (coarse, fine) -> row index, in layer order.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> row_of;
  std::vector<LayerAccessRow> rows;
  for (std::size_t i = 0; i < index.points().size(); ++i) {
    const auto node = static_cast<DualLayerIndex::NodeId>(i);
    const auto key = std::make_pair(index.coarse_layer_of(node),
                                    index.fine_layer_of(node));
    auto it = row_of.find(key);
    if (it == row_of.end()) {
      it = row_of.emplace(key, rows.size()).first;
      rows.push_back(LayerAccessRow{key.first, key.second, 0, 0});
    }
    ++rows[it->second].layer_size;
  }
  for (TupleId id : result.accessed) {
    if (id >= index.points().size()) continue;  // pseudo-tuple
    const auto node = static_cast<DualLayerIndex::NodeId>(id);
    const auto key = std::make_pair(index.coarse_layer_of(node),
                                    index.fine_layer_of(node));
    ++rows[row_of.at(key)].accessed;
  }
  std::sort(rows.begin(), rows.end(),
            [](const LayerAccessRow& a, const LayerAccessRow& b) {
              if (a.coarse != b.coarse) return a.coarse < b.coarse;
              return a.fine < b.fine;
            });
  return rows;
}

}  // namespace drli
