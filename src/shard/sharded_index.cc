#include "shard/sharded_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <utility>

#include "common/parallel_for.h"
#include "common/random.h"
#include "common/stopwatch.h"

namespace drli {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One entry of the scatter-gather merge heap. Bound entries (kind 0)
// stand in for a whole unopened shard at its corner lower bound; item
// entries (kind 1) are the cursor over one opened shard's result list.
struct MergeEntry {
  double score;
  std::uint32_t kind;  // 0 = shard bound, 1 = item cursor
  std::uint32_t tie;   // bound: shard id; item: global tuple id
  std::uint32_t shard;
  std::uint32_t pos;  // item: position in the opened shard's list
};

// Heap comparator ("a orders after b") for a min-heap via
// std::push_heap/pop_heap. Bounds order before items of equal score --
// a shard must be opened before any tuple at its bound may be emitted,
// otherwise an equal-scoring, smaller-id tuple hiding in that shard
// would break the canonical tie order. Items of equal score order by
// global id, which is exactly ResultOrderLess.
struct MergeEntryAfter {
  bool operator()(const MergeEntry& a, const MergeEntry& b) const {
    if (a.score != b.score) return a.score > b.score;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.tie > b.tie;
  }
};

}  // namespace

const char* ShardPartitionerName(ShardPartitioner partitioner) {
  switch (partitioner) {
    case ShardPartitioner::kRandom:
      return "random";
    case ShardPartitioner::kHyperplane:
      return "hyperplane";
  }
  return "unknown";
}

StatusOr<ShardPartitioner> ParseShardPartitioner(const std::string& name) {
  if (name == "random") return ShardPartitioner::kRandom;
  if (name == "hyperplane") return ShardPartitioner::kHyperplane;
  return Status::InvalidArgument("unknown shard partitioner: " + name +
                                 " (expected random|hyperplane)");
}

std::vector<std::vector<TupleId>> PartitionPoints(
    const PointSet& points, std::size_t num_shards,
    ShardPartitioner partitioner, std::uint64_t partition_seed) {
  const std::size_t shards = std::max<std::size_t>(1, num_shards);
  std::vector<std::vector<TupleId>> members(shards);
  const std::size_t n = points.size();
  if (n == 0) return members;

  if (partitioner == ShardPartitioner::kRandom) {
    // Appending in id order keeps every member list ascending.
    Rng rng(partition_seed);
    for (TupleId id = 0; id < n; ++id) {
      members[rng.Index(shards)].push_back(id);
    }
    return members;
  }

  // Hyperplane: order by the all-ones projection and cut into equal
  // slabs, ties broken by id (stable sort) so the split is a pure
  // function of the data.
  std::vector<TupleId> order(n);
  std::iota(order.begin(), order.end(), TupleId{0});
  std::vector<double> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const PointView p = points[i];
    double sum = 0.0;
    for (std::size_t d = 0; d < p.size(); ++d) sum += p[d];
    keys[i] = sum;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](TupleId a, TupleId b) { return keys[a] < keys[b]; });
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t take = base + (s < extra ? 1 : 0);
    members[s].assign(order.begin() + cursor, order.begin() + cursor + take);
    std::sort(members[s].begin(), members[s].end());
    cursor += take;
  }
  return members;
}

ShardedDualLayerIndex ShardedDualLayerIndex::Build(
    PointSet points, const ShardedBuildOptions& options) {
  Stopwatch total;
  ShardedDualLayerIndex index;
  index.dim_ = points.dim();
  index.total_points_ = points.size();
  index.partitioner_ = options.partitioner;
  index.partition_seed_ = options.partition_seed;

  const std::size_t shards = std::max<std::size_t>(1, options.num_shards);
  Stopwatch phase;
  index.members_ = PartitionPoints(points, shards, options.partitioner,
                                   options.partition_seed);
  index.build_stats_.partition_seconds = phase.ElapsedSeconds();

  // The outer loop over shards owns all parallelism; each shard build
  // runs serially. Shard builds are fully independent (each works on
  // its own PointSet subset), so this converts cores into build speedup
  // directly -- and because a serial DL+ build equals a parallel one
  // bit for bit, the sharded build is identical at every thread count.
  DualLayerOptions shard_options = options.shard_options;
  shard_options.build_threads = 1;
  phase.Restart();
  std::vector<std::optional<DualLayerIndex>> built(shards);
  ParallelFor(
      shards,
      [&](std::size_t s, std::size_t) {
        built[s].emplace(
            DualLayerIndex::Build(points.Subset(index.members_[s]),
                                  shard_options));
      },
      options.build_threads);
  index.build_stats_.build_wall_seconds = phase.ElapsedSeconds();

  index.shards_.reserve(shards);
  index.build_stats_.min_shard_points = index.total_points_;
  for (std::size_t s = 0; s < shards; ++s) {
    index.build_stats_.build_cpu_seconds +=
        built[s]->build_stats().build_seconds;
    index.build_stats_.min_shard_points =
        std::min(index.build_stats_.min_shard_points, index.members_[s].size());
    index.build_stats_.max_shard_points =
        std::max(index.build_stats_.max_shard_points, index.members_[s].size());
    index.shards_.push_back(std::move(*built[s]));
  }
  index.ComputeShardBounds();

  if (!options.name.empty()) {
    index.name_ = options.name;
  } else {
    index.name_ = shard_options.build_zero_layer ? "SDL+" : "SDL";
    index.name_ += "x" + std::to_string(shards);
    index.name_ +=
        options.partitioner == ShardPartitioner::kHyperplane ? "h" : "r";
  }
  index.build_stats_.total_seconds = total.ElapsedSeconds();
  return index;
}

void ShardedDualLayerIndex::ComputeShardBounds() {
  // Per shard, a set of corner points that collectively dominate every
  // tuple: the shard's skyline (coarse layer 1 -- every deeper tuple is
  // dominated by a skyline member through the iterated-skyline chain),
  // chunked along the first coordinate into at most
  // kMaxBoundPointsPerShard groups, one componentwise-min corner per
  // group. Small skylines keep one corner per member, making the bound
  // the shard's exact minimum score; the chunking only kicks in to cap
  // the per-query bound cost.
  bound_values_.clear();
  bound_offsets_.assign(1, 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const PointSet& pts = shards_[s].points();
    if (pts.size() > 0) {
      std::vector<TupleId> sky = shards_[s].coarse_layers().front();
      std::stable_sort(sky.begin(), sky.end(), [&](TupleId a, TupleId b) {
        return pts[a][0] < pts[b][0] || (pts[a][0] == pts[b][0] && a < b);
      });
      const std::size_t groups =
          std::min(kMaxBoundPointsPerShard, sky.size());
      const std::size_t base = sky.size() / groups;
      const std::size_t extra = sky.size() % groups;
      std::size_t cursor = 0;
      for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t take = base + (g < extra ? 1 : 0);
        const std::size_t begin = bound_values_.size();
        bound_values_.insert(bound_values_.end(), dim_, kInf);
        for (std::size_t i = 0; i < take; ++i) {
          const PointView p = pts[sky[cursor + i]];
          for (std::size_t d = 0; d < dim_; ++d) {
            bound_values_[begin + d] = std::min(bound_values_[begin + d], p[d]);
          }
        }
        cursor += take;
      }
    }
    bound_offsets_.push_back(bound_values_.size());
  }
}

double ShardedDualLayerIndex::ShardLowerBound(std::size_t s,
                                              PointView weights) const {
  // Minimum corner score. Sound in floating point, not just over the
  // reals: Score accumulates left-to-right with the same association
  // everywhere and rounding is monotone, so lowering any coordinate
  // can never raise the computed score -- a corner therefore scores no
  // higher than any tuple its group dominates.
  double bound = kInf;
  for (std::size_t at = bound_offsets_[s]; at < bound_offsets_[s + 1];
       at += dim_) {
    bound =
        std::min(bound, Score(weights, PointView(&bound_values_[at], dim_)));
  }
  return bound;
}

TopKResult ShardedDualLayerIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  {
    const Status status = ValidateQuery(query, dim_);
    if (!status.ok()) return InvalidQueryResult(status);
  }
  TopKResult result;
  if (query.k == 0 || total_points_ == 0) {
    FinalizeComplete(result);
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }

  const PointView w(query.weights);
  std::vector<MergeEntry> heap;
  heap.reserve(shards_.size() + 2);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (members_[s].empty()) continue;
    heap.push_back(MergeEntry{ShardLowerBound(s, w), 0,
                              static_cast<std::uint32_t>(s),
                              static_cast<std::uint32_t>(s), 0});
  }
  std::make_heap(heap.begin(), heap.end(), MergeEntryAfter{});

  // Result lists of opened shards, ids already mapped to global.
  std::vector<std::vector<ScoredTuple>> open(shards_.size());
  Termination reason = Termination::kComplete;
  double stop_floor = kInf;
  bool stopped = false;

  while (result.items.size() < query.k && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), MergeEntryAfter{});
    const MergeEntry entry = heap.back();
    heap.pop_back();

    if (entry.kind == 1) {
      const std::vector<ScoredTuple>& items = open[entry.shard];
      result.items.push_back(items[entry.pos]);
      if (entry.pos + 1 < items.size()) {
        const ScoredTuple& next = items[entry.pos + 1];
        heap.push_back(
            MergeEntry{next.score, 1, next.id, entry.shard, entry.pos + 1});
        std::push_heap(heap.begin(), heap.end(), MergeEntryAfter{});
      }
      continue;
    }

    // The merge frontier reached this shard's corner bound: open it.
    ExecBudget sub;
    reason = RemainingBudget(query.budget, result.stats.tuples_evaluated,
                             timer, &sub);
    if (reason != Termination::kComplete) {
      stop_floor = entry.score;  // the shard we could not afford to open
      stopped = true;
      break;
    }
    const std::vector<TupleId>& members = members_[entry.shard];
    TopKQuery shard_query;
    shard_query.weights = query.weights;
    shard_query.k = std::min(query.k, members.size());
    shard_query.budget = sub;
    TopKResult shard_result = shards_[entry.shard].Query(shard_query);

    ++result.stats.shards_touched;
    result.stats.tuples_evaluated += shard_result.stats.tuples_evaluated;
    result.stats.virtual_evaluated += shard_result.stats.virtual_evaluated;
    for (const TupleId local : shard_result.accessed) {
      result.accessed.push_back(members[local]);
    }
    if (shard_result.termination == Termination::kError ||
        shard_result.termination == Termination::kInvalidQuery) {
      result.items.clear();
      result.termination = Termination::kError;
      result.error = "shard " + std::to_string(entry.shard) + ": " +
                     (shard_result.error.empty()
                          ? std::string(TerminationName(shard_result.termination))
                          : shard_result.error);
      result.certified_prefix = 0;
      result.frontier_bound = -kInf;
      result.stats.elapsed_seconds = timer.ElapsedSeconds();
      return result;
    }
    for (ScoredTuple& item : shard_result.items) item.id = members[item.id];

    if (!shard_result.complete()) {
      // The shard's budget tripped mid-traversal. None of its items are
      // merged; instead the whole shard is bounded by the smaller of
      // its frontier and its best returned score, and the merge stops.
      double floor = shard_result.frontier_bound;
      if (!shard_result.items.empty()) {
        floor = std::min(floor, shard_result.items.front().score);
      }
      stop_floor = floor;
      reason = shard_result.termination;
      stopped = true;
      break;
    }

    open[entry.shard] = std::move(shard_result.items);
    const ScoredTuple& first = open[entry.shard].front();
    heap.push_back(MergeEntry{first.score, 1, first.id, entry.shard, 0});
    std::push_heap(heap.begin(), heap.end(), MergeEntryAfter{});
  }

  if (!stopped) {
    FinalizeComplete(result);
  } else {
    // Every unreturned tuple lives (a) in the shard that stopped or was
    // unaffordable -- bounded by stop_floor, (b) in a shard still
    // represented by a bound entry, (c) after the cursor of an opened
    // shard's list, or (d) past the end of an opened shard's k_s items,
    // in which case k_s = k and the k_s-th score >= the live cursor
    // entry. Cases (b)-(d) are all covered by the surviving heap keys.
    double bound = stop_floor;
    for (const MergeEntry& e : heap) bound = std::min(bound, e.score);
    FinalizePartial(result, reason, bound);
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<TopKResult> ShardedDualLayerIndex::QueryBatch(
    const std::vector<TopKQuery>& queries) const {
  std::vector<TopKResult> results(queries.size());
  ParallelFor(queries.size(), [&](std::size_t i, std::size_t) {
    results[i] = GuardedQuery([&] { return Query(queries[i]); });
  });
  return results;
}

}  // namespace drli
